package agmdp_test

import (
	"fmt"
	"log"

	"agmdp"
)

// ExampleSynthesize shows the minimal end-to-end workflow: load or build a
// sensitive attributed graph, publish a differentially private synthetic
// version, and evaluate how well it preserves the input's structure and
// attribute correlations.
func ExampleSynthesize() {
	// The sensitive input graph (here: a calibrated synthetic stand-in).
	input, err := agmdp.GenerateDataset("lastfm", 0.2, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Publish under a total privacy budget of ε = 1.
	synthetic, model, err := agmdp.Synthesize(input, agmdp.Options{Epsilon: 1.0, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	metrics := agmdp.Evaluate(input, synthetic)
	fmt.Printf("privately fitted with epsilon = %.1f using %s\n", model.Epsilon, model.ModelName)
	fmt.Printf("degree KS and correlation Hellinger are finite: %v\n",
		metrics.KSDegree >= 0 && metrics.HellingerThetaF >= 0)
	// Output:
	// privately fitted with epsilon = 1.0 using TriCycLe
	// degree KS and correlation Hellinger are finite: true
}

// ExampleFit demonstrates separating the (budget-consuming) fitting step from
// the (free) sampling step: one fitted model can produce any number of
// synthetic graphs by the post-processing property of differential privacy.
func ExampleFit() {
	input, err := agmdp.GenerateDataset("petster", 0.2, 2)
	if err != nil {
		log.Fatal(err)
	}
	model, err := agmdp.Fit(input, agmdp.Options{Epsilon: 0.5, Model: agmdp.ModelFCL, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	first, _ := agmdp.Sample(model, agmdp.Options{Model: agmdp.ModelFCL, Seed: 4})
	second, _ := agmdp.Sample(model, agmdp.Options{Model: agmdp.ModelFCL, Seed: 5})
	fmt.Printf("two samples, same privacy cost: %v\n", first.NumEdges() > 0 && second.NumEdges() > 0)
	// Output:
	// two samples, same privacy cost: true
}
