// Privacy sweep: measure how the fidelity of AGM-DP's synthetic graphs
// degrades as the privacy budget ε shrinks, reproducing the qualitative trend
// of Tables 2–5 of the paper (stronger privacy → more noise → higher error),
// and compare the TriCycLe and FCL structural models.
//
// Run with:
//
//	go run ./examples/privacy-sweep
package main

import (
	"fmt"
	"log"
	"math"

	"agmdp"
)

func main() {
	input, err := agmdp.GenerateDataset("petster", 0.4, 3)
	if err != nil {
		log.Fatal(err)
	}
	s := input.Summarize()
	fmt.Printf("input: %d nodes, %d edges, %d triangles\n\n", s.Nodes, s.Edges, s.Triangles)

	epsilons := []float64{math.Log(3), math.Log(2), 0.3, 0.2}
	models := []agmdp.ModelKind{agmdp.ModelFCL, agmdp.ModelTriCycLe}

	fmt.Printf("%-10s %-10s %10s %10s %10s %10s\n", "epsilon", "model", "H(ThetaF)", "KS(deg)", "MRE(tri)", "MRE(m)")
	for _, model := range models {
		// Non-private reference row.
		synth, _, err := agmdp.SynthesizeNonPrivate(input, model, 17)
		if err != nil {
			log.Fatal(err)
		}
		printRow("inf", model, input, synth)
		for _, eps := range epsilons {
			synth, _, err := agmdp.Synthesize(input, agmdp.Options{Epsilon: eps, Model: model, Seed: 17})
			if err != nil {
				log.Fatal(err)
			}
			printRow(fmt.Sprintf("%.3f", eps), model, input, synth)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (as in the paper): errors grow as epsilon shrinks, and the")
	fmt.Println("TriCycLe rows keep the triangle error far below the FCL rows at the same budget.")
}

func printRow(eps string, model agmdp.ModelKind, input, synth *agmdp.Graph) {
	m := agmdp.Evaluate(input, synth)
	fmt.Printf("%-10s %-10s %10.4f %10.4f %10.4f %10.4f\n",
		eps, model, m.HellingerThetaF, m.KSDegree, m.MRETriangles, m.MREEdges)
}
