// Structural models: compare how well the FCL and TriCycLe structural models
// (without privacy) reproduce the degree distribution and the clustering of an
// input graph — the comparison behind Figures 2 and 3 of the paper. The
// example prints compact CCDF tables that can be plotted directly.
//
// Run with:
//
//	go run ./examples/structural-models
package main

import (
	"fmt"
	"log"

	"agmdp"
)

func main() {
	input, err := agmdp.GenerateDataset("epinions", 0.1, 9)
	if err != nil {
		log.Fatal(err)
	}
	in := input.Summarize()
	fmt.Printf("input: %d nodes, %d edges, %d triangles, global clustering %.4f\n\n",
		in.Nodes, in.Edges, in.Triangles, in.GlobalClustering)

	results := map[agmdp.ModelKind]*agmdp.Graph{}
	for _, kind := range []agmdp.ModelKind{agmdp.ModelFCL, agmdp.ModelTriCycLe} {
		synth, _, err := agmdp.SynthesizeNonPrivate(input, kind, 23)
		if err != nil {
			log.Fatal(err)
		}
		results[kind] = synth
	}

	fmt.Printf("%-12s %10s %12s %12s %14s\n", "model", "edges", "triangles", "avg clust", "global clust")
	fmt.Printf("%-12s %10d %12d %12.4f %14.4f\n", "input", in.Edges, in.Triangles, in.AvgLocalClustering, in.GlobalClustering)
	for kind, g := range results {
		s := g.Summarize()
		fmt.Printf("%-12s %10d %12d %12.4f %14.4f\n", kind, s.Edges, s.Triangles, s.AvgLocalClustering, s.GlobalClustering)
	}

	// Degree CCDF at a few representative degrees (Figure 2's curves).
	fmt.Println("\ndegree CCDF  P[deg > d]:")
	fmt.Printf("%-8s %12s %12s %12s\n", "d", "input", "fcl", "tricycle")
	for _, d := range []int{1, 2, 5, 10, 20, 50} {
		fmt.Printf("%-8d %12.4f %12.4f %12.4f\n", d,
			degreeCCDF(input, d), degreeCCDF(results[agmdp.ModelFCL], d), degreeCCDF(results[agmdp.ModelTriCycLe], d))
	}

	// Clustering CCDF at a few thresholds (Figure 3's curves).
	fmt.Println("\nlocal clustering CCDF  P[C_i > c]:")
	fmt.Printf("%-8s %12s %12s %12s\n", "c", "input", "fcl", "tricycle")
	for _, c := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		fmt.Printf("%-8.2f %12.4f %12.4f %12.4f\n", c,
			clusteringCCDF(input, c), clusteringCCDF(results[agmdp.ModelFCL], c), clusteringCCDF(results[agmdp.ModelTriCycLe], c))
	}
	fmt.Println("\nExpected shape (Figures 2-3): all models track the degree CCDF, but only")
	fmt.Println("TriCycLe keeps the clustering CCDF close to the input; FCL collapses to ~0.")
}

// degreeCCDF returns the fraction of nodes with degree strictly greater than d.
func degreeCCDF(g *agmdp.Graph, d int) float64 {
	count := 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Degree(i) > d {
			count++
		}
	}
	return float64(count) / float64(g.NumNodes())
}

// clusteringCCDF returns the fraction of nodes with local clustering
// coefficient strictly greater than c.
func clusteringCCDF(g *agmdp.Graph, c float64) float64 {
	count := 0
	all := g.LocalClusteringAll()
	for _, v := range all {
		if v > c {
			count++
		}
	}
	return float64(count) / float64(len(all))
}
