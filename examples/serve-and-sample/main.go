// Command serve-and-sample drives the v1 synthesis service end to end: it
// starts the HTTP API in-process on an ephemeral port, uploads a sensitive
// graph once as a binary CSR snapshot, fits an ε-DP model from the stored
// graph asynchronously (POST /v1/fit with async:true returns a fit job
// whose completion carries the registered model ID), submits an
// asynchronous batch sampling job that stores its samples back into the
// graph store, polls both jobs to completion, and finally downloads one
// synthetic sample as a binary snapshot — the fit-once / serve-many
// workflow the post-processing property of differential privacy enables
// (Algorithm 3 of the paper), with no graph ever travelling inline through
// a request body and no fit ever holding a connection open.
//
// Run with:
//
//	go run ./examples/serve-and-sample
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"agmdp/internal/datasets"
	"agmdp/internal/dp"
	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/jobs"
	"agmdp/internal/registry"
	"agmdp/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("serve-and-sample: %v", err)
	}
}

func run() error {
	// 1. Assemble the service: in-memory registry + graph store, a 4-worker
	// engine, and the async job manager.
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		return err
	}
	store, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		return err
	}
	eng := engine.New(engine.Config{Workers: 4, Seed: 1, Acceptance: reg})
	defer eng.Close()
	// Models wires fit jobs into the registry; adding Dir here would persist
	// finished-job metadata across restarts (agmdp-serve does, next to its
	// graph store).
	mgr, err := jobs.New(jobs.Options{Engine: eng, Store: store, Models: reg})
	if err != nil {
		return err
	}
	defer mgr.Close()
	srv, err := server.New(server.Config{Registry: reg, Engine: eng, Graphs: store, Jobs: mgr})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening on %s\n", base)

	// 2. Upload once: the sensitive graph travels to the service a single
	// time, as a compact binary CSR snapshot.
	profile, err := datasets.ByName("lastfm")
	if err != nil {
		return err
	}
	sensitive := datasets.Generate(dp.NewRand(1), profile.Scaled(0.5))
	var snapshot bytes.Buffer
	if err := sensitive.WriteBinary(&snapshot); err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/graphs", "application/octet-stream", &snapshot)
	if err != nil {
		return err
	}
	var uploaded struct {
		ID   string `json:"id"`
		Info struct {
			Nodes     int `json:"nodes"`
			Edges     int `json:"edges"`
			SizeBytes int `json:"size_bytes"`
		} `json:"info"`
	}
	if err := decodeStatus(resp, http.StatusCreated, &uploaded); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Printf("uploaded sensitive graph: %d nodes, %d edges, %d snapshot bytes -> id %s\n",
		uploaded.Info.Nodes, uploaded.Info.Edges, uploaded.Info.SizeBytes, uploaded.ID)

	// 3. Fit by ID, asynchronously: a private TriCycLe model (ε = 1) over
	// the stored graph. async:true detaches the fit into a job of kind
	// "fit" — the response is an immediate 202 with a job snapshot, and the
	// registered model's content-addressed ID arrives in the finished job's
	// fit result. This is the only step that spends privacy budget; the
	// same graph ID could be fitted again at other settings without
	// re-uploading. The fit pipeline shards its measurement passes over the
	// worker pool; the fitted model is bit-identical at every parallelism.
	fitStart := time.Now()
	fitBody := fmt.Sprintf(`{"graph_id":%q,"epsilon":1.0,"model":"tricycle","seed":7,"async":true}`, uploaded.ID)
	resp, err = http.Post(base+"/v1/fit", "application/json", bytes.NewReader([]byte(fitBody)))
	if err != nil {
		return err
	}
	var fitJob struct {
		ID     string `json:"id"`
		Kind   string `json:"kind"`
		Status string `json:"status"`
		Fit    *struct {
			ModelID   string  `json:"model_id"`
			ModelName string  `json:"model_name"`
			Epsilon   float64 `json:"epsilon"`
			Error     string  `json:"error"`
		} `json:"fit"`
	}
	if err := decodeStatus(resp, http.StatusAccepted, &fitJob); err != nil {
		return fmt.Errorf("submit fit: %w", err)
	}
	fmt.Printf("submitted fit job %s (kind %s)\n", fitJob.ID, fitJob.Kind)
	for fitJob.Status == "queued" || fitJob.Status == "running" {
		time.Sleep(20 * time.Millisecond)
		resp, err = http.Get(base + "/v1/jobs/" + fitJob.ID)
		if err != nil {
			return err
		}
		if err := decodeStatus(resp, http.StatusOK, &fitJob); err != nil {
			return fmt.Errorf("poll fit job: %w", err)
		}
	}
	if fitJob.Status != "done" || fitJob.Fit == nil || fitJob.Fit.ModelID == "" {
		return fmt.Errorf("fit job finished with status %q (%+v)", fitJob.Status, fitJob.Fit)
	}
	fit := struct{ ID string }{ID: fitJob.Fit.ModelID}
	fmt.Printf("fit job done in %v: %s model at epsilon %.2f -> id %s (acceptance table pre-warmed)\n",
		time.Since(fitStart).Round(time.Millisecond), fitJob.Fit.ModelName, fitJob.Fit.Epsilon, fit.ID)

	// 4. Serve many, asynchronously: submit a batch job for eight samples,
	// stored into the graph store instead of inlined, and poll its progress.
	start := time.Now()
	jobBody := fmt.Sprintf(`{"model_id":%q,"count":8,"seed":1,"iterations":1,"store":true}`, fit.ID)
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(jobBody)))
	if err != nil {
		return err
	}
	var job struct {
		ID        string `json:"id"`
		Status    string `json:"status"`
		Count     int    `json:"count"`
		Completed int    `json:"completed"`
		Failed    int    `json:"failed"`
		Results   []struct {
			Seed      int64  `json:"seed"`
			Nodes     int    `json:"nodes"`
			Edges     int    `json:"edges"`
			Triangles int64  `json:"triangles"`
			GraphID   string `json:"graph_id"`
		} `json:"results"`
	}
	if err := decodeStatus(resp, http.StatusAccepted, &job); err != nil {
		return fmt.Errorf("submit job: %w", err)
	}
	fmt.Printf("submitted job %s (%d samples)\n", job.ID, job.Count)
	for job.Status == "queued" || job.Status == "running" {
		time.Sleep(50 * time.Millisecond)
		resp, err = http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return err
		}
		if err := decodeStatus(resp, http.StatusOK, &job); err != nil {
			return fmt.Errorf("poll job: %w", err)
		}
	}
	if job.Status != "done" {
		return fmt.Errorf("job finished with status %q (%d failed)", job.Status, job.Failed)
	}
	fmt.Printf("job done: %d synthetic graphs in %v:\n", job.Completed, time.Since(start).Round(time.Millisecond))
	for _, s := range job.Results {
		fmt.Printf("  seed %d: %d nodes, %d edges, %d triangles -> graph %s\n",
			s.Seed, s.Nodes, s.Edges, s.Triangles, s.GraphID)
	}

	// 5. Download one stored sample as a binary snapshot and decode it
	// locally — the publishable artifact. "done" guarantees at least one
	// success, not that sample 0 in particular succeeded.
	first := job.Results[0]
	for _, s := range job.Results {
		if s.GraphID != "" {
			first = s
			break
		}
	}
	if first.GraphID == "" {
		return fmt.Errorf("job done but no sample was stored")
	}
	resp, err = http.Get(base + "/v1/graphs/" + first.GraphID + "?format=binary")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("download: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	synthetic, err := graph.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if synthetic.NumEdges() != first.Edges {
		return fmt.Errorf("downloaded sample has %d edges, job reported %d", synthetic.NumEdges(), first.Edges)
	}
	fmt.Printf("downloaded sample %s: %d-byte binary snapshot, decoded to %d nodes / %d edges\n",
		first.GraphID, len(data), synthetic.NumNodes(), synthetic.NumEdges())

	// 6. Determinism spot-check: synchronous samples with equal seeds are
	// byte-identical binary snapshots.
	fetch := func() ([]byte, error) {
		body := fmt.Sprintf(`{"id":%q,"seed":99,"iterations":1,"format":"binary"}`, fit.ID)
		resp, err := http.Post(base+"/v1/sample", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	a, err := fetch()
	if err != nil {
		return err
	}
	b, err := fetch()
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("determinism violated: equal seeds gave different snapshots")
	}
	fmt.Printf("determinism check passed: seed 99 twice -> identical %d-byte snapshots\n", len(a))
	return nil
}

// decodeStatus fails on an unexpected status and decodes the JSON body into v.
func decodeStatus(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
