// Command serve-and-sample drives the synthesis service end to end: it starts
// the HTTP API in-process on an ephemeral port, fits one ε-DP model from a
// calibrated dataset, then issues parallel sampling requests against the
// stored model — the fit-once / serve-many workflow the post-processing
// property of differential privacy enables (Algorithm 3 of the paper).
//
// Run with:
//
//	go run ./examples/serve-and-sample
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"agmdp/internal/engine"
	"agmdp/internal/registry"
	"agmdp/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("serve-and-sample: %v", err)
	}
}

func run() error {
	// 1. Assemble the service: in-memory registry + a 4-worker engine.
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		return err
	}
	eng := engine.New(engine.Config{Workers: 4, Seed: 1})
	defer eng.Close()
	srv, err := server.New(server.Config{Registry: reg, Engine: eng})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening on %s\n", base)

	// 2. Fit once: a private TriCycLe model (ε = 1) on a Last.fm-calibrated
	// graph generated server-side. This is the only step that touches the
	// sensitive graph or spends privacy budget.
	fitBody := `{"dataset":{"name":"lastfm","scale":0.5,"seed":1},"epsilon":1.0,"model":"tricycle","seed":7}`
	resp, err := http.Post(base+"/fit", "application/json", bytes.NewReader([]byte(fitBody)))
	if err != nil {
		return err
	}
	var fit struct {
		ID   string `json:"id"`
		Info struct {
			N       int     `json:"n"`
			Model   string  `json:"model"`
			Epsilon float64 `json:"epsilon"`
		} `json:"info"`
	}
	if err := decodeOK(resp, &fit); err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	fmt.Printf("fitted %s model over %d nodes at epsilon %.2f -> id %s\n",
		fit.Info.Model, fit.Info.N, fit.Info.Epsilon, fit.ID)

	// 3. Serve many: eight parallel samples from the stored model, each with
	// its own seed — no additional privacy cost.
	start := time.Now()
	type sample struct {
		Seed      int64 `json:"seed"`
		Nodes     int   `json:"nodes"`
		Edges     int   `json:"edges"`
		Triangles int64 `json:"triangles"`
	}
	const parallel = 8
	results := make([]sample, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"id":%q,"seed":%d,"iterations":1,"format":"summary"}`, fit.ID, i+1)
			resp, err := http.Post(base+"/sample", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = decodeOK(resp, &results[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
	}
	fmt.Printf("sampled %d synthetic graphs in %v:\n", parallel, time.Since(start).Round(time.Millisecond))
	for _, s := range results {
		fmt.Printf("  seed %d: %d nodes, %d edges, %d triangles\n", s.Seed, s.Nodes, s.Edges, s.Triangles)
	}

	// 4. Determinism spot-check: the same seed twice gives byte-identical
	// graph text.
	fetch := func() ([]byte, error) {
		body := fmt.Sprintf(`{"id":%q,"seed":99,"iterations":1,"format":"text"}`, fit.ID)
		resp, err := http.Post(base+"/sample", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	a, err := fetch()
	if err != nil {
		return err
	}
	b, err := fetch()
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("determinism violated: equal seeds gave different graph text")
	}
	fmt.Printf("determinism check passed: seed 99 twice -> identical %d-byte graph files\n", len(a))

	// 5. Registry listing, as an operator would see it.
	lresp, err := http.Get(base + "/models")
	if err != nil {
		return err
	}
	var list struct {
		Models []struct {
			ID        string `json:"id"`
			Model     string `json:"model"`
			SizeBytes int    `json:"size_bytes"`
		} `json:"models"`
	}
	if err := decodeOK(lresp, &list); err != nil {
		return err
	}
	for _, m := range list.Models {
		fmt.Printf("registry: %s (%s, %d bytes serialized)\n", m.ID, m.Model, m.SizeBytes)
	}
	return nil
}

// decodeOK fails on non-200 responses and decodes the JSON body into v.
func decodeOK(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
