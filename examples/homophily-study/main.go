// Homophily study: the motivating analysis from the paper's introduction.
// Social graphs exhibit homophily — nodes with similar attributes connect more
// often than chance — and analyses such as relational machine learning rely on
// it. This example checks that AGM-DP's synthetic graphs preserve the
// attribute–edge correlations well enough for a downstream homophily analysis
// to reach the same conclusions, without ever looking at the sensitive graph.
//
// Run with:
//
//	go run ./examples/homophily-study
package main

import (
	"fmt"
	"log"

	"agmdp"
)

func main() {
	input, err := agmdp.GenerateDataset("pokec", 0.02, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensitive graph: %d nodes, %d edges, 2 binary attributes (sex, age ≤ 30)\n\n",
		input.NumNodes(), input.NumEdges())

	// Publish a synthetic graph under a strong privacy budget.
	synth, _, err := agmdp.Synthesize(input, agmdp.Options{Epsilon: 0.3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("homophily analysis (fraction of edges joining nodes with equal attribute values):")
	fmt.Printf("%-22s %12s %12s\n", "attribute", "sensitive", "synthetic")
	for j, name := range []string{"attribute 0 (sex)", "attribute 1 (age<=30)"} {
		fmt.Printf("%-22s %12.4f %12.4f\n", name, sameAttributeEdgeFraction(input, j), sameAttributeEdgeFraction(synth, j))
	}
	fmt.Printf("%-22s %12.4f %12.4f\n", "both attributes equal", sameConfigEdgeFraction(input), sameConfigEdgeFraction(synth))

	m := agmdp.Evaluate(input, synth)
	fmt.Printf("\ncorrelation fidelity: MAE %.4f, Hellinger %.4f (uniform baseline ≈ 0.12 / 0.5 on Pokec)\n",
		m.MREThetaF, m.HellingerThetaF)
	fmt.Println("A downstream analyst can therefore study homophily on the synthetic graph")
	fmt.Println("and observe the same qualitative effect as on the sensitive graph.")
}

// sameAttributeEdgeFraction returns the fraction of edges whose endpoints
// agree on attribute j.
func sameAttributeEdgeFraction(g *agmdp.Graph, j int) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	same := 0
	g.ForEachEdge(func(u, v int) bool {
		if g.Attr(u).Bit(j) == g.Attr(v).Bit(j) {
			same++
		}
		return true
	})
	return float64(same) / float64(g.NumEdges())
}

// sameConfigEdgeFraction returns the fraction of edges whose endpoints share
// the full attribute vector.
func sameConfigEdgeFraction(g *agmdp.Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	same := 0
	g.ForEachEdge(func(u, v int) bool {
		if g.Attr(u) == g.Attr(v) {
			same++
		}
		return true
	})
	return float64(same) / float64(g.NumEdges())
}
