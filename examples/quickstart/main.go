// Quickstart: build a small attributed social graph, publish a differentially
// private synthetic version of it with AGM-DP, and compare the two.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"agmdp"
)

func main() {
	// 1. Obtain the sensitive input graph. Here we use the calibrated Last.fm
	//    stand-in at 30% scale; in practice you would load your own graph with
	//    agmdp.LoadGraph or build it with agmdp.NewGraph / AddEdge / SetAttr.
	input, err := agmdp.GenerateDataset("lastfm", 0.3, 42)
	if err != nil {
		log.Fatal(err)
	}
	in := input.Summarize()
	fmt.Printf("input graph:      %d nodes, %d edges, %d triangles, avg clustering %.3f\n",
		in.Nodes, in.Edges, in.Triangles, in.AvgLocalClustering)

	// 2. Synthesize a private graph with a total privacy budget of ε = 1.
	//    The budget is split internally among the attribute distribution, the
	//    attribute-edge correlations, the degree sequence and the triangle
	//    count (Algorithm 3 of the paper).
	synth, model, err := agmdp.Synthesize(input, agmdp.Options{
		Epsilon: 1.0,
		Model:   agmdp.ModelTriCycLe,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	out := synth.Summarize()
	fmt.Printf("synthetic graph:  %d nodes, %d edges, %d triangles, avg clustering %.3f (ε = %.2f)\n",
		out.Nodes, out.Edges, out.Triangles, out.AvgLocalClustering, model.Epsilon)

	// 3. Quantify how well the synthetic graph preserves the input's
	//    structure and attribute correlations.
	m := agmdp.Evaluate(input, synth)
	fmt.Println("fidelity (lower is better):")
	fmt.Printf("  attribute-edge correlations: MAE %.4f, Hellinger %.4f\n", m.MREThetaF, m.HellingerThetaF)
	fmt.Printf("  degree distribution:         KS %.4f, Hellinger %.4f\n", m.KSDegree, m.HellingerDegree)
	fmt.Printf("  triangles / clustering:      MRE %.4f / %.4f\n", m.MRETriangles, m.MREAvgClustering)

	// 4. The fitted model can be reused to draw additional synthetic graphs at
	//    no extra privacy cost (post-processing invariance).
	another, err := agmdp.Sample(model, agmdp.Options{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a second sample from the same model has %d edges and %d triangles\n",
		another.NumEdges(), another.Triangles())
}
