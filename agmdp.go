// Package agmdp is the public facade of the AGM-DP library, a Go
// implementation of "Publishing Attributed Social Graphs with Formal Privacy
// Guarantees" (Jorgensen, Yu, Cormode; SIGMOD 2016).
//
// The library synthesizes attributed social graphs that mimic the structure
// (degree distribution, triangle count, clustering) and the attribute–edge
// correlations (homophily) of a sensitive input graph while satisfying
// ε-differential privacy under the edge-adjacency model of Definition 1 (two
// graphs are neighbours if they differ in one edge or in the attribute vector
// of one node).
//
// Typical usage:
//
//	g := agmdp.NewGraph(n, 2)            // build or load the sensitive graph
//	...
//	out, model, err := agmdp.Synthesize(g, agmdp.Options{Epsilon: 1.0, Seed: 7})
//	// out is a synthetic attributed graph safe to publish under ε = 1.0.
//
// The facade re-exports the attributed graph type, dataset generators,
// evaluation metrics and the experiment drivers; the full lower-level API
// lives in the internal packages and is exercised by the examples under
// examples/ and the benchmark harness in bench_test.go.
package agmdp

import (
	"context"

	"agmdp/internal/attrs"
	"agmdp/internal/core"
	"agmdp/internal/datasets"
	"agmdp/internal/dp"
	"agmdp/internal/engine"
	"agmdp/internal/experiments"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/parallel"
	"agmdp/internal/registry"
	"agmdp/internal/structural"
)

// Graph is an attributed, undirected simple graph in immutable
// compressed-sparse-row form. A Graph never changes after construction and is
// safe for unrestricted concurrent use; build or modify graphs through a
// GraphBuilder and finalize it into a Graph.
type Graph = graph.Graph

// GraphBuilder is the mutable construction phase of a Graph: add or remove
// edges and set attributes, then call Finalize to freeze the result into an
// immutable CSR Graph.
type GraphBuilder = graph.Builder

// AttrVector is a node's binary attribute vector, stored as a bitmask.
type AttrVector = graph.AttrVector

// Summary bundles the headline statistics of a graph (Table 6 of the paper).
type Summary = graph.Summary

// FittedModel holds learned AGM parameters (exact or differentially private).
type FittedModel = core.FittedModel

// Metrics holds the error columns used by the paper's evaluation tables.
type Metrics = experiments.GraphMetrics

// DatasetProfile describes one of the calibrated synthetic dataset
// generators standing in for the paper's real datasets.
type DatasetProfile = datasets.Profile

// NewGraph returns an empty attributed graph with n nodes and w binary
// attributes per node.
func NewGraph(n, w int) *Graph { return graph.New(n, w) }

// NewGraphBuilder returns a mutable builder for a graph with n nodes and w
// binary attributes per node; call Finalize to obtain the immutable Graph.
func NewGraphBuilder(n, w int) *GraphBuilder { return graph.NewBuilder(n, w) }

// LoadGraph reads an attributed graph from a file in the library's
// self-describing text format (see SaveGraph).
func LoadGraph(path string) (*Graph, error) { return graph.LoadGraph(path) }

// SaveGraph writes an attributed graph to a file in the library's
// self-describing text format.
func SaveGraph(g *Graph, path string) error { return graph.SaveGraph(g, path) }

// LoadEdgeList reads a plain whitespace-separated edge list (without
// attributes) from a file.
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// SaveGraphBinary writes an attributed graph to a file as a binary CSR
// snapshot — the compact, canonical format the graph store and the service's
// binary wire format use. Binary snapshots encode and decode an order of
// magnitude faster than the text format on large graphs.
func SaveGraphBinary(g *Graph, path string) error { return graph.SaveBinary(g, path) }

// LoadGraphBinary reads a graph from a binary CSR snapshot file, fully
// validating the structural invariants before returning it.
func LoadGraphBinary(path string) (*Graph, error) { return graph.LoadBinary(path) }

// ModelKind selects the structural model used by Fit/Synthesize.
type ModelKind string

// Supported structural models.
const (
	// ModelTriCycLe is the paper's new structural model (Algorithm 1); it is
	// the default and reproduces both the degree distribution and the
	// clustering of the input.
	ModelTriCycLe ModelKind = "tricycle"
	// ModelFCL is the simple (bias-corrected) Fast Chung–Lu model; it matches
	// the degree distribution only.
	ModelFCL ModelKind = "fcl"
)

// structuralModel maps a ModelKind to its implementation through the shared
// resolver, carrying the requested parallelism (≤ 0 = auto, 1 = sequential).
func structuralModel(kind ModelKind, parallelism int) (structural.Model, error) {
	return structural.ByName(string(kind), parallelism)
}

// SetParallelism sets the process-wide default worker count used by every
// parallel code path in the library — the sharded graph analytics, the
// sensitivity scans, and the structural generators' proposal and rewiring
// streams. Values ≤ 0 restore the built-in default of runtime.GOMAXPROCS(0);
// 1 forces every auto-resolved path sequential, which makes generator output
// byte-for-byte reproducible across machines with different core counts.
//
// Analytics (triangle counts, clustering, degree statistics) are bit-identical
// for every worker count; only the generators' random draws depend on the
// resolved count (same seed + same count ⇒ same graph).
func SetParallelism(n int) { parallel.SetParallelism(n) }

// Options configures Fit and Synthesize.
type Options struct {
	// Epsilon is the total differential-privacy budget ε. It must be positive
	// for private synthesis; use the Non-Private variants for ε = ∞ baselines.
	Epsilon float64
	// Model selects the structural model (default ModelTriCycLe).
	Model ModelKind
	// TruncationK overrides the edge-truncation parameter used when learning
	// the attribute–edge correlations; zero selects the paper's heuristic
	// k = n^{1/3}.
	TruncationK int
	// SampleIterations is the number of acceptance-probability refinement
	// rounds in the synthesis step (default 3).
	SampleIterations int
	// Seed seeds the deterministic random source used for both fitting and
	// sampling. Runs with equal seeds and inputs are reproducible.
	Seed int64
	// Parallelism is the number of concurrent streams used by the structural
	// generators and the fitting pipeline's measurement passes: ≤ 0 means
	// "auto" (the process default, see SetParallelism), 1 forces sequential
	// execution. Fitted models are bit-identical for every worker count;
	// sampling output is deterministic per (Seed, resolved worker count)
	// pair.
	Parallelism int
}

// Fit learns ε-differentially private AGM parameters from the sensitive graph
// g without sampling a synthetic graph. The returned model can be stored and
// used to sample any number of synthetic graphs with Sample at no additional
// privacy cost.
func Fit(g *Graph, opts Options) (*FittedModel, error) {
	model, err := structuralModel(opts.Model, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	rng := dp.NewRand(opts.Seed)
	return core.FitDP(context.Background(), rng, g, core.Config{
		Epsilon:     opts.Epsilon,
		TruncationK: opts.TruncationK,
		Model:       model,
		Parallelism: opts.Parallelism,
	})
}

// FitNonPrivate learns exact AGM parameters (no privacy), the baseline the
// paper calls AGM-FCL / AGM-TriCL.
func FitNonPrivate(g *Graph, kind ModelKind) (*FittedModel, error) {
	// Baselines pin sequential generation (parallelism 1) so the paper's
	// reference points are byte-reproducible across machines; use Options
	// with Sample/Synthesize when baseline throughput matters more. The
	// fitting measurements themselves still run at the process default —
	// they are bit-identical for every worker count.
	model, err := structuralModel(kind, 1)
	if err != nil {
		return nil, err
	}
	return core.FitWith(g, model, 0), nil
}

// Sample draws one synthetic attributed graph from a fitted model. By the
// post-processing property of differential privacy this consumes no
// additional privacy budget.
func Sample(m *FittedModel, opts Options) (*Graph, error) {
	model, err := structuralModel(opts.Model, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	rng := dp.NewRand(opts.Seed)
	return core.Sample(rng, m, core.SampleOptions{Iterations: opts.SampleIterations, Model: model})
}

// Synthesize runs the complete AGM-DP pipeline (Algorithm 3 of the paper):
// it learns private model parameters from g under the budget opts.Epsilon and
// samples one synthetic graph. The synthetic graph and the fitted model are
// returned; the fitted model can be reused with Sample to draw more graphs.
func Synthesize(g *Graph, opts Options) (*Graph, *FittedModel, error) {
	model, err := structuralModel(opts.Model, opts.Parallelism)
	if err != nil {
		return nil, nil, err
	}
	rng := dp.NewRand(opts.Seed)
	return core.Synthesize(rng, g, core.Config{
		Epsilon:     opts.Epsilon,
		TruncationK: opts.TruncationK,
		Model:       model,
		Parallelism: opts.Parallelism,
	}, core.SampleOptions{Iterations: opts.SampleIterations, Model: model})
}

// SynthesizeNonPrivate runs the original (non-private) AGM workflow, used as
// the reference point in the paper's tables. It pins sequential generation
// (parallelism 1) so the reference output is byte-reproducible for a given
// seed on every machine, whatever its core count.
func SynthesizeNonPrivate(g *Graph, kind ModelKind, seed int64) (*Graph, *FittedModel, error) {
	model, err := structuralModel(kind, 1)
	if err != nil {
		return nil, nil, err
	}
	rng := dp.NewRand(seed)
	return core.SynthesizeNonPrivate(rng, g, model, core.SampleOptions{})
}

// Evaluate compares a synthetic graph against the original input and returns
// the error metrics used throughout the paper's evaluation (Tables 2–5).
func Evaluate(original, synthetic *Graph) Metrics {
	return experiments.CompareGraphs(original, synthetic)
}

// AttributeDistribution returns the exact node-attribute distribution ΘX of a
// graph.
func AttributeDistribution(g *Graph) []float64 { return attrs.TrueThetaX(g) }

// CorrelationDistribution returns the exact attribute–edge correlation
// distribution ΘF of a graph.
func CorrelationDistribution(g *Graph) []float64 { return attrs.TrueThetaF(g) }

// --- Synthesis service: model serialization, registry and engine ---

// Registry is a thread-safe, content-addressed store of fitted models with
// optional on-disk persistence; see NewRegistry.
type Registry = registry.Registry

// RegistryOptions configures NewRegistry.
type RegistryOptions = registry.Options

// ModelInfo summarises one stored model in registry listings.
type ModelInfo = registry.Info

// NewRegistry opens a model registry. With a non-empty Dir the registry
// persists models to disk and reloads them on the next open, so expensive DP
// fits survive process restarts.
func NewRegistry(opts RegistryOptions) (*Registry, error) { return registry.Open(opts) }

// GraphStore is a thread-safe, content-addressed store of immutable graphs
// with optional on-disk persistence as binary CSR snapshots; see
// NewGraphStore.
type GraphStore = graphstore.Store

// GraphStoreOptions configures NewGraphStore.
type GraphStoreOptions = graphstore.Options

// GraphInfo summarises one stored graph in graph-store listings.
type GraphInfo = graphstore.Info

// NewGraphStore opens a graph store. With a non-empty Dir every stored graph
// is persisted as a <id>.csr binary snapshot and reloaded on the next open,
// so uploaded graphs survive service restarts.
func NewGraphStore(opts GraphStoreOptions) (*GraphStore, error) { return graphstore.Open(opts) }

// Engine is a concurrent sampling worker pool over fitted models; see
// NewEngine.
type Engine = engine.Engine

// EngineConfig configures NewEngine.
type EngineConfig = engine.Config

// SampleRequest describes one engine sampling job.
type SampleRequest = engine.Request

// NewEngine starts a concurrent synthesis engine. Callers must Close it.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// MarshalModel encodes a fitted model into its canonical, versioned JSON
// form, suitable for storage or transport.
func MarshalModel(m *FittedModel) ([]byte, error) { return core.MarshalModel(m) }

// UnmarshalModel decodes and validates a model encoded by MarshalModel.
func UnmarshalModel(data []byte) (*FittedModel, error) { return core.UnmarshalModel(data) }

// ModelID returns the content-addressed identifier of a fitted model (equal
// parameters always hash to equal IDs).
func ModelID(m *FittedModel) (string, error) { return core.ModelID(m) }

// Datasets returns the calibrated synthetic dataset profiles standing in for
// the paper's four real-world social networks.
func Datasets() []DatasetProfile { return datasets.AllProfiles() }

// GenerateDataset builds one synthetic dataset by name ("lastfm", "petster",
// "epinions", "pokec") at the given scale (0 < scale ≤ 1; zero selects the
// profile's default scale) with a deterministic seed. Scales outside (0, 1]
// are rejected with an error, the same validation the HTTP service applies.
func GenerateDataset(name string, scale float64, seed int64) (*Graph, error) {
	p, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = p.DefaultScale
	}
	if err := datasets.CheckScale(scale); err != nil {
		return nil, err
	}
	return datasets.Generate(dp.NewRand(seed), p.Scaled(scale)), nil
}
