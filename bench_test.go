package agmdp

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benchmarks for the design choices called
// out in DESIGN.md and micro-benchmarks for the heaviest primitives.
//
// Each experiment benchmark regenerates its table/figure through the drivers
// in internal/experiments at a reduced scale and trial count so that
// `go test -bench=. -benchmem` finishes in laptop time; run
// cmd/agmdp-experiments for full-scale reproductions. The formatted rows (the
// same rows/series the paper reports) are emitted through b.Logf, so run with
// `go test -bench=. -v` to see them inline.

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"agmdp/internal/datasets"
	"agmdp/internal/dp"
	"agmdp/internal/experiments"
	"agmdp/internal/structural"
	"agmdp/internal/triangles"
)

// benchOpts returns reduced-scale experiment options keyed by dataset size so
// every benchmark iteration stays in the seconds range.
func benchOpts(dataset string) experiments.Options {
	scale := 0.15
	switch dataset {
	case "epinions":
		scale = 0.05
	case "pokec":
		scale = 0.005
	}
	return experiments.Options{Scale: scale, Trials: 1, Seed: 1, SampleIterations: 1}
}

// benchmarkTable regenerates one of Tables 2–5.
func benchmarkTable(b *testing.B, dataset string) {
	b.Helper()
	opts := benchOpts(dataset)
	opts.Epsilons = []float64{math.Log(3), 0.2}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable(dataset, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Format())
		}
	}
}

// BenchmarkTable2_Lastfm regenerates Table 2 (Last.fm).
func BenchmarkTable2_Lastfm(b *testing.B) { benchmarkTable(b, "lastfm") }

// BenchmarkTable3_Petster regenerates Table 3 (Petster).
func BenchmarkTable3_Petster(b *testing.B) { benchmarkTable(b, "petster") }

// BenchmarkTable4_Epinions regenerates Table 4 (Epinions).
func BenchmarkTable4_Epinions(b *testing.B) { benchmarkTable(b, "epinions") }

// BenchmarkTable5_Pokec regenerates Table 5 (Pokec).
func BenchmarkTable5_Pokec(b *testing.B) { benchmarkTable(b, "pokec") }

// BenchmarkTable6_DatasetProperties regenerates the dataset-property table.
func BenchmarkTable6_DatasetProperties(b *testing.B) {
	opts := experiments.Options{Scale: 0.05, Trials: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable6(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatTable6(rows))
		}
	}
}

// BenchmarkFigure1_TruncationK regenerates Figure 1 (MAE of the truncated ΘF
// estimator with the best k vs the n^{1/3} heuristic).
func BenchmarkFigure1_TruncationK(b *testing.B) {
	opts := benchOpts("lastfm")
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFigure1([]string{"lastfm", "petster"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFigure1(points))
		}
	}
}

// benchmarkFigure23 regenerates the Figure 2 (degree CCDF) and Figure 3
// (clustering CCDF) comparison of the structural models for one dataset.
func benchmarkFigure23(b *testing.B, dataset string) {
	b.Helper()
	opts := benchOpts(dataset)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure23(dataset, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Format())
		}
	}
}

// BenchmarkFigure2_DegreeCCDF regenerates the degree-distribution comparison
// (Figure 2); the same driver also produces the clustering CCDFs of Figure 3.
func BenchmarkFigure2_DegreeCCDF(b *testing.B) { benchmarkFigure23(b, "lastfm") }

// BenchmarkFigure3_ClusteringCCDF regenerates the clustering-coefficient
// comparison (Figure 3) on a second dataset.
func BenchmarkFigure3_ClusteringCCDF(b *testing.B) { benchmarkFigure23(b, "petster") }

// BenchmarkFigure5_CorrelationMethods regenerates Figure 5 (edge truncation vs
// smooth sensitivity vs sample-and-aggregate vs naive Laplace).
func BenchmarkFigure5_CorrelationMethods(b *testing.B) {
	opts := benchOpts("lastfm")
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFigure5([]string{"lastfm"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFigure5(points))
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblation_BudgetSplit compares privacy-budget splits for
// AGMDP-TriCycLe.
func BenchmarkAblation_BudgetSplit(b *testing.B) {
	opts := benchOpts("lastfm")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationBudgetSplit("lastfm", math.Log(2), opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatBudgetSplit(res))
		}
	}
}

// BenchmarkAblation_ConstrainedInference compares the Hay et al. constrained
// inference degree-sequence estimator against raw Laplace noise.
func BenchmarkAblation_ConstrainedInference(b *testing.B) {
	opts := benchOpts("lastfm")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationConstrainedInference("lastfm", 0.3, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("constrained inference L1/node = %.3f, naive = %.3f", res.L1WithInference, res.L1Naive)
		}
	}
}

// BenchmarkAblation_TriangleEstimators compares the Ladder triangle estimator
// against the naive Laplace baseline.
func BenchmarkAblation_TriangleEstimators(b *testing.B) {
	opts := benchOpts("lastfm")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationTriangleEstimators("lastfm", 0.5, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Ladder MRE = %.3f, naive Laplace MRE = %.3f (truth %d)", res.LadderMRE, res.NaiveMRE, res.Truth)
		}
	}
}

// BenchmarkAblation_PostProcess compares TriCycLe with and without the
// orphan-node post-processing extension (Algorithm 2).
func BenchmarkAblation_PostProcess(b *testing.B) {
	opts := experiments.Options{Scale: 0.01, Trials: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationPostProcess("pokec", opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("orphans with post-processing = %.1f, without = %.1f", res.OrphansWith, res.OrphansWithout)
		}
	}
}

// --- Micro-benchmarks for the heaviest primitives ---

// benchGraph builds a mid-sized calibrated graph once per benchmark.
func benchGraph(b *testing.B, name string, scale float64) *Graph {
	b.Helper()
	p, err := datasets.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return datasets.Generate(dp.NewRand(7), p.Scaled(scale))
}

// BenchmarkDatasetGeneration measures the calibrated dataset generator.
func BenchmarkDatasetGeneration(b *testing.B) {
	p, _ := datasets.ByName("lastfm")
	scaled := p.Scaled(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		datasets.Generate(dp.NewRand(int64(i)), scaled)
	}
}

// BenchmarkTriangleCounting measures exact triangle counting.
func BenchmarkTriangleCounting(b *testing.B) {
	g := benchGraph(b, "lastfm", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Triangles() == 0 {
			b.Fatal("no triangles")
		}
	}
}

// BenchmarkLadderTriangleCount measures the private (Ladder) triangle count.
func BenchmarkLadderTriangleCount(b *testing.B) {
	g := benchGraph(b, "lastfm", 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		triangles.PrivateCount(dp.NewRand(int64(i)), g, 0.5)
	}
}

// BenchmarkEdgeTruncation measures the µ(G, k) projection.
func BenchmarkEdgeTruncation(b *testing.B) {
	g := benchGraph(b, "lastfm", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Truncate(12)
	}
}

// BenchmarkTriCycLeGeneration measures one TriCycLe graph generation.
func BenchmarkTriCycLeGeneration(b *testing.B) {
	g := benchGraph(b, "lastfm", 0.5)
	params := structural.Params{Degrees: g.DegreeSequence(), Triangles: g.Triangles()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		structural.TriCycLe{}.Generate(dp.NewRand(int64(i)), g.NumNodes(), params, nil)
	}
}

// BenchmarkFCLGeneration measures one FCL graph generation.
func BenchmarkFCLGeneration(b *testing.B) {
	g := benchGraph(b, "lastfm", 0.5)
	params := structural.Params{Degrees: g.DegreeSequence()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		structural.FCL{}.Generate(dp.NewRand(int64(i)), g.NumNodes(), params, nil)
	}
}

// --- Synthesis-service benchmarks (concurrent sampling engine) ---

// engineBenchFixture fits a non-private FCL model on a ≥50k-node calibrated
// pokec sample, shared across the engine benchmarks (fitting is the expensive
// step being amortised — exactly the serving scenario the engine targets).
var (
	engineBenchOnce  sync.Once
	engineBenchFit   *FittedModel
	engineBenchNodes int
)

func engineBenchModel(b *testing.B) *FittedModel {
	b.Helper()
	engineBenchOnce.Do(func() {
		p, err := datasets.ByName("pokec")
		if err != nil {
			panic(err)
		}
		g := datasets.Generate(dp.NewRand(7), p.Scaled(0.1))
		engineBenchNodes = g.NumNodes()
		m, err := FitNonPrivate(g, ModelFCL)
		if err != nil {
			panic(err)
		}
		engineBenchFit = m
	})
	if engineBenchNodes < 50000 {
		b.Fatalf("benchmark dataset has %d nodes, want ≥ 50000", engineBenchNodes)
	}
	return engineBenchFit
}

// benchmarkEngineSample measures throughput of a batch of concurrent sampling
// jobs on an engine with the given worker count. Before timing it records the
// engine's determinism contract: same seed + same worker count ⇒ identical
// output graph. The multi-worker speedup over the 1-worker baseline is
// proportional to the cores available; on a GOMAXPROCS=1 machine the runs
// coincide (modulo scheduling overhead) by construction.
func benchmarkEngineSample(b *testing.B, workers int) {
	b.Helper()
	m := engineBenchModel(b)
	e := NewEngine(EngineConfig{Workers: workers, Seed: 1})
	defer e.Close()
	ctx := context.Background()

	g1, err := e.Sample(ctx, SampleRequest{Model: m, Seed: 42, Iterations: 1})
	if err != nil {
		b.Fatal(err)
	}
	g2, err := e.Sample(ctx, SampleRequest{Model: m, Seed: 42, Iterations: 1})
	if err != nil {
		b.Fatal(err)
	}
	if !g1.Equal(g2) {
		b.Fatalf("determinism violated at %d workers: same seed gave different graphs", workers)
	}

	const batch = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, batch)
		for j := 0; j < batch; j++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				_, err := e.Sample(ctx, SampleRequest{Model: m, Seed: seed, Iterations: 1})
				errs <- err
			}(int64(i*batch+j) + 1)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(batch), "graphs/op")
}

// BenchmarkEngineSample1Worker is the single-worker baseline.
func BenchmarkEngineSample1Worker(b *testing.B) { benchmarkEngineSample(b, 1) }

// BenchmarkEngineSample4Workers samples the same batch on four workers.
func BenchmarkEngineSample4Workers(b *testing.B) { benchmarkEngineSample(b, 4) }

// BenchmarkEngineSampleMaxWorkers uses one worker per available core.
func BenchmarkEngineSampleMaxWorkers(b *testing.B) {
	benchmarkEngineSample(b, runtime.GOMAXPROCS(0))
}

// BenchmarkParallelEdgeSampling measures intra-job parallelism: one Chung–Lu
// generation on the ≥50k-node degree sequence with 1 vs N proposal streams.
func BenchmarkParallelEdgeSampling(b *testing.B) {
	m := engineBenchModel(b)
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, streams := range counts {
		b.Run("streams="+strconv.Itoa(streams), func(b *testing.B) {
			model := structural.FCL{Parallelism: streams}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := model.Generate(rand.New(rand.NewSource(int64(i)+1)), m.N, m.Structural, nil)
				if g.NumEdges() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkSynthesizeEndToEnd measures the full AGM-DP pipeline on a small
// input (the paper reports ≈85 minutes for full-scale Pokec in Python;
// Appendix C.4).
func BenchmarkSynthesizeEndToEnd(b *testing.B) {
	g := benchGraph(b, "lastfm", 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Synthesize(g, Options{Epsilon: 1, Seed: int64(i) + 1, SampleIterations: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
