// Command agmdp-datagen generates one of the calibrated synthetic datasets
// that stand in for the paper's four real-world social networks (Last.fm,
// Petster, Epinions, Pokec; Table 6) and writes it in the library's
// attributed-graph text format.
//
// Usage:
//
//	agmdp-datagen -dataset lastfm [-scale 1.0] [-seed 1] -out lastfm.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"agmdp"
)

// usageError marks command-line usage problems; main exits 2 for them (as
// flag.ExitOnError did before the testable-run refactor). An empty message
// means the FlagSet already reported the problem.
type usageError string

func (e usageError) Error() string { return string(e) }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var uerr usageError
		if errors.As(err, &uerr) {
			if uerr != "" {
				fmt.Fprintf(os.Stderr, "agmdp-datagen: %s\n", string(uerr))
			}
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "agmdp-datagen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI with the given arguments, writing reports to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("agmdp-datagen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "lastfm", "dataset profile: lastfm, petster, epinions or pokec")
		scale   = fs.Float64("scale", 0, "size scale in (0, 1]; 0 selects the profile's default scale")
		seed    = fs.Int64("seed", 1, "random seed")
		outPath = fs.String("out", "", "output path (agmdp graph format)")
		list    = fs.Bool("list", false, "list available dataset profiles and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already printed the parse error and usage.
		return usageError("")
	}

	if *list {
		fmt.Fprintf(stdout, "%-10s %10s %10s %8s %14s\n", "name", "nodes", "edges", "dmax", "default scale")
		for _, p := range agmdp.Datasets() {
			fmt.Fprintf(stdout, "%-10s %10d %10d %8d %14.2f\n", p.Name, p.Nodes, p.Edges, p.MaxDegree, p.DefaultScale)
		}
		return nil
	}
	if *outPath == "" {
		fs.Usage()
		return usageError("-out is required")
	}
	g, err := agmdp.GenerateDataset(*dataset, *scale, *seed)
	if err != nil {
		return err
	}
	s := g.Summarize()
	fmt.Fprintf(stdout, "generated %s: n=%d m=%d dmax=%d triangles=%d avgC=%.4f\n",
		*dataset, s.Nodes, s.Edges, s.MaxDegree, s.Triangles, s.AvgLocalClustering)
	if err := agmdp.SaveGraph(g, *outPath); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *outPath)
	return nil
}
