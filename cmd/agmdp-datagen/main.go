// Command agmdp-datagen generates one of the calibrated synthetic datasets
// that stand in for the paper's four real-world social networks (Last.fm,
// Petster, Epinions, Pokec; Table 6) and writes it in the library's
// attributed-graph text format.
//
// Usage:
//
//	agmdp-datagen -dataset lastfm [-scale 1.0] [-seed 1] -out lastfm.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"agmdp"
)

func main() {
	var (
		dataset = flag.String("dataset", "lastfm", "dataset profile: lastfm, petster, epinions or pokec")
		scale   = flag.Float64("scale", 0, "size scale in (0, 1]; 0 selects the profile's default scale")
		seed    = flag.Int64("seed", 1, "random seed")
		outPath = flag.String("out", "", "output path (agmdp graph format)")
		list    = flag.Bool("list", false, "list available dataset profiles and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %10s %10s %8s %14s\n", "name", "nodes", "edges", "dmax", "default scale")
		for _, p := range agmdp.Datasets() {
			fmt.Printf("%-10s %10d %10d %8d %14.2f\n", p.Name, p.Nodes, p.Edges, p.MaxDegree, p.DefaultScale)
		}
		return
	}
	if *outPath == "" {
		fmt.Fprintln(os.Stderr, "agmdp-datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := agmdp.GenerateDataset(*dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	s := g.Summarize()
	fmt.Printf("generated %s: n=%d m=%d dmax=%d triangles=%d avgC=%.4f\n",
		*dataset, s.Nodes, s.Edges, s.MaxDegree, s.Triangles, s.AvgLocalClustering)
	if err := agmdp.SaveGraph(g, *outPath); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *outPath)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "agmdp-datagen: %v\n", err)
	os.Exit(1)
}
