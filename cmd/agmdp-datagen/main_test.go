package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agmdp"
)

func TestRunGeneratesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lastfm.txt")
	var buf strings.Builder
	err := run([]string{"-dataset", "lastfm", "-scale", "0.1", "-seed", "2", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "generated lastfm") {
		t.Fatalf("missing report: %q", buf.String())
	}
	g, err := agmdp.LoadGraph(out)
	if err != nil {
		t.Fatalf("output not loadable: %v", err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("generated graph is empty")
	}
	if g.NumAttributes() != 2 {
		t.Fatalf("attributes = %d, want 2", g.NumAttributes())
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	dir := t.TempDir()
	gen := func(name string, seed string) []byte {
		t.Helper()
		out := filepath.Join(dir, name)
		var buf strings.Builder
		if err := run([]string{"-dataset", "petster", "-scale", "0.1", "-seed", seed, "-out", out}, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b, c := gen("a.txt", "5"), gen("b.txt", "5"), gen("c.txt", "6")
	if string(a) != string(b) {
		t.Fatal("equal seeds gave different files")
	}
	if string(a) == string(c) {
		t.Fatal("different seeds gave identical files")
	}
}

func TestRunList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lastfm", "petster", "epinions", "pokec"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("list output missing %s: %q", name, buf.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-dataset", "lastfm"}, &buf); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run([]string{"-dataset", "nope", "-out", filepath.Join(t.TempDir(), "x.txt")}, &buf); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunHelpIsSuccess(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
}
