// Command agmdp-loadgen drives a running agmdp-serve instance with a mixed
// fit/sample/download/metrics workload and reports per-endpoint latency
// percentiles, throughput, and error/throttle rates against a target SLO.
//
// Usage:
//
//	agmdp-loadgen -addr http://127.0.0.1:8080 [-duration 10s] [-concurrency 8]
//	              [-keys KEY1,KEY2,...] [-dataset lastfm] [-scale 0.05]
//	              [-epsilon 0.4] [-seed 1]
//	              [-fit-weight 1] [-sample-weight 8] [-download-weight 2]
//	              [-metrics-weight 1] [-graph-metrics-weight 2]
//	              [-evaluate-weight 1]
//	              [-slo-p95 500ms] [-max-error-rate 0.01]
//
// A setup phase fits one model synchronously from the configured dataset and
// stores one sampled graph, so the steady-state mix exercises every endpoint
// class from the first request:
//
//	fit           POST /v1/fit        (async; spends ε — the only op that does)
//	sample        POST /v1/sample     (summary format; free post-processing)
//	download      GET  /v1/graphs/{id}?format=binary
//	metrics       GET  /v1/healthz
//	graph_metrics GET  /v1/graphs/{id}/metrics  (content-addressed bundle cache)
//	evaluate      POST /v1/evaluate   (utility evaluation as an async job)
//
// When -keys lists API keys, requests round-robin across them as N virtual
// tenants (sent as X-API-Key), so per-tenant rate limits and ε-budgets are
// exercised: 429 and 403 responses count as *throttles*, not errors — they
// are the admission control working as designed — and are reported
// separately. Errors are transport failures and unexpected status codes
// (anything 5xx, or non-2xx outside the throttle set).
//
// The exit status encodes the verdict: 0 when every endpoint met the SLO,
// 1 on an SLO breach (p95 over -slo-p95, or error rate over
// -max-error-rate), 2 on usage errors. -slo-p95 0 disables the latency
// check.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// usageError marks command-line problems; main exits 2 for them.
type usageError string

func (e usageError) Error() string { return string(e) }

// errSLOBreach is returned by run when the measured workload missed the SLO;
// main exits 1 for it (the report has already been printed).
var errSLOBreach = errors.New("SLO breach")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var uerr usageError
		if errors.As(err, &uerr) {
			if uerr != "" {
				fmt.Fprintf(os.Stderr, "agmdp-loadgen: %s\n", string(uerr))
			}
			os.Exit(2)
		}
		if errors.Is(err, errSLOBreach) {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "agmdp-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// op names one endpoint class of the mix. The names double as report rows.
const (
	opFit          = "fit"
	opSample       = "sample"
	opDownload     = "download"
	opMetrics      = "metrics"
	opGraphMetrics = "graph_metrics"
	opEvaluate     = "evaluate"
)

// result is one completed request: which op, how long, and how it ended.
type result struct {
	op        string
	latency   time.Duration
	throttled bool // 429 rate limit or 403 budget refusal
	err       bool // transport failure or unexpected status
}

// config is the parsed flag set.
type config struct {
	addr        string
	duration    time.Duration
	concurrency int
	keys        []string
	dataset     string
	scale       float64
	epsilon     float64
	seed        int64
	weights     map[string]int
	sloP95      time.Duration
	maxErrRate  float64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("agmdp-loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "", "base URL of the target server (required), e.g. http://127.0.0.1:8080")
		duration    = fs.Duration("duration", 10*time.Second, "steady-state load duration")
		concurrency = fs.Int("concurrency", 8, "concurrent workers")
		keys        = fs.String("keys", "", "comma-separated API keys for N virtual tenants (empty = unauthenticated)")
		dataset     = fs.String("dataset", "lastfm", "dataset profile for fit traffic")
		scale       = fs.Float64("scale", 0.05, "dataset scale for fit traffic (small keeps fits fast)")
		epsilon     = fs.Float64("epsilon", 0.4, "ε per fit request (each async fit spends this much budget)")
		seed        = fs.Int64("seed", 1, "workload RNG seed (op choice and fit seeds)")
		fitW        = fs.Int("fit-weight", 1, "relative weight of fit requests")
		sampleW     = fs.Int("sample-weight", 8, "relative weight of sample requests")
		downloadW   = fs.Int("download-weight", 2, "relative weight of graph downloads")
		metricsW    = fs.Int("metrics-weight", 1, "relative weight of healthz probes")
		graphMetW   = fs.Int("graph-metrics-weight", 2, "relative weight of graph metric-bundle requests")
		evaluateW   = fs.Int("evaluate-weight", 1, "relative weight of evaluate-job submissions")
		sloP95      = fs.Duration("slo-p95", 0, "per-endpoint p95 latency target (0 = no latency SLO)")
		maxErrRate  = fs.Float64("max-error-rate", 0.01, "max tolerated error rate per endpoint (throttles excluded)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usageError("")
	}
	if *addr == "" {
		return usageError("missing -addr")
	}
	if *concurrency < 1 {
		return usageError("-concurrency must be at least 1")
	}
	cfg := config{
		addr:        strings.TrimSuffix(*addr, "/"),
		duration:    *duration,
		concurrency: *concurrency,
		dataset:     *dataset,
		scale:       *scale,
		epsilon:     *epsilon,
		seed:        *seed,
		weights: map[string]int{
			opFit: *fitW, opSample: *sampleW, opDownload: *downloadW, opMetrics: *metricsW,
			opGraphMetrics: *graphMetW, opEvaluate: *evaluateW,
		},
		sloP95:     *sloP95,
		maxErrRate: *maxErrRate,
	}
	if *keys != "" {
		for _, k := range strings.Split(*keys, ",") {
			if k = strings.TrimSpace(k); k != "" {
				cfg.keys = append(cfg.keys, k)
			}
		}
	}
	total := 0
	for _, w := range cfg.weights {
		if w < 0 {
			return usageError("weights must be non-negative")
		}
		total += w
	}
	if total == 0 {
		return usageError("at least one weight must be positive")
	}
	return load(cfg, stdout)
}

// client wraps the HTTP plumbing shared by setup and steady state.
type client struct {
	http *http.Client
	addr string
	keys []string
	next int
	mu   sync.Mutex
}

// key returns the next API key round-robin, "" when unauthenticated.
func (c *client) key() string {
	if len(c.keys) == 0 {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.keys[c.next%len(c.keys)]
	c.next++
	return k
}

// do issues one request with the given key, returning the status code (0 on
// transport failure) after draining and closing the body.
func (c *client) do(method, path, key string, body any) (int, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.addr+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// doJSON is do plus response decoding, for the setup phase.
func (c *client) doJSON(method, path, key string, body, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(method, c.addr+path, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode/100 == 2 && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, fmt.Errorf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return resp.StatusCode, nil
}

// load runs setup, the timed steady state, and the report.
func load(cfg config, stdout io.Writer) error {
	c := &client{
		http: &http.Client{Timeout: 30 * time.Second},
		addr: cfg.addr,
		keys: cfg.keys,
	}

	// Setup: a synchronous fit gives the sample traffic a model, a stored
	// sample gives the download traffic a graph. Every virtual tenant runs
	// its own setup (spending ε once per tenant): a tenant-scoped server
	// confines each tenant to its own resources, and because fit and sample
	// are deterministic for equal seeds, the content-addressed IDs coincide
	// across tenants — one model ID, one graph ID, N independent handles.
	setupKeys := cfg.keys
	if len(setupKeys) == 0 {
		setupKeys = []string{""}
	}
	var fitted struct {
		ID string `json:"id"`
	}
	var sampled struct {
		GraphID string `json:"graph_id"`
	}
	for _, setupKey := range setupKeys {
		fitBody := map[string]any{
			"dataset": map[string]any{"name": cfg.dataset, "scale": cfg.scale, "seed": cfg.seed},
			"epsilon": cfg.epsilon,
			"seed":    cfg.seed,
		}
		if _, err := c.doJSON("POST", "/v1/fit", setupKey, fitBody, &fitted); err != nil {
			return fmt.Errorf("setup fit: %w", err)
		}
		sampleStore := map[string]any{"id": fitted.ID, "seed": cfg.seed, "store": true}
		if _, err := c.doJSON("POST", "/v1/sample", setupKey, sampleStore, &sampled); err != nil {
			return fmt.Errorf("setup sample: %w", err)
		}
	}
	fmt.Fprintf(stdout, "setup: model %s, graph %s; %d workers, %v, %d tenant key(s)\n",
		fitted.ID, sampled.GraphID, cfg.concurrency, cfg.duration, max(1, len(cfg.keys)))

	// The op schedule: a weighted slate each worker draws from with its own
	// deterministic RNG stream.
	var slate []string
	for _, op := range []string{opFit, opSample, opDownload, opMetrics, opGraphMetrics, opEvaluate} {
		for range cfg.weights[op] {
			slate = append(slate, op)
		}
	}

	results := make(chan result, 4096)
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := range cfg.concurrency {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(worker)))
			for time.Now().Before(deadline) {
				op := slate[rng.Intn(len(slate))]
				key := c.key()
				var (
					status int
					err    error
				)
				start := time.Now()
				switch op {
				case opFit:
					status, err = c.do("POST", "/v1/fit", key, map[string]any{
						"dataset": map[string]any{"name": cfg.dataset, "scale": cfg.scale, "seed": cfg.seed},
						"epsilon": cfg.epsilon,
						"seed":    rng.Int63(),
						"async":   true,
					})
				case opSample:
					status, err = c.do("POST", "/v1/sample", key, map[string]any{
						"id": fitted.ID, "seed": rng.Int63(), "format": "summary",
					})
				case opDownload:
					status, err = c.do("GET", "/v1/graphs/"+sampled.GraphID+"?format=binary", key, nil)
				case opMetrics:
					status, err = c.do("GET", "/v1/healthz", key, nil)
				case opGraphMetrics:
					status, err = c.do("GET", "/v1/graphs/"+sampled.GraphID+"/metrics", key, nil)
				case opEvaluate:
					// Pair-mode self-evaluation of the stored sample: cheap,
					// deterministic, and it exercises the whole evaluate job
					// path (submission, scoping, utility metrics).
					status, err = c.do("POST", "/v1/evaluate", key, map[string]any{
						"source_graph_id":    sampled.GraphID,
						"synthetic_graph_id": sampled.GraphID,
					})
				}
				results <- result{
					op:        op,
					latency:   time.Since(start),
					throttled: status == http.StatusTooManyRequests || status == http.StatusForbidden,
					err:       err != nil || (status/100 != 2 && status != http.StatusTooManyRequests && status != http.StatusForbidden),
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(results) }()

	perOp := make(map[string]*opStats)
	for r := range results {
		st := perOp[r.op]
		if st == nil {
			st = &opStats{}
			perOp[r.op] = st
		}
		st.add(r)
	}
	return report(cfg, perOp, stdout)
}

// opStats accumulates one endpoint's results.
type opStats struct {
	latencies []time.Duration
	throttled int
	errored   int
}

func (s *opStats) add(r result) {
	switch {
	case r.err:
		s.errored++
	case r.throttled:
		s.throttled++
	default:
		// Only successful requests contribute latency samples: a throttle is
		// an instant refusal and would flatter the percentiles.
		s.latencies = append(s.latencies, r.latency)
	}
}

func (s *opStats) total() int { return len(s.latencies) + s.throttled + s.errored }

// percentile returns the p-th percentile of the sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// report prints the per-endpoint table and checks the SLO, returning
// errSLOBreach when any endpoint missed it.
func report(cfg config, perOp map[string]*opStats, stdout io.Writer) error {
	fmt.Fprintf(stdout, "%-13s %8s %10s %10s %10s %8s %8s %9s\n",
		"endpoint", "requests", "p50", "p95", "p99", "throttle", "errors", "err_rate")
	var breaches []string
	for _, op := range []string{opFit, opSample, opDownload, opMetrics, opGraphMetrics, opEvaluate} {
		st := perOp[op]
		if st == nil || st.total() == 0 {
			continue
		}
		sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
		p50 := percentile(st.latencies, 50)
		p95 := percentile(st.latencies, 95)
		p99 := percentile(st.latencies, 99)
		errRate := float64(st.errored) / float64(st.total())
		fmt.Fprintf(stdout, "%-13s %8d %10v %10v %10v %8d %8d %8.2f%%\n",
			op, st.total(), p50.Round(time.Microsecond), p95.Round(time.Microsecond),
			p99.Round(time.Microsecond), st.throttled, st.errored, 100*errRate)
		if cfg.sloP95 > 0 && p95 > cfg.sloP95 {
			breaches = append(breaches, fmt.Sprintf("%s p95 %v > target %v", op, p95.Round(time.Microsecond), cfg.sloP95))
		}
		if errRate > cfg.maxErrRate {
			breaches = append(breaches, fmt.Sprintf("%s error rate %.2f%% > max %.2f%%", op, 100*errRate, 100*cfg.maxErrRate))
		}
	}
	if len(breaches) > 0 {
		for _, b := range breaches {
			fmt.Fprintf(stdout, "SLO BREACH: %s\n", b)
		}
		return errSLOBreach
	}
	fmt.Fprintln(stdout, "SLO met")
	return nil
}
