package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"agmdp/internal/engine"
	"agmdp/internal/graphstore"
	"agmdp/internal/jobs"
	"agmdp/internal/registry"
	"agmdp/internal/server"
	"agmdp/internal/tenant"
)

// newTarget spins up a full in-process service — engine, job manager, graph
// store and two authenticated tenants — for the loadgen to hit.
func newTarget(t *testing.T) *httptest.Server {
	t.Helper()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	jm, err := jobs.New(jobs.Options{Engine: eng, Store: graphs, Models: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(jm.Close)
	tenants, err := tenant.New(tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 1000, RatePerSec: 10000, Burst: 10000},
		{ID: "beta", Key: "beta-key", Budget: 1000, RatePerSec: 10000, Burst: 10000},
	}}, tenant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tenants.Close() })
	srv, err := server.New(server.Config{
		Registry:      reg,
		Engine:        eng,
		Graphs:        graphs,
		Jobs:          jm,
		Tenants:       tenants,
		SampleTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadgenSmoke runs a short mixed-traffic load against an in-process
// tenant-enabled server: the run must complete without unexpected errors
// (zero 5xx — throttles are fine) and print percentiles for every endpoint
// class.
func TestLoadgenSmoke(t *testing.T) {
	ts := newTarget(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-keys", "alpha-key,beta-key",
		"-duration", "2s",
		"-concurrency", "4",
		"-scale", "0.02",
		"-max-error-rate", "0", // any unexpected error (5xx, transport) fails the run
	}, &out)
	t.Logf("loadgen output:\n%s", out.String())
	if err != nil {
		t.Fatalf("loadgen run: %v", err)
	}
	for _, op := range []string{"fit", "sample", "download", "metrics", "p95", "SLO met"} {
		if !strings.Contains(out.String(), op) {
			t.Errorf("report missing %q", op)
		}
	}
}

// TestLoadgenBudgetThrottle gives the tenants a budget small enough that the
// fit traffic exhausts it mid-run: the run must still succeed (403 budget
// refusals are throttles, not errors) and report a non-zero throttle count
// for the fit endpoint.
func TestLoadgenBudgetThrottle(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	jm, err := jobs.New(jobs.Options{Engine: eng, Store: graphs, Models: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(jm.Close)
	// Budget 1.0 admits the ε=0.4 setup fit plus one load fit; the rest 403.
	tenants, err := tenant.New(tenant.File{Tenants: []tenant.Tenant{
		{ID: "tight", Key: "tight-key", Budget: 1.0, RatePerSec: 10000, Burst: 10000},
	}}, tenant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tenants.Close() })
	srv, err := server.New(server.Config{
		Registry: reg, Engine: eng, Graphs: graphs, Jobs: jm, Tenants: tenants,
		SampleTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var out bytes.Buffer
	err = run([]string{
		"-addr", ts.URL,
		"-keys", "tight-key",
		"-duration", "1s",
		"-concurrency", "2",
		"-scale", "0.02",
		"-fit-weight", "4", "-sample-weight", "1", "-download-weight", "0", "-metrics-weight", "0",
		"-max-error-rate", "0",
	}, &out)
	t.Logf("loadgen output:\n%s", out.String())
	if err != nil {
		t.Fatalf("loadgen run (throttles must not fail the SLO): %v", err)
	}
	// The fit row must show throttled requests once the ε-budget ran dry.
	var fitRow string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "fit ") {
			fitRow = line
		}
	}
	if fitRow == "" {
		t.Fatal("no fit row in report")
	}
	fields := strings.Fields(fitRow)
	// endpoint requests p50 p95 p99 throttle errors err_rate
	if len(fields) < 7 || fields[5] == "0" {
		t.Errorf("expected non-zero fit throttle count, row: %q", fitRow)
	}
}
