// Command agmdp-synth synthesizes a differentially private attributed graph
// from a sensitive input graph, implementing the end-to-end AGM-DP workflow
// (Algorithm 3 of Jorgensen, Yu, Cormode; SIGMOD 2016).
//
// Usage:
//
//	agmdp-synth -in graph.txt -out synthetic.txt -epsilon 1.0 [-model tricycle|fcl] [-k 0] [-seed 1]
//
// The input must be in the library's attributed-graph text format (see
// agmdp.SaveGraph); use agmdp-datagen to produce calibrated synthetic inputs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"agmdp"
)

// usageError marks command-line usage problems; main exits 2 for them (as
// flag.ExitOnError did before the testable-run refactor). An empty message
// means the FlagSet already reported the problem.
type usageError string

func (e usageError) Error() string { return string(e) }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var uerr usageError
		if errors.As(err, &uerr) {
			if uerr != "" {
				fmt.Fprintf(os.Stderr, "agmdp-synth: %s\n", string(uerr))
			}
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "agmdp-synth: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI with the given arguments, writing reports to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("agmdp-synth", flag.ContinueOnError)
	var (
		inPath     = fs.String("in", "", "path to the sensitive input graph (agmdp graph format)")
		outPath    = fs.String("out", "", "path to write the synthetic graph to (default: stdout summary only)")
		epsilon    = fs.Float64("epsilon", 1.0, "total differential-privacy budget ε (0 = non-private AGM)")
		model      = fs.String("model", "tricycle", "structural model: tricycle or fcl")
		truncation = fs.Int("k", 0, "edge-truncation parameter for ΘF (0 = n^(1/3) heuristic)")
		seed       = fs.Int64("seed", 1, "random seed (runs are reproducible per seed)")
		iterations = fs.Int("iterations", 3, "acceptance-probability refinement rounds")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already printed the parse error and usage.
		return usageError("")
	}

	if *inPath == "" {
		fs.Usage()
		return usageError("-in is required")
	}
	input, err := agmdp.LoadGraph(*inPath)
	if err != nil {
		return err
	}

	var (
		synth  *agmdp.Graph
		fitted *agmdp.FittedModel
	)
	if *epsilon > 0 {
		synth, fitted, err = agmdp.Synthesize(input, agmdp.Options{
			Epsilon:          *epsilon,
			Model:            agmdp.ModelKind(*model),
			TruncationK:      *truncation,
			SampleIterations: *iterations,
			Seed:             *seed,
		})
	} else {
		synth, fitted, err = agmdp.SynthesizeNonPrivate(input, agmdp.ModelKind(*model), *seed)
	}
	if err != nil {
		return err
	}

	metrics := agmdp.Evaluate(input, synth)
	fmt.Fprintf(stdout, "input:     %d nodes, %d edges, %d triangles\n", input.NumNodes(), input.NumEdges(), input.Triangles())
	fmt.Fprintf(stdout, "synthetic: %d nodes, %d edges, %d triangles (model %s, epsilon %.4g)\n",
		synth.NumNodes(), synth.NumEdges(), synth.Triangles(), fitted.ModelName, fitted.Epsilon)
	fmt.Fprintf(stdout, "errors:    ThetaF MAE %.4f, ThetaF Hellinger %.4f, degree KS %.4f, degree Hellinger %.4f\n",
		metrics.MREThetaF, metrics.HellingerThetaF, metrics.KSDegree, metrics.HellingerDegree)
	fmt.Fprintf(stdout, "           triangles MRE %.4f, avg clustering MRE %.4f, edges MRE %.4f\n",
		metrics.MRETriangles, metrics.MREAvgClustering, metrics.MREEdges)

	if *outPath != "" {
		if err := agmdp.SaveGraph(synth, *outPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote synthetic graph to %s\n", *outPath)
	}
	return nil
}
