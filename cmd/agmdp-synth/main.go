// Command agmdp-synth synthesizes a differentially private attributed graph
// from a sensitive input graph, implementing the end-to-end AGM-DP workflow
// (Algorithm 3 of Jorgensen, Yu, Cormode; SIGMOD 2016).
//
// Usage:
//
//	agmdp-synth -in graph.txt -out synthetic.txt -epsilon 1.0 [-model tricycle|fcl] [-k 0] [-seed 1]
//
// The input must be in the library's attributed-graph text format (see
// agmdp.SaveGraph); use agmdp-datagen to produce calibrated synthetic inputs.
package main

import (
	"flag"
	"fmt"
	"os"

	"agmdp"
)

func main() {
	var (
		inPath     = flag.String("in", "", "path to the sensitive input graph (agmdp graph format)")
		outPath    = flag.String("out", "", "path to write the synthetic graph to (default: stdout summary only)")
		epsilon    = flag.Float64("epsilon", 1.0, "total differential-privacy budget ε (0 = non-private AGM)")
		model      = flag.String("model", "tricycle", "structural model: tricycle or fcl")
		truncation = flag.Int("k", 0, "edge-truncation parameter for ΘF (0 = n^(1/3) heuristic)")
		seed       = flag.Int64("seed", 1, "random seed (runs are reproducible per seed)")
		iterations = flag.Int("iterations", 3, "acceptance-probability refinement rounds")
	)
	flag.Parse()

	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "agmdp-synth: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	input, err := agmdp.LoadGraph(*inPath)
	if err != nil {
		fatal(err)
	}

	var (
		synth  *agmdp.Graph
		fitted *agmdp.FittedModel
	)
	if *epsilon > 0 {
		synth, fitted, err = agmdp.Synthesize(input, agmdp.Options{
			Epsilon:          *epsilon,
			Model:            agmdp.ModelKind(*model),
			TruncationK:      *truncation,
			SampleIterations: *iterations,
			Seed:             *seed,
		})
	} else {
		synth, fitted, err = agmdp.SynthesizeNonPrivate(input, agmdp.ModelKind(*model), *seed)
	}
	if err != nil {
		fatal(err)
	}

	metrics := agmdp.Evaluate(input, synth)
	fmt.Printf("input:     %d nodes, %d edges, %d triangles\n", input.NumNodes(), input.NumEdges(), input.Triangles())
	fmt.Printf("synthetic: %d nodes, %d edges, %d triangles (model %s, epsilon %.4g)\n",
		synth.NumNodes(), synth.NumEdges(), synth.Triangles(), fitted.ModelName, fitted.Epsilon)
	fmt.Printf("errors:    ThetaF MAE %.4f, ThetaF Hellinger %.4f, degree KS %.4f, degree Hellinger %.4f\n",
		metrics.MREThetaF, metrics.HellingerThetaF, metrics.KSDegree, metrics.HellingerDegree)
	fmt.Printf("           triangles MRE %.4f, avg clustering MRE %.4f, edges MRE %.4f\n",
		metrics.MRETriangles, metrics.MREAvgClustering, metrics.MREEdges)

	if *outPath != "" {
		if err := agmdp.SaveGraph(synth, *outPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote synthetic graph to %s\n", *outPath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "agmdp-synth: %v\n", err)
	os.Exit(1)
}
