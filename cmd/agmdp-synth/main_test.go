package main

import (
	"path/filepath"
	"strings"
	"testing"

	"agmdp"
	"agmdp/internal/dp"
)

// writeFixture saves a small sensitive input graph for the CLI to consume.
func writeFixture(t *testing.T) string {
	t.Helper()
	rng := dp.NewRand(3)
	b := agmdp.NewGraphBuilder(80, 2)
	for i := 0; i < 300; i++ {
		b.AddEdge(rng.Intn(80), rng.Intn(80))
	}
	for i := 0; i < 80; i++ {
		b.SetAttr(i, agmdp.AttrVector(rng.Intn(4)))
	}
	g := b.Finalize()
	path := filepath.Join(t.TempDir(), "input.txt")
	if err := agmdp.SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrivateSynthesis(t *testing.T) {
	in := writeFixture(t)
	out := filepath.Join(t.TempDir(), "synth.txt")
	var buf strings.Builder
	err := run([]string{"-in", in, "-out", out, "-epsilon", "1.0", "-seed", "4", "-iterations", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{"input:", "synthetic:", "errors:", "wrote synthetic graph"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q: %q", want, report)
		}
	}
	g, err := agmdp.LoadGraph(out)
	if err != nil {
		t.Fatalf("output not loadable: %v", err)
	}
	if g.NumNodes() != 80 {
		t.Fatalf("synthetic has %d nodes, want 80", g.NumNodes())
	}
}

func TestRunNonPrivateFCL(t *testing.T) {
	in := writeFixture(t)
	var buf strings.Builder
	if err := run([]string{"-in", in, "-epsilon", "0", "-model", "fcl", "-seed", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "model FCL") {
		t.Fatalf("report missing model name: %q", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/graph.txt"}, &buf); err == nil {
		t.Fatal("unreadable input accepted")
	}
	in := writeFixture(t)
	if err := run([]string{"-in", in, "-model", "gnp"}, &buf); err == nil {
		t.Fatal("unknown model accepted")
	}
}
