// Command agmdp-serve runs the AGM-DP synthesis service: an HTTP/JSON API
// over a fitted-model registry and a concurrent sampling engine. Fit a
// differentially private model once, then sample synthetic graphs from it any
// number of times at no additional privacy cost (the post-processing property
// of Algorithm 3).
//
// Usage:
//
//	agmdp-serve [-addr :8080] [-store DIR] [-graph-store DIR] [-jobs-dir DIR]
//	            [-workers N] [-queue N] [-parallelism N] [-seed 1]
//	            [-max-models N] [-max-graphs N] [-jobs-retain N]
//	            [-max-job-samples N] [-max-concurrent-fits N]
//	            [-metrics-cache N] [-tenants FILE] [-tenant-dir DIR]
//	            [-log-format text|json] [-pprof]
//
// The service speaks the versioned, resource-oriented /v1 API (see
// docs/api.md for the full reference):
//
//	POST   /v1/graphs        upload a graph (JSON, agmdp text, or binary CSR)
//	GET    /v1/graphs[/{id}] list graphs / stat one (?format=json|text|binary downloads)
//	DELETE /v1/graphs/{id}   evict a graph
//	POST   /v1/fit           fit a model from a stored graph, inline graph or dataset
//	                         (async:true detaches the fit into a job)
//	POST   /v1/sample        sample synchronously (inline, stored, text or binary)
//	GET    /v1/graphs/{id}/metrics
//	                         canonical metric bundle of a stored graph, served
//	                         from the content-addressed analytics cache
//	POST   /v1/evaluate      utility evaluation (original vs synthetic) as an
//	                         async job of kind "evaluate"
//	POST   /v1/jobs          submit an async job: batch sampling, or kind:"fit"
//	GET    /v1/jobs[/{id}]   list jobs / poll progress and results
//	DELETE /v1/jobs/{id}     cancel (or drop) a job
//	GET    /v1/models[/{id}] list models / metadata (?full=1 for the serialized model)
//	DELETE /v1/models/{id}   evict a model
//	GET    /v1/healthz       service health, uptime, resource counts and load
//	GET    /metrics          Prometheus text exposition of all service metrics
//	GET    /v1/stats         the same metrics as JSON, with latency quantiles
//
// Every response carries an X-Request-Id header (propagated from the request
// when present) and every request is logged as one structured line via
// log/slog in the -log-format of choice. -pprof additionally mounts
// net/http/pprof under /debug/pprof/.
//
// Finished-job metadata persists to -jobs-dir (defaulting to a jobs/
// directory inside -graph-store when one is configured), so job results —
// including the model IDs of async fits — survive restarts.
//
// -tenants FILE enables multi-tenant serving: API requests authenticate with
// X-API-Key (or Authorization: Bearer), each tenant gets a token-bucket rate
// limit, and every DP fit is charged against the tenant's per-graph ε-budget
// — refused with 403 once exhausted. Sampling fitted models stays free (the
// post-processing property). Each tenant is confined to the graphs, models
// and jobs it created — cross-tenant access answers 404 — and the operator
// surfaces (/metrics, /v1/stats, /debug/pprof/) require the tenants file's
// operator_token, since they export per-tenant ε spends. -tenant-dir
// persists the ε-ledger (ledger.jsonl) and the ownership log (owners.jsonl)
// as append-only JSONL so spends and scoping survive restarts.
//
// The original unversioned endpoints (/fit, /sample, /models…, /healthz)
// remain as aliases of the v1 handlers.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests get
// a drain window, running jobs are cancelled, then the engine stops after
// finishing queued work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"agmdp/internal/analytics"
	"agmdp/internal/engine"
	"agmdp/internal/graphstore"
	"agmdp/internal/jobs"
	"agmdp/internal/registry"
	"agmdp/internal/server"
	"agmdp/internal/tenant"
)

// usageError marks command-line usage problems; main exits 2 for them (as
// flag.ExitOnError did before the testable-run refactor). An empty message
// means the FlagSet already reported the problem.
type usageError string

func (e usageError) Error() string { return string(e) }

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		var uerr usageError
		if errors.As(err, &uerr) {
			if uerr != "" {
				fmt.Fprintf(os.Stderr, "agmdp-serve: %s\n", string(uerr))
			}
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "agmdp-serve: %v\n", err)
		os.Exit(1)
	}
}

// run builds and serves the synthesis service until the context behind
// SIGINT/SIGTERM (or the optional ready callback's cancellation in tests)
// fires. ready, when non-nil, receives the listen address after the server
// socket is bound.
func run(args []string, stdout io.Writer, ready func(addr string, stop func())) error {
	fs := flag.NewFlagSet("agmdp-serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		store         = fs.String("store", "", "model store directory (empty = in-memory only)")
		tableDir      = fs.String("table-dir", "", "acceptance-table directory (empty = next to the model store; in-memory when no model store)")
		graphStore    = fs.String("graph-store", "", "graph store directory for binary CSR snapshots (empty = in-memory only)")
		graphCache    = fs.Int64("graph-cache-bytes", 0, "byte budget for decoded graphs kept in memory (0 = default 256 MiB, negative = unbounded)")
		jobsDir       = fs.String("jobs-dir", "", "finished-job metadata directory (empty = <graph-store>/jobs, or in-memory when no graph store)")
		workers       = fs.Int("workers", 0, "sampling workers (0 = GOMAXPROCS)")
		queue         = fs.Int("queue", 0, "job queue bound (0 = 4x workers)")
		parallelism   = fs.Int("parallelism", 0, "intra-job sampling streams and fit-pipeline workers (0 = auto/GOMAXPROCS, 1 = sequential)")
		seed          = fs.Int64("seed", 1, "base seed for the per-worker RNG streams")
		maxModels     = fs.Int("max-models", 0, "max resident models, oldest evicted first (0 = unbounded)")
		maxGraphs     = fs.Int("max-graphs", 0, "max resident graphs, oldest evicted first (0 = unbounded)")
		jobsRetain    = fs.Int("jobs-retain", 0, "finished sampling jobs kept for result pickup (0 = default 64)")
		maxJobSamples = fs.Int("max-job-samples", 0, "max samples per job (0 = default 1024)")
		maxFits       = fs.Int("max-concurrent-fits", 0, "fit jobs running at once, the rest queue (0 = GOMAXPROCS, floored at 2)")
		metricsCache  = fs.Int("metrics-cache", 0, "max metric bundles resident in memory (0 = default 128, negative = unbounded)")
		tenantsFile   = fs.String("tenants", "", "tenants config JSON (enables API-key auth, per-tenant rate limits and ε-budgets)")
		tenantDir     = fs.String("tenant-dir", "", "ε-ledger directory, persisted as append-only JSONL (empty = in-memory ledger)")
		logFormat     = fs.String("log-format", "text", "structured log format: text or json")
		pprofFlag     = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (operator-facing listeners only)")
		chunkRows     = fs.Int("stream-chunk-rows", 0, "rows per frame for chunked graph streaming (0 = default 32768)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already printed the parse error and usage.
		return usageError("")
	}

	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return usageError(fmt.Sprintf("unknown -log-format %q (want text or json)", *logFormat))
	}
	logger := slog.New(logHandler)
	// The default logger backs the per-request lines and the package-level
	// error paths (stream aborts, job-persistence failures).
	slog.SetDefault(logger)

	reg, err := registry.Open(registry.Options{Dir: *store, TableDir: *tableDir, MaxModels: *maxModels})
	if err != nil {
		return err
	}
	for _, warning := range reg.LoadWarnings() {
		logger.Warn("skipped store file", "warning", warning)
	}
	graphs, err := graphstore.Open(graphstore.Options{Dir: *graphStore, MaxGraphs: *maxGraphs, CacheBytes: *graphCache})
	if err != nil {
		return err
	}
	// Release snapshot memory maps after the server (deferred later, so it
	// unwinds first) has stopped serving them.
	defer graphs.Close()
	for _, warning := range graphs.LoadWarnings() {
		logger.Warn("skipped graph snapshot", "warning", warning)
	}
	// Metric bundles persist next to the graph snapshots they describe, so a
	// deployment that persists its graphs serves warm analytics across
	// restarts; without a graph-store directory the bundle cache is
	// memory-only, like the graphs themselves.
	metrics, err := analytics.NewCache(analytics.Options{
		Source:      graphs,
		Dir:         *graphStore,
		MaxEntries:  *metricsCache,
		Parallelism: *parallelism,
	})
	if err != nil {
		return err
	}
	eng := engine.New(engine.Config{
		Workers:     *workers,
		QueueSize:   *queue,
		Seed:        *seed,
		Parallelism: *parallelism,
		// The registry doubles as the acceptance-table cache: default-shaped
		// sample requests reuse each model's refined acceptance filter
		// instead of re-fitting it per sample.
		Acceptance: reg,
	})
	defer eng.Close()
	// Finished-job metadata lives next to the graph store by default, so a
	// deployment that persists its graphs automatically keeps its job
	// results — including async fit model IDs — across restarts.
	jobsPath := *jobsDir
	if jobsPath == "" && *graphStore != "" {
		jobsPath = filepath.Join(*graphStore, "jobs")
	}
	jobMgr, err := jobs.New(jobs.Options{
		Engine:            eng,
		Store:             graphs,
		Models:            reg,
		Retain:            *jobsRetain,
		Dir:               jobsPath,
		MaxConcurrentFits: *maxFits,
		// Matches the server's default /sample deadline, so a wedged sample
		// inside a batch job cannot occupy an engine worker forever.
		SampleTimeout: time.Minute,
	})
	if err != nil {
		return err
	}
	for _, warning := range jobMgr.Warnings() {
		logger.Warn("skipped job record", "warning", warning)
	}
	// Deferred after eng.Close, so running jobs are cancelled and drained
	// before the engine shuts down.
	defer jobMgr.Close()

	// Tenancy is opt-in: without -tenants the server stays open (no auth, no
	// budgets), exactly as before. With it, every API request needs a key and
	// every DP fit is charged against the tenant's persistent ε-ledger.
	var tenants *tenant.Registry
	if *tenantsFile != "" {
		tenants, err = tenant.Open(tenant.Options{Path: *tenantsFile, Dir: *tenantDir})
		if err != nil {
			return err
		}
		defer tenants.Close()
		for _, warning := range tenants.Warnings() {
			logger.Warn("skipped ledger line", "warning", warning)
		}
	} else if *tenantDir != "" {
		return usageError("-tenant-dir requires -tenants")
	}

	srv, err := server.New(server.Config{
		Registry:        reg,
		Engine:          eng,
		Graphs:          graphs,
		Jobs:            jobMgr,
		Analytics:       metrics,
		MaxJobSamples:   *maxJobSamples,
		FitParallelism:  *parallelism,
		Logger:          logger,
		Pprof:           *pprofFlag,
		StreamChunkRows: *chunkRows,
		Tenants:         tenants,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "agmdp-serve: listening on %s (store %q, %d models loaded; graph store %q, %d graphs loaded)\n",
		ln.Addr(), *store, reg.Len(), *graphStore, graphs.Len())
	if ready != nil {
		ready(ln.Addr().String(), stop)
	}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	return <-errc
}
