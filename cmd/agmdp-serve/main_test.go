package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startService runs the serve command on an ephemeral port and returns its
// base URL plus a shutdown function that waits for a clean exit.
func startService(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	addrc := make(chan string, 1)
	stopc := make(chan func(), 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extraArgs...)
	var buf strings.Builder
	go func() {
		errc <- run(args, &buf, func(addr string, stop func()) {
			addrc <- addr
			stopc <- stop
		})
	}()
	select {
	case addr := <-addrc:
		stop := <-stopc
		return "http://" + addr, func() {
			stop()
			select {
			case err := <-errc:
				if err != nil {
					t.Errorf("serve exited with %v (output %q)", err, buf.String())
				}
			case <-time.After(30 * time.Second):
				t.Error("serve did not shut down")
			}
		}
	case err := <-errc:
		t.Fatalf("serve failed to start: %v", err)
		return "", nil
	}
}

func TestServeEndToEnd(t *testing.T) {
	store := t.TempDir()
	base, shutdown := startService(t, "-store", store)

	// Health.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Fit once.
	fit, err := http.Post(base+"/fit", "application/json", strings.NewReader(
		`{"dataset":{"name":"lastfm","scale":0.1,"seed":1},"epsilon":1.0,"seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var fr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(fit.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	fit.Body.Close()
	if fit.StatusCode != http.StatusOK || fr.ID == "" {
		t.Fatalf("fit: %d, id %q", fit.StatusCode, fr.ID)
	}

	// Sample twice at the same seed: identical summaries.
	sample := func() string {
		resp, err := http.Post(base+"/sample", "application/json", strings.NewReader(
			fmt.Sprintf(`{"id":%q,"seed":9,"iterations":1,"format":"summary"}`, fr.ID)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample: %d %s", resp.StatusCode, b)
		}
		return string(b)
	}
	if a, b := sample(), sample(); a != b {
		t.Fatalf("equal seeds gave different summaries: %s vs %s", a, b)
	}

	// A default-shaped sample fits the model's acceptance table, which
	// persists next to the model file as <id>.table.
	defaultSample := func(base string) string {
		resp, err := http.Post(base+"/sample", "application/json", strings.NewReader(
			fmt.Sprintf(`{"id":%q,"seed":9,"format":"summary"}`, fr.ID)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("default sample: %d %s", resp.StatusCode, b)
		}
		return string(b)
	}
	before := defaultSample(base)
	tables, _ := filepath.Glob(filepath.Join(store, "*.table"))
	if len(tables) == 0 {
		t.Fatal("default-shaped sample left no persisted acceptance table next to the model")
	}
	shutdown()

	// The store directory persists the model — and its acceptance table —
	// across a restart.
	base2, shutdown2 := startService(t, "-store", store)
	defer shutdown2()
	resp2, err := http.Get(base2 + "/models/" + fr.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("model did not survive restart: %d", resp2.StatusCode)
	}
	// The reloaded table serves the same distribution: equal seeds, equal
	// summaries across the restart.
	if after := defaultSample(base2); after != before {
		t.Fatalf("default sample changed across restart: %s vs %s", before, after)
	}
}

// TestServeV1GraphStoreSurvivesRestart drives the v1 resource flow against
// the real command: upload a graph as a binary snapshot, restart the service
// on the same -graph-store directory, then fit the reloaded graph by ID.
func TestServeV1GraphStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	base, shutdown := startService(t, "-graph-store", dir)

	// A small ring graph, uploaded through the JSON format (the store
	// re-encodes it canonically, so the binary download below is exactly the
	// persisted snapshot) — no internal package imports needed here.
	payload := `{"n":6,"w":0,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}`
	up, err := http.Post(base+"/v1/graphs", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var gr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(up.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusCreated || gr.ID == "" {
		t.Fatalf("upload: %d, id %q", up.StatusCode, gr.ID)
	}

	// Download the canonical binary snapshot while the first instance runs.
	down, err := http.Get(base + "/v1/graphs/" + gr.ID + "?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, _ := io.ReadAll(down.Body)
	down.Body.Close()
	if down.StatusCode != http.StatusOK || len(snapshot) == 0 {
		t.Fatalf("binary download: %d (%d bytes)", down.StatusCode, len(snapshot))
	}
	shutdown()

	// The tiny decoded-graph budget below proves a cold store still serves:
	// fitting by ID forces a lazy decode, downloads stream the snapshot.
	base2, shutdown2 := startService(t, "-graph-store", dir, "-graph-cache-bytes", "1")
	defer shutdown2()

	// The graph survived the restart and fits by ID.
	fit, err := http.Post(base2+"/v1/fit", "application/json", strings.NewReader(
		fmt.Sprintf(`{"graph_id":%q}`, gr.ID)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(fit.Body)
	fit.Body.Close()
	if fit.StatusCode != http.StatusOK {
		t.Fatalf("fit by graph_id after restart: %d %s", fit.StatusCode, body)
	}

	// And the reloaded snapshot is byte-identical to the uploaded one.
	down2, err := http.Get(base2 + "/v1/graphs/" + gr.ID + "?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	snapshot2, _ := io.ReadAll(down2.Body)
	down2.Body.Close()
	if !bytes.Equal(snapshot, snapshot2) {
		t.Fatal("binary snapshot changed across restart")
	}
}

// TestServeJobsSurviveRestart drives the async job flow against the real
// command and kills/restarts it around running work: finished fit and sample
// job metadata must survive the restart (persisted next to the graph store),
// GET /v1/jobs/{id} must resolve on the new instance, and a job caught
// mid-run by the shutdown must come back in a terminal state rather than
// vanishing or wedging.
func TestServeJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store := t.TempDir()
	base, shutdown := startService(t, "-graph-store", dir, "-store", store)

	// Upload an input graph, then fit it asynchronously.
	payload := `{"n":40,"w":0,"edges":[`
	edges := make([]string, 0, 80)
	for i := 0; i < 40; i++ {
		edges = append(edges, fmt.Sprintf("[%d,%d]", i, (i+1)%40), fmt.Sprintf("[%d,%d]", i, (i+7)%40))
	}
	payload += strings.Join(edges, ",") + `]}`
	up, err := http.Post(base+"/v1/graphs", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var gr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(up.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", up.StatusCode)
	}

	type jobBody struct {
		ID      string `json:"id"`
		Kind    string `json:"kind"`
		Status  string `json:"status"`
		ModelID string `json:"model_id"`
		Fit     *struct {
			ModelID string `json:"model_id"`
		} `json:"fit"`
	}
	submit := func(path, body string) jobBody {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jb jobBody
		if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted || jb.ID == "" {
			t.Fatalf("submit %s: %d %+v", path, resp.StatusCode, jb)
		}
		return jb
	}
	getJob := func(base, id string) (jobBody, int) {
		t.Helper()
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jb jobBody
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
				t.Fatal(err)
			}
		}
		return jb, resp.StatusCode
	}
	waitDone := func(id string) jobBody {
		t.Helper()
		deadline := time.Now().Add(time.Minute)
		for {
			jb, code := getJob(base, id)
			if code != http.StatusOK {
				t.Fatalf("poll %s: %d", id, code)
			}
			switch jb.Status {
			case "done", "failed", "cancelled":
				return jb
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", id, jb.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	fitJob := submit("/v1/fit", fmt.Sprintf(`{"graph_id":%q,"epsilon":1.0,"seed":3,"async":true}`, gr.ID))
	fitDone := waitDone(fitJob.ID)
	if fitDone.Status != "done" || fitDone.Fit == nil || fitDone.Fit.ModelID == "" {
		t.Fatalf("fit job ended %+v", fitDone)
	}
	sampleJob := submit("/v1/jobs", fmt.Sprintf(`{"model_id":%q,"count":2,"seed":11}`, fitDone.Fit.ModelID))
	waitDone(sampleJob.ID)

	// A long-running batch that the shutdown will catch mid-run.
	midRun := submit("/v1/jobs", fmt.Sprintf(`{"model_id":%q,"count":500,"seed":1000}`, fitDone.Fit.ModelID))
	shutdown()

	base2, shutdown2 := startService(t, "-graph-store", dir, "-store", store)
	defer shutdown2()

	// Finished jobs resolve after the restart with their terminal metadata.
	restoredFit, code := getJob(base2, fitJob.ID)
	if code != http.StatusOK {
		t.Fatalf("fit job did not survive restart: %d", code)
	}
	if restoredFit.Kind != "fit" || restoredFit.Status != "done" ||
		restoredFit.Fit == nil || restoredFit.Fit.ModelID != fitDone.Fit.ModelID {
		t.Fatalf("restored fit job %+v, want model %s", restoredFit, fitDone.Fit.ModelID)
	}
	// And the model it names is still served (the model store persisted it).
	mresp, err := http.Get(base2 + "/v1/models/" + restoredFit.Fit.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("fitted model lost across restart: %d", mresp.StatusCode)
	}
	restoredSample, code := getJob(base2, sampleJob.ID)
	if code != http.StatusOK || restoredSample.Kind != "sample" || restoredSample.Status != "done" {
		t.Fatalf("sample job did not survive restart: %d %+v", code, restoredSample)
	}
	// The mid-run job either finished before the drain or was cancelled by
	// it; in both cases the restarted service must report a terminal state.
	restoredMid, code := getJob(base2, midRun.ID)
	if code != http.StatusOK {
		t.Fatalf("mid-run job left no record: %d", code)
	}
	switch restoredMid.Status {
	case "done", "failed", "cancelled":
	default:
		t.Fatalf("mid-run job restored in non-terminal state %q", restoredMid.Status)
	}
}

func TestServeBadFlags(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &buf, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}
