package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startService runs the serve command on an ephemeral port and returns its
// base URL plus a shutdown function that waits for a clean exit.
func startService(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	addrc := make(chan string, 1)
	stopc := make(chan func(), 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extraArgs...)
	var buf strings.Builder
	go func() {
		errc <- run(args, &buf, func(addr string, stop func()) {
			addrc <- addr
			stopc <- stop
		})
	}()
	select {
	case addr := <-addrc:
		stop := <-stopc
		return "http://" + addr, func() {
			stop()
			select {
			case err := <-errc:
				if err != nil {
					t.Errorf("serve exited with %v (output %q)", err, buf.String())
				}
			case <-time.After(30 * time.Second):
				t.Error("serve did not shut down")
			}
		}
	case err := <-errc:
		t.Fatalf("serve failed to start: %v", err)
		return "", nil
	}
}

func TestServeEndToEnd(t *testing.T) {
	store := t.TempDir()
	base, shutdown := startService(t, "-store", store)

	// Health.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Fit once.
	fit, err := http.Post(base+"/fit", "application/json", strings.NewReader(
		`{"dataset":{"name":"lastfm","scale":0.1,"seed":1},"epsilon":1.0,"seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var fr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(fit.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	fit.Body.Close()
	if fit.StatusCode != http.StatusOK || fr.ID == "" {
		t.Fatalf("fit: %d, id %q", fit.StatusCode, fr.ID)
	}

	// Sample twice at the same seed: identical summaries.
	sample := func() string {
		resp, err := http.Post(base+"/sample", "application/json", strings.NewReader(
			fmt.Sprintf(`{"id":%q,"seed":9,"iterations":1,"format":"summary"}`, fr.ID)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample: %d %s", resp.StatusCode, b)
		}
		return string(b)
	}
	if a, b := sample(), sample(); a != b {
		t.Fatalf("equal seeds gave different summaries: %s vs %s", a, b)
	}
	shutdown()

	// The store directory persists the model across a restart.
	base2, shutdown2 := startService(t, "-store", store)
	defer shutdown2()
	resp2, err := http.Get(base2 + "/models/" + fr.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("model did not survive restart: %d", resp2.StatusCode)
	}
}

// TestServeV1GraphStoreSurvivesRestart drives the v1 resource flow against
// the real command: upload a graph as a binary snapshot, restart the service
// on the same -graph-store directory, then fit the reloaded graph by ID.
func TestServeV1GraphStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	base, shutdown := startService(t, "-graph-store", dir)

	// A small ring graph, uploaded through the JSON format (the store
	// re-encodes it canonically, so the binary download below is exactly the
	// persisted snapshot) — no internal package imports needed here.
	payload := `{"n":6,"w":0,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}`
	up, err := http.Post(base+"/v1/graphs", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var gr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(up.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusCreated || gr.ID == "" {
		t.Fatalf("upload: %d, id %q", up.StatusCode, gr.ID)
	}

	// Download the canonical binary snapshot while the first instance runs.
	down, err := http.Get(base + "/v1/graphs/" + gr.ID + "?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, _ := io.ReadAll(down.Body)
	down.Body.Close()
	if down.StatusCode != http.StatusOK || len(snapshot) == 0 {
		t.Fatalf("binary download: %d (%d bytes)", down.StatusCode, len(snapshot))
	}
	shutdown()

	base2, shutdown2 := startService(t, "-graph-store", dir)
	defer shutdown2()

	// The graph survived the restart and fits by ID.
	fit, err := http.Post(base2+"/v1/fit", "application/json", strings.NewReader(
		fmt.Sprintf(`{"graph_id":%q}`, gr.ID)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(fit.Body)
	fit.Body.Close()
	if fit.StatusCode != http.StatusOK {
		t.Fatalf("fit by graph_id after restart: %d %s", fit.StatusCode, body)
	}

	// And the reloaded snapshot is byte-identical to the uploaded one.
	down2, err := http.Get(base2 + "/v1/graphs/" + gr.ID + "?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	snapshot2, _ := io.ReadAll(down2.Body)
	down2.Body.Close()
	if !bytes.Equal(snapshot, snapshot2) {
		t.Fatal("binary snapshot changed across restart")
	}
}

func TestServeBadFlags(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &buf, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}
