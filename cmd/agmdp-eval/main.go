// Command agmdp-eval compares a synthetic attributed graph against the
// original input graph using the statistics of Section 5.1 of the paper
// (KS and Hellinger distances on the degree distribution, Hellinger and MAE on
// the attribute–edge correlations, and relative errors on triangle count,
// clustering coefficients and edge count).
//
// Usage:
//
//	agmdp-eval -original graph.txt -synthetic synthetic.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"agmdp"
)

func main() {
	var (
		originalPath  = flag.String("original", "", "path to the original graph (agmdp graph format)")
		syntheticPath = flag.String("synthetic", "", "path to the synthetic graph (agmdp graph format)")
	)
	flag.Parse()
	if *originalPath == "" || *syntheticPath == "" {
		fmt.Fprintln(os.Stderr, "agmdp-eval: both -original and -synthetic are required")
		flag.Usage()
		os.Exit(2)
	}
	original, err := agmdp.LoadGraph(*originalPath)
	if err != nil {
		fatal(err)
	}
	synthetic, err := agmdp.LoadGraph(*syntheticPath)
	if err != nil {
		fatal(err)
	}

	summarize("original", original.Summarize())
	summarize("synthetic", synthetic.Summarize())

	m := agmdp.Evaluate(original, synthetic)
	fmt.Println("errors (synthetic vs original):")
	fmt.Printf("  ThetaF MAE           %.4f\n", m.MREThetaF)
	fmt.Printf("  ThetaF Hellinger     %.4f\n", m.HellingerThetaF)
	fmt.Printf("  degree KS            %.4f\n", m.KSDegree)
	fmt.Printf("  degree Hellinger     %.4f\n", m.HellingerDegree)
	fmt.Printf("  triangles MRE        %.4f\n", m.MRETriangles)
	fmt.Printf("  avg clustering MRE   %.4f\n", m.MREAvgClustering)
	fmt.Printf("  global clustering MRE %.4f\n", m.MREGlobalClustering)
	fmt.Printf("  edge count MRE       %.4f\n", m.MREEdges)
}

func summarize(label string, s agmdp.Summary) {
	fmt.Printf("%s: n=%d m=%d dmax=%d davg=%.2f triangles=%d avgC=%.4f globC=%.4f\n",
		label, s.Nodes, s.Edges, s.MaxDegree, s.AverageDegree, s.Triangles, s.AvgLocalClustering, s.GlobalClustering)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "agmdp-eval: %v\n", err)
	os.Exit(1)
}
