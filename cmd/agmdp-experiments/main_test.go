package main

import (
	"testing"

	"agmdp/internal/experiments"
)

// tinyOpts keeps the CLI smoke tests fast.
func tinyOpts() experiments.Options {
	return experiments.Options{Scale: 0.08, Trials: 1, Seed: 2, SampleIterations: 1}
}

func TestRunExperimentKnownNames(t *testing.T) {
	for _, name := range []string{"table6", "fig1", "fig5"} {
		if err := runExperiment(name, tinyOpts(), []string{"lastfm"}); err != nil {
			t.Fatalf("runExperiment(%s): %v", name, err)
		}
	}
}

func TestRunExperimentTableAndFigure23(t *testing.T) {
	if err := runExperiment("table2", tinyOpts(), nil); err != nil {
		t.Fatalf("runExperiment(table2): %v", err)
	}
	if err := runExperiment("fig2", tinyOpts(), []string{"petster"}); err != nil {
		t.Fatalf("runExperiment(fig2): %v", err)
	}
}

func TestRunExperimentUnknownName(t *testing.T) {
	if err := runExperiment("table99", tinyOpts(), nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableDatasetsMapping(t *testing.T) {
	want := map[string]string{"table2": "lastfm", "table3": "petster", "table4": "epinions", "table5": "pokec"}
	for k, v := range want {
		if tableDatasets[k] != v {
			t.Fatalf("tableDatasets[%s] = %s, want %s", k, tableDatasets[k], v)
		}
	}
}
