// Command agmdp-experiments reproduces the tables and figures of the paper's
// evaluation section on the calibrated synthetic datasets.
//
// Usage:
//
//	agmdp-experiments -exp table2            # Last.fm table
//	agmdp-experiments -exp table5 -scale 0.02 -trials 2
//	agmdp-experiments -exp fig5 -datasets lastfm,petster
//	agmdp-experiments -exp all
//
// Experiments: table2, table3, table4, table5, table6, fig1, fig2 (= fig3),
// fig5, ablations, all. Scales, trial counts and seeds are configurable; the
// defaults are chosen so that a full run finishes in laptop time (see
// EXPERIMENTS.md for the exact settings used to produce the recorded results).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"agmdp/internal/experiments"
)

var tableDatasets = map[string]string{
	"table2": "lastfm",
	"table3": "petster",
	"table4": "epinions",
	"table5": "pokec",
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table2..table6, fig1, fig2, fig3, fig5, ablations, all")
		scale    = flag.Float64("scale", 0, "dataset scale override in (0, 1]; 0 = per-dataset default")
		trials   = flag.Int("trials", 3, "synthetic graphs averaged per setting")
		seed     = flag.Int64("seed", 1, "base random seed")
		datasets = flag.String("datasets", "", "comma-separated dataset filter for fig1/fig5 (default: all)")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Trials: *trials, Seed: *seed}
	var filter []string
	if *datasets != "" {
		filter = strings.Split(*datasets, ",")
	}

	run := func(name string) {
		if err := runExperiment(name, opts, filter); err != nil {
			fmt.Fprintf(os.Stderr, "agmdp-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	switch *exp {
	case "all":
		for _, name := range []string{"table6", "fig1", "fig2", "fig5", "table2", "table3", "table4", "table5", "ablations"} {
			run(name)
		}
	default:
		run(*exp)
	}
}

func runExperiment(name string, opts experiments.Options, filter []string) error {
	switch name {
	case "table2", "table3", "table4", "table5":
		res, err := experiments.RunTable(tableDatasets[name], opts)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "table6":
		rows, err := experiments.RunTable6(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable6(rows))
	case "fig1":
		points, err := experiments.RunFigure1(filter, opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure1(points))
	case "fig2", "fig3":
		names := filter
		if len(names) == 0 {
			names = []string{"lastfm", "petster", "epinions", "pokec"}
		}
		for _, ds := range names {
			res, err := experiments.RunFigure23(ds, opts)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		}
	case "fig5":
		points, err := experiments.RunFigure5(filter, opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure5(points))
	case "ablations":
		return runAblations(opts)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func runAblations(opts experiments.Options) error {
	budget, err := experiments.RunAblationBudgetSplit("lastfm", math.Log(2), opts)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatBudgetSplit(budget))

	ci, err := experiments.RunAblationConstrainedInference("lastfm", 0.3, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation — constrained inference on %s at eps=%.3g: L1/node with=%.3f, naive=%.3f\n\n",
		ci.Dataset, ci.Epsilon, ci.L1WithInference, ci.L1Naive)

	tri, err := experiments.RunAblationTriangleEstimators("lastfm", 0.5, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation — triangle estimators on %s at eps=%.3g (truth %d): Ladder MRE=%.3f, naive Laplace MRE=%.3f\n\n",
		tri.Dataset, tri.Epsilon, tri.Truth, tri.LadderMRE, tri.NaiveMRE)

	pp, err := experiments.RunAblationPostProcess("pokec", experiments.Options{Scale: 0.02, Trials: opts.Trials, Seed: opts.Seed})
	if err != nil {
		return err
	}
	fmt.Printf("Ablation — TriCycLe orphan post-processing on %s: orphans with=%.1f, without=%.1f (edges %.0f vs %.0f)\n",
		pp.Dataset, pp.OrphansWith, pp.OrphansWithout, pp.EdgesWith, pp.EdgesWithout)
	return nil
}
