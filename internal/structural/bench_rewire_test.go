package structural

// Paired sequential-vs-batched benchmarks for TriCycLe's rewiring phase
// (PR 3). Each iteration clones a pre-built Chung–Lu seed builder and rewires
// it toward a 3× triangle target, so the pair measures exactly the phase the
// parallel execution layer sharded. scripts/bench.sh records the ratio in
// BENCH_pr3.json.

import (
	"math/rand"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/parallel"
)

var rewireBenchSeed *graph.Builder

// rewireBenchFixture builds (once) a seed graph well above the parallel
// threshold with a heavy-tailed degree profile.
func rewireBenchFixture(b *testing.B) (*graph.Builder, *NodeSampler, int64) {
	b.Helper()
	degrees := parallelDegrees(6000)
	sampler := NewNodeSampler(degrees, nil)
	if rewireBenchSeed == nil {
		target := sumDegrees(degrees) / 2
		rewireBenchSeed = generateCLBuilder(rand.New(rand.NewSource(3)), len(degrees), sampler, target, nil)
	}
	return rewireBenchSeed, sampler, rewireBenchSeed.Triangles() * 3
}

func BenchmarkTriCycLeRewireSequential(b *testing.B) {
	seed, sampler, target := rewireBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := seed.Clone()
		rewireSequential(rand.New(rand.NewSource(9)), bl, sampler, nil, target, maxProposalFactor)
	}
}

func BenchmarkTriCycLeRewireParallel(b *testing.B) {
	seed, sampler, target := rewireBenchFixture(b)
	// The same worker count TriCycLe{} resolves to on this host.
	workers := parallel.Resolve(0)
	if workers < 2 {
		workers = 2 // exercise the batched path even on a 1-core host
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := seed.Clone()
		rewireParallel(rand.New(rand.NewSource(9)), bl, sampler, nil, target, maxProposalFactor, workers)
	}
}
