package structural

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

// powerLawDegrees builds a degree sequence with a heavy tail (many degree-1 and
// degree-2 nodes, a few hubs), summing to an even number.
func powerLawDegrees(rng *rand.Rand, n, maxDeg int) []int {
	degs := make([]int, n)
	for i := range degs {
		// Pareto-ish: P(d) ∝ d^-2 over [1, maxDeg].
		u := rng.Float64()
		d := int(math.Ceil(1 / (1 - u*(1-1/float64(maxDeg)))))
		if d > maxDeg {
			d = maxDeg
		}
		if d > n-1 {
			d = n - 1
		}
		degs[i] = d
	}
	if sumDegrees(degs)%2 == 1 {
		degs[0]++
	}
	return degs
}

// clusteredTestGraph returns a graph with strong triangle structure built from
// overlapping cliques plus random edges, for exercising TCL/TriCycLe fitting.
func clusteredTestGraph(rng *rand.Rand, n, cliqueSize int, extraEdges int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	for start := 0; start+cliqueSize <= n; start += cliqueSize - 1 {
		for i := start; i < start+cliqueSize; i++ {
			for j := i + 1; j < start+cliqueSize; j++ {
				b.AddEdge(i, j)
			}
		}
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Finalize()
}

func TestParamsValidate(t *testing.T) {
	ok := Params{Degrees: []int{1, 1}, Triangles: 0, Rho: 0.5}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Params
		n    int
	}{
		{"wrong length", Params{Degrees: []int{1}}, 2},
		{"negative degree", Params{Degrees: []int{-1, 1}}, 2},
		{"degree too large", Params{Degrees: []int{3, 1}}, 2},
		{"negative triangles", Params{Degrees: []int{1, 1}, Triangles: -1}, 2},
		{"rho out of range", Params{Degrees: []int{1, 1}, Rho: 1.5}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(tc.n); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

func TestGenerateCLMatchesTargetEdgeCount(t *testing.T) {
	rng := dp.NewRand(1)
	degs := powerLawDegrees(rng, 300, 40)
	target := sumDegrees(degs) / 2
	g := GenerateCL(dp.NewRand(2), 300, NewNodeSampler(degs, nil), target, nil)
	if g.NumEdges() != target {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), target)
	}
	if g.NumNodes() != 300 {
		t.Fatalf("nodes = %d, want 300", g.NumNodes())
	}
}

func TestGenerateCLApproximatesDegreeSequence(t *testing.T) {
	// Average over several generations: expected degree of node i should be
	// close to its target degree for moderate-degree nodes.
	n := 400
	degs := make([]int, n)
	for i := range degs {
		degs[i] = 4
	}
	degs[0] = 60 // one hub
	if sumDegrees(degs)%2 == 1 {
		degs[1]++
	}
	sampler := NewNodeSampler(degs, nil)
	target := sumDegrees(degs) / 2
	var hubTotal, leafTotal float64
	const trials = 15
	for i := 0; i < trials; i++ {
		g := GenerateCL(dp.NewRand(int64(i)+10), n, sampler, target, nil)
		hubTotal += float64(g.Degree(0))
		leafTotal += float64(g.Degree(100))
	}
	hubAvg, leafAvg := hubTotal/trials, leafTotal/trials
	if math.Abs(hubAvg-60)/60 > 0.25 {
		t.Fatalf("hub average degree %v, want ≈ 60", hubAvg)
	}
	if math.Abs(leafAvg-4) > 2 {
		t.Fatalf("leaf average degree %v, want ≈ 4", leafAvg)
	}
}

func TestGenerateCLZeroFilterProducesNoEdges(t *testing.T) {
	degs := []int{2, 2, 2, 2}
	g := GenerateCL(dp.NewRand(1), 4, NewNodeSampler(degs, nil), 4, func(u, v int) float64 { return 0 })
	if g.NumEdges() != 0 {
		t.Fatalf("zero-acceptance filter produced %d edges", g.NumEdges())
	}
}

func TestGenerateCLFilterBiasesEdgeSelection(t *testing.T) {
	// Only allow edges inside {0..49} or inside {50..99}; the output must
	// contain no cross-group edge.
	n := 100
	degs := make([]int, n)
	for i := range degs {
		degs[i] = 4
	}
	filter := func(u, v int) float64 {
		if (u < 50) == (v < 50) {
			return 1
		}
		return 0
	}
	g := GenerateCL(dp.NewRand(5), n, NewNodeSampler(degs, nil), 200, filter)
	bad := 0
	g.ForEachEdge(func(u, v int) bool {
		if (u < 50) != (v < 50) {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d cross-group edges slipped past the filter", bad)
	}
	if g.NumEdges() == 0 {
		t.Fatal("filtered generation produced no edges at all")
	}
}

func TestGenerateCLEmptySamplerAndZeroTarget(t *testing.T) {
	g := GenerateCL(dp.NewRand(1), 10, NewNodeSampler(make([]int, 10), nil), 5, nil)
	if g.NumEdges() != 0 {
		t.Fatal("empty sampler should yield no edges")
	}
	g = GenerateCL(dp.NewRand(1), 10, NewNodeSampler([]int{1, 1, 0, 0, 0, 0, 0, 0, 0, 0}, nil), 0, nil)
	if g.NumEdges() != 0 {
		t.Fatal("zero target should yield no edges")
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(dp.NewRand(1), 50, 100)
	if g.NumEdges() != 100 {
		t.Fatalf("edges = %d, want 100", g.NumEdges())
	}
	// Requesting more edges than possible caps at the maximum.
	g = ErdosRenyi(dp.NewRand(2), 5, 100)
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d, want 10 (complete graph)", g.NumEdges())
	}
}

func TestFCLGenerateProducesTargetEdges(t *testing.T) {
	rng := dp.NewRand(3)
	n := 250
	degs := powerLawDegrees(rng, n, 30)
	g := FCL{}.Generate(dp.NewRand(4), n, Params{Degrees: degs}, nil)
	if g.NumEdges() != sumDegrees(degs)/2 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), sumDegrees(degs)/2)
	}
	if (FCL{}).Name() != "FCL" {
		t.Fatal("FCL name mismatch")
	}
}

func TestFCLGeneratePanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	FCL{}.Generate(dp.NewRand(1), 5, Params{Degrees: []int{1}}, nil)
}

func TestEdgeQueueOldestFirst(t *testing.T) {
	g := graph.NewBuilder(4, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	q := newEdgeQueue(g)
	e1, ok := q.popOldest(g)
	if !ok || e1.U != 0 || e1.V != 1 {
		t.Fatalf("first pop = %v, want {0 1}", e1)
	}
	// Stale entries (edges no longer in the graph) are skipped.
	g.RemoveEdge(1, 2)
	e2, ok := q.popOldest(g)
	if !ok || e2.U != 2 || e2.V != 3 {
		t.Fatalf("second pop = %v, want {2 3}", e2)
	}
	// Pushed edges come back after existing ones.
	g.AddEdge(0, 3)
	q.push(graph.Edge{U: 3, V: 0})
	e3, ok := q.popOldest(g)
	if !ok || e3.U != 0 || e3.V != 3 {
		t.Fatalf("third pop = %v, want {0 3}", e3)
	}
	if _, ok := q.popOldest(g); ok {
		t.Fatal("queue should be exhausted")
	}
}

func TestFitRhoRange(t *testing.T) {
	rng := dp.NewRand(5)
	clustered := clusteredTestGraph(rng, 120, 6, 40)
	rho := FitRho(clustered, 30)
	if rho < 0 || rho > 1 {
		t.Fatalf("FitRho = %v outside [0, 1]", rho)
	}
	if FitRho(graph.New(10, 0), 10) != 0 {
		t.Fatal("FitRho on an edgeless graph should be 0")
	}
}

func TestFitRhoHigherForClusteredGraphs(t *testing.T) {
	rng := dp.NewRand(6)
	clustered := clusteredTestGraph(rng, 150, 7, 30)
	random := ErdosRenyi(dp.NewRand(7), 150, clustered.NumEdges())
	rhoClustered := FitRho(clustered, 30)
	rhoRandom := FitRho(random, 30)
	if rhoClustered <= rhoRandom {
		t.Fatalf("FitRho(clustered)=%v not above FitRho(random)=%v", rhoClustered, rhoRandom)
	}
}

func TestTCLGenerateMatchesEdgeCountAndAddsClustering(t *testing.T) {
	rng := dp.NewRand(8)
	n := 300
	degs := powerLawDegrees(rng, n, 30)
	params := Params{Degrees: degs, Rho: 0.9}
	tcl := TCL{}.Generate(dp.NewRand(9), n, params, nil)
	fcl := FCL{}.Generate(dp.NewRand(9), n, Params{Degrees: degs}, nil)
	if tcl.NumEdges() != sumDegrees(degs)/2 {
		t.Fatalf("TCL edges = %d, want %d", tcl.NumEdges(), sumDegrees(degs)/2)
	}
	if tcl.Triangles() <= fcl.Triangles() {
		t.Fatalf("TCL with rho=0.9 produced %d triangles, not above FCL's %d",
			tcl.Triangles(), fcl.Triangles())
	}
	if (TCL{}).Name() != "TCL" {
		t.Fatal("TCL name mismatch")
	}
}

func TestTCLRhoZeroBehavesLikeCL(t *testing.T) {
	rng := dp.NewRand(10)
	n := 150
	degs := powerLawDegrees(rng, n, 20)
	g := TCL{}.Generate(dp.NewRand(11), n, Params{Degrees: degs, Rho: 0}, nil)
	if g.NumEdges() != sumDegrees(degs)/2 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), sumDegrees(degs)/2)
	}
}

func TestTriCycLeReachesTriangleTarget(t *testing.T) {
	// Use a degree sequence with a realistic average degree (≈ 7, similar to
	// the paper's datasets) so that the friend-of-a-friend rewiring has enough
	// room to create triangles, and a triangle target of about 1.5 triangles
	// per edge, matching the triangle density of the paper's datasets.
	rng := dp.NewRand(12)
	n := 300
	degs := make([]int, n)
	for i := range degs {
		degs[i] = 4 + rng.Intn(7)
	}
	for i := 0; i < 10; i++ {
		degs[i] = 25 + rng.Intn(15)
	}
	if sumDegrees(degs)%2 == 1 {
		degs[0]++
	}
	target := int64(float64(sumDegrees(degs)/2) * 1.5)
	// A single generation lands anywhere in roughly [0.6, 0.75] of the target
	// depending on the seed, so assert on the mean over a few seeds rather
	// than on one lucky draw.
	var got int64
	const runs = 5
	for seed := int64(13); seed < 13+runs; seed++ {
		g := TriCycLe{}.Generate(dp.NewRand(seed), n, Params{Degrees: degs, Triangles: target}, nil)
		got += g.Triangles()
	}
	got /= runs
	if got < target*6/10 {
		t.Fatalf("TriCycLe produced %d triangles on average, want ≥ 60%% of target %d", got, target)
	}
	if (TriCycLe{}).Name() != "TriCycLe" {
		t.Fatal("TriCycLe name mismatch")
	}
}

func TestTriCycLeProducesMoreTrianglesThanFCL(t *testing.T) {
	rng := dp.NewRand(14)
	n := 300
	degs := powerLawDegrees(rng, n, 30)
	fcl := FCL{}.Generate(dp.NewRand(15), n, Params{Degrees: degs}, nil)
	target := fcl.Triangles()*4 + 200
	tri := TriCycLe{}.Generate(dp.NewRand(15), n, Params{Degrees: degs, Triangles: target}, nil)
	if tri.Triangles() <= fcl.Triangles() {
		t.Fatalf("TriCycLe triangles %d not above FCL %d", tri.Triangles(), fcl.Triangles())
	}
}

func TestTriCycLePreservesEdgeCountApproximately(t *testing.T) {
	rng := dp.NewRand(16)
	n := 250
	degs := powerLawDegrees(rng, n, 25)
	m := sumDegrees(degs) / 2
	g := TriCycLe{}.Generate(dp.NewRand(17), n, Params{Degrees: degs, Triangles: 300}, nil)
	if math.Abs(float64(g.NumEdges()-m))/float64(m) > 0.05 {
		t.Fatalf("TriCycLe edges = %d, want ≈ %d", g.NumEdges(), m)
	}
}

func TestTriCycLeDegreeDistributionRoughlyPreserved(t *testing.T) {
	rng := dp.NewRand(18)
	n := 300
	degs := powerLawDegrees(rng, n, 30)
	g := TriCycLe{}.Generate(dp.NewRand(19), n, Params{Degrees: degs, Triangles: 200}, nil)
	wantSorted := append([]int(nil), degs...)
	sort.Ints(wantSorted)
	gotSorted := g.DegreeSequence()
	// Compare medians and 90th percentiles rather than element-wise: the
	// model only preserves the distribution in expectation.
	med := func(s []int) int { return s[len(s)/2] }
	p90 := func(s []int) int { return s[len(s)*9/10] }
	if diff := math.Abs(float64(med(wantSorted) - med(gotSorted))); diff > 2 {
		t.Fatalf("median degree drifted: want %d, got %d", med(wantSorted), med(gotSorted))
	}
	if p90(wantSorted) > 0 && math.Abs(float64(p90(wantSorted)-p90(gotSorted)))/float64(p90(wantSorted)) > 0.6 {
		t.Fatalf("90th percentile degree drifted: want %d, got %d", p90(wantSorted), p90(gotSorted))
	}
}

func TestTriCycLePostProcessingConnectsGraph(t *testing.T) {
	// Many degree-one nodes: without post-processing the CL construction
	// orphans a lot of them; with the extension the output should be (almost)
	// fully connected.
	rng := dp.NewRand(20)
	n := 400
	degs := make([]int, n)
	for i := range degs {
		if rng.Float64() < 0.5 {
			degs[i] = 1
		} else {
			degs[i] = 3 + rng.Intn(5)
		}
	}
	if sumDegrees(degs)%2 == 1 {
		degs[0]++
	}
	params := Params{Degrees: degs, Triangles: 100}
	with := TriCycLe{}.Generate(dp.NewRand(21), n, params, nil)
	without := TriCycLe{DisablePostProcess: true}.Generate(dp.NewRand(21), n, params, nil)
	orphansWith := len(with.OrphanedNodes())
	orphansWithout := len(without.OrphanedNodes())
	if orphansWith >= orphansWithout {
		t.Fatalf("post-processing did not reduce orphans: with=%d without=%d", orphansWith, orphansWithout)
	}
	if float64(orphansWith) > 0.05*float64(n) {
		t.Fatalf("post-processed graph still has %d orphans out of %d nodes", orphansWith, n)
	}
}

func TestTriCycLeZeroTriangleTargetStillGeneratesSeed(t *testing.T) {
	rng := dp.NewRand(22)
	n := 120
	degs := powerLawDegrees(rng, n, 15)
	g := TriCycLe{}.Generate(dp.NewRand(23), n, Params{Degrees: degs, Triangles: 0}, nil)
	if g.NumEdges() == 0 {
		t.Fatal("seed graph missing for zero triangle target")
	}
}

func TestTriCycLeRespectsFilterGroups(t *testing.T) {
	rng := dp.NewRand(24)
	n := 200
	degs := powerLawDegrees(rng, n, 20)
	filter := func(u, v int) float64 {
		if (u%2 == 0) == (v%2 == 0) {
			return 1
		}
		return 0
	}
	g := TriCycLe{}.Generate(dp.NewRand(25), n, Params{Degrees: degs, Triangles: 100}, filter)
	bad := 0
	g.ForEachEdge(func(u, v int) bool {
		if (u%2 == 0) != (v%2 == 0) {
			bad++
		}
		return true
	})
	// The main loop and the seed respect the filter; the connectivity
	// post-processing step intentionally ignores it, so allow a small number
	// of repair edges to cross groups.
	if float64(bad) > 0.1*float64(g.NumEdges()) {
		t.Fatalf("%d of %d edges violate the filter", bad, g.NumEdges())
	}
}

func TestPostProcessGraphRepairsDisconnectedGraph(t *testing.T) {
	// A graph with a 10-node cycle as the main component and 10 isolated
	// nodes. The desired degrees (3 for cycle nodes, 1 for the isolated ones)
	// imply 20 edges, which is enough to connect all 20 nodes.
	g := graph.NewBuilder(20, 0)
	for i := 0; i < 10; i++ {
		g.AddEdge(i, (i+1)%10)
	}
	desired := make([]int, 20)
	for i := range desired {
		if i < 10 {
			desired[i] = 3
		} else {
			desired[i] = 1
		}
	}
	sampler := NewNodeSampler(desired, func(i int) bool { return desired[i] == 1 })
	PostProcessGraph(dp.NewRand(1), g, sampler, desired, nil)
	if orphans := g.OrphanedNodes(); len(orphans) != 0 {
		t.Fatalf("post-processing left orphans: %v", orphans)
	}
	// Edge count should stay close to the desired total (sum/2 = 20).
	if math.Abs(float64(g.NumEdges()-20)) > 3 {
		t.Fatalf("edge count %d drifted far from desired 20", g.NumEdges())
	}
}

func TestPostProcessGraphNoopsOnConnectedGraph(t *testing.T) {
	g := graph.NewBuilder(5, 0)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	before := g.NumEdges()
	desired := []int{1, 2, 2, 2, 1}
	PostProcessGraph(dp.NewRand(1), g, NewNodeSampler(desired, nil), desired, nil)
	if g.NumEdges() != before {
		t.Fatalf("post-processing modified an already connected graph")
	}
}

func TestPostProcessGraphHandlesDegenerateInputs(t *testing.T) {
	// Mismatched desired length and empty graphs must not panic.
	g := graph.NewBuilder(3, 0)
	PostProcessGraph(dp.NewRand(1), g, NewNodeSampler([]int{1, 1}, nil), []int{1, 1}, nil)
	empty := graph.NewBuilder(0, 0)
	PostProcessGraph(dp.NewRand(1), empty, NewNodeSampler(nil, nil), nil, nil)
}
