package structural

import (
	"math/rand"

	"agmdp/internal/graph"
	"agmdp/internal/parallel"
)

// minParallelEdges is the edge-count threshold below which the parallel
// generators (seed sampling and TriCycLe rewiring alike) fall back to their
// sequential paths: for small targets the fan-out and merge overhead exceeds
// the sampling work itself.
const minParallelEdges = parallel.MinShardEdges

// GenerateCLParallel samples a Chung–Lu graph like GenerateCL but proposes
// edges from `workers` concurrent streams on the shared pool
// (internal/parallel); workers ≤ 0 means "auto" (the process default,
// runtime.GOMAXPROCS unless overridden with parallel.SetParallelism) and 1
// forces the sequential generator. Determinism is preserved in a slightly
// weaker but well-defined form: the output depends only on (rng state, n,
// sampler, targetEdges, filter, resolved workers) — the same seed with the
// same worker count always reproduces the same graph, while different worker
// counts are different (equally valid) draws from the model.
//
// The construction keeps the merge deterministic despite concurrent
// execution: worker i draws from its own rand.Rand seeded by the i-th value
// taken from the parent rng up front and collects its accepted edges into a
// private list. The concatenated lists are packed into CSR form in a single
// FromEdges pass, which drops cross-worker duplicates. A sequential top-up
// pass (with its own pre-drawn seed) then fills any shortfall those
// duplicates caused.
//
// When the resolved worker count exceeds 1 the filter may be called from
// multiple goroutines concurrently and must be safe for concurrent use; the
// filters built by the AGM-DP sampler only read shared slices, so they
// qualify.
func GenerateCLParallel(rng *rand.Rand, n int, sampler *NodeSampler, targetEdges int, filter EdgeFilter, workers int) *graph.Graph {
	workers = parallel.Resolve(workers)
	if workers <= 1 || targetEdges < minParallelEdges {
		return GenerateCL(rng, n, sampler, targetEdges, filter)
	}
	return generateCLParallelBuilder(rng, n, sampler, targetEdges, filter, workers).Finalize()
}

// generateCLParallelBuilder is the still-mutable variant of GenerateCLParallel
// used by generators that keep rewiring the seed graph (TriCycLe). The merged
// worker edge lists are packed into builder rows once (FromEdgesBuilder), and
// the top-up pass mutates those rows in place — no intermediate graph copies.
func generateCLParallelBuilder(rng *rand.Rand, n int, sampler *NodeSampler, targetEdges int, filter EdgeFilter, workers int) *graph.Builder {
	workers = parallel.Resolve(workers)
	if workers <= 1 || targetEdges < minParallelEdges {
		return generateCLBuilder(rng, n, sampler, targetEdges, filter)
	}
	if sampler.Empty() || targetEdges <= 0 {
		return graph.NewBuilder(n, 0)
	}

	merged, topUpSeed := proposeEdgesParallel(rng, sampler, targetEdges, filter, workers)
	b := graph.FromEdgesBuilder(n, 0, merged)

	// Top-up: cross-worker duplicates leave the merged rows slightly short of
	// the target; finish sequentially with the same proposal budget per edge
	// as the sequential generator.
	if b.NumEdges() < targetEdges {
		topUp(rand.New(rand.NewSource(topUpSeed)), b, sampler, targetEdges, filter)
	}
	return b
}

// proposeEdgesParallel fans the proposal loop out over `workers` tasks on the
// shared pool and returns the concatenation of their edge lists (still
// containing cross-worker duplicates) plus the pre-drawn seed for the
// sequential top-up pass.
func proposeEdgesParallel(rng *rand.Rand, sampler *NodeSampler, targetEdges int, filter EdgeFilter, workers int) ([]graph.Edge, int64) {
	// Draw every seed before any task starts so the parent rng is consumed
	// identically regardless of scheduling.
	seeds := make([]int64, workers)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	topUpSeed := rng.Int63()

	// Partition the edge target across workers; the first target%workers
	// shards carry one extra edge.
	shards := make([]int, workers)
	base, extra := targetEdges/workers, targetEdges%workers
	for i := range shards {
		shards[i] = base
		if i < extra {
			shards[i]++
		}
	}

	results := make([][]graph.Edge, workers)
	parallel.Do(workers, func(w int) {
		results[w] = proposeEdges(rand.New(rand.NewSource(seeds[w])), sampler, shards[w], filter)
	})

	merged := make([]graph.Edge, 0, targetEdges)
	for _, edges := range results {
		merged = append(merged, edges...)
	}
	return merged, topUpSeed
}

// proposeEdges runs one worker's proposal loop: Chung–Lu endpoint draws with
// self-loops, locally duplicate proposals and filter rejections discarded,
// until `target` edges are collected or the proposal budget runs out. The
// worker deduplicates only against its own accepted edges; cross-worker
// duplicates are handled at merge time.
func proposeEdges(rng *rand.Rand, sampler *NodeSampler, target int, filter EdgeFilter) []graph.Edge {
	edges := make([]graph.Edge, 0, target)
	seen := make(map[graph.Edge]struct{}, target)
	maxProposals := maxProposalFactor * (target + 1)
	if filter != nil {
		maxProposals *= 8
	}
	for proposals := 0; len(edges) < target && proposals < maxProposals; proposals++ {
		u := sampler.Sample(rng)
		v := sampler.Sample(rng)
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canonical()
		if _, dup := seen[e]; dup {
			continue
		}
		if !acceptEdge(rng, filter, u, v) {
			continue
		}
		seen[e] = struct{}{}
		edges = append(edges, e)
	}
	return edges
}

// topUp sequentially proposes edges into b until it reaches targetEdges or the
// proposal budget is exhausted, mirroring the GenerateCL loop.
func topUp(rng *rand.Rand, b *graph.Builder, sampler *NodeSampler, targetEdges int, filter EdgeFilter) {
	maxProposals := maxProposalFactor * (targetEdges - b.NumEdges() + 1)
	if filter != nil {
		maxProposals *= 8
	}
	for proposals := 0; b.NumEdges() < targetEdges && proposals < maxProposals; proposals++ {
		u := sampler.Sample(rng)
		v := sampler.Sample(rng)
		if u == v || b.HasEdge(u, v) {
			continue
		}
		if !acceptEdge(rng, filter, u, v) {
			continue
		}
		b.AddEdge(u, v)
	}
}
