package structural

import (
	"math/rand"

	"agmdp/internal/graph"
)

// PostProcessGraph implements Algorithm 2 of the paper: it repairs orphaned
// nodes (nodes outside the main connected component) by deleting their stray
// edges and reconnecting them to nodes in the rest of the graph whose desired
// degree has not yet been met, while keeping the total edge count at the value
// implied by the desired degree sequence. The builder is modified in place;
// callers finalize it into an immutable CSR graph when generation is done.
//
// desired holds the target degree of every node (the original input graph's
// degree sequence in AGM-DP); sampler is the π distribution used to pick the
// attachment points. Attachment preferences follow the paper: nodes are drawn
// from π until one with unmet desired degree is found; a bounded number of
// attempts guards against the (rare) situation where no such node exists, in
// which case a uniformly random non-orphan node is used instead. The loop is
// capped so that pathological inputs (for example a desired degree sequence
// whose sum implies fewer than n−1 edges, which no connected graph can
// satisfy) cannot spin forever.
//
// filter, when non-nil, is treated as a soft preference: candidate attachment
// points that the filter accepts are tried first, but connectivity repair
// falls back to ignoring the filter rather than leaving the node orphaned.
func PostProcessGraph(rng *rand.Rand, g *graph.Builder, sampler *NodeSampler, desired []int, filter EdgeFilter) {
	n := g.NumNodes()
	if n == 0 || len(desired) != n {
		return
	}
	targetEdges := sumDegrees(desired) / 2
	maxRounds := 4*n + 100
	const maxSampleAttempts = 200

	for round := 0; round < maxRounds; round++ {
		orphans := g.OrphanedNodes()
		if len(orphans) == 0 {
			return
		}
		vi := orphans[rng.Intn(len(orphans))]
		// Remove any edges the orphan currently has (they can only reach other
		// orphans).
		for _, u := range g.Neighbors(vi) {
			g.RemoveEdge(vi, u)
		}
		want := desired[vi]
		if want < 1 {
			want = 1 // every node in a connected input graph has degree ≥ 1
		}
		for j := 0; j < want; j++ {
			vk := -1
			if !sampler.Empty() {
				for attempt := 0; attempt < maxSampleAttempts; attempt++ {
					cand := sampler.Sample(rng)
					if cand == vi || g.HasEdge(vi, cand) {
						continue
					}
					if g.Degree(cand) >= desired[cand] {
						continue
					}
					// Respect the attribute-correlation filter when possible;
					// after half the attempt budget, connectivity wins.
					if filter != nil && attempt < maxSampleAttempts/2 && !acceptEdge(rng, filter, vi, cand) {
						continue
					}
					vk = cand
					break
				}
			}
			if vk < 0 {
				// Fallback: attach to any random node that is not the orphan
				// itself; prefer one that already has edges so that the orphan
				// joins an existing component.
				vk = randomAttachmentPoint(rng, g, vi)
				if vk < 0 {
					break
				}
			}
			if !g.AddEdge(vi, vk) {
				continue
			}
			if g.NumEdges() > targetEdges {
				deleteRandomEdgeAvoiding(rng, g, vi)
			}
		}
	}
}

// randomAttachmentPoint returns a node other than vi to attach an orphan to,
// preferring nodes with at least one edge. It returns -1 for graphs with no
// usable candidate.
func randomAttachmentPoint(rng *rand.Rand, g *graph.Builder, vi int) int {
	n := g.NumNodes()
	if n <= 1 {
		return -1
	}
	for attempt := 0; attempt < 200; attempt++ {
		cand := rng.Intn(n)
		if cand == vi || g.HasEdge(vi, cand) {
			continue
		}
		if g.Degree(cand) > 0 || attempt > 100 {
			return cand
		}
	}
	return -1
}

// deleteRandomEdgeAvoiding removes one (approximately uniformly chosen) edge
// that is not incident to the protected node, keeping the edge count on
// target without immediately undoing the repair that was just made.
func deleteRandomEdgeAvoiding(rng *rand.Rand, g *graph.Builder, protected int) {
	n := g.NumNodes()
	for attempt := 0; attempt < 400; attempt++ {
		u := rng.Intn(n)
		if u == protected {
			continue
		}
		nb := g.Neighbors(u)
		if len(nb) == 0 {
			continue
		}
		v := nb[rng.Intn(len(nb))]
		if v == protected {
			continue
		}
		g.RemoveEdge(u, v)
		return
	}
}
