package structural

import (
	"math/rand"
	"testing"

	"agmdp/internal/graph"
)

// rewireFixture builds a Chung–Lu seed builder big enough to clear the
// parallel-rewiring threshold, plus the sampler that generated it.
func rewireFixture(t testing.TB, seed int64) (*graph.Builder, *NodeSampler) {
	t.Helper()
	degrees := parallelDegrees(3000)
	sampler := NewNodeSampler(degrees, nil)
	target := sumDegrees(degrees) / 2
	b := generateCLBuilder(rand.New(rand.NewSource(seed)), len(degrees), sampler, target, nil)
	if b.NumEdges() < minParallelEdges {
		t.Fatalf("fixture below the parallel threshold: %d edges", b.NumEdges())
	}
	return b, sampler
}

func TestRewireParallelDeterministicPerWorkerCount(t *testing.T) {
	run := func(seed int64, workers int) *graph.Graph {
		b, sampler := rewireFixture(t, 31)
		target := b.Triangles() * 3
		rewireParallel(rand.New(rand.NewSource(seed)), b, sampler, nil, target, maxProposalFactor, workers)
		return b.Finalize()
	}
	for _, workers := range []int{2, 4, 8} {
		a, b := run(7, workers), run(7, workers)
		if !a.Equal(b) {
			t.Fatalf("workers=%d: same seed produced different rewired graphs", workers)
		}
	}
	if run(7, 2).Equal(run(8, 2)) {
		t.Fatal("different seeds produced identical rewired graphs")
	}
}

func TestRewireParallelIncreasesTriangles(t *testing.T) {
	for _, workers := range []int{2, 4} {
		b, sampler := rewireFixture(t, 33)
		before := b.Triangles()
		target := before * 3
		rewireParallel(rand.New(rand.NewSource(5)), b, sampler, nil, target, maxProposalFactor, workers)
		after := b.Triangles()
		if after <= before {
			t.Fatalf("workers=%d: rewiring did not add triangles (%d -> %d)", workers, before, after)
		}
		// The accept rule never decreases the count and the budget is sized to
		// make real progress; require at least half the gap to close.
		if after < before+(target-before)/2 {
			t.Fatalf("workers=%d: rewiring stalled at %d triangles (started %d, target %d)",
				workers, after, before, target)
		}
	}
}

func TestRewireParallelPreservesEdgeCount(t *testing.T) {
	b, sampler := rewireFixture(t, 35)
	edges := b.NumEdges()
	rewireParallel(rand.New(rand.NewSource(9)), b, sampler, nil, b.Triangles()*2, maxProposalFactor, 4)
	if b.NumEdges() != edges {
		t.Fatalf("rewiring changed the edge count: %d -> %d", edges, b.NumEdges())
	}
}

func TestRewireParallelRespectsFilter(t *testing.T) {
	// Suppress edges between same-parity nodes; the seed is unfiltered, so
	// only count rewired (new) edges. The filter is pure, hence safe for
	// concurrent use.
	filter := func(u, v int) float64 {
		if (u+v)%2 == 0 {
			return 0
		}
		return 1
	}
	b, sampler := rewireFixture(t, 37)
	beforeEdges := make(map[graph.Edge]struct{}, b.NumEdges())
	for _, e := range b.Edges() {
		beforeEdges[e] = struct{}{}
	}
	rewireParallel(rand.New(rand.NewSource(11)), b, sampler, filter, b.Triangles()*2, maxProposalFactor, 4)
	for _, e := range b.Edges() {
		if _, old := beforeEdges[e]; old {
			continue
		}
		if (e.U+e.V)%2 == 0 {
			t.Fatalf("rewired edge {%d,%d} violates the filter", e.U, e.V)
		}
	}
}

func TestTriCycLeParallelRewiringDeterministicEndToEnd(t *testing.T) {
	// A degree sequence heavy enough that the seed clears the parallel
	// threshold, so this exercises parallel seeding AND parallel rewiring.
	degrees := parallelDegrees(3000)
	params := Params{Degrees: degrees, Triangles: 6000}
	gen := func(seed int64, workers int) *graph.Graph {
		return TriCycLe{Parallelism: workers}.Generate(rand.New(rand.NewSource(seed)), len(degrees), params, nil)
	}
	for _, workers := range []int{2, 4} {
		a, b := gen(41, workers), gen(41, workers)
		if !a.Equal(b) {
			t.Fatalf("TriCycLe workers=%d: same seed produced different graphs", workers)
		}
		if a.Triangles() < 3000 {
			t.Fatalf("TriCycLe workers=%d: only %d triangles toward target %d",
				workers, a.Triangles(), params.Triangles)
		}
	}
}
