package structural

import (
	"math/rand"
	"time"

	"agmdp/internal/graph"
	"agmdp/internal/obs"
	"agmdp/internal/parallel"
)

// Phase timings for TriCycLe generation, on the process-wide default
// registry. The two histograms split one Generate call into its seed phase
// (Chung–Lu plus orphan post-processing) and its rewiring phase, giving the
// sampling pipeline generate-vs-rewire visibility. Only the wall clock is
// read — no RNG draws are added or reordered, so generated graphs are
// byte-identical with and without a scraper attached.
var (
	tricycleSeedDur = obs.Default().Histogram("agmdp_structural_seed_duration_seconds",
		"Wall-clock duration of the Chung-Lu seed phase of TriCycLe generation.")
	tricycleRewireDur = obs.Default().Histogram("agmdp_structural_rewire_duration_seconds",
		"Wall-clock duration of the triangle-rewiring phase of TriCycLe generation.")
)

// TriCycLe is the structural model introduced by the paper (Algorithm 1). It
// starts from a Chung–Lu seed graph matching the target degree sequence and
// iteratively rewires edges to create triangles: each step proposes a
// transitive edge (a "friend of a friend" link), deletes the oldest edge to
// preserve the expected degree sequence, and keeps the replacement only if it
// does not decrease the running triangle count. Rewiring stops when the
// target triangle count n∆ is reached.
//
// The zero value enables the orphan-node extension (Algorithm 2): degree-one
// nodes are excluded from the π distribution and wired up in a post-processing
// pass applied to both the seed graph and the final graph, which removes the
// large number of disconnected nodes plain Chung–Lu models produce.
type TriCycLe struct {
	// DisablePostProcess turns off the orphan-node extension; used by the
	// ablation benchmarks.
	DisablePostProcess bool
	// MaxProposalFactor overrides the default proposal budget multiplier.
	MaxProposalFactor int
	// Parallelism is the number of concurrent streams used for both the
	// Chung–Lu seed graph and the batched triangle-rewiring phase. Values ≤ 0
	// mean "auto" (the process default, runtime.GOMAXPROCS by default); 1
	// forces sequential generation. Output is deterministic for a fixed
	// (seed, resolved worker count) pair; different worker counts are
	// different, equally valid draws from the model. With more than one
	// stream the filter may be called from multiple goroutines and must be
	// safe for concurrent use (AGM-DP's filters are: they only read shared
	// slices).
	Parallelism int
}

// Name implements Model.
func (t TriCycLe) Name() string { return "TriCycLe" }

// Generate implements Model. params.Degrees is the target degree sequence
// assigned positionally to nodes, params.Triangles the target triangle count.
func (t TriCycLe) Generate(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Graph {
	return t.GenerateBuilder(rng, n, params, filter).Finalize()
}

// GenerateBuilder implements StreamModel: the full TriCycLe pipeline — seed,
// orphan post-processing, triangle rewiring, second post-processing — with the
// final freeze left to the caller.
func (t TriCycLe) GenerateBuilder(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Builder {
	if err := params.Validate(n); err != nil {
		panic(err)
	}
	proposalFactor := t.MaxProposalFactor
	if proposalFactor <= 0 {
		proposalFactor = maxProposalFactor
	}
	postProcess := !t.DisablePostProcess
	workers := parallel.Resolve(t.Parallelism)

	degrees := params.Degrees
	totalEdges := sumDegrees(degrees) / 2

	// Orphan extension: exclude degree-one nodes from π and hold back one seed
	// edge per degree-one node; the post-processing pass wires them up.
	var excluded func(int) bool
	degreeOne := 0
	if postProcess {
		for _, d := range degrees {
			if d == 1 {
				degreeOne++
			}
		}
		excluded = func(i int) bool { return degrees[i] == 1 }
	}
	sampler := NewNodeSampler(degrees, excluded)
	seedTarget := totalEdges - degreeOne
	if seedTarget < 0 {
		seedTarget = 0
	}

	seedStart := time.Now()
	b := generateCLParallelBuilder(rng, n, sampler, seedTarget, filter, workers)
	if postProcess {
		PostProcessGraph(rng, b, sampler, degrees, filter)
	}
	tricycleSeedDur.ObserveDuration(time.Since(seedStart))
	if b.NumEdges() == 0 || sampler.Empty() {
		return b
	}

	rewireStart := time.Now()
	if workers > 1 && b.NumEdges() >= minParallelEdges {
		rewireParallel(rng, b, sampler, filter, params.Triangles, proposalFactor, workers)
	} else {
		rewireSequential(rng, b, sampler, filter, params.Triangles, proposalFactor)
	}
	tricycleRewireDur.ObserveDuration(time.Since(rewireStart))

	if postProcess {
		PostProcessGraph(rng, b, sampler, degrees, filter)
	}
	return b
}

// rewireSequential is the paper's single-stream rewiring loop (Algorithm 1,
// lines 5–13): propose a transitive edge, delete the oldest edge, keep the
// replacement only if the triangle count does not decrease.
func rewireSequential(rng *rand.Rand, b *graph.Builder, sampler *NodeSampler, filter EdgeFilter, target int64, proposalFactor int) {
	queue := newEdgeQueue(b)
	tau := b.Triangles()
	// Proposal budget: enough to rewire every edge several times plus extra
	// headroom proportional to the number of triangles still missing. A stall
	// counter additionally aborts the loop when the triangle count has stopped
	// improving, so unreachable targets terminate quickly.
	missing := target - tau
	if missing < 0 {
		missing = 0
	}
	maxProposals := proposalFactor*(b.NumEdges()+1) + int(50*missing)
	stallLimit := 20*(b.NumEdges()+1) + 20000
	stalled := 0
	for proposals := 0; tau < target && proposals < maxProposals && stalled < stallLimit; proposals++ {
		stalled++
		vi := sampler.Sample(rng)
		vj := sampleTwoHop(rng, b, vi)
		if vj < 0 || vi == vj || b.HasEdge(vi, vj) {
			continue
		}
		// AGM-DP integration (footnote 4): the acceptance probabilities apply
		// to the transitive proposals as well as to the seed edges.
		if !acceptEdge(rng, filter, vi, vj) {
			continue
		}
		oldest, ok := queue.popOldest(b)
		if !ok {
			break
		}
		cnOld := b.CommonNeighbors(oldest.U, oldest.V)
		b.RemoveEdge(oldest.U, oldest.V)
		cnNew := b.CommonNeighbors(vi, vj)
		if cnNew >= cnOld {
			b.AddEdge(vi, vj)
			queue.push(graph.Edge{U: vi, V: vj})
			tau += int64(cnNew - cnOld)
			if cnNew > cnOld {
				stalled = 0
			}
		} else {
			// Undo the deletion; the restored edge becomes the youngest so the
			// loop cannot immediately pick it again and stall.
			b.AddEdge(oldest.U, oldest.V)
			queue.push(oldest)
		}
	}
}
