package structural

import (
	"math/rand"

	"agmdp/internal/graph"
	"agmdp/internal/parallel"
)

// rewireProposal is one triangle-closing swap candidate produced by a
// proposal worker against the frozen snapshot, carrying the snapshot's
// common-neighbour count so the serial merge can usually skip re-running the
// intersection on the live builder.
type rewireProposal struct {
	vi, vj int32
	cn     int32 // snap.CommonNeighbors(vi, vj), computed in the worker
}

// rewireParallel is the batched, multi-stream variant of TriCycLe's rewiring
// phase. Each round freezes the builder into an immutable CSR snapshot (safe
// for unrestricted concurrent reads), fans the proposal loop — π draws,
// two-hop sampling, duplicate checks and filter rolls, which dominate the
// sequential loop's cost — out over `workers` streams on the shared pool, and
// then applies the collected candidates in a single deterministic merge.
//
// Determinism contract (same as GenerateCLParallel): the output depends only
// on (rng state, builder state, sampler, filter, target, workers). All worker
// seeds are pre-drawn from the parent rng before any goroutine starts, each
// worker derives its proposals from its own rand.Rand, worker results land in
// per-worker slots, and the merge walks them in (worker, proposal) order with
// no further randomness — so the same seed and worker count always reproduce
// the same graph, while different worker counts are different, equally valid
// draws from the model.
//
// The merge is conflict-detecting: a candidate touching a node already
// involved in a swap applied earlier in the same batch is skipped, keeping
// the applied swaps consistent with the snapshot the workers evaluated them
// against. That same conflict check is what lets the merge trust each
// worker's snapshot common-neighbour count: every builder mutation since the
// freeze either has both endpoints in `touched` (applied swaps), is net-null
// (rejected swaps restore the edge they removed), or is the in-flight oldest-
// edge removal — so for a candidate that survives the check, row(vi) and
// row(vj) still equal their snapshot rows unless the just-removed oldest edge
// touches vi or vj, the one case where cnNew is recomputed on the live
// builder. The accepted counts are therefore exactly the live values, the
// running triangle count stays exact, and the accept rule (cnNew ≥ cnOld
// against the current oldest edge) is identical to the sequential loop's —
// while the O(degree) intersections run in the parallel workers instead of
// the serial merge.
func rewireParallel(rng *rand.Rand, b *graph.Builder, sampler *NodeSampler, filter EdgeFilter, target int64, proposalFactor, workers int) {
	queue := newEdgeQueue(b)
	tau := b.Triangles()
	missing := target - tau
	if missing < 0 {
		missing = 0
	}
	// Same budget and stall accounting as the sequential loop, charged per
	// proposal attempt across all workers.
	maxProposals := proposalFactor*(b.NumEdges()+1) + int(50*missing)
	stallLimit := 20*(b.NumEdges()+1) + 20000
	stalled := 0

	// Batch size: large enough to amortise the O(n+m) snapshot freeze over
	// the proposal work, small enough that the snapshot the workers see does
	// not go too stale (stale proposals fail the merge's conflict checks and
	// waste budget).
	batch := 128 * workers
	if min := b.NumEdges() / 8; batch < min {
		batch = min
	}

	touched := make(map[int32]struct{}, 4*workers)
	for proposals := 0; tau < target && proposals < maxProposals && stalled < stallLimit; {
		snap := b.Finalize()
		// Pre-draw every worker seed so the parent rng is consumed identically
		// regardless of scheduling.
		seeds := make([]int64, workers)
		for i := range seeds {
			seeds[i] = rng.Int63()
		}
		shares := parallel.Split(batch, workers)
		found := make([][]rewireProposal, len(shares))
		parallel.Do(len(shares), func(w int) {
			found[w] = proposeRewires(rand.New(rand.NewSource(seeds[w])), snap, sampler, filter, shares[w].Len())
		})
		proposals += batch
		stalled += batch

		clear(touched)
		for _, candidates := range found {
			for _, c := range candidates {
				if tau >= target {
					return
				}
				if _, hot := touched[c.vi]; hot {
					continue
				}
				if _, hot := touched[c.vj]; hot {
					continue
				}
				vi, vj := int(c.vi), int(c.vj)
				if b.HasEdge(vi, vj) {
					continue
				}
				oldest, ok := queue.popOldest(b)
				if !ok {
					return
				}
				cnOld := b.CommonNeighbors(oldest.U, oldest.V)
				b.RemoveEdge(oldest.U, oldest.V)
				cnNew := int(c.cn)
				if oldest.U == vi || oldest.U == vj || oldest.V == vi || oldest.V == vj {
					// The removal just changed a row the snapshot count was
					// computed from; this is the only case it can be stale.
					cnNew = b.CommonNeighbors(vi, vj)
				}
				if cnNew >= cnOld {
					b.AddEdge(vi, vj)
					queue.push(graph.Edge{U: vi, V: vj})
					tau += int64(cnNew - cnOld)
					touched[c.vi] = struct{}{}
					touched[c.vj] = struct{}{}
					touched[int32(oldest.U)] = struct{}{}
					touched[int32(oldest.V)] = struct{}{}
					if cnNew > cnOld {
						stalled = 0
					}
				} else {
					// Undo the deletion; the restored edge becomes the
					// youngest so the merge cannot immediately re-pick it.
					b.AddEdge(oldest.U, oldest.V)
					queue.push(oldest)
				}
			}
		}
	}
}

// proposeRewires runs one worker's proposal loop against the frozen snapshot:
// transitive-edge draws with self-loops, existing edges and filter rejections
// discarded. It returns the surviving candidates in proposal order.
func proposeRewires(rng *rand.Rand, snap *graph.Graph, sampler *NodeSampler, filter EdgeFilter, attempts int) []rewireProposal {
	out := make([]rewireProposal, 0, 16)
	for k := 0; k < attempts; k++ {
		vi := sampler.Sample(rng)
		vj := sampleTwoHop(rng, snap, vi)
		if vj < 0 || vi == vj || snap.HasEdge(vi, vj) {
			continue
		}
		// AGM-DP integration (footnote 4): the acceptance probabilities apply
		// to the transitive proposals as well as to the seed edges.
		if !acceptEdge(rng, filter, vi, vj) {
			continue
		}
		// The snapshot count is computed here, in parallel, after the filter
		// roll so rng consumption is unchanged and rejected candidates pay
		// nothing. The merge uses it directly unless a conflicting oldest-
		// edge removal invalidates it.
		out = append(out, rewireProposal{
			vi: int32(vi),
			vj: int32(vj),
			cn: int32(snap.CommonNeighbors(vi, vj)),
		})
	}
	return out
}
