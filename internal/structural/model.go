// Package structural implements the generative structural models used by
// AGM-DP: the Chung–Lu random graph model and its fast implementation (FCL),
// the Transitive Chung–Lu model (TCL) of Pfeiffer et al., and the paper's new
// TriCycLe model (Algorithm 1) together with the orphan-node post-processing
// step (Algorithm 2). An Erdős–Rényi generator is included as a trivial
// baseline for tests and examples.
//
// All generators are deterministic given a *rand.Rand and accept an optional
// EdgeFilter, which is how AGM-DP injects its attribute-correlation
// accept/reject probabilities into edge proposal (Section 4 of the paper).
package structural

import (
	"fmt"
	"math/rand"
	"strings"

	"agmdp/internal/graph"
)

// EdgeFilter returns the probability, in [0, 1], with which a proposed edge
// {u, v} should be accepted. A nil EdgeFilter accepts every proposal. AGM-DP
// supplies a filter of the form A(F_w(x̃_u, x̃_v)) derived from the learned
// attribute correlations.
type EdgeFilter func(u, v int) float64

// acceptEdge rolls the filter for a proposed edge.
func acceptEdge(rng *rand.Rand, filter EdgeFilter, u, v int) bool {
	if filter == nil {
		return true
	}
	p := filter(u, v)
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return rng.Float64() <= p
}

// Params bundles the structural-model parameters ΘM that AGM-DP learns from
// the input graph. Degrees is the (sorted or unsorted) target degree sequence
// assigned positionally to nodes 0..n−1; Triangles is the target triangle
// count used by TriCycLe; Rho is the transitive-closure probability used by
// TCL.
type Params struct {
	Degrees   []int
	Triangles int64
	Rho       float64
}

// Validate checks that the parameters are internally consistent for a model
// over n nodes.
func (p Params) Validate(n int) error {
	if len(p.Degrees) != n {
		return fmt.Errorf("structural: degree sequence has %d entries for %d nodes", len(p.Degrees), n)
	}
	for i, d := range p.Degrees {
		if d < 0 || d > n-1 {
			return fmt.Errorf("structural: degree %d at position %d outside [0, %d]", d, i, n-1)
		}
	}
	if p.Triangles < 0 {
		return fmt.Errorf("structural: negative triangle target %d", p.Triangles)
	}
	if p.Rho < 0 || p.Rho > 1 {
		return fmt.Errorf("structural: transitive closure probability %v outside [0, 1]", p.Rho)
	}
	return nil
}

// ByName resolves a structural model from a user-facing or fitted name:
// "tricycle"/"tricl"/"TriCycLe", "fcl", or "tcl", case-insensitively; the
// empty string selects TriCycLe. parallelism configures the resolved model's
// concurrent proposal streams where the model supports them (≤ 0 means
// "auto", 1 forces sequential generation). It is the single resolver shared
// by the facade, the engine and the HTTP API, so the accepted spellings
// cannot drift apart between fitting and sampling.
func ByName(name string, parallelism int) (Model, error) {
	switch strings.ToLower(name) {
	case "", "tricycle", "tricl":
		return TriCycLe{Parallelism: parallelism}, nil
	case "fcl":
		return FCL{Parallelism: parallelism}, nil
	case "tcl":
		return TCL{}, nil
	default:
		return nil, fmt.Errorf("structural: unknown model %q (want tricycle, fcl or tcl)", name)
	}
}

// WithParallelism returns a copy of the model with its parallelism knob set
// to n; models without a knob are returned unchanged. It lives next to
// ByName so a new model with concurrent streams gets added to both switches
// together — callers (e.g. the acceptance-table fitter, which pins n = 1 for
// host-independent output) rely on this covering every parallel model.
func WithParallelism(m Model, n int) Model {
	switch t := m.(type) {
	case TriCycLe:
		t.Parallelism = n
		return t
	case FCL:
		t.Parallelism = n
		return t
	default:
		return m
	}
}

// Model is the interface AGM-DP uses to plug in a structural generator.
type Model interface {
	// Name identifies the model in reports ("FCL", "TCL", "TriCycLe", ...).
	Name() string
	// Generate produces a synthetic structure over n nodes following the
	// model's parameters, consulting filter (if non-nil) before accepting any
	// proposed edge.
	Generate(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Graph
}

// StreamModel is a Model whose generator can hand back the still-mutable
// Builder instead of a frozen CSR graph. Builder.Finalize is non-destructive
// and consumes no randomness, so GenerateBuilder followed by Finalize is
// byte-identical to Generate for the same rng state — but the builder also
// serves row ranges directly (it implements graph.RowSource), which is what
// lets the streaming sample pipeline encode shard-by-shard without ever
// materialising the packed offsets/neighbors arrays. All models shipped by
// this package implement StreamModel; the interface exists so a future model
// without a builder-shaped generator can still plug in as a plain Model.
type StreamModel interface {
	Model
	// GenerateBuilder is Generate without the final freeze: it returns the
	// mutable builder holding the generated structure. The rng trace is
	// exactly that of Generate.
	GenerateBuilder(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Builder
}

// Every shipped model streams; the sampling pipeline relies on this to take
// the builder path unconditionally for ByName-resolved models.
var _ = []StreamModel{TriCycLe{}, FCL{}, TCL{}}
