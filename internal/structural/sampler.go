package structural

import (
	"fmt"
	"math/rand"
)

// NodeSampler draws nodes from the π distribution of the Chung–Lu family of
// models, in which node i is selected with probability d_i / Σ_j d_j. It uses
// the Fast Chung–Lu construction of Pinar et al.: a vector containing each
// node ID repeated d_i times, from which samples are drawn uniformly in O(1).
type NodeSampler struct {
	pool []int32
}

// NewNodeSampler builds a sampler from target degrees indexed by node ID.
// Nodes with weight zero never appear in the pool. exclude, if non-nil,
// removes specific nodes from the distribution regardless of their degree
// (TriCycLe's orphan extension excludes degree-one nodes this way).
func NewNodeSampler(degrees []int, exclude func(node int) bool) *NodeSampler {
	total := 0
	for i, d := range degrees {
		if d < 0 {
			panic(fmt.Sprintf("structural: negative degree %d for node %d", d, i))
		}
		if exclude != nil && exclude(i) {
			continue
		}
		total += d
	}
	pool := make([]int32, 0, total)
	for i, d := range degrees {
		if exclude != nil && exclude(i) {
			continue
		}
		for j := 0; j < d; j++ {
			pool = append(pool, int32(i))
		}
	}
	return &NodeSampler{pool: pool}
}

// Empty reports whether the sampler has no mass (all degrees zero or all
// nodes excluded).
func (s *NodeSampler) Empty() bool { return len(s.pool) == 0 }

// PoolSize returns the length of the underlying pool, i.e. the sum of the
// included degrees.
func (s *NodeSampler) PoolSize() int { return len(s.pool) }

// Sample draws one node with probability proportional to its degree. It
// panics on an empty sampler.
func (s *NodeSampler) Sample(rng *rand.Rand) int {
	if len(s.pool) == 0 {
		panic("structural: sampling from an empty node sampler")
	}
	return int(s.pool[rng.Intn(len(s.pool))])
}
