package structural

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeSampler draws nodes from the π distribution of the Chung–Lu family of
// models, in which node i is selected with probability d_i / Σ_j d_j. Instead
// of the classic Fast Chung–Lu pool (each node ID repeated d_i times, O(Σ d_i)
// memory), it stores the included nodes once together with the running prefix
// sum of their degrees: a draw picks a uniform integer below the total mass
// and binary-searches the prefix sums, giving the same distribution in
// O(log n) time and O(n) memory regardless of how skewed the degree sequence
// is.
type NodeSampler struct {
	nodes []int32 // node IDs with positive included degree, ascending
	cum   []int64 // cum[k] = Σ degrees of nodes[0..k] (inclusive prefix sums)
	total int64   // total mass, Σ of the included degrees
}

// NewNodeSampler builds a sampler from target degrees indexed by node ID.
// Nodes with weight zero never appear in the distribution. exclude, if
// non-nil, removes specific nodes from the distribution regardless of their
// degree (TriCycLe's orphan extension excludes degree-one nodes this way).
func NewNodeSampler(degrees []int, exclude func(node int) bool) *NodeSampler {
	s := &NodeSampler{}
	for i, d := range degrees {
		if d < 0 {
			panic(fmt.Sprintf("structural: negative degree %d for node %d", d, i))
		}
		if d == 0 || (exclude != nil && exclude(i)) {
			continue
		}
		s.total += int64(d)
		s.nodes = append(s.nodes, int32(i))
		s.cum = append(s.cum, s.total)
	}
	return s
}

// Empty reports whether the sampler has no mass (all degrees zero or all
// nodes excluded).
func (s *NodeSampler) Empty() bool { return s.total == 0 }

// PoolSize returns the total mass of the distribution, i.e. the sum of the
// included degrees (the length the classic repeated-ID pool would have had).
func (s *NodeSampler) PoolSize() int { return int(s.total) }

// Sample draws one node with probability proportional to its degree: a
// uniform draw r in [0, total) selects the first node whose inclusive prefix
// sum exceeds r. It panics on an empty sampler.
func (s *NodeSampler) Sample(rng *rand.Rand) int {
	if s.total == 0 {
		panic("structural: sampling from an empty node sampler")
	}
	r := rng.Int63n(s.total)
	k := sort.Search(len(s.cum), func(k int) bool { return s.cum[k] > r })
	return int(s.nodes[k])
}
