package structural

import (
	"math/rand"

	"agmdp/internal/graph"
)

// TCL is the Transitive Chung–Lu model of Pfeiffer, La Fond, Moreno and
// Neville (2012). It refines a Chung–Lu seed graph by repeatedly replacing the
// oldest edge with either a transitive edge (a node connected to one of its
// two-hop neighbours, closing at least one triangle) with probability Rho, or
// another Chung–Lu edge with probability 1−Rho. The paper uses TCL as the
// closest prior structural model to compare TriCycLe against (Figures 2–3);
// its ρ parameter is fitted by expectation–maximisation, which is why it is
// hard to make differentially private.
type TCL struct{}

// Name implements Model.
func (TCL) Name() string { return "TCL" }

// Generate implements Model. params.Rho is the transitive closure
// probability; params.Degrees the target degree sequence.
func (t TCL) Generate(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Graph {
	return t.GenerateBuilder(rng, n, params, filter).Finalize()
}

// GenerateBuilder implements StreamModel: the TCL seed-and-replace loop with
// the final freeze left to the caller.
func (TCL) GenerateBuilder(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Builder {
	if err := params.Validate(n); err != nil {
		panic(err)
	}
	sampler := NewNodeSampler(params.Degrees, nil)
	target := sumDegrees(params.Degrees) / 2
	b := generateCLBuilder(rng, n, sampler, target, filter)
	if b.NumEdges() == 0 {
		return b
	}

	// FIFO of edges in insertion order; the head is the oldest edge.
	queue := newEdgeQueue(b)
	replacements := b.NumEdges() // replace every seed edge once, as in the TCL paper
	maxProposals := maxProposalFactor * (replacements + 1)
	for done, proposals := 0, 0; done < replacements && proposals < maxProposals; proposals++ {
		vi := sampler.Sample(rng)
		var vj int
		if rng.Float64() < params.Rho {
			vj = sampleTwoHop(rng, b, vi)
			if vj < 0 {
				continue
			}
		} else {
			vj = sampler.Sample(rng)
		}
		if vi == vj || b.HasEdge(vi, vj) {
			continue
		}
		if !acceptEdge(rng, filter, vi, vj) {
			continue
		}
		oldest, ok := queue.popOldest(b)
		if !ok {
			break
		}
		b.RemoveEdge(oldest.U, oldest.V)
		b.AddEdge(vi, vj)
		queue.push(graph.Edge{U: vi, V: vj})
		done++
	}
	return b
}

// adjacency is the read surface the two-hop sampler needs; both the mutable
// graph.Builder and the immutable CSR graph.Graph satisfy it, so the same
// sampler serves the sequential rewiring loops (against the live builder) and
// the batched parallel proposal workers (against a frozen snapshot).
type adjacency interface {
	NeighborsView(i int) []int32
}

// sampleTwoHop picks a uniformly random neighbour k of vi and then a uniformly
// random neighbour of k (a "friend of a friend"). It returns -1 when vi has no
// usable two-hop neighbour.
func sampleTwoHop(rng *rand.Rand, g adjacency, vi int) int {
	ni := g.NeighborsView(vi)
	if len(ni) == 0 {
		return -1
	}
	vk := int(ni[rng.Intn(len(ni))])
	nk := g.NeighborsView(vk)
	if len(nk) == 0 {
		return -1
	}
	return int(nk[rng.Intn(len(nk))])
}

// edgeQueue is a FIFO over the current edge set used to track edge age in the
// TCL and TriCycLe generators. Entries may be stale (already removed from the
// builder); popOldest skips them.
type edgeQueue struct {
	items []graph.Edge
	head  int
}

func newEdgeQueue(b *graph.Builder) *edgeQueue {
	q := &edgeQueue{items: b.Edges()}
	return q
}

func (q *edgeQueue) push(e graph.Edge) {
	q.items = append(q.items, e.Canonical())
}

// popOldest returns the oldest edge that still exists in b.
func (q *edgeQueue) popOldest(b *graph.Builder) (graph.Edge, bool) {
	for q.head < len(q.items) {
		e := q.items[q.head]
		q.head++
		if b.HasEdge(e.U, e.V) {
			return e, true
		}
	}
	return graph.Edge{}, false
}

// FitRho estimates the TCL transitive-closure probability ρ from an input
// graph by expectation–maximisation. For each observed edge {i, j} the latent
// variable indicates whether the edge was produced by the transitive step or
// the Chung–Lu step; under the generative process the per-proposal
// probabilities are
//
//	P_tri(i,j) = (1/m)·Σ_{k ∈ Γ(i)∩Γ(j)} 1/d_k
//	P_cl(i,j)  = d_i·d_j / (2m²)
//
// and the E-step responsibility is ρ·P_tri / (ρ·P_tri + (1−ρ)·P_cl), whose
// mean over edges is the M-step update. The iteration is monotone and
// converges in a handful of rounds; iterations caps the number of rounds.
func FitRho(g *graph.Graph, iterations int) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	if iterations <= 0 {
		iterations = 25
	}
	type edgeStat struct{ pTri, pCL float64 }
	stats := make([]edgeStat, 0, g.NumEdges())
	degs := g.Degrees()
	g.ForEachEdge(func(u, v int) bool {
		// Common neighbours of u and v via a sorted-merge of the CSR rows;
		// k ≠ u, v automatically because the graph has no self loops.
		var inv float64
		ru, rv := g.NeighborsView(u), g.NeighborsView(v)
		i, j := 0, 0
		for i < len(ru) && j < len(rv) {
			a, c := ru[i], rv[j]
			if a == c {
				if d := degs[a]; d > 0 {
					inv += 1 / float64(d)
				}
				i++
				j++
			} else if a < c {
				i++
			} else {
				j++
			}
		}
		pTri := inv / m
		pCL := float64(degs[u]) * float64(degs[v]) / (2 * m * m)
		stats = append(stats, edgeStat{pTri: pTri, pCL: pCL})
		return true
	})
	rho := 0.5
	for iter := 0; iter < iterations; iter++ {
		var sum float64
		for _, s := range stats {
			num := rho * s.pTri
			den := num + (1-rho)*s.pCL
			if den > 0 {
				sum += num / den
			}
		}
		next := sum / m
		if next < 0 {
			next = 0
		}
		if next > 1 {
			next = 1
		}
		if diff := next - rho; diff < 1e-9 && diff > -1e-9 {
			rho = next
			break
		}
		rho = next
	}
	return rho
}
