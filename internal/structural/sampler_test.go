package structural

import (
	"math"
	"testing"

	"agmdp/internal/dp"
)

func TestNodeSamplerProportionalToDegree(t *testing.T) {
	degrees := []int{1, 2, 3, 4}
	s := NewNodeSampler(degrees, nil)
	if s.PoolSize() != 10 {
		t.Fatalf("pool size = %d, want 10", s.PoolSize())
	}
	rng := dp.NewRand(1)
	counts := make([]float64, len(degrees))
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[s.Sample(rng)]++
	}
	for i, d := range degrees {
		want := float64(d) / 10
		got := counts[i] / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("node %d sampled with frequency %v, want ≈ %v", i, got, want)
		}
	}
}

// TestNodeSamplerChiSquared is a goodness-of-fit check that the prefix-sum
// sampler realises exactly the π distribution the repeated-ID pool encoded:
// sampled counts over a skewed degree sequence are compared to the expected
// counts with Pearson's χ² statistic. With k−1 = 7 degrees of freedom the
// 99.9th percentile of the χ² distribution is ≈ 24.3; a correct sampler fails
// this bound with probability 0.001, a subtly biased one blows past it.
func TestNodeSamplerChiSquared(t *testing.T) {
	degrees := []int{1, 1, 2, 5, 10, 50, 100, 1000} // heavily skewed tail
	s := NewNodeSampler(degrees, nil)
	total := float64(sumDegrees(degrees))
	rng := dp.NewRand(42)
	const trials = 200000
	counts := make([]float64, len(degrees))
	for i := 0; i < trials; i++ {
		counts[s.Sample(rng)]++
	}
	chi2 := 0.0
	for i, d := range degrees {
		expected := trials * float64(d) / total
		diff := counts[i] - expected
		chi2 += diff * diff / expected
	}
	const critical = 24.32 // χ²(df=7) at p = 0.001
	if chi2 > critical {
		t.Fatalf("χ² = %v exceeds the p=0.001 critical value %v; counts = %v", chi2, critical, counts)
	}
}

// The prefix-sum sampler must not allocate pool memory proportional to Σ d_i:
// a single hub of degree 10^7 still needs only two slice entries.
func TestNodeSamplerSkewedMemory(t *testing.T) {
	degrees := []int{10000000, 1}
	s := NewNodeSampler(degrees, nil)
	if len(s.nodes) != 2 || len(s.cum) != 2 {
		t.Fatalf("sampler stores %d/%d entries, want 2/2", len(s.nodes), len(s.cum))
	}
	if s.PoolSize() != 10000001 {
		t.Fatalf("PoolSize = %d, want 10000001", s.PoolSize())
	}
}

func TestNodeSamplerExcludesNodes(t *testing.T) {
	degrees := []int{5, 1, 1, 5}
	s := NewNodeSampler(degrees, func(i int) bool { return degrees[i] == 1 })
	if s.PoolSize() != 10 {
		t.Fatalf("pool size = %d, want 10 (degree-one nodes excluded)", s.PoolSize())
	}
	rng := dp.NewRand(2)
	for i := 0; i < 1000; i++ {
		v := s.Sample(rng)
		if v == 1 || v == 2 {
			t.Fatalf("sampled excluded node %d", v)
		}
	}
}

func TestNodeSamplerZeroDegreeNeverSampled(t *testing.T) {
	s := NewNodeSampler([]int{0, 3, 0, 2}, nil)
	rng := dp.NewRand(3)
	for i := 0; i < 1000; i++ {
		v := s.Sample(rng)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-degree node %d", v)
		}
	}
}

func TestNodeSamplerEmpty(t *testing.T) {
	s := NewNodeSampler([]int{0, 0}, nil)
	if !s.Empty() {
		t.Fatal("sampler with all-zero degrees should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("sampling from empty sampler did not panic")
		}
	}()
	s.Sample(dp.NewRand(1))
}

func TestNodeSamplerPanicsOnNegativeDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative degree did not panic")
		}
	}()
	NewNodeSampler([]int{1, -1}, nil)
}
