package structural

import (
	"math"
	"testing"

	"agmdp/internal/dp"
)

func TestNodeSamplerProportionalToDegree(t *testing.T) {
	degrees := []int{1, 2, 3, 4}
	s := NewNodeSampler(degrees, nil)
	if s.PoolSize() != 10 {
		t.Fatalf("pool size = %d, want 10", s.PoolSize())
	}
	rng := dp.NewRand(1)
	counts := make([]float64, len(degrees))
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[s.Sample(rng)]++
	}
	for i, d := range degrees {
		want := float64(d) / 10
		got := counts[i] / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("node %d sampled with frequency %v, want ≈ %v", i, got, want)
		}
	}
}

func TestNodeSamplerExcludesNodes(t *testing.T) {
	degrees := []int{5, 1, 1, 5}
	s := NewNodeSampler(degrees, func(i int) bool { return degrees[i] == 1 })
	if s.PoolSize() != 10 {
		t.Fatalf("pool size = %d, want 10 (degree-one nodes excluded)", s.PoolSize())
	}
	rng := dp.NewRand(2)
	for i := 0; i < 1000; i++ {
		v := s.Sample(rng)
		if v == 1 || v == 2 {
			t.Fatalf("sampled excluded node %d", v)
		}
	}
}

func TestNodeSamplerZeroDegreeNeverSampled(t *testing.T) {
	s := NewNodeSampler([]int{0, 3, 0, 2}, nil)
	rng := dp.NewRand(3)
	for i := 0; i < 1000; i++ {
		v := s.Sample(rng)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-degree node %d", v)
		}
	}
}

func TestNodeSamplerEmpty(t *testing.T) {
	s := NewNodeSampler([]int{0, 0}, nil)
	if !s.Empty() {
		t.Fatal("sampler with all-zero degrees should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("sampling from empty sampler did not panic")
		}
	}()
	s.Sample(dp.NewRand(1))
}

func TestNodeSamplerPanicsOnNegativeDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative degree did not panic")
		}
	}()
	NewNodeSampler([]int{1, -1}, nil)
}
