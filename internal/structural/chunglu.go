package structural

import (
	"math/rand"

	"agmdp/internal/graph"
)

// maxProposalFactor bounds how many edge proposals a generator will make as a
// multiple of the target edge count before giving up. Rejections come from
// duplicate edges, self-loops and the AGM acceptance filter; the cap keeps the
// generators total even under extremely restrictive filters.
const maxProposalFactor = 60

// FCL is the (bias-corrected) Fast Chung–Lu structural model: it generates a
// graph whose expected degree sequence matches the target degrees but makes no
// attempt to reproduce clustering. It is the simple structural model the paper
// evaluates as AGM-FCL / AGMDP-FCL.
//
// The zero value proposes edges from the process-default number of concurrent
// streams (see GenerateCLParallel and parallel.Resolve); output remains
// deterministic for a fixed (seed, resolved worker count) pair.
type FCL struct {
	// Parallelism is the number of concurrent edge-proposal streams: ≤ 0
	// means "auto" (the process default, runtime.GOMAXPROCS unless overridden
	// with parallel.SetParallelism), 1 forces the sequential generator.
	Parallelism int
}

// Name implements Model.
func (FCL) Name() string { return "FCL" }

// Generate implements Model by delegating to GenerateCL (or its parallel
// variant) with the full target edge count.
func (f FCL) Generate(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Graph {
	return f.GenerateBuilder(rng, n, params, filter).Finalize()
}

// GenerateBuilder implements StreamModel: the Chung–Lu proposal loop with the
// final freeze left to the caller.
func (f FCL) GenerateBuilder(rng *rand.Rand, n int, params Params, filter EdgeFilter) *graph.Builder {
	if err := params.Validate(n); err != nil {
		panic(err)
	}
	sampler := NewNodeSampler(params.Degrees, nil)
	target := sumDegrees(params.Degrees) / 2
	return generateCLParallelBuilder(rng, n, sampler, target, filter, f.Parallelism)
}

// GenerateCL samples a Chung–Lu graph with the given number of edges over n
// nodes, drawing both endpoints of every edge from the π distribution encoded
// by sampler. Proposals that are self-loops, duplicates, or rejected by the
// filter are discarded and re-drawn (the bias-corrected FCL variant, cFCL,
// which re-samples rather than skipping so the realised edge count matches the
// target). Generation stops early if the proposal budget is exhausted, which
// can only happen under a near-zero acceptance filter.
func GenerateCL(rng *rand.Rand, n int, sampler *NodeSampler, targetEdges int, filter EdgeFilter) *graph.Graph {
	return generateCLBuilder(rng, n, sampler, targetEdges, filter).Finalize()
}

// generateCLBuilder is GenerateCL without the final freeze: the TCL and
// TriCycLe generators keep rewiring the result, so they take the still-mutable
// Builder and finalize once at the very end.
func generateCLBuilder(rng *rand.Rand, n int, sampler *NodeSampler, targetEdges int, filter EdgeFilter) *graph.Builder {
	b := graph.NewBuilder(n, 0)
	if sampler.Empty() || targetEdges <= 0 {
		return b
	}
	maxProposals := maxProposalFactor * (targetEdges + 1)
	if filter != nil {
		// An AGM acceptance filter rejects most proposals for configurations
		// the learned correlations consider over-represented, so the proposal
		// budget has to cover the extra rejections (the acceptance ratios are
		// capped upstream, which bounds the required head-room).
		maxProposals *= 8
	}
	for proposals := 0; b.NumEdges() < targetEdges && proposals < maxProposals; proposals++ {
		u := sampler.Sample(rng)
		v := sampler.Sample(rng)
		if u == v || b.HasEdge(u, v) {
			continue
		}
		if !acceptEdge(rng, filter, u, v) {
			continue
		}
		b.AddEdge(u, v)
	}
	return b
}

// sumDegrees returns the sum of a degree sequence.
func sumDegrees(degrees []int) int {
	total := 0
	for _, d := range degrees {
		total += d
	}
	return total
}

// ErdosRenyi generates a G(n, m) random graph with exactly m edges (or as many
// as fit) chosen uniformly at random. It serves as a structure-free baseline
// in tests and examples; it is not used by AGM-DP itself.
func ErdosRenyi(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for b.NumEdges() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
	}
	return b.Finalize()
}
