package structural

import (
	"math/rand"
	"testing"

	"agmdp/internal/graph"
)

// parallelDegrees builds a skewed degree sequence whose edge total clears the
// minParallelEdges threshold so the parallel path actually engages.
func parallelDegrees(n int) []int {
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = 2 + i%7
		if i%97 == 0 {
			degrees[i] = 40
		}
	}
	return degrees
}

func TestGenerateCLParallelDeterministicPerWorkerCount(t *testing.T) {
	degrees := parallelDegrees(3000)
	n := len(degrees)
	gen := func(seed int64, workers int) *graph.Graph {
		sampler := NewNodeSampler(degrees, nil)
		target := sumDegrees(degrees) / 2
		return GenerateCLParallel(rand.New(rand.NewSource(seed)), n, sampler, target, nil, workers)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		a, b := gen(17, workers), gen(17, workers)
		if !a.Equal(b) {
			t.Fatalf("workers=%d: same seed produced different graphs", workers)
		}
	}
	if gen(17, 1).Equal(gen(18, 1)) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateCLParallelHitsEdgeTarget(t *testing.T) {
	degrees := parallelDegrees(3000)
	n := len(degrees)
	target := sumDegrees(degrees) / 2
	for _, workers := range []int{2, 4} {
		sampler := NewNodeSampler(degrees, nil)
		g := GenerateCLParallel(rand.New(rand.NewSource(3)), n, sampler, target, nil, workers)
		// Cross-worker duplicates are topped up sequentially; with a generous
		// proposal budget the realised count should land on the target.
		if got := g.NumEdges(); got < target*95/100 || got > target {
			t.Fatalf("workers=%d: %d edges, want ≈%d", workers, got, target)
		}
	}
}

func TestGenerateCLParallelSmallTargetFallsBack(t *testing.T) {
	// Below the threshold the parallel generator must consume the rng exactly
	// like the sequential one, i.e. produce the identical graph.
	degrees := make([]int, 200)
	for i := range degrees {
		degrees[i] = 3
	}
	n := len(degrees)
	target := sumDegrees(degrees) / 2
	seq := GenerateCL(rand.New(rand.NewSource(9)), n, NewNodeSampler(degrees, nil), target, nil)
	par := GenerateCLParallel(rand.New(rand.NewSource(9)), n, NewNodeSampler(degrees, nil), target, nil, 8)
	if !seq.Equal(par) {
		t.Fatal("small-target parallel generation diverged from sequential")
	}
}

func TestGenerateCLParallelWithFilter(t *testing.T) {
	degrees := parallelDegrees(3000)
	n := len(degrees)
	target := sumDegrees(degrees) / 2
	// A filter that suppresses edges between same-parity nodes; it is pure, so
	// safe for concurrent use.
	filter := func(u, v int) float64 {
		if (u+v)%2 == 0 {
			return 0
		}
		return 1
	}
	sampler := NewNodeSampler(degrees, nil)
	g := GenerateCLParallel(rand.New(rand.NewSource(5)), n, sampler, target, filter, 4)
	g.ForEachEdge(func(u, v int) bool {
		if (u+v)%2 == 0 {
			t.Fatalf("edge {%d,%d} violates the filter", u, v)
		}
		return true
	})
	if g.NumEdges() == 0 {
		t.Fatal("filter starved generation entirely")
	}
	// Deterministic under the filter too.
	sampler2 := NewNodeSampler(degrees, nil)
	h := GenerateCLParallel(rand.New(rand.NewSource(5)), n, sampler2, target, filter, 4)
	if !g.Equal(h) {
		t.Fatal("filtered parallel generation is not deterministic")
	}
}

func TestParallelModelsDeterministic(t *testing.T) {
	degrees := parallelDegrees(2400)
	n := len(degrees)
	params := Params{Degrees: degrees, Triangles: 500}
	for name, model := range map[string]Model{
		"FCL":      FCL{Parallelism: 4},
		"TriCycLe": TriCycLe{Parallelism: 4},
	} {
		a := model.Generate(rand.New(rand.NewSource(21)), n, params, nil)
		b := model.Generate(rand.New(rand.NewSource(21)), n, params, nil)
		if !a.Equal(b) {
			t.Fatalf("%s with Parallelism=4: same seed produced different graphs", name)
		}
		if a.NumEdges() == 0 {
			t.Fatalf("%s generated an empty graph", name)
		}
	}
}
