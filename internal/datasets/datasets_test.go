package datasets

import (
	"math"
	"testing"

	"agmdp/internal/attrs"
	"agmdp/internal/dp"
)

func TestAllProfilesMatchTable6Targets(t *testing.T) {
	want := map[string]struct {
		nodes, edges, dmax int
	}{
		"lastfm":   {1843, 12668, 119},
		"petster":  {1788, 12476, 272},
		"epinions": {26427, 104075, 625},
		"pokec":    {592627, 3725424, 1274},
	}
	profiles := AllProfiles()
	if len(profiles) != 4 {
		t.Fatalf("AllProfiles returned %d profiles, want 4", len(profiles))
	}
	for _, p := range profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected profile %q", p.Name)
		}
		if p.Nodes != w.nodes || p.Edges != w.edges || p.MaxDegree != w.dmax {
			t.Fatalf("%s profile = (%d, %d, %d), want (%d, %d, %d)",
				p.Name, p.Nodes, p.Edges, p.MaxDegree, w.nodes, w.edges, w.dmax)
		}
		if p.NumAttributes() != 2 {
			t.Fatalf("%s should carry 2 attributes (paper uses w=2)", p.Name)
		}
		if len(p.Epsilons) != 4 {
			t.Fatalf("%s should list 4 privacy budgets", p.Name)
		}
		if p.DefaultScale <= 0 || p.DefaultScale > 1 {
			t.Fatalf("%s default scale %v outside (0, 1]", p.Name, p.DefaultScale)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Epinions")
	if err != nil {
		t.Fatalf("ByName(Epinions): %v", err)
	}
	if p.Name != "epinions" {
		t.Fatalf("ByName returned %q", p.Name)
	}
	if _, err := ByName("facebook"); err == nil {
		t.Fatal("unknown dataset name should error")
	}
}

func TestAverageDegree(t *testing.T) {
	p, _ := ByName("lastfm")
	want := 2 * 12668.0 / 1843.0
	if math.Abs(p.AverageDegree()-want) > 1e-9 {
		t.Fatalf("AverageDegree = %v, want %v", p.AverageDegree(), want)
	}
	if (Profile{}).AverageDegree() != 0 {
		t.Fatal("zero profile should have zero average degree")
	}
}

func TestScaled(t *testing.T) {
	p, _ := ByName("pokec")
	s := p.Scaled(0.05)
	if s.Nodes >= p.Nodes || s.Edges >= p.Edges {
		t.Fatalf("scaling did not shrink the profile: %+v", s)
	}
	if math.Abs(float64(s.Nodes)-0.05*float64(p.Nodes)) > 1 {
		t.Fatalf("scaled nodes = %d, want ≈ %v", s.Nodes, 0.05*float64(p.Nodes))
	}
	if s.MaxDegree >= s.Nodes {
		t.Fatalf("scaled max degree %d not below node count %d", s.MaxDegree, s.Nodes)
	}
	if p.Scaled(1).Nodes != p.Nodes {
		t.Fatal("Scaled(1) should be the identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive scale did not panic")
		}
	}()
	p.Scaled(0)
}

func TestDefaultScaled(t *testing.T) {
	p, _ := ByName("lastfm")
	if p.DefaultScaled().Nodes != p.Nodes {
		t.Fatal("lastfm default scale should be full size")
	}
	pk, _ := ByName("pokec")
	if pk.DefaultScaled().Nodes >= pk.Nodes {
		t.Fatal("pokec default scale should shrink the dataset")
	}
}

func TestGenerateMatchesProfileShape(t *testing.T) {
	p, _ := ByName("lastfm")
	p = p.Scaled(0.5)
	g := Generate(dp.NewRand(1), p)

	if g.NumNodes() != p.Nodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), p.Nodes)
	}
	if g.NumAttributes() != 2 {
		t.Fatalf("attributes = %d, want 2", g.NumAttributes())
	}
	// Edge count within 10% of the target.
	if math.Abs(float64(g.NumEdges()-p.Edges))/float64(p.Edges) > 0.10 {
		t.Fatalf("edges = %d, want ≈ %d", g.NumEdges(), p.Edges)
	}
	// Degrees respect the cap.
	if g.MaxDegree() > p.MaxDegree {
		t.Fatalf("max degree %d exceeds cap %d", g.MaxDegree(), p.MaxDegree)
	}
	// Social-graph-like clustering and triangles must be present.
	if g.Triangles() < int64(g.NumEdges()/10) {
		t.Fatalf("only %d triangles for %d edges; closure phase ineffective", g.Triangles(), g.NumEdges())
	}
	if g.AverageLocalClustering() < 0.03 {
		t.Fatalf("average local clustering %v too small", g.AverageLocalClustering())
	}
}

func TestGenerateHeavyTailedDegrees(t *testing.T) {
	p, _ := ByName("petster")
	p = p.Scaled(0.5)
	g := Generate(dp.NewRand(2), p)
	hist := g.DegreeHistogram()
	low := hist[1] + hist[2] + hist[3]
	if low < g.NumNodes()/4 {
		t.Fatalf("only %d low-degree nodes out of %d; degree distribution not heavy tailed", low, g.NumNodes())
	}
	if g.MaxDegree() < int(3*p.AverageDegree()) {
		t.Fatalf("max degree %d too small for a heavy-tailed graph (avg %v)", g.MaxDegree(), p.AverageDegree())
	}
}

func TestGenerateExhibitsHomophily(t *testing.T) {
	p, _ := ByName("lastfm")
	p = p.Scaled(0.5)
	g := Generate(dp.NewRand(3), p)

	// Compare the fraction of same-configuration edges against the fraction
	// expected if edges ignored attributes (the sum over configs of the
	// squared node fraction).
	thetaX := attrs.TrueThetaX(g)
	expectSame := 0.0
	for _, q := range thetaX {
		expectSame += q * q
	}
	same := 0
	g.ForEachEdge(func(u, v int) bool {
		if attrs.NodeConfig(g.Attr(u), 2) == attrs.NodeConfig(g.Attr(v), 2) {
			same++
		}
		return true
	})
	got := float64(same) / float64(g.NumEdges())
	if got <= expectSame*1.15 {
		t.Fatalf("same-config edge fraction %v not clearly above the no-homophily expectation %v", got, expectSame)
	}
}

func TestGenerateAttributeMarginals(t *testing.T) {
	p, _ := ByName("pokec")
	p = p.Scaled(0.02)
	g := Generate(dp.NewRand(4), p)
	for j, want := range p.AttrProbs {
		ones := 0
		for i := 0; i < g.NumNodes(); i++ {
			if g.Attr(i).Bit(j) == 1 {
				ones++
			}
		}
		got := float64(ones) / float64(g.NumNodes())
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("attribute %d marginal %v, want ≈ %v", j, got, want)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	p, _ := ByName("petster")
	p = p.Scaled(0.2)
	a := Generate(dp.NewRand(7), p)
	b := Generate(dp.NewRand(7), p)
	if !a.Equal(b) {
		t.Fatal("generation is not deterministic for a fixed seed")
	}
	c := Generate(dp.NewRand(8), p)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateTinyProfileDoesNotPanic(t *testing.T) {
	p := Profile{Name: "tiny", Nodes: 1, Edges: 0, MaxDegree: 1, AttrProbs: []float64{0.5}}
	g := Generate(dp.NewRand(1), p)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("tiny profile generated %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}
}
