// Package datasets provides synthetic stand-ins for the four real-world
// social networks used in the paper's evaluation (Last.fm, Petster, Epinions
// and Pokec; Appendix A, Table 6). The real datasets cannot be redistributed
// with this library, so each profile is a calibrated generator that produces
// attributed graphs with the same headline characteristics: node and edge
// counts, a heavy-tailed degree distribution with the reported maximum and
// average degree, substantial triangle density / local clustering, two binary
// node attributes, and attribute homophily. All of the paper's mechanisms see
// exactly the same code path on these graphs as they would on the originals,
// so the qualitative shape of the experimental results is preserved.
//
// Every profile also carries a DefaultScale used by the experiment harness so
// that the largest datasets finish in laptop-scale time; the scale can be
// overridden (up to 1.0 = full size) from the CLI or the benchmarks.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"agmdp/internal/graph"
)

// Profile describes one synthetic dataset generator.
type Profile struct {
	// Name identifies the dataset ("lastfm", "petster", "epinions", "pokec").
	Name string
	// Nodes and Edges are the target sizes (Table 6).
	Nodes int
	Edges int
	// MaxDegree caps the degree distribution (Table 6's dmax).
	MaxDegree int
	// ClosureFraction is the fraction of edges created by triadic closure
	// (friend-of-a-friend wiring); it controls the triangle density.
	ClosureFraction float64
	// Homophily is the probability that a non-closure edge is forced to join
	// two nodes with identical attribute configurations.
	Homophily float64
	// AttrProbs holds the marginal probability of each binary attribute
	// being 1.
	AttrProbs []float64
	// DefaultScale is the fraction of the full size the experiment harness
	// uses by default (1.0 = full size).
	DefaultScale float64
	// Epsilons is the privacy-budget grid the paper evaluates this dataset on.
	Epsilons []float64
	// Trials is the number of synthetic graphs the paper averages over for
	// this dataset (used by the experiment harness, usually reduced).
	Trials int
}

// Table 6 of the paper, used to calibrate the profiles.
var (
	lastfm = Profile{
		Name: "lastfm", Nodes: 1843, Edges: 12668, MaxDegree: 119,
		ClosureFraction: 0.42, Homophily: 0.55,
		AttrProbs: []float64{0.33, 0.22}, DefaultScale: 1.0,
		Epsilons: []float64{math.Log(3), math.Log(2), 0.3, 0.2}, Trials: 1000,
	}
	petster = Profile{
		Name: "petster", Nodes: 1788, Edges: 12476, MaxDegree: 272,
		ClosureFraction: 0.38, Homophily: 0.45,
		AttrProbs: []float64{0.48, 0.62}, DefaultScale: 1.0,
		Epsilons: []float64{math.Log(3), math.Log(2), 0.3, 0.2}, Trials: 1000,
	}
	epinions = Profile{
		Name: "epinions", Nodes: 26427, Edges: 104075, MaxDegree: 625,
		ClosureFraction: 0.40, Homophily: 0.50,
		AttrProbs: []float64{0.15, 0.10}, DefaultScale: 0.25,
		Epsilons: []float64{math.Log(3), math.Log(2), 0.3, 0.2}, Trials: 100,
	}
	pokec = Profile{
		Name: "pokec", Nodes: 592627, Edges: 3725424, MaxDegree: 1274,
		ClosureFraction: 0.33, Homophily: 0.60,
		AttrProbs: []float64{0.51, 0.57}, DefaultScale: 0.05,
		Epsilons: []float64{0.2, 0.1, 0.05, 0.01}, Trials: 100,
	}
)

// AllProfiles returns the four dataset profiles in the order the paper lists
// them.
func AllProfiles() []Profile {
	return []Profile{lastfm, petster, epinions, pokec}
}

// ByName returns the profile with the given (case-insensitive) name.
func ByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("datasets: unknown dataset %q (want lastfm, petster, epinions or pokec)", name)
}

// CheckScale validates a user-supplied scale factor against the range every
// caller of Profile.Scaled must respect: (0, 1]. The facade and the HTTP
// server both funnel client scales through this check, so a scale the
// library accepts is exactly a scale the service accepts.
func CheckScale(scale float64) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("datasets: scale %v outside (0, 1]", scale)
	}
	return nil
}

// NumAttributes returns the number of binary attributes the profile carries.
func (p Profile) NumAttributes() int { return len(p.AttrProbs) }

// AverageDegree returns the target average degree 2·Edges/Nodes.
func (p Profile) AverageDegree() float64 {
	if p.Nodes == 0 {
		return 0
	}
	return 2 * float64(p.Edges) / float64(p.Nodes)
}

// Scaled returns a copy of the profile with node and edge counts (and the
// maximum degree) multiplied by factor, clamped to sensible minima. A factor
// of 1 returns the profile unchanged.
func (p Profile) Scaled(factor float64) Profile {
	if factor <= 0 {
		panic(fmt.Sprintf("datasets: non-positive scale factor %v", factor))
	}
	if factor == 1 {
		return p
	}
	out := p
	out.Nodes = clampMin(int(math.Round(float64(p.Nodes)*factor)), 50)
	out.Edges = clampMin(int(math.Round(float64(p.Edges)*factor)), out.Nodes)
	out.MaxDegree = clampMin(int(math.Round(float64(p.MaxDegree)*math.Sqrt(factor))), 10)
	if out.MaxDegree > out.Nodes-1 {
		out.MaxDegree = out.Nodes - 1
	}
	return out
}

// DefaultScaled returns the profile scaled by its DefaultScale.
func (p Profile) DefaultScaled() Profile { return p.Scaled(p.DefaultScale) }

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// Generate builds one attributed graph following the profile. The generator
// works in three phases:
//
//  1. attributes: each node draws its binary attributes independently from the
//     profile's marginals;
//  2. preferential edges: (1−ClosureFraction)·Edges edges are created by a
//     degree-weighted (Chung–Lu style) process in which, with probability
//     Homophily, the second endpoint is drawn from the nodes sharing the first
//     endpoint's attribute configuration;
//  3. triadic closure: the remaining edges connect a node to a random
//     two-hop neighbour, creating the triangle density and clustering that
//     social networks exhibit.
//
// Finally the graph is reduced to its largest connected component (as the
// paper does for the real datasets) while keeping the node count, so the
// result may contain slightly fewer edges than the target; the achieved
// statistics are recorded by the experiment harness.
func Generate(rng *rand.Rand, p Profile) *graph.Graph {
	w := p.NumAttributes()
	g := graph.NewBuilder(p.Nodes, w)
	if p.Nodes < 2 {
		return g.Finalize()
	}

	// Phase 1: attributes.
	for i := 0; i < p.Nodes; i++ {
		var a graph.AttrVector
		for j, prob := range p.AttrProbs {
			if rng.Float64() < prob {
				a = a.WithBit(j, 1)
			}
		}
		g.SetAttr(i, a)
	}

	// Target degrees from a truncated discrete power law calibrated to the
	// profile's average degree.
	targetDegrees := powerLawDegrees(rng, p.Nodes, p.AverageDegree(), p.MaxDegree)

	// Degree-weighted samplers: global and per attribute configuration.
	globalPool := buildPool(targetDegrees, nil)
	configOf := make([]int, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		configOf[i] = int(g.Attr(i))
	}
	perConfig := make(map[int][]int32)
	for cfg := range groupConfigs(configOf) {
		cfgCopy := cfg
		perConfig[cfg] = buildPool(targetDegrees, func(i int) bool { return configOf[i] != cfgCopy })
	}

	// Phase 1.5: connectivity backbone. The paper works with the main
	// connected component of each dataset, so the generated stand-ins are
	// connected by construction: nodes are attached one at a time to a
	// degree-weighted earlier node (preferring a node with the same attribute
	// configuration with probability Homophily), forming a preferential
	// attachment tree of n−1 edges that the later phases densify.
	order := rng.Perm(p.Nodes)
	attachPool := []int32{int32(order[0])}
	for idx := 1; idx < p.Nodes; idx++ {
		u := order[idx]
		v := -1
		wantSame := rng.Float64() < p.Homophily
		for attempt := 0; attempt < 30; attempt++ {
			cand := int(attachPool[rng.Intn(len(attachPool))])
			if cand == u || g.Degree(cand) >= p.MaxDegree {
				continue
			}
			if wantSame && configOf[cand] != configOf[u] && attempt < 15 {
				continue
			}
			v = cand
			break
		}
		if v < 0 {
			v = int(attachPool[rng.Intn(len(attachPool))])
		}
		if g.AddEdge(u, v) {
			attachPool = append(attachPool, int32(u), int32(v))
		} else {
			attachPool = append(attachPool, int32(u))
		}
	}

	closureEdges := int(math.Round(p.ClosureFraction * float64(p.Edges)))
	prefEdges := p.Edges - closureEdges

	// Phase 2: homophilous preferential attachment.
	maxAttempts := 60 * (p.Edges + 1)
	attempts := 0
	for g.NumEdges() < prefEdges && attempts < maxAttempts {
		attempts++
		u := samplePool(rng, globalPool)
		var v int
		if rng.Float64() < p.Homophily {
			pool := perConfig[configOf[u]]
			if len(pool) == 0 {
				continue
			}
			v = samplePool(rng, pool)
		} else {
			v = samplePool(rng, globalPool)
		}
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if g.Degree(u) >= p.MaxDegree || g.Degree(v) >= p.MaxDegree {
			continue
		}
		g.AddEdge(u, v)
	}

	// Phase 3: triadic closure.
	attempts = 0
	for g.NumEdges() < p.Edges && attempts < maxAttempts {
		attempts++
		u := samplePool(rng, globalPool)
		nu := g.NeighborsView(u)
		if len(nu) == 0 {
			continue
		}
		k := int(nu[rng.Intn(len(nu))])
		nk := g.NeighborsView(k)
		if len(nk) == 0 {
			continue
		}
		v := int(nk[rng.Intn(len(nk))])
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if g.Degree(u) >= p.MaxDegree || g.Degree(v) >= p.MaxDegree {
			continue
		}
		g.AddEdge(u, v)
	}

	return g.Finalize()
}

// groupConfigs returns the set of attribute configurations present.
func groupConfigs(configOf []int) map[int]struct{} {
	set := make(map[int]struct{})
	for _, c := range configOf {
		set[c] = struct{}{}
	}
	return set
}

// buildPool creates a degree-weighted sampling pool (node i repeated d_i
// times), optionally excluding nodes.
func buildPool(degrees []int, exclude func(i int) bool) []int32 {
	var pool []int32
	for i, d := range degrees {
		if exclude != nil && exclude(i) {
			continue
		}
		for j := 0; j < d; j++ {
			pool = append(pool, int32(i))
		}
	}
	return pool
}

// samplePool draws one node uniformly from a pool.
func samplePool(rng *rand.Rand, pool []int32) int {
	return int(pool[rng.Intn(len(pool))])
}

// powerLawDegrees samples a degree sequence from a truncated discrete power
// law P(d) ∝ d^{−α} over [1, maxDeg], with α tuned by bisection so that the
// expected degree matches avgDegree.
func powerLawDegrees(rng *rand.Rand, n int, avgDegree float64, maxDeg int) []int {
	if maxDeg < 1 {
		maxDeg = 1
	}
	if avgDegree < 1 {
		avgDegree = 1
	}
	if avgDegree > float64(maxDeg) {
		avgDegree = float64(maxDeg)
	}
	alpha := fitPowerLawExponent(avgDegree, maxDeg)
	// Build the CDF once.
	weights := make([]float64, maxDeg+1)
	total := 0.0
	for d := 1; d <= maxDeg; d++ {
		weights[d] = math.Pow(float64(d), -alpha)
		total += weights[d]
	}
	cdf := make([]float64, maxDeg+1)
	acc := 0.0
	for d := 1; d <= maxDeg; d++ {
		acc += weights[d] / total
		cdf[d] = acc
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		d := 1
		for d < maxDeg && cdf[d] < u {
			d++
		}
		out[i] = d
	}
	return out
}

// fitPowerLawExponent finds α such that the mean of the truncated power law
// with exponent α over [1, maxDeg] equals avgDegree, by bisection over
// α ∈ [0.01, 4].
func fitPowerLawExponent(avgDegree float64, maxDeg int) float64 {
	mean := func(alpha float64) float64 {
		var num, den float64
		for d := 1; d <= maxDeg; d++ {
			w := math.Pow(float64(d), -alpha)
			num += float64(d) * w
			den += w
		}
		return num / den
	}
	lo, hi := 0.01, 4.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if mean(mid) > avgDegree {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
