// Package analytics computes canonical metric bundles over stored graphs and
// caches them content-addressed. Because graph IDs are content hashes of the
// immutable binary CSR snapshot, a bundle is a pure function of
// (graph ID, bundle version): once computed it can be memoised forever, served
// from memory, persisted next to the snapshot and reloaded verbatim after a
// restart — the query-plan-cache shape from the ROADMAP, applied to graph
// analytics.
//
// The package also carries the serving-side utility evaluation of the paper:
// UtilityMetrics is the JSON projection of the Table 2–5 error columns
// (experiments.GraphMetrics), computed for an original/synthetic graph pair by
// Compare. Evaluation is pure post-processing of sampled graphs, so it spends
// no privacy budget.
package analytics

import (
	"sort"
	"time"

	"agmdp/internal/experiments"
	"agmdp/internal/graph"
)

// BundleVersion is the version stamped into every Bundle and every persisted
// .metrics file. Bump it whenever the bundle schema or the semantics of any
// field change: the cache treats a version mismatch as a miss and recomputes,
// so stale persisted bundles age out without manual intervention.
const BundleVersion = 1

// DegreeBucket is one row of the degree histogram: Count nodes have exactly
// Degree neighbours. Buckets are sorted by ascending degree so the encoded
// bundle is canonical (a map would serialise in random order).
type DegreeBucket struct {
	Degree int `json:"degree"`
	Count  int `json:"count"`
}

// Bundle is the canonical metric bundle for one stored graph: the structural
// statistics the paper's evaluation measures (degree distribution, triangle
// and wedge counts, both clustering coefficients) plus connectivity. All
// fields are deterministic functions of the graph at any worker count, so two
// computations of the same graph ID encode to identical bytes.
type Bundle struct {
	GraphID            string         `json:"graph_id"`
	Version            int            `json:"version"`
	Nodes              int            `json:"nodes"`
	Edges              int            `json:"edges"`
	Attributes         int            `json:"attributes"`
	MaxDegree          int            `json:"max_degree"`
	AverageDegree      float64        `json:"average_degree"`
	Triangles          int64          `json:"triangles"`
	Wedges             int64          `json:"wedges"`
	AvgLocalClustering float64        `json:"avg_local_clustering"`
	GlobalClustering   float64        `json:"global_clustering"`
	Components         int            `json:"components"`
	LargestComponent   int            `json:"largest_component"`
	DegreeHistogram    []DegreeBucket `json:"degree_histogram"`
}

// Compute builds the metric bundle for a graph. workers bounds the sharded
// analytics passes (≤ 0 selects the process default); the result is
// bit-identical for every worker count. observe, when non-nil, receives the
// wall-clock duration of each compute stage ("degrees", "structure",
// "components").
func Compute(id string, g *graph.Graph, workers int, observe func(stage string, d time.Duration)) *Bundle {
	mark := func(stage string, start time.Time) time.Time {
		now := time.Now()
		if observe != nil {
			observe(stage, now.Sub(start))
		}
		return now
	}

	start := time.Now()
	hist := g.DegreeHistogramWith(workers)
	buckets := make([]DegreeBucket, 0, len(hist))
	for d, c := range hist {
		buckets = append(buckets, DegreeBucket{Degree: d, Count: c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Degree < buckets[j].Degree })
	maxDeg := g.MaxDegree()
	avgDeg := g.AverageDegree()
	start = mark("degrees", start)

	tri := g.TrianglesWith(workers)
	wedges := g.WedgesWith(workers)
	cc := g.LocalClusteringAllWith(workers)
	avgCC := 0.0
	if len(cc) > 0 {
		sum := 0.0
		for _, c := range cc {
			sum += c
		}
		avgCC = sum / float64(len(cc))
	}
	globalCC := 0.0
	if wedges > 0 {
		globalCC = 3 * float64(tri) / float64(wedges)
	}
	start = mark("structure", start)

	comps := g.ConnectedComponents()
	largest := 0
	if len(comps) > 0 {
		largest = len(comps[0])
	}
	mark("components", start)

	return &Bundle{
		GraphID:            id,
		Version:            BundleVersion,
		Nodes:              g.NumNodes(),
		Edges:              g.NumEdges(),
		Attributes:         g.NumAttributes(),
		MaxDegree:          maxDeg,
		AverageDegree:      avgDeg,
		Triangles:          tri,
		Wedges:             wedges,
		AvgLocalClustering: avgCC,
		GlobalClustering:   globalCC,
		Components:         len(comps),
		LargestComponent:   largest,
		DegreeHistogram:    buckets,
	}
}

// UtilityMetrics is the JSON projection of the paper's Table 2–5 error
// columns (experiments.GraphMetrics): errors of a synthetic graph relative to
// its original.
type UtilityMetrics struct {
	MREThetaF           float64 `json:"mre_theta_f"`
	HellingerThetaF     float64 `json:"hellinger_theta_f"`
	KSDegree            float64 `json:"ks_degree"`
	HellingerDegree     float64 `json:"hellinger_degree"`
	MRETriangles        float64 `json:"mre_triangles"`
	MREAvgClustering    float64 `json:"mre_avg_clustering"`
	MREGlobalClustering float64 `json:"mre_global_clustering"`
	MREEdges            float64 `json:"mre_edges"`
}

// Compare computes the utility metrics of a synthetic graph against its
// original at an explicit worker count (≤ 0 selects the process default).
func Compare(original, synthetic *graph.Graph, workers int) UtilityMetrics {
	return fromGraphMetrics(experiments.CompareGraphsWith(original, synthetic, workers))
}

// fromGraphMetrics converts the experiments struct (no JSON tags, column-name
// docs) into the wire form.
func fromGraphMetrics(m experiments.GraphMetrics) UtilityMetrics {
	return UtilityMetrics{
		MREThetaF:           m.MREThetaF,
		HellingerThetaF:     m.HellingerThetaF,
		KSDegree:            m.KSDegree,
		HellingerDegree:     m.HellingerDegree,
		MRETriangles:        m.MRETriangles,
		MREAvgClustering:    m.MREAvgClustering,
		MREGlobalClustering: m.MREGlobalClustering,
		MREEdges:            m.MREEdges,
	}
}

// AverageUtility returns the element-wise mean of a set of utility rows; it
// returns the zero value for an empty input.
func AverageUtility(ms []UtilityMetrics) UtilityMetrics {
	if len(ms) == 0 {
		return UtilityMetrics{}
	}
	var sum UtilityMetrics
	for _, m := range ms {
		sum.MREThetaF += m.MREThetaF
		sum.HellingerThetaF += m.HellingerThetaF
		sum.KSDegree += m.KSDegree
		sum.HellingerDegree += m.HellingerDegree
		sum.MRETriangles += m.MRETriangles
		sum.MREAvgClustering += m.MREAvgClustering
		sum.MREGlobalClustering += m.MREGlobalClustering
		sum.MREEdges += m.MREEdges
	}
	n := float64(len(ms))
	return UtilityMetrics{
		MREThetaF:           sum.MREThetaF / n,
		HellingerThetaF:     sum.HellingerThetaF / n,
		KSDegree:            sum.KSDegree / n,
		HellingerDegree:     sum.HellingerDegree / n,
		MRETriangles:        sum.MRETriangles / n,
		MREAvgClustering:    sum.MREAvgClustering / n,
		MREGlobalClustering: sum.MREGlobalClustering / n,
		MREEdges:            sum.MREEdges / n,
	}
}
