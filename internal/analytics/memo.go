package analytics

import (
	"container/list"
	"sync"

	"agmdp/internal/obs"
)

// DefaultMemoEntries bounds the sample-request memo when NewSampleMemo is
// given a non-positive size.
const DefaultMemoEntries = 1024

var (
	memoHits = obs.Default().Counter("agmdp_analytics_sample_memo_hits_total",
		"Sample requests answered from the content-addressed request memo without touching the engine.")
	memoMisses = obs.Default().Counter("agmdp_analytics_sample_memo_misses_total",
		"Memoisable sample requests that had to run on the engine.")
)

// SampleKey identifies a sample request by everything that determines its
// result: seeded sampling from an immutable fitted model is deterministic at
// a fixed parallelism, so two requests with equal keys produce byte-identical
// graphs and therefore identical result metadata. ModelID is the content
// address of the serialized model; Parallelism must be the resolved worker
// count (not the request's raw 0), since the parallel edge proposers merge
// streams per worker.
type SampleKey struct {
	ModelID     string
	Seed        int64
	Iterations  int
	ModelKind   string
	Parallelism int
}

// SampleMeta is the memoised result metadata of one sample request.
type SampleMeta struct {
	Seed      int64
	Nodes     int
	Edges     int
	Triangles int64
}

// SampleMemo is a bounded LRU memo of sample-request metadata, keyed by the
// full request identity. It memoises metadata only — graphs are large and
// either discarded or content-addressed in the graph store — so a hit skips
// the sampler and the metric passes entirely. Entries never go stale: models
// are immutable once fitted, and eviction of a model leaves at worst a
// harmless entry that ages out by LRU.
type SampleMemo struct {
	mu  sync.Mutex
	max int
	m   map[SampleKey]*list.Element
	lru *list.List // of memoEntry, most recently used in front
}

type memoEntry struct {
	key  SampleKey
	meta SampleMeta
}

// NewSampleMemo builds a memo bounded to max entries (≤ 0 selects
// DefaultMemoEntries).
func NewSampleMemo(max int) *SampleMemo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &SampleMemo{max: max, m: make(map[SampleKey]*list.Element), lru: list.New()}
}

// Get returns the memoised metadata for a request key, counting the lookup
// as a hit or miss.
func (s *SampleMemo) Get(key SampleKey) (SampleMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.lru.MoveToFront(el)
		memoHits.Inc()
		return el.Value.(memoEntry).meta, true
	}
	memoMisses.Inc()
	return SampleMeta{}, false
}

// Put memoises the metadata of a completed request, evicting the least
// recently used entry when over the bound.
func (s *SampleMemo) Put(key SampleKey, meta SampleMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value = memoEntry{key: key, meta: meta}
		s.lru.MoveToFront(el)
		return
	}
	s.m[key] = s.lru.PushFront(memoEntry{key: key, meta: meta})
	for s.lru.Len() > s.max {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.m, back.Value.(memoEntry).key)
	}
}

// Len reports the number of memoised requests.
func (s *SampleMemo) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
