package analytics

// Analytics benchmarks on the shared 30k-node heavy-tailed Chung–Lu fixture
// (≥100k edges, 2 attributes — the same shape the graph codec benchmarks
// use). The cold/warm pair quantifies what the content-addressed cache buys
// a metrics serve; the evaluate pair quantifies what parallel utility
// comparison buys an evaluation job. scripts/bench.sh records both ratios
// in BENCH_pr10.json.

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/structural"
)

const analyticsBenchNodes = 30000

var (
	analyticsBenchOnce  sync.Once
	analyticsBenchGraph *graph.Graph
)

// analyticsBenchDegrees mirrors the graph package's benchDegrees: a
// heavy-tailed (Pareto-ish, α ≈ 2) degree sequence with an even sum.
func analyticsBenchDegrees(rng *rand.Rand, n, maxDeg int) []int {
	degs := make([]int, n)
	total := 0
	for i := range degs {
		u := rng.Float64()
		d := int(math.Ceil(1 / (1 - u*(1-1/float64(maxDeg)))))
		if d > maxDeg {
			d = maxDeg
		}
		degs[i] = d
		total += d
	}
	if total%2 == 1 {
		degs[0]++
	}
	return degs
}

// analyticsBenchFixture lazily builds the 30k-node graph (seed 5, matching
// the codec benchmarks' fixture construction so the edge counts agree).
func analyticsBenchFixture(tb testing.TB) *graph.Graph {
	analyticsBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(5))
		degs := analyticsBenchDegrees(rng, analyticsBenchNodes, 400)
		total := 0
		for i := range degs {
			degs[i] += 6
			total += degs[i]
		}
		sampler := structural.NewNodeSampler(degs, nil)
		g := structural.GenerateCL(rng, analyticsBenchNodes, sampler, total/2, nil)
		attrs := make([]graph.AttrVector, g.NumNodes())
		for i := range attrs {
			attrs[i] = graph.AttrVector(rng.Uint64() & 3)
		}
		analyticsBenchGraph = g.WithAttributes(2, attrs)
	})
	if analyticsBenchGraph.NumEdges() < 100_000 {
		tb.Fatalf("analytics bench fixture has only %d edges, want >= 100k", analyticsBenchGraph.NumEdges())
	}
	return analyticsBenchGraph
}

// benchSource serves the fixture under a fixed ID.
type benchSource struct{ g *graph.Graph }

func (s benchSource) Get(id string) (*graph.Graph, bool) {
	if id == "bench" {
		return s.g, true
	}
	return nil, false
}

// BenchmarkMetricsBundleCold measures a full bundle compute + encode, the
// work a cache miss pays. Evicting between iterations keeps every Get cold.
func BenchmarkMetricsBundleCold(b *testing.B) {
	g := analyticsBenchFixture(b)
	c, err := NewCache(Options{Source: benchSource{g}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, _, err := c.Get("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(raw)))
		c.Evict("bench")
	}
}

// BenchmarkMetricsBundleWarm measures a cache hit: the steady-state cost of
// GET /v1/graphs/{id}/metrics once the bundle is resident.
func BenchmarkMetricsBundleWarm(b *testing.B) {
	g := analyticsBenchFixture(b)
	c, err := NewCache(Options{Source: benchSource{g}})
	if err != nil {
		b.Fatal(err)
	}
	raw, _, err := c.Get("bench")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateSequential is one utility comparison of the fixture
// against itself with a single worker — the per-sample core of an evaluate
// job without parallelism.
func BenchmarkEvaluateSequential(b *testing.B) {
	g := analyticsBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(g, g, 1)
	}
}

// BenchmarkEvaluateParallel is the same comparison fanned across all cores.
func BenchmarkEvaluateParallel(b *testing.B) {
	g := analyticsBenchFixture(b)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(g, g, workers)
	}
}
