package analytics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"agmdp/internal/graph"
)

// testGraph builds a deterministic attributed graph keyed by seed.
func testGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 40 + rng.Intn(40)
	b := graph.NewBuilder(n, 2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(u, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(4)))
	}
	return b.Finalize()
}

// mapSource is a GraphSource over a fixed map.
type mapSource map[string]*graph.Graph

func (m mapSource) Get(id string) (*graph.Graph, bool) {
	g, ok := m[id]
	return g, ok
}

func TestComputeMatchesPrimitives(t *testing.T) {
	g := testGraph(1)
	b := Compute("gid", g, 0, nil)
	if b.GraphID != "gid" || b.Version != BundleVersion {
		t.Fatalf("identity = (%q, %d)", b.GraphID, b.Version)
	}
	if b.Nodes != g.NumNodes() || b.Edges != g.NumEdges() || b.Attributes != g.NumAttributes() {
		t.Fatalf("sizes = %d/%d/%d", b.Nodes, b.Edges, b.Attributes)
	}
	if b.Triangles != g.Triangles() || b.Wedges != g.Wedges() {
		t.Fatalf("triangles/wedges = %d/%d, want %d/%d", b.Triangles, b.Wedges, g.Triangles(), g.Wedges())
	}
	if b.AvgLocalClustering != g.AverageLocalClustering() || b.GlobalClustering != g.GlobalClustering() {
		t.Fatalf("clustering = %v/%v", b.AvgLocalClustering, b.GlobalClustering)
	}
	if b.MaxDegree != g.MaxDegree() || b.AverageDegree != g.AverageDegree() {
		t.Fatalf("degrees = %d/%v", b.MaxDegree, b.AverageDegree)
	}
	comps := g.ConnectedComponents()
	if b.Components != len(comps) || b.LargestComponent != len(comps[0]) {
		t.Fatalf("components = %d/%d", b.Components, b.LargestComponent)
	}
	hist := g.DegreeHistogram()
	total := 0
	lastDeg := -1
	for _, bucket := range b.DegreeHistogram {
		if bucket.Degree <= lastDeg {
			t.Fatalf("histogram not sorted ascending: %d after %d", bucket.Degree, lastDeg)
		}
		lastDeg = bucket.Degree
		if hist[bucket.Degree] != bucket.Count {
			t.Fatalf("histogram[%d] = %d, want %d", bucket.Degree, bucket.Count, hist[bucket.Degree])
		}
		total += bucket.Count
	}
	if total != g.NumNodes() {
		t.Fatalf("histogram counts sum to %d, want %d", total, g.NumNodes())
	}
}

func TestComputeDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(2)
	base, err := json.Marshal(Compute("gid", g, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got, err := json.Marshal(Compute("gid", g, workers, nil))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, got) {
			t.Fatalf("bundle at %d workers differs from sequential:\n%s\n%s", workers, base, got)
		}
	}
}

func TestComputeObservesStages(t *testing.T) {
	g := testGraph(3)
	seen := map[string]int{}
	Compute("gid", g, 0, func(stage string, _ time.Duration) { seen[stage]++ })
	for _, stage := range []string{"degrees", "structure", "components"} {
		if seen[stage] != 1 {
			t.Fatalf("stage %q observed %d times: %v", stage, seen[stage], seen)
		}
	}
}

func TestCompareSelfIsZero(t *testing.T) {
	g := testGraph(4)
	u := Compare(g, g, 0)
	if u != (UtilityMetrics{}) {
		t.Fatalf("self-comparison is non-zero: %+v", u)
	}
}

func TestCompareDeterministicAcrossWorkers(t *testing.T) {
	a, b := testGraph(5), testGraph(6)
	base := Compare(a, b, 1)
	for _, workers := range []int{0, 2, 5} {
		if got := Compare(a, b, workers); got != base {
			t.Fatalf("metrics at %d workers = %+v, want %+v", workers, got, base)
		}
	}
}

func TestAverageUtility(t *testing.T) {
	if got := AverageUtility(nil); got != (UtilityMetrics{}) {
		t.Fatalf("empty average = %+v", got)
	}
	avg := AverageUtility([]UtilityMetrics{{MREEdges: 1, KSDegree: 0.5}, {MREEdges: 3, KSDegree: 0.5}})
	if avg.MREEdges != 2 || avg.KSDegree != 0.5 {
		t.Fatalf("average = %+v", avg)
	}
}

func TestCacheHitAfterCompute(t *testing.T) {
	g := testGraph(7)
	c, err := NewCache(Options{Source: mapSource{"a": g}})
	if err != nil {
		t.Fatal(err)
	}
	hits0, computes0 := cacheHits.Value(), cacheComputes.Value()
	raw1, b1, err := c.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if b1.GraphID != "a" || b1.Nodes != g.NumNodes() {
		t.Fatalf("bundle = %+v", b1)
	}
	raw2, _, err := c.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("warm bytes differ from cold bytes")
	}
	if d := cacheComputes.Value() - computes0; d != 1 {
		t.Fatalf("computes = %d, want 1", d)
	}
	if d := cacheHits.Value() - hits0; d != 1 {
		t.Fatalf("hits = %d, want 1", d)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheNotFound(t *testing.T) {
	c, err := NewCache(Options{Source: mapSource{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("missing"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	// The failed lookup must not leave a placeholder that poisons a later
	// Get after the graph appears.
	if c.Len() != 0 {
		t.Fatalf("Len = %d after failed Get", c.Len())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	g := testGraph(8)
	c, err := NewCache(Options{Source: mapSource{"a": g}})
	if err != nil {
		t.Fatal(err)
	}
	computes0 := cacheComputes.Value()
	var wg sync.WaitGroup
	raws := make([][]byte, 16)
	for i := range raws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _, err := c.Get("a")
			if err != nil {
				t.Error(err)
				return
			}
			raws[i] = raw
		}(i)
	}
	wg.Wait()
	if d := cacheComputes.Value() - computes0; d != 1 {
		t.Fatalf("concurrent cold Gets computed %d times, want 1", d)
	}
	for i := 1; i < len(raws); i++ {
		if !bytes.Equal(raws[0], raws[i]) {
			t.Fatal("concurrent Gets returned different bytes")
		}
	}
}

func TestCachePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(9)
	c1, err := NewCache(Options{Source: mapSource{"a": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	raw1, _, err := c1.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a.metrics")); err != nil {
		t.Fatalf("persisted file missing: %v", err)
	}

	// A fresh cache over the same directory reloads the persisted bundle
	// byte-identically, without recomputing — restart semantics.
	computes0 := cacheComputes.Value()
	c2, err := NewCache(Options{Source: mapSource{"a": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	raw2, b2, err := c2.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("post-restart bytes differ:\n%s\n%s", raw1, raw2)
	}
	if b2.GraphID != "a" || b2.Version != BundleVersion {
		t.Fatalf("reloaded bundle identity = (%q, %d)", b2.GraphID, b2.Version)
	}
	if d := cacheComputes.Value() - computes0; d != 0 {
		t.Fatalf("restart recomputed %d times, want 0", d)
	}
	if len(c2.Warnings()) != 0 {
		t.Fatalf("warnings = %v", c2.Warnings())
	}
}

func TestCacheCorruptFileRecomputes(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(10)
	c1, err := NewCache(Options{Source: mapSource{"a": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	raw1, _, err := c1.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a.metrics")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(Options{Source: mapSource{"a": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	computes0 := cacheComputes.Value()
	raw2, _, err := c2.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("recomputed bundle differs from the original")
	}
	if d := cacheComputes.Value() - computes0; d != 1 {
		t.Fatalf("computes = %d, want 1 (corrupt file must recompute)", d)
	}
	warnings := c2.Warnings()
	if len(warnings) != 1 || !strings.Contains(warnings[0], "corrupt") {
		t.Fatalf("warnings = %v, want one corrupt-file entry", warnings)
	}
	// The damaged file was rewritten: a third cache reloads cleanly.
	c3, err := NewCache(Options{Source: mapSource{"a": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	raw3, _, err := c3.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw3) || len(c3.Warnings()) != 0 {
		t.Fatalf("rewritten file did not reload cleanly (warnings %v)", c3.Warnings())
	}
}

func TestCacheRejectsMismatchedEnvelope(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(11)
	c1, err := NewCache(Options{Source: mapSource{"a": g, "b": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.Get("a"); err != nil {
		t.Fatal(err)
	}
	// A bundle persisted for one ID must not be served for another, and a
	// future bundle version must be recomputed, not trusted.
	data, err := os.ReadFile(filepath.Join(dir, "a.metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.metrics"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(Options{Source: mapSource{"a": g, "b": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	computes0 := cacheComputes.Value()
	if _, _, err := c2.Get("b"); err != nil {
		t.Fatal(err)
	}
	if d := cacheComputes.Value() - computes0; d != 1 {
		t.Fatalf("computes = %d, want 1 (mismatched graph_id must recompute)", d)
	}
	if warnings := c2.Warnings(); len(warnings) != 1 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestCacheLRUBound(t *testing.T) {
	src := mapSource{}
	for i := 0; i < 4; i++ {
		src[fmt.Sprintf("g%d", i)] = testGraph(20 + int64(i))
	}
	c, err := NewCache(Options{Source: src, MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := c.Get(fmt.Sprintf("g%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// The evicted entries recompute on demand (no persistence configured).
	computes0 := cacheComputes.Value()
	if _, _, err := c.Get("g0"); err != nil {
		t.Fatal(err)
	}
	if d := cacheComputes.Value() - computes0; d != 1 {
		t.Fatalf("computes after eviction = %d, want 1", d)
	}
}

func TestCacheEvict(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(12)
	c, err := NewCache(Options{Source: mapSource{"a": g}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if !c.Evict("a") {
		t.Fatal("Evict reported nothing removed")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Evict", c.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "a.metrics")); !os.IsNotExist(err) {
		t.Fatalf("persisted file survived Evict: %v", err)
	}
	if c.Evict("a") {
		t.Fatal("second Evict reported a removal")
	}
}

func TestSampleMemo(t *testing.T) {
	m := NewSampleMemo(2)
	k1 := SampleKey{ModelID: "m", Seed: 1, Parallelism: 2}
	k2 := SampleKey{ModelID: "m", Seed: 2, Parallelism: 2}
	k3 := SampleKey{ModelID: "m", Seed: 3, Parallelism: 2}
	if _, ok := m.Get(k1); ok {
		t.Fatal("hit on empty memo")
	}
	m.Put(k1, SampleMeta{Seed: 1, Nodes: 10})
	m.Put(k2, SampleMeta{Seed: 2, Nodes: 20})
	if meta, ok := m.Get(k1); !ok || meta.Nodes != 10 {
		t.Fatalf("Get(k1) = %+v, %v", meta, ok)
	}
	// k1 was just used, so inserting k3 evicts k2.
	m.Put(k3, SampleMeta{Seed: 3, Nodes: 30})
	if _, ok := m.Get(k2); ok {
		t.Fatal("k2 survived past the bound")
	}
	if _, ok := m.Get(k1); !ok {
		t.Fatal("k1 evicted despite recent use")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	// Re-putting an existing key updates in place.
	m.Put(k1, SampleMeta{Seed: 1, Nodes: 11})
	if meta, _ := m.Get(k1); meta.Nodes != 11 {
		t.Fatalf("updated meta = %+v", meta)
	}
	if m.Len() != 2 {
		t.Fatalf("Len after update = %d", m.Len())
	}
}
