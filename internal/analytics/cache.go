package analytics

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"agmdp/internal/graph"
	"agmdp/internal/obs"
)

// DefaultMaxEntries bounds the in-memory bundle LRU when Options leaves
// MaxEntries zero. Encoded bundles are small (the degree histogram dominates,
// a few KiB for heavy-tailed graphs), so the default comfortably outnumbers
// the graphs a store typically keeps resident.
const DefaultMaxEntries = 128

// ErrNotFound reports a graph ID the cache's source does not hold.
var ErrNotFound = errors.New("analytics: graph not found")

// Cache metrics on the process-wide default registry, mirroring the
// graphstore counters: every Get is exactly one hit or one miss, and every
// miss that could not be satisfied from a persisted .metrics file is one
// compute. The live resident-bundle count for a specific cache is wired by
// the server through a Len gauge func.
var (
	cacheHits = obs.Default().Counter("agmdp_analytics_cache_hits_total",
		"Metric-bundle requests served from an already-encoded resident bundle.")
	cacheMisses = obs.Default().Counter("agmdp_analytics_cache_misses_total",
		"Metric-bundle requests that found no resident bundle and had to load (or wait on a load of) one.")
	cacheComputes = obs.Default().Counter("agmdp_analytics_computes_total",
		"Metric bundles computed from a decoded graph (single-flighted per graph; persisted-file reloads excluded).")
	stageDurations = obs.Default().HistogramVec("agmdp_analytics_stage_duration_seconds",
		"Wall-clock duration of metric-bundle compute stages.", nil, "stage")
)

// GraphSource resolves graph IDs to decoded graphs; *graphstore.Store
// satisfies it.
type GraphSource interface {
	Get(id string) (*graph.Graph, bool)
}

// Options configures a Cache.
type Options struct {
	// Source resolves graph IDs to graphs. Required.
	Source GraphSource
	// Dir, when non-empty, enables persistence: every computed bundle is
	// written to <id>.metrics inside Dir (atomically, temp file + rename) and
	// reloaded verbatim on the next cold request — typically the graph
	// store's own directory, so bundles live next to the .csr snapshots they
	// describe.
	Dir string
	// MaxEntries bounds the in-memory LRU of encoded bundles; least recently
	// used bundles are dropped first (their .metrics files stay — the next
	// request reloads instead of recomputing). 0 means DefaultMaxEntries;
	// negative means unbounded.
	MaxEntries int
	// Parallelism bounds the workers of each sharded compute pass (≤ 0
	// selects the process default). Bundles are bit-identical at every
	// setting.
	Parallelism int
}

// entry is one cached bundle. raw/bundle are guarded by Cache.mu; computeMu
// single-flights the load-or-compute of a cold entry so concurrent cold
// requests for the same graph do the work once.
type entry struct {
	computeMu sync.Mutex
	raw       []byte // canonical encoded bundle; nil until loaded
	bundle    *Bundle
	elem      *list.Element // LRU position; nil when not resident
}

// Cache serves canonical metric bundles content-addressed by
// (graph ID, BundleVersion). Graph IDs are content hashes of immutable
// snapshots, so a cached bundle never goes stale: entries leave only through
// LRU pressure or explicit Evict (when the graph itself is deleted).
type Cache struct {
	opts Options

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // of *entry, most recently used in front
	ids      map[*entry]string
	warnings []string
}

// maxCacheWarnings bounds the warning log so a directory of damaged files
// cannot grow it without bound.
const maxCacheWarnings = 100

// NewCache builds a bundle cache over a graph source.
func NewCache(opts Options) (*Cache, error) {
	if opts.Source == nil {
		return nil, errors.New("analytics: Options.Source is required")
	}
	if opts.MaxEntries == 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("analytics: creating cache dir: %w", err)
		}
	}
	return &Cache{
		opts:    opts,
		entries: make(map[string]*entry),
		lru:     list.New(),
		ids:     make(map[*entry]string),
	}, nil
}

// envelope is the on-disk form of a persisted bundle. Bundle stays a raw
// message so a reloaded bundle is served byte-for-byte as it was first
// encoded — cold, warm and post-restart responses are identical.
type envelope struct {
	Version int             `json:"version"`
	GraphID string          `json:"graph_id"`
	Bundle  json.RawMessage `json:"bundle"`
}

// Get returns the encoded metric bundle and its decoded form for a stored
// graph, computing and (when a Dir is configured) persisting it on first
// use. The returned bytes are shared and must not be mutated. Concurrent
// cold Gets of the same graph compute once. Returns ErrNotFound when the
// source does not hold the ID.
func (c *Cache) Get(id string) ([]byte, *Bundle, error) {
	c.mu.Lock()
	e, ok := c.entries[id]
	if ok && e.raw != nil {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		raw, b := e.raw, e.bundle
		c.mu.Unlock()
		cacheHits.Inc()
		return raw, b, nil
	}
	if !ok {
		e = &entry{}
		c.entries[id] = e
		c.ids[e] = id
	}
	c.mu.Unlock()
	cacheMisses.Inc()

	e.computeMu.Lock()
	defer e.computeMu.Unlock()
	// A winner may have filled the entry while this caller waited.
	c.mu.Lock()
	if e.raw != nil {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		raw, b := e.raw, e.bundle
		c.mu.Unlock()
		return raw, b, nil
	}
	c.mu.Unlock()

	raw, b, err := c.loadOrCompute(id)
	if err != nil {
		// Drop the placeholder so a transient failure does not pin an
		// empty entry (and its LRU bookkeeping) forever.
		c.mu.Lock()
		if cur, still := c.entries[id]; still && cur == e {
			delete(c.entries, id)
			delete(c.ids, e)
		}
		c.mu.Unlock()
		return nil, nil, err
	}

	c.mu.Lock()
	// Admit only if the entry is still the stored one: an Evict that raced
	// with the compute keeps the bundle out of the cache, but the result is
	// still valid for this caller.
	if cur, still := c.entries[id]; still && cur == e {
		e.raw = raw
		e.bundle = b
		e.elem = c.lru.PushFront(e)
		for c.opts.MaxEntries >= 0 && c.lru.Len() > c.opts.MaxEntries && c.lru.Len() > 1 {
			c.dropLocked(c.lru.Back().Value.(*entry))
		}
	}
	c.mu.Unlock()
	return raw, b, nil
}

// loadOrCompute resolves a cold bundle: from the persisted .metrics file when
// one is present and valid, else by computing from the decoded graph. Callers
// hold the entry's computeMu.
func (c *Cache) loadOrCompute(id string) ([]byte, *Bundle, error) {
	if raw, b, ok := c.loadFile(id); ok {
		return raw, b, nil
	}
	g, ok := c.opts.Source.Get(id)
	if !ok {
		return nil, nil, ErrNotFound
	}
	cacheComputes.Inc()
	b := Compute(id, g, c.opts.Parallelism, func(stage string, d time.Duration) {
		stageDurations.With(stage).ObserveDuration(d)
	})
	start := time.Now()
	raw, err := json.Marshal(b)
	if err != nil {
		return nil, nil, fmt.Errorf("analytics: encoding bundle for %s: %w", id, err)
	}
	stageDurations.With("encode").ObserveDuration(time.Since(start))
	c.persist(id, raw)
	return raw, b, nil
}

// loadFile reloads a persisted bundle, verifying the envelope's version and
// graph ID. Any damage — unreadable JSON, wrong version, wrong ID, a bundle
// that does not decode — records a warning and falls through to recompute
// (which rewrites the file).
func (c *Cache) loadFile(id string) ([]byte, *Bundle, bool) {
	if c.opts.Dir == "" {
		return nil, nil, false
	}
	path := c.metricsPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.warn("reading %s: %v", filepath.Base(path), err)
		}
		return nil, nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		c.warn("corrupt metrics file %s: %v", filepath.Base(path), err)
		return nil, nil, false
	}
	if env.Version != BundleVersion {
		c.warn("metrics file %s has version %d, want %d; recomputing", filepath.Base(path), env.Version, BundleVersion)
		return nil, nil, false
	}
	if env.GraphID != id {
		c.warn("metrics file %s claims graph %s; recomputing", filepath.Base(path), env.GraphID)
		return nil, nil, false
	}
	var b Bundle
	if err := json.Unmarshal(env.Bundle, &b); err != nil {
		c.warn("corrupt bundle in %s: %v", filepath.Base(path), err)
		return nil, nil, false
	}
	if b.GraphID != id || b.Version != BundleVersion {
		c.warn("metrics file %s holds a bundle for graph %q version %d; recomputing", filepath.Base(path), b.GraphID, b.Version)
		return nil, nil, false
	}
	return []byte(env.Bundle), &b, true
}

// persist writes the encoded bundle to <id>.metrics atomically (temp file in
// the same directory, then rename). Persistence is best-effort: a failure is
// recorded as a warning and the request is still served from memory.
func (c *Cache) persist(id string, raw []byte) {
	if c.opts.Dir == "" {
		return
	}
	env, err := json.Marshal(envelope{Version: BundleVersion, GraphID: id, Bundle: raw})
	if err != nil {
		c.warn("encoding metrics envelope for %s: %v", id, err)
		return
	}
	path := c.metricsPath(id)
	tmp, err := os.CreateTemp(c.opts.Dir, "."+id+".metrics.tmp*")
	if err != nil {
		c.warn("persisting metrics for %s: %v", id, err)
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		c.warn("persisting metrics for %s: %v", id, err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		c.warn("persisting metrics for %s: %v", id, err)
		return
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		c.warn("persisting metrics for %s: %v", id, err)
	}
}

// metricsPath is the persisted-bundle path for a graph ID.
func (c *Cache) metricsPath(id string) string {
	return filepath.Join(c.opts.Dir, id+".metrics")
}

// Evict drops a graph's bundle from memory and removes its .metrics file.
// Call it when the underlying graph is deleted; LRU pressure never removes
// files. Reports whether anything was removed.
func (c *Cache) Evict(id string) bool {
	c.mu.Lock()
	e, ok := c.entries[id]
	if ok {
		if e.elem != nil {
			c.dropLocked(e)
		}
		delete(c.entries, id)
		delete(c.ids, e)
	}
	c.mu.Unlock()
	if c.opts.Dir != "" {
		if err := os.Remove(c.metricsPath(id)); err == nil {
			ok = true
		}
	}
	return ok
}

// dropLocked removes one resident bundle from the LRU, leaving any persisted
// file in place for lazy reload. Callers hold c.mu.
func (c *Cache) dropLocked(e *entry) {
	c.lru.Remove(e.elem)
	e.raw = nil
	e.bundle = nil
	e.elem = nil
	// The entry itself leaves the map too: unlike graphstore snapshots there
	// is no cheap backing handle worth keeping, and the next Get recreates
	// the placeholder in one map insert.
	if id, ok := c.ids[e]; ok {
		delete(c.entries, id)
		delete(c.ids, e)
	}
}

// Len reports the number of bundles resident in memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Warnings returns the accumulated non-fatal problems: corrupt or mismatched
// .metrics files (recomputed and rewritten) and failed persistence attempts.
func (c *Cache) Warnings() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.warnings))
	copy(out, c.warnings)
	return out
}

// warn records one bounded warning.
func (c *Cache) warn(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.warnings) >= maxCacheWarnings {
		return
	}
	c.warnings = append(c.warnings, fmt.Sprintf(format, args...))
}
