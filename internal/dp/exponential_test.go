package dp

import (
	"math"
	"testing"
)

func TestExponentialMechanismPrefersHighScores(t *testing.T) {
	rng := NewRand(10)
	scores := []float64{0, 0, 10, 0}
	counts := make([]int, len(scores))
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[ExponentialMechanism(rng, scores, 1, 2)]++
	}
	if counts[2] < trials*9/10 {
		t.Fatalf("high-score candidate chosen only %d/%d times", counts[2], trials)
	}
}

func TestExponentialMechanismUniformWhenScoresEqual(t *testing.T) {
	rng := NewRand(11)
	scores := []float64{3, 3, 3}
	counts := make([]int, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[ExponentialMechanism(rng, scores, 1, 1)]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/3.0) > 0.02 {
			t.Fatalf("candidate %d selected with frequency %v, want ≈ 1/3", i, frac)
		}
	}
}

func TestExponentialMechanismRatioMatchesTheory(t *testing.T) {
	// With two candidates whose scores differ by Δu, selection odds are
	// exp(ε·Δu/(2·sensitivity)) : 1.
	rng := NewRand(12)
	scores := []float64{1, 0}
	eps, sens := 1.0, 1.0
	const trials = 200000
	count0 := 0
	for i := 0; i < trials; i++ {
		if ExponentialMechanism(rng, scores, sens, eps) == 0 {
			count0++
		}
	}
	odds := math.Exp(eps * 1 / (2 * sens))
	wantFrac := odds / (1 + odds)
	gotFrac := float64(count0) / trials
	if math.Abs(gotFrac-wantFrac) > 0.01 {
		t.Fatalf("selection frequency = %v, want ≈ %v", gotFrac, wantFrac)
	}
}

func TestExponentialMechanismHandlesExtremeScores(t *testing.T) {
	rng := NewRand(13)
	// Scores large enough to overflow a naive exp(); log-sum-exp must cope.
	scores := []float64{1e6, 1e6 - 1, 0}
	for i := 0; i < 100; i++ {
		idx := ExponentialMechanism(rng, scores, 1, 1)
		if idx < 0 || idx >= len(scores) {
			t.Fatalf("index %d out of range", idx)
		}
		if idx == 2 {
			t.Fatal("mechanism selected a candidate with astronomically lower score")
		}
	}
}

func TestExponentialMechanismPanics(t *testing.T) {
	rng := NewRand(1)
	mustPanic(t, func() { ExponentialMechanism(rng, nil, 1, 1) }, "empty candidates")
	mustPanic(t, func() { ExponentialMechanism(rng, []float64{1}, 0, 1) }, "zero sensitivity")
	mustPanic(t, func() { ExponentialMechanism(rng, []float64{1}, 1, 0) }, "zero epsilon")
}

func TestExponentialMechanismGumbelAgreesWithCDFVersion(t *testing.T) {
	scores := []float64{0, 1, 2, 3}
	eps, sens := 1.5, 1.0
	const trials = 60000
	countsA := make([]float64, len(scores))
	countsB := make([]float64, len(scores))
	rngA, rngB := NewRand(20), NewRand(21)
	for i := 0; i < trials; i++ {
		countsA[ExponentialMechanism(rngA, scores, sens, eps)]++
		countsB[ExponentialMechanismGumbel(rngB, scores, sens, eps)]++
	}
	for i := range scores {
		fa, fb := countsA[i]/trials, countsB[i]/trials
		if math.Abs(fa-fb) > 0.02 {
			t.Fatalf("samplers disagree on candidate %d: %v vs %v", i, fa, fb)
		}
	}
}

func TestExponentialMechanismGumbelPanics(t *testing.T) {
	rng := NewRand(1)
	mustPanic(t, func() { ExponentialMechanismGumbel(rng, nil, 1, 1) }, "empty candidates")
	mustPanic(t, func() { ExponentialMechanismGumbel(rng, []float64{1}, -1, 1) }, "negative sensitivity")
	mustPanic(t, func() { ExponentialMechanismGumbel(rng, []float64{1}, 1, -1) }, "negative epsilon")
}
