package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// ExponentialMechanism selects an index into scores under ε-differential
// privacy, where scores[i] is the utility of candidate i and sensitivity is
// the global sensitivity of the utility function. Candidate i is chosen with
// probability proportional to exp(ε·score_i / (2·sensitivity)).
//
// The computation is performed in log space (log-sum-exp) so that large score
// ranges do not overflow. It panics on an empty candidate set or non-positive
// epsilon/sensitivity.
func ExponentialMechanism(rng *rand.Rand, scores []float64, sensitivity, epsilon float64) int {
	if len(scores) == 0 {
		panic("dp: ExponentialMechanism with no candidates")
	}
	if epsilon <= 0 || sensitivity <= 0 {
		panic(fmt.Sprintf("dp: invalid exponential-mechanism parameters sensitivity=%v epsilon=%v", sensitivity, epsilon))
	}
	logits := make([]float64, len(scores))
	maxLogit := math.Inf(-1)
	for i, s := range scores {
		logits[i] = epsilon * s / (2 * sensitivity)
		if logits[i] > maxLogit {
			maxLogit = logits[i]
		}
	}
	// Log-sum-exp normalisation.
	var total float64
	weights := make([]float64, len(scores))
	for i, l := range logits {
		weights[i] = math.Exp(l - maxLogit)
		total += weights[i]
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(scores) - 1
}

// ExponentialMechanismGumbel selects an index using the Gumbel-max trick,
// which is an exact, numerically robust sampler for the exponential mechanism
// (argmax of logit_i + Gumbel noise). It is provided for very large candidate
// sets where building the cumulative distribution would lose precision.
func ExponentialMechanismGumbel(rng *rand.Rand, scores []float64, sensitivity, epsilon float64) int {
	if len(scores) == 0 {
		panic("dp: ExponentialMechanismGumbel with no candidates")
	}
	if epsilon <= 0 || sensitivity <= 0 {
		panic(fmt.Sprintf("dp: invalid exponential-mechanism parameters sensitivity=%v epsilon=%v", sensitivity, epsilon))
	}
	best := -1
	bestVal := math.Inf(-1)
	for i, s := range scores {
		logit := epsilon * s / (2 * sensitivity)
		// Standard Gumbel noise: -log(-log(U)).
		g := -math.Log(-math.Log(uniformOpen(rng)))
		if v := logit + g; v > bestVal {
			bestVal = v
			best = i
		}
	}
	return best
}

// uniformOpen returns a uniform sample on the open interval (0, 1), avoiding
// exact zeros that would make log() blow up.
func uniformOpen(rng *rand.Rand) float64 {
	for {
		u := rng.Float64()
		if u > 0 {
			return u
		}
	}
}
