package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmoothBeta(t *testing.T) {
	got := SmoothBeta(1.0, 0.01)
	want := 1.0 / (2 * math.Log(100))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SmoothBeta(1, 0.01) = %v, want %v", got, want)
	}
	mustPanic(t, func() { SmoothBeta(0, 0.01) }, "zero epsilon")
	mustPanic(t, func() { SmoothBeta(1, 0) }, "zero delta")
	mustPanic(t, func() { SmoothBeta(1, 1) }, "delta = 1")
}

func TestSmoothLaplaceMechanismCentersOnValue(t *testing.T) {
	rng := NewRand(30)
	const trials = 50000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += SmoothLaplaceMechanism(rng, 7, 0.5, 1)
	}
	mean := sum / trials
	if math.Abs(mean-7) > 0.05 {
		t.Fatalf("mean = %v, want ≈ 7", mean)
	}
	mustPanic(t, func() { SmoothLaplaceMechanism(rng, 0, 0, 1) }, "zero smooth sensitivity")
	mustPanic(t, func() { SmoothLaplaceMechanism(rng, 0, 1, 0) }, "zero epsilon")
}

func TestSmoothBoundLinearMatchesCorollary5(t *testing.T) {
	// Corollary 5 of the paper: for Q_F with maximum degree dmax the smooth
	// bound is 2·dmax in the "local" regime and 2·e^(β·dmax − 1)/β otherwise.
	// Maximising Proposition 4 directly shows the stationary point is
	// t* = 1/β − dmax, so the local regime applies exactly when 1/β ≤ dmax
	// (the paper's statement of the threshold as 2·dmax appears to be a typo;
	// its "otherwise" expression is the value at t*, which only exists when
	// t* > 0, i.e. 1/β > dmax).
	cases := []struct {
		dmax float64
		beta float64
	}{
		{dmax: 100, beta: 0.05},  // 1/β = 20 ≤ 100  → 2·dmax regime
		{dmax: 100, beta: 0.001}, // 1/β = 1000 > 100 → exponential regime
		{dmax: 30, beta: 0.02},   // 1/β = 50 > 30 → exponential regime
		{dmax: 5, beta: 0.01},    // 1/β = 100 > 5 → exponential regime
	}
	n := 1e6 // cap far away so it does not bind
	for _, c := range cases {
		local := 2 * c.dmax
		got := SmoothBoundLinear(local, 2, 2*n-2, c.beta)
		var want float64
		if 1/c.beta <= c.dmax {
			want = 2 * c.dmax
		} else {
			want = 2 * math.Exp(c.beta*c.dmax-1) / c.beta
		}
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("SmoothBoundLinear(dmax=%v, beta=%v) = %v, want %v", c.dmax, c.beta, got, want)
		}
	}
}

func TestSmoothBoundLinearCapBinds(t *testing.T) {
	// With a small cap the bound can never exceed the cap.
	got := SmoothBoundLinear(2, 2, 10, 1e-6)
	if got > 10+1e-9 {
		t.Fatalf("SmoothBoundLinear exceeded cap: %v", got)
	}
	if got < 2 {
		t.Fatalf("SmoothBoundLinear below local sensitivity: %v", got)
	}
}

func TestSmoothBoundLinearPanics(t *testing.T) {
	mustPanic(t, func() { SmoothBoundLinear(1, 1, 10, 0) }, "zero beta")
	mustPanic(t, func() { SmoothBoundLinear(-1, 1, 10, 1) }, "negative local sensitivity")
	mustPanic(t, func() { SmoothBoundLinear(5, 1, 2, 1) }, "cap below local sensitivity")
}

// Property: the smooth bound is always at least the local sensitivity (the
// t = 0 term) and never exceeds the cap.
func TestSmoothBoundLinearRangeProperty(t *testing.T) {
	f := func(localRaw, betaRaw uint8) bool {
		local := float64(localRaw%50) + 1
		beta := (float64(betaRaw%100) + 1) / 1000
		cap := local + 500
		s := SmoothBoundLinear(local, 2, cap, beta)
		return s >= local-1e-9 && s <= cap+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
