package dp

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(1.0)
	if b.Total() != 1.0 || b.Spent() != 0 || b.Remaining() != 1.0 {
		t.Fatalf("fresh budget state: total=%v spent=%v remaining=%v", b.Total(), b.Spent(), b.Remaining())
	}
	if err := b.Spend(0.4); err != nil {
		t.Fatalf("Spend(0.4): %v", err)
	}
	if err := b.Spend(0.6); err != nil {
		t.Fatalf("Spend(0.6): %v", err)
	}
	if math.Abs(b.Remaining()) > 1e-9 {
		t.Fatalf("Remaining = %v, want 0", b.Remaining())
	}
	err := b.Spend(0.1)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend error = %v, want ErrBudgetExhausted", err)
	}
}

func TestBudgetRejectsNonPositiveSpend(t *testing.T) {
	b := NewBudget(1)
	if err := b.Spend(0); err == nil {
		t.Fatal("Spend(0) succeeded")
	}
	if err := b.Spend(-0.1); err == nil {
		t.Fatal("Spend(-0.1) succeeded")
	}
	if b.Spent() != 0 {
		t.Fatal("failed spends must not be charged")
	}
}

func TestBudgetToleratesFloatingPointSplit(t *testing.T) {
	b := NewBudget(0.3)
	parts := SplitEven(0.3, 3)
	for _, p := range parts {
		if err := b.Spend(p); err != nil {
			t.Fatalf("spending an even split failed: %v", err)
		}
	}
}

func TestBudgetConcurrentSpends(t *testing.T) {
	b := NewBudget(1.0)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- b.Spend(0.1)
		}()
	}
	wg.Wait()
	close(errs)
	ok := 0
	for err := range errs {
		if err == nil {
			ok++
		}
	}
	if ok != 10 {
		t.Fatalf("%d spends of 0.1 succeeded against a budget of 1.0, want 10", ok)
	}
}

func TestNewBudgetPanicsOnNonPositive(t *testing.T) {
	mustPanic(t, func() { NewBudget(0) }, "zero budget")
	mustPanic(t, func() { NewBudget(-1) }, "negative budget")
}

func TestSplitEven(t *testing.T) {
	parts := SplitEven(1.0, 4)
	if len(parts) != 4 {
		t.Fatalf("SplitEven returned %d parts, want 4", len(parts))
	}
	sum := 0.0
	for _, p := range parts {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("part = %v, want 0.25", p)
		}
		sum += p
	}
	if math.Abs(sum-1.0) > 1e-12 {
		t.Fatalf("parts sum to %v, want 1", sum)
	}
	mustPanic(t, func() { SplitEven(1, 0) }, "zero parts")
	mustPanic(t, func() { SplitEven(0, 2) }, "zero epsilon")
}

func TestSplitWeighted(t *testing.T) {
	// The paper's FCL split: half for S, quarter each for ΘF and ΘX.
	parts := SplitWeighted(1.0, []float64{2, 1, 1})
	want := []float64{0.5, 0.25, 0.25}
	for i := range want {
		if math.Abs(parts[i]-want[i]) > 1e-12 {
			t.Fatalf("SplitWeighted = %v, want %v", parts, want)
		}
	}
	mustPanic(t, func() { SplitWeighted(0, []float64{1}) }, "zero epsilon")
	mustPanic(t, func() { SplitWeighted(1, nil) }, "no weights")
	mustPanic(t, func() { SplitWeighted(1, []float64{-1, 2}) }, "negative weight")
	mustPanic(t, func() { SplitWeighted(1, []float64{0, 0}) }, "all-zero weights")
}

func TestBudgetRefund(t *testing.T) {
	b := NewBudget(1.0)
	if err := b.Spend(0.8); err != nil {
		t.Fatalf("Spend(0.8): %v", err)
	}
	// An admission layer returning a charge for a fit that never ran: the
	// budget must be spendable again.
	if err := b.Refund(0.8); err != nil {
		t.Fatalf("Refund(0.8): %v", err)
	}
	if math.Abs(b.Remaining()-1.0) > 1e-9 {
		t.Fatalf("Remaining after refund = %v, want 1.0", b.Remaining())
	}
	if err := b.Spend(1.0); err != nil {
		t.Fatalf("Spend(1.0) after refund: %v", err)
	}
	// Refunds clamp at zero spent: a stray over-refund can never manufacture
	// budget beyond the configured total.
	b2 := NewBudget(1.0)
	if err := b2.Spend(0.3); err != nil {
		t.Fatal(err)
	}
	if err := b2.Refund(5.0); err != nil {
		t.Fatalf("over-refund: %v", err)
	}
	if b2.Spent() != 0 || math.Abs(b2.Remaining()-1.0) > 1e-9 {
		t.Fatalf("clamped refund state: spent=%v remaining=%v", b2.Spent(), b2.Remaining())
	}
	if err := b2.Refund(0); err == nil {
		t.Fatal("Refund(0) accepted")
	}
	if err := b2.Refund(-1); err == nil {
		t.Fatal("Refund(-1) accepted")
	}
}
