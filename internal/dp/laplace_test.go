package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewRand with equal seeds produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("NewRand with different seeds produced identical streams")
	}
}

func TestLaplaceMomentsMatchTheory(t *testing.T) {
	rng := NewRand(1)
	const (
		n     = 200000
		scale = 2.5
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, scale)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Laplace sample mean = %v, want ≈ 0", mean)
	}
	wantVar := 2 * scale * scale
	if math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Fatalf("Laplace sample variance = %v, want ≈ %v", variance, wantVar)
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	rng := NewRand(2)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Laplace(rng, 1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("positive fraction = %v, want ≈ 0.5", frac)
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	for _, scale := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Laplace(scale=%v) did not panic", scale)
				}
			}()
			Laplace(NewRand(1), scale)
		}()
	}
}

func TestLaplaceMechanismCentersOnValue(t *testing.T) {
	rng := NewRand(3)
	const trials = 50000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += LaplaceMechanism(rng, 10, 1, 1)
	}
	mean := sum / trials
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("LaplaceMechanism mean = %v, want ≈ 10", mean)
	}
}

func TestLaplaceMechanismNoiseScalesWithSensitivityOverEpsilon(t *testing.T) {
	// Larger epsilon should concentrate the output more tightly around the
	// true value; verify via mean absolute deviation (= scale for Laplace).
	mad := func(eps float64) float64 {
		rng := NewRand(4)
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += math.Abs(LaplaceMechanism(rng, 0, 2, eps))
		}
		return sum / trials
	}
	loose := mad(0.1) // scale 20
	tight := mad(1.0) // scale 2
	if tight >= loose {
		t.Fatalf("noise did not shrink with larger epsilon: mad(1)=%v, mad(0.1)=%v", tight, loose)
	}
	if math.Abs(tight-2) > 0.2 {
		t.Fatalf("mad at eps=1, sens=2 is %v, want ≈ 2", tight)
	}
	if math.Abs(loose-20) > 2 {
		t.Fatalf("mad at eps=0.1, sens=2 is %v, want ≈ 20", loose)
	}
}

func TestLaplaceMechanismPanics(t *testing.T) {
	rng := NewRand(1)
	mustPanic(t, func() { LaplaceMechanism(rng, 0, 1, 0) }, "zero epsilon")
	mustPanic(t, func() { LaplaceMechanism(rng, 0, 0, 1) }, "zero sensitivity")
}

func TestLaplaceVector(t *testing.T) {
	rng := NewRand(5)
	in := []float64{1, 2, 3, 4}
	out := LaplaceVector(rng, in, 1, 10)
	if len(out) != len(in) {
		t.Fatalf("LaplaceVector length = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] == in[i] {
			t.Fatalf("coordinate %d unchanged; noise not applied", i)
		}
		if in[i] != float64(i+1) {
			t.Fatal("LaplaceVector modified its input")
		}
	}
	mustPanic(t, func() { LaplaceVector(rng, in, 0, 1) }, "zero sensitivity")
	mustPanic(t, func() { LaplaceVector(rng, in, 1, 0) }, "zero epsilon")
}

func TestTwoSidedGeometricIsIntegerAndSymmetric(t *testing.T) {
	rng := NewRand(6)
	var pos, neg, zero int
	const n = 100000
	for i := 0; i < n; i++ {
		v := TwoSidedGeometric(rng, 1, 1)
		switch {
		case v > 0:
			pos++
		case v < 0:
			neg++
		default:
			zero++
		}
	}
	if zero == 0 {
		t.Fatal("two-sided geometric never produced zero")
	}
	balance := math.Abs(float64(pos-neg)) / float64(pos+neg)
	if balance > 0.03 {
		t.Fatalf("positive/negative imbalance = %v", balance)
	}
	// With alpha = e^-1 the zero atom has mass (1-α)/(1+α) ≈ 0.462.
	zeroFrac := float64(zero) / n
	if math.Abs(zeroFrac-0.462) > 0.02 {
		t.Fatalf("zero mass = %v, want ≈ 0.462", zeroFrac)
	}
	mustPanic(t, func() { TwoSidedGeometric(rng, 0, 1) }, "zero sensitivity")
	mustPanic(t, func() { TwoSidedGeometric(rng, 1, 0) }, "zero epsilon")
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-3, 0, 10, 0},
		{42, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Fatalf("Clamp(%v, %v, %v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
	mustPanic(t, func() { Clamp(1, 5, 0) }, "inverted bounds")
}

func TestNormalizeToDistribution(t *testing.T) {
	out := NormalizeToDistribution([]float64{1, 3})
	if math.Abs(out[0]-0.25) > 1e-12 || math.Abs(out[1]-0.75) > 1e-12 {
		t.Fatalf("NormalizeToDistribution = %v, want [0.25 0.75]", out)
	}
	// All-zero input falls back to uniform.
	out = NormalizeToDistribution([]float64{0, 0, 0, 0})
	for _, v := range out {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("all-zero input should yield uniform, got %v", out)
		}
	}
	if got := NormalizeToDistribution(nil); len(got) != 0 {
		t.Fatalf("empty input should yield empty output, got %v", got)
	}
	mustPanic(t, func() { NormalizeToDistribution([]float64{1, -1}) }, "negative weight")
}

// Property: NormalizeToDistribution always returns a probability vector.
func TestNormalizeToDistributionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		for i, v := range raw {
			in[i] = float64(v)
		}
		out := NormalizeToDistribution(in)
		sum := 0.0
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// mustPanic asserts that fn panics.
func mustPanic(t *testing.T, fn func(), label string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	fn()
}
