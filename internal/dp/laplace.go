// Package dp provides the differential-privacy primitives used by AGM-DP:
// the Laplace, geometric and exponential mechanisms, smooth-sensitivity
// calibration, and a simple privacy-budget accountant supporting sequential
// and parallel composition.
//
// All randomness flows through an explicit *rand.Rand so that experiments are
// reproducible; NewRand constructs a suitably seeded source. The mechanisms
// implement pure ε-differential privacy except where noted (smooth sensitivity
// yields (ε, δ)-DP, as in Nissim et al.).
package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// NewRand returns a deterministic pseudo-random source seeded with seed.
// Distinct seeds give independent streams; the same seed reproduces a run
// exactly, which the experiment harness relies on.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Laplace draws a sample from the Laplace distribution with mean zero and the
// given scale b (density 1/(2b)·exp(−|x|/b)). It panics if scale is not
// positive or not finite.
func Laplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		panic(fmt.Sprintf("dp: invalid Laplace scale %v", scale))
	}
	// Inverse-CDF sampling: u uniform on (-1/2, 1/2),
	// x = -b·sgn(u)·ln(1-2|u|).
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// LaplaceMechanism releases value under ε-differential privacy by adding
// Laplace noise with scale sensitivity/epsilon. Sensitivity is the L1 global
// sensitivity of the query. It panics if epsilon or sensitivity is not
// positive.
func LaplaceMechanism(rng *rand.Rand, value, sensitivity, epsilon float64) float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: non-positive epsilon %v", epsilon))
	}
	if sensitivity <= 0 {
		panic(fmt.Sprintf("dp: non-positive sensitivity %v", sensitivity))
	}
	return value + Laplace(rng, sensitivity/epsilon)
}

// LaplaceVector releases a vector of query answers whose joint L1 sensitivity
// is sensitivity, adding independent Laplace noise with scale
// sensitivity/epsilon to every coordinate. The input slice is not modified.
func LaplaceVector(rng *rand.Rand, values []float64, sensitivity, epsilon float64) []float64 {
	out := make([]float64, len(values))
	scale := sensitivity / epsilon
	if epsilon <= 0 || sensitivity <= 0 {
		panic(fmt.Sprintf("dp: invalid LaplaceVector parameters sensitivity=%v epsilon=%v", sensitivity, epsilon))
	}
	for i, v := range values {
		out[i] = v + Laplace(rng, scale)
	}
	return out
}

// TwoSidedGeometric draws a sample from the two-sided geometric (discrete
// Laplace) distribution with parameter alpha = exp(−epsilon/sensitivity),
// i.e. Pr[X = k] ∝ alpha^|k|. Adding such noise to an integer-valued query
// with the given L1 sensitivity satisfies ε-differential privacy and keeps the
// output integral.
func TwoSidedGeometric(rng *rand.Rand, sensitivity, epsilon float64) int64 {
	if epsilon <= 0 || sensitivity <= 0 {
		panic(fmt.Sprintf("dp: invalid geometric parameters sensitivity=%v epsilon=%v", sensitivity, epsilon))
	}
	alpha := math.Exp(-epsilon / sensitivity)
	// Sample magnitude from a geometric distribution and a symmetric sign,
	// handling the atom at zero which has mass (1-alpha)/(1+alpha).
	u := rng.Float64()
	p0 := (1 - alpha) / (1 + alpha)
	if u < p0 {
		return 0
	}
	// Remaining mass split evenly between the positive and negative tails.
	u = rng.Float64()
	sign := int64(1)
	if rng.Float64() < 0.5 {
		sign = -1
	}
	// Geometric tail: Pr[|X| = k | |X| ≥ 1] ∝ alpha^(k-1).
	k := int64(1 + math.Floor(math.Log(u)/math.Log(alpha)))
	if k < 1 {
		k = 1
	}
	return sign * k
}

// Clamp restricts x to the closed interval [lo, hi]. It is the post-processing
// step the paper applies to noisy counts before normalisation; clamping noisy
// outputs never affects the privacy guarantee.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("dp: Clamp bounds inverted: [%v, %v]", lo, hi))
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NormalizeToDistribution rescales a vector of non-negative weights so that it
// sums to one. If every weight is zero (which can happen after clamping very
// noisy counts) it returns the uniform distribution, which is the convention
// used by the paper's estimators. The input is not modified.
func NormalizeToDistribution(weights []float64) []float64 {
	out := make([]float64, len(weights))
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dp: NormalizeToDistribution requires non-negative weights")
		}
		sum += w
	}
	if sum == 0 {
		if len(out) > 0 {
			u := 1.0 / float64(len(out))
			for i := range out {
				out[i] = u
			}
		}
		return out
	}
	for i, w := range weights {
		out[i] = w / sum
	}
	return out
}
