package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// SmoothBeta returns the smoothing parameter β = ε / (2·ln(1/δ)) used when
// adding Laplace noise calibrated to a β-smooth upper bound on local
// sensitivity (Nissim, Raskhodnikova, Smith; STOC 2007). The resulting
// mechanism satisfies (ε, δ)-differential privacy. It panics if epsilon or
// delta is outside (0, 1] ∪ (0, ∞) as appropriate.
func SmoothBeta(epsilon, delta float64) float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: non-positive epsilon %v", epsilon))
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("dp: delta %v outside (0, 1)", delta))
	}
	return epsilon / (2 * math.Log(1/delta))
}

// SmoothLaplaceMechanism releases value under (ε, δ)-differential privacy by
// adding Laplace noise with scale 2·S/ε, where S is a β-smooth upper bound on
// the local sensitivity at the true input and β = SmoothBeta(ε, δ). The
// caller is responsible for supplying a valid smooth bound; this function only
// performs the calibrated perturbation.
func SmoothLaplaceMechanism(rng *rand.Rand, value, smoothSensitivity, epsilon float64) float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: non-positive epsilon %v", epsilon))
	}
	if smoothSensitivity <= 0 {
		panic(fmt.Sprintf("dp: non-positive smooth sensitivity %v", smoothSensitivity))
	}
	return value + Laplace(rng, 2*smoothSensitivity/epsilon)
}

// SmoothBoundLinear computes the generic smooth upper bound
//
//	S*(D) = max_{t ≥ 0} e^{−βt} · min(localSensitivity + growth·t, cap)
//
// for functions whose local sensitivity grows by at most `growth` per unit of
// distance from the input and is globally capped at `cap`. This is exactly the
// form of Proposition 4 in the paper (for Q_F: localSensitivity = 2·dmax,
// growth = 2, cap = 2n−2). The maximisation has a closed form: the expression
// increases while the linear term dominates and decays afterwards, so it
// suffices to examine t = 0, the unconstrained stationary point and the point
// where the cap is reached.
func SmoothBoundLinear(localSensitivity, growth, cap, beta float64) float64 {
	if beta <= 0 {
		panic(fmt.Sprintf("dp: non-positive beta %v", beta))
	}
	if localSensitivity < 0 || growth < 0 || cap < localSensitivity {
		panic("dp: SmoothBoundLinear requires 0 ≤ localSensitivity ≤ cap and growth ≥ 0")
	}
	value := func(t float64) float64 {
		s := localSensitivity + growth*t
		if s > cap {
			s = cap
		}
		return math.Exp(-beta*t) * s
	}
	best := value(0)
	if growth > 0 {
		// Stationary point of e^{−βt}(L + g·t): t* = 1/β − L/g.
		tStar := 1/beta - localSensitivity/growth
		if tStar > 0 {
			if v := value(tStar); v > best {
				best = v
			}
		}
		// Point at which the cap binds.
		tCap := (cap - localSensitivity) / growth
		if tCap > 0 {
			if v := value(tCap); v > best {
				best = v
			}
		}
	}
	return best
}
