package dp

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetExhausted is returned by Budget.Spend when a requested allocation
// would exceed the remaining privacy budget.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// Budget is a simple sequential-composition accountant for pure
// ε-differential privacy: every Spend reduces the remaining budget, and the
// total privacy loss of all operations charged to the budget is the sum of
// their epsilons (McSherry's sequential composition theorem). Budget is safe
// for concurrent use.
type Budget struct {
	mu    sync.Mutex
	total float64
	spent float64
}

// NewBudget creates an accountant with the given total privacy budget ε > 0.
func NewBudget(epsilon float64) *Budget {
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: non-positive total budget %v", epsilon))
	}
	return &Budget{total: epsilon}
}

// Total returns the total budget the accountant was created with.
func (b *Budget) Total() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Spent returns the privacy budget consumed so far.
func (b *Budget) Spent() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Remaining returns the unspent budget.
func (b *Budget) Remaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.spent
}

// Spend charges epsilon against the budget. It returns ErrBudgetExhausted
// (and charges nothing) if the remaining budget is insufficient, and an error
// for non-positive requests. A tiny tolerance absorbs floating-point rounding
// when a caller splits a budget into parts that nominally sum to the total.
func (b *Budget) Spend(epsilon float64) error {
	if epsilon <= 0 {
		return fmt.Errorf("dp: cannot spend non-positive epsilon %v", epsilon)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	const tol = 1e-9
	if b.spent+epsilon > b.total+tol {
		return fmt.Errorf("%w: requested %v with %v remaining", ErrBudgetExhausted, epsilon, b.total-b.spent)
	}
	b.spent += epsilon
	return nil
}

// Refund returns epsilon to the budget, clamped so the spent total never
// goes negative. It exists for *admission* accounting — a serving layer that
// charges a fit's ε up front may return it when the fit is cancelled or fails
// before any noised measurement of the sensitive data was released. It must
// never be called for an operation whose output (even partial) was observed:
// differential privacy has no refunds for released information.
func (b *Budget) Refund(epsilon float64) error {
	if epsilon <= 0 {
		return fmt.Errorf("dp: cannot refund non-positive epsilon %v", epsilon)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spent -= epsilon
	if b.spent < 0 {
		b.spent = 0
	}
	return nil
}

// SplitEven divides epsilon into k equal parts. It is the budget-splitting
// strategy the paper uses for AGM-DP with TriCycLe (four equal shares for ΘX,
// ΘF, S and n∆).
func SplitEven(epsilon float64, k int) []float64 {
	if k <= 0 {
		panic(fmt.Sprintf("dp: SplitEven with non-positive k=%d", k))
	}
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: SplitEven with non-positive epsilon %v", epsilon))
	}
	out := make([]float64, k)
	share := epsilon / float64(k)
	for i := range out {
		out[i] = share
	}
	return out
}

// SplitWeighted divides epsilon proportionally to the given non-negative
// weights (at least one must be positive). It supports the FCL budget split in
// the paper (half for the degree sequence, a quarter each for ΘX and ΘF).
func SplitWeighted(epsilon float64, weights []float64) []float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: SplitWeighted with non-positive epsilon %v", epsilon))
	}
	if len(weights) == 0 {
		panic("dp: SplitWeighted with no weights")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dp: SplitWeighted with negative weight")
		}
		sum += w
	}
	if sum == 0 {
		panic("dp: SplitWeighted with all-zero weights")
	}
	out := make([]float64, len(weights))
	for i, w := range weights {
		out[i] = epsilon * w / sum
	}
	return out
}
