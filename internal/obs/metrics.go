// Package obs is the service's dependency-free observability layer: a
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms, optionally labeled), Prometheus-text and JSON exposition, and a
// lightweight per-request tracing context (request IDs and stage-span
// recording).
//
// # Design constraints
//
// The package instruments the hot paths of a system whose core contract is
// bit-for-bit determinism, so it must be invisible to the work it measures:
//
//   - The counter fast path is a single atomic add on a handle the caller
//     obtained once at setup — no locks, no allocation, no map lookups
//     (BenchmarkCounterInc pins it well under 100ns/op).
//   - Observing a histogram is a short linear scan over the fixed bucket
//     bounds plus two atomic adds.
//   - Nothing in the package touches math/rand or any RNG: instrumentation
//     reads clocks and memory, never entropy, so the seq-vs-parallel and
//     fixed-seed byte-equality property tests hold with metrics enabled.
//
// # Registries
//
// A Registry owns a namespace of metric families. Default() is the
// process-wide registry every subsystem (engine, worker pool, stores, jobs,
// HTTP middleware) registers into; the server exposes it as GET /metrics
// (Prometheus text format) and GET /v1/stats (JSON snapshot with computed
// p50/p95/p99). Registration is idempotent — asking for an existing family
// with the same kind returns the resident instance — so layers can declare
// their metrics in package position without coordinating initialisation
// order.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric families a registry holds.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// DefBuckets are the default histogram upper bounds in seconds, spanning
// 100µs to 60s — wide enough for both sub-millisecond store hits and
// multi-second DP fits. A final +Inf bucket is always implicit.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing metric. Inc and Add are the
// allocation-free, lock-free fast path; callers hold the handle, obtained
// once from a Registry or a Vec, for the life of the process.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic; this is not
// checked on the fast path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value. It is float64-valued internally —
// privacy-budget gauges carry fractional ε — while keeping the integer API
// for the counters-of-things callers: integers up to 2^53 round-trip exactly
// through the float representation, far beyond any resident-object or byte
// count this service reports.
type Gauge struct {
	v atomic.Uint64 // math.Float64bits representation
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.SetFloat(float64(n)) }

// SetFloat replaces the value with a float64 (fractional gauges, e.g. spent
// privacy budget).
func (g *Gauge) SetFloat(v float64) { g.v.Store(math.Float64bits(v)) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.AddFloat(float64(n)) }

// AddFloat adds v (negative to subtract). Concurrent adds are linearized with
// a compare-and-swap loop; the gauge never loses an update.
func (g *Gauge) AddFloat(v float64) {
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.AddFloat(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.AddFloat(-1) }

// Value returns the current value truncated to an integer; FloatValue
// preserves fractional gauges.
func (g *Gauge) Value() int64 { return int64(g.FloatValue()) }

// FloatValue returns the current value.
func (g *Gauge) FloatValue() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket latency histogram. Observations are atomic;
// quantiles are computed at snapshot time by linear interpolation within the
// bucket that crosses the requested rank (the same estimate Prometheus's
// histogram_quantile performs server-side).
type Histogram struct {
	bounds []float64      // sorted upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64   // nanoseconds-scaled sum (1e9 units per second)
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records a value (in seconds, for latency histograms). The scan over
// the fixed bounds plus two atomic adds is the whole cost.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(v * 1e9))
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values (seconds).
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / 1e9 }

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution by linear interpolation inside the bucket that crosses the
// requested rank. With no observations it returns 0. Observations beyond the
// last finite bound are reported as that bound (the histogram cannot resolve
// further).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: the last finite bound is the best estimate.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*((rank-float64(cum))/float64(n))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns the cumulative per-bucket counts (excluding +Inf)
// and the +Inf total, for exposition.
func (h *Histogram) snapshotBuckets() ([]int64, int64) {
	cum := make([]int64, len(h.bounds))
	var running int64
	for i := range h.bounds {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running + h.counts[len(h.bounds)].Load()
}

// family is one named metric family: a fixed kind and label-name set, and a
// set of children keyed by their label values. Children are resolved through
// a sync.Map, so the steady-state lookup in Vec.With is lock-free.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	children sync.Map // labelKey string -> *child
	mu       sync.Mutex

	gaugeFn atomic.Value // func() float64, unlabeled gauge families only
}

// child is one concrete metric within a family.
type child struct {
	labels []string // label values, parallel to family.labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// labelKey joins label values into the map key. 0x1f (ASCII unit separator)
// cannot legally appear in a label value produced by this codebase.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	if c, ok := f.children.Load(key); ok {
		return c.(*child)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c.(*child)
	}
	c := &child{labels: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.c = &Counter{}
	case KindGauge:
		c.g = &Gauge{}
	case KindHistogram:
		c.h = newHistogram(f.bounds)
	}
	f.children.Store(key, c)
	return c
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use. Hold the returned handle when the label set is static; the lookup
// itself is lock-free after first use but builds one key string.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// Registry owns a namespace of metric families. The zero value is not
// usable; construct with NewRegistry or use the process-wide Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that every subsystem registers
// into and the server's /metrics endpoint serves.
func Default() *Registry { return defaultRegistry }

// register resolves (or creates) a family. Registration is idempotent: an
// existing family with the same kind is returned as-is, so independent
// packages (or repeated constructions in tests) can declare the same metric.
// A kind mismatch is a programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...), bounds: bounds}
	r.families[name] = f
	return f
}

// Counter declares (or resolves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).get(nil).c
}

// CounterVec declares (or resolves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// Gauge declares (or resolves) an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).get(nil).g
}

// GaugeVec declares (or resolves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// GaugeFunc declares an unlabeled gauge whose value is computed at scrape
// time. Re-registering replaces the function (last wins), which lets a
// rebuilt server re-point "live state" gauges at its current engine and
// stores.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.gaugeFn.Store(fn)
}

// Histogram declares (or resolves) an unlabeled histogram. bounds are the
// bucket upper bounds in ascending order; nil selects DefBuckets. The bounds
// of an already registered family are kept.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, bounds).get(nil).h
}

// HistogramVec declares (or resolves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, bounds)}
}

// sortedFamilies returns the registered families in name order (the
// exposition order for both formats).
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedChildren returns a family's children in label-value order.
func (f *family) sortedChildren() []*child {
	var out []*child
	f.children.Range(func(_, v any) bool {
		out = append(out, v.(*child))
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labels, out[j].labels
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
