package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Idempotent registration resolves the same instance.
	if again := r.Counter("test_total", "help"); again.Value() != 42 {
		t.Fatalf("re-registered counter = %d, want 42", again.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	vec := r.CounterVec("v_total", "", "worker")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := vec.With("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("shared").Value(); got != workers*perWorker {
		t.Fatalf("labeled counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", 0.1, 1, 10)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("quantile of empty histogram = %v, want 0", got)
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram count/sum = %d/%v", h.Count(), h.Sum())
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", 0.1, 1, 10)
	h.Observe(0.5)
	// The single observation lands in the (0.1, 1] bucket; every quantile
	// must interpolate inside that bucket's bounds.
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 0.1 || got > 1 {
			t.Fatalf("quantile(%v) = %v, want within (0.1, 1]", q, got)
		}
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if math.Abs(h.Sum()-0.5) > 1e-9 {
		t.Fatalf("sum = %v, want 0.5", h.Sum())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	// Uniform 1..100 observations scaled into (0, 10]: quantile q should land
	// near 10q.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.95, 9.5}, {0.99, 9.9}, {1, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1 {
			t.Fatalf("quantile(%v) = %v, want about %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", 0.1, 1)
	h.Observe(50) // beyond the last finite bound
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("quantile with only +Inf observations = %v, want last bound 1", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "")
	h.ObserveDuration(250 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if math.Abs(h.Sum()-0.25) > 1e-6 {
		t.Fatalf("sum = %v, want 0.25", h.Sum())
	}
}

// TestWritePrometheusGolden pins the exposition format end to end: help and
// type comments, label escaping, histogram buckets with cumulative counts,
// sum and count lines, and name-sorted family order.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(3)
	r.CounterVec("c_total", "labeled", "route", "code").With(`/v1/"x"`, "200").Add(2)
	r.Gauge("a_depth", "a gauge").Set(5)
	h := r.Histogram("d_seconds", "a histogram", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_depth a gauge
# TYPE a_depth gauge
a_depth 5
# HELP b_total a counter
# TYPE b_total counter
b_total 3
# HELP c_total labeled
# TYPE c_total counter
c_total{route="/v1/\"x\"",code="200"} 2
# HELP d_seconds a histogram
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 1
d_seconds_bucket{le="1"} 2
d_seconds_bucket{le="+Inf"} 3
d_seconds_sum 7.55
d_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("live", "scrape-time gauge", func() float64 { return v })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live 3\n") {
		t.Fatalf("exposition missing gauge func value:\n%s", sb.String())
	}
	// Last registration wins: a rebuilt server re-points the gauge.
	r.GaugeFunc("live", "scrape-time gauge", func() float64 { return 9 })
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live 9\n") {
		t.Fatalf("exposition missing replaced gauge func value:\n%s", sb.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Inc()
	r.GaugeVec("depth", "", "pool").With("shared").Set(4)
	h := r.Histogram("lat_seconds", "", 1, 2, 4)
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d families, want 3", len(snap))
	}
	// Name-sorted: depth, lat_seconds, reqs_total.
	if snap[0].Name != "depth" || snap[1].Name != "lat_seconds" || snap[2].Name != "reqs_total" {
		t.Fatalf("family order = %s, %s, %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if got := snap[0].Metrics[0].Labels["pool"]; got != "shared" {
		t.Fatalf("gauge label = %q, want shared", got)
	}
	if snap[0].Metrics[0].Value != 4 {
		t.Fatalf("gauge value = %v, want 4", snap[0].Metrics[0].Value)
	}
	hm := snap[1].Metrics[0]
	if hm.Count != 100 {
		t.Fatalf("histogram count = %d, want 100", hm.Count)
	}
	for _, q := range []float64{hm.P50, hm.P95, hm.P99} {
		if q <= 1 || q > 2 {
			t.Fatalf("quantile %v outside the observed bucket (1, 2]", q)
		}
	}
	if snap[2].Metrics[0].Value != 1 {
		t.Fatalf("counter value = %v, want 1", snap[2].Metrics[0].Value)
	}
}

func TestLabelKey(t *testing.T) {
	// Distinct label vectors must map to distinct keys even when values
	// concatenate identically.
	a := labelKey([]string{"ab", "c"})
	b := labelKey([]string{"a", "bc"})
	if a == b {
		t.Fatalf("labelKey collision: %q vs %q", a, b)
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() must return the process-wide instance")
	}
}
