package obs

// Per-request tracing: request ID generation and context propagation, and
// stage-span recording for multi-stage pipelines (the fit and sample jobs).
// Stage durations are plain wall-clock measurements around existing work;
// they never touch an RNG, so recording them cannot perturb the determinism
// contract.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// requestIDPrefix is a per-process random prefix so IDs from different
// service instances (or restarts) do not collide in aggregated logs.
var requestIDPrefix = func() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy failure: fall back to the clock. IDs stay unique within the
		// process via the counter either way.
		return uint32(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint32(b[:])
}()

var requestIDCounter atomic.Uint64

// NewRequestID returns a 16-hex-character request ID, unique within the
// process and prefixed with per-process randomness. The cost is one atomic
// add and one small formatting call; crypto/rand is read once at startup,
// never per request.
func NewRequestID() string {
	return fmt.Sprintf("%08x%08x", requestIDPrefix, uint32(requestIDCounter.Add(1)))
}

// requestIDKey is the context key for the request ID.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by the context, or "" when the
// context has none.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Stage is one named span within a pipeline: its wall-clock duration in
// seconds. Stages are recorded in first-seen order, which for the fit and
// sample pipelines is the execution order.
type Stage struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// StageTimer accumulates named stage durations. It is safe for concurrent
// use (a sample job's fan-out workers all add to the same timer); repeated
// stage names accumulate into one span, so per-sample stage times sum into
// per-job totals.
type StageTimer struct {
	clock func() time.Time

	mu     sync.Mutex
	last   time.Time
	stages []Stage
	index  map[string]int
}

// NewStageTimer returns a timer whose Mark baseline starts now.
func NewStageTimer() *StageTimer { return newStageTimer(time.Now) }

// newStageTimer lets tests inject a clock.
func newStageTimer(clock func() time.Time) *StageTimer {
	return &StageTimer{clock: clock, last: clock(), index: make(map[string]int)}
}

// Mark records everything since the previous Mark (or the timer's creation)
// as one stage and resets the baseline, returning the recorded duration.
// Use Mark for strictly sequential pipelines.
func (t *StageTimer) Mark(name string) time.Duration {
	now := t.clock()
	t.mu.Lock()
	d := now.Sub(t.last)
	t.last = now
	t.addLocked(name, d)
	t.mu.Unlock()
	return d
}

// Add accumulates an explicitly measured duration into a stage without
// touching the Mark baseline. Use Add for concurrent or repeated work
// (per-sample stages, the acceptance-table warm-up goroutine).
func (t *StageTimer) Add(name string, d time.Duration) {
	t.mu.Lock()
	t.addLocked(name, d)
	t.mu.Unlock()
}

func (t *StageTimer) addLocked(name string, d time.Duration) {
	if i, ok := t.index[name]; ok {
		t.stages[i].Seconds += d.Seconds()
		return
	}
	t.index[name] = len(t.stages)
	t.stages = append(t.stages, Stage{Name: name, Seconds: d.Seconds()})
}

// Observer returns a callback in the shape core.Config.Observe expects,
// accumulating every reported stage into the timer.
func (t *StageTimer) Observer() func(stage string, d time.Duration) {
	return func(stage string, d time.Duration) { t.Add(stage, d) }
}

// Stages returns a copy of the recorded stages in first-seen order; nil when
// nothing was recorded.
func (t *StageTimer) Stages() []Stage {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stages) == 0 {
		return nil
	}
	out := make([]Stage, len(t.stages))
	copy(out, t.stages)
	return out
}
