package obs

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNewRequestIDUnique(t *testing.T) {
	const n = 1000
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				id := NewRequestID()
				if len(id) != 16 {
					t.Errorf("request ID %q has length %d, want 16", id, len(id))
					return
				}
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate request ID %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("RequestID of bare context = %q, want empty", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("RequestID = %q, want abc123", got)
	}
}

func TestStageTimerMark(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	st := newStageTimer(clock)

	now = now.Add(100 * time.Millisecond)
	st.Mark("degrees")
	now = now.Add(200 * time.Millisecond)
	st.Mark("attrs")
	now = now.Add(50 * time.Millisecond)
	st.Mark("degrees") // repeated stage accumulates

	stages := st.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	if stages[0].Name != "degrees" || stages[1].Name != "attrs" {
		t.Fatalf("stage order = %s, %s; want degrees, attrs (first-seen order)", stages[0].Name, stages[1].Name)
	}
	if got := stages[0].Seconds; math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("degrees = %v, want 0.15", got)
	}
	if got := stages[1].Seconds; math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("attrs = %v, want 0.2", got)
	}
}

func TestStageTimerAddConcurrent(t *testing.T) {
	st := NewStageTimer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				st.Add("generate", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	stages := st.Stages()
	if len(stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(stages))
	}
	want := 0.8 // 8 workers × 100 × 1ms
	if got := stages[0].Seconds; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("accumulated = %v, want %v", got, want)
	}
}

func TestStageTimerObserver(t *testing.T) {
	st := NewStageTimer()
	obs := st.Observer()
	obs("noise", 30*time.Millisecond)
	stages := st.Stages()
	if len(stages) != 1 || stages[0].Name != "noise" {
		t.Fatalf("stages = %+v", stages)
	}
}

func TestStageTimerEmpty(t *testing.T) {
	if got := NewStageTimer().Stages(); got != nil {
		t.Fatalf("empty timer stages = %+v, want nil", got)
	}
}
