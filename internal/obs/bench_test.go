package obs

// Instrumentation-overhead benchmarks. The acceptance bar for this layer is
// that the counter fast path stays under 100ns/op — cheap enough to leave on
// in every hot loop. BenchmarkMutexCounterInc is the baseline a lock-based
// design would have cost (the pair feeds scripts/bench.sh's speedup table).

import (
	"sync"
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// mutexCounter is the design the atomic fast path replaces.
type mutexCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *mutexCounter) Inc() {
	c.mu.Lock()
	c.v++
	c.mu.Unlock()
}

func BenchmarkMutexCounterInc(b *testing.B) {
	var c mutexCounter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_depth", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveDuration(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(4200 * time.Microsecond)
	}
}

// BenchmarkCounterVecWith measures the labeled lookup path (one key build +
// lock-free map hit); hot paths that can hold the child handle directly
// should, but the lookup itself must stay cheap enough for per-request use.
func BenchmarkCounterVecWith(b *testing.B) {
	vec := NewRegistry().CounterVec("bench_vec_total", "", "route", "code")
	vec.With("GET /v1/jobs/{id}", "200").Inc() // warm the child
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.With("GET /v1/jobs/{id}", "200").Inc()
	}
}

func BenchmarkStageTimerAdd(b *testing.B) {
	st := NewStageTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Add("generate", time.Microsecond)
	}
}
