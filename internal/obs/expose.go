package obs

// Exposition: the Prometheus text format served by GET /metrics and the JSON
// snapshot (with computed quantiles) served by GET /v1/stats. Both walk the
// same sorted family/child order, so the two views of one registry always
// agree.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// writeLabels renders {k="v",...}; extra appends one more pair (used for the
// le bucket label).
func writeLabels(w *bufio.Writer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `%s="%s"`, n, escapeLabelValue(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `%s="%s"`, extraName, extraValue)
	}
	w.WriteByte('}')
}

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and children by
// label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if fn, ok := f.gaugeFn.Load().(func() float64); ok && fn != nil {
			// Function-backed gauge: evaluated at scrape time.
			if f.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
			}
			fmt.Fprintf(bw, "# TYPE %s gauge\n", f.name)
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(fn()))
			continue
		}
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch f.kind {
			case KindCounter:
				bw.WriteString(f.name)
				writeLabels(bw, f.labels, c.labels, "", "")
				fmt.Fprintf(bw, " %d\n", c.c.Value())
			case KindGauge:
				bw.WriteString(f.name)
				writeLabels(bw, f.labels, c.labels, "", "")
				fmt.Fprintf(bw, " %s\n", formatValue(c.g.FloatValue()))
			case KindHistogram:
				cum, total := c.h.snapshotBuckets()
				for i, bound := range c.h.bounds {
					bw.WriteString(f.name + "_bucket")
					writeLabels(bw, f.labels, c.labels, "le", formatValue(bound))
					fmt.Fprintf(bw, " %d\n", cum[i])
				}
				bw.WriteString(f.name + "_bucket")
				writeLabels(bw, f.labels, c.labels, "le", "+Inf")
				fmt.Fprintf(bw, " %d\n", total)
				bw.WriteString(f.name + "_sum")
				writeLabels(bw, f.labels, c.labels, "", "")
				fmt.Fprintf(bw, " %s\n", formatValue(c.h.Sum()))
				bw.WriteString(f.name + "_count")
				writeLabels(bw, f.labels, c.labels, "", "")
				fmt.Fprintf(bw, " %d\n", total)
			}
		}
	}
	return bw.Flush()
}

// MetricSnapshot is one concrete metric in a JSON snapshot.
type MetricSnapshot struct {
	// Labels maps label names to values; empty for unlabeled metrics.
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the current counter or gauge value.
	Value float64 `json:"value"`
	// Count, Sum and the quantiles are set for histograms only.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// FamilySnapshot is one metric family in a JSON snapshot.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Kind    Kind             `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot returns a point-in-time JSON-friendly view of every registered
// family, with p50/p95/p99 pre-computed for histograms. Families are sorted
// by name, children by label values — the same order as the Prometheus text
// exposition.
func (r *Registry) Snapshot() []FamilySnapshot {
	families := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(families))
	for _, f := range families {
		fs := FamilySnapshot{Name: f.name, Kind: f.kind, Help: f.help}
		if fn, ok := f.gaugeFn.Load().(func() float64); ok && fn != nil {
			fs.Metrics = []MetricSnapshot{{Value: fn()}}
			out = append(out, fs)
			continue
		}
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		for _, c := range children {
			m := MetricSnapshot{}
			if len(f.labels) > 0 {
				m.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					m.Labels[n] = c.labels[i]
				}
			}
			switch f.kind {
			case KindCounter:
				m.Value = float64(c.c.Value())
			case KindGauge:
				m.Value = c.g.FloatValue()
			case KindHistogram:
				m.Count = c.h.Count()
				m.Sum = c.h.Sum()
				m.P50 = c.h.Quantile(0.50)
				m.P95 = c.h.Quantile(0.95)
				m.P99 = c.h.Quantile(0.99)
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		out = append(out, fs)
	}
	return out
}
