// Package degrees implements differentially private estimation of a graph's
// degree sequence using the constrained-inference technique of Hay, Li, Miklau
// and Jensen (ICDM 2009), which AGM-DP uses to fit both the FCL and TriCycLe
// structural models (Appendix C.3.1 of the paper).
//
// The estimator sorts the true degree sequence, adds independent Laplace noise
// with scale 2/ε to each position (adding or removing one edge changes exactly
// two degrees by one, so the L1 sensitivity of the sorted sequence is 2), and
// then post-processes the noisy sequence back onto the ordering constraint by
// isotonic (L2-minimising) regression. Post-processing never affects the
// privacy guarantee, while cancelling much of the noise on the long runs of
// equal low degrees that dominate social graphs.
package degrees

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

// Isotonic returns the non-decreasing sequence that minimises the L2 distance
// to the input, computed with the pool-adjacent-violators algorithm in O(n).
// This is the "constrained inference" step of Hay et al. The input slice is
// not modified.
func Isotonic(seq []float64) []float64 {
	n := len(seq)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// Each block is a maximal run that has been pooled to its mean.
	type block struct {
		sum   float64
		count int
	}
	blocks := make([]block, 0, n)
	for _, v := range seq {
		blocks = append(blocks, block{sum: v, count: 1})
		// Merge backwards while the mean of the last block is smaller than the
		// mean of the block before it (an order violation).
		for len(blocks) >= 2 {
			last := blocks[len(blocks)-1]
			prev := blocks[len(blocks)-2]
			if prev.sum*float64(last.count) <= last.sum*float64(prev.count) {
				break
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, block{sum: prev.sum + last.sum, count: prev.count + last.count})
		}
	}
	idx := 0
	for _, b := range blocks {
		mean := b.sum / float64(b.count)
		for i := 0; i < b.count; i++ {
			out[idx] = mean
			idx++
		}
	}
	return out
}

// SequenceSensitivity is the L1 global sensitivity of the sorted degree
// sequence under edge adjacency: one edge change alters two degrees by one.
const SequenceSensitivity = 2.0

// Options configures the private degree-sequence estimator.
type Options struct {
	// ConstrainedInference applies the Hay et al. isotonic post-processing
	// step. Disabling it yields the naive Laplace estimator (used only for the
	// ablation study).
	ConstrainedInference bool
	// Round rounds each estimate to the nearest integer in [0, n−1].
	Round bool
}

// DefaultOptions returns the configuration used by the paper: constrained
// inference followed by rounding.
func DefaultOptions() Options {
	return Options{ConstrainedInference: true, Round: true}
}

// PrivateSequenceFromDegrees releases an ε-differentially private estimate of
// the sorted degree sequence given the true (unsorted) node degrees. n is the
// public number of nodes and bounds the clamping range. The result is sorted
// in non-decreasing order.
func PrivateSequenceFromDegrees(rng *rand.Rand, degs []int, n int, epsilon float64, opts Options) []float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("degrees: non-positive epsilon %v", epsilon))
	}
	if n < len(degs) {
		panic(fmt.Sprintf("degrees: public node count %d smaller than degree list %d", n, len(degs)))
	}
	sorted := make([]float64, len(degs))
	ints := make([]int, len(degs))
	copy(ints, degs)
	sort.Ints(ints)
	for i, d := range ints {
		sorted[i] = float64(d)
	}
	noisy := dp.LaplaceVector(rng, sorted, SequenceSensitivity, epsilon)
	if opts.ConstrainedInference {
		noisy = Isotonic(noisy)
	}
	maxDeg := float64(n - 1)
	if maxDeg < 0 {
		maxDeg = 0
	}
	for i := range noisy {
		noisy[i] = dp.Clamp(noisy[i], 0, maxDeg)
		if opts.Round {
			noisy[i] = math.Round(noisy[i])
		}
	}
	// Clamping and rounding are monotone, so order is preserved when
	// constrained inference ran; re-sorting is a harmless safeguard for the
	// naive path.
	sort.Float64s(noisy)
	return noisy
}

// PrivateSequence releases an ε-differentially private estimate of graph g's
// sorted degree sequence with the paper's default options.
func PrivateSequence(rng *rand.Rand, g *graph.Graph, epsilon float64) []int {
	return PrivateSequenceWith(rng, g, epsilon, 0)
}

// PrivateSequenceWith is PrivateSequence with an explicit worker count for
// the degree-extraction pass (≤ 0 selects the process default). Degree
// extraction is bit-identical for every worker count and the noise draws stay
// sequential on rng, so the released sequence depends only on (graph,
// epsilon, rng state).
func PrivateSequenceWith(rng *rand.Rand, g *graph.Graph, epsilon float64, workers int) []int {
	est := PrivateSequenceFromDegrees(rng, g.DegreesWith(workers), g.NumNodes(), epsilon, DefaultOptions())
	out := make([]int, len(est))
	for i, v := range est {
		out[i] = int(v)
	}
	return out
}

// SequenceSum returns the sum of a degree sequence; half of it is the implied
// edge count of a graph realising the sequence.
func SequenceSum(seq []int) int {
	sum := 0
	for _, d := range seq {
		sum += d
	}
	return sum
}

// ImpliedEdges returns the number of edges implied by a degree sequence,
// rounding down when the sum is odd (which can happen for noisy sequences).
func ImpliedEdges(seq []int) int {
	return SequenceSum(seq) / 2
}
