package degrees

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

func TestIsotonicAlreadySortedIsIdentity(t *testing.T) {
	in := []float64{1, 2, 2, 3, 10}
	out := Isotonic(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("Isotonic changed an already sorted input: %v -> %v", in, out)
		}
	}
}

func TestIsotonicPoolsViolations(t *testing.T) {
	// Classic PAVA example: a single inversion is pooled to the block mean.
	out := Isotonic([]float64{1, 3, 2, 4})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("Isotonic = %v, want %v", out, want)
		}
	}
}

func TestIsotonicDecreasingInputPoolsToMean(t *testing.T) {
	out := Isotonic([]float64{5, 4, 3, 2, 1})
	for _, v := range out {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("fully decreasing input should pool to the global mean 3, got %v", out)
		}
	}
}

func TestIsotonicEmptyAndSingle(t *testing.T) {
	if out := Isotonic(nil); len(out) != 0 {
		t.Fatalf("Isotonic(nil) = %v", out)
	}
	out := Isotonic([]float64{7})
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("Isotonic single = %v", out)
	}
}

func TestIsotonicDoesNotModifyInput(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Isotonic(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Isotonic modified its input: %v", in)
	}
}

// isMonotone reports whether the sequence is non-decreasing.
func isMonotone(seq []float64) bool {
	for i := 1; i < len(seq); i++ {
		if seq[i] < seq[i-1]-1e-9 {
			return false
		}
	}
	return true
}

// Property: the PAVA output is always non-decreasing and preserves the sum of
// the input (the L2 projection onto the monotone cone preserves the mean).
func TestIsotonicMonotoneAndSumPreservingProperty(t *testing.T) {
	f := func(raw []int8) bool {
		in := make([]float64, len(raw))
		var sumIn float64
		for i, v := range raw {
			in[i] = float64(v)
			sumIn += float64(v)
		}
		out := Isotonic(in)
		if !isMonotone(out) {
			return false
		}
		var sumOut float64
		for _, v := range out {
			sumOut += v
		}
		return math.Abs(sumIn-sumOut) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PAVA is the L2-optimal monotone fit, so its error never exceeds
// the error of the best constant fit (the mean), which is a feasible monotone
// sequence.
func TestIsotonicNotWorseThanConstantFitProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		var mean float64
		for i, v := range raw {
			in[i] = float64(v)
			mean += float64(v)
		}
		mean /= float64(len(raw))
		out := Isotonic(in)
		var errPava, errConst float64
		for i := range in {
			errPava += (out[i] - in[i]) * (out[i] - in[i])
			errConst += (mean - in[i]) * (mean - in[i])
		}
		return errPava <= errConst+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Finalize()
}

func TestPrivateSequenceShapeAndRange(t *testing.T) {
	g := starGraph(50)
	rng := dp.NewRand(1)
	seq := PrivateSequence(rng, g, 1.0)
	if len(seq) != g.NumNodes() {
		t.Fatalf("sequence length = %d, want %d", len(seq), g.NumNodes())
	}
	if !sort.IntsAreSorted(seq) {
		t.Fatalf("private sequence is not sorted: %v", seq)
	}
	for _, d := range seq {
		if d < 0 || d > g.NumNodes()-1 {
			t.Fatalf("degree %d outside [0, n-1]", d)
		}
	}
}

func TestPrivateSequenceAccuracyImprovesWithEpsilon(t *testing.T) {
	// Use a power-law-ish degree multiset and compare L1 error at two
	// epsilons, averaged over trials.
	degs := make([]int, 0, 300)
	for i := 0; i < 200; i++ {
		degs = append(degs, 1)
	}
	for i := 0; i < 80; i++ {
		degs = append(degs, 5)
	}
	for i := 0; i < 20; i++ {
		degs = append(degs, 30)
	}
	n := len(degs)
	sorted := make([]int, n)
	copy(sorted, degs)
	sort.Ints(sorted)

	avgErr := func(eps float64) float64 {
		var total float64
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			rng := dp.NewRand(int64(trial) + 100)
			est := PrivateSequenceFromDegrees(rng, degs, n, eps, DefaultOptions())
			for i := range est {
				total += math.Abs(est[i] - float64(sorted[i]))
			}
		}
		return total / trials
	}
	if loose, tight := avgErr(0.05), avgErr(2.0); tight >= loose {
		t.Fatalf("error did not shrink with larger epsilon: eps=2 err=%v, eps=0.05 err=%v", tight, loose)
	}
}

func TestConstrainedInferenceReducesError(t *testing.T) {
	// On a long, flat degree sequence the isotonic step should cut the error
	// substantially relative to raw Laplace noise.
	degs := make([]int, 500)
	for i := range degs {
		degs[i] = 2
	}
	n := len(degs)
	errWith, errWithout := 0.0, 0.0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		rngA := dp.NewRand(int64(trial))
		rngB := dp.NewRand(int64(trial))
		with := PrivateSequenceFromDegrees(rngA, degs, n, 0.1, Options{ConstrainedInference: true, Round: false})
		without := PrivateSequenceFromDegrees(rngB, degs, n, 0.1, Options{ConstrainedInference: false, Round: false})
		for i := range degs {
			errWith += math.Abs(with[i] - 2)
			errWithout += math.Abs(without[i] - 2)
		}
	}
	if errWith >= errWithout*0.6 {
		t.Fatalf("constrained inference error %v not much smaller than naive %v", errWith, errWithout)
	}
}

func TestPrivateSequenceFromDegreesPanics(t *testing.T) {
	rng := dp.NewRand(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero epsilon did not panic")
			}
		}()
		PrivateSequenceFromDegrees(rng, []int{1, 2}, 2, 0, DefaultOptions())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("n < len(degs) did not panic")
			}
		}()
		PrivateSequenceFromDegrees(rng, []int{1, 2, 3}, 2, 1, DefaultOptions())
	}()
}

func TestSequenceSumAndImpliedEdges(t *testing.T) {
	seq := []int{1, 1, 2, 2, 4}
	if SequenceSum(seq) != 10 {
		t.Fatalf("SequenceSum = %d, want 10", SequenceSum(seq))
	}
	if ImpliedEdges(seq) != 5 {
		t.Fatalf("ImpliedEdges = %d, want 5", ImpliedEdges(seq))
	}
	if ImpliedEdges([]int{1, 2}) != 1 {
		t.Fatalf("ImpliedEdges odd sum should floor")
	}
	if ImpliedEdges(nil) != 0 {
		t.Fatal("ImpliedEdges(nil) != 0")
	}
}

// Property: output of the default estimator is always a sorted sequence of
// integers in [0, n-1], for random degree multisets.
func TestPrivateSequenceValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		degs := make([]int, n)
		for i := range degs {
			degs[i] = rng.Intn(n)
		}
		est := PrivateSequenceFromDegrees(dp.NewRand(seed), degs, n, 0.5, DefaultOptions())
		prev := -1.0
		for _, v := range est {
			if v < 0 || v > float64(n-1) || v != math.Trunc(v) || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
