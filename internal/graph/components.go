package graph

// connectedComponents is the shared BFS used by both Graph and Builder; row
// must return node u's neighbour list (sortedness is not required here).
// Components are returned in descending order of size.
func connectedComponents(n int, row func(u int) []int32) [][]int {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var components [][]int
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(components)
		comp[start] = id
		queue = queue[:0]
		queue = append(queue, start)
		members := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v32 := range row(u) {
				v := int(v32)
				if comp[v] < 0 {
					comp[v] = id
					members = append(members, v)
					queue = append(queue, v)
				}
			}
		}
		components = append(components, members)
	}
	// Sort components by descending size with a simple insertion-style pass to
	// keep the common case (one giant component plus tiny ones) cheap.
	for i := 1; i < len(components); i++ {
		j := i
		for j > 0 && len(components[j]) > len(components[j-1]) {
			components[j], components[j-1] = components[j-1], components[j]
			j--
		}
	}
	return components
}

// orphanedNodes is the shared implementation of OrphanedNodes.
func orphanedNodes(n int, row func(u int) []int32) []int {
	if n == 0 {
		return nil
	}
	comps := connectedComponents(n, row)
	inMain := make([]bool, n)
	for _, v := range comps[0] {
		inMain[v] = true
	}
	var orphans []int
	for i := 0; i < n; i++ {
		if !inMain[i] {
			orphans = append(orphans, i)
		}
	}
	return orphans
}

// ConnectedComponents returns the node sets of the connected components of the
// graph. Components are returned in descending order of size; singleton nodes
// form their own components.
func (g *Graph) ConnectedComponents() [][]int {
	return connectedComponents(len(g.attrs), g.row)
}

// LargestComponent returns the node IDs of the largest connected component.
// For an empty graph it returns an empty slice.
func (g *Graph) LargestComponent() []int {
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}

// IsConnected reports whether the graph consists of a single connected
// component (the empty graph and the single-node graph are connected).
func (g *Graph) IsConnected() bool {
	if len(g.attrs) <= 1 {
		return true
	}
	return len(g.LargestComponent()) == len(g.attrs)
}

// OrphanedNodes returns all nodes that are not part of the largest connected
// component. This is the notion of "orphaned" used by the TriCycLe
// post-processing step (Algorithm 2 of the paper): the input graph is assumed
// connected, so any node outside the main component of a synthetic graph is an
// orphan, including isolated nodes and nodes in small satellite components.
func (g *Graph) OrphanedNodes() []int {
	return orphanedNodes(len(g.attrs), g.row)
}

// InducedSubgraph returns the subgraph induced by the given node set, together
// with a mapping from new node IDs (0..len(nodes)-1) to the original node IDs.
// Attribute vectors are carried over. Duplicate node IDs in the input are
// collapsed.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	newID := make(map[int]int, len(nodes))
	orig := make([]int, 0, len(nodes))
	for _, v := range nodes {
		g.validNode(v)
		if _, ok := newID[v]; ok {
			continue
		}
		newID[v] = len(orig)
		orig = append(orig, v)
	}
	var edges []Edge
	vecs := make([]AttrVector, len(orig))
	for id, v := range orig {
		vecs[id] = g.attrs[v]
		for _, u32 := range g.row(v) {
			if idU, ok := newID[int(u32)]; ok && id < idU {
				edges = append(edges, Edge{U: id, V: idU})
			}
		}
	}
	sub := FromEdges(len(orig), g.w, edges).WithAttributes(g.w, vecs)
	return sub, orig
}

// RelabelToLargestComponent returns a new graph containing only the largest
// connected component, with node IDs compacted to 0..k-1, plus the mapping
// back to original IDs. This mirrors the paper's preprocessing, which keeps
// only the main connected component of each dataset.
func (g *Graph) RelabelToLargestComponent() (*Graph, []int) {
	return g.InducedSubgraph(g.LargestComponent())
}
