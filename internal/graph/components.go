package graph

// ConnectedComponents returns the node sets of the connected components of the
// graph. Components are returned in descending order of size; singleton nodes
// form their own components.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var components [][]int
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(components)
		comp[start] = id
		queue = queue[:0]
		queue = append(queue, start)
		members := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = id
					members = append(members, v)
					queue = append(queue, v)
				}
			}
		}
		components = append(components, members)
	}
	// Sort components by descending size with a simple insertion-style pass to
	// keep the common case (one giant component plus tiny ones) cheap.
	for i := 1; i < len(components); i++ {
		j := i
		for j > 0 && len(components[j]) > len(components[j-1]) {
			components[j], components[j-1] = components[j-1], components[j]
			j--
		}
	}
	return components
}

// LargestComponent returns the node IDs of the largest connected component.
// For an empty graph it returns an empty slice.
func (g *Graph) LargestComponent() []int {
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}

// IsConnected reports whether the graph consists of a single connected
// component (the empty graph and the single-node graph are connected).
func (g *Graph) IsConnected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	return len(g.LargestComponent()) == len(g.adj)
}

// OrphanedNodes returns all nodes that are not part of the largest connected
// component. This is the notion of "orphaned" used by the TriCycLe
// post-processing step (Algorithm 2 of the paper): the input graph is assumed
// connected, so any node outside the main component of a synthetic graph is an
// orphan, including isolated nodes and nodes in small satellite components.
func (g *Graph) OrphanedNodes() []int {
	if len(g.adj) == 0 {
		return nil
	}
	main := g.LargestComponent()
	inMain := make([]bool, len(g.adj))
	for _, v := range main {
		inMain[v] = true
	}
	var orphans []int
	for i := range g.adj {
		if !inMain[i] {
			orphans = append(orphans, i)
		}
	}
	return orphans
}

// InducedSubgraph returns the subgraph induced by the given node set, together
// with a mapping from new node IDs (0..len(nodes)-1) to the original node IDs.
// Attribute vectors are carried over. Duplicate node IDs in the input are
// collapsed.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	seen := make(map[int]int, len(nodes))
	orig := make([]int, 0, len(nodes))
	for _, v := range nodes {
		g.validNode(v)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = len(orig)
		orig = append(orig, v)
	}
	sub := New(len(orig), g.w)
	for newID, v := range orig {
		sub.SetAttr(newID, g.attrs[v])
		for u := range g.adj[v] {
			if newU, ok := seen[u]; ok && newID < newU {
				sub.AddEdge(newID, newU)
			}
		}
	}
	return sub, orig
}

// RelabelToLargestComponent returns a new graph containing only the largest
// connected component, with node IDs compacted to 0..k-1, plus the mapping
// back to original IDs. This mirrors the paper's preprocessing, which keeps
// only the main connected component of each dataset.
func (g *Graph) RelabelToLargestComponent() (*Graph, []int) {
	return g.InducedSubgraph(g.LargestComponent())
}
