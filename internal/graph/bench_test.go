package graph_test

// Benchmarks for the CSR refactor, each paired with its pre-refactor
// map-adjacency baseline (mapAdjGraph, in reference_test.go) so the speedup
// is measured inside one binary on identical inputs. The shared fixture is a
// 10k-node Chung–Lu graph with a heavy-tailed degree sequence, the workload
// the paper's pipeline actually runs on. scripts/bench.sh records the results
// in BENCH_pr2.json.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/structural"
	"agmdp/internal/triangles"
)

const benchNodes = 10000

var (
	benchOnce  sync.Once
	benchCSR   *graph.Graph
	benchMap   *mapAdjGraph
	benchEdges []graph.Edge
)

// benchDegrees returns a heavy-tailed (Pareto-ish, α ≈ 2) degree sequence
// with an even sum, the shape Chung–Lu models are used with.
func benchDegrees(rng *rand.Rand, n, maxDeg int) []int {
	degs := make([]int, n)
	total := 0
	for i := range degs {
		u := rng.Float64()
		d := int(math.Ceil(1 / (1 - u*(1-1/float64(maxDeg)))))
		if d > maxDeg {
			d = maxDeg
		}
		degs[i] = d
		total += d
	}
	if total%2 == 1 {
		degs[0]++
	}
	return degs
}

// benchFixture lazily builds the shared 10k-node Chung–Lu graph in CSR form,
// its edge list, and the equivalent map-adjacency graph.
func benchFixture() (*graph.Graph, *mapAdjGraph, []graph.Edge) {
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(1))
		degs := benchDegrees(rng, benchNodes, 300)
		sampler := structural.NewNodeSampler(degs, nil)
		target := 0
		for _, d := range degs {
			target += d
		}
		target /= 2
		benchCSR = structural.GenerateCL(rng, benchNodes, sampler, target, nil)
		benchEdges = benchCSR.Edges()
		benchMap = newMapAdjGraph(benchNodes, 0)
		for _, e := range benchEdges {
			benchMap.addEdge(e.U, e.V)
		}
	})
	return benchCSR, benchMap, benchEdges
}

func BenchmarkBuildBuilderFinalize(b *testing.B) {
	_, _, edges := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := graph.NewBuilder(benchNodes, 0)
		for _, e := range edges {
			bl.AddEdge(e.U, e.V)
		}
		if bl.Finalize().NumEdges() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
}

func BenchmarkBuildFromEdges(b *testing.B) {
	_, _, edges := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if graph.FromEdges(benchNodes, 0, edges).NumEdges() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
}

func BenchmarkBuildMapBaseline(b *testing.B) {
	_, _, edges := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := newMapAdjGraph(benchNodes, 0)
		for _, e := range edges {
			m.addEdge(e.U, e.V)
		}
		if m.m != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
}

func BenchmarkTrianglesCSR(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Triangles()
	}
}

func BenchmarkTrianglesMapBaseline(b *testing.B) {
	_, m, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.triangles()
	}
}

func BenchmarkMaxCommonNeighborsCSR(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = triangles.MaxCommonNeighbors(g)
	}
}

func BenchmarkMaxCommonNeighborsMapBaseline(b *testing.B) {
	_, m, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.maxCommonNeighbors()
	}
}

func BenchmarkHasEdgeCSR(b *testing.B) {
	g, _, edges := benchFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if !g.HasEdge(e.U, e.V) {
			b.Fatal("edge missing")
		}
	}
}

// BenchmarkGenerateCLParallel measures the end-to-end Chung–Lu generation
// path — proposal streams, dedup, CSR packing — at several worker counts.
// On a single-core host the variants coincide; the parallel win shows on
// multi-core hardware.
func BenchmarkGenerateCLParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	degs := benchDegrees(rng, benchNodes, 300)
	sampler := structural.NewNodeSampler(degs, nil)
	target := 0
	for _, d := range degs {
		target += d
	}
	target /= 2
	for _, workers := range []int{1, 4} {
		name := "workers=1"
		if workers > 1 {
			name = "workers=4"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := structural.GenerateCLParallel(rand.New(rand.NewSource(int64(i))), benchNodes, sampler, target, nil, workers)
				if g.NumEdges() == 0 {
					b.Fatal("no edges generated")
				}
			}
		})
	}
}
