package graph_test

// Codec benchmarks: the binary CSR snapshot (binary.go) against the
// line-oriented "agmdp graph" text format (io.go), on a heavy-tailed
// Chung–Lu graph with well over 100k edges — the service-restart and
// wire-transfer workload the graph store runs. scripts/bench.sh records the
// read/write ratios in BENCH_pr4.json.

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/structural"
)

const ioBenchNodes = 30000

var (
	ioBenchOnce   sync.Once
	ioBenchGraph  *graph.Graph
	ioBenchText   []byte
	ioBenchBinary []byte
)

// ioBenchFixture lazily builds a 30k-node heavy-tailed graph (≥100k edges,
// 2 attributes) and its text and binary encodings.
func ioBenchFixture(tb testing.TB) (*graph.Graph, []byte, []byte) {
	ioBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(5))
		degs := benchDegrees(rng, ioBenchNodes, 400)
		total := 0
		for i := range degs {
			degs[i] += 6 // lift the average degree so m clears 100k
			total += degs[i]
		}
		sampler := structural.NewNodeSampler(degs, nil)
		g := structural.GenerateCL(rng, ioBenchNodes, sampler, total/2, nil)
		attrs := make([]graph.AttrVector, g.NumNodes())
		for i := range attrs {
			attrs[i] = graph.AttrVector(rng.Uint64() & 3)
		}
		ioBenchGraph = g.WithAttributes(2, attrs)

		var text bytes.Buffer
		if err := ioBenchGraph.WriteGraph(&text); err != nil {
			panic(err)
		}
		ioBenchText = text.Bytes()
		var bin bytes.Buffer
		if err := ioBenchGraph.WriteBinary(&bin); err != nil {
			panic(err)
		}
		ioBenchBinary = bin.Bytes()
	})
	if ioBenchGraph.NumEdges() < 100_000 {
		tb.Fatalf("IO bench fixture has only %d edges, want >= 100k", ioBenchGraph.NumEdges())
	}
	return ioBenchGraph, ioBenchText, ioBenchBinary
}

func BenchmarkWriteGraphText(b *testing.B) {
	g, text, _ := ioBenchFixture(b)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.WriteGraph(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteGraphBinary(b *testing.B) {
	g, _, bin := ioBenchFixture(b)
	b.SetBytes(int64(len(bin)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.WriteBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadGraphText(b *testing.B) {
	_, text, _ := ioBenchFixture(b)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.ReadGraph(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadGraphBinary(b *testing.B) {
	_, _, bin := ioBenchFixture(b)
	b.SetBytes(int64(len(bin)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.ReadBinary(bytes.NewReader(bin)); err != nil {
			b.Fatal(err)
		}
	}
}
