package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := buildTriangleWithTail()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d nodes/%d edges, want %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	g.ForEachEdge(func(u, v int) bool {
		if !back.HasEdge(u, v) {
			t.Fatalf("edge {%d,%d} lost in round trip", u, v)
		}
		return true
	})
}

func TestReadEdgeListSkipsCommentsAndBlankLines(t *testing.T) {
	in := "# comment\n% another comment\n\n0 1\n1 2 extra-ignored\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes / %d edges, want 3 / 2", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"single field", "0\n"},
		{"non numeric", "a b\n"},
		{"negative id", "-1 2\n"},
		{"non numeric second", "1 x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("ReadEdgeList(%q) succeeded, want error", tc.input)
			}
		})
	}
}

func TestGraphFormatRoundTripPreservesAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 0.1, 2)
	var buf bytes.Buffer
	if err := g.WriteGraph(&buf); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if !g.Equal(back) {
		t.Fatal("graph format round trip lost information")
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"missing header", "edge 0 1\n"},
		{"bad node count", "nodes x\nattrs 1\n"},
		{"bad attr width", "nodes 2\nattrs 99\n"},
		{"node id out of range", "nodes 2\nattrs 1\nnode 5 1\n"},
		{"wrong attr arity", "nodes 2\nattrs 2\nnode 0 1\n"},
		{"attr bit not binary", "nodes 2\nattrs 1\nnode 0 7\n"},
		{"edge out of range", "nodes 2\nattrs 0\nedge 0 9\n"},
		{"unknown directive", "nodes 2\nattrs 0\nfoo 1 2\n"},
		{"malformed edge", "nodes 2\nattrs 0\nedge 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadGraph(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("ReadGraph(%q) succeeded, want error", tc.input)
			}
		})
	}
}

func TestReadGraphHeaderOnly(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("nodes 3\nattrs 1\n"))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 0 || g.NumAttributes() != 1 {
		t.Fatalf("header-only graph = %d nodes / %d edges / %d attrs", g.NumNodes(), g.NumEdges(), g.NumAttributes())
	}
	if _, err := ReadGraph(strings.NewReader("# just a comment\n")); err == nil {
		t.Fatal("ReadGraph with no header should fail")
	}
}

func TestSaveAndLoadGraphFiles(t *testing.T) {
	dir := t.TempDir()
	b := buildTriangleWithTailB()
	b.SetAttr(1, 2)
	g := b.Finalize()
	p := filepath.Join(dir, "g.txt")
	if err := SaveGraph(g, p); err != nil {
		t.Fatalf("SaveGraph: %v", err)
	}
	back, err := LoadGraph(p)
	if err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	if !g.Equal(back) {
		t.Fatal("SaveGraph/LoadGraph round trip lost information")
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("LoadGraph on a missing file should fail")
	}
}

func TestLoadEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "edges.txt")
	g := complete(4)
	writeEdges := func() error {
		file, err := os.Create(p)
		if err != nil {
			return err
		}
		defer file.Close()
		return g.WriteEdgeList(file)
	}
	if err := writeEdges(); err != nil {
		t.Fatalf("writing edge list: %v", err)
	}
	back, err := LoadEdgeList(p)
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if back.NumEdges() != 6 {
		t.Fatalf("LoadEdgeList edges = %d, want 6", back.NumEdges())
	}
	if _, err := LoadEdgeList(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("LoadEdgeList on a missing file should fail")
	}
}
