package graph

import "fmt"

// RowSource is the read-only row-range view the streaming pipeline is built
// on: anything that can report graph dimensions and hand out one sorted CSR
// row at a time. Both the immutable Graph and the mutable Builder implement
// it, so encoders can serialise a sampled graph straight out of the
// generator's builder — row by row, without ever materialising the
// concatenated CSR arrays — and the same code path serves already-frozen
// graphs.
//
// The contract mirrors the CSR invariants: rows are sorted, strictly
// increasing, self-loop free and symmetric, and the sum of RowDegree over all
// rows is 2·NumEdges. A Builder being streamed must not be mutated until the
// consumer is done with it.
type RowSource interface {
	// NumNodes, NumEdges and NumAttributes are the graph dimensions (n, m, w).
	NumNodes() int
	NumEdges() int
	NumAttributes() int
	// RowDegree returns the degree of node u without materialising the row.
	RowDegree(u int) int
	// AppendRow appends node u's sorted neighbour row to dst and returns the
	// extended slice, exactly len = RowDegree(u) entries.
	AppendRow(dst []int32, u int) []int32
	// RowAttr returns node u's attribute vector, masked to the source width.
	RowAttr(u int) AttrVector
}

// RowDegree returns the degree of node u. Part of the RowSource contract.
func (g *Graph) RowDegree(u int) int { return int(g.offsets[u+1] - g.offsets[u]) }

// AppendRow appends node u's sorted neighbour row to dst.
func (g *Graph) AppendRow(dst []int32, u int) []int32 { return append(dst, g.row(u)...) }

// RowAttr returns node u's attribute vector.
func (g *Graph) RowAttr(u int) AttrVector { return g.attrs[u] }

// RowDegree returns the degree of node u. Part of the RowSource contract.
func (b *Builder) RowDegree(u int) int { return len(b.rows[u]) }

// AppendRow appends node u's sorted neighbour row to dst.
func (b *Builder) AppendRow(dst []int32, u int) []int32 { return append(dst, b.rows[u]...) }

// RowAttr returns node u's attribute vector.
func (b *Builder) RowAttr(u int) AttrVector { return b.attrs[u] }

// attrSource overlays attribute vectors on another source's topology — the
// streaming analogue of Graph.WithAttributes. It holds only a reference to
// the vectors, so attaching sampled attributes to an unfinalized builder is
// O(1) and allocation free.
type attrSource struct {
	src  RowSource
	w    int
	vecs []AttrVector
}

// SourceWithAttributes returns a RowSource sharing src's topology but
// reporting attribute width w and the given vectors (bits above w are
// cleared on read). It panics if len(vecs) differs from the node count,
// matching Graph.WithAttributes.
func SourceWithAttributes(src RowSource, w int, vecs []AttrVector) RowSource {
	checkDims(src.NumNodes(), w)
	if len(vecs) != src.NumNodes() {
		panic(fmt.Sprintf("graph: %d attribute vectors for %d nodes", len(vecs), src.NumNodes()))
	}
	return &attrSource{src: src, w: w, vecs: vecs}
}

func (s *attrSource) NumNodes() int                        { return s.src.NumNodes() }
func (s *attrSource) NumEdges() int                        { return s.src.NumEdges() }
func (s *attrSource) NumAttributes() int                   { return s.w }
func (s *attrSource) RowDegree(u int) int                  { return s.src.RowDegree(u) }
func (s *attrSource) AppendRow(dst []int32, u int) []int32 { return s.src.AppendRow(dst, u) }
func (s *attrSource) RowAttr(u int) AttrVector             { return s.vecs[u].maskWidth(s.w) }

// Materialize freezes a RowSource into an immutable Graph. Graphs pass
// through unchanged, builders finalize, and attribute overlays materialise
// their inner source and re-attach — so for the sources produced by the
// sampling pipeline the result is byte-identical to the eagerly
// materialised path. Arbitrary sources are packed row by row.
func Materialize(src RowSource) *Graph {
	switch s := src.(type) {
	case *Graph:
		return s
	case *Builder:
		return s.Finalize()
	case *attrSource:
		return Materialize(s.src).WithAttributes(s.w, s.vecs)
	}
	n, w := src.NumNodes(), src.NumAttributes()
	checkDims(n, w)
	g := &Graph{
		w:       w,
		m:       src.NumEdges(),
		offsets: make([]int64, n+1),
		attrs:   make([]AttrVector, n),
	}
	for u := 0; u < n; u++ {
		g.offsets[u+1] = g.offsets[u] + int64(src.RowDegree(u))
		g.attrs[u] = src.RowAttr(u).maskWidth(w)
	}
	g.neighbors = make([]int32, 0, g.offsets[n])
	for u := 0; u < n; u++ {
		g.neighbors = src.AppendRow(g.neighbors, u)
	}
	return g
}

// SourceBinarySize returns the exact monolithic binary snapshot length of the
// source's graph in bytes — what WriteBinaryTo will produce — so servers can
// set Content-Length before streaming the first row.
func SourceBinarySize(src RowSource) int64 {
	n := int64(src.NumNodes())
	size := int64(binaryHeaderSize) + (n+1)*8 + int64(2*src.NumEdges())*4
	if src.NumAttributes() > 0 {
		size += n * 8
	}
	return size
}
