package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTriangleWithTail returns the 5-node graph
//
//	0-1, 1-2, 2-0 (a triangle), 2-3, 3-4 (a tail)
//
// used by several tests.
func buildTriangleWithTail() *Graph {
	g := New(5, 2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	return g
}

// randomGraph returns an Erdős–Rényi style random graph used as fuzz input.
func randomGraph(rng *rand.Rand, n int, p float64, w int) *Graph {
	g := New(n, w)
	for i := 0; i < n; i++ {
		if w > 0 {
			g.SetAttr(i, AttrVector(rng.Uint64()))
		}
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestNewGraphEmpty(t *testing.T) {
	g := New(10, 3)
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.NumAttributes() != 3 {
		t.Fatalf("NumAttributes = %d, want 3", g.NumAttributes())
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 0 {
			t.Fatalf("Degree(%d) = %d, want 0", i, g.Degree(i))
		}
	}
}

func TestNewPanicsOnBadArguments(t *testing.T) {
	cases := []struct {
		name string
		n, w int
	}{
		{"negative nodes", -1, 0},
		{"negative attrs", 1, -1},
		{"too many attrs", 1, MaxAttributes + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d, %d) did not panic", tc.n, tc.w)
				}
			}()
			New(tc.n, tc.w)
		})
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3, 0)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false on first insertion")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = true on duplicate insertion")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("AddEdge(1,0) = true on reversed duplicate insertion")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("AddEdge(2,2) = true for a self loop")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge(0,2) = true for a missing edge")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := buildTriangleWithTail()
	before := g.NumEdges()
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) = false for an existing edge")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) = true for an already-removed edge")
	}
	if g.NumEdges() != before-1 {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), before-1)
	}
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge still present after removal")
	}
	if g.Degree(1) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees after removal = (%d,%d), want (1,2)", g.Degree(1), g.Degree(2))
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := buildTriangleWithTail()
	if got := g.Degree(2); got != 3 {
		t.Fatalf("Degree(2) = %d, want 3", got)
	}
	nb := g.Neighbors(2)
	want := []int{0, 1, 3}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v (sorted)", nb, want)
		}
	}
}

func TestForEachNeighborEarlyStop(t *testing.T) {
	g := buildTriangleWithTail()
	visits := 0
	g.ForEachNeighbor(2, func(int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("ForEachNeighbor visited %d neighbours after returning false, want 1", visits)
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	g := New(4, 2)
	g.SetAttr(0, 0)
	g.SetAttr(1, 1)
	g.SetAttr(2, 2)
	g.SetAttr(3, 3)
	for i := 0; i < 4; i++ {
		if got := g.Attr(i); got != AttrVector(i) {
			t.Fatalf("Attr(%d) = %d, want %d", i, got, i)
		}
	}
	// Bits above the declared width must be masked off.
	g.SetAttr(0, 0b1111)
	if got := g.Attr(0); got != 0b11 {
		t.Fatalf("Attr(0) = %b, want masked value 11", got)
	}
}

func TestAttrVectorBitHelpers(t *testing.T) {
	var a AttrVector
	a = a.WithBit(0, 1).WithBit(3, 1)
	if a != 0b1001 {
		t.Fatalf("WithBit composition = %b, want 1001", a)
	}
	if a.Bit(0) != 1 || a.Bit(1) != 0 || a.Bit(3) != 1 {
		t.Fatalf("Bit readback mismatch for %b", a)
	}
	a = a.WithBit(3, 0)
	if a != 0b0001 {
		t.Fatalf("WithBit clear = %b, want 0001", a)
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := buildTriangleWithTail()
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges returned %d edges, want %d", len(edges), g.NumEdges())
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %v not in canonical endpoint order", e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				t.Fatalf("edges out of canonical order: %v before %v", prev, e)
			}
		}
	}
}

func TestEdgeCanonical(t *testing.T) {
	e := Edge{U: 5, V: 2}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Canonical() = %v, want {2 5}", e)
	}
	e = Edge{U: 1, V: 4}.Canonical()
	if e.U != 1 || e.V != 4 {
		t.Fatalf("Canonical() = %v, want {1 4}", e)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildTriangleWithTail()
	g.SetAttr(0, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.AddEdge(0, 4)
	c.SetAttr(1, 1)
	if g.HasEdge(0, 4) {
		t.Fatal("mutating clone added edge to original")
	}
	if g.Attr(1) != 0 {
		t.Fatal("mutating clone changed original attributes")
	}
}

func TestCloneStructureClearsAttributes(t *testing.T) {
	g := buildTriangleWithTail()
	g.SetAttr(0, 3)
	g.SetAttr(4, 1)
	c := g.CloneStructure()
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("CloneStructure edges = %d, want %d", c.NumEdges(), g.NumEdges())
	}
	for i := 0; i < c.NumNodes(); i++ {
		if c.Attr(i) != 0 {
			t.Fatalf("CloneStructure kept attribute on node %d", i)
		}
	}
}

func TestFromEdgesDropsDuplicatesAndLoops(t *testing.T) {
	g := FromEdges(4, 1, []Edge{{0, 1}, {1, 0}, {2, 2}, {2, 3}})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) || g.HasEdge(2, 2) {
		t.Fatal("FromEdges produced wrong edge set")
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := buildTriangleWithTail()
	if got := g.CommonNeighbors(0, 1); got != 1 {
		t.Fatalf("CommonNeighbors(0,1) = %d, want 1", got)
	}
	if got := g.CommonNeighbors(0, 4); got != 0 {
		t.Fatalf("CommonNeighbors(0,4) = %d, want 0", got)
	}
	if got := g.CommonNeighbors(1, 3); got != 1 {
		t.Fatalf("CommonNeighbors(1,3) = %d, want 1 (node 2)", got)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := buildTriangleWithTail()
	b := buildTriangleWithTail()
	if !a.Equal(b) {
		t.Fatal("identical graphs not Equal")
	}
	b.SetAttr(0, 1)
	if a.Equal(b) {
		t.Fatal("Equal ignored attribute difference")
	}
	b = buildTriangleWithTail()
	b.RemoveEdge(3, 4)
	b.AddEdge(0, 4)
	if a.Equal(b) {
		t.Fatal("Equal ignored edge difference")
	}
}

func TestValidNodePanics(t *testing.T) {
	g := New(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Degree on out-of-range node did not panic")
		}
	}()
	g.Degree(5)
}

// Property: the handshake lemma holds for random graphs — the sum of degrees
// equals twice the edge count.
func TestHandshakeLemmaProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30+rng.Intn(40), 0.1, 2)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: adjacency is symmetric for random graphs.
func TestAdjacencySymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 25, 0.15, 0)
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEachEdge visits exactly NumEdges edges and each exactly once.
func TestForEachEdgeVisitsEachOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 0.1, 0)
		seen := make(map[Edge]bool)
		g.ForEachEdge(func(u, v int) bool {
			seen[Edge{u, v}.Canonical()] = true
			return true
		})
		return len(seen) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
