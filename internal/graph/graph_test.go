package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTriangleWithTailB returns a Builder holding the 5-node graph
//
//	0-1, 1-2, 2-0 (a triangle), 2-3, 3-4 (a tail)
//
// used by several tests.
func buildTriangleWithTailB() *Builder {
	b := NewBuilder(5, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	return b
}

// buildTriangleWithTail returns the finalized CSR form of the same graph.
func buildTriangleWithTail() *Graph {
	return buildTriangleWithTailB().Finalize()
}

// randomGraph returns an Erdős–Rényi style random graph used as fuzz input.
func randomGraph(rng *rand.Rand, n int, p float64, w int) *Graph {
	b := NewBuilder(n, w)
	for i := 0; i < n; i++ {
		if w > 0 {
			b.SetAttr(i, AttrVector(rng.Uint64()))
		}
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Finalize()
}

func TestNewGraphEmpty(t *testing.T) {
	g := New(10, 3)
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.NumAttributes() != 3 {
		t.Fatalf("NumAttributes = %d, want 3", g.NumAttributes())
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 0 {
			t.Fatalf("Degree(%d) = %d, want 0", i, g.Degree(i))
		}
	}
}

func TestNewPanicsOnBadArguments(t *testing.T) {
	cases := []struct {
		name string
		n, w int
	}{
		{"negative nodes", -1, 0},
		{"negative attrs", 1, -1},
		{"too many attrs", 1, MaxAttributes + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d, %d) did not panic", tc.n, tc.w)
				}
			}()
			New(tc.n, tc.w)
		})
		t.Run(tc.name+" builder", func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBuilder(%d, %d) did not panic", tc.n, tc.w)
				}
			}()
			NewBuilder(tc.n, tc.w)
		})
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := buildTriangleWithTail()
	if got := g.Degree(2); got != 3 {
		t.Fatalf("Degree(2) = %d, want 3", got)
	}
	nb := g.Neighbors(2)
	want := []int{0, 1, 3}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v (sorted)", nb, want)
		}
	}
	view := g.NeighborsView(2)
	if len(view) != len(want) {
		t.Fatalf("NeighborsView(2) = %v, want %v", view, want)
	}
	for i := range want {
		if int(view[i]) != want[i] {
			t.Fatalf("NeighborsView(2) = %v, want %v (sorted)", view, want)
		}
	}
}

func TestHasEdgeOnGraph(t *testing.T) {
	g := buildTriangleWithTail()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("HasEdge(0,4) = true for a missing edge")
	}
	if g.HasEdge(3, 3) {
		t.Fatal("HasEdge(3,3) = true for a self loop")
	}
}

func TestForEachNeighborEarlyStop(t *testing.T) {
	g := buildTriangleWithTail()
	visits := 0
	g.ForEachNeighbor(2, func(int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("ForEachNeighbor visited %d neighbours after returning false, want 1", visits)
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	b := NewBuilder(4, 2)
	b.SetAttr(0, 0)
	b.SetAttr(1, 1)
	b.SetAttr(2, 2)
	b.SetAttr(3, 3)
	g := b.Finalize()
	for i := 0; i < 4; i++ {
		if got := g.Attr(i); got != AttrVector(i) {
			t.Fatalf("Attr(%d) = %d, want %d", i, got, i)
		}
	}
	// Bits above the declared width must be masked off.
	b.SetAttr(0, 0b1111)
	if got := b.Finalize().Attr(0); got != 0b11 {
		t.Fatalf("Attr(0) = %b, want masked value 11", got)
	}
}

func TestWithAttributes(t *testing.T) {
	g := buildTriangleWithTail()
	vecs := []AttrVector{0b111, 1, 2, 3, 0}
	h := g.WithAttributes(2, vecs)
	if h.NumEdges() != g.NumEdges() || h.NumNodes() != g.NumNodes() {
		t.Fatal("WithAttributes changed the topology")
	}
	if h.Attr(0) != 0b11 {
		t.Fatalf("Attr(0) = %b, want masked 11", h.Attr(0))
	}
	if h.Attr(3) != 3 {
		t.Fatalf("Attr(3) = %d, want 3", h.Attr(3))
	}
	// The receiver keeps its own attributes.
	if g.Attr(0) != 0 {
		t.Fatal("WithAttributes mutated the receiver")
	}
	// Mutating the caller's slice afterwards must not leak into the graph.
	vecs[1] = 0b10
	if h.Attr(1) != 1 {
		t.Fatal("WithAttributes aliased the caller's slice")
	}
}

func TestAttrVectorBitHelpers(t *testing.T) {
	var a AttrVector
	a = a.WithBit(0, 1).WithBit(3, 1)
	if a != 0b1001 {
		t.Fatalf("WithBit composition = %b, want 1001", a)
	}
	if a.Bit(0) != 1 || a.Bit(1) != 0 || a.Bit(3) != 1 {
		t.Fatalf("Bit readback mismatch for %b", a)
	}
	a = a.WithBit(3, 0)
	if a != 0b0001 {
		t.Fatalf("WithBit clear = %b, want 0001", a)
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := buildTriangleWithTail()
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges returned %d edges, want %d", len(edges), g.NumEdges())
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %v not in canonical endpoint order", e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				t.Fatalf("edges out of canonical order: %v before %v", prev, e)
			}
		}
	}
}

func TestEdgeCanonical(t *testing.T) {
	e := Edge{U: 5, V: 2}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Canonical() = %v, want {2 5}", e)
	}
	e = Edge{U: 1, V: 4}.Canonical()
	if e.U != 1 || e.V != 4 {
		t.Fatalf("Canonical() = %v, want {1 4}", e)
	}
}

func TestFinalizedGraphImmuneToBuilderMutation(t *testing.T) {
	b := buildTriangleWithTailB()
	b.SetAttr(0, 3)
	g := b.Finalize()
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	// Keep mutating the builder: the finalized graph must not change.
	b.AddEdge(0, 4)
	b.SetAttr(1, 1)
	b.RemoveEdge(0, 1)
	if g.HasEdge(0, 4) {
		t.Fatal("builder mutation added an edge to a finalized graph")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("builder mutation removed an edge from a finalized graph")
	}
	if g.Attr(1) != 0 {
		t.Fatal("builder mutation changed a finalized graph's attributes")
	}
	if !g.Equal(c) {
		t.Fatal("clone diverged from original after builder mutation")
	}
}

func TestCloneStructureClearsAttributes(t *testing.T) {
	b := buildTriangleWithTailB()
	b.SetAttr(0, 3)
	b.SetAttr(4, 1)
	g := b.Finalize()
	c := g.CloneStructure()
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("CloneStructure edges = %d, want %d", c.NumEdges(), g.NumEdges())
	}
	for i := 0; i < c.NumNodes(); i++ {
		if c.Attr(i) != 0 {
			t.Fatalf("CloneStructure kept attribute on node %d", i)
		}
	}
}

func TestFromEdgesDropsDuplicatesAndLoops(t *testing.T) {
	g := FromEdges(4, 1, []Edge{{0, 1}, {1, 0}, {2, 2}, {2, 3}})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) || g.HasEdge(2, 2) {
		t.Fatal("FromEdges produced wrong edge set")
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := buildTriangleWithTail()
	if got := g.CommonNeighbors(0, 1); got != 1 {
		t.Fatalf("CommonNeighbors(0,1) = %d, want 1", got)
	}
	if got := g.CommonNeighbors(0, 4); got != 0 {
		t.Fatalf("CommonNeighbors(0,4) = %d, want 0", got)
	}
	if got := g.CommonNeighbors(1, 3); got != 1 {
		t.Fatalf("CommonNeighbors(1,3) = %d, want 1 (node 2)", got)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := buildTriangleWithTail()
	if !a.Equal(buildTriangleWithTail()) {
		t.Fatal("identical graphs not Equal")
	}
	b := buildTriangleWithTailB()
	b.SetAttr(0, 1)
	if a.Equal(b.Finalize()) {
		t.Fatal("Equal ignored attribute difference")
	}
	b = buildTriangleWithTailB()
	b.RemoveEdge(3, 4)
	b.AddEdge(0, 4)
	if a.Equal(b.Finalize()) {
		t.Fatal("Equal ignored edge difference")
	}
}

func TestValidNodePanics(t *testing.T) {
	g := New(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Degree on out-of-range node did not panic")
		}
	}()
	g.Degree(5)
}

// Property: the handshake lemma holds for random graphs — the sum of degrees
// equals twice the edge count.
func TestHandshakeLemmaProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30+rng.Intn(40), 0.1, 2)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: adjacency is symmetric for random graphs.
func TestAdjacencySymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 25, 0.15, 0)
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEachEdge visits exactly NumEdges edges and each exactly once.
func TestForEachEdgeVisitsEachOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 0.1, 0)
		seen := make(map[Edge]bool)
		g.ForEachEdge(func(u, v int) bool {
			seen[Edge{u, v}.Canonical()] = true
			return true
		})
		return len(seen) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: FromEdges and FromEdgesBuilder agree with incremental Builder
// construction on the same (possibly messy) edge list, and the pre-populated
// builder remains fully mutable.
func TestFromEdgesMatchesBuilderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(20)
		edges := make([]Edge, 60)
		for i := range edges {
			edges[i] = Edge{U: rng.Intn(n), V: rng.Intn(n)}
		}
		b := NewBuilder(n, 0)
		for _, e := range edges {
			b.AddEdge(e.U, e.V)
		}
		g := b.Finalize()
		if !g.Equal(FromEdges(n, 0, edges)) {
			return false
		}
		bulk := FromEdgesBuilder(n, 0, edges)
		if !bulk.Finalize().Equal(g) {
			return false
		}
		// The bulk builder must keep working as a normal builder.
		u, v := rng.Intn(n), rng.Intn(n)
		had := bulk.HasEdge(u, v)
		if u != v {
			if had {
				bulk.RemoveEdge(u, v)
			} else {
				bulk.AddEdge(u, v)
			}
			if bulk.HasEdge(u, v) == had {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
