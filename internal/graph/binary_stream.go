package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// streamEncoder stages little-endian values in a bounded buffer in front of a
// bufio.Writer, so per-entry encoding costs an array store instead of a
// bufio call. Errors are sticky.
type streamEncoder struct {
	bw  *bufio.Writer
	buf [8 * binaryChunkEntries]byte
	n   int
	err error
}

func (e *streamEncoder) flush() {
	if e.err == nil && e.n > 0 {
		_, e.err = e.bw.Write(e.buf[:e.n])
	}
	e.n = 0
}

func (e *streamEncoder) u64(v uint64) {
	if e.n+8 > len(e.buf) {
		e.flush()
	}
	binary.LittleEndian.PutUint64(e.buf[e.n:], v)
	e.n += 8
}

func (e *streamEncoder) u32(v uint32) {
	if e.n+4 > len(e.buf) {
		e.flush()
	}
	binary.LittleEndian.PutUint32(e.buf[e.n:], v)
	e.n += 4
}

// putBinaryHeader encodes the fixed monolithic snapshot header.
func putBinaryHeader(hdr []byte, n, m, w int) {
	copy(hdr[0:8], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], binaryVersion)
	var flags uint32
	if w > 0 {
		flags |= flagAttrs
	}
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(w))
	// hdr[20:24] is the reserved word, zero.
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(n))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(m))
}

// WriteBinaryTo writes the source's graph as a monolithic binary CSR snapshot
// (the exact bytes Graph.WriteBinary emits for the materialised graph — the
// format is canonical, so the two paths are byte-identical). Unlike
// WriteBinary it never needs the concatenated CSR arrays: it makes three row
// passes over the source (offsets, neighbour rows, attrs) holding only one
// row plus a bounded staging buffer, which is what lets a sampled graph
// stream from the generator's builder straight to the socket in O(row)
// memory beyond the builder itself.
func WriteBinaryTo(w io.Writer, src RowSource) error {
	n, m, aw := src.NumNodes(), src.NumEdges(), src.NumAttributes()
	checkDims(n, aw)
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [binaryHeaderSize]byte
	putBinaryHeader(hdr[:], n, m, aw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: writing binary header: %w", err)
	}
	enc := &streamEncoder{bw: bw}
	var off int64
	enc.u64(0)
	for u := 0; u < n; u++ {
		off += int64(src.RowDegree(u))
		enc.u64(uint64(off))
	}
	if off != int64(2*m) {
		return fmt.Errorf("graph: row source degrees sum to %d, want %d (= 2m)", off, 2*m)
	}
	row := make([]int32, 0, binaryChunkEntries)
	for u := 0; u < n; u++ {
		row = src.AppendRow(row[:0], u)
		for _, v := range row {
			enc.u32(uint32(v))
		}
	}
	if aw > 0 {
		for u := 0; u < n; u++ {
			enc.u64(uint64(src.RowAttr(u)))
		}
	}
	enc.flush()
	if enc.err != nil {
		return fmt.Errorf("graph: writing binary snapshot: %w", enc.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: writing binary snapshot: %w", err)
	}
	return nil
}
