package graph_test

// Paired sequential-vs-parallel benchmarks for the sharded analytics (PR 3),
// run on the shared 10k-node Chung–Lu fixture. The *Sequential variants pin
// one worker; the *Parallel variants use the process default (GOMAXPROCS), so
// the pairs measure the worker-pool speedup on the benchmarking host.
// scripts/bench.sh records the ratios in BENCH_pr3.json; on a single-core
// container the ratio is ≈ 1 by construction (see the JSON's notes).

import (
	"testing"
)

func BenchmarkTrianglesSequential(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.TrianglesWith(1)
	}
}

func BenchmarkTrianglesParallel(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.TrianglesWith(0)
	}
}

func BenchmarkLocalClusteringAllSequential(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.LocalClusteringAllWith(1)
	}
}

func BenchmarkLocalClusteringAllParallel(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.LocalClusteringAllWith(0)
	}
}

func BenchmarkSummarizeSequential(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SummarizeWith(1)
	}
}

func BenchmarkSummarizeParallel(b *testing.B) {
	g, _, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SummarizeWith(0)
	}
}
