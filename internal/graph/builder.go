package graph

import (
	"fmt"
	"sort"
)

// Builder is the mutable construction phase of a Graph. It keeps adjacency as
// per-node sorted int32 slices, which makes every operation deterministic (no
// map iteration anywhere), keeps neighbour scans cache-friendly during
// generation, and lets Finalize pack the rows into CSR form with a single
// concatenation.
//
// A Builder supports the full mutation surface of the pre-CSR Graph (AddEdge,
// RemoveEdge, SetAttr) plus the read queries the structural generators need
// while rewiring (HasEdge, Degree, Neighbors, CommonNeighbors, Triangles,
// OrphanedNodes). It is not safe for concurrent use. Finalize does not
// invalidate the Builder: it copies, so a Builder can be finalized repeatedly
// at different construction stages.
type Builder struct {
	w     int
	m     int
	rows  [][]int32
	attrs []AttrVector
}

// NewBuilder returns a Builder for a graph with n nodes, no edges and w binary
// attributes per node. It panics if n < 0 or w is outside [0, MaxAttributes].
func NewBuilder(n, w int) *Builder {
	checkDims(n, w)
	return &Builder{
		w:     w,
		rows:  make([][]int32, n),
		attrs: make([]AttrVector, n),
	}
}

// Builder returns a mutable copy of the graph: same nodes, edges and
// attributes. Mutating the Builder never affects the source graph.
func (g *Graph) Builder() *Builder {
	b := &Builder{
		w:     g.w,
		m:     g.m,
		rows:  make([][]int32, len(g.attrs)),
		attrs: make([]AttrVector, len(g.attrs)),
	}
	copy(b.attrs, g.attrs)
	for i := range b.rows {
		row := g.row(i)
		b.rows[i] = append(make([]int32, 0, len(row)), row...)
	}
	return b
}

// FromEdgesBuilder returns a Builder pre-populated from an edge list, using
// the same canonicalise-sort-dedup pass as FromEdges but landing in mutable
// per-row form. It is the bulk path for generators that seed from an edge
// list and keep mutating — one pack, no intermediate CSR graph. Like
// FromEdges it drops duplicates and self loops and panics on out-of-range
// endpoints.
func FromEdgesBuilder(n, w int, edges []Edge) *Builder {
	checkDims(n, w)
	clean := canonicalEdges(n, edges)
	b := NewBuilder(n, w)
	b.m = len(clean)
	deg := make([]int32, n)
	for _, e := range clean {
		deg[e.U]++
		deg[e.V]++
	}
	for i, d := range deg {
		if d > 0 {
			b.rows[i] = make([]int32, 0, d)
		}
	}
	// A single pass over the canonical order leaves every row sorted: row u
	// first receives its smaller neighbours (from edges (a, u), a ascending)
	// and then its larger neighbours (from edges (u, v), v ascending).
	for _, e := range clean {
		b.rows[e.U] = append(b.rows[e.U], int32(e.V))
		b.rows[e.V] = append(b.rows[e.V], int32(e.U))
	}
	return b
}

// NumNodes returns the number of nodes n.
func (b *Builder) NumNodes() int { return len(b.rows) }

// NumEdges returns the number of undirected edges m.
func (b *Builder) NumEdges() int { return b.m }

// NumAttributes returns the attribute-vector width w.
func (b *Builder) NumAttributes() int { return b.w }

// validNode panics if i is not a valid node ID.
func (b *Builder) validNode(i int) {
	if i < 0 || i >= len(b.rows) {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", i, len(b.rows)))
	}
}

// insertSorted inserts v into the sorted row, reporting whether it was absent.
func insertSorted(row []int32, v int32) ([]int32, bool) {
	idx := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	if idx < len(row) && row[idx] == v {
		return row, false
	}
	row = append(row, 0)
	copy(row[idx+1:], row[idx:])
	row[idx] = v
	return row, true
}

// removeSorted deletes v from the sorted row, reporting whether it was present.
func removeSorted(row []int32, v int32) ([]int32, bool) {
	idx := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	if idx >= len(row) || row[idx] != v {
		return row, false
	}
	return append(row[:idx], row[idx+1:]...), true
}

// AddEdge inserts the undirected edge {i, j}. It returns true if the edge was
// added and false if it already existed or i == j (self loops are ignored,
// keeping the graph simple).
func (b *Builder) AddEdge(i, j int) bool {
	b.validNode(i)
	b.validNode(j)
	if i == j {
		return false
	}
	row, added := insertSorted(b.rows[i], int32(j))
	if !added {
		return false
	}
	b.rows[i] = row
	b.rows[j], _ = insertSorted(b.rows[j], int32(i))
	b.m++
	return true
}

// RemoveEdge deletes the undirected edge {i, j} if present and reports whether
// an edge was removed.
func (b *Builder) RemoveEdge(i, j int) bool {
	b.validNode(i)
	b.validNode(j)
	if i == j {
		return false
	}
	row, removed := removeSorted(b.rows[i], int32(j))
	if !removed {
		return false
	}
	b.rows[i] = row
	b.rows[j], _ = removeSorted(b.rows[j], int32(i))
	b.m--
	return true
}

// HasEdge reports whether the undirected edge {i, j} exists.
func (b *Builder) HasEdge(i, j int) bool {
	b.validNode(i)
	b.validNode(j)
	if i == j {
		return false
	}
	a, c := b.rows[i], b.rows[j]
	if len(a) > len(c) {
		a, j = c, i
	}
	return containsSorted(a, int32(j))
}

// Degree returns the degree d_i of node i.
func (b *Builder) Degree(i int) int {
	b.validNode(i)
	return len(b.rows[i])
}

// Neighbors returns the neighbour set Γ(i) as a freshly allocated, sorted
// slice. Mutating the result does not affect the builder.
func (b *Builder) Neighbors(i int) []int {
	b.validNode(i)
	row := b.rows[i]
	out := make([]int, len(row))
	for k, v := range row {
		out[k] = int(v)
	}
	return out
}

// NeighborsView returns node i's sorted neighbour row as a view into the
// builder's storage. The view is invalidated by the next mutation of node i's
// row and MUST NOT be modified by the caller.
func (b *Builder) NeighborsView(i int) []int32 {
	b.validNode(i)
	return b.rows[i]
}

// ForEachNeighbor calls fn for every neighbour of node i in ascending order.
// Iteration stops early if fn returns false. fn must not mutate the builder.
func (b *Builder) ForEachNeighbor(i int, fn func(j int) bool) {
	b.validNode(i)
	for _, v := range b.rows[i] {
		if !fn(int(v)) {
			return
		}
	}
}

// Attr returns the attribute vector of node i.
func (b *Builder) Attr(i int) AttrVector {
	b.validNode(i)
	return b.attrs[i]
}

// SetAttr assigns the attribute vector of node i. Bits above the builder's
// attribute width are cleared.
func (b *Builder) SetAttr(i int, a AttrVector) {
	b.validNode(i)
	b.attrs[i] = a.maskWidth(b.w)
}

// Edges returns every undirected edge exactly once in canonical order
// (sorted by (min endpoint, max endpoint)).
func (b *Builder) Edges() []Edge {
	edges := make([]Edge, 0, b.m)
	for u := range b.rows {
		for _, v := range b.rows[u] {
			if int(v) > u {
				edges = append(edges, Edge{U: u, V: int(v)})
			}
		}
	}
	return edges
}

// ForEachEdge calls fn once per undirected edge in canonical order.
// Iteration stops early if fn returns false. fn must not mutate the builder.
func (b *Builder) ForEachEdge(fn func(u, v int) bool) {
	for u := range b.rows {
		for _, v := range b.rows[u] {
			if int(v) > u {
				if !fn(u, int(v)) {
					return
				}
			}
		}
	}
}

// CommonNeighbors returns |Γ(i) ∩ Γ(j)| via sorted-merge intersection.
func (b *Builder) CommonNeighbors(i, j int) int {
	b.validNode(i)
	b.validNode(j)
	return intersectCount(b.rows[i], b.rows[j])
}

// Triangles returns n∆, the number of distinct triangles, by intersecting the
// sorted rows along each edge (each triangle is seen once per edge).
func (b *Builder) Triangles() int64 {
	var total int64
	for u := range b.rows {
		for _, v := range b.rows[u] {
			if int(v) > u {
				total += int64(intersectCount(b.rows[u], b.rows[v]))
			}
		}
	}
	return total / 3
}

// ConnectedComponents returns the node sets of the connected components in
// descending order of size; singleton nodes form their own components.
func (b *Builder) ConnectedComponents() [][]int {
	return connectedComponents(len(b.rows), func(u int) []int32 { return b.rows[u] })
}

// LargestComponent returns the node IDs of the largest connected component
// (empty for an empty builder).
func (b *Builder) LargestComponent() []int {
	comps := b.ConnectedComponents()
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}

// OrphanedNodes returns all nodes outside the largest connected component,
// matching Graph.OrphanedNodes; it is used by the TriCycLe post-processing
// pass while the synthetic graph is still under construction.
func (b *Builder) OrphanedNodes() []int {
	return orphanedNodes(len(b.rows), func(u int) []int32 { return b.rows[u] })
}

// Clone returns an independent deep copy of the builder.
func (b *Builder) Clone() *Builder {
	c := &Builder{
		w:     b.w,
		m:     b.m,
		rows:  make([][]int32, len(b.rows)),
		attrs: make([]AttrVector, len(b.attrs)),
	}
	copy(c.attrs, b.attrs)
	for i, row := range b.rows {
		c.rows[i] = append(make([]int32, 0, len(row)), row...)
	}
	return c
}

// Finalize freezes the current state into an immutable CSR Graph. The rows
// are already sorted, so finalization is a single O(n + m) concatenation. The
// builder remains valid and may keep mutating; later changes never affect the
// returned graph.
func (b *Builder) Finalize() *Graph {
	n := len(b.rows)
	g := &Graph{
		w:       b.w,
		m:       b.m,
		offsets: make([]int64, n+1),
		attrs:   make([]AttrVector, n),
	}
	copy(g.attrs, b.attrs)
	total := 0
	for i, row := range b.rows {
		total += len(row)
		g.offsets[i+1] = int64(total)
	}
	g.neighbors = make([]int32, 0, total)
	for _, row := range b.rows {
		g.neighbors = append(g.neighbors, row...)
	}
	return g
}
