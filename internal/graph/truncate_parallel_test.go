package graph

import (
	"math/rand"
	"testing"
)

// skewedGraph builds a graph with deliberate hubs (nodes 0..hubs-1 connect
// widely) over random background edges, so truncation at moderate k has both
// heavy and light nodes and cascading deletions to replay.
func skewedGraph(rng *rand.Rand, n, hubs int, bg float64, w int) *Graph {
	b := NewBuilder(n, w)
	for h := 0; h < hubs; h++ {
		for v := hubs; v < n; v++ {
			if rng.Float64() < 0.6 {
				b.AddEdge(h, v)
			}
		}
	}
	target := int(bg * float64(n))
	for i := 0; i < target; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	for i := 0; i < n; i++ {
		b.SetAttr(i, AttrVector(rng.Uint64()))
	}
	return b.Finalize()
}

// identicalGraphs compares the raw CSR arrays — stronger than Equal in spirit:
// the parallel truncation must reproduce the sequential operator's exact
// representation, not just an equivalent graph.
func identicalGraphs(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.w != got.w || want.m != got.m || len(want.offsets) != len(got.offsets) ||
		len(want.neighbors) != len(got.neighbors) || len(want.attrs) != len(got.attrs) {
		t.Fatalf("shape differs: want (w=%d m=%d n=%d), got (w=%d m=%d n=%d)",
			want.w, want.m, len(want.attrs), got.w, got.m, len(got.attrs))
	}
	for i := range want.offsets {
		if want.offsets[i] != got.offsets[i] {
			t.Fatalf("offsets differ at %d: %d vs %d", i, want.offsets[i], got.offsets[i])
		}
	}
	for i := range want.neighbors {
		if want.neighbors[i] != got.neighbors[i] {
			t.Fatalf("neighbors differ at %d: %d vs %d", i, want.neighbors[i], got.neighbors[i])
		}
	}
	for i := range want.attrs {
		if want.attrs[i] != got.attrs[i] {
			t.Fatalf("attrs differ at %d", i)
		}
	}
}

// TestTruncateWithMatchesSequential is the seq-vs-parallel equivalence
// property test: for skewed random graphs above the sharding threshold,
// TruncateWith must be bit-identical to Truncate for every worker count and
// truncation parameter, including k values that cascade deletions through
// hub neighbourhoods.
func TestTruncateWithMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 6; trial++ {
		g := skewedGraph(rng, 400+rng.Intn(200), 4+rng.Intn(6), 8, 3)
		if g.m < minShardEdges {
			t.Fatalf("trial %d: fixture too small to exercise the parallel path (m=%d)", trial, g.m)
		}
		for _, k := range []int{0, 1, 2, 5, 17, 64, g.MaxDegree(), g.MaxDegree() + 1} {
			want := g.Truncate(k)
			for _, workers := range []int{1, 2, 3, 4, 7, 8} {
				got := g.TruncateWith(k, workers)
				identicalGraphs(t, want, got)
			}
		}
	}
}

// TestTruncateWithSmallFallsBack checks the sequential fallback below the
// sharding threshold still matches.
func TestTruncateWithSmallFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 60, 0.2, 2)
	for _, k := range []int{0, 1, 3, 10} {
		identicalGraphs(t, g.Truncate(k), g.TruncateWith(k, 8))
	}
}

// TestTruncateWithDoesNotMutateInput guards the immutability contract on the
// parallel path.
func TestTruncateWithDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := skewedGraph(rng, 400, 6, 8, 2)
	before := append([]int32(nil), g.neighbors...)
	g.TruncateWith(2, 4)
	for i := range before {
		if g.neighbors[i] != before[i] {
			t.Fatal("TruncateWith mutated the input graph")
		}
	}
}
