package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// complete returns the complete graph K_n.
func complete(n int) *Graph {
	b := NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Finalize()
}

// path returns the path graph P_n (n nodes, n-1 edges).
func path(n int) *Graph {
	b := NewBuilder(n, 0)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Finalize()
}

// star returns the star graph with one hub (node 0) and n-1 leaves.
func star(n int) *Graph {
	b := NewBuilder(n, 0)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Finalize()
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDegreeSequenceSorted(t *testing.T) {
	g := buildTriangleWithTail()
	s := g.DegreeSequence()
	want := []int{1, 2, 2, 2, 3}
	if len(s) != len(want) {
		t.Fatalf("DegreeSequence = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("DegreeSequence = %v, want %v", s, want)
		}
	}
}

func TestMaxAndAverageDegree(t *testing.T) {
	g := star(11)
	if g.MaxDegree() != 10 {
		t.Fatalf("MaxDegree = %d, want 10", g.MaxDegree())
	}
	wantAvg := 2.0 * 10 / 11
	if !almostEqual(g.AverageDegree(), wantAvg, 1e-12) {
		t.Fatalf("AverageDegree = %v, want %v", g.AverageDegree(), wantAvg)
	}
	empty := New(0, 0)
	if empty.MaxDegree() != 0 || empty.AverageDegree() != 0 {
		t.Fatal("empty graph should have zero max and average degree")
	}
}

func TestTrianglesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"triangle with tail", buildTriangleWithTail(), 1},
		{"K4", complete(4), 4},
		{"K5", complete(5), 10},
		{"path P6", path(6), 0},
		{"star S10", star(10), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Triangles(); got != tc.want {
				t.Fatalf("Triangles = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestTrianglesAt(t *testing.T) {
	g := buildTriangleWithTail()
	wants := []int64{1, 1, 1, 0, 0}
	for i, want := range wants {
		if got := g.TrianglesAt(i); got != want {
			t.Fatalf("TrianglesAt(%d) = %d, want %d", i, got, want)
		}
	}
	k4 := complete(4)
	for i := 0; i < 4; i++ {
		if got := k4.TrianglesAt(i); got != 3 {
			t.Fatalf("K4 TrianglesAt(%d) = %d, want 3", i, got)
		}
	}
}

func TestWedges(t *testing.T) {
	// Star S_n has C(n-1, 2) wedges centred at the hub.
	g := star(6)
	if got := g.Wedges(); got != 10 {
		t.Fatalf("star Wedges = %d, want 10", got)
	}
	// Triangle has 3 wedges.
	if got := complete(3).Wedges(); got != 3 {
		t.Fatalf("triangle Wedges = %d, want 3", got)
	}
}

func TestLocalClustering(t *testing.T) {
	g := buildTriangleWithTail()
	if got := g.LocalClustering(0); !almostEqual(got, 1.0, 1e-12) {
		t.Fatalf("LocalClustering(0) = %v, want 1", got)
	}
	// Node 2 has neighbours {0,1,3}; only {0,1} is connected → 1/3.
	if got := g.LocalClustering(2); !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Fatalf("LocalClustering(2) = %v, want 1/3", got)
	}
	if got := g.LocalClustering(4); got != 0 {
		t.Fatalf("LocalClustering(4) = %v, want 0 for degree-1 node", got)
	}
}

func TestLocalClusteringAllMatchesPerNode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 0.12, 0)
	all := g.LocalClusteringAll()
	for i := 0; i < g.NumNodes(); i++ {
		if !almostEqual(all[i], g.LocalClustering(i), 1e-12) {
			t.Fatalf("LocalClusteringAll[%d] = %v, LocalClustering = %v", i, all[i], g.LocalClustering(i))
		}
	}
}

func TestAverageLocalClustering(t *testing.T) {
	// Complete graphs are fully clustered.
	if got := complete(5).AverageLocalClustering(); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("K5 AverageLocalClustering = %v, want 1", got)
	}
	// Triangle-free graphs have zero clustering.
	if got := star(8).AverageLocalClustering(); got != 0 {
		t.Fatalf("star AverageLocalClustering = %v, want 0", got)
	}
	if got := New(0, 0).AverageLocalClustering(); got != 0 {
		t.Fatalf("empty graph AverageLocalClustering = %v, want 0", got)
	}
}

func TestGlobalClustering(t *testing.T) {
	if got := complete(4).GlobalClustering(); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("K4 GlobalClustering = %v, want 1", got)
	}
	if got := path(5).GlobalClustering(); got != 0 {
		t.Fatalf("path GlobalClustering = %v, want 0", got)
	}
	// Triangle with tail: 1 triangle, wedges = 1+1+3+1+0 = ...
	g := buildTriangleWithTail()
	wedges := g.Wedges()
	want := 3.0 / float64(wedges)
	if got := g.GlobalClustering(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("GlobalClustering = %v, want %v", got, want)
	}
	if got := New(3, 0).GlobalClustering(); got != 0 {
		t.Fatalf("edgeless GlobalClustering = %v, want 0", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildTriangleWithTail()
	h := g.DegreeHistogram()
	if h[1] != 1 || h[2] != 3 || h[3] != 1 {
		t.Fatalf("DegreeHistogram = %v, want map[1:1 2:3 3:1]", h)
	}
}

func TestSummarize(t *testing.T) {
	g := buildTriangleWithTail()
	s := g.Summarize()
	if s.Nodes != 5 || s.Edges != 5 || s.MaxDegree != 3 || s.Triangles != 1 || s.Attributes != 2 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !almostEqual(s.AverageDegree, 2, 1e-12) {
		t.Fatalf("Summarize AverageDegree = %v, want 2", s.AverageDegree)
	}
}

// Property: for K_n, triangles = C(n,3) and every local clustering coefficient
// is exactly one.
func TestCompleteGraphTrianglesProperty(t *testing.T) {
	for n := 3; n <= 12; n++ {
		g := complete(n)
		want := int64(n * (n - 1) * (n - 2) / 6)
		if got := g.Triangles(); got != want {
			t.Fatalf("K%d Triangles = %d, want %d", n, got, want)
		}
		for _, c := range g.LocalClusteringAll() {
			if !almostEqual(c, 1, 1e-12) {
				t.Fatalf("K%d has local clustering %v != 1", n, c)
			}
		}
	}
}

// Property: 3·Triangles ≤ Wedges for all graphs (each triangle contributes 3
// wedges), and the global clustering coefficient therefore lies in [0, 1].
func TestClusteringBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40, 0.12, 0)
		tri, wed := g.Triangles(), g.Wedges()
		if 3*tri > wed {
			return false
		}
		c := g.GlobalClustering()
		return c >= 0 && c <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing an edge never increases the triangle count, and the drop
// equals the number of common neighbours of its endpoints.
func TestTriangleDeltaOnEdgeRemovalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 0.2, 0)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		e := edges[rng.Intn(len(edges))]
		before := g.Triangles()
		cn := int64(g.CommonNeighbors(e.U, e.V))
		b := g.Builder()
		b.RemoveEdge(e.U, e.V)
		after := b.Finalize().Triangles()
		return before-after == cn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
