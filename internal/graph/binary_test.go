package graph_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"agmdp/internal/graph"
)

// randomGraph builds a random simple graph with n nodes, w attributes and
// roughly density·n·(n−1)/2 edges, with random attribute vectors.
func randomGraph(rng *rand.Rand, n, w int, density float64) *graph.Graph {
	b := graph.NewBuilder(n, w)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				b.AddEdge(u, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Uint64()))
	}
	return b.Finalize()
}

// encodeBinary encodes g into a byte slice, failing the test on error.
func encodeBinary(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripProperty checks that random graphs round-trip through
// the binary codec bit-identically: the decoded graph equals the original
// and re-encoding reproduces the exact bytes.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(80)
		w := rng.Intn(graph.MaxAttributes + 1)
		g := randomGraph(rng, n, w, rng.Float64()*0.3)
		data := encodeBinary(t, g)
		if got, want := int64(len(data)), g.BinarySize(); got != want {
			t.Fatalf("trial %d: encoded %d bytes, BinarySize says %d", trial, got, want)
		}
		back, err := graph.ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: ReadBinary: %v", trial, err)
		}
		if !g.Equal(back) {
			t.Fatalf("trial %d: decoded graph differs (n=%d w=%d m=%d)", trial, n, w, g.NumEdges())
		}
		if again := encodeBinary(t, back); !bytes.Equal(data, again) {
			t.Fatalf("trial %d: re-encoding is not byte-identical", trial)
		}
	}
}

// TestBinaryRoundTripCorners covers the degenerate shapes: zero nodes, zero
// edges, attribute-less graphs, and isolated nodes mixed with edges.
func TestBinaryRoundTripCorners(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(0, 0)},
		{"zero nodes with width", graph.New(0, 3)},
		{"nodes no edges", graph.New(5, 2)},
		{"attr-less", graph.FromEdges(4, 0, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})},
		{"single edge", graph.FromEdges(2, 1, []graph.Edge{{U: 0, V: 1}})},
		{"isolated tail", graph.FromEdges(10, 2, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := encodeBinary(t, tc.g)
			back, err := graph.ReadBinary(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ReadBinary: %v", err)
			}
			if !tc.g.Equal(back) {
				t.Fatal("decoded graph differs")
			}
			if again := encodeBinary(t, back); !bytes.Equal(data, again) {
				t.Fatal("re-encoding is not byte-identical")
			}
		})
	}
}

// TestDecodeBinaryMatchesReadBinary pins the slice-based lazy-decode entry
// point to the stream decoder: for random graphs both decoders accept the
// canonical snapshot and produce equal graphs, and DecodeBinary's result
// shares no memory with the input (mutating the input must not change it).
func TestDecodeBinaryMatchesReadBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(60), rng.Intn(graph.MaxAttributes+1), rng.Float64()*0.3)
		data := encodeBinary(t, g)
		streamed, err := graph.ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: ReadBinary: %v", trial, err)
		}
		decoded, err := graph.DecodeBinary(data)
		if err != nil {
			t.Fatalf("trial %d: DecodeBinary: %v", trial, err)
		}
		if !streamed.Equal(decoded) || !g.Equal(decoded) {
			t.Fatalf("trial %d: DecodeBinary disagrees with ReadBinary", trial)
		}
		for i := range data {
			data[i] = 0xff
		}
		if !g.Equal(decoded) {
			t.Fatalf("trial %d: decoded graph aliases the input bytes", trial)
		}
	}
}

// TestDecodeBinaryRejectsInexactLength checks that the slice decoder, unlike
// the stream decoder, refuses trailing bytes and truncated snapshots: a
// content-addressed snapshot must be exactly one encoding.
func TestDecodeBinaryRejectsInexactLength(t *testing.T) {
	g := graph.FromEdges(3, 1, []graph.Edge{{U: 0, V: 1}})
	data := encodeBinary(t, g)
	if _, err := graph.DecodeBinary(append(append([]byte(nil), data...), 'x')); err == nil {
		t.Fatal("DecodeBinary accepted trailing bytes")
	}
	if _, err := graph.DecodeBinary(data[:len(data)-1]); err == nil {
		t.Fatal("DecodeBinary accepted a truncated snapshot")
	}
	if _, err := graph.DecodeBinary(data[:10]); err == nil {
		t.Fatal("DecodeBinary accepted a truncated header")
	}
	if _, err := graph.DecodeBinary(data); err != nil {
		t.Fatalf("DecodeBinary rejected the exact snapshot: %v", err)
	}
}

// TestStatBinary checks the O(header) metadata entry point: dimensions and
// exact size from just the header prefix, and rejection of foreign bytes.
func TestStatBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 1+rng.Intn(50), rng.Intn(graph.MaxAttributes+1), rng.Float64()*0.3)
		data := encodeBinary(t, g)
		stat, err := graph.StatBinary(data[:graph.BinaryHeaderSize])
		if err != nil {
			t.Fatalf("trial %d: StatBinary: %v", trial, err)
		}
		if stat.Nodes != g.NumNodes() || stat.Edges != g.NumEdges() || stat.Attributes != g.NumAttributes() {
			t.Fatalf("trial %d: StatBinary = %+v, want n=%d m=%d w=%d", trial, stat, g.NumNodes(), g.NumEdges(), g.NumAttributes())
		}
		if stat.Size != int64(len(data)) || stat.Size != g.BinarySize() {
			t.Fatalf("trial %d: StatBinary.Size = %d, want %d", trial, stat.Size, len(data))
		}
	}
	if _, err := graph.StatBinary([]byte("short")); err == nil {
		t.Fatal("StatBinary accepted a short prefix")
	}
	if _, err := graph.StatBinary(make([]byte, graph.BinaryHeaderSize)); err == nil {
		t.Fatal("StatBinary accepted a zeroed header")
	}
}

// TestMemoryBytes pins the decoded-footprint estimate to the CSR array
// lengths the byte-budget cache accounts with.
func TestMemoryBytes(t *testing.T) {
	g := graph.FromEdges(5, 2, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	want := int64(6*8 + 6*4 + 5*8) // offsets, neighbors, attrs
	if got := g.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
	if graph.New(0, 0).MemoryBytes() != 8 {
		t.Fatal("empty graph should cost one offset entry")
	}
}

// TestBinaryMatchesTextDecode pins the two codecs to each other: the same
// graph decoded from its text form and from its binary form must be equal.
func TestBinaryMatchesTextDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 2, 0.1)

	var text bytes.Buffer
	if err := g.WriteGraph(&text); err != nil {
		t.Fatal(err)
	}
	fromText, err := graph.ReadGraph(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBinary, err := graph.ReadBinary(bytes.NewReader(encodeBinary(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if !fromText.Equal(fromBinary) {
		t.Fatal("text and binary decodes disagree")
	}
}

// TestBinaryIgnoresTrailingBytes checks that ReadBinary consumes exactly one
// snapshot and tolerates trailing data in the stream.
func TestBinaryIgnoresTrailingBytes(t *testing.T) {
	g := graph.FromEdges(3, 1, []graph.Edge{{U: 0, V: 1}})
	data := append(encodeBinary(t, g), "trailing garbage"...)
	back, err := graph.ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadBinary with trailing bytes: %v", err)
	}
	if !g.Equal(back) {
		t.Fatal("decoded graph differs")
	}
}

func TestSaveLoadBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 4, 0.15)
	path := filepath.Join(t.TempDir(), "snapshot.csr")
	if err := graph.SaveBinary(g, path); err != nil {
		t.Fatal(err)
	}
	back, err := graph.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatal("loaded graph differs")
	}
}

// corruptAt returns a copy of data with the byte at i xor-ed with mask.
func corruptAt(data []byte, i int, mask byte) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= mask
	return out
}

// putU64 overwrites 8 bytes of a copy of data at off with v.
func putU64(data []byte, off int, v uint64) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(out[off:], v)
	return out
}

// putU32 overwrites 4 bytes of a copy of data at off with v.
func putU32(data []byte, off int, v uint32) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

// TestReadBinaryRejectsCorruptInput drives ReadBinary through every
// validation failure: header corruption, impossible dimensions, truncation,
// and CSR invariant violations.
func TestReadBinaryRejectsCorruptInput(t *testing.T) {
	// Fixture: path 0-1-2 plus edge 0-3, width 2, distinct attrs.
	b := graph.NewBuilder(4, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.SetAttr(0, 1)
	b.SetAttr(1, 2)
	b.SetAttr(2, 3)
	g := b.Finalize()
	data := encodeBinary(t, g)

	// Offsets of the header fields and arrays within the encoding.
	const (
		offVersion  = 8
		offFlags    = 12
		offWidth    = 16
		offReserved = 20
		offNodes    = 24
		offEdges    = 32
		offArrays   = 40 // offsets array starts here: 5 × int64 for n = 4
	)
	offNeighbors := offArrays + 5*8 // 6 × int32
	offAttrs := offNeighbors + 6*4

	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error
	}{
		{"empty input", nil, "binary header"},
		{"bad magic", corruptAt(data, 0, 0xff), "magic"},
		{"bad version", putU32(data, offVersion, 99), "version"},
		{"unknown flags", putU32(data, offFlags, 0x80), "flags"},
		{"reserved word set", putU32(data, offReserved, 1), "reserved"},
		{"width over max", putU32(data, offWidth, 65), "width"},
		{"attrs flag without width", putU32(data, offWidth, 0), "non-canonical"},
		{"node count over int32", putU64(data, offNodes, 1<<33), "int32 ID space"},
		{"impossible edge count", putU64(data, offEdges, 100), "impossible"},
		{"truncated offsets", data[:offArrays+8], "offsets"},
		{"truncated neighbors", data[:offNeighbors+2], "neighbors"},
		{"truncated attrs", data[:offAttrs+3], "attrs"},
		{"offsets not starting at zero", putU64(data, offArrays, 1), "offsets"},
		{"offsets decreasing", putU64(data, offArrays+8, ^uint64(0)), "offsets"},
		{"offsets end mismatch", putU64(data, offArrays+4*8, 4), "offsets"},
		{"row out of range", putU32(data, offNeighbors, 9), "range"},
		{"attr bits above width", putU64(data, offAttrs, 0xff), "bits above width"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := graph.ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("ReadBinary accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadBinaryRejectsBrokenCSR hand-builds encodings whose arrays violate
// the CSR invariants that byte flips on a valid encoding cannot easily reach:
// unsorted rows, self loops, and asymmetric adjacency.
func TestReadBinaryRejectsBrokenCSR(t *testing.T) {
	encode := func(n, w, m int, flags uint32, offsets []int64, neighbors []int32, attrs []uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString("AGMDPCSR")
		var scratch [8]byte
		writeU32 := func(v uint32) {
			binary.LittleEndian.PutUint32(scratch[:4], v)
			buf.Write(scratch[:4])
		}
		writeU64 := func(v uint64) {
			binary.LittleEndian.PutUint64(scratch[:8], v)
			buf.Write(scratch[:8])
		}
		writeU32(1) // version
		writeU32(flags)
		writeU32(uint32(w))
		writeU32(0) // reserved
		writeU64(uint64(n))
		writeU64(uint64(m))
		for _, v := range offsets {
			writeU64(uint64(v))
		}
		for _, v := range neighbors {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(v))
			buf.Write(scratch[:4])
		}
		for _, v := range attrs {
			writeU64(v)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{
			"unsorted row",
			encode(3, 0, 2, 0, []int64{0, 2, 3, 4}, []int32{2, 1, 0, 0}, nil),
			"strictly increasing",
		},
		{
			"duplicate neighbour",
			encode(2, 0, 1, 0, []int64{0, 2, 2}, []int32{1, 1}, nil),
			"strictly increasing",
		},
		{
			"self loop",
			encode(2, 0, 1, 0, []int64{0, 1, 2}, []int32{0, 1}, nil),
			"self loop",
		},
		{
			"asymmetric adjacency",
			encode(3, 0, 1, 0, []int64{0, 1, 1, 2}, []int32{2, 1}, nil),
			"asymmetric",
		},
		{
			// The stray entries point low (4→0, 5→2) with no high-pointing
			// counterpart, the orientation a one-sided check would miss.
			"asymmetric adjacency pointing low",
			encode(6, 0, 1, 0, []int64{0, 0, 0, 0, 0, 1, 2}, []int32{0, 2}, nil),
			"asymmetric",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := graph.ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("ReadBinary accepted a broken CSR")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzReadBinary feeds arbitrary bytes to ReadBinary. The decoder must never
// panic; when it accepts an input, the decoded graph must re-encode to
// exactly the bytes it consumed (the canonical-form property the graph
// store's content addressing relies on).
func FuzzReadBinary(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	seeds := []*graph.Graph{
		graph.New(0, 0),
		graph.New(3, 2),
		graph.FromEdges(4, 0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}),
		randomGraph(rng, 12, 2, 0.3),
		randomGraph(rng, 25, 64, 0.1),
	}
	for _, g := range seeds {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A corrupted variant steers the fuzzer into the validators.
		if buf.Len() > 45 {
			f.Add(corruptAt(buf.Bytes(), 44, 0x1f))
		}
	}
	f.Add([]byte("AGMDPCSR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := g.WriteBinary(&out); err != nil {
			t.Fatalf("re-encoding an accepted graph failed: %v", err)
		}
		if out.Len() > len(data) || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes re-encoded", len(data), out.Len())
		}
	})
}
