package graph

// Benchmarks for the binary decoder's CSR validation pass, isolating the
// symmetry check the PR-5 follow-up rewrote: the per-edge binary search
// (O(m log d), kept here as the baseline) against the counting-based linear
// sweep validateSymmetry runs now (O(n + m)). scripts/bench.sh records the
// ratio; the end-to-end effect also shows in BenchmarkReadGraphBinary
// (bench_io_test.go), where validation is a large slice of decode time.

import (
	"math/rand"
	"testing"
)

// validateBenchGraph lazily builds a heavy-tailed graph of ~120k edges, the
// same workload class as the IO benchmarks.
var validateBenchGraph = func() *Graph {
	const n = 30000
	rng := rand.New(rand.NewSource(11))
	edges := make([]Edge, 0, 4*n)
	for i := 0; i < 4*n; i++ {
		u := int(float64(n) * rng.Float64() * rng.Float64())
		edges = append(edges, Edge{U: u, V: rng.Intn(n)})
	}
	return FromEdges(n, 0, edges)
}()

// symmetryBSearchBaseline is the decoder's previous symmetry check: binary-
// search every directed entry's reverse.
func symmetryBSearchBaseline(n int, offsets []int64, neighbors []int32) bool {
	row := func(u int) []int32 { return neighbors[offsets[u]:offsets[u+1]] }
	for u := 0; u < n; u++ {
		for _, v := range row(u) {
			if !containsSorted(row(int(v)), int32(u)) {
				return false
			}
		}
	}
	return true
}

func BenchmarkValidateSymmetryBSearch(b *testing.B) {
	g := validateBenchGraph
	n := g.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !symmetryBSearchBaseline(n, g.offsets, g.neighbors) {
			b.Fatal("valid graph reported asymmetric")
		}
	}
}

func BenchmarkValidateSymmetryLinear(b *testing.B) {
	g := validateBenchGraph
	n := g.NumNodes()
	m := int64(g.NumEdges())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := validateSymmetry(n, g.offsets, g.neighbors, m, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateCSR measures the decoder's full validation pass (row
// invariants + symmetry), the dominant non-IO cost of ReadBinary.
func BenchmarkValidateCSR(b *testing.B) {
	g := validateBenchGraph
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := validateCSR(g.NumNodes(), g.offsets, g.neighbors); err != nil {
			b.Fatal(err)
		}
	}
}
