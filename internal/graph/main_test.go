package graph

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"agmdp/internal/parallel"
)

// TestMain honours AGMDP_TEST_PARALLELISM, which CI's multi-worker race pass
// sets to pin the process-default worker count to a value different from
// both 1 and GOMAXPROCS, so the sharded analytics exercise multi-worker
// interleavings regardless of the runner's core count.
func TestMain(m *testing.M) {
	if v := os.Getenv("AGMDP_TEST_PARALLELISM"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad AGMDP_TEST_PARALLELISM %q: %v\n", v, err)
			os.Exit(2)
		}
		parallel.SetParallelism(n)
	}
	os.Exit(m.Run())
}
