//go:build ignore

// Generates the committed seed corpus for FuzzChunkReader under
// testdata/fuzz/FuzzChunkReader/: valid chunked snapshots at several frame
// sizes, a corrupted-payload variant, a truncated stream, and the bare
// magic. Run from the repository root:
//
//	go run internal/graph/gen_fuzz_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"agmdp/internal/graph"
)

func main() {
	dir := filepath.Join("internal", "graph", "testdata", "fuzz", "FuzzChunkReader")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	n := 16
	b := graph.NewBuilder(n, 2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.3 {
				b.AddEdge(u, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(4)))
	}
	g := b.Finalize()

	var seeds [][]byte
	for _, chunkRows := range []int{1, 4, 0} {
		var buf bytes.Buffer
		if err := graph.WriteBinaryChunked(&buf, g, chunkRows); err != nil {
			log.Fatal(err)
		}
		seeds = append(seeds, append([]byte(nil), buf.Bytes()...))
	}
	// Corrupted payload byte (fails the CRC trailer) and a truncated stream.
	corrupt := append([]byte(nil), seeds[1]...)
	corrupt[len(corrupt)/2] ^= 0x1f
	seeds = append(seeds, corrupt, seeds[0][:len(seeds[0])-9], []byte("AGMDPCSC"))

	for i, data := range seeds {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
