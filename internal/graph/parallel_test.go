package graph

import (
	"math"
	"math/rand"
	"testing"

	"agmdp/internal/parallel"
)

// randomTestGraph builds a Chung–Lu-flavoured random graph with a heavy-
// tailed degree profile, large enough to clear the sharding thresholds.
func randomTestGraph(t testing.TB, seed int64, n, edgeFactor int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n*edgeFactor)
	for k := 0; k < n*edgeFactor; k++ {
		u := rng.Intn(n)
		// Skew: a tenth of the endpoints land on the first few hub nodes.
		if rng.Intn(10) == 0 {
			u = rng.Intn(1 + n/100)
		}
		v := rng.Intn(n)
		edges = append(edges, Edge{U: u, V: v})
	}
	return FromEdges(n, 0, edges)
}

func TestParallelAnalyticsMatchSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomTestGraph(t, seed, 4000, 4)
		if g.NumEdges() < minShardEdges {
			t.Fatalf("fixture too small to engage sharding: %d edges", g.NumEdges())
		}
		wantTri := g.TrianglesWith(1)
		wantCC := g.LocalClusteringAllWith(1)
		wantWedges := g.wedgesSeq()
		wantHist := g.degreeHistogramSeq()
		for _, workers := range []int{2, 3, 8, 64} {
			if got := g.TrianglesWith(workers); got != wantTri {
				t.Fatalf("seed %d workers %d: Triangles = %d, want %d", seed, workers, got, wantTri)
			}
			got := g.LocalClusteringAllWith(workers)
			for i := range wantCC {
				if got[i] != wantCC[i] {
					t.Fatalf("seed %d workers %d: clustering[%d] = %v, want %v (must be bit-identical)",
						seed, workers, i, got[i], wantCC[i])
				}
			}
			if got := g.WedgesWith(workers); got != wantWedges {
				t.Fatalf("seed %d workers %d: Wedges = %d, want %d", seed, workers, got, wantWedges)
			}
			hist := g.DegreeHistogramWith(workers)
			if len(hist) != len(wantHist) {
				t.Fatalf("seed %d workers %d: histogram size %d, want %d", seed, workers, len(hist), len(wantHist))
			}
			for d, c := range wantHist {
				if hist[d] != c {
					t.Fatalf("seed %d workers %d: histogram[%d] = %d, want %d", seed, workers, d, hist[d], c)
				}
			}
			degs := g.DegreesWith(workers)
			for i := range degs {
				if degs[i] != int(g.offsets[i+1]-g.offsets[i]) {
					t.Fatalf("seed %d workers %d: degree[%d] wrong", seed, workers, i)
				}
			}
		}
	}
}

func TestSummarizeWithMatchesSequentialParts(t *testing.T) {
	g := randomTestGraph(t, 5, 4000, 4)
	seq := Summary{
		Nodes:              g.NumNodes(),
		Edges:              g.NumEdges(),
		MaxDegree:          g.MaxDegree(),
		AverageDegree:      g.AverageDegree(),
		Triangles:          g.TrianglesWith(1),
		AvgLocalClustering: mean(g.LocalClusteringAllWith(1)),
		GlobalClustering:   3 * float64(g.TrianglesWith(1)) / float64(g.wedgesSeq()),
		Attributes:         g.NumAttributes(),
	}
	for _, workers := range []int{1, 4} {
		got := g.SummarizeWith(workers)
		if got.Triangles != seq.Triangles || got.Nodes != seq.Nodes || got.Edges != seq.Edges ||
			got.MaxDegree != seq.MaxDegree || got.Attributes != seq.Attributes {
			t.Fatalf("workers %d: summary counts diverged: %+v vs %+v", workers, got, seq)
		}
		if math.Abs(got.AvgLocalClustering-seq.AvgLocalClustering) > 1e-15 ||
			math.Abs(got.GlobalClustering-seq.GlobalClustering) > 1e-15 ||
			math.Abs(got.AverageDegree-seq.AverageDegree) > 1e-15 {
			t.Fatalf("workers %d: summary ratios diverged: %+v vs %+v", workers, got, seq)
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestParallelAnalyticsSmallAndEmptyGraphs(t *testing.T) {
	empty := New(0, 0)
	if empty.TrianglesWith(8) != 0 || empty.WedgesWith(8) != 0 {
		t.Fatal("empty graph analytics must be zero")
	}
	if got := empty.LocalClusteringAllWith(8); len(got) != 0 {
		t.Fatal("empty graph clustering must be empty")
	}
	// A triangle plus a pendant: small enough for the sequential fallback but
	// still asserting the With API gives exact answers.
	g := FromEdges(4, 0, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if got := g.TrianglesWith(8); got != 1 {
		t.Fatalf("Triangles = %d, want 1", got)
	}
	if got := g.WedgesWith(8); got != 1+1+3 {
		t.Fatalf("Wedges = %d, want 5", got)
	}
}

func TestDegreeWeightedShardsBalanceSkewedGraph(t *testing.T) {
	// One massive hub: even node-count shards would put the whole hub row in
	// one shard; degree-weighted shards must split the remaining mass so no
	// shard (beyond the unsplittable hub itself) dominates.
	n := 20000
	edges := make([]Edge, 0, 3*n)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: 0, V: i}) // hub
	}
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 2*n; k++ {
		edges = append(edges, Edge{U: 1 + rng.Intn(n-1), V: 1 + rng.Intn(n-1)})
	}
	g := FromEdges(n, 0, edges)
	shards := parallel.SplitWeighted(g.offsets, 8)
	total := g.offsets[n]
	var maxRow int64
	for i := 0; i < n; i++ {
		if d := g.offsets[i+1] - g.offsets[i]; d > maxRow {
			maxRow = d
		}
	}
	for _, r := range shards {
		w := g.offsets[r.Hi] - g.offsets[r.Lo]
		if w > total/8+maxRow {
			t.Fatalf("shard %+v carries weight %d of %d (max row %d): unbalanced", r, w, total, maxRow)
		}
	}
	// And the sharded analytics still agree on this pathological shape.
	if seq, par := g.TrianglesWith(1), g.TrianglesWith(8); seq != par {
		t.Fatalf("hub graph: parallel triangles %d != sequential %d", par, seq)
	}
}
