package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Chunked binary CSR wire format ("AGMDPCSC", version 1).
//
// The monolithic AGMDPCSR snapshot lays the three CSR arrays end to end, so a
// reader cannot hand out a single row until the whole offsets array has
// arrived, and a writer needs every array materialised before the first byte
// leaves. The chunked variant reframes the same data as a sequence of
// self-describing row-range frames so both ends run in O(frame) memory:
//
//	header    — identical layout to the monolithic header (40 bytes, all
//	            little-endian) except the magic is "AGMDPCSC":
//	            magic[8] | version u32 | flags u32 | w u32 | reserved u32 |
//	            n u64 | m u64
//	frames    — each frame covers the next `rows` nodes:
//	            rows       uint32   ≥ 1
//	            payloadLen uint64   exact payload byte length
//	            payload:
//	              endOffsets rows × int64   absolute CSR end offsets
//	              neighbors  k × int32      the rows' concatenated entries,
//	                                        k = endOffsets[last] − prior offset
//	              attrs      rows × uint64  present iff flags bit 0
//	trailer   — a frame with rows = 0 and payloadLen = 4 whose payload is the
//	            IEEE CRC-32 of every preceding byte (header + data frames).
//
// Frames partition [0, n) in order; a stream that ends before the trailer, or
// whose trailer checksum disagrees, is rejected. Unlike the monolithic
// format the chunked encoding is NOT canonical — the frame partitioning is a
// serving knob, not part of the graph — so chunked bytes are never
// content-addressed; they exist only on the wire. Decoding yields a CSR
// byte-identical (under monolithic re-encoding) with the graph that was
// encoded, whatever chunk size either side used.

const (
	chunkedMagic = "AGMDPCSC"

	// chunkedFrameHeaderSize is the per-frame header: rows u32 + payloadLen u64.
	chunkedFrameHeaderSize = 4 + 8

	// chunkedTrailerSize is the trailer frame: header + CRC-32 payload.
	chunkedTrailerSize = chunkedFrameHeaderSize + 4

	// DefaultChunkRows is the row count per frame when the caller does not
	// choose one: large enough that frame headers are noise, small enough
	// that a frame of average-degree rows stays well under a megabyte.
	DefaultChunkRows = 1 << 15
)

// normalizeChunkRows clamps a chunk-size knob to a sane value.
func normalizeChunkRows(chunkRows int) int {
	if chunkRows <= 0 {
		return DefaultChunkRows
	}
	return chunkRows
}

// ChunkedBinarySize returns the exact encoded length of the source's chunked
// snapshot for a given frame size, so servers can set Content-Length before
// streaming the first frame. Frame boundaries are deterministic (every frame
// holds chunkRows rows except a shorter final one), so the header dimensions
// fully determine the size.
func ChunkedBinarySize(src RowSource, chunkRows int) int64 {
	chunkRows = normalizeChunkRows(chunkRows)
	n := int64(src.NumNodes())
	frames := (n + int64(chunkRows) - 1) / int64(chunkRows)
	size := int64(binaryHeaderSize) + frames*chunkedFrameHeaderSize + chunkedTrailerSize
	size += n*8 + int64(2*src.NumEdges())*4
	if src.NumAttributes() > 0 {
		size += n * 8
	}
	return size
}

// WriteBinaryChunked writes the source's graph in the chunked wire format,
// chunkRows rows per frame (DefaultChunkRows when ≤ 0). Each frame is issued
// as a single Write call, so wrapping w in a flush-per-Write writer yields
// frame-granular delivery; memory stays O(frame). The encoded graph decodes
// byte-identical (under monolithic re-encoding) with Graph.WriteBinary's
// output regardless of chunkRows.
func WriteBinaryChunked(w io.Writer, src RowSource, chunkRows int) error {
	chunkRows = normalizeChunkRows(chunkRows)
	n, m, aw := src.NumNodes(), src.NumEdges(), src.NumAttributes()
	checkDims(n, aw)
	var hdr [binaryHeaderSize]byte
	putBinaryHeader(hdr[:], n, m, aw)
	copy(hdr[0:8], chunkedMagic)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: writing chunked header: %w", err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])

	// Size the reused frame buffer to the largest frame up front (degrees
	// only, no row data), so a growing frame sequence cannot force one
	// reallocation per growth step; the encoder allocates O(max frame) once.
	maxNeed := 0
	for start := 0; start < n; start += chunkRows {
		end := min(start+chunkRows, n)
		k := 0
		for u := start; u < end; u++ {
			k += src.RowDegree(u)
		}
		need := chunkedFrameHeaderSize + (end-start)*8 + k*4
		if aw > 0 {
			need += (end - start) * 8
		}
		maxNeed = max(maxNeed, need)
	}
	frame := make([]byte, 0, maxNeed)
	var row []int32
	var off int64
	for start := 0; start < n; start += chunkRows {
		end := min(start+chunkRows, n)
		rows := end - start
		k := 0
		for u := start; u < end; u++ {
			k += src.RowDegree(u)
		}
		payload := rows*8 + k*4
		if aw > 0 {
			payload += rows * 8
		}
		need := chunkedFrameHeaderSize + payload
		if cap(frame) < need {
			frame = make([]byte, need)
		}
		frame = frame[:need]
		binary.LittleEndian.PutUint32(frame[0:4], uint32(rows))
		binary.LittleEndian.PutUint64(frame[4:12], uint64(payload))
		p := chunkedFrameHeaderSize
		for u := start; u < end; u++ {
			off += int64(src.RowDegree(u))
			binary.LittleEndian.PutUint64(frame[p:], uint64(off))
			p += 8
		}
		for u := start; u < end; u++ {
			row = src.AppendRow(row[:0], u)
			for _, v := range row {
				binary.LittleEndian.PutUint32(frame[p:], uint32(v))
				p += 4
			}
		}
		if aw > 0 {
			for u := start; u < end; u++ {
				binary.LittleEndian.PutUint64(frame[p:], uint64(src.RowAttr(u)))
				p += 8
			}
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("graph: writing chunked frame at row %d: %w", start, err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, frame)
	}
	if off != int64(2*m) {
		return fmt.Errorf("graph: row source degrees sum to %d, want %d (= 2m)", off, 2*m)
	}
	var trailer [chunkedTrailerSize]byte
	binary.LittleEndian.PutUint32(trailer[0:4], 0)
	binary.LittleEndian.PutUint64(trailer[4:12], 4)
	binary.LittleEndian.PutUint32(trailer[12:16], crc)
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("graph: writing chunked trailer: %w", err)
	}
	return nil
}

// RowChunk is one decoded frame: the sorted CSR rows [Start, Start+Rows).
// The slices are owned by the ChunkReader and are invalidated by its next
// Next call; consumers that need the data longer must copy.
type RowChunk struct {
	// Start is the first row covered by the frame; Rows the row count.
	Start, Rows int
	// EndOffsets holds the absolute CSR end offset of each covered row;
	// row Start+i spans [EndOffsets[i-1], EndOffsets[i]) of the full
	// neighbor array (the frame's first row starts at the previous frame's
	// last end offset).
	EndOffsets []int64
	// Neighbors is the concatenation of the covered rows' entries.
	Neighbors []int32
	// Attrs holds the covered rows' attribute vectors; nil when the graph
	// has no attributes.
	Attrs []AttrVector
}

// ChunkReader incrementally decodes a chunked binary stream, one frame at a
// time, in O(frame) memory. Next validates framing invariants (row
// accounting, payload lengths, offset monotonicity, attribute width) as it
// goes and verifies the trailing checksum at end of stream; the deep CSR
// invariants (sorted rows, symmetry) are validated by ReadAll once the whole
// graph is assembled.
type ChunkReader struct {
	br   *bufio.Reader
	h    binaryHeader
	crc  uint32
	next int   // next row expected
	off  int64 // absolute end offset of the last delivered row
	done bool
	err  error

	chunk RowChunk
	buf   [8 * binaryChunkEntries]byte
}

// NewChunkReader parses and validates the chunked stream header. Trailing
// bytes after the trailer frame are left unread.
func NewChunkReader(r io.Reader) (*ChunkReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [binaryHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading chunked header: %w", err)
	}
	if string(hdr[0:8]) != chunkedMagic {
		return nil, fmt.Errorf("graph: not an agmdp chunked snapshot (magic %q)", hdr[0:8])
	}
	// The remaining header fields share the monolithic layout and rules.
	copy(hdr[0:8], binaryMagic)
	h, err := parseBinaryHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	copy(hdr[0:8], chunkedMagic)
	return &ChunkReader{br: br, h: h, crc: crc32.ChecksumIEEE(hdr[:])}, nil
}

// Stat returns the stream's graph dimensions. Size is the length of the
// monolithic (canonical) snapshot of the same graph, not of the chunked
// stream — it is what a store-back of the decoded graph will occupy.
func (cr *ChunkReader) Stat() SnapshotStat {
	return SnapshotStat{Nodes: cr.h.n, Edges: cr.h.m, Attributes: cr.h.w, Size: cr.h.size()}
}

// fail records and returns a sticky error.
func (cr *ChunkReader) fail(format string, args ...any) error {
	cr.err = fmt.Errorf(format, args...)
	return cr.err
}

// readFull reads exactly len(p) bytes, folding them into the running
// checksum when digest is true.
func (cr *ChunkReader) readFull(p []byte, digest bool) error {
	if _, err := io.ReadFull(cr.br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return cr.fail("graph: chunked snapshot truncated: %w", err)
	}
	if digest {
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p)
	}
	return nil
}

// Next decodes the next frame. It returns (nil, io.EOF) once the trailer has
// been consumed and verified; any framing or checksum violation returns a
// non-EOF error and poisons the reader. The returned chunk's slices are
// reused by the following Next call.
func (cr *ChunkReader) Next() (*RowChunk, error) {
	if cr.err != nil {
		return nil, cr.err
	}
	if cr.done {
		return nil, io.EOF
	}
	var fh [chunkedFrameHeaderSize]byte
	if err := cr.readFull(fh[:], false); err != nil {
		return nil, err
	}
	rows := int64(binary.LittleEndian.Uint32(fh[0:4]))
	payload := binary.LittleEndian.Uint64(fh[4:12])
	if rows == 0 {
		// Trailer: the checksum covers everything before this frame header.
		if payload != 4 {
			return nil, cr.fail("graph: chunked trailer payload is %d bytes, want 4", payload)
		}
		var sum [4]byte
		if err := cr.readFull(sum[:], false); err != nil {
			return nil, err
		}
		if got := binary.LittleEndian.Uint32(sum[:]); got != cr.crc {
			return nil, cr.fail("graph: chunked snapshot checksum mismatch (trailer %#x, computed %#x)", got, cr.crc)
		}
		if cr.next != cr.h.n {
			return nil, cr.fail("graph: chunked snapshot ends after %d of %d rows", cr.next, cr.h.n)
		}
		if cr.off != int64(2*cr.h.m) {
			return nil, cr.fail("graph: chunked snapshot carries %d neighbor entries, want %d (= 2m)", cr.off, 2*cr.h.m)
		}
		cr.done = true
		return nil, io.EOF
	}
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, fh[:])
	if rows > int64(cr.h.n-cr.next) {
		return nil, cr.fail("graph: chunked frame covers %d rows but only %d remain", rows, cr.h.n-cr.next)
	}

	// End offsets first: they determine the frame's neighbor count, which the
	// declared payload length must corroborate before any bulk read.
	c := &cr.chunk
	c.Start, c.Rows = cr.next, int(rows)
	c.EndOffsets = c.EndOffsets[:0]
	prev := cr.off
	for read := int64(0); read < rows; {
		batch := min(rows-read, binaryChunkEntries)
		if err := cr.readFull(cr.buf[:8*batch], true); err != nil {
			return nil, err
		}
		for i := int64(0); i < batch; i++ {
			v := int64(binary.LittleEndian.Uint64(cr.buf[8*i:]))
			if v < prev || v > int64(2*cr.h.m) {
				return nil, cr.fail("graph: chunked frame end offset %d at row %d outside [%d, %d]",
					v, c.Start+len(c.EndOffsets), prev, 2*cr.h.m)
			}
			c.EndOffsets = append(c.EndOffsets, v)
			prev = v
		}
		read += batch
	}
	k := prev - cr.off
	want := uint64(rows)*8 + uint64(k)*4
	if cr.h.flags&flagAttrs != 0 {
		want += uint64(rows) * 8
	}
	if payload != want {
		return nil, cr.fail("graph: chunked frame payload is %d bytes, want %d for %d rows / %d entries", payload, want, rows, k)
	}

	c.Neighbors = c.Neighbors[:0]
	for read := int64(0); read < k; {
		batch := min(k-read, binaryChunkEntries)
		if err := cr.readFull(cr.buf[:4*batch], true); err != nil {
			return nil, err
		}
		for i := int64(0); i < batch; i++ {
			c.Neighbors = append(c.Neighbors, int32(binary.LittleEndian.Uint32(cr.buf[4*i:])))
		}
		read += batch
	}

	if cr.h.flags&flagAttrs == 0 {
		c.Attrs = nil
	} else {
		c.Attrs = c.Attrs[:0]
		for read := int64(0); read < rows; {
			batch := min(rows-read, binaryChunkEntries)
			if err := cr.readFull(cr.buf[:8*batch], true); err != nil {
				return nil, err
			}
			for i := int64(0); i < batch; i++ {
				a := AttrVector(binary.LittleEndian.Uint64(cr.buf[8*i:]))
				if a != a.maskWidth(cr.h.w) {
					return nil, cr.fail("graph: chunked frame node %d attribute vector %#x has bits above width %d",
						c.Start+len(c.Attrs), uint64(a), cr.h.w)
				}
				c.Attrs = append(c.Attrs, a)
			}
			read += batch
		}
	}

	cr.next += int(rows)
	cr.off = prev
	return c, nil
}

// ReadAll drains the remaining frames and assembles the full graph, running
// the same complete CSR validation as the monolithic ReadBinary (monotone
// offsets, strictly increasing in-range rows, no self loops, symmetric
// adjacency). The result is indistinguishable from the monolithic decode of
// the same graph.
func (cr *ChunkReader) ReadAll() (*Graph, error) {
	n, m, w := cr.h.n, cr.h.m, cr.h.w
	offsets := make([]int64, 1, min(n+1, 2*binaryChunkEntries))
	neighbors := make([]int32, 0, min(2*m, 2*binaryChunkEntries))
	attrs := make([]AttrVector, 0, min(n, 2*binaryChunkEntries))
	for {
		c, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		offsets = append(offsets, c.EndOffsets...)
		neighbors = append(neighbors, c.Neighbors...)
		if c.Attrs != nil {
			attrs = append(attrs, c.Attrs...)
		}
	}
	if cr.h.flags&flagAttrs == 0 {
		attrs = make([]AttrVector, n)
	}
	if err := validateCSR(n, offsets, neighbors); err != nil {
		return nil, fmt.Errorf("graph: invalid chunked snapshot: %w", err)
	}
	return &Graph{w: w, m: m, offsets: offsets, neighbors: neighbors, attrs: attrs}, nil
}

// ReadBinaryChunked decodes a full graph from a chunked binary stream,
// with complete validation. Trailing bytes after the trailer are left unread.
func ReadBinaryChunked(r io.Reader) (*Graph, error) {
	cr, err := NewChunkReader(r)
	if err != nil {
		return nil, err
	}
	return cr.ReadAll()
}

// TranscodeChunked rewrites a monolithic binary snapshot, addressed at rest
// by r (size bytes long), into the chunked wire format on w — without
// decoding or validating the CSR arrays: frame payload sections are raw byte
// ranges of the stored arrays (the two formats share their little-endian
// entry encoding), so serving a chunked download of a stored graph costs
// O(frame) memory and no graph materialisation. The snapshot is trusted
// (stores content-address their bytes); only the header and size are
// checked.
func TranscodeChunked(w io.Writer, r io.ReaderAt, size int64, chunkRows int) error {
	chunkRows = normalizeChunkRows(chunkRows)
	var hdr [binaryHeaderSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("graph: reading snapshot header: %w", err)
	}
	h, err := parseBinaryHeader(hdr[:])
	if err != nil {
		return err
	}
	if size != h.size() {
		return fmt.Errorf("graph: snapshot is %d bytes, want exactly %d for its header", size, h.size())
	}
	n := h.n
	hasAttrs := h.flags&flagAttrs != 0
	offsetsBase := int64(binaryHeaderSize)
	neighborsBase := offsetsBase + int64(n+1)*8
	attrsBase := neighborsBase + int64(2*h.m)*4

	copy(hdr[0:8], chunkedMagic)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: writing chunked header: %w", err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])

	var frame []byte
	// One extra leading entry (offsets[start]) delimits each frame's neighbor
	// range; the frame payload carries only the end offsets.
	offBuf := make([]byte, 8*(min(chunkRows, n)+1))
	for start := 0; start < n; start += chunkRows {
		end := min(start+chunkRows, n)
		rows := end - start
		if _, err := r.ReadAt(offBuf[:8*(rows+1)], offsetsBase+int64(start)*8); err != nil {
			return fmt.Errorf("graph: reading snapshot offsets: %w", err)
		}
		lo := int64(binary.LittleEndian.Uint64(offBuf[0:8]))
		hi := int64(binary.LittleEndian.Uint64(offBuf[8*rows:]))
		if lo < 0 || hi < lo || hi > int64(2*h.m) {
			return fmt.Errorf("graph: corrupt snapshot offsets [%d, %d] for rows [%d, %d)", lo, hi, start, end)
		}
		k := hi - lo
		payload := int64(rows)*8 + k*4
		if hasAttrs {
			payload += int64(rows) * 8
		}
		need := chunkedFrameHeaderSize + int(payload)
		if cap(frame) < need {
			frame = make([]byte, need)
		}
		frame = frame[:need]
		binary.LittleEndian.PutUint32(frame[0:4], uint32(rows))
		binary.LittleEndian.PutUint64(frame[4:12], uint64(payload))
		p := chunkedFrameHeaderSize
		copy(frame[p:], offBuf[8:8*(rows+1)])
		p += rows * 8
		if _, err := r.ReadAt(frame[p:p+int(k)*4], neighborsBase+lo*4); err != nil {
			return fmt.Errorf("graph: reading snapshot neighbors: %w", err)
		}
		p += int(k) * 4
		if hasAttrs {
			if _, err := r.ReadAt(frame[p:p+rows*8], attrsBase+int64(start)*8); err != nil {
				return fmt.Errorf("graph: reading snapshot attrs: %w", err)
			}
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("graph: writing chunked frame at row %d: %w", start, err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, frame)
	}
	var trailer [chunkedTrailerSize]byte
	binary.LittleEndian.PutUint32(trailer[0:4], 0)
	binary.LittleEndian.PutUint64(trailer[4:12], 4)
	binary.LittleEndian.PutUint32(trailer[12:16], crc)
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("graph: writing chunked trailer: %w", err)
	}
	return nil
}
