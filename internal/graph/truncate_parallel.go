package graph

import "agmdp/internal/parallel"

// TruncateWith is Truncate with an explicit worker count (≤ 0 selects the
// process default), bit-identical to the sequential operator for every worker
// count.
//
// µ(G, k) looks inherently sequential — each deletion decision reads the
// running degrees left by every earlier deletion — but the order dependence
// is confined to a usually-small subset of edges. A node whose initial degree
// is at most k ("light") can never trigger a deletion: running degrees only
// decrease, so a light endpoint's degree stays ≤ k for the whole pass. An
// edge between two light nodes is therefore always kept, and processing it
// changes nothing. Every deletion decision — and every decrement feeding
// later decisions — happens at the edges incident to an initially-heavy
// node, in their canonical order. That yields a two-pass scheme:
//
//  1. a parallel pass over degree-weighted row shards collects the
//     heavy-incident edges; concatenating the shard lists in shard order
//     preserves the canonical (min, max)-sorted order, because shards are
//     contiguous row ranges;
//  2. a sequential replay of Definition 2 over just that subsequence decides
//     the deletions (exactly the decisions the full sequential pass makes);
//  3. a parallel pass packs the surviving rows into the output CSR, each
//     shard writing its disjoint row range.
//
// The replay is O(heavy-incident edges); on graphs where the k-bounded
// assumption roughly holds — the regime restricted sensitivity targets —
// that is a small fraction of m, and the two O(m) passes parallelise.
func (g *Graph) TruncateWith(k, workers int) *Graph {
	if k < 0 {
		panic("graph: negative truncation parameter")
	}
	workers = parallel.Resolve(workers)
	if workers <= 1 || g.m < minShardEdges {
		return g.Truncate(k)
	}
	n := len(g.attrs)
	degs := g.DegreesWith(workers)

	// Pass 1: collect heavy-incident edges in canonical order, sharded.
	shards := parallel.SplitWeighted(g.offsets, workers)
	lists := make([][]Edge, len(shards))
	parallel.Do(len(shards), func(s int) {
		r := shards[s]
		var list []Edge
		for u := r.Lo; u < r.Hi; u++ {
			if degs[u] > k {
				for _, v32 := range g.row(u) {
					if v := int(v32); v > u {
						list = append(list, Edge{U: u, V: v})
					}
				}
				continue
			}
			for _, v32 := range g.row(u) {
				if v := int(v32); v > u && degs[v] > k {
					list = append(list, Edge{U: u, V: v})
				}
			}
		}
		lists[s] = list
	})

	// Pass 2: sequential replay of the deletion rule over the subsequence.
	// degs becomes the running-degree array; at the end it holds the output
	// degrees (kept edges never decrement anything).
	var deleted map[int64]struct{}
	removed := 0
	for _, list := range lists {
		for _, e := range list {
			if degs[e.U] > k || degs[e.V] > k {
				if deleted == nil {
					deleted = make(map[int64]struct{})
				}
				deleted[int64(e.U)<<32|int64(e.V)] = struct{}{}
				degs[e.U]--
				degs[e.V]--
				removed++
			}
		}
	}
	if removed == 0 {
		return g.Clone()
	}

	// Pass 3: pack the surviving rows. Filtering a sorted row preserves its
	// order, so the result matches the sequential operator's canonical
	// re-pack array for array. Shards write disjoint row ranges; the deleted
	// set is read-only here, so sharing it across workers is safe.
	out := &Graph{
		w:       g.w,
		m:       g.m - removed,
		offsets: make([]int64, n+1),
		attrs:   make([]AttrVector, n),
	}
	copy(out.attrs, g.attrs)
	for i, d := range degs {
		out.offsets[i+1] = out.offsets[i] + int64(d)
	}
	out.neighbors = make([]int32, out.offsets[n])
	parallel.Do(len(shards), func(s int) {
		r := shards[s]
		for u := r.Lo; u < r.Hi; u++ {
			p := out.offsets[u]
			for _, v32 := range g.row(u) {
				v := int(v32)
				key := int64(u)<<32 | int64(v)
				if v < u {
					key = int64(v)<<32 | int64(u)
				}
				if _, gone := deleted[key]; gone {
					continue
				}
				out.neighbors[p] = v32
				p++
			}
		}
	})
	return out
}
