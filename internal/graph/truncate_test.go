package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTruncateBoundsDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 80, 0.15, 0)
	for _, k := range []int{1, 2, 3, 5, 10, 1000} {
		tr := g.Truncate(k)
		if !tr.IsDegreeBounded(k) {
			t.Fatalf("Truncate(%d) produced a node with degree > %d (max %d)", k, k, tr.MaxDegree())
		}
	}
}

func TestTruncateLargeKIsIdentity(t *testing.T) {
	g := buildTriangleWithTail()
	tr := g.Truncate(g.MaxDegree())
	if !tr.Equal(g) {
		t.Fatal("Truncate with k = dmax modified the graph")
	}
}

func TestTruncateZeroRemovesAllEdges(t *testing.T) {
	g := buildTriangleWithTail()
	tr := g.Truncate(0)
	if tr.NumEdges() != 0 {
		t.Fatalf("Truncate(0) left %d edges", tr.NumEdges())
	}
	if tr.NumNodes() != g.NumNodes() {
		t.Fatal("Truncate(0) changed the node count")
	}
}

func TestTruncateDoesNotMutateInput(t *testing.T) {
	g := star(10)
	before := g.NumEdges()
	_ = g.Truncate(2)
	if g.NumEdges() != before {
		t.Fatal("Truncate mutated the receiver")
	}
}

func TestTruncatePreservesAttributes(t *testing.T) {
	b := buildTriangleWithTailB()
	b.SetAttr(0, 3)
	b.SetAttr(3, 1)
	g := b.Finalize()
	tr := g.Truncate(1)
	for i := 0; i < g.NumNodes(); i++ {
		if tr.Attr(i) != g.Attr(i) {
			t.Fatalf("Truncate changed attribute of node %d", i)
		}
	}
}

func TestTruncateStarGraph(t *testing.T) {
	// In a star with hub degree 9, truncating to k keeps exactly k edges:
	// the canonical order processes hub edges one by one and stops deleting
	// once the hub degree drops to k.
	g := star(10)
	for _, k := range []int{1, 3, 5, 9} {
		tr := g.Truncate(k)
		if tr.NumEdges() != k {
			t.Fatalf("star Truncate(%d) kept %d edges, want %d", k, tr.NumEdges(), k)
		}
		if tr.Degree(0) != k {
			t.Fatalf("star Truncate(%d) hub degree = %d, want %d", k, tr.Degree(0), k)
		}
	}
}

func TestTruncateDeterministicCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 50, 0.2, 0)
	a := g.Truncate(4)
	b := g.Truncate(4)
	if !a.Equal(b) {
		t.Fatal("Truncate is not deterministic for a fixed input")
	}
}

func TestTruncatePanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Truncate(-1) did not panic")
		}
	}()
	buildTriangleWithTail().Truncate(-1)
}

func TestTruncationLoss(t *testing.T) {
	g := star(10)
	if got := g.TruncationLoss(3); got != 6 {
		t.Fatalf("TruncationLoss(3) = %d, want 6", got)
	}
	if got := g.TruncationLoss(9); got != 0 {
		t.Fatalf("TruncationLoss(9) = %d, want 0", got)
	}
}

// Property: truncation is a projection onto k-bounded graphs — truncating an
// already k-bounded graph is the identity (µ(µ(G,k),k) = µ(G,k)).
func TestTruncateIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40, 0.2, 0)
		k := 1 + rng.Intn(8)
		once := g.Truncate(k)
		twice := once.Truncate(k)
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the edge-adjacency stability that Proposition 1 relies on — adding
// one edge to the input changes the truncated graph by at most 3 edges
// (symmetric difference).
func TestTruncateEdgeStabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 0.15, 0)
		k := 2 + rng.Intn(6)
		// Pick a non-edge to add.
		var u, v int
		for tries := 0; tries < 100; tries++ {
			u, v = rng.Intn(30), rng.Intn(30)
			if u != v && !g.HasEdge(u, v) {
				break
			}
		}
		if u == v || g.HasEdge(u, v) {
			return true // dense corner case; skip
		}
		gb := g.Builder()
		gb.AddEdge(u, v)
		a := g.Truncate(k)
		b := gb.Finalize().Truncate(k)
		return symmetricDifference(a, b) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// symmetricDifference counts edges present in exactly one of the two graphs.
func symmetricDifference(a, b *Graph) int {
	diff := 0
	a.ForEachEdge(func(u, v int) bool {
		if !b.HasEdge(u, v) {
			diff++
		}
		return true
	})
	b.ForEachEdge(func(u, v int) bool {
		if !a.HasEdge(u, v) {
			diff++
		}
		return true
	})
	return diff
}
