package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text formats understood by this file:
//
// Edge list ("\t" or space separated, one edge per line, '#' comments):
//
//	# agmdp edge list
//	0 1
//	0 2
//
// Attribute file (one node per line: node ID followed by w binary values):
//
//	# agmdp attributes w=2
//	0 1 0
//	1 0 0
//
// Combined graph file (self-describing, written by WriteGraph):
//
//	# agmdp graph
//	nodes <n>
//	attrs <w>
//	node <id> <bit0> <bit1> ...
//	edge <u> <v>

// WriteEdgeList writes the graph's edges to w, one "u v" pair per line in
// canonical order.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# agmdp edge list: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// ReadEdgeList parses a whitespace-separated edge list. Node IDs may be
// arbitrary non-negative integers; the resulting graph has max(ID)+1 nodes and
// zero attributes. Lines starting with '#' or '%' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	var pairs []Edge
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want at least 2 fields, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: edge list line %d: negative node ID", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		pairs = append(pairs, Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	// FromEdges drops duplicates and self loops and packs the list into CSR
	// form in one pass.
	return FromEdges(maxID+1, 0, pairs), nil
}

// WriteGraph writes the full attributed graph (nodes, attributes and edges) in
// the self-describing "agmdp graph" text format.
func (g *Graph) WriteGraph(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# agmdp graph")
	fmt.Fprintf(bw, "nodes %d\n", g.NumNodes())
	fmt.Fprintf(bw, "attrs %d\n", g.NumAttributes())
	for i := 0; i < g.NumNodes(); i++ {
		fmt.Fprintf(bw, "node %d", i)
		for j := 0; j < g.NumAttributes(); j++ {
			fmt.Fprintf(bw, " %d", g.attrs[i].Bit(j))
		}
		fmt.Fprintln(bw)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// ReadGraph parses the "agmdp graph" format produced by WriteGraph. The node
// and edge directives are accumulated and packed into an immutable CSR graph
// once the whole stream has been validated.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var (
		attrs []AttrVector
		edges []Edge
	)
	haveBody := false
	n, w := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed nodes directive", line)
			}
			var err error
			n, err = strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
		case "attrs":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed attrs directive", line)
			}
			var err error
			w, err = strconv.Atoi(fields[1])
			if err != nil || w < 0 || w > MaxAttributes {
				return nil, fmt.Errorf("graph: line %d: bad attribute width %q", line, fields[1])
			}
		case "node":
			if n < 0 || w < 0 {
				return nil, fmt.Errorf("graph: line %d: node directive before nodes/attrs header", line)
			}
			haveBody = true
			if attrs == nil {
				attrs = make([]AttrVector, n)
			}
			if len(fields) != 2+w {
				return nil, fmt.Errorf("graph: line %d: node directive wants %d attribute bits", line, w)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= n {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", line, fields[1])
			}
			var a AttrVector
			for j := 0; j < w; j++ {
				bit, err := strconv.Atoi(fields[2+j])
				if err != nil || (bit != 0 && bit != 1) {
					return nil, fmt.Errorf("graph: line %d: attribute bit must be 0 or 1", line)
				}
				a = a.WithBit(j, uint8(bit))
			}
			attrs[id] = a
		case "edge":
			if n < 0 || w < 0 {
				return nil, fmt.Errorf("graph: line %d: edge directive before nodes/attrs header", line)
			}
			haveBody = true
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge directive", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, fmt.Errorf("graph: line %d: edge endpoint out of range", line)
			}
			edges = append(edges, Edge{U: u, V: v})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading graph: %w", err)
	}
	if !haveBody && (n < 0 || w < 0) {
		return nil, fmt.Errorf("graph: missing nodes/attrs header")
	}
	g := FromEdges(n, w, edges)
	if attrs != nil {
		g = g.WithAttributes(w, attrs)
	}
	return g, nil
}

// SaveGraph writes the graph to the named file in the "agmdp graph" format.
func SaveGraph(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	if err := g.WriteGraph(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadGraph reads a graph from the named file in the "agmdp graph" format.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadGraph(f)
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f)
}
