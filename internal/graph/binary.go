package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary CSR snapshot format ("AGMDPCSR", version 1).
//
// The text formats in io.go are line-oriented and allocation-heavy: every
// node and edge costs a formatted line on the way out and a scanner line,
// a Fields split and per-field Atoi calls on the way back in. The binary
// snapshot instead serialises the CSR arrays directly, so encoding is a
// sequential memory copy and decoding is a bulk read plus one validation
// pass. The layout, all little-endian:
//
//	magic     [8]byte  "AGMDPCSR"
//	version   uint32   1
//	flags     uint32   bit 0: attrs array present (set iff w > 0)
//	w         uint32   attribute width, [0, MaxAttributes]
//	reserved  uint32   must be zero
//	n         uint64   node count
//	m         uint64   undirected edge count
//	offsets   (n+1) × int64   CSR row offsets, offsets[0] = 0, offsets[n] = 2m
//	neighbors 2m × int32      concatenated rows, strictly increasing per row
//	attrs     n × uint64      attribute bitmasks (present iff flags bit 0)
//
// The encoding is canonical: a given graph has exactly one valid encoding,
// and ReadBinary rejects anything non-canonical (unknown flags, a nonzero
// reserved word, an attrs array on a width-0 graph, attribute bits above w).
// Canonical bytes make the format safe to content-address — equal graphs
// hash equal — which is what the graph store relies on.
//
// ReadBinary fully validates the structural invariants the rest of the
// package assumes (monotone offsets, sorted in-range rows, no self loops,
// symmetric adjacency), so a decoded graph is indistinguishable from one
// built by a Builder, and corrupt or adversarial input fails with an error
// rather than corrupting later analytics. Array reads are chunked, so a
// header that declares a huge graph fails with an I/O error after at most
// one chunk of over-allocation instead of exhausting memory up front.

const (
	binaryMagic   = "AGMDPCSR"
	binaryVersion = 1

	// flagAttrs marks the presence of the trailing attrs array.
	flagAttrs = 1 << 0

	// binaryHeaderSize is the fixed header length in bytes.
	binaryHeaderSize = 8 + 4 + 4 + 4 + 4 + 8 + 8

	// binaryChunkEntries bounds how many array entries are staged per
	// read/write call: large enough to amortise call overhead, small enough
	// that a lying header cannot force a huge allocation.
	binaryChunkEntries = 8192
)

// BinarySize returns the exact encoded length of the graph's binary
// snapshot in bytes.
func (g *Graph) BinarySize() int64 {
	size := int64(binaryHeaderSize)
	size += int64(len(g.offsets)) * 8
	size += int64(len(g.neighbors)) * 4
	if g.w > 0 {
		size += int64(len(g.attrs)) * 8
	}
	return size
}

// WriteBinary writes the graph as a binary CSR snapshot. The output is
// canonical: equal graphs produce byte-identical snapshots.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [binaryHeaderSize]byte
	copy(hdr[0:8], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], binaryVersion)
	var flags uint32
	if g.w > 0 {
		flags |= flagAttrs
	}
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(g.w))
	// hdr[20:24] is the reserved word, zero.
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(g.attrs)))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(g.m))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: writing binary header: %w", err)
	}
	var buf [8 * binaryChunkEntries]byte
	for start := 0; start < len(g.offsets); start += binaryChunkEntries {
		chunk := g.offsets[start:min(start+binaryChunkEntries, len(g.offsets))]
		for i, v := range chunk {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
		}
		if _, err := bw.Write(buf[:8*len(chunk)]); err != nil {
			return fmt.Errorf("graph: writing binary offsets: %w", err)
		}
	}
	for start := 0; start < len(g.neighbors); start += binaryChunkEntries {
		chunk := g.neighbors[start:min(start+binaryChunkEntries, len(g.neighbors))]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		if _, err := bw.Write(buf[:4*len(chunk)]); err != nil {
			return fmt.Errorf("graph: writing binary neighbors: %w", err)
		}
	}
	if flags&flagAttrs != 0 {
		for start := 0; start < len(g.attrs); start += binaryChunkEntries {
			chunk := g.attrs[start:min(start+binaryChunkEntries, len(g.attrs))]
			for i, v := range chunk {
				binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
			}
			if _, err := bw.Write(buf[:8*len(chunk)]); err != nil {
				return fmt.Errorf("graph: writing binary attrs: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: writing binary snapshot: %w", err)
	}
	return nil
}

// binaryHeader is the decoded fixed header of a binary CSR snapshot.
type binaryHeader struct {
	n, m, w int
	flags   uint32
}

// size returns the exact encoded length of the snapshot the header
// describes. The encoding is canonical, so the header fully determines it.
func (h binaryHeader) size() int64 {
	size := int64(binaryHeaderSize)
	size += int64(h.n+1) * 8
	size += int64(2*h.m) * 4
	if h.flags&flagAttrs != 0 {
		size += int64(h.n) * 8
	}
	return size
}

// parseBinaryHeader validates and decodes the fixed snapshot header,
// enforcing every canonical-form rule that is decidable from the header
// alone (magic, version, flags, attribute width, plausible counts).
func parseBinaryHeader(hdr []byte) (binaryHeader, error) {
	if string(hdr[0:8]) != binaryMagic {
		return binaryHeader{}, fmt.Errorf("graph: not an agmdp binary snapshot (magic %q)", hdr[0:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != binaryVersion {
		return binaryHeader{}, fmt.Errorf("graph: unsupported binary snapshot version %d (want %d)", v, binaryVersion)
	}
	flags := binary.LittleEndian.Uint32(hdr[12:16])
	if flags&^uint32(flagAttrs) != 0 {
		return binaryHeader{}, fmt.Errorf("graph: unknown binary snapshot flags %#x", flags)
	}
	w := binary.LittleEndian.Uint32(hdr[16:20])
	if w > MaxAttributes {
		return binaryHeader{}, fmt.Errorf("graph: binary snapshot attribute width %d outside [0, %d]", w, MaxAttributes)
	}
	if (flags&flagAttrs != 0) != (w > 0) {
		return binaryHeader{}, fmt.Errorf("graph: non-canonical binary snapshot: attrs flag %t with width %d", flags&flagAttrs != 0, w)
	}
	if reserved := binary.LittleEndian.Uint32(hdr[20:24]); reserved != 0 {
		return binaryHeader{}, fmt.Errorf("graph: non-canonical binary snapshot: reserved word %#x", reserved)
	}
	n64 := binary.LittleEndian.Uint64(hdr[24:32])
	m64 := binary.LittleEndian.Uint64(hdr[32:40])
	if n64 > math.MaxInt32 {
		return binaryHeader{}, fmt.Errorf("graph: binary snapshot node count %d exceeds the int32 ID space", n64)
	}
	n := int(n64)
	if m64 > uint64(maxEdges(n)) {
		return binaryHeader{}, fmt.Errorf("graph: binary snapshot edge count %d impossible for %d nodes", m64, n)
	}
	return binaryHeader{n: n, m: int(m64), w: int(w), flags: flags}, nil
}

// SnapshotStat is the lightweight metadata of a binary CSR snapshot,
// recoverable from its fixed header without decoding the arrays.
type SnapshotStat struct {
	// Nodes, Edges and Attributes are the graph dimensions (n, m, w).
	Nodes, Edges, Attributes int
	// Size is the exact encoded snapshot length in bytes. The encoding is
	// canonical, so a stored snapshot whose file length differs is corrupt.
	Size int64
}

// StatBinary decodes the metadata of a binary CSR snapshot from its leading
// bytes (at least the fixed header, BinaryHeaderSize bytes) without reading
// or validating the arrays. It is the O(header) entry point an out-of-core
// store uses to list snapshots it has not decoded.
func StatBinary(prefix []byte) (SnapshotStat, error) {
	if len(prefix) < binaryHeaderSize {
		return SnapshotStat{}, fmt.Errorf("graph: binary snapshot header truncated at %d bytes (want %d)", len(prefix), binaryHeaderSize)
	}
	h, err := parseBinaryHeader(prefix[:binaryHeaderSize])
	if err != nil {
		return SnapshotStat{}, err
	}
	return SnapshotStat{Nodes: h.n, Edges: h.m, Attributes: h.w, Size: h.size()}, nil
}

// BinaryHeaderSize is the length of the fixed snapshot header: the prefix
// StatBinary needs.
const BinaryHeaderSize = binaryHeaderSize

// ReadBinary parses a binary CSR snapshot written by WriteBinary, fully
// validating the graph invariants (canonical header, monotone offsets,
// strictly increasing in-range rows, no self loops, symmetric adjacency)
// before constructing the graph. Trailing bytes after the snapshot are left
// unread.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [binaryHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	h, err := parseBinaryHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	n, m, w, flags := h.n, h.m, h.w, h.flags

	offsets, err := readInt64s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: reading binary offsets: %w", err)
	}
	neighbors, err := readInt32s(br, 2*m)
	if err != nil {
		return nil, fmt.Errorf("graph: reading binary neighbors: %w", err)
	}
	attrs := make([]AttrVector, n)
	if flags&flagAttrs != 0 {
		if err := readAttrs(br, attrs, w); err != nil {
			return nil, fmt.Errorf("graph: reading binary attrs: %w", err)
		}
	}
	if err := validateCSR(n, offsets, neighbors); err != nil {
		return nil, fmt.Errorf("graph: invalid binary snapshot: %w", err)
	}
	return &Graph{w: w, m: m, offsets: offsets, neighbors: neighbors, attrs: attrs}, nil
}

// DecodeBinary parses a binary CSR snapshot held fully in memory, with the
// same complete validation as ReadBinary. It is the lazy-decode entry point
// for stores that keep canonical snapshot bytes (heap-resident or mmap'd)
// and materialise the graph on first use: decoding straight off the slice
// skips the reader plumbing and the chunk staging buffers of the stream
// path. Unlike ReadBinary, the slice must be exactly one snapshot — trailing
// bytes fail decoding, because a content-addressed snapshot with trailing
// junk is by definition corrupt.
//
// The decoded graph shares no memory with data: callers may unmap or reuse
// the input once DecodeBinary returns.
func DecodeBinary(data []byte) (*Graph, error) {
	if len(data) < binaryHeaderSize {
		return nil, fmt.Errorf("graph: binary snapshot truncated at %d bytes (want at least %d)", len(data), binaryHeaderSize)
	}
	h, err := parseBinaryHeader(data[:binaryHeaderSize])
	if err != nil {
		return nil, err
	}
	if want := h.size(); int64(len(data)) != want {
		return nil, fmt.Errorf("graph: binary snapshot is %d bytes, want exactly %d for its header", len(data), want)
	}
	n, m, w := h.n, h.m, h.w

	body := data[binaryHeaderSize:]
	offsets := make([]int64, n+1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
	}
	body = body[8*(n+1):]
	neighbors := make([]int32, 2*m)
	for i := range neighbors {
		neighbors[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	attrs := make([]AttrVector, n)
	if h.flags&flagAttrs != 0 {
		body = body[4*2*m:]
		for i := range attrs {
			a := AttrVector(binary.LittleEndian.Uint64(body[8*i:]))
			if a != a.maskWidth(w) {
				return nil, fmt.Errorf("graph: reading binary attrs: node %d attribute vector %#x has bits above width %d", i, uint64(a), w)
			}
			attrs[i] = a
		}
	}
	if err := validateCSR(n, offsets, neighbors); err != nil {
		return nil, fmt.Errorf("graph: invalid binary snapshot: %w", err)
	}
	return &Graph{w: w, m: m, offsets: offsets, neighbors: neighbors, attrs: attrs}, nil
}

// MemoryBytes estimates the resident heap footprint of the decoded graph:
// the CSR arrays plus the attribute vectors (allocated for every node even
// on width-0 graphs). Byte-budget caches use it to account decoded graphs;
// the struct header and allocator rounding are ignored.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.neighbors))*4 + int64(len(g.attrs))*8
}

// maxEdges returns the maximum undirected simple-graph edge count for n
// nodes, n·(n−1)/2.
func maxEdges(n int) int64 {
	if n < 2 {
		return 0
	}
	return int64(n) * int64(n-1) / 2
}

// readInt64s reads count little-endian int64 values in bounded chunks, so a
// corrupt header cannot force a single huge allocation.
func readInt64s(r io.Reader, count int) ([]int64, error) {
	out := make([]int64, 0, min(count, binaryChunkEntries))
	var buf [8 * binaryChunkEntries]byte
	for len(out) < count {
		batch := min(count-len(out), binaryChunkEntries)
		if _, err := io.ReadFull(r, buf[:8*batch]); err != nil {
			return nil, err
		}
		for i := 0; i < batch; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	return out, nil
}

// readInt32s reads count little-endian int32 values in bounded chunks.
func readInt32s(r io.Reader, count int) ([]int32, error) {
	out := make([]int32, 0, min(count, binaryChunkEntries))
	var buf [4 * binaryChunkEntries]byte
	for len(out) < count {
		batch := min(count-len(out), binaryChunkEntries)
		if _, err := io.ReadFull(r, buf[:4*batch]); err != nil {
			return nil, err
		}
		for i := 0; i < batch; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return out, nil
}

// readAttrs fills attrs with little-endian attribute bitmasks, rejecting
// vectors with bits above width w (they would make the encoding
// non-canonical).
func readAttrs(r io.Reader, attrs []AttrVector, w int) error {
	var buf [8 * binaryChunkEntries]byte
	for start := 0; start < len(attrs); start += binaryChunkEntries {
		batch := min(len(attrs)-start, binaryChunkEntries)
		if _, err := io.ReadFull(r, buf[:8*batch]); err != nil {
			return err
		}
		for i := 0; i < batch; i++ {
			a := AttrVector(binary.LittleEndian.Uint64(buf[8*i:]))
			if a != a.maskWidth(w) {
				return fmt.Errorf("node %d attribute vector %#x has bits above width %d", start+i, uint64(a), w)
			}
			attrs[start+i] = a
		}
	}
	return nil
}

// validateCSR checks the structural invariants every Graph consumer assumes:
// offsets start at zero, never decrease and end at len(neighbors); each row
// is strictly increasing with in-range endpoints and no self loops; and the
// adjacency is symmetric.
func validateCSR(n int, offsets []int64, neighbors []int32) error {
	if offsets[0] != 0 {
		return fmt.Errorf("offsets[0] = %d, want 0", offsets[0])
	}
	for i := 0; i < n; i++ {
		if offsets[i+1] < offsets[i] {
			return fmt.Errorf("offsets decrease at row %d (%d -> %d)", i, offsets[i], offsets[i+1])
		}
	}
	if offsets[n] != int64(len(neighbors)) {
		return fmt.Errorf("offsets end at %d, want %d (= 2m)", offsets[n], len(neighbors))
	}
	row := func(u int) []int32 { return neighbors[offsets[u]:offsets[u+1]] }
	// While validating the rows, count the two edge orientations: symmetric
	// adjacency needs exactly as many forward entries (v > u) as reverse
	// entries (v < u).
	var forward, reverse int64
	for u := 0; u < n; u++ {
		prev := int32(-1)
		for _, v := range row(u) {
			if v <= prev {
				return fmt.Errorf("row %d is not strictly increasing", u)
			}
			if int(v) >= n {
				return fmt.Errorf("row %d neighbour %d out of range [0, %d)", u, v, n)
			}
			if int(v) == u {
				return fmt.Errorf("self loop at node %d", u)
			}
			if int(v) > u {
				forward++
			} else {
				reverse++
			}
			prev = v
		}
	}
	return validateSymmetry(n, offsets, neighbors, forward, reverse)
}

// validateSymmetry verifies that every directed entry has its reverse, in
// O(n + m) with a counting argument instead of a per-edge binary search
// (O(m log d)). Rows are already known sorted, so the forward entries (u, v)
// with v > u arrive with strictly increasing u; a per-row cursor therefore
// sweeps each reverse row once while matching them. The cursor pass proves
// every forward entry has a distinct reverse partner; the orientation counts
// being equal then proves no stray reverse entry is left unmatched — without
// the count, an asymmetric snapshot whose stray entries all point backward
// (say a lone {3→2} with no {2→3}) would slip through the sweep untouched.
func validateSymmetry(n int, offsets []int64, neighbors []int32, forward, reverse int64) error {
	if forward != reverse {
		return fmt.Errorf("asymmetric adjacency: %d forward entries vs %d reverse entries", forward, reverse)
	}
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		rowU := neighbors[offsets[u]:offsets[u+1]]
		for _, v := range rowU {
			if int(v) < u {
				continue // reverse entries are consumed by the cursors below
			}
			// Require u in row v: skip v's reverse entries below u (each is
			// passed at most once across the whole pass), then match.
			c, end := cursor[v], offsets[int(v)+1]
			for c < end && neighbors[c] < int32(u) {
				c++
			}
			if c >= end || neighbors[c] != int32(u) {
				return fmt.Errorf("asymmetric adjacency: edge {%d,%d} missing its reverse entry", u, v)
			}
			cursor[v] = c + 1
		}
	}
	return nil
}

// SaveBinary writes the graph to the named file as a binary CSR snapshot.
func SaveBinary(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	if err := g.WriteBinary(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from the named binary CSR snapshot file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}
