package graph_test

// PR 8 benchmark pairs: the chunked wire codec against the monolithic binary
// snapshot, and the serving stage of the streaming sampling pipeline —
// encoding straight from the sampler's still-mutable builder — against the
// materialised baseline that packs a CSR graph first and then encodes it.
// The serve pair is where the O(shard) memory claim lives: the materialised
// path allocates the full offsets/neighbors/attrs arrays per request, the
// streamed path only the encoder's bounded buffers. scripts/bench.sh records
// the ratios (time and allocated bytes) in BENCH_pr8.json.

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/structural"
)

// chunkedBenchRows keeps the 30k-node fixture multi-frame (8 frames) so the
// decode benchmark exercises real frame boundaries, not one giant frame.
const chunkedBenchRows = 4096

var (
	chunkedBenchOnce  sync.Once
	chunkedBenchBytes []byte
)

// chunkedBenchFixture returns the io fixture graph and its chunked framing.
func chunkedBenchFixture(tb testing.TB) (*graph.Graph, []byte) {
	g, _, _ := ioBenchFixture(tb)
	chunkedBenchOnce.Do(func() {
		var buf bytes.Buffer
		if err := graph.WriteBinaryChunked(&buf, g, chunkedBenchRows); err != nil {
			panic(err)
		}
		chunkedBenchBytes = buf.Bytes()
	})
	return g, chunkedBenchBytes
}

var (
	streamBenchOnce sync.Once
	streamBenchSrc  graph.RowSource
	streamBenchSize int64
)

// streamBenchFixture builds what the sampling pipeline hands the server: a
// heavy-tailed Chung–Lu generation left unpacked in its builder, with the
// sampled attribute vectors overlaid lazily.
func streamBenchFixture(tb testing.TB) (graph.RowSource, int64) {
	streamBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(6))
		degs := benchDegrees(rng, ioBenchNodes, 400)
		for i := range degs {
			degs[i] += 6
		}
		b := structural.FCL{}.GenerateBuilder(rng, ioBenchNodes, structural.Params{Degrees: degs}, nil)
		vecs := make([]graph.AttrVector, ioBenchNodes)
		for i := range vecs {
			vecs[i] = graph.AttrVector(rng.Uint64() & 3)
		}
		streamBenchSrc = graph.SourceWithAttributes(b, 2, vecs)
		streamBenchSize = graph.SourceBinarySize(streamBenchSrc)
	})
	if streamBenchSrc.NumEdges() < 100_000 {
		tb.Fatalf("stream bench fixture has only %d edges, want >= 100k", streamBenchSrc.NumEdges())
	}
	return streamBenchSrc, streamBenchSize
}

func BenchmarkWriteBinaryChunked(b *testing.B) {
	g, framed := chunkedBenchFixture(b)
	b.SetBytes(int64(len(framed)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graph.WriteBinaryChunked(io.Discard, g, chunkedBenchRows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinaryChunked(b *testing.B) {
	_, framed := chunkedBenchFixture(b)
	b.SetBytes(int64(len(framed)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.ReadBinaryChunked(bytes.NewReader(framed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSampledMaterialized is the pre-PR-8 serving stage: pack the
// sampled builder into a CSR graph, then encode the snapshot.
func BenchmarkServeSampledMaterialized(b *testing.B) {
	src, size := streamBenchFixture(b)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.Materialize(src)
		if err := g.WriteBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSampledStreamed is the streamed serving stage: encode the
// monolithic snapshot straight from the builder, no packed arrays.
func BenchmarkServeSampledStreamed(b *testing.B) {
	src, size := streamBenchFixture(b)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graph.WriteBinaryTo(io.Discard, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSampledStreamedChunked streams the framed chunked wire format
// straight from the builder — what POST /v1/sample?format=chunked runs. The
// frame size is the -stream-chunk-rows knob; 4096 keeps the 30k-node fixture
// multi-frame so the measured allocation is the O(frame) reuse buffer, not
// the single-frame degenerate case.
func BenchmarkServeSampledStreamedChunked(b *testing.B) {
	src, size := streamBenchFixture(b)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graph.WriteBinaryChunked(io.Discard, src, chunkedBenchRows); err != nil {
			b.Fatal(err)
		}
	}
}
