package graph

// Truncate applies the edge truncation operator µ(G, k) of Definition 2
// (originally from Blocki et al., restricted sensitivity): edges are visited
// in the canonical ordering (sorted by (min endpoint, max endpoint)) and an
// edge is deleted if, at the time it is processed, either endpoint still has
// degree greater than k. The result is a k-bounded graph: every node has
// degree at most k.
//
// The receiver is not modified; a new graph (sharing no storage with g) is
// returned. Attribute vectors are preserved. Truncate panics if k < 0.
func (g *Graph) Truncate(k int) *Graph {
	if k < 0 {
		panic("graph: negative truncation parameter")
	}
	out := g.Clone()
	if k == 0 {
		// Degree bound zero removes every edge.
		for _, e := range out.Edges() {
			out.RemoveEdge(e.U, e.V)
		}
		return out
	}
	for _, e := range g.Edges() { // canonical order from the original graph
		if out.Degree(e.U) > k || out.Degree(e.V) > k {
			out.RemoveEdge(e.U, e.V)
		}
	}
	return out
}

// IsDegreeBounded reports whether every node has degree at most k.
func (g *Graph) IsDegreeBounded(k int) bool {
	for i := range g.adj {
		if len(g.adj[i]) > k {
			return false
		}
	}
	return true
}

// TruncationLoss returns the number of edges removed by Truncate(k) without
// materialising the truncated graph twice. It is a convenience for tuning the
// truncation parameter in non-private analyses and tests.
func (g *Graph) TruncationLoss(k int) int {
	return g.NumEdges() - g.Truncate(k).NumEdges()
}
