package graph

// Truncate applies the edge truncation operator µ(G, k) of Definition 2
// (originally from Blocki et al., restricted sensitivity): edges are visited
// in the canonical ordering (sorted by (min endpoint, max endpoint)) and an
// edge is deleted if, at the time it is processed, either endpoint still has
// degree greater than k. The result is a k-bounded graph: every node has
// degree at most k.
//
// The receiver is immutable and unchanged; a new graph is returned. Instead of
// materialising a mutable copy, the pass simulates the sequential deletions on
// a degree array and packs the surviving edges (already in canonical order in
// the CSR rows) straight into a new CSR graph. Attribute vectors are
// preserved. Truncate panics if k < 0.
func (g *Graph) Truncate(k int) *Graph {
	if k < 0 {
		panic("graph: negative truncation parameter")
	}
	degs := g.Degrees()
	kept := make([]Edge, 0, g.m)
	g.ForEachEdge(func(u, v int) bool {
		if degs[u] > k || degs[v] > k {
			degs[u]--
			degs[v]--
			return true
		}
		kept = append(kept, Edge{U: u, V: v})
		return true
	})
	out := fromCanonicalEdges(len(g.attrs), g.w, kept)
	copy(out.attrs, g.attrs)
	return out
}

// IsDegreeBounded reports whether every node has degree at most k.
func (g *Graph) IsDegreeBounded(k int) bool {
	for i := range g.attrs {
		if g.Degree(i) > k {
			return false
		}
	}
	return true
}

// TruncationLoss returns the number of edges removed by Truncate(k) without
// materialising the truncated graph twice. It is a convenience for tuning the
// truncation parameter in non-private analyses and tests.
func (g *Graph) TruncationLoss(k int) int {
	return g.NumEdges() - g.Truncate(k).NumEdges()
}
