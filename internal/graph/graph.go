// Package graph provides the attributed simple-graph substrate used throughout
// the AGM-DP library.
//
// A Graph is an undirected, unweighted simple graph (no self loops, no
// multi-edges) whose nodes carry a fixed-width vector of binary attributes, as
// in Section 2.1 of Jorgensen, Yu and Cormode (SIGMOD 2016). Nodes are
// identified by dense integer IDs in [0, NumNodes). Attribute vectors are
// stored as bitmasks of up to MaxAttributes bits, which matches the paper's
// setting of w binary attributes (non-binary attributes are handled upstream
// by binarisation, exactly as the paper prescribes in Section 7).
//
// The package also provides the structural measurements the paper relies on:
// degree sequences, triangle and wedge counts, local and global clustering
// coefficients, connected components, induced subgraphs and the edge
// truncation operator µ(G, k) of Definition 2.
package graph

import (
	"fmt"
	"sort"
)

// MaxAttributes is the largest attribute-vector width supported by Graph.
// Attribute vectors are stored as uint64 bitmasks, so 64 binary attributes
// can be represented. The paper's experiments use w = 2.
const MaxAttributes = 64

// AttrVector is a node attribute vector encoded as a bitmask: bit j holds the
// value of the j-th binary attribute. With w attributes only the low w bits
// are meaningful.
type AttrVector uint64

// Bit reports the value (0 or 1) of attribute j.
func (a AttrVector) Bit(j int) uint8 {
	return uint8((a >> uint(j)) & 1)
}

// WithBit returns a copy of the vector with attribute j set to v (0 or 1).
func (a AttrVector) WithBit(j int, v uint8) AttrVector {
	if v == 0 {
		return a &^ (1 << uint(j))
	}
	return a | (1 << uint(j))
}

// Edge is an undirected edge between nodes U and V. The canonical form has
// U < V; use Canonical to normalise.
type Edge struct {
	U, V int
}

// Canonical returns the edge with its endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an attributed, undirected simple graph.
//
// The zero value is not usable; construct graphs with New or the loaders in
// this package. Graph is not safe for concurrent mutation; concurrent readers
// are safe once construction is complete.
type Graph struct {
	w     int
	m     int
	adj   []map[int]struct{}
	attrs []AttrVector
}

// New returns an empty graph with n nodes, no edges, and w binary attributes
// per node (all initialised to zero). It panics if n < 0 or w is outside
// [0, MaxAttributes].
func New(n, w int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	if w < 0 || w > MaxAttributes {
		panic(fmt.Sprintf("graph: attribute width %d outside [0, %d]", w, MaxAttributes))
	}
	g := &Graph{
		w:     w,
		adj:   make([]map[int]struct{}, n),
		attrs: make([]AttrVector, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// NumNodes returns the number of nodes n.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return g.m }

// NumAttributes returns the attribute-vector width w.
func (g *Graph) NumAttributes() int { return g.w }

// validNode panics if i is not a valid node ID.
func (g *Graph) validNode(i int) {
	if i < 0 || i >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", i, len(g.adj)))
	}
}

// AddEdge inserts the undirected edge {i, j}. It returns true if the edge was
// added and false if it already existed or i == j (self loops are ignored,
// keeping the graph simple).
func (g *Graph) AddEdge(i, j int) bool {
	g.validNode(i)
	g.validNode(j)
	if i == j {
		return false
	}
	if _, ok := g.adj[i][j]; ok {
		return false
	}
	g.adj[i][j] = struct{}{}
	g.adj[j][i] = struct{}{}
	g.m++
	return true
}

// RemoveEdge deletes the undirected edge {i, j} if present and reports whether
// an edge was removed.
func (g *Graph) RemoveEdge(i, j int) bool {
	g.validNode(i)
	g.validNode(j)
	if _, ok := g.adj[i][j]; !ok {
		return false
	}
	delete(g.adj[i], j)
	delete(g.adj[j], i)
	g.m--
	return true
}

// HasEdge reports whether the undirected edge {i, j} exists.
func (g *Graph) HasEdge(i, j int) bool {
	g.validNode(i)
	g.validNode(j)
	_, ok := g.adj[i][j]
	return ok
}

// Degree returns the degree d_i of node i.
func (g *Graph) Degree(i int) int {
	g.validNode(i)
	return len(g.adj[i])
}

// Neighbors returns the neighbour set Γ(i) as a freshly allocated, sorted
// slice. Mutating the result does not affect the graph.
func (g *Graph) Neighbors(i int) []int {
	g.validNode(i)
	out := make([]int, 0, len(g.adj[i]))
	for v := range g.adj[i] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ForEachNeighbor calls fn for every neighbour of node i in unspecified order.
// Iteration stops early if fn returns false.
func (g *Graph) ForEachNeighbor(i int, fn func(j int) bool) {
	g.validNode(i)
	for v := range g.adj[i] {
		if !fn(v) {
			return
		}
	}
}

// Attr returns the attribute vector of node i.
func (g *Graph) Attr(i int) AttrVector {
	g.validNode(i)
	return g.attrs[i]
}

// SetAttr assigns the attribute vector of node i. Bits above the graph's
// attribute width are cleared.
func (g *Graph) SetAttr(i int, a AttrVector) {
	g.validNode(i)
	if g.w < MaxAttributes {
		a &= (1 << uint(g.w)) - 1
	}
	g.attrs[i] = a
}

// Attrs returns a copy of all node attribute vectors indexed by node ID.
func (g *Graph) Attrs() []AttrVector {
	out := make([]AttrVector, len(g.attrs))
	copy(out, g.attrs)
	return out
}

// Edges returns every undirected edge exactly once, in the canonical ordering
// used by the truncation operator: sorted by (min endpoint, max endpoint).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	return edges
}

// ForEachEdge calls fn once per undirected edge in unspecified order.
// Iteration stops early if fn returns false.
func (g *Graph) ForEachEdge(fn func(u, v int) bool) {
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		w:     g.w,
		m:     g.m,
		adj:   make([]map[int]struct{}, len(g.adj)),
		attrs: make([]AttrVector, len(g.attrs)),
	}
	copy(c.attrs, g.attrs)
	for i, nb := range g.adj {
		c.adj[i] = make(map[int]struct{}, len(nb))
		for v := range nb {
			c.adj[i][v] = struct{}{}
		}
	}
	return c
}

// CloneStructure returns a copy of the graph with the same nodes and edges but
// with all attribute vectors reset to zero.
func (g *Graph) CloneStructure() *Graph {
	c := g.Clone()
	for i := range c.attrs {
		c.attrs[i] = 0
	}
	return c
}

// FromEdges builds a graph with n nodes and w attributes from an edge list.
// Duplicate edges and self loops are silently dropped.
func FromEdges(n, w int, edges []Edge) *Graph {
	g := New(n, w)
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// CommonNeighbors returns |Γ(i) ∩ Γ(j)|, the number of common neighbours of i
// and j. The smaller adjacency set is scanned, so the cost is
// O(min(d_i, d_j)).
func (g *Graph) CommonNeighbors(i, j int) int {
	g.validNode(i)
	g.validNode(j)
	a, b := g.adj[i], g.adj[j]
	if len(a) > len(b) {
		a, b = b, a
	}
	cn := 0
	for v := range a {
		if _, ok := b[v]; ok {
			cn++
		}
	}
	return cn
}

// Equal reports whether g and h have identical node counts, attribute widths,
// edge sets and attribute assignments. It is primarily intended for tests.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.w != h.w || g.m != h.m {
		return false
	}
	for i := range g.adj {
		if g.attrs[i] != h.attrs[i] {
			return false
		}
		if len(g.adj[i]) != len(h.adj[i]) {
			return false
		}
		for v := range g.adj[i] {
			if _, ok := h.adj[i][v]; !ok {
				return false
			}
		}
	}
	return true
}
