// Package graph provides the attributed simple-graph substrate used throughout
// the AGM-DP library.
//
// A Graph is an undirected, unweighted simple graph (no self loops, no
// multi-edges) whose nodes carry a fixed-width vector of binary attributes, as
// in Section 2.1 of Jorgensen, Yu and Cormode (SIGMOD 2016). Nodes are
// identified by dense integer IDs in [0, NumNodes). Attribute vectors are
// stored as bitmasks of up to MaxAttributes bits, which matches the paper's
// setting of w binary attributes (non-binary attributes are handled upstream
// by binarisation, exactly as the paper prescribes in Section 7).
//
// # Builder → CSR lifecycle
//
// The package follows a two-phase design. Graphs are constructed and mutated
// through a Builder, whose adjacency is kept as per-node sorted slices so that
// construction stays deterministic; Builder.Finalize then freezes the topology
// into a Graph, an immutable compressed-sparse-row (CSR) representation:
//
//	offsets   []int64 — row i occupies neighbors[offsets[i]:offsets[i+1]]
//	neighbors []int32 — concatenated neighbour lists, sorted within each row
//
// The immutability contract: a finalized Graph never changes. There are no
// mutating methods on Graph — every "derived" graph operation (Truncate,
// InducedSubgraph, WithAttributes, ...) returns a new Graph, and any Graph may
// therefore be shared freely across goroutines without synchronisation.
// Because rows are sorted, edge membership is a binary search and all
// neighbourhood intersections (triangle and wedge counting, clustering,
// common-neighbour queries) run as cache-friendly sorted merges instead of
// hash probes.
//
// The package also provides the structural measurements the paper relies on:
// degree sequences, triangle and wedge counts, local and global clustering
// coefficients, connected components, induced subgraphs and the edge
// truncation operator µ(G, k) of Definition 2.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// MaxAttributes is the largest attribute-vector width supported by Graph.
// Attribute vectors are stored as uint64 bitmasks, so 64 binary attributes
// can be represented. The paper's experiments use w = 2.
const MaxAttributes = 64

// AttrVector is a node attribute vector encoded as a bitmask: bit j holds the
// value of the j-th binary attribute. With w attributes only the low w bits
// are meaningful.
type AttrVector uint64

// Bit reports the value (0 or 1) of attribute j.
func (a AttrVector) Bit(j int) uint8 {
	return uint8((a >> uint(j)) & 1)
}

// WithBit returns a copy of the vector with attribute j set to v (0 or 1).
func (a AttrVector) WithBit(j int, v uint8) AttrVector {
	if v == 0 {
		return a &^ (1 << uint(j))
	}
	return a | (1 << uint(j))
}

// maskWidth clears the bits of a above width w.
func (a AttrVector) maskWidth(w int) AttrVector {
	if w < MaxAttributes {
		return a & ((1 << uint(w)) - 1)
	}
	return a
}

// Edge is an undirected edge between nodes U and V. The canonical form has
// U < V; use Canonical to normalise.
type Edge struct {
	U, V int
}

// Canonical returns the edge with its endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an attributed, undirected simple graph in immutable CSR form.
//
// The zero value is not usable; construct graphs with a Builder, with New /
// FromEdges, or with the loaders in this package. A Graph never changes after
// construction, so it is safe for unrestricted concurrent use. To derive a
// modified graph, obtain a mutable copy with Builder() and finalize it again.
type Graph struct {
	w         int
	m         int
	offsets   []int64
	neighbors []int32
	attrs     []AttrVector
}

// checkDims panics when the node count or attribute width is out of range.
func checkDims(n, w int) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: node count %d exceeds the int32 ID space", n))
	}
	if w < 0 || w > MaxAttributes {
		panic(fmt.Sprintf("graph: attribute width %d outside [0, %d]", w, MaxAttributes))
	}
}

// New returns an empty immutable graph with n nodes, no edges, and w binary
// attributes per node (all initialised to zero). It panics if n < 0 or w is
// outside [0, MaxAttributes]. To build a graph with edges, use NewBuilder or
// FromEdges.
func New(n, w int) *Graph {
	checkDims(n, w)
	return &Graph{
		w:       w,
		offsets: make([]int64, n+1),
		attrs:   make([]AttrVector, n),
	}
}

// NumNodes returns the number of nodes n.
func (g *Graph) NumNodes() int { return len(g.attrs) }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return g.m }

// NumAttributes returns the attribute-vector width w.
func (g *Graph) NumAttributes() int { return g.w }

// validNode panics if i is not a valid node ID.
func (g *Graph) validNode(i int) {
	if i < 0 || i >= len(g.attrs) {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", i, len(g.attrs)))
	}
}

// row returns node i's neighbour row as a shared CSR slice.
func (g *Graph) row(i int) []int32 {
	return g.neighbors[g.offsets[i]:g.offsets[i+1]]
}

// HasEdge reports whether the undirected edge {i, j} exists. Rows are sorted,
// so the check is a binary search over the smaller endpoint's row.
func (g *Graph) HasEdge(i, j int) bool {
	g.validNode(i)
	g.validNode(j)
	if i == j {
		return false
	}
	a, b := g.row(i), g.row(j)
	if len(a) > len(b) {
		a, j = b, i
	}
	return containsSorted(a, int32(j))
}

// Degree returns the degree d_i of node i.
func (g *Graph) Degree(i int) int {
	g.validNode(i)
	return int(g.offsets[i+1] - g.offsets[i])
}

// Neighbors returns the neighbour set Γ(i) as a freshly allocated, sorted
// slice. Mutating the result does not affect the graph. Hot paths should
// prefer NeighborsView, which does not allocate.
func (g *Graph) Neighbors(i int) []int {
	g.validNode(i)
	row := g.row(i)
	out := make([]int, len(row))
	for k, v := range row {
		out[k] = int(v)
	}
	return out
}

// NeighborsView returns node i's sorted neighbour row as a view into the
// graph's shared CSR storage. The slice is valid for the lifetime of the
// graph and MUST NOT be modified by the caller.
func (g *Graph) NeighborsView(i int) []int32 {
	g.validNode(i)
	return g.row(i)
}

// RowOffsets returns the CSR row-offset array as a view into the graph's
// shared storage: row i occupies neighbors[RowOffsets()[i]:RowOffsets()[i+1]].
// The array is an inclusive prefix sum over node degrees — exactly the shape
// parallel.SplitWeighted consumes — so callers outside this package can shard
// per-node work by degree weight without rebuilding the prefix sum. The slice
// is valid for the lifetime of the graph and MUST NOT be modified.
func (g *Graph) RowOffsets() []int64 { return g.offsets }

// ForEachNeighbor calls fn for every neighbour of node i in ascending order.
// Iteration stops early if fn returns false.
func (g *Graph) ForEachNeighbor(i int, fn func(j int) bool) {
	g.validNode(i)
	for _, v := range g.row(i) {
		if !fn(int(v)) {
			return
		}
	}
}

// Attr returns the attribute vector of node i.
func (g *Graph) Attr(i int) AttrVector {
	g.validNode(i)
	return g.attrs[i]
}

// Attrs returns a copy of all node attribute vectors indexed by node ID.
func (g *Graph) Attrs() []AttrVector {
	out := make([]AttrVector, len(g.attrs))
	copy(out, g.attrs)
	return out
}

// WithAttributes returns a graph that shares this graph's topology but has
// attribute width w and the given attribute vectors (bits above w are
// cleared). The receiver is unchanged; the topology arrays are shared, so the
// call is O(n) regardless of the edge count. It panics if len(vecs) differs
// from the node count.
func (g *Graph) WithAttributes(w int, vecs []AttrVector) *Graph {
	checkDims(len(g.attrs), w)
	if len(vecs) != len(g.attrs) {
		panic(fmt.Sprintf("graph: %d attribute vectors for %d nodes", len(vecs), len(g.attrs)))
	}
	attrs := make([]AttrVector, len(vecs))
	for i, a := range vecs {
		attrs[i] = a.maskWidth(w)
	}
	return &Graph{w: w, m: g.m, offsets: g.offsets, neighbors: g.neighbors, attrs: attrs}
}

// Edges returns every undirected edge exactly once, in the canonical ordering
// used by the truncation operator: sorted by (min endpoint, max endpoint).
// The CSR layout already stores rows sorted, so no sorting pass is needed.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := range g.attrs {
		for _, v := range g.row(u) {
			if int(v) > u {
				edges = append(edges, Edge{U: u, V: int(v)})
			}
		}
	}
	return edges
}

// ForEachEdge calls fn once per undirected edge in canonical order.
// Iteration stops early if fn returns false.
func (g *Graph) ForEachEdge(fn func(u, v int) bool) {
	for u := range g.attrs {
		for _, v := range g.row(u) {
			if int(v) > u {
				if !fn(u, int(v)) {
					return
				}
			}
		}
	}
}

// Clone returns a graph equal to g. Because graphs are immutable the clone
// shares the underlying storage; the call is O(1) and exists for API
// compatibility with the pre-CSR mutable graph.
func (g *Graph) Clone() *Graph {
	c := *g
	return &c
}

// CloneStructure returns a copy of the graph with the same nodes and edges but
// with all attribute vectors reset to zero. The topology arrays are shared.
func (g *Graph) CloneStructure() *Graph {
	return &Graph{
		w:         g.w,
		m:         g.m,
		offsets:   g.offsets,
		neighbors: g.neighbors,
		attrs:     make([]AttrVector, len(g.attrs)),
	}
}

// FromEdges builds a graph with n nodes and w attributes from an edge list.
// Duplicate edges and self loops are silently dropped. The edge list is
// canonicalised, sorted and deduplicated once, then packed directly into CSR
// form — the bulk-construction fast path used by the loaders and the parallel
// generators.
func FromEdges(n, w int, edges []Edge) *Graph {
	checkDims(n, w)
	return fromCanonicalEdges(n, w, canonicalEdges(n, edges))
}

// canonicalEdges canonicalises, sorts and deduplicates an edge list, dropping
// self loops. It panics on out-of-range endpoints.
func canonicalEdges(n int, edges []Edge) []Edge {
	clean := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		e = e.Canonical()
		if e.U < 0 || e.V >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0, %d)", e.U, e.V, n))
		}
		clean = append(clean, e)
	}
	sort.Slice(clean, func(a, b int) bool {
		if clean[a].U != clean[b].U {
			return clean[a].U < clean[b].U
		}
		return clean[a].V < clean[b].V
	})
	// Deduplicate in place (the slice is sorted, so duplicates are adjacent).
	uniq := clean[:0]
	for i, e := range clean {
		if i == 0 || e != clean[i-1] {
			uniq = append(uniq, e)
		}
	}
	return uniq
}

// fromCanonicalEdges packs a sorted, deduplicated, self-loop-free canonical
// edge list into CSR form. Each row comes out sorted without a per-row sort:
// row u first receives its smaller neighbours (from edges (a, u), a ascending)
// and then its larger neighbours (from edges (u, v), v ascending).
func fromCanonicalEdges(n, w int, edges []Edge) *Graph {
	g := &Graph{
		w:       w,
		m:       len(edges),
		offsets: make([]int64, n+1),
		attrs:   make([]AttrVector, n),
	}
	deg := make([]int64, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	for i, d := range deg {
		g.offsets[i+1] = g.offsets[i] + d
	}
	g.neighbors = make([]int32, g.offsets[n])
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	for _, e := range edges {
		g.neighbors[cursor[e.U]] = int32(e.V)
		cursor[e.U]++
		g.neighbors[cursor[e.V]] = int32(e.U)
		cursor[e.V]++
	}
	return g
}

// CommonNeighbors returns |Γ(i) ∩ Γ(j)|, the number of common neighbours of i
// and j, via a sorted-merge intersection of the two rows (with a binary-search
// fallback when the degrees are heavily skewed).
func (g *Graph) CommonNeighbors(i, j int) int {
	g.validNode(i)
	g.validNode(j)
	return intersectCount(g.row(i), g.row(j))
}

// Equal reports whether g and h have identical node counts, attribute widths,
// edge sets and attribute assignments. It is primarily intended for tests.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.w != h.w || g.m != h.m {
		return false
	}
	for i := range g.attrs {
		if g.attrs[i] != h.attrs[i] {
			return false
		}
		if g.offsets[i+1]-g.offsets[i] != h.offsets[i+1]-h.offsets[i] {
			return false
		}
	}
	for k := range g.neighbors {
		if g.neighbors[k] != h.neighbors[k] {
			return false
		}
	}
	return true
}

// containsSorted reports whether v occurs in the sorted row.
func containsSorted(row []int32, v int32) bool {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// skewFactor is the degree ratio beyond which intersectCount switches from a
// linear merge to binary-searching the smaller row's entries in the larger
// row: d_small · log2(d_large) beats d_small + d_large when the rows are
// lopsided.
const skewFactor = 16

// intersectCount returns the size of the intersection of two sorted rows.
func intersectCount(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	cn := 0
	if len(b) > skewFactor*len(a) {
		for _, v := range a {
			// Shrink the search window as matches advance: entries of a are
			// ascending, so earlier prefix of b can be discarded.
			lo, hi := 0, len(b)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if b[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(b) && b[lo] == v {
				cn++
				b = b[lo+1:]
			} else {
				b = b[lo:]
			}
			if len(b) == 0 {
				break
			}
		}
		return cn
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			cn++
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return cn
}
