package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoComponentsB returns a Builder holding a 4-node cycle {0..3}, a 3-node
// path {4,5,6} and an isolated node 7.
func twoComponentsB() *Builder {
	b := NewBuilder(8, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	return b
}

// twoComponents returns the finalized CSR form of the same graph.
func twoComponents() *Graph {
	return twoComponentsB().Finalize()
}

func TestConnectedComponentsSizesAndOrder(t *testing.T) {
	g := twoComponents()
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("component sizes = %v, want [4 3 1] (descending)", sizes)
	}
}

func TestLargestComponentMembers(t *testing.T) {
	g := twoComponents()
	main := g.LargestComponent()
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if len(main) != 4 {
		t.Fatalf("LargestComponent = %v, want the 4-cycle", main)
	}
	for _, v := range main {
		if !want[v] {
			t.Fatalf("LargestComponent contains unexpected node %d", v)
		}
	}
}

func TestIsConnected(t *testing.T) {
	if !buildTriangleWithTail().IsConnected() {
		t.Fatal("connected graph reported as disconnected")
	}
	if twoComponents().IsConnected() {
		t.Fatal("disconnected graph reported as connected")
	}
	if !New(0, 0).IsConnected() || !New(1, 0).IsConnected() {
		t.Fatal("trivial graphs should be connected")
	}
	if New(2, 0).IsConnected() {
		t.Fatal("two isolated nodes should not be connected")
	}
}

func TestOrphanedNodes(t *testing.T) {
	g := twoComponents()
	orphans := g.OrphanedNodes()
	want := map[int]bool{4: true, 5: true, 6: true, 7: true}
	if len(orphans) != len(want) {
		t.Fatalf("OrphanedNodes = %v, want %v", orphans, want)
	}
	for _, v := range orphans {
		if !want[v] {
			t.Fatalf("unexpected orphan %d", v)
		}
	}
	if got := buildTriangleWithTail().OrphanedNodes(); len(got) != 0 {
		t.Fatalf("connected graph has orphans %v", got)
	}
	if got := New(0, 0).OrphanedNodes(); got != nil {
		t.Fatalf("empty graph has orphans %v", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := buildTriangleWithTailB()
	b.SetAttr(0, 1)
	b.SetAttr(2, 3)
	g := b.Finalize()
	sub, orig := g.InducedSubgraph([]int{0, 1, 2})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced subgraph has %d nodes, %d edges; want 3, 3", sub.NumNodes(), sub.NumEdges())
	}
	// Attributes must follow nodes through relabelling.
	for newID, old := range orig {
		if sub.Attr(newID) != g.Attr(old) {
			t.Fatalf("attribute of node %d not carried into subgraph", old)
		}
	}
	// Edges not inside the node set must be dropped.
	sub2, _ := g.InducedSubgraph([]int{2, 3, 4})
	if sub2.NumEdges() != 2 {
		t.Fatalf("induced subgraph on tail has %d edges, want 2", sub2.NumEdges())
	}
}

func TestInducedSubgraphCollapsesDuplicates(t *testing.T) {
	g := buildTriangleWithTail()
	sub, orig := g.InducedSubgraph([]int{1, 1, 2, 2})
	if sub.NumNodes() != 2 || len(orig) != 2 {
		t.Fatalf("duplicates not collapsed: %d nodes", sub.NumNodes())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("subgraph edges = %d, want 1", sub.NumEdges())
	}
}

func TestRelabelToLargestComponent(t *testing.T) {
	b := twoComponentsB()
	b.SetAttr(2, 1)
	main, orig := b.Finalize().RelabelToLargestComponent()
	if main.NumNodes() != 4 || main.NumEdges() != 4 {
		t.Fatalf("main component has %d nodes / %d edges, want 4 / 4", main.NumNodes(), main.NumEdges())
	}
	if !main.IsConnected() {
		t.Fatal("relabelled main component is not connected")
	}
	// Attribute of original node 2 must survive.
	found := false
	for newID, old := range orig {
		if old == 2 && main.Attr(newID) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("attribute lost during relabelling")
	}
}

// Property: component sizes always sum to the node count, and every component
// is internally connected.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 50, 0.03, 0)
		comps := g.ConnectedComponents()
		total := 0
		for _, c := range comps {
			total += len(c)
			sub, _ := g.InducedSubgraph(c)
			if !sub.IsConnected() {
				return false
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
