package graph

import "sort"

// Degrees returns the degree of every node, indexed by node ID. Large graphs
// fill the slice in parallel shards (DegreesWith) with identical results.
func (g *Graph) Degrees() []int {
	return g.DegreesWith(0)
}

// DegreeSequence returns the multiset of node degrees sorted in non-decreasing
// order, i.e. the unordered degree sequence S used by the paper's structural
// models.
func (g *Graph) DegreeSequence() []int {
	return g.DegreeSequenceWith(0)
}

// DegreeSequenceWith is DegreeSequence with an explicit worker count for the
// degree-extraction pass (≤ 0 selects the process default); the sort stays
// sequential. Results are identical for every worker count.
func (g *Graph) DegreeSequenceWith(workers int) []int {
	out := g.DegreesWith(workers)
	sort.Ints(out)
	return out
}

// MaxDegree returns the largest node degree d_max (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for i := range g.attrs {
		if d := int(g.offsets[i+1] - g.offsets[i]); d > max {
			max = d
		}
	}
	return max
}

// AverageDegree returns the mean node degree 2m/n (0 for an empty graph).
func (g *Graph) AverageDegree() float64 {
	if len(g.attrs) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.attrs))
}

// Triangles returns n∆, the number of distinct triangles in the graph, using
// the compact-forward algorithm: nodes are ranked by (degree, ID), each edge
// is oriented from lower to higher rank, and each triangle is found exactly
// once as a sorted-merge intersection of two forward neighbour lists. Because
// forward degrees are bounded by O(√m), the intersections cost O(m^{3/2})
// total even on heavy-tailed graphs where hub rows would otherwise dominate.
//
// On graphs above the sharding threshold the counting pass runs on the shared
// worker pool (see TrianglesWith); the count is bit-identical to the
// sequential algorithm for every worker count.
func (g *Graph) Triangles() int64 {
	return g.TrianglesWith(0)
}

// forwardCSR builds the compact-forward orientation of the graph: row u keeps
// only the neighbours of higher (degree, ID) rank. Filtering a sorted row
// preserves its ID order, so merge intersections still work on forward rows.
func (g *Graph) forwardCSR() (foffsets []int64, fneighbors []int32) {
	n := len(g.attrs)

	// Rank nodes by (degree, ID) with a counting sort over degrees; iterating
	// node IDs in ascending order breaks degree ties by ID for free.
	maxDeg := 0
	for i := 0; i < n; i++ {
		if d := int(g.offsets[i+1] - g.offsets[i]); d > maxDeg {
			maxDeg = d
		}
	}
	next := make([]int32, maxDeg+1)
	for i := 0; i < n; i++ {
		next[g.offsets[i+1]-g.offsets[i]]++
	}
	cum := int32(0)
	for d := 0; d <= maxDeg; d++ {
		c := next[d]
		next[d] = cum
		cum += c
	}
	rank := make([]int32, n)
	for i := 0; i < n; i++ {
		d := g.offsets[i+1] - g.offsets[i]
		rank[i] = next[d]
		next[d]++
	}

	foffsets = make([]int64, n+1)
	for u := 0; u < n; u++ {
		cnt := int64(0)
		for _, v := range g.row(u) {
			if rank[v] > rank[u] {
				cnt++
			}
		}
		foffsets[u+1] = foffsets[u] + cnt
	}
	fneighbors = make([]int32, foffsets[n])
	for u := 0; u < n; u++ {
		k := foffsets[u]
		for _, v := range g.row(u) {
			if rank[v] > rank[u] {
				fneighbors[k] = v
				k++
			}
		}
	}
	return foffsets, fneighbors
}

// TrianglesAt returns the number of triangles that include node i, i.e. the
// number of edges among the neighbours of i. Each such edge {u, v} is found
// twice (once from u's row, once from v's), hence the halving.
func (g *Graph) TrianglesAt(i int) int64 {
	g.validNode(i)
	ri := g.row(i)
	var cnt int64
	for _, v := range ri {
		cnt += int64(intersectCount(ri, g.row(int(v))))
	}
	return cnt / 2
}

// Wedges returns n_W, the number of length-two paths (wedges) in the graph:
// Σ_i d_i·(d_i−1)/2. Large graphs shard the sum over the worker pool
// (WedgesWith); the result is exact for every worker count.
func (g *Graph) Wedges() int64 {
	return g.WedgesWith(0)
}

// wedgesSeq is the sequential wedge count.
func (g *Graph) wedgesSeq() int64 {
	var total int64
	for i := range g.attrs {
		d := g.offsets[i+1] - g.offsets[i]
		total += d * (d - 1) / 2
	}
	return total
}

// LocalClustering returns the local clustering coefficient C_i of node i:
// the fraction of pairs of neighbours of i that are themselves connected.
// Nodes of degree < 2 have coefficient 0 by convention.
func (g *Graph) LocalClustering(i int) float64 {
	g.validNode(i)
	d := g.Degree(i)
	if d < 2 {
		return 0
	}
	t := g.TrianglesAt(i)
	return 2 * float64(t) / (float64(d) * float64(d-1))
}

// LocalClusteringAll returns the local clustering coefficient of every node,
// indexed by node ID. It shares work across nodes by counting triangles along
// edges once, so it is much cheaper than calling LocalClustering per node on
// large graphs. Above the sharding threshold the edge pass runs on the shared
// worker pool with per-worker counter arrays (LocalClusteringAllWith); the
// coefficients are bit-identical for every worker count.
func (g *Graph) LocalClusteringAll() []float64 {
	return g.LocalClusteringAllWith(0)
}

// localClusteringAllSeq is the sequential single-counter implementation.
func (g *Graph) localClusteringAllSeq() []float64 {
	triPerNode := make([]int64, len(g.attrs))
	for u := range g.attrs {
		// Every common neighbour w of u and v closes a triangle {u,v,w};
		// credit it to w. Each triangle is credited to each of its three
		// corners exactly once (when the opposite edge is processed).
		g.creditTrianglesAlongEdges(u, triPerNode)
	}
	out := make([]float64, len(g.attrs))
	for i := range g.attrs {
		d := g.Degree(i)
		if d < 2 {
			continue
		}
		out[i] = 2 * float64(triPerNode[i]) / (float64(d) * float64(d-1))
	}
	return out
}

// AverageLocalClustering returns C̄, the mean of the local clustering
// coefficients over all nodes.
func (g *Graph) AverageLocalClustering() float64 {
	if len(g.attrs) == 0 {
		return 0
	}
	cc := g.LocalClusteringAll()
	sum := 0.0
	for _, c := range cc {
		sum += c
	}
	return sum / float64(len(cc))
}

// GlobalClustering returns the global clustering coefficient (transitivity)
// C(G) = 3·n∆ / n_W. It returns 0 when the graph has no wedges.
func (g *Graph) GlobalClustering() float64 {
	w := g.Wedges()
	if w == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(w)
}

// DegreeHistogram returns a map from degree value to the number of nodes with
// that degree. Large graphs shard the tally over the worker pool
// (DegreeHistogramWith) with identical results.
func (g *Graph) DegreeHistogram() map[int]int {
	return g.DegreeHistogramWith(0)
}

// degreeHistogramSeq is the sequential histogram tally.
func (g *Graph) degreeHistogramSeq() map[int]int {
	h := make(map[int]int)
	for i := range g.attrs {
		h[g.Degree(i)]++
	}
	return h
}

// Summary bundles the headline statistics reported in Table 6 of the paper.
type Summary struct {
	Nodes              int
	Edges              int
	MaxDegree          int
	AverageDegree      float64
	Triangles          int64
	AvgLocalClustering float64
	GlobalClustering   float64
	Attributes         int
}

// Summarize computes the Table 6 statistics for the graph. The triangle,
// wedge and clustering passes run sharded on the worker pool for large graphs
// (SummarizeWith) and the triangle count is computed once and shared between
// the statistics that need it.
func (g *Graph) Summarize() Summary {
	return g.SummarizeWith(0)
}
