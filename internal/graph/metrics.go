package graph

import "sort"

// Degrees returns the degree of every node, indexed by node ID.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.adj))
	for i := range g.adj {
		out[i] = len(g.adj[i])
	}
	return out
}

// DegreeSequence returns the multiset of node degrees sorted in non-decreasing
// order, i.e. the unordered degree sequence S used by the paper's structural
// models.
func (g *Graph) DegreeSequence() []int {
	out := g.Degrees()
	sort.Ints(out)
	return out
}

// MaxDegree returns the largest node degree d_max (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for i := range g.adj {
		if d := len(g.adj[i]); d > max {
			max = d
		}
	}
	return max
}

// AverageDegree returns the mean node degree 2m/n (0 for an empty graph).
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Triangles returns n∆, the number of distinct triangles in the graph. The
// algorithm intersects adjacency sets along each edge, giving a cost of
// O(Σ_{(u,v)∈E} min(d_u, d_v)).
func (g *Graph) Triangles() int64 {
	var total int64
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				total += int64(g.CommonNeighbors(u, v))
			}
		}
	}
	// Each triangle is counted once per edge, i.e. three times.
	return total / 3
}

// TrianglesAt returns the number of triangles that include node i, i.e. the
// number of edges among the neighbours of i.
func (g *Graph) TrianglesAt(i int) int64 {
	g.validNode(i)
	var cnt int64
	for u := range g.adj[i] {
		for v := range g.adj[i] {
			if u < v && g.HasEdge(u, v) {
				cnt++
			}
		}
	}
	return cnt
}

// Wedges returns n_W, the number of length-two paths (wedges) in the graph:
// Σ_i d_i·(d_i−1)/2.
func (g *Graph) Wedges() int64 {
	var total int64
	for i := range g.adj {
		d := int64(len(g.adj[i]))
		total += d * (d - 1) / 2
	}
	return total
}

// LocalClustering returns the local clustering coefficient C_i of node i:
// the fraction of pairs of neighbours of i that are themselves connected.
// Nodes of degree < 2 have coefficient 0 by convention.
func (g *Graph) LocalClustering(i int) float64 {
	g.validNode(i)
	d := len(g.adj[i])
	if d < 2 {
		return 0
	}
	t := g.TrianglesAt(i)
	return 2 * float64(t) / (float64(d) * float64(d-1))
}

// LocalClusteringAll returns the local clustering coefficient of every node,
// indexed by node ID. It shares work across nodes by counting triangles along
// edges once, so it is much cheaper than calling LocalClustering per node on
// large graphs.
func (g *Graph) LocalClusteringAll() []float64 {
	triPerNode := make([]int64, len(g.adj))
	for u := range g.adj {
		for v := range g.adj[u] {
			if u >= v {
				continue
			}
			// Every common neighbour w of u and v closes a triangle {u,v,w};
			// credit it to w. Each triangle is credited to each of its three
			// corners exactly once (when the opposite edge is processed).
			a, b := g.adj[u], g.adj[v]
			if len(a) > len(b) {
				a, b = b, a
			}
			for w := range a {
				if _, ok := b[w]; ok {
					triPerNode[w]++
				}
			}
		}
	}
	out := make([]float64, len(g.adj))
	for i := range g.adj {
		d := len(g.adj[i])
		if d < 2 {
			continue
		}
		out[i] = 2 * float64(triPerNode[i]) / (float64(d) * float64(d-1))
	}
	return out
}

// AverageLocalClustering returns C̄, the mean of the local clustering
// coefficients over all nodes.
func (g *Graph) AverageLocalClustering() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	cc := g.LocalClusteringAll()
	sum := 0.0
	for _, c := range cc {
		sum += c
	}
	return sum / float64(len(cc))
}

// GlobalClustering returns the global clustering coefficient (transitivity)
// C(G) = 3·n∆ / n_W. It returns 0 when the graph has no wedges.
func (g *Graph) GlobalClustering() float64 {
	w := g.Wedges()
	if w == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(w)
}

// DegreeHistogram returns a map from degree value to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for i := range g.adj {
		h[len(g.adj[i])]++
	}
	return h
}

// Summary bundles the headline statistics reported in Table 6 of the paper.
type Summary struct {
	Nodes              int
	Edges              int
	MaxDegree          int
	AverageDegree      float64
	Triangles          int64
	AvgLocalClustering float64
	GlobalClustering   float64
	Attributes         int
}

// Summarize computes the Table 6 statistics for the graph.
func (g *Graph) Summarize() Summary {
	return Summary{
		Nodes:              g.NumNodes(),
		Edges:              g.NumEdges(),
		MaxDegree:          g.MaxDegree(),
		AverageDegree:      g.AverageDegree(),
		Triangles:          g.Triangles(),
		AvgLocalClustering: g.AverageLocalClustering(),
		GlobalClustering:   g.GlobalClustering(),
		Attributes:         g.NumAttributes(),
	}
}
