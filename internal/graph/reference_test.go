package graph_test

// This file pins the Builder→CSR lifecycle to the pre-CSR mutable graph
// semantics: mapAdjGraph is a deliberately naive reimplementation of the old
// []map[int]struct{} adjacency surface (duplicate edges dropped, self loops
// ignored, attribute bits masked to the declared width, canonical edge
// ordering produced by sorting). The property test drives both
// implementations with the same random operation sequence and requires the
// finalized CSR graph to agree edge-for-edge and attr-for-attr.

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"agmdp/internal/graph"
)

// mapAdjGraph mirrors the old mutable map-adjacency Graph API surface.
type mapAdjGraph struct {
	w     int
	m     int
	adj   []map[int]struct{}
	attrs []graph.AttrVector
}

func newMapAdjGraph(n, w int) *mapAdjGraph {
	g := &mapAdjGraph{
		w:     w,
		adj:   make([]map[int]struct{}, n),
		attrs: make([]graph.AttrVector, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

func (g *mapAdjGraph) addEdge(i, j int) bool {
	if i == j {
		return false
	}
	if _, ok := g.adj[i][j]; ok {
		return false
	}
	g.adj[i][j] = struct{}{}
	g.adj[j][i] = struct{}{}
	g.m++
	return true
}

func (g *mapAdjGraph) removeEdge(i, j int) bool {
	if _, ok := g.adj[i][j]; !ok {
		return false
	}
	delete(g.adj[i], j)
	delete(g.adj[j], i)
	g.m--
	return true
}

func (g *mapAdjGraph) setAttr(i int, a graph.AttrVector) {
	if g.w < graph.MaxAttributes {
		a &= (1 << uint(g.w)) - 1
	}
	g.attrs[i] = a
}

// edges returns the edge set in canonical (min, max) order, produced the old
// way: collect from the maps, then sort.
func (g *mapAdjGraph) edges() []graph.Edge {
	out := make([]graph.Edge, 0, g.m)
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, graph.Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

func (g *mapAdjGraph) commonNeighbors(i, j int) int {
	a, b := g.adj[i], g.adj[j]
	if len(a) > len(b) {
		a, b = b, a
	}
	cn := 0
	for v := range a {
		if _, ok := b[v]; ok {
			cn++
		}
	}
	return cn
}

func (g *mapAdjGraph) triangles() int64 {
	var total int64
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				total += int64(g.commonNeighbors(u, v))
			}
		}
	}
	return total / 3
}

// maxCommonNeighbors is the old per-node map-churn two-hop enumeration.
func (g *mapAdjGraph) maxCommonNeighbors() int {
	maxCN := 0
	counts := make(map[int]int)
	for u := range g.adj {
		for k := range counts {
			delete(counts, k)
		}
		for w := range g.adj[u] {
			for v := range g.adj[w] {
				if v > u {
					counts[v]++
				}
			}
		}
		for _, c := range counts {
			if c > maxCN {
				maxCN = c
			}
		}
	}
	return maxCN
}

// agreesWith reports whether the finalized CSR graph matches the reference
// edge-for-edge (in canonical order) and attr-for-attr.
func agreesWith(csr *graph.Graph, ref *mapAdjGraph) bool {
	if csr.NumNodes() != len(ref.adj) || csr.NumEdges() != ref.m || csr.NumAttributes() != ref.w {
		return false
	}
	want := ref.edges()
	got := csr.Edges()
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	for i := range ref.attrs {
		if csr.Attr(i) != ref.attrs[i] {
			return false
		}
	}
	return true
}

// Property: a Builder driven by an arbitrary sequence of AddEdge / RemoveEdge
// / SetAttr operations (including self loops, duplicates and out-of-order
// endpoints) finalizes into exactly the graph the old mutable API would have
// produced, and the CSR rewrites of Triangles / CommonNeighbors /
// MaxCommonNeighbors agree with their map-based ancestors.
func TestBuilderMatchesMapAdjacencyReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		w := rng.Intn(5)
		b := graph.NewBuilder(n, w)
		ref := newMapAdjGraph(n, w)
		ops := 150 + rng.Intn(150)
		for k := 0; k < ops; k++ {
			u, v := rng.Intn(n), rng.Intn(n) // self loops included on purpose
			switch rng.Intn(4) {
			case 0, 1: // bias toward insertion so the graphs stay non-trivial
				if b.AddEdge(u, v) != ref.addEdge(u, v) {
					return false
				}
			case 2:
				if b.RemoveEdge(u, v) != ref.removeEdge(u, v) {
					return false
				}
			case 3:
				a := graph.AttrVector(rng.Uint64())
				b.SetAttr(u, a)
				ref.setAttr(u, a)
			}
		}
		g := b.Finalize()
		if !agreesWith(g, ref) {
			return false
		}
		if g.Triangles() != ref.triangles() {
			return false
		}
		u, v := rng.Intn(n), rng.Intn(n)
		return g.CommonNeighbors(u, v) == ref.commonNeighbors(u, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: FromEdges bulk construction obeys the same contract as the old
// incremental API for messy edge lists (duplicates in both orientations and
// self loops).
func TestFromEdgesMatchesMapAdjacencyReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		edges := make([]graph.Edge, 80)
		ref := newMapAdjGraph(n, 0)
		for i := range edges {
			e := graph.Edge{U: rng.Intn(n), V: rng.Intn(n)}
			edges[i] = e
			ref.addEdge(e.U, e.V)
		}
		return agreesWith(graph.FromEdges(n, 0, edges), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// goldenGraph is the triangle-with-tail fixture with attributes set on nodes
// 0 and 3.
func goldenGraph() *graph.Graph {
	b := graph.NewBuilder(5, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.SetAttr(0, 3)
	b.SetAttr(3, 1)
	return b.Finalize()
}

// goldenText is the exact "agmdp graph" serialization of goldenGraph. The
// bytes are pinned so that accidental format drift (which would silently
// orphan previously saved graphs) fails loudly.
const goldenText = `# agmdp graph
nodes 5
attrs 2
node 0 1 1
node 1 0 0
node 2 0 0
node 3 1 0
node 4 0 0
edge 0 1
edge 0 2
edge 1 2
edge 2 3
edge 3 4
`

func TestGraphIOGoldenRoundTrip(t *testing.T) {
	g := goldenGraph()
	var buf bytes.Buffer
	if err := g.WriteGraph(&buf); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	if buf.String() != goldenText {
		t.Fatalf("WriteGraph output drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.String(), goldenText)
	}
	back, err := graph.ReadGraph(strings.NewReader(goldenText))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if !back.Equal(g) {
		t.Fatal("golden round trip lost information")
	}
}
