package graph

import (
	"sync/atomic"

	"agmdp/internal/parallel"
)

// Sequential-fallback thresholds: below these sizes the goroutine fan-out and
// per-worker state cost more than the work itself, so the *With analytics run
// the sequential implementations regardless of the requested worker count.
const (
	// minShardEdges gates the triangle-family analytics (Triangles,
	// LocalClusteringAll), whose cost scales with the edge count.
	minShardEdges = parallel.MinShardEdges
	// minShardNodes gates the per-node analytics (Degrees, Wedges,
	// DegreeHistogram), whose cost is a few instructions per node.
	minShardNodes = 1 << 14
)

// Every sharded analytic in this file follows the same deterministic
// map-reduce shape: split the node range into degree-weighted shards
// (parallel.SplitWeighted over the CSR offsets, so hub-heavy graphs still
// balance), compute each shard's partial result into its own slot, and reduce
// the slots in shard-index order. All partials are integer counts, so the
// reduction is exact and the result is bit-identical to the sequential
// implementation for every worker count — which is why the parallel paths can
// be the default everywhere without weakening any determinism contract.

// TrianglesWith is Triangles with an explicit worker count: workers > 1
// shards the compact-forward counting pass by forward-degree-weighted node
// ranges; workers ≤ 0 selects the process default (parallel.Resolve). The
// result is bit-identical to the sequential count.
func (g *Graph) TrianglesWith(workers int) int64 {
	n := len(g.attrs)
	if n == 0 || g.m == 0 {
		return 0
	}
	foffsets, fneighbors := g.forwardCSR()
	workers = parallel.Resolve(workers)
	if workers <= 1 || g.m < minShardEdges {
		return countForwardTriangles(foffsets, fneighbors, 0, n)
	}
	// The per-node cost of the counting pass is driven by the forward row
	// lengths, so the forward offsets are the right weights to balance on.
	shards := parallel.SplitWeighted(foffsets, workers)
	partial := make([]int64, len(shards))
	parallel.Do(len(shards), func(s int) {
		r := shards[s]
		partial[s] = countForwardTriangles(foffsets, fneighbors, r.Lo, r.Hi)
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// countForwardTriangles intersects forward rows for source nodes in [lo, hi).
func countForwardTriangles(foffsets []int64, fneighbors []int32, lo, hi int) int64 {
	var total int64
	for u := lo; u < hi; u++ {
		fu := fneighbors[foffsets[u]:foffsets[u+1]]
		for _, v := range fu {
			total += int64(intersectCount(fu, fneighbors[foffsets[v]:foffsets[v+1]]))
		}
	}
	return total
}

// LocalClusteringAllWith is LocalClusteringAll with an explicit worker count
// (≤ 0 selects the process default). Workers accumulate triangle credits into
// one shared counter array with atomic adds: integer addition is exact and
// commutative, so whatever order the workers' increments land in, every node
// ends with the same count — and therefore the same coefficient — as the
// sequential pass, bit-identically, for every worker count. The shared array
// keeps the pass at O(n) auxiliary memory where per-worker counters would
// cost O(workers·n) on large graphs.
func (g *Graph) LocalClusteringAllWith(workers int) []float64 {
	n := len(g.attrs)
	workers = parallel.Resolve(workers)
	if workers <= 1 || g.m < minShardEdges {
		return g.localClusteringAllSeq()
	}
	shards := parallel.SplitWeighted(g.offsets, workers)
	counts := make([]int64, n)
	parallel.Do(len(shards), func(s int) {
		r := shards[s]
		for u := r.Lo; u < r.Hi; u++ {
			g.creditTrianglesAlongEdgesAtomic(u, counts)
		}
	})
	out := make([]float64, n)
	// Finish the coefficients over plain node ranges; the counters are
	// settled (parallel.Do is a full barrier), so these are plain reads.
	merge := parallel.Split(n, workers)
	parallel.Do(len(merge), func(s int) {
		r := merge[s]
		for i := r.Lo; i < r.Hi; i++ {
			d := int(g.offsets[i+1] - g.offsets[i])
			if d < 2 {
				continue
			}
			out[i] = 2 * float64(counts[i]) / (float64(d) * float64(d-1))
		}
	})
	return out
}

// creditTrianglesAlongEdgesAtomic is creditTrianglesAlongEdges against a
// counter array shared between workers: the increment is atomic, everything
// else is identical. Kept separate so the sequential pass pays no atomic
// overhead.
func (g *Graph) creditTrianglesAlongEdgesAtomic(u int, counts []int64) {
	ru := g.row(u)
	for _, v32 := range ru {
		v := int(v32)
		if u >= v {
			continue
		}
		rv := g.row(v)
		i, j := 0, 0
		for i < len(ru) && j < len(rv) {
			a, b := ru[i], rv[j]
			if a == b {
				atomic.AddInt64(&counts[a], 1)
				i++
				j++
			} else if a < b {
				i++
			} else {
				j++
			}
		}
	}
}

// creditTrianglesAlongEdges walks node u's edges {u, v} with v > u and
// credits every common neighbour w of u and v with the triangle {u, v, w}.
// Each triangle is credited to each of its three corners exactly once (when
// the opposite edge is processed), whichever shard that edge lands in.
func (g *Graph) creditTrianglesAlongEdges(u int, counts []int64) {
	ru := g.row(u)
	for _, v32 := range ru {
		v := int(v32)
		if u >= v {
			continue
		}
		rv := g.row(v)
		i, j := 0, 0
		for i < len(ru) && j < len(rv) {
			a, b := ru[i], rv[j]
			if a == b {
				counts[a]++
				i++
				j++
			} else if a < b {
				i++
			} else {
				j++
			}
		}
	}
}

// WedgesWith is Wedges with an explicit worker count (≤ 0 selects the
// process default).
func (g *Graph) WedgesWith(workers int) int64 {
	n := len(g.attrs)
	workers = parallel.Resolve(workers)
	if workers <= 1 || n < minShardNodes {
		return g.wedgesSeq()
	}
	shards := parallel.Split(n, workers)
	partial := make([]int64, len(shards))
	parallel.Do(len(shards), func(s int) {
		var sum int64
		r := shards[s]
		for i := r.Lo; i < r.Hi; i++ {
			d := g.offsets[i+1] - g.offsets[i]
			sum += d * (d - 1) / 2
		}
		partial[s] = sum
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// DegreesWith is Degrees with an explicit worker count (≤ 0 selects the
// process default). Shards write disjoint slices of the result, so no merge
// is needed.
func (g *Graph) DegreesWith(workers int) []int {
	n := len(g.attrs)
	out := make([]int, n)
	workers = parallel.Resolve(workers)
	if workers <= 1 || n < minShardNodes {
		for i := range out {
			out[i] = int(g.offsets[i+1] - g.offsets[i])
		}
		return out
	}
	shards := parallel.Split(n, workers)
	parallel.Do(len(shards), func(s int) {
		r := shards[s]
		for i := r.Lo; i < r.Hi; i++ {
			out[i] = int(g.offsets[i+1] - g.offsets[i])
		}
	})
	return out
}

// DegreeHistogramWith is DegreeHistogram with an explicit worker count (≤ 0
// selects the process default). Shards build private histograms that are
// summed per degree value; integer addition makes the merged map independent
// of the worker count.
func (g *Graph) DegreeHistogramWith(workers int) map[int]int {
	n := len(g.attrs)
	workers = parallel.Resolve(workers)
	if workers <= 1 || n < minShardNodes {
		return g.degreeHistogramSeq()
	}
	shards := parallel.Split(n, workers)
	partial := make([]map[int]int, len(shards))
	parallel.Do(len(shards), func(s int) {
		h := make(map[int]int)
		r := shards[s]
		for i := r.Lo; i < r.Hi; i++ {
			h[int(g.offsets[i+1]-g.offsets[i])]++
		}
		partial[s] = h
	})
	out := make(map[int]int)
	for _, h := range partial {
		for d, c := range h {
			out[d] += c
		}
	}
	return out
}

// SummarizeWith is Summarize with an explicit worker count (≤ 0 selects the
// process default). It computes the triangle count and wedge count once and
// derives both clustering statistics from them, instead of re-running the
// triangle pass per statistic.
func (g *Graph) SummarizeWith(workers int) Summary {
	tri := g.TrianglesWith(workers)
	wedges := g.WedgesWith(workers)
	cc := g.LocalClusteringAllWith(workers)
	avg := 0.0
	if len(cc) > 0 {
		sum := 0.0
		for _, c := range cc {
			sum += c
		}
		avg = sum / float64(len(cc))
	}
	global := 0.0
	if wedges > 0 {
		global = 3 * float64(tri) / float64(wedges)
	}
	return Summary{
		Nodes:              g.NumNodes(),
		Edges:              g.NumEdges(),
		MaxDegree:          g.MaxDegree(),
		AverageDegree:      g.AverageDegree(),
		Triangles:          tri,
		AvgLocalClustering: avg,
		GlobalClustering:   global,
		Attributes:         g.NumAttributes(),
	}
}
