package graph_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"agmdp/internal/graph"
)

// encodeChunked encodes src in the chunked wire format, failing on error.
func encodeChunked(t testing.TB, src graph.RowSource, chunkRows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinaryChunked(&buf, src, chunkRows); err != nil {
		t.Fatalf("WriteBinaryChunked: %v", err)
	}
	return buf.Bytes()
}

// TestChunkedRoundTripProperty checks that random graphs round-trip through
// the chunked codec at many frame sizes, and that the decode is byte-identical
// with the monolithic path: re-encoding the decoded graph monolithically
// reproduces the original graph's canonical snapshot exactly.
func TestChunkedRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(80)
		w := rng.Intn(graph.MaxAttributes + 1)
		g := randomGraph(rng, n, w, rng.Float64()*0.3)
		canonical := encodeBinary(t, g)
		for _, chunkRows := range []int{1, 3, 7, n + 1, 0} {
			data := encodeChunked(t, g, chunkRows)
			if got, want := int64(len(data)), graph.ChunkedBinarySize(g, chunkRows); got != want {
				t.Fatalf("trial %d rows %d: encoded %d bytes, ChunkedBinarySize says %d", trial, chunkRows, got, want)
			}
			back, err := graph.ReadBinaryChunked(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("trial %d rows %d: ReadBinaryChunked: %v", trial, chunkRows, err)
			}
			if !g.Equal(back) {
				t.Fatalf("trial %d rows %d: decoded graph differs (n=%d w=%d m=%d)", trial, chunkRows, n, w, g.NumEdges())
			}
			if again := encodeBinary(t, back); !bytes.Equal(canonical, again) {
				t.Fatalf("trial %d rows %d: monolithic re-encode of chunked decode is not byte-identical", trial, chunkRows)
			}
		}
	}
}

// TestChunkedFromBuilderMatchesGraph pins the streaming contract the sample
// pipeline relies on: encoding straight from a Builder (or an attribute
// overlay over it) produces the exact bytes of encoding the finalized graph.
func TestChunkedFromBuilderMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := graph.NewBuilder(50, 0)
	for i := 0; i < 300; i++ {
		b.AddEdge(rng.Intn(50), rng.Intn(50))
	}
	vecs := make([]graph.AttrVector, 50)
	for i := range vecs {
		vecs[i] = graph.AttrVector(rng.Uint64())
	}
	g := b.Finalize()

	if got, want := encodeChunked(t, b, 9), encodeChunked(t, g, 9); !bytes.Equal(got, want) {
		t.Fatal("chunked encoding from Builder differs from the finalized graph's")
	}
	overlay := graph.SourceWithAttributes(b, 3, vecs)
	attributed := g.WithAttributes(3, vecs)
	if got, want := encodeChunked(t, overlay, 9), encodeChunked(t, attributed, 9); !bytes.Equal(got, want) {
		t.Fatal("chunked encoding from attribute overlay differs from WithAttributes")
	}

	var streamed, eager bytes.Buffer
	if err := graph.WriteBinaryTo(&streamed, overlay); err != nil {
		t.Fatalf("WriteBinaryTo: %v", err)
	}
	if err := attributed.WriteBinary(&eager); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if !bytes.Equal(streamed.Bytes(), eager.Bytes()) {
		t.Fatal("WriteBinaryTo from overlay differs from the materialised WriteBinary")
	}
	if got, want := graph.SourceBinarySize(overlay), attributed.BinarySize(); got != want {
		t.Fatalf("SourceBinarySize = %d, want %d", got, want)
	}
}

// TestWriteBinaryToMatchesWriteBinary checks byte-identity of the streaming
// monolithic encoder across random graphs, from both Graph and Builder
// sources.
func TestWriteBinaryToMatchesWriteBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, rng.Intn(70), rng.Intn(graph.MaxAttributes+1), rng.Float64()*0.3)
		want := encodeBinary(t, g)
		for name, src := range map[string]graph.RowSource{"graph": g, "builder": g.Builder()} {
			var buf bytes.Buffer
			if err := graph.WriteBinaryTo(&buf, src); err != nil {
				t.Fatalf("trial %d %s: WriteBinaryTo: %v", trial, name, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("trial %d %s: WriteBinaryTo differs from WriteBinary", trial, name)
			}
			if got := graph.SourceBinarySize(src); got != int64(len(want)) {
				t.Fatalf("trial %d %s: SourceBinarySize = %d, want %d", trial, name, got, len(want))
			}
		}
	}
}

// TestTranscodeChunkedMatchesEncoder checks that the zero-decode transcode of
// a stored monolithic snapshot emits the exact bytes of chunk-encoding the
// decoded graph.
func TestTranscodeChunkedMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, rng.Intn(60), rng.Intn(graph.MaxAttributes+1), rng.Float64()*0.3)
		mono := encodeBinary(t, g)
		for _, chunkRows := range []int{1, 5, 0} {
			var out bytes.Buffer
			if err := graph.TranscodeChunked(&out, bytes.NewReader(mono), int64(len(mono)), chunkRows); err != nil {
				t.Fatalf("trial %d rows %d: TranscodeChunked: %v", trial, chunkRows, err)
			}
			if want := encodeChunked(t, g, chunkRows); !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("trial %d rows %d: transcode differs from direct chunked encoding", trial, chunkRows)
			}
		}
	}
	// A size that disagrees with the header must be rejected up front.
	g := randomGraph(rng, 10, 2, 0.3)
	mono := encodeBinary(t, g)
	if err := graph.TranscodeChunked(&bytes.Buffer{}, bytes.NewReader(mono), int64(len(mono))-1, 8); err == nil {
		t.Fatal("TranscodeChunked accepted a snapshot with a wrong size")
	}
}

// chunkedFixture builds the fixed 4-node fixture (edges 0-1, 1-2, 0-3,
// width 2) chunk-encoded at 2 rows per frame, whose layout the corruption
// table below indexes into.
func chunkedFixture(t *testing.T) []byte {
	t.Helper()
	b := graph.NewBuilder(4, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.SetAttr(0, 1)
	b.SetAttr(1, 2)
	b.SetAttr(2, 3)
	return encodeChunked(t, b.Finalize(), 2)
}

// TestChunkedRejectsCorruptInput drives the chunk reader through its framing
// validation: header corruption, frame-accounting violations, payload-length
// lies, offset regressions, attribute-width violations and checksum
// mismatches.
func TestChunkedRejectsCorruptInput(t *testing.T) {
	data := chunkedFixture(t)
	// Rows: 0:[1,3] 1:[0,2] 2:[1] 3:[0]; offsets [0,2,4,5,6]. Frame 1 covers
	// rows 0-1 (k=4), frame 2 rows 2-3 (k=2), then the trailer.
	const (
		offFrame1     = 40
		offEndOffs1   = offFrame1 + 12
		offNeighbors1 = offEndOffs1 + 2*8
		offAttrs1     = offNeighbors1 + 4*4
		offFrame2     = offAttrs1 + 2*8
		offTrailer    = offFrame2 + 12 + 2*8 + 2*4 + 2*8
	)
	if int(offTrailer+16) != len(data) {
		t.Fatalf("fixture layout drifted: trailer at %d, data is %d bytes", offTrailer, len(data))
	}

	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error
	}{
		{"empty input", nil, "chunked header"},
		{"bad magic", corruptAt(data, 0, 0xff), "magic"},
		{"monolithic magic", append([]byte("AGMDPCSR"), data[8:]...), "magic"},
		{"bad version", putU32(data, 8, 99), "version"},
		{"unknown flags", putU32(data, 12, 0x80), "flags"},
		{"frame rows beyond remaining", putU32(data, offFrame1, 5), "remain"},
		{"frame payload mismatch", putU64(data, offFrame1+4, 7), "payload"},
		{"end offset decreasing", putU64(data, offEndOffs1+8, 1), "end offset"},
		{"end offset beyond 2m", putU64(data, offEndOffs1+8, 99), "end offset"},
		{"attr bits above width", putU64(data, offAttrs1, 0xff), "bits above width"},
		{"corrupt neighbor fails checksum", corruptAt(data, offNeighbors1, 0x02), "checksum"},
		{"corrupt trailer checksum", corruptAt(data, len(data)-1, 0x01), "checksum"},
		{"early trailer", putU32(data, offFrame1, 0), "trailer payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := graph.ReadBinaryChunked(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("ReadBinaryChunked accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestChunkedRejectsTruncation feeds every proper prefix of a valid chunked
// stream to the decoder: all must fail cleanly (no panic, no acceptance) —
// unlike the monolithic format, a chunked stream cannot end early without
// detection because the trailer is mandatory.
func TestChunkedRejectsTruncation(t *testing.T) {
	data := chunkedFixture(t)
	for i := 0; i < len(data); i++ {
		if _, err := graph.ReadBinaryChunked(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("ReadBinaryChunked accepted a %d-byte prefix of a %d-byte stream", i, len(data))
		}
	}
}

// rawChunkedStream hand-assembles a chunked stream from explicit frames, with
// a correct trailer checksum, to reach row-accounting states a valid encoder
// never emits.
func rawChunkedStream(n, m, w uint64, frames ...[]byte) []byte {
	var buf bytes.Buffer
	var scratch [8]byte
	buf.WriteString("AGMDPCSC")
	binary.LittleEndian.PutUint32(scratch[:4], 1)
	buf.Write(scratch[:4])
	var flags uint32
	if w > 0 {
		flags = 1
	}
	binary.LittleEndian.PutUint32(scratch[:4], flags)
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(w))
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], 0)
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], n)
	buf.Write(scratch[:8])
	binary.LittleEndian.PutUint64(scratch[:8], m)
	buf.Write(scratch[:8])
	for _, f := range frames {
		buf.Write(f)
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(scratch[:4], 0)
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], 4)
	buf.Write(scratch[:8])
	binary.LittleEndian.PutUint32(scratch[:4], crc)
	buf.Write(scratch[:4])
	return buf.Bytes()
}

// TestChunkedRejectsShortStreams covers the row- and edge-accounting checks
// at the trailer: streams whose frames are internally consistent (valid
// checksum) but do not deliver the advertised graph.
func TestChunkedRejectsShortStreams(t *testing.T) {
	// n=1 advertised, zero frames delivered.
	missingRows := rawChunkedStream(1, 0, 0)
	if _, err := graph.ReadBinaryChunked(bytes.NewReader(missingRows)); err == nil ||
		!strings.Contains(err.Error(), "ends after 0 of 1 rows") {
		t.Fatalf("missing rows: got %v", err)
	}

	// n=3, m=1 advertised, but every row ends at offset 0: all rows
	// delivered, neighbor entries short.
	frame := make([]byte, 12+3*8)
	binary.LittleEndian.PutUint32(frame[0:4], 3)
	binary.LittleEndian.PutUint64(frame[4:12], 24)
	missingEdges := rawChunkedStream(3, 1, 0, frame)
	if _, err := graph.ReadBinaryChunked(bytes.NewReader(missingEdges)); err == nil ||
		!strings.Contains(err.Error(), "neighbor entries") {
		t.Fatalf("missing edges: got %v", err)
	}
}

// TestChunkedIgnoresTrailingBytes checks the stream decoder consumes exactly
// one chunked snapshot, like the monolithic ReadBinary.
func TestChunkedIgnoresTrailingBytes(t *testing.T) {
	g := graph.FromEdges(3, 1, []graph.Edge{{U: 0, V: 1}})
	data := append(encodeChunked(t, g, 2), "trailing garbage"...)
	back, err := graph.ReadBinaryChunked(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadBinaryChunked with trailing bytes: %v", err)
	}
	if !g.Equal(back) {
		t.Fatal("decoded graph differs")
	}
}

// TestChunkReaderStreaming exercises the incremental Next interface directly:
// frame boundaries, the row/offset bookkeeping and the terminal io.EOF.
func TestChunkReaderStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 33, 4, 0.2)
	cr, err := graph.NewChunkReader(bytes.NewReader(encodeChunked(t, g, 10)))
	if err != nil {
		t.Fatalf("NewChunkReader: %v", err)
	}
	if st := cr.Stat(); st.Nodes != 33 || st.Edges != g.NumEdges() || st.Attributes != 4 || st.Size != g.BinarySize() {
		t.Fatalf("Stat = %+v", st)
	}
	row := 0
	var off int64
	var frames int
	for {
		c, err := cr.Next()
		if err != nil {
			break
		}
		if c.Start != row {
			t.Fatalf("frame starts at row %d, want %d", c.Start, row)
		}
		if c.Rows != len(c.EndOffsets) || (c.Attrs != nil && len(c.Attrs) != c.Rows) {
			t.Fatalf("frame shape mismatch: rows=%d offsets=%d attrs=%d", c.Rows, len(c.EndOffsets), len(c.Attrs))
		}
		for i, end := range c.EndOffsets {
			u := c.Start + i
			if got := end - off; got != int64(g.Degree(u)) {
				t.Fatalf("row %d has %d entries, want degree %d", u, got, g.Degree(u))
			}
			off = end
		}
		row += c.Rows
		frames++
	}
	if row != 33 || frames != 4 {
		t.Fatalf("saw %d rows in %d frames, want 33 in 4", row, frames)
	}
	if _, err := cr.Next(); err == nil {
		t.Fatal("Next after EOF succeeded")
	}
}

// tinySource is a minimal RowSource exercising Materialize's generic path.
type tinySource struct{ g *graph.Graph }

func (s tinySource) NumNodes() int                      { return s.g.NumNodes() }
func (s tinySource) NumEdges() int                      { return s.g.NumEdges() }
func (s tinySource) NumAttributes() int                 { return s.g.NumAttributes() }
func (s tinySource) RowDegree(u int) int                { return s.g.RowDegree(u) }
func (s tinySource) AppendRow(d []int32, u int) []int32 { return s.g.AppendRow(d, u) }
func (s tinySource) RowAttr(u int) graph.AttrVector     { return s.g.RowAttr(u) }

// TestMaterialize checks Materialize across the source flavours.
func TestMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 3, 0.2)
	if graph.Materialize(g) != g {
		t.Fatal("materializing a Graph should be the identity")
	}
	if !graph.Materialize(g.Builder()).Equal(g) {
		t.Fatal("materializing a Builder differs")
	}
	if !graph.Materialize(tinySource{g}).Equal(g) {
		t.Fatal("materializing a generic source differs")
	}
	vecs := make([]graph.AttrVector, g.NumNodes())
	for i := range vecs {
		vecs[i] = graph.AttrVector(rng.Uint64())
	}
	if !graph.Materialize(graph.SourceWithAttributes(g, 5, vecs)).Equal(g.WithAttributes(5, vecs)) {
		t.Fatal("materializing an attribute overlay differs from WithAttributes")
	}
}

// FuzzChunkReader feeds arbitrary bytes to the chunked decoder. It must never
// panic; when it accepts an input, the decoded graph must survive a chunked
// re-encode/decode round trip and re-encode to a valid monolithic snapshot.
func FuzzChunkReader(f *testing.F) {
	rng := rand.New(rand.NewSource(77))
	seeds := []*graph.Graph{
		graph.New(0, 0),
		graph.New(3, 2),
		graph.FromEdges(4, 0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}),
		randomGraph(rng, 12, 2, 0.3),
		randomGraph(rng, 25, 64, 0.1),
	}
	for _, g := range seeds {
		for _, chunkRows := range []int{1, 4, 0} {
			var buf bytes.Buffer
			if err := graph.WriteBinaryChunked(&buf, g, chunkRows); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
			if buf.Len() > 60 {
				f.Add(corruptAt(buf.Bytes(), 57, 0x1f))
			}
		}
	}
	f.Add([]byte("AGMDPCSC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.ReadBinaryChunked(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := graph.WriteBinaryChunked(&re, g, 3); err != nil {
			t.Fatalf("re-encoding an accepted graph failed: %v", err)
		}
		back, err := graph.ReadBinaryChunked(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded graph failed: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("chunked round trip of an accepted graph is not stable")
		}
		var mono bytes.Buffer
		if err := g.WriteBinary(&mono); err != nil {
			t.Fatalf("monolithic re-encode of an accepted graph failed: %v", err)
		}
		if _, err := graph.ReadBinary(bytes.NewReader(mono.Bytes())); err != nil {
			t.Fatalf("accepted graph is not a valid monolithic snapshot: %v", err)
		}
	})
}
