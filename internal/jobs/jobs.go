// Package jobs provides a typed asynchronous job manager for the synthesis
// service. Three job kinds share one lifecycle, listing and retention surface:
//
//   - sample jobs draw a batch of synthetic graphs from a fitted model
//     through the engine (the original job type),
//   - fit jobs run a full (optionally differentially private) model fit and
//     register the result in a model store, so huge fits return a job ID
//     instead of holding an HTTP connection open for minutes, and
//   - evaluate jobs measure the paper's utility metrics of synthetic graphs
//     against their original — either one stored pair, or fresh samples drawn
//     from a fitted model — at no privacy cost (pure post-processing).
//
// The synchronous endpoints hold a connection open for the whole operation,
// which caps the work at whatever a client (and its proxies) will tolerate as
// one request. A job instead is submitted once, returns an ID immediately,
// and runs in the background; clients poll for queued/running/done progress
// and results, and can cancel mid-flight. Sampled graphs are summarised in
// the result list and — when requested — stored into the graph store; fitted
// models land in the model store and the job reports their content-addressed
// ID (with the model's acceptance table pre-fitted concurrently, so the
// first sample pays no refinement cost).
//
// Determinism: a sample job with an explicit base seed s draws sample i with
// seed s+i, so a batch is exactly as reproducible as the equivalent sequence
// of synchronous requests; unseeded jobs draw per-sample seeds from the
// engine's worker streams and report them in the results. A fit job with
// seed s produces the same model as the synchronous fit at seed s — the fit
// pipeline is bit-identical for every parallelism.
//
// Finished jobs are retained (bounded, oldest evicted first) so clients can
// fetch results after completion; with Options.Dir set, finished-job
// metadata is additionally persisted as JSON and reloaded on construction,
// so clients can pick up results across service restarts. Cancellation and
// retention both drop a job's results, never its running work's correctness.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"time"

	"agmdp/internal/core"
	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/obs"
)

// jobStageDur aggregates per-stage wall times across all jobs on the
// process-wide default registry; the per-job breakdown additionally lands in
// each finished job's Info.Stages. Stage names: fit jobs report the core
// pipeline's "attrs"/"correlations"/"degrees"/"triangles" plus "table_warm"
// and "store"; sample jobs report "generate", "analyze" and "store".
var jobStageDur = obs.Default().HistogramVec("agmdp_jobs_stage_duration_seconds",
	"Wall-clock duration of job pipeline stages, by job kind and stage.",
	nil, "kind", "stage")

// ErrClosed is returned by Submit after Close has been called.
var ErrClosed = errors.New("jobs: manager closed")

// Kind discriminates the job types the manager runs.
type Kind string

const (
	// KindSample draws a batch of synthetic graphs from a fitted model.
	KindSample Kind = "sample"
	// KindFit fits a model from a graph and registers it in the model store.
	KindFit Kind = "fit"
	// KindEvaluate measures the utility of synthetic graphs against an
	// original graph (Tables 2–5 error columns).
	KindEvaluate Kind = "evaluate"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued means the job is accepted but no sample has started.
	StatusQueued Status = "queued"
	// StatusRunning means at least one sample is in flight.
	StatusRunning Status = "running"
	// StatusDone means the job finished with at least one successful sample.
	StatusDone Status = "done"
	// StatusFailed means every sample failed.
	StatusFailed Status = "failed"
	// StatusCancelled means the job was cancelled before finishing.
	StatusCancelled Status = "cancelled"
)

// Finished reports whether the status is terminal.
func (s Status) Finished() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Spec describes one batch sampling job.
type Spec struct {
	// Model is the fitted model to sample from. Required.
	Model *core.FittedModel
	// ModelID is the registry ID of Model; it keys the engine's
	// acceptance-table cache and is echoed in job listings.
	ModelID string
	// Count is the number of samples to draw (>= 1).
	Count int
	// Seed, when non-zero, seeds sample i with Seed+i, making the whole
	// batch deterministic. Zero lets each sample draw from the engine's
	// worker streams.
	Seed int64
	// Iterations, ModelKind and Parallelism are passed through to each
	// engine request; see engine.Request.
	Iterations  int
	ModelKind   string
	Parallelism int
	// Store, when true, stores every sampled graph into the manager's graph
	// store and records its content-addressed ID in the sample result.
	Store bool
	// OnStored, when non-nil, is invoked once per graph the job stores, with
	// its content-addressed ID. The tenancy layer uses it to record the
	// submitting tenant as the stored graph's owner.
	OnStored func(graphID string)
}

// SampleResult is the outcome of one sample within a job.
type SampleResult struct {
	Index     int    `json:"index"`
	Seed      int64  `json:"seed"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Triangles int64  `json:"triangles"`
	GraphID   string `json:"graph_id,omitempty"`
	Error     string `json:"error,omitempty"`
}

// FitResult is the outcome of a fit job.
type FitResult struct {
	// ModelID is the content-addressed registry ID of the fitted model.
	ModelID string `json:"model_id,omitempty"`
	// ModelName is the structural model the parameters were fitted for.
	ModelName string `json:"model_name,omitempty"`
	// Epsilon echoes the privacy budget spent (0 = non-private baseline).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Error carries the failure message of a failed fit.
	Error string `json:"error,omitempty"`
}

// Info is a point-in-time snapshot of one job. For sample jobs ModelID is
// the input model being sampled; for fit jobs the fitted model's ID arrives
// in Fit.ModelID (and is mirrored into ModelID on success, so listings show
// the interesting ID for either kind).
type Info struct {
	ID        string     `json:"id"`
	Kind      Kind       `json:"kind"`
	ModelID   string     `json:"model_id,omitempty"`
	GraphID   string     `json:"graph_id,omitempty"`
	Status    Status     `json:"status"`
	Count     int        `json:"count"`
	Completed int        `json:"completed"`
	Failed    int        `json:"failed"`
	Stored    int        `json:"stored,omitempty"`
	Fit       *FitResult `json:"fit,omitempty"`
	// Eval carries an evaluate job's utility measurements; it fills in as
	// samples complete, so polls observe partial results, and persists with
	// the finished record.
	Eval *EvalResult `json:"eval,omitempty"`
	// Stages breaks the job's wall-clock time into pipeline stages
	// (first-seen order; repeated stages accumulate). It is populated when
	// the job reaches a terminal status and persisted with the finished
	// record, so restarted services still report where a job's time went.
	Stages     []obs.Stage `json:"stages,omitempty"`
	CreatedAt  time.Time   `json:"created_at"`
	StartedAt  time.Time   `json:"started_at,omitzero"`
	FinishedAt time.Time   `json:"finished_at,omitzero"`
}

// ModelStore receives the models produced by fit jobs and caches their
// acceptance tables. registry.Registry implements it.
type ModelStore interface {
	// Put stores a fitted model and returns its content-addressed ID.
	Put(m *core.FittedModel) (string, error)
	// SetAcceptance caches a model's fitted acceptance table, reporting
	// whether the model is resident.
	SetAcceptance(id string, table []float64) bool
}

// Options configures a Manager.
type Options struct {
	// Engine executes the samples. Required.
	Engine *engine.Engine
	// Store receives sampled graphs for jobs with Spec.Store set. Jobs with
	// Store set are rejected when nil.
	Store *graphstore.Store
	// Models receives the models produced by fit jobs. Fit jobs are rejected
	// when nil.
	Models ModelStore
	// Dir, when non-empty, persists finished-job metadata (Info plus sample
	// results) as Dir/<id>.json and reloads it on New, so job results survive
	// service restarts. Running jobs are never persisted; a job killed
	// mid-run simply has no record after a restart unless its shutdown
	// cancellation completed (Close cancels running jobs, and cancelled jobs
	// persist like any finished job).
	Dir string
	// Retain bounds how many finished jobs are kept for result pickup;
	// beyond it the oldest finished job is dropped. Values below 1 select 64.
	Retain int
	// FanOut is how many samples of one job may be in flight at once (they
	// still queue behind the engine's own bounded worker pool). Values below
	// 1 select 4.
	FanOut int
	// MaxConcurrentFits bounds how many fit jobs run their pipelines at
	// once; fits beyond the bound wait in StatusQueued (visible in listings)
	// until a slot frees. Fit pipelines fan out internally onto the shared
	// worker pool, so a handful of concurrent fits already saturates the
	// machine — unbounded admission only added memory pressure and tail
	// latency. Values below 1 select GOMAXPROCS, floored at 2 so a queued
	// fit can always overlap another's sequential stages.
	MaxConcurrentFits int
	// SampleTimeout bounds each individual sample; zero means no per-sample
	// deadline.
	SampleTimeout time.Duration
	// Clock overrides the time source used for the Info timestamps (tests).
	Clock func() time.Time
}

// job is the manager-internal state of one submitted (or reloaded) job.
type job struct {
	mu      sync.Mutex
	info    Info
	results []SampleResult
	spec    Spec
	fit     FitSpec
	eval    EvalSpec
	stages  *obs.StageTimer // nil for jobs reloaded from disk
	cancel  context.CancelFunc
	done    chan struct{}
}

// infoSnapshot returns a copy of j.info that is safe to use after j.mu is
// released. The Eval result is the one Info field that keeps mutating while
// the job runs (samples append, the average is recomputed), so it is
// deep-copied; Fit is only ever set at terminal time and the per-sample
// Metrics pointers are write-once. Callers hold j.mu.
func (j *job) infoSnapshot() Info {
	info := j.info
	if info.Eval != nil {
		ev := *info.Eval
		ev.Samples = append([]EvalSample(nil), ev.Samples...)
		info.Eval = &ev
	}
	return info
}

// recordStage accumulates one stage duration on a job's timer and on the
// process-wide per-stage histogram.
func recordStage(j *job, kind Kind, stage string, d time.Duration) {
	j.stages.Add(stage, d)
	jobStageDur.With(string(kind), stage).ObserveDuration(d)
}

// Manager runs asynchronous sample and fit jobs. Construct with New; the
// zero value is not usable.
type Manager struct {
	opts Options

	// fitSem is the bounded fit-worker pool: one slot per concurrently
	// running fit pipeline (Options.MaxConcurrentFits).
	fitSem chan struct{}

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listings
	finished []string // completion order, for bounded retention
	seq      int
	closed   bool
	warnings []string
	wg       sync.WaitGroup
}

// New builds a manager over an engine (and, optionally, a graph store and a
// model store). With Options.Dir set, previously persisted finished jobs are
// reloaded so their results remain fetchable; files that cannot be read or
// decoded are skipped and reported via Warnings.
func New(opts Options) (*Manager, error) {
	if opts.Engine == nil {
		return nil, errors.New("jobs: nil engine")
	}
	if opts.Retain < 1 {
		opts.Retain = 64
	}
	if opts.FanOut < 1 {
		opts.FanOut = 4
	}
	if opts.MaxConcurrentFits < 1 {
		opts.MaxConcurrentFits = max(2, runtime.GOMAXPROCS(0))
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	m := &Manager{
		opts:   opts,
		jobs:   make(map[string]*job),
		fitSem: make(chan struct{}, opts.MaxConcurrentFits),
	}
	if opts.Dir != "" {
		if err := m.loadDir(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Warnings reports persisted-job files skipped on load and persistence
// failures encountered at job completion. Operators should surface these: a
// skipped or unwritten file is a job whose results will not survive a
// restart.
func (m *Manager) Warnings() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.warnings))
	copy(out, m.warnings)
	return out
}

// Submit accepts a job and starts it in the background, returning its ID.
func (m *Manager) Submit(spec Spec) (string, error) {
	if spec.Model == nil {
		return "", errors.New("jobs: nil model in spec")
	}
	if spec.Count < 1 {
		return "", fmt.Errorf("jobs: sample count %d, want >= 1", spec.Count)
	}
	// Sample i runs with seed Seed+i, and seed 0 means "unseeded" to the
	// engine — a negative base whose range crosses zero would silently turn
	// one sample of a deterministic batch into a random draw.
	if spec.Seed < 0 && spec.Seed+int64(spec.Count) > 0 {
		return "", fmt.Errorf("jobs: seed range [%d, %d] crosses 0 (sample seeds are seed+index; 0 means unseeded)",
			spec.Seed, spec.Seed+int64(spec.Count)-1)
	}
	if spec.Store && m.opts.Store == nil {
		return "", errors.New("jobs: store requested but the manager has no graph store")
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec:   spec,
		stages: obs.NewStageTimer(),
		cancel: cancel,
		done:   make(chan struct{}),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	m.seq++
	m.persistSeqLocked()
	id := fmt.Sprintf("job-%06d", m.seq)
	j.info = Info{
		ID:        id,
		Kind:      KindSample,
		ModelID:   spec.ModelID,
		Status:    StatusQueued,
		Count:     spec.Count,
		CreatedAt: m.opts.Clock(),
	}
	j.results = make([]SampleResult, spec.Count)
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(ctx, j)
	return id, nil
}

// run executes one job: FanOut workers pull sample indices and drive the
// engine, then the terminal status is decided and retention trimmed.
func (m *Manager) run(ctx context.Context, j *job) {
	defer m.wg.Done()
	defer j.cancel()

	j.mu.Lock()
	j.info.Status = StatusRunning
	j.info.StartedAt = m.opts.Clock()
	count := j.spec.Count
	j.mu.Unlock()

	indices := make(chan int)
	var workers sync.WaitGroup
	for w := 0; w < min(m.opts.FanOut, count); w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := range indices {
				m.runSample(ctx, j, i)
			}
		}()
	}
feed:
	for i := 0; i < count; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	workers.Wait()

	m.finish(j, func(info *Info) {
		switch {
		case ctx.Err() != nil:
			info.Status = StatusCancelled
		case info.Failed == count:
			info.Status = StatusFailed
		default:
			info.Status = StatusDone
		}
	})
}

// finish moves a job into its terminal state (chosen by decide), persists
// the finished record when a directory is configured, signals waiters, and
// applies the retention bound.
func (m *Manager) finish(j *job, decide func(info *Info)) {
	j.mu.Lock()
	decide(&j.info)
	j.info.FinishedAt = m.opts.Clock()
	if j.stages != nil {
		j.info.Stages = j.stages.Stages()
	}
	rec := persistedJob{Info: j.infoSnapshot(), Results: append([]SampleResult(nil), j.results...)}
	id := j.info.ID
	j.mu.Unlock()
	// Waiters are signalled at the end of finish, after the persisted record
	// is committed: a client that saw Wait return (or polled a terminal
	// status) may restart the service immediately and must still find the
	// job's record on disk.
	defer close(j.done)

	// Stage the record to a temp file before taking the manager lock: the
	// expensive disk I/O must not stall every jobs API call behind m.mu on
	// slow storage. Only the final rename happens under the lock.
	var tmpPath string
	var perr error
	if m.opts.Dir != "" {
		tmpPath, perr = m.stageRecord(rec)
	}

	m.mu.Lock()
	// The job may already have been removed by a cancel-and-delete; in that
	// case nothing is committed either (the staged temp file is discarded
	// below), so a deleted job cannot resurrect from disk after a restart.
	// Committing under the manager lock keeps the rename ordered against
	// concurrent removals.
	if _, ok := m.jobs[id]; ok {
		if tmpPath != "" {
			perr = m.commitRecord(tmpPath, id)
			tmpPath = ""
		}
		if perr != nil {
			// Completion is asynchronous — no caller can receive this
			// error, and Warnings() is typically read only at startup — so
			// log it too: an unwritten record is a job whose results
			// silently will not survive a restart.
			slog.Error("jobs: persisting finished job failed", "job", id, "error", perr)
			m.addWarningLocked(fmt.Sprintf("%s: %v", id, perr))
		}
		m.finished = append(m.finished, id)
		for len(m.finished) > m.opts.Retain {
			m.removeLocked(m.finished[0])
		}
	}
	m.mu.Unlock()
	if tmpPath != "" {
		os.Remove(tmpPath) // job deleted while staging; drop the orphan
	}
}

// maxWarnings bounds the retained warning strings: a persistently failing
// disk would otherwise grow the slice by one entry per finished job for the
// life of the process.
const maxWarnings = 100

// addWarningLocked appends a warning, suppressing beyond the bound (with one
// marker entry so the truncation is visible). Callers hold m.mu.
func (m *Manager) addWarningLocked(s string) {
	if len(m.warnings) < maxWarnings {
		m.warnings = append(m.warnings, s)
		return
	}
	if len(m.warnings) == maxWarnings {
		m.warnings = append(m.warnings, "further warnings suppressed (see logs)")
	}
}

// runSample draws sample i of a job and records its result.
func (m *Manager) runSample(ctx context.Context, j *job, i int) {
	sctx := ctx
	if m.opts.SampleTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, m.opts.SampleTimeout)
		defer cancel()
	}
	var seed int64
	if j.spec.Seed != 0 {
		seed = j.spec.Seed + int64(i)
	}
	start := time.Now()
	src, usedSeed, err := m.opts.Engine.SampleSourceSeeded(sctx, engine.Request{
		Model:       j.spec.Model,
		Seed:        seed,
		Iterations:  j.spec.Iterations,
		ModelKind:   j.spec.ModelKind,
		Parallelism: j.spec.Parallelism,
		CacheKey:    j.spec.ModelID,
	})
	recordStage(j, KindSample, "generate", time.Since(start))
	res := SampleResult{Index: i, Seed: usedSeed}
	var stored bool
	if err == nil && j.spec.Store {
		// Store straight from the sampler's row source: the snapshot is
		// encoded incrementally (streamed to the store file while hashed), so
		// store-back never builds a whole-snapshot buffer. The content ID is
		// the same the materialised graph would get — the encoding is
		// canonical.
		start = time.Now()
		res.GraphID, err = m.opts.Store.PutSource(src)
		recordStage(j, KindSample, "store", time.Since(start))
		stored = err == nil
		if stored && j.spec.OnStored != nil {
			j.spec.OnStored(res.GraphID)
		}
	}
	if err != nil {
		res.Error = err.Error()
	} else {
		start = time.Now()
		g := graph.Materialize(src)
		res.Nodes = g.NumNodes()
		res.Edges = g.NumEdges()
		res.Triangles = g.Triangles()
		recordStage(j, KindSample, "analyze", time.Since(start))
	}

	j.mu.Lock()
	j.results[i] = res
	if err != nil {
		j.info.Failed++
	} else {
		j.info.Completed++
	}
	if stored {
		j.info.Stored++
	}
	j.mu.Unlock()
}

// Get returns a snapshot of one job and a copy of its per-sample results
// (slots whose samples have not finished are zero-valued).
func (m *Manager) Get(id string) (Info, []SampleResult, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Info{}, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	results := make([]SampleResult, len(j.results))
	copy(results, j.results)
	return j.infoSnapshot(), results, true
}

// List returns a snapshot of every retained job, oldest submission first.
func (m *Manager) List() []Info {
	m.mu.Lock()
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		out = append(out, j.infoSnapshot())
		j.mu.Unlock()
	}
	return out
}

// Cancel cancels a running job or removes a finished one, reporting whether
// the job was known. A cancelled job transitions to StatusCancelled and is
// retained for result pickup like any other finished job.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	finished := j.info.Status.Finished()
	j.mu.Unlock()
	if finished {
		m.mu.Lock()
		m.removeLocked(id)
		m.mu.Unlock()
		return true
	}
	j.cancel()
	return true
}

// removeLocked drops a job from every index (and its persisted record, when
// persistence is enabled). Callers hold m.mu.
func (m *Manager) removeLocked(id string) {
	delete(m.jobs, id)
	m.removePersisted(id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	for i, v := range m.finished {
		if v == id {
			m.finished = append(m.finished[:i], m.finished[i+1:]...)
			break
		}
	}
}

// AcquireFitSlot blocks for one of the manager's bounded fit slots
// (Options.MaxConcurrentFits) — the same pool the asynchronous fit jobs
// queue on — until one frees or the context expires. The serving layer
// routes synchronous fits through it so sync traffic cannot defeat the fit
// admission bound. Callers that acquired a slot must release it with
// ReleaseFitSlot.
func (m *Manager) AcquireFitSlot(ctx context.Context) error {
	select {
	case m.fitSem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReleaseFitSlot returns a slot taken with AcquireFitSlot.
func (m *Manager) ReleaseFitSlot() { <-m.fitSem }

// Wait blocks until the job reaches a terminal status or the context
// expires. It reports false for unknown jobs.
func (m *Manager) Wait(ctx context.Context, id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-j.done:
		return true
	case <-ctx.Done():
		return false
	}
}

// Close cancels every running job, waits for them to wind down, and rejects
// further submissions. It is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	m.wg.Wait()
}
