package jobs

import (
	"math"
	"testing"

	"agmdp/internal/engine"
	"agmdp/internal/graphstore"
)

// submitEval submits an evaluate spec and fails the test on error.
func submitEval(t *testing.T, m *Manager, spec EvalSpec) string {
	t.Helper()
	id, err := m.SubmitEvaluate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestEvaluatePairMode(t *testing.T) {
	m, _ := newTestManager(t)
	orig := fixtureGraph(t)
	id := submitEval(t, m, EvalSpec{
		Source: orig, SourceID: "src",
		Synthetic: orig, SyntheticID: "src",
	})
	info := wait(t, m, id)
	if info.Status != StatusDone || info.Kind != KindEvaluate || info.Completed != 1 || info.Failed != 0 {
		t.Fatalf("info = %+v", info)
	}
	ev := info.Eval
	if ev == nil || ev.SourceGraphID != "src" || ev.SyntheticGraphID != "src" || len(ev.Samples) != 1 {
		t.Fatalf("eval = %+v", ev)
	}
	s := ev.Samples[0]
	if s.Error != "" || s.Metrics == nil || s.Nodes != orig.NumNodes() || s.Edges != orig.NumEdges() {
		t.Fatalf("sample = %+v", s)
	}
	// A graph compared to itself has zero utility error on every column.
	if *s.Metrics != *ev.Average || s.Metrics.MREEdges != 0 || s.Metrics.KSDegree != 0 || s.Metrics.MRETriangles != 0 {
		t.Fatalf("self-evaluation metrics non-zero: %+v", s.Metrics)
	}
}

func TestEvaluateModelMode(t *testing.T) {
	m, _ := newTestManager(t)
	orig := fixtureGraph(t)
	id := submitEval(t, m, EvalSpec{
		Source: orig, SourceID: "src",
		Model: fixtureModel(t), ModelID: "m1",
		Count: 3, Seed: 50, Iterations: 1,
	})
	info := wait(t, m, id)
	if info.Status != StatusDone || info.Completed != 3 || info.Failed != 0 {
		t.Fatalf("info = %+v", info)
	}
	ev := info.Eval
	if ev.ModelID != "m1" || ev.SyntheticGraphID != "" || len(ev.Samples) != 3 || ev.Average == nil {
		t.Fatalf("eval = %+v", ev)
	}
	sum := 0.0
	for i, s := range ev.Samples {
		if s.Index != i || s.Error != "" || s.Metrics == nil || s.Nodes == 0 {
			t.Fatalf("sample %d = %+v", i, s)
		}
		if s.Seed != 50+int64(i) {
			t.Fatalf("sample %d seed = %d, want %d", i, s.Seed, 50+int64(i))
		}
		sum += s.Metrics.MREEdges
	}
	if got := ev.Average.MREEdges; math.Abs(got-sum/3) > 1e-12 {
		t.Fatalf("average MREEdges = %v, want %v", got, sum/3)
	}
}

func TestEvaluateSeededIsDeterministic(t *testing.T) {
	m, _ := newTestManager(t)
	orig := fixtureGraph(t)
	model := fixtureModel(t)
	run := func() []EvalSample {
		id := submitEval(t, m, EvalSpec{
			Source: orig, Model: model, ModelID: "m1",
			Count: 2, Seed: 9, Iterations: 1, Parallelism: 1,
		})
		info := wait(t, m, id)
		return info.Eval.Samples
	}
	a, b := run(), run()
	for i := range a {
		am, bm := *a[i].Metrics, *b[i].Metrics
		a[i].Metrics, b[i].Metrics = nil, nil
		if a[i] != b[i] || am != bm {
			t.Fatalf("sample %d differs across identical evaluations", i)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	m, _ := newTestManager(t)
	orig := fixtureGraph(t)
	model := fixtureModel(t)
	cases := []struct {
		name string
		spec EvalSpec
	}{
		{"nil source", EvalSpec{Synthetic: orig}},
		{"neither mode", EvalSpec{Source: orig}},
		{"both modes", EvalSpec{Source: orig, Synthetic: orig, Model: model}},
		{"zero count", EvalSpec{Source: orig, Model: model, Count: 0}},
		{"seed crosses zero", EvalSpec{Source: orig, Model: model, Count: 4, Seed: -2}},
	}
	for _, tc := range cases {
		if _, err := m.SubmitEvaluate(tc.spec); err == nil {
			t.Errorf("%s: submit succeeded, want error", tc.name)
		}
	}
	// Pair mode ignores Count and always evaluates exactly one sample.
	id := submitEval(t, m, EvalSpec{Source: orig, Synthetic: orig, Count: 7})
	if info := wait(t, m, id); info.Count != 1 || len(info.Eval.Samples) != 1 {
		t.Fatalf("pair-mode info = %+v", info)
	}
}

func TestEvaluateCancel(t *testing.T) {
	m, _ := newTestManager(t)
	orig := fixtureGraph(t)
	id := submitEval(t, m, EvalSpec{
		Source: orig, Model: fixtureModel(t), ModelID: "m1",
		Count: 500, Iterations: 2,
	})
	if !m.Cancel(id) {
		t.Fatal("Cancel returned false")
	}
	info := wait(t, m, id)
	if info.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", info.Status)
	}
	if len(info.Eval.Samples) != info.Completed+info.Failed {
		t.Fatalf("samples %d vs completed %d + failed %d", len(info.Eval.Samples), info.Completed, info.Failed)
	}
}

func TestEvaluatePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m1, _ := newEvalManager(t, dir)
	orig := fixtureGraph(t)
	id := submitEval(t, m1, EvalSpec{
		Source: orig, SourceID: "src",
		Model: fixtureModel(t), ModelID: "m1",
		Count: 2, Seed: 30, Iterations: 1,
	})
	want := wait(t, m1, id)
	m1.Close()

	m2, _ := newEvalManager(t, dir)
	got, _, ok := m2.Get(id)
	if !ok {
		t.Fatalf("job %s not reloaded", id)
	}
	if got.Status != want.Status || got.Completed != want.Completed {
		t.Fatalf("reloaded info = %+v, want %+v", got, want)
	}
	if got.Eval == nil || len(got.Eval.Samples) != len(want.Eval.Samples) {
		t.Fatalf("reloaded eval = %+v", got.Eval)
	}
	for i := range want.Eval.Samples {
		ws, gs := want.Eval.Samples[i], got.Eval.Samples[i]
		wm, gm := ws.Metrics, gs.Metrics
		ws.Metrics, gs.Metrics = nil, nil
		if ws != gs || *wm != *gm {
			t.Fatalf("reloaded sample %d = %+v, want %+v", i, got.Eval.Samples[i], want.Eval.Samples[i])
		}
	}
	if *got.Eval.Average != *want.Eval.Average {
		t.Fatalf("reloaded average = %+v, want %+v", got.Eval.Average, want.Eval.Average)
	}
}

// newEvalManager builds a manager with a persistence directory.
func newEvalManager(t *testing.T, dir string) (*Manager, *graphstore.Store) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	store, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Engine: eng, Store: store, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, store
}
