package jobs

// Finished-job persistence. Job results used to be in-memory only and died
// with the process; with Options.Dir configured, every job that reaches a
// terminal status is written as Dir/<id>.json (atomically: temp file, then
// rename) and reloaded on New, so a client that submitted a long batch or an
// overnight fit can still resolve GET /v1/jobs/{id} after a service restart.
// Only finished jobs persist — a running job's record would go stale the
// moment it was written; shutdown cancels running jobs, and the resulting
// cancelled records persist like any other terminal state.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// persistedJob is the on-disk form of one finished job.
type persistedJob struct {
	Info    Info           `json:"info"`
	Results []SampleResult `json:"results,omitempty"`
}

// seqFile records the high-water job sequence number, so IDs issued to jobs
// that never reached a terminal record (killed mid-run by a crash, not a
// graceful shutdown) are still never reissued after a restart.
const seqFile = "seq"

// stageRecord writes a finished-job record to a temporary file in the job
// directory and returns its path. The expensive I/O (MkdirAll, create,
// write) happens here, without any manager lock held; committing the record
// is then a single rename (commitRecord).
func (m *Manager) stageRecord(rec persistedJob) (string, error) {
	if err := os.MkdirAll(m.opts.Dir, 0o755); err != nil {
		return "", fmt.Errorf("jobs: creating job directory: %w", err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return "", fmt.Errorf("jobs: encoding job record: %w", err)
	}
	tmp, err := os.CreateTemp(m.opts.Dir, rec.Info.ID+".tmp*")
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("jobs: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("jobs: %w", err)
	}
	return tmp.Name(), nil
}

// commitRecord atomically publishes a staged record under its final name.
func (m *Manager) commitRecord(tmpPath, id string) error {
	if err := os.Rename(tmpPath, filepath.Join(m.opts.Dir, id+".json")); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// persistSeqLocked best-effort records the current sequence high-water mark.
// Called with m.mu held on every ID allocation; the write is a tiny
// single-file overwrite, and a failure only costs crash protection for ID
// reuse (graceful shutdowns still persist terminal records), so it is not
// worth failing a submission over.
func (m *Manager) persistSeqLocked() {
	if m.opts.Dir == "" {
		return
	}
	os.WriteFile(filepath.Join(m.opts.Dir, seqFile), []byte(strconv.Itoa(m.seq)), 0o644)
}

// removePersisted deletes a job's on-disk record, if any.
func (m *Manager) removePersisted(id string) {
	if m.opts.Dir != "" {
		os.Remove(filepath.Join(m.opts.Dir, id+".json"))
	}
}

// loadDir restores persisted finished jobs, ordered by creation time so
// listings and the retention bound match the original submission order.
// Files that cannot be read or decoded, records whose ID does not match
// their file name, and records in a non-terminal state are skipped (and
// reported via Warnings) rather than failing the open. The ID sequence
// resumes past the highest restored job number, so new submissions never
// collide with reloaded IDs.
func (m *Manager) loadDir() error {
	if err := os.MkdirAll(m.opts.Dir, 0o755); err != nil {
		return fmt.Errorf("jobs: creating job directory: %w", err)
	}
	glob, err := filepath.Glob(filepath.Join(m.opts.Dir, "*.json"))
	if err != nil {
		return fmt.Errorf("jobs: scanning job directory: %w", err)
	}
	recs := make([]persistedJob, 0, len(glob))
	for _, path := range glob {
		data, err := os.ReadFile(path)
		if err != nil {
			m.addWarningLocked(fmt.Sprintf("%s: %v", path, err))
			continue
		}
		var rec persistedJob
		if err := json.Unmarshal(data, &rec); err != nil {
			m.addWarningLocked(fmt.Sprintf("%s: %v", path, err))
			continue
		}
		if want := strings.TrimSuffix(filepath.Base(path), ".json"); want != rec.Info.ID {
			m.addWarningLocked(fmt.Sprintf("%s: record is for job %q, not the name it was stored under", path, rec.Info.ID))
			continue
		}
		if !rec.Info.Status.Finished() {
			m.addWarningLocked(fmt.Sprintf("%s: non-terminal status %q", path, rec.Info.Status))
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Info.CreatedAt.Equal(recs[j].Info.CreatedAt) {
			return recs[i].Info.CreatedAt.Before(recs[j].Info.CreatedAt)
		}
		return recs[i].Info.ID < recs[j].Info.ID
	})
	for _, rec := range recs {
		// Reloaded jobs are terminal: their done channel is already closed
		// and cancellation is a no-op.
		done := make(chan struct{})
		close(done)
		j := &job{
			info:    rec.Info,
			results: rec.Results,
			cancel:  func() {},
			done:    done,
		}
		m.jobs[rec.Info.ID] = j
		m.order = append(m.order, rec.Info.ID)
		m.finished = append(m.finished, rec.Info.ID)
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.Info.ID, "job-")); err == nil && n > m.seq {
			m.seq = n
		}
	}
	// The sequence resumes past the high-water mark, not just the highest
	// restored record: an ID issued to a job that crashed mid-run has no
	// terminal record, and reusing it would hand a polling client some
	// other client's job.
	if data, err := os.ReadFile(filepath.Join(m.opts.Dir, seqFile)); err == nil {
		if n, err := strconv.Atoi(strings.TrimSpace(string(data))); err == nil && n > m.seq {
			m.seq = n
		}
	}
	// The retention bound holds for reloaded state too, on disk as well as
	// in memory.
	for len(m.finished) > m.opts.Retain {
		m.removeLocked(m.finished[0])
	}
	return nil
}
