package jobs

// Evaluate jobs: serving-side utility evaluation. An evaluate job measures
// the paper's Table 2–5 error columns of synthetic graphs against an original
// graph — either one stored synthetic graph (pair mode), or Count fresh
// samples drawn from a fitted model (model mode), with the per-sample rows
// and their running average filling into the job's Info as they complete.
// Evaluation reads a fitted model and graphs that already exist; it is pure
// post-processing of DP outputs and spends no privacy budget.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"agmdp/internal/analytics"
	"agmdp/internal/core"
	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/obs"
)

// EvalSpec describes one asynchronous utility evaluation.
type EvalSpec struct {
	// Source is the original graph the synthetic output is measured against.
	// Required. Graphs are immutable, so the manager shares the caller's
	// instance.
	Source *graph.Graph
	// SourceID optionally records the graph store ID of Source; it is echoed
	// in the job's Info and result.
	SourceID string

	// Synthetic selects pair mode: measure this one stored graph against
	// Source. Exactly one of Synthetic and Model must be set.
	Synthetic *graph.Graph
	// SyntheticID optionally records the graph store ID of Synthetic.
	SyntheticID string

	// Model selects model mode: draw Count samples from this fitted model and
	// measure each against Source.
	Model *core.FittedModel
	// ModelID is the registry ID of Model; it keys the engine's
	// acceptance-table cache and is echoed in the job's Info.
	ModelID string
	// Count is the number of samples to evaluate in model mode (>= 1); pair
	// mode always evaluates exactly one.
	Count int
	// Seed, when non-zero, seeds sample i with Seed+i exactly like a sample
	// job, so an evaluation is reproducible against the batch it scores.
	Seed int64
	// Iterations, ModelKind and Parallelism are passed through to each engine
	// request; Parallelism additionally bounds the metric passes.
	Iterations  int
	ModelKind   string
	Parallelism int
}

// EvalSample is the outcome of one evaluated sample within a job.
type EvalSample struct {
	Index     int    `json:"index"`
	Seed      int64  `json:"seed,omitempty"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Triangles int64  `json:"triangles"`
	Error     string `json:"error,omitempty"`
	// Metrics holds the utility error columns of this sample against the
	// source graph; nil when the sample failed.
	Metrics *analytics.UtilityMetrics `json:"metrics,omitempty"`
}

// EvalResult is the outcome of an evaluate job.
type EvalResult struct {
	// SourceGraphID is the graph store ID of the original graph.
	SourceGraphID string `json:"source_graph_id,omitempty"`
	// SyntheticGraphID is set in pair mode: the stored synthetic graph that
	// was measured.
	SyntheticGraphID string `json:"synthetic_graph_id,omitempty"`
	// ModelID is set in model mode: the fitted model the samples came from.
	ModelID string `json:"model_id,omitempty"`
	// Samples holds one row per evaluated sample, in index order.
	Samples []EvalSample `json:"samples"`
	// Average is the element-wise mean over the successful samples; nil until
	// at least one sample succeeds.
	Average *analytics.UtilityMetrics `json:"average,omitempty"`
}

// SubmitEvaluate accepts an evaluate job and starts it in the background,
// returning its ID.
func (m *Manager) SubmitEvaluate(spec EvalSpec) (string, error) {
	if spec.Source == nil {
		return "", errors.New("jobs: nil source graph in evaluate spec")
	}
	switch {
	case spec.Synthetic != nil && spec.Model != nil:
		return "", errors.New("jobs: evaluate spec sets both a synthetic graph and a model; want exactly one")
	case spec.Synthetic != nil:
		spec.Count = 1
	case spec.Model != nil:
		if spec.Count < 1 {
			return "", fmt.Errorf("jobs: evaluate sample count %d, want >= 1", spec.Count)
		}
		// Same rule as sample jobs: sample i runs with seed Seed+i, and seed 0
		// means "unseeded" to the engine.
		if spec.Seed < 0 && spec.Seed+int64(spec.Count) > 0 {
			return "", fmt.Errorf("jobs: seed range [%d, %d] crosses 0 (sample seeds are seed+index; 0 means unseeded)",
				spec.Seed, spec.Seed+int64(spec.Count)-1)
		}
	default:
		return "", errors.New("jobs: evaluate spec needs a synthetic graph or a model")
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		eval:   spec,
		stages: obs.NewStageTimer(),
		cancel: cancel,
		done:   make(chan struct{}),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	m.seq++
	m.persistSeqLocked()
	id := fmt.Sprintf("job-%06d", m.seq)
	j.info = Info{
		ID:        id,
		Kind:      KindEvaluate,
		ModelID:   spec.ModelID,
		GraphID:   spec.SourceID,
		Status:    StatusQueued,
		Count:     spec.Count,
		CreatedAt: m.opts.Clock(),
		Eval: &EvalResult{
			SourceGraphID:    spec.SourceID,
			SyntheticGraphID: spec.SyntheticID,
			ModelID:          spec.ModelID,
			Samples:          []EvalSample{},
		},
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	go m.runEvaluate(ctx, j)
	return id, nil
}

// runEvaluate executes one evaluate job: samples run sequentially (each
// sample's generation and metric passes are internally parallel at the spec's
// parallelism), the running average updates after every success, and
// cancellation is honoured between samples.
func (m *Manager) runEvaluate(ctx context.Context, j *job) {
	defer m.wg.Done()
	defer j.cancel()

	j.mu.Lock()
	spec := j.eval
	j.info.Status = StatusRunning
	j.info.StartedAt = m.opts.Clock()
	count := j.info.Count
	j.mu.Unlock()

	var metrics []analytics.UtilityMetrics
	for i := 0; i < count && ctx.Err() == nil; i++ {
		sample := m.evalSample(ctx, j, spec, i)
		if sample == nil { // cancelled mid-sample
			break
		}
		j.mu.Lock()
		j.info.Eval.Samples = append(j.info.Eval.Samples, *sample)
		if sample.Error != "" {
			j.info.Failed++
		} else {
			j.info.Completed++
			metrics = append(metrics, *sample.Metrics)
			avg := analytics.AverageUtility(metrics)
			j.info.Eval.Average = &avg
		}
		j.mu.Unlock()
	}

	m.finish(j, func(info *Info) {
		switch {
		case ctx.Err() != nil:
			info.Status = StatusCancelled
		case info.Completed == 0:
			info.Status = StatusFailed
		default:
			info.Status = StatusDone
		}
	})
}

// evalSample produces and scores sample i of an evaluate job. It returns nil
// only when the context was cancelled before a result could be recorded.
func (m *Manager) evalSample(ctx context.Context, j *job, spec EvalSpec, i int) *EvalSample {
	sample := &EvalSample{Index: i}
	synthetic := spec.Synthetic
	if synthetic == nil {
		sctx := ctx
		if m.opts.SampleTimeout > 0 {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(ctx, m.opts.SampleTimeout)
			defer cancel()
		}
		var seed int64
		if spec.Seed != 0 {
			seed = spec.Seed + int64(i)
		}
		start := time.Now()
		g, usedSeed, err := m.opts.Engine.SampleSeeded(sctx, engine.Request{
			Model:       spec.Model,
			Seed:        seed,
			Iterations:  spec.Iterations,
			ModelKind:   spec.ModelKind,
			Parallelism: spec.Parallelism,
			CacheKey:    spec.ModelID,
		})
		recordStage(j, KindEvaluate, "sample", time.Since(start))
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			sample.Error = err.Error()
			return sample
		}
		sample.Seed = usedSeed
		synthetic = g
	}

	start := time.Now()
	u := analytics.Compare(spec.Source, synthetic, spec.Parallelism)
	recordStage(j, KindEvaluate, "compare", time.Since(start))
	if ctx.Err() != nil {
		return nil
	}
	sample.Nodes = synthetic.NumNodes()
	sample.Edges = synthetic.NumEdges()
	sample.Triangles = synthetic.TrianglesWith(spec.Parallelism)
	sample.Metrics = &u
	return sample
}
