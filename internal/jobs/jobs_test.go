package jobs

import (
	"context"
	"testing"
	"time"

	"agmdp/internal/core"
	"agmdp/internal/dp"
	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
)

// fixtureModel fits a small non-private model for job tests.
func fixtureModel(t testing.TB) *core.FittedModel {
	t.Helper()
	rng := dp.NewRand(42)
	b := graph.NewBuilder(60, 2)
	for i := 0; i < 200; i++ {
		b.AddEdge(rng.Intn(60), rng.Intn(60))
	}
	for i := 0; i < 60; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(4)))
	}
	return core.Fit(b.Finalize(), nil)
}

// newTestManager builds a manager over a 2-worker engine and an in-memory
// graph store, torn down with the test.
func newTestManager(t *testing.T) (*Manager, *graphstore.Store) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	store, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Engine: eng, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, store
}

// wait blocks until the job finishes, failing the test on timeout.
func wait(t *testing.T, m *Manager, id string) Info {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if !m.Wait(ctx, id) {
		t.Fatalf("job %s did not finish in time", id)
	}
	info, _, ok := m.Get(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	return info
}

func TestJobRunsToCompletion(t *testing.T) {
	m, _ := newTestManager(t)
	model := fixtureModel(t)
	id, err := m.Submit(Spec{Model: model, ModelID: "m1", Count: 5, Seed: 100, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	info := wait(t, m, id)
	if info.Status != StatusDone || info.Completed != 5 || info.Failed != 0 {
		t.Fatalf("info = %+v", info)
	}
	if info.StartedAt.IsZero() || info.FinishedAt.IsZero() {
		t.Fatalf("missing timestamps: %+v", info)
	}
	_, results, _ := m.Get(id)
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Index != i || r.Error != "" || r.Nodes == 0 || r.Edges == 0 {
			t.Fatalf("result %d = %+v", i, r)
		}
		// Seeded jobs use base seed + index per sample.
		if r.Seed != 100+int64(i) {
			t.Fatalf("result %d seed = %d, want %d", i, r.Seed, 100+int64(i))
		}
	}
}

func TestJobSeededBatchIsDeterministic(t *testing.T) {
	m, _ := newTestManager(t)
	model := fixtureModel(t)
	run := func() []SampleResult {
		id, err := m.Submit(Spec{Model: model, Count: 4, Seed: 7, Iterations: 1, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, m, id)
		_, results, _ := m.Get(id)
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical jobs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestUnseededJobReportsDrawnSeeds(t *testing.T) {
	m, _ := newTestManager(t)
	id, err := m.Submit(Spec{Model: fixtureModel(t), Count: 3, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, m, id)
	_, results, _ := m.Get(id)
	for i, r := range results {
		if r.Seed == 0 {
			t.Fatalf("sample %d did not report its drawn seed", i)
		}
	}
}

func TestJobStoresGraphs(t *testing.T) {
	m, store := newTestManager(t)
	id, err := m.Submit(Spec{Model: fixtureModel(t), Count: 3, Seed: 5, Iterations: 1, Store: true})
	if err != nil {
		t.Fatal(err)
	}
	info := wait(t, m, id)
	if info.Stored != 3 {
		t.Fatalf("stored %d graphs, want 3", info.Stored)
	}
	_, results, _ := m.Get(id)
	for i, r := range results {
		if r.GraphID == "" {
			t.Fatalf("sample %d has no graph ID", i)
		}
		g, ok := store.Get(r.GraphID)
		if !ok {
			t.Fatalf("sample %d graph %s not in store", i, r.GraphID)
		}
		if g.NumNodes() != r.Nodes || g.NumEdges() != r.Edges {
			t.Fatalf("stored graph disagrees with result summary %+v", r)
		}
	}
}

func TestStoreWithoutStoreRejected(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, Seed: 1})
	t.Cleanup(eng.Close)
	m, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if _, err := m.Submit(Spec{Model: fixtureModel(t), Count: 1, Store: true}); err == nil {
		t.Fatal("Submit accepted Store without a graph store")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, _ := newTestManager(t)
	if _, err := m.Submit(Spec{Count: 1}); err == nil {
		t.Fatal("Submit accepted a nil model")
	}
	if _, err := m.Submit(Spec{Model: fixtureModel(t), Count: 0}); err == nil {
		t.Fatal("Submit accepted count 0")
	}
	// A negative base seed whose per-sample range [seed, seed+count) would
	// cross 0 silently degrades one sample to an unseeded draw — rejected.
	if _, err := m.Submit(Spec{Model: fixtureModel(t), Count: 8, Seed: -3}); err == nil {
		t.Fatal("Submit accepted a seed range crossing 0")
	}
	// A fully negative range is fine.
	if _, err := m.Submit(Spec{Model: fixtureModel(t), Count: 3, Seed: -3, Iterations: 1}); err != nil {
		t.Fatalf("Submit rejected a valid negative seed: %v", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m, _ := newTestManager(t)
	// A large seeded batch so cancellation lands mid-flight.
	id, err := m.Submit(Spec{Model: fixtureModel(t), Count: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(id) {
		t.Fatal("Cancel known job = false")
	}
	info := wait(t, m, id)
	if info.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", info.Status)
	}
	if info.Completed == 500 {
		t.Fatal("cancelled job completed every sample")
	}
}

func TestCancelUnknownJob(t *testing.T) {
	m, _ := newTestManager(t)
	if m.Cancel("job-999999") {
		t.Fatal("Cancel unknown job = true")
	}
}

func TestCancelFinishedJobRemovesIt(t *testing.T) {
	m, _ := newTestManager(t)
	id, err := m.Submit(Spec{Model: fixtureModel(t), Count: 1, Seed: 3, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, m, id)
	if !m.Cancel(id) {
		t.Fatal("Cancel finished job = false")
	}
	if _, _, ok := m.Get(id); ok {
		t.Fatal("finished job survived Cancel")
	}
}

func TestFinishedJobRetentionBound(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	m, err := New(Options{Engine: eng, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	model := fixtureModel(t)
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := m.Submit(Spec{Model: model, Count: 1, Seed: int64(i + 1), Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, m, id)
		ids = append(ids, id)
	}
	if _, _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest finished job survived the retention bound")
	}
	if _, _, ok := m.Get(ids[3]); !ok {
		t.Fatal("newest finished job was dropped")
	}
	if got := len(m.List()); got != 2 {
		t.Fatalf("List has %d jobs, want 2", got)
	}
}

func TestListOrder(t *testing.T) {
	m, _ := newTestManager(t)
	model := fixtureModel(t)
	id1, _ := m.Submit(Spec{Model: model, Count: 1, Seed: 1, Iterations: 1})
	id2, _ := m.Submit(Spec{Model: model, Count: 1, Seed: 2, Iterations: 1})
	wait(t, m, id1)
	wait(t, m, id2)
	list := m.List()
	if len(list) != 2 || list[0].ID != id1 || list[1].ID != id2 {
		t.Fatalf("List = %+v", list)
	}
}

func TestCloseRejectsSubmissions(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, Seed: 1})
	t.Cleanup(eng.Close)
	m, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Submit(Spec{Model: fixtureModel(t), Count: 1}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}
