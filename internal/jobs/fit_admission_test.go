package jobs

// Admission-control tests for fit jobs: the bounded fit-worker pool (queued
// fits are visible as StatusQueued), prompt cancellation of queued and
// running fits, and the OnDone terminal callback the tenancy layer hangs
// refunds on.

import (
	"context"
	"testing"
	"time"

	"agmdp/internal/dp"
	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/registry"
)

// newBoundedFitManager builds a manager with exactly one fit slot, so a test
// can occupy it and deterministically observe the queued state.
func newBoundedFitManager(t *testing.T) *Manager {
	t.Helper()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1, Acceptance: reg})
	t.Cleanup(eng.Close)
	store, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Engine: eng, Store: store, Models: reg, MaxConcurrentFits: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// TestFitJobQueuedStateVisible occupies the single fit slot and expects a
// submitted fit to report StatusQueued (never StatusRunning) until the slot
// frees, then run to completion.
func TestFitJobQueuedStateVisible(t *testing.T) {
	m := newBoundedFitManager(t)
	m.fitSem <- struct{}{} // occupy the only slot

	id, err := m.SubmitFit(FitSpec{Graph: fixtureGraph(t), Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The job must stay visibly queued while the slot is held.
	time.Sleep(20 * time.Millisecond)
	info, _, ok := m.Get(id)
	if !ok || info.Status != StatusQueued {
		t.Fatalf("job with no free fit slot is %v, want %v", info.Status, StatusQueued)
	}
	if !info.StartedAt.IsZero() {
		t.Errorf("queued job carries a start time %v", info.StartedAt)
	}

	<-m.fitSem // release the slot
	final := wait(t, m, id)
	if final.Status != StatusDone || final.Fit == nil || final.Fit.ModelID == "" {
		t.Fatalf("released fit ended %+v", final)
	}
}

// TestFitJobCancelWhileQueued cancels a fit that never got a slot: it must
// finish as cancelled without running the pipeline, and OnDone must report an
// empty model ID — the tenancy layer's cue to refund the pre-charged ε.
func TestFitJobCancelWhileQueued(t *testing.T) {
	m := newBoundedFitManager(t)
	m.fitSem <- struct{}{}
	defer func() { <-m.fitSem }()

	donec := make(chan string, 1)
	id, err := m.SubmitFit(FitSpec{
		Graph: fixtureGraph(t), Epsilon: 1, Seed: 3,
		OnDone: func(modelID string) { donec <- modelID },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(id) {
		t.Fatal("cancel of queued fit refused")
	}
	info := wait(t, m, id)
	if info.Status != StatusCancelled {
		t.Fatalf("cancelled queued fit ended %v", info.Status)
	}
	if info.Fit != nil || info.ModelID != "" {
		t.Errorf("cancelled queued fit carries a result: %+v", info)
	}
	if mid := recvModelID(t, donec); mid != "" {
		t.Errorf("OnDone model ID = %q for a fit that never ran, want empty", mid)
	}
}

// recvModelID receives the OnDone callback's value with a timeout (OnDone
// fires after the terminal record commits, which can trail Wait slightly).
func recvModelID(t *testing.T, donec <-chan string) string {
	t.Helper()
	select {
	case mid := <-donec:
		return mid
	case <-time.After(10 * time.Second):
		t.Fatal("OnDone never fired")
		return ""
	}
}

// TestFitJobCancelRunningPromptly cancels a fit mid-pipeline on a graph big
// enough that the pipeline is still in flight: the job must reach
// StatusCancelled promptly (the context aborts at the next stage boundary)
// and report an empty model ID.
func TestFitJobCancelRunningPromptly(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	store, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Engine: eng, Store: store, Models: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	// A denser graph keeps the measurement passes busy long enough to land
	// the cancel mid-pipeline (and if the fit wins the race anyway, the test
	// still verifies the produced==true contract below).
	rng := dp.NewRand(13)
	b := graph.NewBuilder(1500, 2)
	for i := 0; i < 60000; i++ {
		b.AddEdge(rng.Intn(1500), rng.Intn(1500))
	}
	g := b.Finalize()

	donec := make(chan string, 1)
	id, err := m.SubmitFit(FitSpec{
		Graph: g, Epsilon: 1, Seed: 3, Parallelism: 1,
		OnDone: func(modelID string) { donec <- modelID },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the running state, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, _, ok := m.Get(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if info.Status != StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	m.Cancel(id)

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !m.Wait(ctx, id) {
		t.Fatal("cancelled fit did not finish")
	}
	elapsed := time.Since(start)
	info, _, _ := m.Get(id)
	mid := recvModelID(t, donec)
	switch info.Status {
	case StatusCancelled:
		if mid != info.ModelID {
			t.Errorf("OnDone model ID = %q, cancelled record carries %q", mid, info.ModelID)
		}
	case StatusDone:
		// The fit won the race with the cancel; the charge must then stand.
		if mid == "" {
			t.Error("completed fit reported an empty model ID")
		}
	default:
		t.Fatalf("cancelled fit ended %v", info.Status)
	}
	// Prompt is relative to a full fit on this graph (multiple seconds): the
	// abort must land at a stage boundary, not after the whole pipeline.
	if info.Status == StatusCancelled && elapsed > 15*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestFitJobOnDoneProducedTrue pins the other half of the refund contract: a
// fit that completes and registers its model reports the model's ID (the
// tenancy layer's cue to let the ε charge stand and grant ownership).
func TestFitJobOnDoneProducedTrue(t *testing.T) {
	m, _ := newFitManager(t, "")
	donec := make(chan string, 1)
	id, err := m.SubmitFit(FitSpec{
		Graph: fixtureGraph(t), Epsilon: 1, Seed: 3,
		OnDone: func(modelID string) { donec <- modelID },
	})
	if err != nil {
		t.Fatal(err)
	}
	info := wait(t, m, id)
	if info.Status != StatusDone {
		t.Fatalf("fit ended %v", info.Status)
	}
	if mid := recvModelID(t, donec); mid == "" || mid != info.ModelID {
		t.Errorf("OnDone model ID = %q, want the registered %q", mid, info.ModelID)
	}
}

// TestMaxConcurrentFitsDefault pins the GOMAXPROCS-aware default: a zero
// option still yields at least two slots.
func TestMaxConcurrentFitsDefault(t *testing.T) {
	m, _ := newFitManager(t, "")
	if cap(m.fitSem) < 2 {
		t.Errorf("default fit slots = %d, want at least 2", cap(m.fitSem))
	}
}
