package jobs

// Fit jobs: the asynchronous counterpart of the service's synchronous fit.
// A fit job runs the full (optionally differentially private) fitting
// pipeline in the background — sharded onto the shared worker pool at the
// spec's parallelism — registers the fitted model in the model store, and
// concurrently pre-fits the model's acceptance table so the first sample of
// the new model pays no refinement cost. The job's terminal Info carries the
// fitted model's content-addressed ID.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"agmdp/internal/core"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/obs"
	"agmdp/internal/structural"
)

// FitSpec describes one asynchronous model fit.
type FitSpec struct {
	// Graph is the input graph to fit. Required. Graphs are immutable, so
	// the manager shares the caller's instance.
	Graph *graph.Graph
	// GraphID optionally records the graph store ID the input came from; it
	// is echoed in the job's Info for listings.
	GraphID string
	// Epsilon is the total privacy budget; 0 fits the exact (non-private)
	// baseline parameters.
	Epsilon float64
	// TruncationK is the edge-truncation parameter for Θ̃F; zero selects the
	// paper's heuristic k = n^{1/3}.
	TruncationK int
	// ModelKind names the structural model ("tricycle", "fcl", "tcl"); empty
	// selects TriCycLe.
	ModelKind string
	// Seed seeds the private fit's noise draws; fits with equal seeds and
	// inputs are bit-identical regardless of Parallelism.
	Seed int64
	// Parallelism is the worker count for the fit pipeline's measurement
	// passes (≤ 0 = auto, 1 = sequential). It affects wall-clock only, never
	// the fitted model.
	Parallelism int
	// WarmAcceptance additionally fits the model's acceptance table
	// (concurrently with registering the model) and caches it in the model
	// store, so the first default-shaped sample skips the refinement rounds.
	WarmAcceptance bool
	// OnDone, when non-nil, is invoked exactly once when the job reaches a
	// terminal status, with the registered model's content-addressed ID —
	// empty when the fit was cancelled or failed before any model landed in
	// the model store. The tenancy layer uses it to refund a pre-charged
	// privacy budget when a fit released nothing (empty ID) and to record
	// the submitting tenant as the model's owner otherwise; a fit cancelled
	// only after registration still reports its ID, because its model — and
	// therefore its privacy spend — is real.
	OnDone func(modelID string)
}

// SubmitFit accepts a fit job and starts it in the background, returning its
// ID. The manager must have been constructed with a ModelStore.
func (m *Manager) SubmitFit(spec FitSpec) (string, error) {
	if spec.Graph == nil {
		return "", errors.New("jobs: nil graph in fit spec")
	}
	if m.opts.Models == nil {
		return "", errors.New("jobs: fit job submitted but the manager has no model store")
	}
	if spec.Epsilon < 0 {
		return "", fmt.Errorf("jobs: negative epsilon %v (use 0 for a non-private baseline fit)", spec.Epsilon)
	}
	if _, err := structural.ByName(spec.ModelKind, 0); err != nil {
		return "", err
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		fit:    spec,
		stages: obs.NewStageTimer(),
		cancel: cancel,
		done:   make(chan struct{}),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	m.seq++
	m.persistSeqLocked()
	id := fmt.Sprintf("job-%06d", m.seq)
	j.info = Info{
		ID:        id,
		Kind:      KindFit,
		GraphID:   spec.GraphID,
		Status:    StatusQueued,
		Count:     1,
		CreatedAt: m.opts.Clock(),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	go m.runFit(ctx, j)
	return id, nil
}

// runFit executes one fit job end to end. The job stays in StatusQueued
// until it acquires one of the manager's bounded fit slots (so listings show
// exactly which fits are waiting); once running, the context is threaded
// through the whole fit pipeline, so cancellation — DELETE /v1/jobs/{id} or
// manager shutdown — aborts a mid-pipeline fit at the next stage boundary
// rather than burning workers to completion.
func (m *Manager) runFit(ctx context.Context, j *job) {
	defer m.wg.Done()
	defer j.cancel()

	j.mu.Lock()
	spec := j.fit
	j.mu.Unlock()

	// Acquire a fit slot; the job is visibly "queued" while it waits.
	// Cancellation while queued finishes the job without ever starting the
	// pipeline.
	select {
	case m.fitSem <- struct{}{}:
		defer func() { <-m.fitSem }()
	case <-ctx.Done():
		m.finishFit(j, ctx, nil, true, spec.OnDone)
		return
	}

	j.mu.Lock()
	j.info.Status = StatusRunning
	j.info.StartedAt = m.opts.Clock()
	j.mu.Unlock()

	result, failed := m.fitOnce(ctx, spec, j)
	m.finishFit(j, ctx, result, failed, spec.OnDone)
}

// finishFit moves a fit job to its terminal state and fires the OnDone
// callback (after the terminal record is committed, so a refund triggered by
// the callback can never race a restart that still shows the job running).
func (m *Manager) finishFit(j *job, ctx context.Context, result *FitResult, failed bool, onDone func(string)) {
	m.finish(j, func(info *Info) {
		switch {
		case ctx.Err() != nil:
			info.Status = StatusCancelled
			// Cancellation that lands after the model was already
			// registered must not orphan it: keep the result in the
			// cancelled record so the model ID stays discoverable.
			if result != nil && result.ModelID != "" {
				info.Fit = result
				info.ModelID = result.ModelID
			}
		case failed:
			info.Status = StatusFailed
			info.Failed = 1
			info.Fit = result
		default:
			info.Status = StatusDone
			info.Completed = 1
			info.Fit = result
			info.ModelID = result.ModelID
		}
	})
	if onDone != nil {
		var modelID string
		if result != nil {
			modelID = result.ModelID
		}
		onDone(modelID)
	}
}

// fitOnce runs the fit pipeline and registers the result, reporting the
// outcome and whether it failed. A cancelled context yields (nil, true) —
// the caller maps that to StatusCancelled — and never registers the model.
// Stage durations accumulate on j's timer: the core pipeline's stages via
// Config.Observe, plus "table_warm" and "store" measured here.
func (m *Manager) fitOnce(ctx context.Context, spec FitSpec, j *job) (*FitResult, bool) {
	if ctx.Err() != nil {
		return nil, true
	}
	model, err := structural.ByName(spec.ModelKind, spec.Parallelism)
	if err != nil {
		return &FitResult{Error: err.Error()}, true
	}

	// FitModel is the same entry point the synchronous handler uses, so the
	// async path cannot drift from it. The job context rides through the fit
	// pipeline: cancellation aborts at the next stage boundary (never
	// mid-noise-draw, so a fit that completes is bit-identical to an
	// uncancellable one).
	fitted, err := core.FitModel(ctx, dp.NewRand(spec.Seed), spec.Graph, core.Config{
		Epsilon:     spec.Epsilon,
		TruncationK: spec.TruncationK,
		Model:       model,
		Parallelism: spec.Parallelism,
		Observe: func(stage string, d time.Duration) {
			recordStage(j, KindFit, stage, d)
		},
	})
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil, true
	}
	if err != nil {
		return &FitResult{Error: err.Error()}, true
	}
	if ctx.Err() != nil {
		// Cancelled mid-fit: drop the result rather than registering a model
		// the client asked to abandon. (A cancellation that slips in during
		// registration below is handled by the caller, which keeps the
		// registered ID in the cancelled record.)
		return nil, true
	}

	// Concurrent acceptance-table fitting: the table is a pure function of
	// the model parameters, so it can be fitted while the model is being
	// serialized and persisted by the store, halving the tail latency of a
	// warmed fit. Table failures only lose the warm-up, never the fit.
	var table []float64
	tablec := make(chan struct{})
	if spec.WarmAcceptance {
		go func() {
			defer close(tablec)
			start := time.Now()
			table, _ = core.FitAcceptanceTable(fitted, core.SampleOptions{})
			recordStage(j, KindFit, "table_warm", time.Since(start))
		}()
	} else {
		close(tablec)
	}
	start := time.Now()
	id, err := m.opts.Models.Put(fitted)
	recordStage(j, KindFit, "store", time.Since(start))
	<-tablec
	if err != nil {
		return &FitResult{Error: fmt.Sprintf("storing fitted model: %v", err)}, true
	}
	if table != nil {
		m.opts.Models.SetAcceptance(id, table)
	}
	return &FitResult{
		ModelID:   id,
		ModelName: fitted.ModelName,
		Epsilon:   fitted.Epsilon,
	}, false
}
