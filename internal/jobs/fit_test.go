package jobs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"agmdp/internal/core"
	"agmdp/internal/dp"
	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/obs"
	"agmdp/internal/registry"
)

// fixtureGraph builds a small attributed input graph for fit jobs.
func fixtureGraph(t testing.TB) *graph.Graph {
	t.Helper()
	rng := dp.NewRand(7)
	b := graph.NewBuilder(80, 2)
	for i := 0; i < 300; i++ {
		b.AddEdge(rng.Intn(80), rng.Intn(80))
	}
	for i := 0; i < 80; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(4)))
	}
	return b.Finalize()
}

// newFitManager builds a manager wired to a registry (and optionally a
// persistence directory), torn down with the test.
func newFitManager(t *testing.T, dir string) (*Manager, *registry.Registry) {
	t.Helper()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1, Acceptance: reg})
	t.Cleanup(eng.Close)
	store, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Engine: eng, Store: store, Models: reg, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, reg
}

func TestFitJobRegistersModel(t *testing.T) {
	m, reg := newFitManager(t, "")
	g := fixtureGraph(t)
	id, err := m.SubmitFit(FitSpec{Graph: g, Epsilon: 1.0, Seed: 5, WarmAcceptance: true})
	if err != nil {
		t.Fatal(err)
	}
	info := wait(t, m, id)
	if info.Status != StatusDone || info.Kind != KindFit || info.Completed != 1 {
		t.Fatalf("fit job ended %+v", info)
	}
	if info.Fit == nil || info.Fit.ModelID == "" {
		t.Fatalf("fit job carries no model ID: %+v", info.Fit)
	}
	if info.ModelID != info.Fit.ModelID {
		t.Fatalf("Info.ModelID %q not mirrored from fit result %q", info.ModelID, info.Fit.ModelID)
	}
	if _, ok := reg.Model(info.Fit.ModelID); !ok {
		t.Fatalf("model %s not in the registry", info.Fit.ModelID)
	}
	if _, ok := reg.Acceptance(info.Fit.ModelID); !ok {
		t.Fatal("acceptance table was not warmed")
	}
}

// TestFitJobMatchesSynchronousFit pins the acceptance criterion: the async
// fit registers a model whose content address equals the synchronous fit at
// the same seed, at every parallelism.
func TestFitJobMatchesSynchronousFit(t *testing.T) {
	g := fixtureGraph(t)
	sync, err := core.FitDP(context.Background(), dp.NewRand(11), g, core.Config{Epsilon: 0.8, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := core.ModelID(sync)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 3} {
		m, _ := newFitManager(t, "")
		id, err := m.SubmitFit(FitSpec{Graph: g, Epsilon: 0.8, Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		info := wait(t, m, id)
		if info.Status != StatusDone {
			t.Fatalf("parallelism %d: fit job ended %v (%+v)", par, info.Status, info.Fit)
		}
		if info.Fit.ModelID != wantID {
			t.Errorf("parallelism %d: async fit registered %s, synchronous fit is %s", par, info.Fit.ModelID, wantID)
		}
	}
}

func TestFitJobValidation(t *testing.T) {
	m, _ := newFitManager(t, "")
	g := fixtureGraph(t)
	if _, err := m.SubmitFit(FitSpec{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := m.SubmitFit(FitSpec{Graph: g, Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := m.SubmitFit(FitSpec{Graph: g, ModelKind: "nope"}); err == nil {
		t.Error("unknown model kind accepted")
	}

	// A manager without a model store rejects fit jobs outright.
	eng := engine.New(engine.Config{Workers: 1})
	t.Cleanup(eng.Close)
	bare, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bare.Close)
	if _, err := bare.SubmitFit(FitSpec{Graph: g}); err == nil {
		t.Error("fit job accepted without a model store")
	}
}

func TestFitJobUnsupportedPrivateModelFails(t *testing.T) {
	m, _ := newFitManager(t, "")
	// TCL has no differentially private fitting procedure, so a private TCL
	// fit must fail the job (not the submission — the error surfaces in the
	// job result, like any other runtime failure).
	id, err := m.SubmitFit(FitSpec{Graph: fixtureGraph(t), Epsilon: 1.0, ModelKind: "tcl"})
	if err != nil {
		t.Fatal(err)
	}
	info := wait(t, m, id)
	if info.Status != StatusFailed || info.Failed != 1 {
		t.Fatalf("private TCL fit ended %+v", info)
	}
	if info.Fit == nil || info.Fit.Error == "" {
		t.Fatalf("failed fit carries no error: %+v", info.Fit)
	}
}

func TestFinishedJobsPersistAcrossManagers(t *testing.T) {
	dir := t.TempDir()
	g := fixtureGraph(t)

	m1, _ := newFitManager(t, dir)
	fitID, err := m1.SubmitFit(FitSpec{Graph: g, Epsilon: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	model := fixtureModel(t)
	sampleID, err := m1.Submit(Spec{Model: model, ModelID: "m1", Count: 3, Seed: 50, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	fitInfo := wait(t, m1, fitID)
	sampleInfo := wait(t, m1, sampleID)
	if len(fitInfo.Stages) == 0 {
		t.Fatalf("finished fit job has no stage timings: %+v", fitInfo)
	}
	if len(sampleInfo.Stages) == 0 {
		t.Fatalf("finished sample job has no stage timings: %+v", sampleInfo)
	}
	_, wantResults, _ := m1.Get(sampleID)
	m1.Close()

	// A fresh manager over the same directory resolves both jobs with
	// identical metadata, results and stage timings.
	m2, _ := newFitManager(t, dir)
	gotFit, _, ok := m2.Get(fitID)
	if !ok {
		t.Fatalf("fit job %s did not survive the restart", fitID)
	}
	if gotFit.Status != fitInfo.Status || gotFit.Kind != KindFit || gotFit.Fit == nil || gotFit.Fit.ModelID != fitInfo.Fit.ModelID {
		t.Fatalf("restored fit job %+v, want %+v", gotFit, fitInfo)
	}
	if !reflect.DeepEqual(gotFit.Stages, fitInfo.Stages) {
		t.Fatalf("fit stages changed across restart: %+v vs %+v", gotFit.Stages, fitInfo.Stages)
	}
	gotSample, gotResults, ok := m2.Get(sampleID)
	if !ok {
		t.Fatalf("sample job %s did not survive the restart", sampleID)
	}
	if gotSample.Completed != sampleInfo.Completed || gotSample.Status != sampleInfo.Status {
		t.Fatalf("restored sample job %+v, want %+v", gotSample, sampleInfo)
	}
	if !reflect.DeepEqual(gotSample.Stages, sampleInfo.Stages) {
		t.Fatalf("sample stages changed across restart: %+v vs %+v", gotSample.Stages, sampleInfo.Stages)
	}
	if len(gotResults) != len(wantResults) {
		t.Fatalf("restored %d results, want %d", len(gotResults), len(wantResults))
	}
	for i := range gotResults {
		if gotResults[i] != wantResults[i] {
			t.Fatalf("result %d changed across restart: %+v vs %+v", i, gotResults[i], wantResults[i])
		}
	}
	if len(m2.Warnings()) != 0 {
		t.Fatalf("unexpected load warnings: %v", m2.Warnings())
	}

	// New submissions continue past the restored sequence instead of
	// colliding with reloaded IDs.
	newID, err := m2.Submit(Spec{Model: model, ModelID: "m1", Count: 1, Seed: 9, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if newID == fitID || newID == sampleID {
		t.Fatalf("new job reused a restored ID %s", newID)
	}
	wait(t, m2, newID)
	m2.Close()
}

// TestCrashedJobIDNeverReissued simulates a hard crash: a job's ID was
// allocated but no terminal record was written (the process died mid-run).
// The sequence high-water mark persisted at submission must keep a fresh
// manager from handing the dead job's ID to a new submission — a polling
// client must get a 404-equivalent, never someone else's job.
func TestCrashedJobIDNeverReissued(t *testing.T) {
	dir := t.TempDir()
	m1, _ := newFitManager(t, dir)
	id1, err := m1.SubmitFit(FitSpec{Graph: fixtureGraph(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, m1, id1)
	// Simulate the crash: delete the terminal record but keep the seq file,
	// exactly the on-disk state a SIGKILL mid-run leaves behind.
	if err := os.Remove(filepath.Join(dir, id1+".json")); err != nil {
		t.Fatal(err)
	}

	m2, _ := newFitManager(t, dir)
	if _, _, ok := m2.Get(id1); ok {
		t.Fatalf("crashed job %s resurrected without a record", id1)
	}
	id2, err := m2.SubmitFit(FitSpec{Graph: fixtureGraph(t), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatalf("crashed job ID %s was reissued to a new submission", id1)
	}
	wait(t, m2, id2)
}

func TestCancelRemovesPersistedRecord(t *testing.T) {
	dir := t.TempDir()
	m, _ := newFitManager(t, dir)
	id, err := m.SubmitFit(FitSpec{Graph: fixtureGraph(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, m, id)
	path := filepath.Join(dir, id+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("finished job was not persisted: %v", err)
	}
	// Cancelling a finished job drops it — from memory and from disk.
	if !m.Cancel(id) {
		t.Fatal("cancel of finished job reported unknown")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("persisted record survived deletion: %v", err)
	}
}

func TestLoadSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	m1, _ := newFitManager(t, dir)
	id, err := m1.SubmitFit(FitSpec{Graph: fixtureGraph(t), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, m1, id)
	m1.Close()

	// One corrupt file and one mis-named record must not take the good job
	// out of service.
	if err := os.WriteFile(filepath.Join(dir, "job-009999.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	renamed := bytes.Clone(good)
	if err := os.WriteFile(filepath.Join(dir, "job-008888.json"), renamed, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, _ := newFitManager(t, dir)
	if _, _, ok := m2.Get(id); !ok {
		t.Fatalf("good job %s lost next to corrupt records", id)
	}
	warnings := m2.Warnings()
	if len(warnings) != 2 {
		t.Fatalf("want 2 load warnings, got %v", warnings)
	}
	for _, w := range warnings {
		if !strings.Contains(w, "job-009999") && !strings.Contains(w, "job-008888") {
			t.Fatalf("warning does not name the bad file: %q", w)
		}
	}
}

func TestRetentionTrimsPersistedRecords(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 1, Seed: 1})
	t.Cleanup(eng.Close)
	m, err := New(Options{Engine: eng, Models: reg, Dir: dir, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	g := fixtureGraph(t)
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := m.SubmitFit(FitSpec{Graph: g, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, m, id)
		ids = append(ids, id)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("retention left %d persisted records, want 2: %v", len(files), files)
	}
	// The survivors are the two newest.
	for _, id := range ids[2:] {
		if _, err := os.Stat(filepath.Join(dir, id+".json")); err != nil {
			t.Errorf("newest job %s missing from disk: %v", id, err)
		}
	}
}

// TestShutdownCancelsAndPersistsRunningJob simulates the mid-run kill: Close
// cancels the in-flight job, which reaches a terminal cancelled state and
// therefore persists, so a restarted manager still resolves the ID.
func TestShutdownCancelsAndPersistsRunningJob(t *testing.T) {
	dir := t.TempDir()
	m1, _ := newFitManager(t, dir)
	model := fixtureModel(t)
	// A long batch that cannot finish before Close cancels it.
	id, err := m1.Submit(Spec{Model: model, ModelID: "m1", Count: 500, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, _ := newFitManager(t, dir)
	info, _, ok := m2.Get(id)
	if !ok {
		t.Fatalf("job %s killed mid-run left no record", id)
	}
	if !info.Status.Finished() {
		t.Fatalf("restored job in non-terminal state %q", info.Status)
	}
	if info.Status == StatusDone && info.Completed != info.Count {
		t.Fatalf("done job with %d/%d samples", info.Completed, info.Count)
	}
}

// TestJobStageTimings pins the stage vocabulary of both job kinds: a warmed
// private fit reports the core pipeline's stages plus the manager's own
// table_warm and store spans, and a storing sample job reports
// generate/analyze/store. Stage durations are wall-clock and so not asserted
// beyond being non-negative.
func TestJobStageTimings(t *testing.T) {
	m, _ := newFitManager(t, "")
	g := fixtureGraph(t)

	fitID, err := m.SubmitFit(FitSpec{Graph: g, Epsilon: 1.0, Seed: 5, WarmAcceptance: true})
	if err != nil {
		t.Fatal(err)
	}
	fitInfo := wait(t, m, fitID)
	wantFit := []string{"attrs", "correlations", "degrees", "triangles", "store", "table_warm"}
	assertStages(t, "fit", fitInfo.Stages, wantFit)

	model := fixtureModel(t)
	sampleID, err := m.Submit(Spec{Model: model, ModelID: "m1", Count: 2, Seed: 40, Iterations: 1, Store: true})
	if err != nil {
		t.Fatal(err)
	}
	sampleInfo := wait(t, m, sampleID)
	assertStages(t, "sample", sampleInfo.Stages, []string{"generate", "store", "analyze"})
}

// assertStages checks that the recorded stages carry exactly the expected
// names (in any order — fan-out makes inter-stage order scheduling-dependent)
// with non-negative durations.
func assertStages(t *testing.T, kind string, stages []obs.Stage, want []string) {
	t.Helper()
	got := make(map[string]float64, len(stages))
	for _, s := range stages {
		if s.Seconds < 0 {
			t.Errorf("%s stage %s has negative duration %v", kind, s.Name, s.Seconds)
		}
		if _, dup := got[s.Name]; dup {
			t.Errorf("%s stage %s recorded twice (repeats must accumulate)", kind, s.Name)
		}
		got[s.Name] = s.Seconds
	}
	if len(got) != len(want) {
		t.Fatalf("%s job stages = %+v, want names %v", kind, stages, want)
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("%s job missing stage %q (got %+v)", kind, name, stages)
		}
	}
}
