// Package tenant adds the "who" dimension to the AGM-DP synthesis service:
// API-key identity, a persistent per-(tenant, source-graph) privacy-budget
// ledger, and per-tenant admission control (token-bucket rate limits).
//
// The paper's post-processing property shapes the whole design. Fitting a
// model under ε-differential privacy spends ε of a tenant's budget against
// the sensitive input graph — once spent, that information is released and
// can never be clawed back, so charges are admitted pessimistically (charged
// and synced to disk before the fit runs) and refunded only when a fit was
// cancelled or failed before producing any model. Sampling a fitted model,
// by contrast, is free: it post-processes already-released parameters, so
// the ledger never sees a sample request. Admission control (rate limits,
// fit-concurrency bounds in the jobs layer) is what bounds *server* resources
// per tenant; the ledger is what bounds *privacy* loss per graph.
//
// Tenants are declared in a JSON config file (see File) mapping API keys to
// tenant IDs with optional per-tenant budget and rate overrides; the ledger
// persists as append-only JSONL under the tenant directory and is replayed
// on startup, so a restarted service remembers every ε ever spent.
package tenant

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"agmdp/internal/obs"
)

// Per-tenant observability on the process-wide registry: the spent-ε gauge is
// the ledger made scrapeable (fractional values — the obs gauges are
// float-valued), and the admission-reject counter is shared with the serving
// layer's middleware via RejectReason labels.
var budgetSpentGauge = obs.Default().GaugeVec("agmdp_tenant_budget_spent",
	"Privacy budget ε spent on DP fits, by tenant and source graph.",
	"tenant", "graph")

// Default admission parameters, applied when neither the tenant nor the
// config file's defaults override them.
const (
	// DefaultBudget is the per-(tenant, graph) ε cap.
	DefaultBudget = 10.0
	// DefaultRatePerSec is the steady-state request rate per tenant.
	DefaultRatePerSec = 50.0
	// DefaultBurst is the token-bucket depth per tenant.
	DefaultBurst = 100.0
)

// Tenant declares one tenant of the service.
type Tenant struct {
	// ID is the stable tenant identifier — ledger entries, metrics labels
	// and log lines all use it. Required, unique.
	ID string `json:"id"`
	// Key is the API key presented in requests (X-API-Key or Authorization:
	// Bearer). Required, unique. Keys are credentials: the registry never
	// logs them and exposes only IDs.
	Key string `json:"key"`
	// Budget is the ε cap per (tenant, source graph); ≤ 0 inherits the
	// file's default_budget (itself defaulting to DefaultBudget).
	Budget float64 `json:"budget,omitempty"`
	// RatePerSec and Burst shape the tenant's token bucket; ≤ 0 inherits
	// the file defaults.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      float64 `json:"burst,omitempty"`
}

// File is the tenants config file schema: file-level defaults plus the
// tenant list.
type File struct {
	// DefaultBudget is the per-(tenant, graph) ε cap for tenants that do not
	// override it; ≤ 0 selects DefaultBudget.
	DefaultBudget float64 `json:"default_budget,omitempty"`
	// DefaultRatePerSec / DefaultBurst shape the default token bucket.
	DefaultRatePerSec float64 `json:"default_rate_per_sec,omitempty"`
	DefaultBurst      float64 `json:"default_burst,omitempty"`
	// OperatorToken, when set, unlocks the operator surfaces (/metrics,
	// /v1/stats, /debug/pprof/) on a tenant-enabled server. Those endpoints
	// expose per-tenant labels (budget spends keyed by tenant and graph
	// content address), so tenant keys do not open them — only this token
	// does, and without one they fail closed. Like keys, the token is a
	// credential and is never logged.
	OperatorToken string `json:"operator_token,omitempty"`
	// Tenants is the tenant list. At least one entry is required — an empty
	// tenant file would lock every caller out.
	Tenants []Tenant `json:"tenants"`
}

// Options configures Open.
type Options struct {
	// Path is the tenants config JSON file. Required.
	Path string
	// Dir persists the ε-ledger (append-only JSONL); empty keeps the ledger
	// in memory — spends then die with the process, acceptable only for
	// tests and experiments.
	Dir string
	// Clock overrides the time source for rate limiting and ledger
	// timestamps (tests).
	Clock func() time.Time
}

// Registry resolves API keys to tenants and enforces their budgets and rate
// limits. Safe for concurrent use.
//
// Keys are looked up by SHA-256 digest, never by the raw string: map lookup
// over raw credentials is a (weak) timing side channel for key guessing,
// while digest lookup makes the comparison time independent of how much of
// the key the caller got right.
type Registry struct {
	byKey    map[[sha256.Size]byte]*Tenant
	byID     map[string]*Tenant
	limits   map[string]*bucket
	defaults File
	opToken  []byte // SHA-256 of OperatorToken; nil when unset
	ledger   *Ledger
	owners   *Owners
	clock    func() time.Time
}

// Open loads the tenants file and the ε-ledger. Config errors (missing file,
// duplicate keys or IDs, empty tenant list) fail the open — a service that
// cannot tell its tenants apart must not start. Ledger corruption does not:
// bad lines are skipped and reported via Warnings.
func Open(opts Options) (*Registry, error) {
	if opts.Path == "" {
		return nil, errors.New("tenant: no tenants file configured")
	}
	data, err := os.ReadFile(opts.Path)
	if err != nil {
		return nil, fmt.Errorf("tenant: reading tenants file: %w", err)
	}
	var file File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("tenant: parsing %s: %w", opts.Path, err)
	}
	return New(file, opts)
}

// New builds a registry from an in-memory config (the testable core of
// Open).
func New(file File, opts Options) (*Registry, error) {
	if len(file.Tenants) == 0 {
		return nil, errors.New("tenant: tenants file declares no tenants")
	}
	if file.DefaultBudget <= 0 {
		file.DefaultBudget = DefaultBudget
	}
	if file.DefaultRatePerSec <= 0 {
		file.DefaultRatePerSec = DefaultRatePerSec
	}
	if file.DefaultBurst <= 0 {
		file.DefaultBurst = DefaultBurst
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	r := &Registry{
		byKey:    make(map[[sha256.Size]byte]*Tenant, len(file.Tenants)),
		byID:     make(map[string]*Tenant, len(file.Tenants)),
		limits:   make(map[string]*bucket, len(file.Tenants)),
		defaults: file,
		clock:    clock,
	}
	if file.OperatorToken != "" {
		digest := sha256.Sum256([]byte(file.OperatorToken))
		r.opToken = digest[:]
	}
	for i := range file.Tenants {
		t := &file.Tenants[i]
		if t.ID == "" || t.Key == "" {
			return nil, fmt.Errorf("tenant: entry %d missing id or key", i)
		}
		if _, dup := r.byID[t.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant id %q", t.ID)
		}
		digest := sha256.Sum256([]byte(t.Key))
		if _, dup := r.byKey[digest]; dup {
			return nil, fmt.Errorf("tenant: duplicate API key (tenant %q)", t.ID)
		}
		r.byID[t.ID] = t
		r.byKey[digest] = t
		rate, burst := t.RatePerSec, t.Burst
		if rate <= 0 {
			rate = file.DefaultRatePerSec
		}
		if burst <= 0 {
			burst = file.DefaultBurst
		}
		r.limits[t.ID] = newBucket(rate, burst, clock())
	}
	ledger, err := OpenLedger(opts.Dir)
	if err != nil {
		return nil, err
	}
	ledger.clock = clock
	r.ledger = ledger
	owners, err := OpenOwners(opts.Dir)
	if err != nil {
		ledger.Close()
		return nil, err
	}
	owners.clock = clock
	r.owners = owners
	return r, nil
}

// Resolve maps an API key to its tenant; ok is false for unknown keys. The
// lookup hashes the presented key first, so its timing does not depend on
// how closely the guess matches any real key.
func (r *Registry) Resolve(key string) (*Tenant, bool) {
	if key == "" {
		return nil, false
	}
	t, ok := r.byKey[sha256.Sum256([]byte(key))]
	return t, ok
}

// Operator reports whether token is the configured operator token
// (constant-time over digests). It is false for every token — including
// valid tenant keys — when no operator token is configured: the operator
// surfaces fail closed.
func (r *Registry) Operator(token string) bool {
	if r.opToken == nil || token == "" {
		return false
	}
	digest := sha256.Sum256([]byte(token))
	return subtle.ConstantTimeCompare(digest[:], r.opToken) == 1
}

// Lookup maps a tenant ID to its tenant (refund paths hold IDs, not keys).
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	t, ok := r.byID[id]
	return t, ok
}

// Budget resolves a tenant's effective per-graph ε cap.
func (r *Registry) Budget(t *Tenant) float64 {
	if t.Budget > 0 {
		return t.Budget
	}
	return r.defaults.DefaultBudget
}

// Allow consumes one token from the tenant's rate bucket, reporting whether
// the request may proceed. Unknown IDs are refused.
func (r *Registry) Allow(tenantID string) bool {
	b, ok := r.limits[tenantID]
	if !ok {
		return false
	}
	return b.allow(r.clock())
}

// Charge atomically spends eps of the tenant's budget for graphID (charged
// and persisted before the fit may run). The remaining budget after (on
// success) or at refusal (with a *BudgetError) is returned either way.
func (r *Registry) Charge(t *Tenant, graphID string, eps float64) (remaining float64, err error) {
	return r.ledger.Charge(t.ID, graphID, eps, r.Budget(t))
}

// Refund returns eps to the tenant's account for graphID. Only for fits that
// never produced a model; see Ledger.Refund.
func (r *Registry) Refund(tenantID, graphID string, eps float64) error {
	return r.ledger.Refund(tenantID, graphID, eps)
}

// Spent reports the ε charged so far against (tenant, graph).
func (r *Registry) Spent(tenantID, graphID string) float64 {
	return r.ledger.Spent(tenantID, graphID)
}

// Grant records that the tenant holds a handle on resource (kind, id); see
// Owners.Grant. The serving layer calls it whenever a tenant creates a
// graph, model or job.
func (r *Registry) Grant(kind, id, tenantID string) error {
	return r.owners.Grant(kind, id, tenantID)
}

// RevokeOwner drops the tenant's handle on resource (kind, id), reporting
// whether it was the last handle; see Owners.Revoke.
func (r *Registry) RevokeOwner(kind, id, tenantID string) (last bool, err error) {
	return r.owners.Revoke(kind, id, tenantID)
}

// Owns reports whether the tenant holds a handle on resource (kind, id).
func (r *Registry) Owns(kind, id, tenantID string) bool {
	return r.owners.Owns(kind, id, tenantID)
}

// Warnings reports ledger and ownership-log lines skipped on load (see
// Ledger.Warnings, Owners.Warnings).
func (r *Registry) Warnings() []string {
	return append(r.ledger.Warnings(), r.owners.Warnings()...)
}

// Close releases the ledger's and ownership log's append handles.
func (r *Registry) Close() error {
	err := r.ledger.Close()
	if oerr := r.owners.Close(); err == nil {
		err = oerr
	}
	return err
}
