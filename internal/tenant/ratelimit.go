package tenant

// Per-tenant token-bucket rate limiting. One bucket per tenant, refilled
// continuously at the tenant's configured rate up to its burst depth; each
// admitted request consumes one token. The bucket is deliberately tiny —
// admission control sits on every request, so the fast path is one mutex,
// one clock delta and two float operations.

import (
	"sync"
	"time"
)

// bucket is a standard continuous-refill token bucket.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// newBucket builds a full bucket (a fresh tenant gets its whole burst).
func newBucket(rate, burst float64, now time.Time) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// allow consumes one token if available, refilling for the time elapsed
// since the last call first. A clock that jumps backwards (NTP step) skips
// the refill for that call and leaves the watermark where it was — rewinding
// it would re-credit wall time that was already credited, letting a tenant
// burst past its configured rate.
func (b *bucket) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
