package tenant

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChargeConcurrentNeverOverCommits races many goroutines against one
// budget: exactly the charges that fit are admitted — never one more — and
// the final spent total equals the budget.
func TestChargeConcurrentNeverOverCommits(t *testing.T) {
	l, err := OpenLedger("")
	if err != nil {
		t.Fatal(err)
	}
	const (
		budget  = 10.0
		eps     = 1.0
		callers = 100
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int
		refused  int
	)
	for range callers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := l.Charge("t1", "g1", eps, budget)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				admitted++
			} else {
				var be *BudgetError
				if !asBudgetError(err, &be) {
					t.Errorf("unexpected charge error: %v", err)
				}
				refused++
			}
		}()
	}
	wg.Wait()
	if admitted != 10 || refused != callers-10 {
		t.Errorf("admitted %d, refused %d; want exactly 10 admitted", admitted, refused)
	}
	if got := l.Spent("t1", "g1"); got != budget {
		t.Errorf("spent %v, want %v", got, budget)
	}
	// One more charge must carry the arithmetic in its BudgetError.
	remaining, err := l.Charge("t1", "g1", eps, budget)
	var be *BudgetError
	if !asBudgetError(err, &be) {
		t.Fatalf("expected *BudgetError, got %v", err)
	}
	if remaining != 0 || be.Remaining != 0 || be.Budget != budget || be.Requested != eps {
		t.Errorf("BudgetError = %+v (remaining %v), want remaining 0 of %v", be, remaining, budget)
	}
}

// asBudgetError is errors.As without the import noise in assertions.
func asBudgetError(err error, target **BudgetError) bool {
	be, ok := err.(*BudgetError)
	if ok {
		*target = be
	}
	return ok
}

// TestLedgerRestartRoundTrip persists charges and a refund, reopens the
// ledger from disk, and expects the same totals — a restarted service
// remembers every ε ever spent.
func TestLedgerRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustCharge := func(tenant, graph string, eps float64) {
		t.Helper()
		if _, err := l.Charge(tenant, graph, eps, 100); err != nil {
			t.Fatal(err)
		}
	}
	mustCharge("t1", "g1", 0.5)
	mustCharge("t1", "g1", 1.5)
	mustCharge("t1", "g2", 3.0)
	mustCharge("t2", "g1", 0.25)
	if err := l.Refund("t1", "g1", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if w := re.Warnings(); len(w) != 0 {
		t.Errorf("unexpected warnings on clean reload: %v", w)
	}
	for _, tc := range []struct {
		tenant, graph string
		want          float64
	}{
		{"t1", "g1", 0.5},
		{"t1", "g2", 3.0},
		{"t2", "g1", 0.25},
		{"t2", "g2", 0},
	} {
		if got := re.Spent(tc.tenant, tc.graph); got != tc.want {
			t.Errorf("Spent(%s, %s) = %v after reload, want %v", tc.tenant, tc.graph, got, tc.want)
		}
	}
}

// TestLedgerClosedRefusesCharges pins the durability contract: a persistent
// ledger whose append handle is closed refuses admission rather than
// recording spends only in memory.
func TestLedgerClosedRefusesCharges(t *testing.T) {
	l, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Charge("t1", "g1", 1, 100); err == nil {
		t.Fatal("charge after Close succeeded; want durable-record failure")
	}
}

// TestLedgerCorruptLinesSkipped loads a ledger with garbage, a torn final
// line and an incomplete entry mixed between good lines: the good totals
// survive, each bad line produces a warning, and a stray refund can never
// push a total negative.
func TestLedgerCorruptLinesSkipped(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"tenant":"t1","graph":"g1","epsilon":1.5,"at":"2026-01-02T03:04:05Z"}`,
		`not json at all`,
		`{"tenant":"","graph":"g1","epsilon":4}`,                                 // incomplete: no tenant
		`{"tenant":"t2","graph":"g1","epsilon":-9}`,                              // refund exceeding spends: clamps to 0
		`{"tenant":"t1","graph":"g1","epsilon":0.5,"at":"2026-01-02T03:04:06Z"}`, // good
		`{"tenant":"t1","graph":"g1","eps`,                                       // torn mid-append
	}
	path := filepath.Join(dir, ledgerFile)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Spent("t1", "g1"); got != 2.0 {
		t.Errorf("Spent(t1, g1) = %v, want 2.0 from the two good lines", got)
	}
	if got := l.Spent("t2", "g1"); got != 0 {
		t.Errorf("Spent(t2, g1) = %v, want 0 (refund clamped)", got)
	}
	w := l.Warnings()
	if len(w) != 3 {
		t.Fatalf("got %d warnings %v, want 3 (garbage, incomplete, torn)", len(w), w)
	}
	for _, warning := range w {
		if !strings.Contains(warning, ledgerFile) {
			t.Errorf("warning %q does not name the ledger file", warning)
		}
	}
	// The reopened ledger still admits charges on top of the replayed state.
	if _, err := l.Charge("t1", "g1", 1, 100); err != nil {
		t.Fatalf("charge after corrupt-skip reload: %v", err)
	}
	if got := l.Spent("t1", "g1"); got != 3.0 {
		t.Errorf("Spent after charge = %v, want 3.0", got)
	}
}

// TestRefundClampsAtZero: refunding more than was spent leaves zero, never a
// negative balance that would mint budget.
func TestRefundClampsAtZero(t *testing.T) {
	l, err := OpenLedger("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Charge("t1", "g1", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund("t1", "g1", 5); err != nil {
		t.Fatal(err)
	}
	if got := l.Spent("t1", "g1"); got != 0 {
		t.Errorf("spent %v after over-refund, want 0", got)
	}
	if err := l.Refund("t1", "g1", 0); err == nil {
		t.Error("zero refund accepted; want error")
	}
	if _, err := l.Charge("t1", "g1", -1, 10); err == nil {
		t.Error("negative charge accepted; want error")
	}
}

// TestChargeToleratesRounding: charges that nominally sum to the budget
// admit despite float rounding (ten 0.1-charges against budget 1.0).
func TestChargeToleratesRounding(t *testing.T) {
	l, err := OpenLedger("")
	if err != nil {
		t.Fatal(err)
	}
	for i := range 10 {
		if _, err := l.Charge("t1", "g1", 0.1, 1.0); err != nil {
			t.Fatalf("charge %d refused: %v", i+1, err)
		}
	}
	if _, err := l.Charge("t1", "g1", 0.1, 1.0); err == nil {
		t.Error("11th 0.1-charge admitted over budget 1.0")
	}
}

// BenchmarkLedgerSpendMemory measures the in-memory charge path — the
// admission-control hot path when no tenant directory is configured.
func BenchmarkLedgerSpendMemory(b *testing.B) {
	l, err := OpenLedger("")
	if err != nil {
		b.Fatal(err)
	}
	benchmarkLedgerSpend(b, l)
}

// BenchmarkLedgerSpendPersisted measures the durable charge path: one JSONL
// append plus fsync per admitted fit. The fsync dominates — this is the price
// of never losing a spend to a crash.
func BenchmarkLedgerSpendPersisted(b *testing.B) {
	l, err := OpenLedger(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	benchmarkLedgerSpend(b, l)
}

func benchmarkLedgerSpend(b *testing.B, l *Ledger) {
	clock := time.Unix(0, 0)
	l.clock = func() time.Time { return clock }
	b.ReportAllocs()
	b.ResetTimer()
	for i := range b.N {
		// A fresh graph account each charge keeps every admission under
		// budget, so the benchmark never measures the refusal path.
		if _, err := l.Charge("bench", fmt.Sprintf("g%d", i), 0.5, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}
