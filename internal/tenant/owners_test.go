package tenant

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOwnersGrantRevokeLastHandle(t *testing.T) {
	o, err := OpenOwners("")
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	if o.Owns(ResourceGraph, "g1", "alpha") {
		t.Fatal("fresh store owns something")
	}
	if err := o.Grant(ResourceGraph, "g1", "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := o.Grant(ResourceGraph, "g1", "beta"); err != nil {
		t.Fatal(err)
	}
	// Re-granting a held handle is a no-op, not a double handle.
	if err := o.Grant(ResourceGraph, "g1", "alpha"); err != nil {
		t.Fatal(err)
	}
	if !o.Owns(ResourceGraph, "g1", "alpha") || !o.Owns(ResourceGraph, "g1", "beta") {
		t.Fatal("granted handles not visible")
	}
	// Kinds are independent namespaces: a graph grant is not a model grant.
	if o.Owns(ResourceModel, "g1", "alpha") {
		t.Error("graph grant leaked into the model namespace")
	}

	// Dropping the first handle is not the last; dropping the second is.
	last, err := o.Revoke(ResourceGraph, "g1", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if last {
		t.Error("revoke with another handle outstanding reported last=true")
	}
	if o.Owns(ResourceGraph, "g1", "alpha") {
		t.Error("revoked handle still visible")
	}
	// Revoking a handle the tenant does not hold is a no-op.
	if last, err := o.Revoke(ResourceGraph, "g1", "alpha"); err != nil || last {
		t.Errorf("double revoke = (%v, %v), want (false, nil)", last, err)
	}
	last, err = o.Revoke(ResourceGraph, "g1", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if !last {
		t.Error("revoking the final handle reported last=false")
	}
}

func TestOwnersRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o, err := OpenOwners(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Grant(ResourceModel, "m1", "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := o.Grant(ResourceModel, "m1", "beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Revoke(ResourceModel, "m1", "beta"); err != nil {
		t.Fatal(err)
	}
	if err := o.Grant(ResourceJob, "j1", "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenOwners(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if ws := re.Warnings(); len(ws) != 0 {
		t.Fatalf("clean log replayed with warnings: %v", ws)
	}
	if !re.Owns(ResourceModel, "m1", "alpha") {
		t.Error("alpha's model handle lost across restart")
	}
	if re.Owns(ResourceModel, "m1", "beta") {
		t.Error("beta's revoked handle resurrected by restart")
	}
	if !re.Owns(ResourceJob, "j1", "alpha") {
		t.Error("job handle lost across restart")
	}
	// The replayed state keeps evolving: alpha's surviving handle is now the
	// last one.
	if last, err := re.Revoke(ResourceModel, "m1", "alpha"); err != nil || !last {
		t.Errorf("post-restart revoke of sole handle = (%v, %v), want (true, nil)", last, err)
	}
}

func TestOwnersCorruptLinesSkipped(t *testing.T) {
	dir := t.TempDir()
	o, err := OpenOwners(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Grant(ResourceGraph, "g1", "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a torn final line; an operator mishap can
	// leave structurally valid JSON missing required fields. Both must be
	// skipped with a warning, keeping every intact grant.
	path := filepath.Join(dir, ownersFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"kind\":\"graph\",\"id\":\"g2\"}\n{\"kind\":\"graph\",\"id\":\"g3\",\"ten"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenOwners(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if ws := re.Warnings(); len(ws) != 2 {
		t.Fatalf("warnings = %v, want 2 (field-less entry + torn line)", ws)
	}
	if !re.Owns(ResourceGraph, "g1", "alpha") {
		t.Error("intact grant lost while skipping corrupt lines")
	}
}

func TestOwnersClosedRefusesGrants(t *testing.T) {
	o, err := OpenOwners(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Grant(ResourceGraph, "g1", "alpha"); err == nil {
		t.Error("grant after Close on a persistent store succeeded")
	}
	if _, err := o.Revoke(ResourceGraph, "g1", "alpha"); err != nil {
		t.Errorf("revoke of an unheld handle after Close = %v, want nil no-op", err)
	}
}

// TestBucketBackwardsClock pins the rate limiter's monotonic watermark: a
// clock that steps backwards (NTP correction) must not re-credit wall time
// that was already credited, or a tenant could mint tokens by the size of
// the step.
func TestBucketBackwardsClock(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBucket(1, 10, t0)
	for i := 0; i < 10; i++ {
		if !b.allow(t0) {
			t.Fatalf("burst request %d refused", i)
		}
	}
	if b.allow(t0) {
		t.Fatal("drained bucket admitted a request")
	}
	// The clock steps back 100s. A limiter that rewound its watermark would
	// refill nothing now but re-credit those 100 seconds at the next forward
	// reading — the request after next would mint ~101 tokens.
	if b.allow(t0.Add(-100 * time.Second)) {
		t.Fatal("drained bucket admitted a request on a backwards clock step")
	}
	// One second of real progress refills exactly one token: the first call
	// is admitted, the second refused. Under the rewound-watermark bug the
	// second call would be admitted too.
	t1 := t0.Add(1 * time.Second)
	if !b.allow(t1) {
		t.Fatal("one elapsed second refilled no token")
	}
	if b.allow(t1) {
		t.Fatal("one elapsed second refilled more than one token (backwards step re-credited wall time)")
	}
}
