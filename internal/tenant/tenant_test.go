package tenant

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func twoTenants() File {
	return File{Tenants: []Tenant{
		{ID: "alpha", Key: "alpha-key"},
		{ID: "beta", Key: "beta-key", Budget: 2.5, RatePerSec: 1, Burst: 2},
	}}
}

func TestNewValidatesConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		file File
		want string
	}{
		{"empty", File{}, "no tenants"},
		{"missing id", File{Tenants: []Tenant{{Key: "k"}}}, "missing id or key"},
		{"missing key", File{Tenants: []Tenant{{ID: "a"}}}, "missing id or key"},
		{"dup id", File{Tenants: []Tenant{{ID: "a", Key: "k1"}, {ID: "a", Key: "k2"}}}, "duplicate tenant id"},
		{"dup key", File{Tenants: []Tenant{{ID: "a", Key: "k"}, {ID: "b", Key: "k"}}}, "duplicate API key"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.file, Options{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestOpenReadsTenantsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	data, err := json.Marshal(twoTenants())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if tn, ok := r.Resolve("beta-key"); !ok || tn.ID != "beta" {
		t.Errorf("Resolve(beta-key) = %v, %v", tn, ok)
	}
	if _, ok := r.Resolve("wrong-key"); ok {
		t.Error("unknown key resolved")
	}
	if _, ok := r.Resolve(""); ok {
		t.Error("empty key resolved")
	}

	// Unknown fields in the config are config mistakes, not extensions.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tenants":[{"id":"a","key":"k","buget":3}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: bad}); err == nil {
		t.Error("config with unknown field accepted")
	}
}

func TestBudgetDefaultsAndOverrides(t *testing.T) {
	r, err := New(twoTenants(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	alpha, _ := r.Lookup("alpha")
	beta, _ := r.Lookup("beta")
	if got := r.Budget(alpha); got != DefaultBudget {
		t.Errorf("alpha budget %v, want default %v", got, DefaultBudget)
	}
	if got := r.Budget(beta); got != 2.5 {
		t.Errorf("beta budget %v, want override 2.5", got)
	}
}

// TestAllowRateLimits drives beta's 1 rps / burst-2 bucket with a fake
// clock: the burst admits two, the third refuses, and one second of refill
// admits exactly one more.
func TestAllowRateLimits(t *testing.T) {
	now := time.Unix(1000, 0)
	r, err := New(twoTenants(), Options{Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := range 2 {
		if !r.Allow("beta") {
			t.Fatalf("burst request %d refused", i+1)
		}
	}
	if r.Allow("beta") {
		t.Fatal("request over burst admitted")
	}
	now = now.Add(time.Second)
	if !r.Allow("beta") {
		t.Fatal("request after 1s refill refused")
	}
	if r.Allow("beta") {
		t.Fatal("second request after 1s refill admitted (rate is 1 rps)")
	}
	// Unknown tenants are refused outright; alpha's default bucket is
	// independent of beta's.
	if r.Allow("nobody") {
		t.Error("unknown tenant admitted")
	}
	if !r.Allow("alpha") {
		t.Error("alpha refused despite a full default bucket")
	}
}

// TestRegistryChargePersistsAcrossRestart is the registry-level round trip:
// spends recorded through one registry bind the next one opened over the
// same ledger directory.
func TestRegistryChargePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	file := twoTenants()
	r, err := New(file, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	beta, _ := r.Lookup("beta")
	remaining, err := r.Charge(beta, "graph-1", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0.5 {
		t.Errorf("remaining %v, want 0.5", remaining)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := New(file, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Spent("beta", "graph-1"); got != 2.0 {
		t.Errorf("spent after restart %v, want 2.0", got)
	}
	beta2, _ := r2.Lookup("beta")
	if _, err := r2.Charge(beta2, "graph-1", 1.0); err == nil {
		t.Error("charge over restarted budget admitted")
	}
}
