package tenant

// Resource ownership: which tenant may see which graph, model or job. The
// stores underneath the service are content-addressed and shared — two
// tenants uploading the same graph get the same ID — so ownership is a set
// of tenants per resource, not a single owner: each tenant holds its own
// handle on the shared bytes, a revoke drops only that handle, and the
// serving layer evicts the underlying resource only when the last handle is
// gone.
//
// Like the ε-ledger, ownership persists as append-only JSONL
// (Dir/owners.jsonl): grants and revokes each append one synced line, and
// the file is replayed on startup so a restarted service still knows who may
// touch what. Unparseable lines are skipped and reported via Warnings —
// a lost grant fails closed (the tenant loses access), never open.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ownersFile is the append-only grant/revoke log inside the tenant directory.
const ownersFile = "owners.jsonl"

// Resource kinds for ownership records. The serving layer scopes exactly the
// three resource collections it exposes.
const (
	ResourceGraph = "graph"
	ResourceModel = "model"
	ResourceJob   = "job"
)

// ownerEntry is one JSONL line of the ownership log.
type ownerEntry struct {
	Kind   string    `json:"kind"`
	ID     string    `json:"id"`
	Tenant string    `json:"tenant"`
	Revoke bool      `json:"revoke,omitempty"`
	At     time.Time `json:"at"`
}

// resourceKey identifies one resource across kinds.
type resourceKey struct{ kind, id string }

// Owners tracks which tenants hold a handle on which resources, optionally
// persisted as append-only JSONL. Safe for concurrent use.
type Owners struct {
	mu         sync.Mutex
	f          *os.File // nil when in-memory or closed
	persistent bool
	owners     map[resourceKey]map[string]bool
	warnings   []string
	clock      func() time.Time
}

// OpenOwners opens (or creates) the ownership log under dir; an empty dir
// keeps ownership in memory only. Existing entries are replayed; unparseable
// lines are skipped and reported via Warnings.
func OpenOwners(dir string) (*Owners, error) {
	o := &Owners{owners: make(map[resourceKey]map[string]bool), clock: time.Now}
	if dir == "" {
		return o, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: creating owners directory: %w", err)
	}
	path := filepath.Join(dir, ownersFile)
	if data, err := os.ReadFile(path); err == nil {
		o.replay(path, data)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("tenant: reading owners log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tenant: opening owners log for append: %w", err)
	}
	o.f = f
	o.persistent = true
	return o, nil
}

// replay accumulates the persisted grant/revoke entries. A torn final line
// (crash mid-append) or any other unparseable line is skipped with a warning.
func (o *Owners) replay(path string, data []byte) {
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e ownerEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			o.warnings = append(o.warnings, fmt.Sprintf("%s:%d: %v", path, i+1, err))
			continue
		}
		if e.Kind == "" || e.ID == "" || e.Tenant == "" {
			o.warnings = append(o.warnings, fmt.Sprintf("%s:%d: entry missing kind, id or tenant", path, i+1))
			continue
		}
		o.applyLocked(e)
	}
}

// applyLocked folds one entry into the in-memory sets. Callers hold o.mu (or
// run before the store is shared).
func (o *Owners) applyLocked(e ownerEntry) {
	k := resourceKey{e.Kind, e.ID}
	set := o.owners[k]
	if e.Revoke {
		delete(set, e.Tenant)
		if len(set) == 0 {
			delete(o.owners, k)
		}
		return
	}
	if set == nil {
		set = make(map[string]bool, 1)
		o.owners[k] = set
	}
	set[e.Tenant] = true
}

// Warnings reports ownership-log lines skipped on load.
func (o *Owners) Warnings() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.warnings...)
}

// Grant records that tenantID holds a handle on (kind, id), persisted before
// success. Granting an already-held handle is a no-op.
func (o *Owners) Grant(kind, id, tenantID string) error {
	if kind == "" || id == "" || tenantID == "" {
		return fmt.Errorf("tenant: grant with empty kind, id or tenant")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	k := resourceKey{kind, id}
	if o.owners[k][tenantID] {
		return nil
	}
	e := ownerEntry{Kind: kind, ID: id, Tenant: tenantID, At: o.clock()}
	if err := o.append(e); err != nil {
		return fmt.Errorf("tenant: persisting ownership grant: %w", err)
	}
	o.applyLocked(e)
	return nil
}

// Revoke drops tenantID's handle on (kind, id), reporting whether that was
// the last handle (so the caller may evict the shared resource underneath).
// Revoking a handle the tenant does not hold is a no-op with last == false.
func (o *Owners) Revoke(kind, id, tenantID string) (last bool, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	k := resourceKey{kind, id}
	if !o.owners[k][tenantID] {
		return false, nil
	}
	e := ownerEntry{Kind: kind, ID: id, Tenant: tenantID, Revoke: true, At: o.clock()}
	if err := o.append(e); err != nil {
		return false, fmt.Errorf("tenant: persisting ownership revoke: %w", err)
	}
	o.applyLocked(e)
	return o.owners[k] == nil, nil
}

// Owns reports whether tenantID holds a handle on (kind, id).
func (o *Owners) Owns(kind, id, tenantID string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.owners[resourceKey{kind, id}][tenantID]
}

// append writes one entry line and syncs it. Callers hold o.mu.
func (o *Owners) append(e ownerEntry) error {
	if !o.persistent {
		return nil
	}
	if o.f == nil {
		return errLedgerClosed
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := o.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return o.f.Sync()
}

// Close releases the append handle. Grants and revokes against a persistent
// store fail after Close; in-memory stores keep working.
func (o *Owners) Close() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.f == nil {
		return nil
	}
	err := o.f.Close()
	o.f = nil
	return err
}
