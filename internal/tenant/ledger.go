package tenant

// The ε-ledger: a persistent, crash-safe account of how much privacy budget
// each tenant has spent against each sensitive source graph. The paper's
// post-processing property makes this the only account the service needs —
// fitting a model under ε-DP spends ε once, and sampling the fitted model is
// free forever after — so the ledger records fits only, keyed by
// (tenant, graph content address).
//
// Persistence is an append-only JSONL file (Dir/ledger.jsonl): every admitted
// charge appends one line and syncs it to disk *before* the fit is allowed to
// run, so a crash can never lose a spend that released information. Refunds
// (for fits that were cancelled or failed before producing a model) append
// negative-ε lines; losing a refund to a crash errs in the conservative
// direction. On load, lines that fail to parse are skipped and reported via
// Warnings rather than failing the open.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ledgerFile is the append-only spend log inside the tenant directory.
const ledgerFile = "ledger.jsonl"

// spendTol absorbs floating-point rounding when charges nominally sum to the
// budget (mirrors dp.Budget.Spend's tolerance).
const spendTol = 1e-9

// entry is one JSONL line of the ledger. Epsilon is negative for refunds.
type entry struct {
	Tenant  string    `json:"tenant"`
	Graph   string    `json:"graph"`
	Epsilon float64   `json:"epsilon"`
	At      time.Time `json:"at"`
}

// ledgerKey identifies one (tenant, graph) account.
type ledgerKey struct{ tenant, graph string }

// Ledger tracks ε spent per (tenant, graph), optionally persisted as
// append-only JSONL. Safe for concurrent use; Charge is atomic — under
// concurrent requests exactly the charges that fit under the budget are
// admitted, never one more.
type Ledger struct {
	mu         sync.Mutex
	f          *os.File // nil when in-memory or closed
	persistent bool     // opened with a directory: appends must be durable
	spent      map[ledgerKey]float64
	warnings   []string
	clock      func() time.Time
}

// OpenLedger opens (or creates) the ledger under dir; an empty dir keeps the
// ledger in memory only. Existing entries are replayed into the in-memory
// totals; unparseable lines are skipped and reported via Warnings.
func OpenLedger(dir string) (*Ledger, error) {
	l := &Ledger{spent: make(map[ledgerKey]float64), clock: time.Now}
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: creating ledger directory: %w", err)
	}
	path := filepath.Join(dir, ledgerFile)
	if data, err := os.ReadFile(path); err == nil {
		l.replay(path, data)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("tenant: reading ledger: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tenant: opening ledger for append: %w", err)
	}
	l.f = f
	l.persistent = true
	return l, nil
}

// replay accumulates the persisted entries into the in-memory totals. A
// torn final line (crash mid-append before the sync completed — in which case
// the charge was never admitted) or any other unparseable line is skipped
// with a warning; totals are clamped at zero so a stray refund line can never
// manufacture budget.
func (l *Ledger) replay(path string, data []byte) {
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			l.warnings = append(l.warnings, fmt.Sprintf("%s:%d: %v", path, i+1, err))
			continue
		}
		if e.Tenant == "" || e.Graph == "" {
			l.warnings = append(l.warnings, fmt.Sprintf("%s:%d: entry missing tenant or graph", path, i+1))
			continue
		}
		k := ledgerKey{e.Tenant, e.Graph}
		l.spent[k] += e.Epsilon
		if l.spent[k] < 0 {
			l.spent[k] = 0
		}
		budgetSpentGauge.With(e.Tenant, e.Graph).SetFloat(l.spent[k])
	}
}

// Warnings reports ledger lines skipped on load. Each is a spend record that
// no longer counts — operators should reconcile them, because a skipped
// charge under-counts a tenant's true privacy spend.
func (l *Ledger) Warnings() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.warnings...)
}

// Spent returns the ε charged so far against one (tenant, graph) account.
func (l *Ledger) Spent(tenant, graph string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spent[ledgerKey{tenant, graph}]
}

// BudgetError reports a refused charge, carrying the remaining budget so the
// serving layer can tell the tenant exactly how much ε they have left for
// the graph.
type BudgetError struct {
	Tenant    string
	Graph     string
	Requested float64
	Remaining float64
	Budget    float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("tenant %s: requested ε=%v exceeds remaining budget %v of %v for graph %s",
		e.Tenant, e.Requested, e.Remaining, e.Budget, e.Graph)
}

// Charge atomically admits eps against the (tenant, graph) account if the
// running total stays within budget, persisting the entry (synced to disk)
// before reporting success. On refusal nothing is charged and the returned
// error is a *BudgetError carrying the remaining budget. The charge must
// happen *before* the fit runs: differential privacy accounting has to be
// pessimistic, because once noised measurements are released there is no
// taking them back.
func (l *Ledger) Charge(tenant, graph string, eps, budget float64) (remaining float64, err error) {
	if eps <= 0 {
		return 0, fmt.Errorf("tenant: cannot charge non-positive epsilon %v", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := ledgerKey{tenant, graph}
	spent := l.spent[k]
	if spent+eps > budget+spendTol {
		return budget - spent, &BudgetError{
			Tenant: tenant, Graph: graph,
			Requested: eps, Remaining: budget - spent, Budget: budget,
		}
	}
	if err := l.append(entry{Tenant: tenant, Graph: graph, Epsilon: eps, At: l.clock()}); err != nil {
		// The entry may or may not have hit disk; treat it as charged in
		// memory so the in-process view stays pessimistic, but refuse the
		// admission — a spend we cannot durably record must not run.
		l.spent[k] = spent + eps
		budgetSpentGauge.With(tenant, graph).SetFloat(l.spent[k])
		return budget - l.spent[k], fmt.Errorf("tenant: persisting ledger entry: %w", err)
	}
	l.spent[k] = spent + eps
	budgetSpentGauge.With(tenant, graph).SetFloat(l.spent[k])
	return budget - l.spent[k], nil
}

// Refund returns eps to the (tenant, graph) account, clamped so the spent
// total never goes negative. It exists for admission accounting only: a fit
// whose charge was admitted but which was cancelled or failed before any
// fitted model existed released nothing, so its ε can be returned. It must
// never be called for a fit that produced a model (see dp.Budget.Refund for
// the same contract one layer down).
func (l *Ledger) Refund(tenant, graph string, eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("tenant: cannot refund non-positive epsilon %v", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := ledgerKey{tenant, graph}
	if err := l.append(entry{Tenant: tenant, Graph: graph, Epsilon: -eps, At: l.clock()}); err != nil {
		return fmt.Errorf("tenant: persisting ledger refund: %w", err)
	}
	l.spent[k] -= eps
	if l.spent[k] < 0 {
		l.spent[k] = 0
	}
	budgetSpentGauge.With(tenant, graph).SetFloat(l.spent[k])
	return nil
}

// append writes one entry line and syncs it. Callers hold l.mu. A persistent
// ledger whose append handle is gone (Close raced a charge) refuses rather
// than silently dropping durability.
func (l *Ledger) append(e entry) error {
	if !l.persistent {
		return nil
	}
	if l.f == nil {
		return errLedgerClosed
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return l.f.Sync()
}

var errLedgerClosed = fmt.Errorf("ledger closed")

// Close releases the append handle. Charges against a persistent ledger fail
// after Close; in-memory ledgers keep working.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
