package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/parallel"
	"agmdp/internal/structural"
)

// TestMain honours AGMDP_TEST_PARALLELISM, which CI's multi-worker race pass
// sets to force every auto-resolved parallel path onto a fixed worker count
// different from both 1 and GOMAXPROCS, exercising the sharded fit and
// analytics interleavings the default run might miss.
func TestMain(m *testing.M) {
	if v := os.Getenv("AGMDP_TEST_PARALLELISM"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad AGMDP_TEST_PARALLELISM %q: %v\n", v, err)
			os.Exit(2)
		}
		parallel.SetParallelism(n)
	}
	os.Exit(m.Run())
}

// fitFixture builds an attributed heavy-tailed graph big enough to clear the
// sharding threshold (m >= parallel.MinShardEdges), so the parallel fit paths
// genuinely fan out instead of taking their sequential fallbacks.
func fitFixture(tb testing.TB, n int) *graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	edges := make([]graph.Edge, 0, 6*n)
	for i := 0; i < 6*n; i++ {
		// Square one endpoint's draw toward low IDs for a skewed degree profile.
		u := int(float64(n) * rng.Float64() * rng.Float64())
		v := rng.Intn(n)
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g := graph.FromEdges(n, 0, edges)
	attrs := make([]graph.AttrVector, n)
	for i := range attrs {
		attrs[i] = graph.AttrVector(rng.Uint64() & 3)
	}
	g = g.WithAttributes(2, attrs)
	if g.NumEdges() < parallel.MinShardEdges {
		tb.Fatalf("fixture has %d edges, below the sharding threshold %d", g.NumEdges(), parallel.MinShardEdges)
	}
	return g
}

// marshalOrDie serialises a model canonically so bit-identity can be asserted
// on the exact bytes a registry would store.
func marshalOrDie(t *testing.T, m *FittedModel) []byte {
	t.Helper()
	data, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFitWithParallelMatchesSequential pins the determinism contract of the
// exact fitting pipeline: for every worker count the fitted model is
// byte-identical to the sequential fit.
func TestFitWithParallelMatchesSequential(t *testing.T) {
	g := fitFixture(t, 2000)
	for _, model := range []structural.Model{structural.TriCycLe{}, structural.FCL{}} {
		want := marshalOrDie(t, FitWith(g, model, 1))
		for _, workers := range []int{2, 3, 5, 8} {
			got := marshalOrDie(t, FitWith(g, model, workers))
			if !bytes.Equal(want, got) {
				t.Errorf("%s: FitWith(%d workers) differs from sequential fit", model.Name(), workers)
			}
		}
	}
}

// TestFitDPParallelMatchesSequential pins the same contract for the private
// pipeline: the noise draws stay sequential on the rng, so equal seeds give
// byte-identical private models at every worker count.
func TestFitDPParallelMatchesSequential(t *testing.T) {
	g := fitFixture(t, 2000)
	for _, model := range []structural.Model{structural.TriCycLe{}, structural.FCL{}} {
		fit := func(workers int) []byte {
			m, err := FitDP(context.Background(), rand.New(rand.NewSource(7)), g, Config{
				Epsilon:     1.0,
				Model:       model,
				Parallelism: workers,
			})
			if err != nil {
				t.Fatalf("%s: FitDP(%d workers): %v", model.Name(), workers, err)
			}
			return marshalOrDie(t, m)
		}
		want := fit(1)
		for _, workers := range []int{2, 3, 5, 8} {
			if got := fit(workers); !bytes.Equal(want, got) {
				t.Errorf("%s: FitDP at %d workers differs from sequential", model.Name(), workers)
			}
		}
	}
}

// TestFitAutoParallelismMatchesExplicit guards the knob resolution: the auto
// default (Parallelism <= 0) must produce the same model as any explicit
// worker count.
func TestFitAutoParallelismMatchesExplicit(t *testing.T) {
	g := fitFixture(t, 2000)
	auto := marshalOrDie(t, FitWith(g, structural.TriCycLe{}, 0))
	seq := marshalOrDie(t, FitWith(g, structural.TriCycLe{}, 1))
	if !bytes.Equal(auto, seq) {
		t.Error("auto-parallel fit differs from sequential fit")
	}
}
