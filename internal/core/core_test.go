package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"agmdp/internal/attrs"
	"agmdp/internal/datasets"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/stats"
	"agmdp/internal/structural"
)

// testInputGraph returns a moderately sized attributed social-style graph used
// throughout the core tests (a scaled-down Last.fm stand-in).
func testInputGraph(seed int64) *graph.Graph {
	p, err := datasets.ByName("lastfm")
	if err != nil {
		panic(err)
	}
	return datasets.Generate(dp.NewRand(seed), p.Scaled(0.3))
}

func TestFitNonPrivateParameters(t *testing.T) {
	g := testInputGraph(1)
	m := Fit(g, structural.TriCycLe{})
	if m.Private() {
		t.Fatal("non-private fit reports Private() = true")
	}
	if m.ModelName != "TriCycLe" {
		t.Fatalf("ModelName = %q", m.ModelName)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantX := attrs.TrueThetaX(g)
	for i := range wantX {
		if m.ThetaX[i] != wantX[i] {
			t.Fatal("non-private ThetaX differs from the exact distribution")
		}
	}
	if m.Structural.Triangles != g.Triangles() {
		t.Fatalf("fitted triangles = %d, want %d", m.Structural.Triangles, g.Triangles())
	}
	if len(m.Structural.Degrees) != g.NumNodes() {
		t.Fatalf("degree sequence length = %d, want %d", len(m.Structural.Degrees), g.NumNodes())
	}
}

func TestFitTCLLearnsRho(t *testing.T) {
	g := testInputGraph(2)
	m := Fit(g, structural.TCL{})
	if m.ModelName != "TCL" {
		t.Fatalf("ModelName = %q", m.ModelName)
	}
	if m.Structural.Rho < 0 || m.Structural.Rho > 1 {
		t.Fatalf("fitted rho = %v outside [0,1]", m.Structural.Rho)
	}
	if m.Structural.Rho == 0 {
		t.Fatal("fitted rho should be positive on a clustered graph")
	}
}

func TestFitDefaultsToTriCycLe(t *testing.T) {
	g := testInputGraph(3)
	if m := Fit(g, nil); m.ModelName != "TriCycLe" {
		t.Fatalf("nil model fitted as %q", m.ModelName)
	}
}

func TestFitDPValidatesConfig(t *testing.T) {
	g := testInputGraph(4)
	if _, err := FitDP(context.Background(), dp.NewRand(1), g, Config{Epsilon: 0}); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	if _, err := FitDP(context.Background(), dp.NewRand(1), g, Config{Epsilon: 1, Model: structural.TCL{}}); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("TCL should be rejected as unsupported, got %v", err)
	}
	if _, err := FitDP(context.Background(), dp.NewRand(1), g, Config{Epsilon: 1, BudgetSplit: []float64{0.5, 0.5}}); err == nil {
		t.Fatal("wrong budget split length accepted for TriCycLe")
	}
	if _, err := FitDP(context.Background(), dp.NewRand(1), g, Config{Epsilon: 1, Model: structural.FCL{}, BudgetSplit: []float64{0.5, 0.5, 0.5, 0.5}}); err == nil {
		t.Fatal("wrong budget split length accepted for FCL")
	}
	// A split that exceeds the total budget must be rejected by the
	// accountant.
	if _, err := FitDP(context.Background(), dp.NewRand(1), g, Config{Epsilon: 1, BudgetSplit: []float64{0.5, 0.5, 0.5, 0.5}}); err == nil {
		t.Fatal("over-budget split accepted")
	}
}

func TestFitDPProducesValidModel(t *testing.T) {
	g := testInputGraph(5)
	for _, model := range []structural.Model{structural.TriCycLe{}, structural.FCL{}} {
		m, err := FitDP(context.Background(), dp.NewRand(2), g, Config{Epsilon: 1, Model: model})
		if err != nil {
			t.Fatalf("FitDP(%s): %v", model.Name(), err)
		}
		if !m.Private() || m.Epsilon != 1 {
			t.Fatalf("%s: Epsilon = %v, want 1", model.Name(), m.Epsilon)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", model.Name(), err)
		}
		if m.ModelName != model.Name() {
			t.Fatalf("ModelName = %q, want %q", m.ModelName, model.Name())
		}
		sumX := 0.0
		for _, v := range m.ThetaX {
			sumX += v
		}
		if math.Abs(sumX-1) > 1e-9 {
			t.Fatalf("%s: ThetaX sums to %v", model.Name(), sumX)
		}
		if model.Name() == "FCL" && m.Structural.Triangles != 0 {
			t.Fatal("FCL fitting should not spend budget on triangles")
		}
	}
}

func TestFitDPAccuracyImprovesWithEpsilon(t *testing.T) {
	g := testInputGraph(6)
	trueTheta := attrs.TrueThetaF(g)
	avgErr := func(eps float64) float64 {
		var total float64
		const trials = 8
		for i := 0; i < trials; i++ {
			m, err := FitDP(context.Background(), dp.NewRand(int64(i)+100), g, Config{Epsilon: eps})
			if err != nil {
				t.Fatalf("FitDP: %v", err)
			}
			total += stats.HellingerDistance(trueTheta, m.ThetaF)
		}
		return total / trials
	}
	if tight, loose := avgErr(5.0), avgErr(0.1); tight >= loose {
		t.Fatalf("Hellinger at eps=5 (%v) not below eps=0.1 (%v)", tight, loose)
	}
}

func TestValidateRejectsBrokenModels(t *testing.T) {
	g := testInputGraph(7)
	m := Fit(g, structural.FCL{})
	cases := []struct {
		name   string
		mutate func(*FittedModel)
	}{
		{"negative nodes", func(f *FittedModel) { f.N = -1 }},
		{"bad width", func(f *FittedModel) { f.W = -2 }},
		{"thetaX length", func(f *FittedModel) { f.ThetaX = f.ThetaX[:1] }},
		{"thetaF length", func(f *FittedModel) { f.ThetaF = append(f.ThetaF, 0) }},
		{"degree length", func(f *FittedModel) { f.Structural.Degrees = f.Structural.Degrees[:3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			broken := *m
			broken.ThetaX = append([]float64(nil), m.ThetaX...)
			broken.ThetaF = append([]float64(nil), m.ThetaF...)
			broken.Structural.Degrees = append([]int(nil), m.Structural.Degrees...)
			tc.mutate(&broken)
			if err := broken.Validate(); err == nil {
				t.Fatal("broken model validated")
			}
		})
	}
}

func TestAcceptanceRatio(t *testing.T) {
	if got := acceptanceRatio(0.2, 0.1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ratio = %v, want 2", got)
	}
	if got := acceptanceRatio(0, 0); got != 1 {
		t.Fatalf("ratio for double zero = %v, want 1", got)
	}
	// Unobserved but wanted configurations get the maximum (capped) ratio.
	if got := acceptanceRatio(0.3, 0); math.Abs(got-50) > 1e-9 {
		t.Fatalf("unobserved target configuration ratio = %v, want the 50 cap", got)
	}
	// The cap also bounds ratios for nearly-unobserved configurations.
	if got := acceptanceRatio(0.5, 1e-9); got > 50+1e-9 {
		t.Fatalf("ratio %v exceeds the cap", got)
	}
	if got := acceptanceRatio(0, 0.4); got != 0 {
		t.Fatalf("zero-target configuration should be suppressed, got %v", got)
	}
}

func TestSampleProducesAttributedGraph(t *testing.T) {
	g := testInputGraph(8)
	m := Fit(g, structural.FCL{})
	synth, err := Sample(dp.NewRand(3), m, SampleOptions{})
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if synth.NumNodes() != g.NumNodes() || synth.NumAttributes() != g.NumAttributes() {
		t.Fatalf("synthetic graph shape (%d, %d) != input (%d, %d)",
			synth.NumNodes(), synth.NumAttributes(), g.NumNodes(), g.NumAttributes())
	}
	if synth.NumEdges() == 0 {
		t.Fatal("synthetic graph has no edges")
	}
	// Edge count should track the degree sequence's implied edge count.
	if stats.RelativeError(float64(g.NumEdges()), float64(synth.NumEdges())) > 0.1 {
		t.Fatalf("synthetic edges = %d, input = %d", synth.NumEdges(), g.NumEdges())
	}
}

func TestSampleRejectsInvalidModel(t *testing.T) {
	g := testInputGraph(9)
	m := Fit(g, structural.FCL{})
	m.ThetaX = m.ThetaX[:1]
	if _, err := Sample(dp.NewRand(1), m, SampleOptions{}); err == nil {
		t.Fatal("Sample accepted an invalid model")
	}
}

func TestSampleReproducesAttributeDistribution(t *testing.T) {
	g := testInputGraph(10)
	m := Fit(g, structural.FCL{})
	synth, err := Sample(dp.NewRand(4), m, SampleOptions{})
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	h := stats.HellingerDistance(attrs.TrueThetaX(g), attrs.TrueThetaX(synth))
	if h > 0.06 {
		t.Fatalf("attribute distribution Hellinger distance %v too large", h)
	}
}

func TestSampleReproducesCorrelationsBetterThanUniform(t *testing.T) {
	g := testInputGraph(11)
	m := Fit(g, structural.FCL{})
	truth := attrs.TrueThetaF(g)
	var hSynth, hUniform float64
	const trials = 3
	for i := 0; i < trials; i++ {
		synth, err := Sample(dp.NewRand(int64(i)+20), m, SampleOptions{})
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		hSynth += stats.HellingerDistance(truth, attrs.TrueThetaF(synth))
		hUniform += stats.HellingerDistance(truth, attrs.UniformThetaF(g.NumAttributes()))
	}
	if hSynth >= hUniform {
		t.Fatalf("synthetic correlations (H=%v) no better than the uniform baseline (H=%v)", hSynth/trials, hUniform/trials)
	}
}

func TestSampleModelOverride(t *testing.T) {
	g := testInputGraph(12)
	m := Fit(g, structural.TriCycLe{})
	synth, err := Sample(dp.NewRand(5), m, SampleOptions{Model: structural.FCL{}, Iterations: 1})
	if err != nil {
		t.Fatalf("Sample with override: %v", err)
	}
	if synth.NumEdges() == 0 {
		t.Fatal("override model produced no edges")
	}
}

func TestSynthesizeEndToEndPrivate(t *testing.T) {
	g := testInputGraph(13)
	synth, fitted, err := Synthesize(dp.NewRand(6), g, Config{Epsilon: math.Log(3)}, SampleOptions{Iterations: 2})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !fitted.Private() {
		t.Fatal("fitted model should be private")
	}
	if synth.NumNodes() != g.NumNodes() {
		t.Fatalf("node count changed: %d vs %d", synth.NumNodes(), g.NumNodes())
	}
	// Degree structure must beat the trivial baseline from the paper
	// (KS ≈ 0.5, Hellinger ≈ 0.64 for uniformly random edge assignment).
	ks := stats.DegreeKS(g.DegreeSequence(), synth.DegreeSequence())
	if ks > 0.4 {
		t.Fatalf("degree KS = %v, want well below the 0.5 random baseline", ks)
	}
	hf := stats.HellingerDistance(attrs.TrueThetaF(g), attrs.TrueThetaF(synth))
	if hf > 0.37 {
		t.Fatalf("correlation Hellinger = %v, want below the 0.37 uniform baseline", hf)
	}
}

func TestSynthesizeNonPrivateTriCycLePreservesClustering(t *testing.T) {
	g := testInputGraph(14)
	synthTri, _, err := SynthesizeNonPrivate(dp.NewRand(7), g, structural.TriCycLe{}, SampleOptions{Iterations: 2})
	if err != nil {
		t.Fatalf("SynthesizeNonPrivate TriCycLe: %v", err)
	}
	synthFCL, _, err := SynthesizeNonPrivate(dp.NewRand(7), g, structural.FCL{}, SampleOptions{Iterations: 2})
	if err != nil {
		t.Fatalf("SynthesizeNonPrivate FCL: %v", err)
	}
	triErr := stats.RelativeError(float64(g.Triangles()), float64(synthTri.Triangles()))
	fclErr := stats.RelativeError(float64(g.Triangles()), float64(synthFCL.Triangles()))
	if triErr >= fclErr {
		t.Fatalf("TriCycLe triangle error %v not below FCL %v", triErr, fclErr)
	}
}

func TestSynthesizePropagatesFitErrors(t *testing.T) {
	g := testInputGraph(15)
	if _, _, err := Synthesize(dp.NewRand(1), g, Config{Epsilon: -1}, SampleOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
