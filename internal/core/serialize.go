package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"agmdp/internal/structural"
)

// modelFormatVersion is bumped whenever the serialized layout of FittedModel
// changes incompatibly. UnmarshalModel rejects versions it does not know.
const modelFormatVersion = 1

// modelEnvelope is the on-disk/wire representation of a FittedModel. The
// parameters are flattened (rather than embedding structural.Params) so the
// serialized form is independent of internal struct layout.
type modelEnvelope struct {
	Version   int       `json:"version"`
	N         int       `json:"n"`
	W         int       `json:"w"`
	ThetaX    []float64 `json:"theta_x"`
	ThetaF    []float64 `json:"theta_f"`
	Degrees   []int     `json:"degrees"`
	Triangles int64     `json:"triangles"`
	Rho       float64   `json:"rho,omitempty"`
	ModelName string    `json:"model"`
	Epsilon   float64   `json:"epsilon,omitempty"`
}

// MarshalModel encodes a fitted model into its canonical, versioned JSON
// representation. The encoding is deterministic (struct fields are emitted in
// declaration order), so equal models always produce equal bytes — the
// property ModelID relies on for content addressing.
func MarshalModel(m *FittedModel) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("core: cannot marshal nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: refusing to marshal invalid model: %w", err)
	}
	return json.Marshal(modelEnvelope{
		Version:   modelFormatVersion,
		N:         m.N,
		W:         m.W,
		ThetaX:    m.ThetaX,
		ThetaF:    m.ThetaF,
		Degrees:   m.Structural.Degrees,
		Triangles: m.Structural.Triangles,
		Rho:       m.Structural.Rho,
		ModelName: m.ModelName,
		Epsilon:   m.Epsilon,
	})
}

// UnmarshalModel decodes a fitted model previously encoded with MarshalModel
// and validates it, so a registry or API caller can never resurrect an
// internally inconsistent model.
func UnmarshalModel(data []byte) (*FittedModel, error) {
	var env modelEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if env.Version != modelFormatVersion {
		return nil, fmt.Errorf("core: unsupported model format version %d (want %d)", env.Version, modelFormatVersion)
	}
	m := &FittedModel{
		N:      env.N,
		W:      env.W,
		ThetaX: env.ThetaX,
		ThetaF: env.ThetaF,
		Structural: structural.Params{
			Degrees:   env.Degrees,
			Triangles: env.Triangles,
			Rho:       env.Rho,
		},
		ModelName: env.ModelName,
		Epsilon:   env.Epsilon,
	}
	if m.ThetaX == nil {
		m.ThetaX = []float64{}
	}
	if m.ThetaF == nil {
		m.ThetaF = []float64{}
	}
	if m.Structural.Degrees == nil {
		m.Structural.Degrees = []int{}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: decoded model is invalid: %w", err)
	}
	return m, nil
}

// ModelID returns the content-addressed identifier of a fitted model: the
// hex-encoded SHA-256 digest of its canonical encoding, truncated to 16 bytes
// (32 hex characters). Models with identical parameters share an ID, so a
// registry keyed by ModelID deduplicates repeated fits for free.
func ModelID(m *FittedModel) (string, error) {
	data, err := MarshalModel(m)
	if err != nil {
		return "", err
	}
	return ModelIDFromBytes(data), nil
}

// ModelIDFromBytes computes the content-addressed identifier directly from a
// canonical encoding produced by MarshalModel.
func ModelIDFromBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}
