package core

import (
	"bytes"
	"context"
	"testing"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/structural"
)

// serializeFixture builds a small fitted model with every field populated.
func serializeFixture(t *testing.T) *FittedModel {
	t.Helper()
	rng := dp.NewRand(11)
	b := graph.NewBuilder(40, 2)
	for i := 0; i < 120; i++ {
		b.AddEdge(rng.Intn(40), rng.Intn(40))
	}
	for i := 0; i < 40; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(4)))
	}
	m, err := FitDP(context.Background(), dp.NewRand(3), b.Finalize(), Config{Epsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMarshalModelRoundTrip(t *testing.T) {
	m := serializeFixture(t)
	data, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != m.N || back.W != m.W || back.ModelName != m.ModelName || back.Epsilon != m.Epsilon {
		t.Fatalf("header mismatch: got %+v want %+v", back, m)
	}
	if len(back.ThetaX) != len(m.ThetaX) || len(back.ThetaF) != len(m.ThetaF) {
		t.Fatal("distribution length mismatch")
	}
	for i := range m.ThetaX {
		if back.ThetaX[i] != m.ThetaX[i] {
			t.Fatalf("ThetaX[%d] = %v, want %v", i, back.ThetaX[i], m.ThetaX[i])
		}
	}
	if back.Structural.Triangles != m.Structural.Triangles {
		t.Fatalf("triangles = %d, want %d", back.Structural.Triangles, m.Structural.Triangles)
	}
	for i := range m.Structural.Degrees {
		if back.Structural.Degrees[i] != m.Structural.Degrees[i] {
			t.Fatalf("degree[%d] mismatch", i)
		}
	}
}

// TestMarshalModelDeterministic verifies the canonical-encoding property that
// content addressing relies on.
func TestMarshalModelDeterministic(t *testing.T) {
	m := serializeFixture(t)
	a, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same model differ")
	}
}

func TestModelIDContentAddressing(t *testing.T) {
	m := serializeFixture(t)
	id1, err := ModelID(m)
	if err != nil {
		t.Fatal(err)
	}
	// A decoded copy has the same parameters, so it must share the ID.
	data, _ := MarshalModel(m)
	copyM, _ := UnmarshalModel(data)
	id2, err := ModelID(copyM)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("equal models hash to different IDs: %s vs %s", id1, id2)
	}
	// Any parameter change must change the ID.
	copyM.Structural.Triangles++
	id3, err := ModelID(copyM)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("different models share an ID")
	}
	if len(id1) != 32 {
		t.Fatalf("ID length %d, want 32 hex chars", len(id1))
	}
}

func TestUnmarshalModelRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"wrong version":   `{"version":99,"n":0,"w":0,"theta_x":[1],"theta_f":[1],"degrees":[],"triangles":0,"model":"FCL"}`,
		"invalid degrees": `{"version":1,"n":2,"w":0,"theta_x":[1],"theta_f":[1],"degrees":[5,0],"triangles":0,"model":"FCL"}`,
		"bad theta len":   `{"version":1,"n":1,"w":1,"theta_x":[1],"theta_f":[1],"degrees":[0],"triangles":0,"model":"FCL"}`,
		// w in (attrs.MaxWidth, graph.MaxAttributes] must error, not panic in
		// the attrs config-count helpers.
		"width above attrs limit": `{"version":1,"n":1,"w":31,"theta_x":[1],"theta_f":[1],"degrees":[0],"triangles":0,"model":"FCL"}`,
	}
	for name, body := range cases {
		if _, err := UnmarshalModel([]byte(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarshalModelRejectsInvalid(t *testing.T) {
	if _, err := MarshalModel(nil); err == nil {
		t.Fatal("nil model accepted")
	}
	m := serializeFixture(t)
	m.Structural.Degrees = m.Structural.Degrees[:1]
	if _, err := MarshalModel(m); err == nil {
		t.Fatal("inconsistent model accepted")
	}
}

// TestSerializedModelSamplesIdentically is the registry round-trip
// requirement: marshal → unmarshal → identical samples at equal seed.
func TestSerializedModelSamplesIdentically(t *testing.T) {
	m := serializeFixture(t)
	data, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		g1, err := Sample(dp.NewRand(seed), m, SampleOptions{Iterations: 1, Model: structural.TriCycLe{}})
		if err != nil {
			t.Fatal(err)
		}
		g2, err := Sample(dp.NewRand(seed), back, SampleOptions{Iterations: 1, Model: structural.TriCycLe{}})
		if err != nil {
			t.Fatal(err)
		}
		if !g1.Equal(g2) {
			t.Fatalf("seed %d: original and round-tripped model sample different graphs", seed)
		}
	}
}
