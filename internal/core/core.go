// Package core implements the Attributed Graph Model (AGM) of Pfeiffer et al.
// and the paper's differentially private adaptation AGM-DP (Algorithm 3). It
// ties together the attribute estimators (package attrs), the private degree
// sequence and triangle count estimators (packages degrees and triangles) and
// the structural generators (package structural) into the end-to-end workflow
// of Figure 4: learn Θ̃X, Θ̃F and Θ̃M from the sensitive input graph under a
// split privacy budget, then sample synthetic attributed graphs from the
// learned model without ever touching the input again.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"agmdp/internal/attrs"
	"agmdp/internal/degrees"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/structural"
	"agmdp/internal/triangles"
)

// DefaultSampleIterations is the number of acceptance-probability refinement
// rounds used when sampling (the paper reports convergence "after just a few
// iterations").
const DefaultSampleIterations = 3

// ErrUnsupportedModel is returned when FitDP is asked to privately fit a
// structural model it has no private estimator for (for example TCL, whose EM
// parameter cannot currently be released under differential privacy).
var ErrUnsupportedModel = errors.New("core: structural model has no differentially private fitting procedure")

// FittedModel holds the (exact or privately estimated) AGM parameters learned
// from an input graph. A FittedModel is all that is needed to sample synthetic
// graphs; it never retains a reference to the input graph.
type FittedModel struct {
	// N is the (public) number of nodes.
	N int
	// W is the number of binary node attributes.
	W int
	// ThetaX is the node-attribute distribution over the 2^W configurations.
	ThetaX []float64
	// ThetaF is the attribute–edge correlation distribution over the
	// NumEdgeConfigs(W) unordered configuration pairs.
	ThetaF []float64
	// Structural carries the structural-model parameters ΘM (degree sequence,
	// triangle count, transitive-closure probability).
	Structural structural.Params
	// ModelName records which structural model the parameters were fitted for.
	ModelName string
	// Epsilon is the total privacy budget consumed to learn the parameters;
	// zero means the model was fitted without privacy.
	Epsilon float64
}

// Private reports whether the model was learned under differential privacy.
func (m *FittedModel) Private() bool { return m.Epsilon > 0 }

// Validate performs basic consistency checks on the fitted parameters.
func (m *FittedModel) Validate() error {
	if m.N < 0 {
		return fmt.Errorf("core: negative node count %d", m.N)
	}
	if m.W < 0 || m.W > graph.MaxAttributes || m.W > attrs.MaxWidth {
		return fmt.Errorf("core: attribute width %d out of range", m.W)
	}
	if len(m.ThetaX) != attrs.NumNodeConfigs(m.W) {
		return fmt.Errorf("core: ThetaX has %d entries, want %d", len(m.ThetaX), attrs.NumNodeConfigs(m.W))
	}
	if len(m.ThetaF) != attrs.NumEdgeConfigs(m.W) {
		return fmt.Errorf("core: ThetaF has %d entries, want %d", len(m.ThetaF), attrs.NumEdgeConfigs(m.W))
	}
	return m.Structural.Validate(m.N)
}

// Config controls FitDP, the differentially private fitting procedure.
type Config struct {
	// Epsilon is the total privacy budget ε shared by all learned parameters.
	Epsilon float64
	// TruncationK is the edge-truncation parameter for learning Θ̃F; zero
	// selects the paper's data-independent heuristic k = n^{1/3}.
	TruncationK int
	// Model is the structural model the parameters are fitted for; nil selects
	// TriCycLe.
	Model structural.Model
	// BudgetSplit optionally overrides how ε is divided among {ΘX, ΘF, S, n∆}
	// (TriCycLe) or {ΘX, ΘF, S} (FCL). Nil uses the paper's splits: an even
	// four-way split for TriCycLe, and ½ for S plus ¼ each for ΘX and ΘF for
	// FCL.
	BudgetSplit []float64
	// Parallelism is the worker count for the fitting pipeline's measurement
	// passes (degree extraction, node- and edge-configuration histograms,
	// triangle and common-neighbour counting): ≤ 0 means "auto" (the process
	// default, see parallel.SetParallelism), 1 forces sequential fitting.
	// Every measurement pass is bit-identical for all worker counts and the
	// noise draws stay sequential on the caller's rng, so a fitted model
	// depends only on (graph, Config, rng seed) — never on Parallelism.
	Parallelism int
	// Observe, when non-nil, receives the wall-clock duration of each fitting
	// stage as it completes: "attrs" (Θ̃X), "correlations" (Θ̃F), "degrees"
	// (S̃) and, for TriCycLe, "triangles" (ñ∆). The callback only reads the
	// clock — it is invoked after each stage's noise draws, never between
	// them, so attaching an observer cannot perturb the fitted model.
	Observe func(stage string, d time.Duration)
}

// observeStage reports one completed stage to cb, if an observer is attached.
func observeStage(cb func(string, time.Duration), stage string, start time.Time) {
	if cb != nil {
		cb(stage, time.Since(start))
	}
}

// normalizedModel returns the configured structural model, defaulting to
// TriCycLe.
func (c Config) normalizedModel() structural.Model {
	if c.Model == nil {
		return structural.TriCycLe{}
	}
	return c.Model
}

// Fit learns exact (non-private) AGM parameters from g for the given
// structural model. It is the baseline the paper reports as AGM-FCL /
// AGM-TriCL. The measurement passes run at the process-default parallelism;
// see FitWith for an explicit worker count (results are identical either
// way).
func Fit(g *graph.Graph, model structural.Model) *FittedModel {
	return FitWith(g, model, 0)
}

// FitWith is Fit with an explicit worker count for the measurement passes
// (degree extraction, attribute histograms, triangle counting): ≤ 0 selects
// the process default, 1 forces sequential fitting. Every pass is
// bit-identical for all worker counts, so the fitted model depends only on
// the input graph and the model choice.
func FitWith(g *graph.Graph, model structural.Model, parallelism int) *FittedModel {
	// A background context never cancels, so the error is statically nil.
	m, _ := fitWithObserved(context.Background(), g, model, parallelism, nil)
	return m
}

// fitWithObserved is FitWith with a cancellation context and an optional
// stage observer; it reports the same stage names as FitDP so synchronous and
// private fits share one timing vocabulary, and it checks ctx at the same
// stage boundaries so cancellable serving paths behave identically whether or
// not a fit is private.
func fitWithObserved(ctx context.Context, g *graph.Graph, model structural.Model, parallelism int, observe func(string, time.Duration)) (*FittedModel, error) {
	if model == nil {
		model = structural.TriCycLe{}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	params := structural.Params{Degrees: g.DegreeSequenceWith(parallelism)}
	observeStage(observe, "degrees", start)
	switch model.(type) {
	case structural.TriCycLe:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		params.Triangles = g.TrianglesWith(parallelism)
		observeStage(observe, "triangles", start)
	case structural.TCL:
		params.Rho = structural.FitRho(g, 0)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	thetaX := attrs.TrueThetaXWith(g, parallelism)
	observeStage(observe, "attrs", start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	thetaF := attrs.TrueThetaFWith(g, parallelism)
	observeStage(observe, "correlations", start)
	return &FittedModel{
		N:          g.NumNodes(),
		W:          g.NumAttributes(),
		ThetaX:     thetaX,
		ThetaF:     thetaF,
		Structural: params,
		ModelName:  model.Name(),
	}, nil
}

// FitModel runs the fit a Config describes end to end: the differentially
// private pipeline (FitDP) when cfg.Epsilon > 0, the exact non-private
// baseline (FitWith) otherwise. It is the single fit entry point shared by
// the synchronous HTTP handler and the asynchronous fit jobs, so the two
// paths cannot drift apart — an async fit registers exactly the model the
// synchronous fit would have.
//
// Cancelling ctx aborts the fit at the next stage boundary (see FitDP for
// the exact contract); the non-private baseline checks the same boundaries.
func FitModel(ctx context.Context, rng *rand.Rand, g *graph.Graph, cfg Config) (*FittedModel, error) {
	if cfg.Epsilon > 0 {
		return FitDP(ctx, rng, g, cfg)
	}
	return fitWithObserved(ctx, g, cfg.normalizedModel(), cfg.Parallelism, cfg.Observe)
}

// FitDP (lines 2–5 of Algorithm 3) learns ε-differentially private AGM
// parameters from g. The privacy budget is split among the attribute
// distribution, the attribute–edge correlations and the structural parameters
// according to the configured split; sequential composition over the disjoint
// learning procedures gives a total privacy cost of ε.
//
// Cancellation: ctx is checked between pipeline stages (Θ̃X, Θ̃F, S̃, ñ∆) and
// never inside one, so a fit either aborts before a stage's noise draws or
// runs the stage to completion — a fit that finishes is bit-identical to one
// run with a background context, and a cancelled fit returns ctx's error
// having released nothing derived from the unfinished stages.
func FitDP(ctx context.Context, rng *rand.Rand, g *graph.Graph, cfg Config) (*FittedModel, error) {
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("core: non-positive privacy budget %v", cfg.Epsilon)
	}
	model := cfg.normalizedModel()
	k := cfg.TruncationK
	if k <= 0 {
		k = attrs.DefaultTruncationK(g.NumNodes())
	}

	var epsX, epsF, epsS, epsTri float64
	switch model.(type) {
	case structural.TriCycLe:
		split := cfg.BudgetSplit
		if split == nil {
			split = dp.SplitEven(cfg.Epsilon, 4)
		}
		if len(split) != 4 {
			return nil, fmt.Errorf("core: TriCycLe budget split needs 4 parts, got %d", len(split))
		}
		epsX, epsF, epsS, epsTri = split[0], split[1], split[2], split[3]
	case structural.FCL:
		split := cfg.BudgetSplit
		if split == nil {
			split = dp.SplitWeighted(cfg.Epsilon, []float64{1, 1, 2})
		}
		if len(split) != 3 {
			return nil, fmt.Errorf("core: FCL budget split needs 3 parts, got %d", len(split))
		}
		epsX, epsF, epsS = split[0], split[1], split[2]
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedModel, model.Name())
	}

	budget := dp.NewBudget(cfg.Epsilon)
	charge := func(eps float64) error {
		if eps <= 0 {
			return fmt.Errorf("core: non-positive budget share %v", eps)
		}
		return budget.Spend(eps)
	}

	// The learning procedures below interleave two kinds of work: exact
	// measurements of the input graph (histograms, degrees, triangle and
	// common-neighbour counts), which shard onto the worker pool at
	// cfg.Parallelism and are bit-identical for every worker count, and the
	// privacy-critical noise draws, which stay sequential on rng in a fixed
	// order. A private fit is therefore reproducible per (graph, cfg, rng
	// seed) no matter how many workers measure the graph.

	// Θ̃X — LearnAttributesDP (Algorithm 5).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := charge(epsX); err != nil {
		return nil, err
	}
	start := time.Now()
	thetaX := attrs.LearnAttributesDPWith(rng, g, epsX, cfg.Parallelism)
	observeStage(cfg.Observe, "attrs", start)

	// Θ̃F — LearnCorrelationsDP (Algorithm 4, edge truncation).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := charge(epsF); err != nil {
		return nil, err
	}
	start = time.Now()
	thetaF := attrs.LearnCorrelationsDPWith(rng, g, epsF, k, cfg.Parallelism)
	observeStage(cfg.Observe, "correlations", start)

	// Θ̃M — FitTriCycLeDP (Algorithm 6) or the FCL degree sequence.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := charge(epsS); err != nil {
		return nil, err
	}
	start = time.Now()
	params := structural.Params{Degrees: degrees.PrivateSequenceWith(rng, g, epsS, cfg.Parallelism)}
	observeStage(cfg.Observe, "degrees", start)
	if _, ok := model.(structural.TriCycLe); ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := charge(epsTri); err != nil {
			return nil, err
		}
		start = time.Now()
		params.Triangles = triangles.PrivateCountWith(rng, g, epsTri, cfg.Parallelism)
		observeStage(cfg.Observe, "triangles", start)
	}

	return &FittedModel{
		N:          g.NumNodes(),
		W:          g.NumAttributes(),
		ThetaX:     thetaX,
		ThetaF:     thetaF,
		Structural: params,
		ModelName:  model.Name(),
		Epsilon:    cfg.Epsilon,
	}, nil
}
