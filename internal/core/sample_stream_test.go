package core

import (
	"bytes"
	"testing"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/structural"
)

// encodeSource serializes a row source through the streaming encoder.
func encodeSource(t *testing.T, src graph.RowSource) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinaryTo(&buf, src); err != nil {
		t.Fatalf("WriteBinaryTo: %v", err)
	}
	return buf.Bytes()
}

// TestSampleSourceMatchesSample pins the streaming pipeline's core contract:
// SampleSource consumes the same rng trace as Sample and its row source
// materializes — and encodes — byte-identically to Sample's packed graph at
// the same seed, for every shipped structural model.
func TestSampleSourceMatchesSample(t *testing.T) {
	g := testInputGraph(30)
	for _, model := range []structural.Model{structural.TriCycLe{}, structural.FCL{}, structural.TCL{}} {
		m := Fit(g, model)
		for seed := int64(1); seed <= 3; seed++ {
			want, err := Sample(dp.NewRand(seed), m, SampleOptions{Iterations: 2})
			if err != nil {
				t.Fatalf("%s: Sample: %v", model.Name(), err)
			}
			src, err := SampleSource(dp.NewRand(seed), m, SampleOptions{Iterations: 2})
			if err != nil {
				t.Fatalf("%s: SampleSource: %v", model.Name(), err)
			}
			if !graph.Materialize(src).Equal(want) {
				t.Fatalf("%s seed %d: materialized source differs from Sample", model.Name(), seed)
			}
			var mono bytes.Buffer
			if err := want.WriteBinary(&mono); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mono.Bytes(), encodeSource(t, src)) {
				t.Fatalf("%s seed %d: streamed encoding differs from monolithic", model.Name(), seed)
			}
		}
	}
}

// TestSampleSourceWithTableMatchesSampleWithTable is the same byte-identity
// contract for the acceptance-table fast path (the engine's cache hit path).
func TestSampleSourceWithTableMatchesSampleWithTable(t *testing.T) {
	g := testInputGraph(31)
	m := Fit(g, structural.TriCycLe{})
	table, err := FitAcceptanceTable(m, SampleOptions{})
	if err != nil {
		t.Fatalf("FitAcceptanceTable: %v", err)
	}
	want, err := SampleWithTable(dp.NewRand(7), m, table, SampleOptions{})
	if err != nil {
		t.Fatalf("SampleWithTable: %v", err)
	}
	src, err := SampleSourceWithTable(dp.NewRand(7), m, table, SampleOptions{})
	if err != nil {
		t.Fatalf("SampleSourceWithTable: %v", err)
	}
	if !graph.Materialize(src).Equal(want) {
		t.Fatal("materialized table source differs from SampleWithTable")
	}
	var mono bytes.Buffer
	if err := want.WriteBinary(&mono); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mono.Bytes(), encodeSource(t, src)) {
		t.Fatal("streamed table encoding differs from monolithic")
	}
}

// TestSampleSourceStaysUnpacked asserts the perf point of the streaming path:
// for a streaming structural model the final round is never packed, so the
// returned source must be builder-backed, not a materialized graph.
func TestSampleSourceStaysUnpacked(t *testing.T) {
	g := testInputGraph(32)
	m := Fit(g, structural.FCL{})
	src, err := SampleSource(dp.NewRand(9), m, SampleOptions{Iterations: 1})
	if err != nil {
		t.Fatalf("SampleSource: %v", err)
	}
	if _, packed := src.(*graph.Graph); packed {
		t.Fatal("SampleSource returned a packed graph for a streaming model")
	}
}
