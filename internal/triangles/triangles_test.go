package triangles

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Finalize()
}

func randomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Finalize()
}

func TestCountMatchesGraphPackage(t *testing.T) {
	g := randomGraph(1, 60, 0.1)
	if Count(g) != g.Triangles() {
		t.Fatalf("Count = %d, graph.Triangles = %d", Count(g), g.Triangles())
	}
}

func TestMaxCommonNeighborsKnownGraphs(t *testing.T) {
	// K5: every pair shares the other 3 nodes.
	if got := MaxCommonNeighbors(complete(5)); got != 3 {
		t.Fatalf("K5 MaxCommonNeighbors = %d, want 3", got)
	}
	// A star: all leaf pairs share exactly the hub.
	starB := graph.NewBuilder(6, 0)
	for i := 1; i < 6; i++ {
		starB.AddEdge(0, i)
	}
	if got := MaxCommonNeighbors(starB.Finalize()); got != 1 {
		t.Fatalf("star MaxCommonNeighbors = %d, want 1", got)
	}
	// A path of length 2: the endpoints share the middle node.
	pb := graph.NewBuilder(3, 0)
	pb.AddEdge(0, 1)
	pb.AddEdge(1, 2)
	if got := MaxCommonNeighbors(pb.Finalize()); got != 1 {
		t.Fatalf("path MaxCommonNeighbors = %d, want 1", got)
	}
	// No edges → no pair has a common neighbour.
	if got := MaxCommonNeighbors(graph.New(4, 0)); got != 0 {
		t.Fatalf("empty graph MaxCommonNeighbors = %d, want 0", got)
	}
}

// bruteMaxCN computes the maximum common-neighbour count by checking all pairs.
func bruteMaxCN(g *graph.Graph) int {
	maxCN := 0
	for u := 0; u < g.NumNodes(); u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			if cn := g.CommonNeighbors(u, v); cn > maxCN {
				maxCN = cn
			}
		}
	}
	return maxCN
}

// Property: the two-hop enumeration agrees with the brute-force pairwise scan.
func TestMaxCommonNeighborsMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 35, 0.15)
		return MaxCommonNeighbors(g) == bruteMaxCN(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSensitivityAtDistance(t *testing.T) {
	if got := LocalSensitivityAtDistance(5, 0, 100); got != 5 {
		t.Fatalf("LS_0 = %d, want 5", got)
	}
	if got := LocalSensitivityAtDistance(5, 10, 100); got != 15 {
		t.Fatalf("LS_10 = %d, want 15", got)
	}
	// Capped at n-2.
	if got := LocalSensitivityAtDistance(5, 1000, 100); got != 98 {
		t.Fatalf("LS_1000 capped = %d, want 98", got)
	}
	// Degenerate tiny graphs never go negative.
	if got := LocalSensitivityAtDistance(0, 0, 1); got != 0 {
		t.Fatalf("LS for n=1 = %d, want 0", got)
	}
}

// Property: the ladder bound is monotone non-decreasing in t and changes by at
// most 1 when maxCN changes by 1 (the 1-Lipschitz property the mechanism
// relies on).
func TestLadderFunctionMonotoneLipschitzProperty(t *testing.T) {
	f := func(maxCNRaw, tRaw uint8, nRaw uint16) bool {
		n := int(nRaw%1000) + 3
		maxCN := int(maxCNRaw) % n
		tt := int(tRaw)
		a := LocalSensitivityAtDistance(maxCN, tt, n)
		b := LocalSensitivityAtDistance(maxCN, tt+1, n)
		c := LocalSensitivityAtDistance(maxCN+1, tt, n)
		return b >= a && c-a <= 1 && c >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLadderCountAccuracyOnModerateGraph(t *testing.T) {
	g := randomGraph(7, 300, 0.05)
	truth := float64(g.Triangles())
	if truth < 50 {
		t.Fatalf("test graph too sparse: %v triangles", truth)
	}
	var totalErr float64
	const trials = 30
	for i := 0; i < trials; i++ {
		est := LadderCount(dp.NewRand(int64(i)), g, 1.0, LadderOptions{})
		totalErr += math.Abs(float64(est) - truth)
	}
	meanRelErr := totalErr / trials / truth
	if meanRelErr > 0.25 {
		t.Fatalf("Ladder mean relative error = %v at eps=1, want < 0.25", meanRelErr)
	}
}

func TestLadderCountBeatsNaiveLaplace(t *testing.T) {
	g := randomGraph(8, 250, 0.05)
	truth := float64(g.Triangles())
	var ladderErr, naiveErr float64
	const trials = 25
	for i := 0; i < trials; i++ {
		ladderErr += math.Abs(float64(LadderCount(dp.NewRand(int64(i)), g, 0.5, LadderOptions{})) - truth)
		naiveErr += math.Abs(float64(NaiveLaplaceCount(dp.NewRand(int64(i)+1000), g, 0.5)) - truth)
	}
	if ladderErr >= naiveErr {
		t.Fatalf("Ladder error %v not better than naive Laplace %v", ladderErr, naiveErr)
	}
}

func TestLadderCountNeverNegative(t *testing.T) {
	g := randomGraph(9, 50, 0.02) // very sparse, few triangles
	for i := 0; i < 50; i++ {
		if est := LadderCount(dp.NewRand(int64(i)), g, 0.1, LadderOptions{}); est < 0 {
			t.Fatalf("LadderCount returned negative estimate %d", est)
		}
	}
}

func TestLadderCountTinyGraphDoesNotPanic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		b := graph.NewBuilder(n, 0)
		if n >= 2 {
			b.AddEdge(0, 1)
		}
		if est := LadderCount(dp.NewRand(1), b.Finalize(), 0.5, LadderOptions{}); est < 0 {
			t.Fatalf("tiny graph estimate negative: %d", est)
		}
	}
}

func TestLadderCountRespectsMaxRungsOption(t *testing.T) {
	g := complete(10)
	// With a single rung the output must stay within maxCN+... of the truth
	// most of the time; mostly this checks the option plumbing doesn't panic.
	est := LadderCount(dp.NewRand(3), g, 1.0, LadderOptions{MaxRungs: 5})
	if est < 0 {
		t.Fatalf("estimate negative: %d", est)
	}
}

func TestLadderCountPanicsOnBadEpsilon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero epsilon did not panic")
		}
	}()
	LadderCount(dp.NewRand(1), complete(4), 0, LadderOptions{})
}

func TestNaiveLaplaceCountBasics(t *testing.T) {
	g := complete(6)
	if est := NaiveLaplaceCount(dp.NewRand(1), g, 100); est < 0 {
		t.Fatalf("estimate negative: %d", est)
	}
	// With an enormous epsilon the noise is tiny relative to sensitivity=4.
	est := NaiveLaplaceCount(dp.NewRand(2), g, 1e6)
	if math.Abs(float64(est)-float64(g.Triangles())) > 1 {
		t.Fatalf("estimate %d far from truth %d at huge epsilon", est, g.Triangles())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero epsilon did not panic")
		}
	}()
	NaiveLaplaceCount(dp.NewRand(1), g, 0)
}

func TestPrivateCountUsesLadder(t *testing.T) {
	g := randomGraph(11, 200, 0.06)
	truth := float64(g.Triangles())
	var err float64
	const trials = 20
	for i := 0; i < trials; i++ {
		err += math.Abs(float64(PrivateCount(dp.NewRand(int64(i)), g, 1.0)) - truth)
	}
	if err/trials/truth > 0.3 {
		t.Fatalf("PrivateCount mean relative error %v too large", err/trials/truth)
	}
}

// Property: increasing epsilon does not hurt accuracy on average.
func TestLadderAccuracyImprovesWithEpsilon(t *testing.T) {
	g := randomGraph(13, 200, 0.06)
	truth := float64(g.Triangles())
	avgErr := func(eps float64) float64 {
		var total float64
		const trials = 25
		for i := 0; i < trials; i++ {
			total += math.Abs(float64(LadderCount(dp.NewRand(int64(i)*7+3), g, eps, LadderOptions{})) - truth)
		}
		return total / trials
	}
	if tight, loose := avgErr(2.0), avgErr(0.05); tight > loose {
		t.Fatalf("error at eps=2 (%v) exceeds error at eps=0.05 (%v)", tight, loose)
	}
}
