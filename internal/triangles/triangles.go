// Package triangles implements exact and differentially private triangle
// counting. The private estimator follows the Ladder framework of Zhang,
// Cormode, Procopiuc, Srivastava and Xiao (SIGMOD 2015), which the paper uses
// to fit the TriCycLe structural model (Appendix C.3.2): it combines "local
// sensitivity at distance t" with the exponential mechanism to release an
// accurate triangle count under pure ε-differential privacy.
package triangles

import (
	"fmt"
	"math"
	"math/rand"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/parallel"
)

// Count returns the exact number of triangles in g. It is a thin wrapper over
// the graph package, provided so that callers of this package never need to
// mix exact and private counting APIs.
func Count(g *graph.Graph) int64 {
	return g.Triangles()
}

// minShardEdges is the edge count below which MaxCommonNeighbors always runs
// sequentially: the per-worker counter arrays and fan-out cost more than the
// two-hop scan itself on small graphs.
const minShardEdges = parallel.MinShardEdges

// MaxCommonNeighbors returns the maximum, over all node pairs (u, v) with
// u ≠ v, of the number of common neighbours |Γ(u) ∩ Γ(v)|. This is the local
// sensitivity of triangle counting under edge adjacency: toggling the edge
// {u, v} changes the triangle count by exactly |Γ(u) ∩ Γ(v)|.
//
// Only pairs at distance two or less can have a common neighbour, so the
// implementation enumerates two-hop pairs through each node's CSR rows,
// scatter-counting wedge endpoints into a dense counter that is reset via a
// touched list, costing O(Σ_w d_w²) time and O(n) memory with no hashing. On
// graphs above the sharding threshold the scan runs on the shared worker pool
// (MaxCommonNeighborsWith) and returns the identical maximum.
func MaxCommonNeighbors(g *graph.Graph) int {
	return MaxCommonNeighborsWith(g, 0)
}

// MaxCommonNeighborsWith is MaxCommonNeighbors with an explicit worker count
// (≤ 0 selects the process default, parallel.Resolve). The source-node range
// is split by two-hop cost — Σ_{w ∈ Γ(u)} d_w per source u, the exact inner-
// loop trip count — so a hub's quadratic neighbourhood cannot capsize one
// shard. Each worker scatter-counts into its own dense counter array and the
// shard maxima reduce with max, which is order-insensitive, so the result is
// identical to the sequential scan for every worker count.
func MaxCommonNeighborsWith(g *graph.Graph, workers int) int {
	n := g.NumNodes()
	workers = parallel.Resolve(workers)
	if workers <= 1 || g.NumEdges() < minShardEdges {
		return maxCommonNeighborsRange(g, 0, n, make([]int32, n))
	}
	// Inclusive prefix sums of the per-source two-hop cost; one O(m) pass.
	cost := make([]int64, n+1)
	for u := 0; u < n; u++ {
		var c int64
		for _, w := range g.NeighborsView(u) {
			c += int64(g.Degree(int(w)))
		}
		cost[u+1] = cost[u] + c
	}
	shards := parallel.SplitWeighted(cost, workers)
	partial := make([]int, len(shards))
	parallel.Do(len(shards), func(s int) {
		r := shards[s]
		partial[s] = maxCommonNeighborsRange(g, r.Lo, r.Hi, make([]int32, n))
	})
	maxCN := 0
	for _, p := range partial {
		if p > maxCN {
			maxCN = p
		}
	}
	return maxCN
}

// maxCommonNeighborsRange runs the dense-counter two-hop scan for source
// nodes in [lo, hi). counts must be a zeroed slice of length NumNodes; it is
// returned zeroed again (reset via the touched list after every source).
func maxCommonNeighborsRange(g *graph.Graph, lo, hi int, counts []int32) int {
	maxCN := 0
	touched := make([]int32, 0, 256)
	for u := lo; u < hi; u++ {
		for _, w := range g.NeighborsView(u) {
			for _, v := range g.NeighborsView(int(w)) {
				if int(v) > u { // count each unordered pair once
					if counts[v] == 0 {
						touched = append(touched, v)
					}
					counts[v]++
				}
			}
		}
		for _, v := range touched {
			if c := int(counts[v]); c > maxCN {
				maxCN = c
			}
			counts[v] = 0
		}
		touched = touched[:0]
	}
	return maxCN
}

// LocalSensitivity returns LS(G), the local sensitivity of the triangle count
// at G, which equals MaxCommonNeighbors(g).
func LocalSensitivity(g *graph.Graph) int {
	return MaxCommonNeighbors(g)
}

// LocalSensitivityAtDistance returns an upper bound on the local sensitivity
// of triangle counting at distance t from g:
//
//	LS_t(G) ≤ min(maxCN(G) + t, n − 2)
//
// Each edge modification changes the common-neighbour count of any fixed pair
// by at most one, so t modifications increase the maximum by at most t, and
// no pair can ever share more than n−2 common neighbours. The bound is
// monotone in t and 1-Lipschitz across neighbouring graphs, which makes it a
// valid ladder function for the Ladder mechanism.
func LocalSensitivityAtDistance(maxCN, t, n int) int {
	cap := n - 2
	if cap < 0 {
		cap = 0
	}
	v := maxCN + t
	if v > cap {
		v = cap
	}
	if v < 0 {
		v = 0
	}
	return v
}

// LadderOptions configures the Ladder triangle estimator.
type LadderOptions struct {
	// MaxRungs caps the number of ladder rungs considered on each side of the
	// true count. Rung t carries weight exp(−ε·t/2), so once that factor is
	// negligible further rungs cannot influence the sample. Zero means choose
	// automatically from epsilon.
	MaxRungs int
}

// LadderCount releases an ε-differentially private estimate of the triangle
// count of g using the Ladder framework.
//
// The mechanism centres a sequence of "rungs" on the true count f(G). Rung 0
// is the singleton {f(G)}; rung t (t ≥ 1) contains the integers whose distance
// from f(G) lies in (B_{t−1}, B_t], where B_t = Σ_{s=1..t} LS_s(G) accumulates
// the ladder function. Values in rung t receive utility −t, and an output is
// drawn with the exponential mechanism (utility sensitivity 1), i.e. rung t is
// selected with probability proportional to |rung t| · exp(−ε·t/2) and a value
// is then drawn uniformly inside the rung. Negative candidates are clamped to
// zero after sampling (post-processing).
func LadderCount(rng *rand.Rand, g *graph.Graph, epsilon float64, opts LadderOptions) int64 {
	return LadderCountWith(rng, g, epsilon, opts, 0)
}

// LadderCountWith is LadderCount with an explicit worker count (≤ 0 selects
// the process default) for the two exact measurements the mechanism centres
// on — the triangle count and the maximum common-neighbour count. Both are
// bit-identical for every worker count and the mechanism's random draws stay
// sequential on rng, so the released estimate depends only on (graph,
// epsilon, opts, rng state).
func LadderCountWith(rng *rand.Rand, g *graph.Graph, epsilon float64, opts LadderOptions, workers int) int64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("triangles: non-positive epsilon %v", epsilon))
	}
	n := g.NumNodes()
	trueCount := float64(g.TrianglesWith(workers))
	maxCN := MaxCommonNeighborsWith(g, workers)

	maxRungs := opts.MaxRungs
	if maxRungs <= 0 {
		// Beyond weight exp(-eps*t/2) < 1e-12 the rungs are irrelevant.
		maxRungs = int(math.Ceil(2*27.7/epsilon)) + 1
		if maxRungs > 200000 {
			maxRungs = 200000
		}
	}

	// Rung widths on each side. Rung t spans width LS_t(G) per side.
	type rung struct {
		t     int
		size  float64 // number of integer candidates in the rung
		lower float64 // distance band (lower, upper] from the centre
		upper float64
	}
	rungs := make([]rung, 0, maxRungs+1)
	rungs = append(rungs, rung{t: 0, size: 1})
	cum := 0.0
	for t := 1; t <= maxRungs; t++ {
		width := float64(LocalSensitivityAtDistance(maxCN, t, n))
		if width <= 0 {
			width = 1 // degenerate tiny graphs: keep the ladder well-formed
		}
		r := rung{t: t, lower: cum, upper: cum + width, size: 2 * width}
		rungs = append(rungs, r)
		cum += width
	}

	// Select a rung with the exponential mechanism over utility −t.
	scores := make([]float64, len(rungs))
	for i, r := range rungs {
		// Fold the rung size into the score so that the utility-based
		// exponential mechanism over individual integer outputs is simulated
		// exactly: Pr[rung] ∝ size · exp(−ε·t/2).
		scores[i] = -float64(r.t) + 2*math.Log(r.size)/epsilon
	}
	idx := dp.ExponentialMechanism(rng, scores, 1, epsilon)
	chosen := rungs[idx]

	var value float64
	if chosen.t == 0 {
		value = trueCount
	} else {
		// Uniform offset within (lower, upper], mirrored to either side.
		offset := chosen.lower + rng.Float64()*(chosen.upper-chosen.lower)
		if offset < chosen.lower+1 {
			offset = chosen.lower + 1
		}
		if rng.Intn(2) == 0 {
			value = trueCount + offset
		} else {
			value = trueCount - offset
		}
	}
	if value < 0 {
		value = 0
	}
	return int64(math.Round(value))
}

// NaiveLaplaceCount releases the triangle count using the Laplace mechanism
// calibrated to the worst-case global sensitivity n−2 (a single edge can close
// up to n−2 triangles). It is provided as the baseline the paper argues
// against; on realistic graphs its error is enormous compared to LadderCount.
func NaiveLaplaceCount(rng *rand.Rand, g *graph.Graph, epsilon float64) int64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("triangles: non-positive epsilon %v", epsilon))
	}
	sens := float64(g.NumNodes() - 2)
	if sens < 1 {
		sens = 1
	}
	noisy := dp.LaplaceMechanism(rng, float64(g.Triangles()), sens, epsilon)
	if noisy < 0 {
		noisy = 0
	}
	return int64(math.Round(noisy))
}

// PrivateCount is the estimator AGM-DP uses by default: the Ladder mechanism
// with automatic rung selection.
func PrivateCount(rng *rand.Rand, g *graph.Graph, epsilon float64) int64 {
	return LadderCount(rng, g, epsilon, LadderOptions{})
}

// PrivateCountWith is PrivateCount with an explicit worker count for the
// exact measurements; see LadderCountWith.
func PrivateCountWith(rng *rand.Rand, g *graph.Graph, epsilon float64, workers int) int64 {
	return LadderCountWith(rng, g, epsilon, LadderOptions{}, workers)
}
