package triangles

import (
	"math/rand"
	"testing"

	"agmdp/internal/graph"
)

// fixtureGraph builds a random graph above the sharding threshold with an
// optional hub to exercise the skewed-cost split.
func fixtureGraph(t testing.TB, seed int64, n int, hub bool) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, 5*n)
	for k := 0; k < 4*n; k++ {
		edges = append(edges, graph.Edge{U: rng.Intn(n), V: rng.Intn(n)})
	}
	if hub {
		for i := 1; i < n/2; i++ {
			edges = append(edges, graph.Edge{U: 0, V: i})
		}
	}
	g := graph.FromEdges(n, 0, edges)
	if g.NumEdges() < minShardEdges {
		t.Fatalf("fixture below sharding threshold: %d edges", g.NumEdges())
	}
	return g
}

func TestMaxCommonNeighborsWithMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		hub  bool
	}{{1, false}, {2, false}, {3, true}, {4, true}} {
		g := fixtureGraph(t, tc.seed, 2000, tc.hub)
		want := MaxCommonNeighborsWith(g, 1)
		for _, workers := range []int{2, 3, 8, 32} {
			if got := MaxCommonNeighborsWith(g, workers); got != want {
				t.Fatalf("seed %d hub %v workers %d: MaxCN = %d, want %d",
					tc.seed, tc.hub, workers, got, want)
			}
		}
	}
}

func TestMaxCommonNeighborsWithSmallGraphExact(t *testing.T) {
	// K4 minus an edge: nodes 0 and 1 share both 2 and 3.
	g := graph.FromEdges(4, 0, []graph.Edge{{U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	for _, workers := range []int{1, 4} {
		if got := MaxCommonNeighborsWith(g, workers); got != 2 {
			t.Fatalf("workers %d: MaxCN = %d, want 2", workers, got)
		}
	}
	if got := MaxCommonNeighborsWith(graph.New(0, 0), 4); got != 0 {
		t.Fatalf("empty graph MaxCN = %d", got)
	}
}

func BenchmarkMaxCommonNeighborsSequential(b *testing.B) {
	g := fixtureGraph(b, 9, 4000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxCommonNeighborsWith(g, 1)
	}
}

func BenchmarkMaxCommonNeighborsParallel(b *testing.B) {
	g := fixtureGraph(b, 9, 4000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxCommonNeighborsWith(g, 0)
	}
}
