package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRelativeError(t *testing.T) {
	cases := []struct{ truth, est, want float64 }{
		{10, 12, 0.2},
		{10, 10, 0},
		{10, 8, 0.2},
		{-4, -5, 0.25},
		{0, 0, 0},
		{0, 3, 3},
	}
	for _, c := range cases {
		if got := RelativeError(c.truth, c.est); !approx(got, c.want, 1e-12) {
			t.Fatalf("RelativeError(%v, %v) = %v, want %v", c.truth, c.est, got, c.want)
		}
	}
}

func TestMeanAbsoluteError(t *testing.T) {
	if got := MeanAbsoluteError([]float64{1, 2, 3}, []float64{1, 4, 1}); !approx(got, 4.0/3, 1e-12) {
		t.Fatalf("MAE = %v, want 4/3", got)
	}
	mustPanic(t, func() { MeanAbsoluteError([]float64{1}, []float64{1, 2}) }, "length mismatch")
	mustPanic(t, func() { MeanAbsoluteError(nil, nil) }, "empty")
}

func TestMeanRelativeError(t *testing.T) {
	if got := MeanRelativeError([]float64{10, 20}, []float64{12, 18}); !approx(got, 0.15, 1e-12) {
		t.Fatalf("MRE = %v, want 0.15", got)
	}
	mustPanic(t, func() { MeanRelativeError([]float64{1}, []float64{1, 2}) }, "length mismatch")
	mustPanic(t, func() { MeanRelativeError(nil, nil) }, "empty")
}

func TestHellingerDistanceBasics(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := HellingerDistance(p, p); !approx(got, 0, 1e-12) {
		t.Fatalf("identical distributions: H = %v, want 0", got)
	}
	// Disjoint supports give the maximum distance 1.
	if got := HellingerDistance([]float64{1, 0}, []float64{0, 1}); !approx(got, 1, 1e-12) {
		t.Fatalf("disjoint distributions: H = %v, want 1", got)
	}
	// Known value: H({1,0},{0.5,0.5}) = sqrt(1 - 1/sqrt(2)).
	want := math.Sqrt(1 - 1/math.Sqrt2)
	if got := HellingerDistance([]float64{1, 0}, []float64{0.5, 0.5}); !approx(got, want, 1e-12) {
		t.Fatalf("H = %v, want %v", got, want)
	}
	mustPanic(t, func() { HellingerDistance([]float64{1}, []float64{0.5, 0.5}) }, "length mismatch")
	mustPanic(t, func() { HellingerDistance([]float64{-0.1, 1.1}, []float64{0.5, 0.5}) }, "negative probability")
}

func TestHellingerSymmetryProperty(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if n == 0 {
			return true
		}
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := 0; i < n; i++ {
			p[i] = float64(rawA[i]) + 1
			q[i] = float64(rawB[i]) + 1
			sp += p[i]
			sq += q[i]
		}
		for i := 0; i < n; i++ {
			p[i] /= sp
			q[i] /= sq
		}
		h1 := HellingerDistance(p, q)
		h2 := HellingerDistance(q, p)
		return approx(h1, h2, 1e-12) && h1 >= 0 && h1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeDistribution(t *testing.T) {
	dist := DegreeDistribution([]int{0, 1, 1, 3})
	want := []float64{0.25, 0.5, 0, 0.25}
	if len(dist) != len(want) {
		t.Fatalf("distribution length = %d, want %d", len(dist), len(want))
	}
	for i := range want {
		if !approx(dist[i], want[i], 1e-12) {
			t.Fatalf("distribution = %v, want %v", dist, want)
		}
	}
	if len(DegreeDistribution(nil)) != 1 {
		t.Fatal("empty degree multiset should yield a single-entry distribution")
	}
	mustPanic(t, func() { DegreeDistribution([]int{-1}) }, "negative degree")
}

func TestDegreeHellinger(t *testing.T) {
	a := []int{1, 1, 2, 2}
	if got := DegreeHellinger(a, a); !approx(got, 0, 1e-12) {
		t.Fatalf("identical sequences: H = %v, want 0", got)
	}
	// Different supports of different lengths must be handled by padding.
	b := []int{5, 5, 5, 5}
	if got := DegreeHellinger(a, b); !approx(got, 1, 1e-12) {
		t.Fatalf("disjoint degree supports: H = %v, want 1", got)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// Identical samples → 0.
	if got := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3}); !approx(got, 0, 1e-12) {
		t.Fatalf("identical samples KS = %v, want 0", got)
	}
	// Completely separated samples → 1.
	if got := KolmogorovSmirnov([]float64{1, 2}, []float64{10, 11}); !approx(got, 1, 1e-12) {
		t.Fatalf("separated samples KS = %v, want 1", got)
	}
	// Known value: {1,2,3,4} vs {3,4,5,6}: max gap is 0.5 at x ∈ [2,3).
	if got := KolmogorovSmirnov([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6}); !approx(got, 0.5, 1e-12) {
		t.Fatalf("KS = %v, want 0.5", got)
	}
	mustPanic(t, func() { KolmogorovSmirnov(nil, []float64{1}) }, "empty sample")
}

func TestDegreeKS(t *testing.T) {
	a := []int{1, 2, 3, 4}
	b := []int{1, 2, 3, 4}
	if got := DegreeKS(a, b); !approx(got, 0, 1e-12) {
		t.Fatalf("DegreeKS identical = %v, want 0", got)
	}
	if got := DegreeKS([]int{1, 1}, []int{9, 9}); !approx(got, 1, 1e-12) {
		t.Fatalf("DegreeKS separated = %v, want 1", got)
	}
}

// Property: KS lies in [0, 1] and is symmetric.
func TestKSRangeSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 1+rng.Intn(50))
		b := make([]float64, 1+rng.Intn(50))
		for i := range a {
			a[i] = float64(rng.Intn(20))
		}
		for i := range b {
			b[i] = float64(rng.Intn(20))
		}
		ks := KolmogorovSmirnov(a, b)
		return ks >= 0 && ks <= 1+1e-12 && approx(ks, KolmogorovSmirnov(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCCDF(t *testing.T) {
	points := CCDF([]float64{1, 1, 2, 3})
	// Values 1, 2, 3 with CCDF fractions 0.5, 0.25, 0.
	if len(points) != 3 {
		t.Fatalf("CCDF has %d points, want 3", len(points))
	}
	wants := []CCDFPoint{{1, 0.5}, {2, 0.25}, {3, 0}}
	for i, w := range wants {
		if points[i].Value != w.Value || !approx(points[i].Fraction, w.Fraction, 1e-12) {
			t.Fatalf("CCDF[%d] = %+v, want %+v", i, points[i], w)
		}
	}
	if CCDF(nil) != nil {
		t.Fatal("CCDF(nil) should be nil")
	}
}

func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v % 16)
		}
		points := CCDF(samples)
		for i := 1; i < len(points); i++ {
			if points[i].Value <= points[i-1].Value {
				return false
			}
			if points[i].Fraction > points[i-1].Fraction+1e-12 {
				return false
			}
		}
		return len(points) > 0 && approx(points[len(points)-1].Fraction, 0, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !approx(got, 2.5, 1e-12) {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(s, 0.5); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if got := Quantile(s, 0); got != 1 {
		t.Fatalf("0-quantile = %v, want 1", got)
	}
	if got := Quantile(s, 1); got != 10 {
		t.Fatalf("1-quantile = %v, want 10", got)
	}
	mustPanic(t, func() { Quantile(nil, 0.5) }, "empty sample")
	mustPanic(t, func() { Quantile(s, 1.5) }, "q out of range")
}

func mustPanic(t *testing.T, fn func(), label string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	fn()
}
