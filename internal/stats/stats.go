// Package stats provides the evaluation statistics used in Section 5.1 of the
// paper to compare synthetic graphs against their inputs: the
// Kolmogorov–Smirnov statistic and Hellinger distance between degree
// distributions, the Hellinger distance and mean absolute error between
// attribute-correlation distributions, relative errors for scalar statistics,
// and complementary-cumulative-distribution (CCDF) utilities for plotting
// degree and clustering-coefficient distributions (Figures 2–3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// RelativeError returns |estimate − truth| / |truth|. When the true value is
// zero it returns 0 if the estimate is also zero and |estimate| otherwise,
// mirroring the convention used in the paper's tables (the MRE of a quantity
// whose true value is zero is reported as the absolute error).
func RelativeError(truth, estimate float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Abs(estimate)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}

// MeanAbsoluteError returns the mean of |a_i − b_i| over paired slices. It
// panics if the slices have different lengths or are empty.
func MeanAbsoluteError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: MAE over slices of different lengths %d, %d", len(a), len(b)))
	}
	if len(a) == 0 {
		panic("stats: MAE over empty slices")
	}
	total := 0.0
	for i := range a {
		total += math.Abs(a[i] - b[i])
	}
	return total / float64(len(a))
}

// MeanRelativeError returns the mean of RelativeError over paired slices.
func MeanRelativeError(truth, estimate []float64) float64 {
	if len(truth) != len(estimate) {
		panic(fmt.Sprintf("stats: MRE over slices of different lengths %d, %d", len(truth), len(estimate)))
	}
	if len(truth) == 0 {
		panic("stats: MRE over empty slices")
	}
	total := 0.0
	for i := range truth {
		total += RelativeError(truth[i], estimate[i])
	}
	return total / float64(len(truth))
}

// HellingerDistance returns the Hellinger distance between two discrete
// probability distributions over the same index set:
//
//	H(P, Q) = (1/√2) · √( Σ_i (√p_i − √q_i)² )
//
// The result lies in [0, 1]; 0 means identical distributions.
func HellingerDistance(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: Hellinger over distributions of different lengths %d, %d", len(p), len(q)))
	}
	sum := 0.0
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			panic("stats: Hellinger over negative probabilities")
		}
		d := math.Sqrt(p[i]) - math.Sqrt(q[i])
		sum += d * d
	}
	return math.Sqrt(sum) / math.Sqrt2
}

// DegreeDistribution converts a degree multiset into a probability
// distribution indexed by degree value (0..maxDegree).
func DegreeDistribution(degrees []int) []float64 {
	maxDeg := 0
	for _, d := range degrees {
		if d < 0 {
			panic("stats: negative degree")
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	dist := make([]float64, maxDeg+1)
	if len(degrees) == 0 {
		return dist
	}
	for _, d := range degrees {
		dist[d]++
	}
	for i := range dist {
		dist[i] /= float64(len(degrees))
	}
	return dist
}

// DegreeHellinger returns the Hellinger distance H_S between the degree
// distributions induced by two degree multisets, padding the shorter support
// with zeros (Section 5.1 of the paper).
func DegreeHellinger(a, b []int) float64 {
	da := DegreeDistribution(a)
	db := DegreeDistribution(b)
	if len(da) < len(db) {
		da = append(da, make([]float64, len(db)-len(da))...)
	}
	if len(db) < len(da) {
		db = append(db, make([]float64, len(da)-len(db))...)
	}
	return HellingerDistance(da, db)
}

// KolmogorovSmirnov returns the KS statistic between the empirical cumulative
// distribution functions of two samples: the maximum absolute difference
// between the two CDFs. Both samples must be non-empty.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KS over an empty sample")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	maxDiff := 0.0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if d := math.Abs(fa - fb); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// DegreeKS returns the KS statistic between the degree distributions of two
// degree multisets, matching the KS_S column of the paper's tables.
func DegreeKS(a, b []int) float64 {
	fa := make([]float64, len(a))
	fb := make([]float64, len(b))
	for i, d := range a {
		fa[i] = float64(d)
	}
	for i, d := range b {
		fb[i] = float64(d)
	}
	return KolmogorovSmirnov(fa, fb)
}

// CCDFPoint is one point of a complementary cumulative distribution function:
// Fraction is the proportion of samples strictly greater than Value.
type CCDFPoint struct {
	Value    float64
	Fraction float64
}

// CCDF computes the complementary cumulative distribution of a sample at each
// distinct sample value, as plotted on the y-axes of Figures 2 and 3.
func CCDF(samples []float64) []CCDFPoint {
	if len(samples) == 0 {
		return nil
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := float64(len(s))
	var points []CCDFPoint
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		points = append(points, CCDFPoint{Value: s[i], Fraction: float64(len(s)-j) / n})
		i = j
	}
	return points
}

// Mean returns the arithmetic mean of a sample (0 for an empty sample).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range samples {
		total += v
	}
	return total / float64(len(samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sample using the
// nearest-rank method. It panics on an empty sample or q outside [0, 1].
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0, 1]", q))
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
