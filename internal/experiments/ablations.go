package experiments

import (
	"fmt"
	"math"
	"strings"

	"agmdp/internal/core"
	"agmdp/internal/datasets"
	"agmdp/internal/degrees"
	"agmdp/internal/dp"
	"agmdp/internal/stats"
	"agmdp/internal/structural"
	"agmdp/internal/triangles"
)

// BudgetSplitResult compares alternative privacy-budget splits for
// AGMDP-TriCycLe on one dataset at one ε (the design choice Section 4 of the
// paper fixes to an even four-way split).
type BudgetSplitResult struct {
	Dataset string
	Epsilon float64
	// Splits maps a human-readable split label to the averaged metrics.
	Splits map[string]GraphMetrics
}

// RunAblationBudgetSplit compares the paper's even four-way split against two
// alternatives that favour the structural parameters or the attribute
// parameters.
func RunAblationBudgetSplit(datasetName string, epsilon float64, opts Options) (*BudgetSplitResult, error) {
	opts = opts.withDefaults()
	profile, err := opts.profileFor(datasetName)
	if err != nil {
		return nil, err
	}
	input := datasets.Generate(dp.NewRand(opts.Seed), profile)
	splits := map[string][]float64{
		"even (paper)":      {0.25, 0.25, 0.25, 0.25},
		"structure-heavy":   {0.15, 0.15, 0.35, 0.35},
		"correlation-heavy": {0.15, 0.45, 0.20, 0.20},
	}
	result := &BudgetSplitResult{Dataset: datasetName, Epsilon: epsilon, Splits: map[string]GraphMetrics{}}
	for label, weights := range splits {
		var all []GraphMetrics
		for trial := 0; trial < opts.Trials; trial++ {
			rng := dp.NewRand(opts.Seed + int64(trial)*31 + 7)
			split := make([]float64, len(weights))
			for i, w := range weights {
				split[i] = epsilon * w
			}
			synth, _, err := core.Synthesize(rng, input, core.Config{Epsilon: epsilon, BudgetSplit: split},
				core.SampleOptions{Iterations: opts.SampleIterations})
			if err != nil {
				return nil, err
			}
			all = append(all, CompareGraphs(input, synth))
		}
		result.Splits[label] = average(all)
	}
	return result, nil
}

// FormatBudgetSplit renders a budget-split ablation result.
func FormatBudgetSplit(r *BudgetSplitResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — budget split for AGMDP-TriCL on %s at eps=%.3g\n", r.Dataset, r.Epsilon)
	fmt.Fprintf(&b, "%-20s %10s %8s %8s %8s\n", "split", "H_ThetaF", "KS_S", "n_tri", "C_avg")
	for label, m := range r.Splits {
		fmt.Fprintf(&b, "%-20s %10.3f %8.3f %8.3f %8.3f\n", label, m.HellingerThetaF, m.KSDegree, m.MRETriangles, m.MREAvgClustering)
	}
	return b.String()
}

// ConstrainedInferenceResult compares the degree-sequence error with and
// without the Hay et al. isotonic post-processing step.
type ConstrainedInferenceResult struct {
	Dataset         string
	Epsilon         float64
	L1WithInference float64
	L1Naive         float64
}

// RunAblationConstrainedInference measures the average per-node L1 error of
// the private degree sequence with and without constrained inference.
func RunAblationConstrainedInference(datasetName string, epsilon float64, opts Options) (*ConstrainedInferenceResult, error) {
	opts = opts.withDefaults()
	profile, err := opts.profileFor(datasetName)
	if err != nil {
		return nil, err
	}
	input := datasets.Generate(dp.NewRand(opts.Seed), profile)
	truth := input.DegreeSequence()
	res := &ConstrainedInferenceResult{Dataset: datasetName, Epsilon: epsilon}
	for trial := 0; trial < opts.Trials; trial++ {
		rngA := dp.NewRand(opts.Seed + int64(trial))
		rngB := dp.NewRand(opts.Seed + int64(trial))
		with := degrees.PrivateSequenceFromDegrees(rngA, input.Degrees(), input.NumNodes(), epsilon,
			degrees.Options{ConstrainedInference: true, Round: false})
		naive := degrees.PrivateSequenceFromDegrees(rngB, input.Degrees(), input.NumNodes(), epsilon,
			degrees.Options{ConstrainedInference: false, Round: false})
		for i := range truth {
			res.L1WithInference += math.Abs(with[i] - float64(truth[i]))
			res.L1Naive += math.Abs(naive[i] - float64(truth[i]))
		}
	}
	norm := float64(opts.Trials * len(truth))
	res.L1WithInference /= norm
	res.L1Naive /= norm
	return res, nil
}

// TriangleEstimatorResult compares the Ladder triangle estimator against the
// naive Laplace baseline.
type TriangleEstimatorResult struct {
	Dataset   string
	Epsilon   float64
	Truth     int64
	LadderMRE float64
	NaiveMRE  float64
}

// RunAblationTriangleEstimators measures the mean relative error of the two
// private triangle-count estimators used (or rejected) by the paper.
func RunAblationTriangleEstimators(datasetName string, epsilon float64, opts Options) (*TriangleEstimatorResult, error) {
	opts = opts.withDefaults()
	profile, err := opts.profileFor(datasetName)
	if err != nil {
		return nil, err
	}
	input := datasets.Generate(dp.NewRand(opts.Seed), profile)
	truth := input.Triangles()
	res := &TriangleEstimatorResult{Dataset: datasetName, Epsilon: epsilon, Truth: truth}
	for trial := 0; trial < opts.Trials; trial++ {
		seed := opts.Seed + int64(trial)*13
		ladder := triangles.PrivateCount(dp.NewRand(seed), input, epsilon)
		naive := triangles.NaiveLaplaceCount(dp.NewRand(seed+1), input, epsilon)
		res.LadderMRE += stats.RelativeError(float64(truth), float64(ladder))
		res.NaiveMRE += stats.RelativeError(float64(truth), float64(naive))
	}
	res.LadderMRE /= float64(opts.Trials)
	res.NaiveMRE /= float64(opts.Trials)
	return res, nil
}

// PostProcessResult compares TriCycLe with and without the orphan-node
// post-processing extension (Algorithm 2).
type PostProcessResult struct {
	Dataset        string
	OrphansWith    float64
	OrphansWithout float64
	EdgesWith      float64
	EdgesWithout   float64
}

// RunAblationPostProcess measures the number of orphaned nodes in TriCycLe
// output with and without Algorithm 2.
func RunAblationPostProcess(datasetName string, opts Options) (*PostProcessResult, error) {
	opts = opts.withDefaults()
	profile, err := opts.profileFor(datasetName)
	if err != nil {
		return nil, err
	}
	input := datasets.Generate(dp.NewRand(opts.Seed), profile)
	params := structural.Params{Degrees: input.DegreeSequence(), Triangles: input.Triangles()}
	res := &PostProcessResult{Dataset: datasetName}
	for trial := 0; trial < opts.Trials; trial++ {
		rngA := dp.NewRand(opts.Seed + int64(trial)*17)
		rngB := dp.NewRand(opts.Seed + int64(trial)*17)
		with := structural.TriCycLe{}.Generate(rngA, input.NumNodes(), params, nil)
		without := structural.TriCycLe{DisablePostProcess: true}.Generate(rngB, input.NumNodes(), params, nil)
		res.OrphansWith += float64(len(with.OrphanedNodes()))
		res.OrphansWithout += float64(len(without.OrphanedNodes()))
		res.EdgesWith += float64(with.NumEdges())
		res.EdgesWithout += float64(without.NumEdges())
	}
	trials := float64(opts.Trials)
	res.OrphansWith /= trials
	res.OrphansWithout /= trials
	res.EdgesWith /= trials
	res.EdgesWithout /= trials
	return res, nil
}
