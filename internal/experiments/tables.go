package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"agmdp/internal/core"
	"agmdp/internal/datasets"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/structural"
)

// Options configures an experiment run. The zero value selects the defaults
// described in EXPERIMENTS.md: each dataset at its profile's default scale,
// the paper's ε grid, and a small number of trials per setting so a full run
// completes in laptop time.
type Options struct {
	// Scale overrides the dataset's DefaultScale when positive.
	Scale float64
	// Trials is the number of synthetic graphs averaged per setting
	// (default 3; the paper uses 1000/100).
	Trials int
	// Epsilons overrides the dataset's privacy-budget grid when non-empty.
	Epsilons []float64
	// Seed selects the base random seed (default 1).
	Seed int64
	// SampleIterations is passed through to the AGM sampling step (default 2).
	SampleIterations int
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SampleIterations <= 0 {
		o.SampleIterations = 2
	}
	return o
}

// profileFor resolves and scales the dataset profile for a run.
func (o Options) profileFor(name string) (datasets.Profile, error) {
	p, err := datasets.ByName(name)
	if err != nil {
		return datasets.Profile{}, err
	}
	scale := o.Scale
	if scale <= 0 {
		scale = p.DefaultScale
	}
	if err := datasets.CheckScale(scale); err != nil {
		return datasets.Profile{}, err
	}
	return p.Scaled(scale), nil
}

// TableRow is one row of Tables 2–5: one (model, ε) setting on one dataset.
// Epsilon 0 denotes the non-private reference rows.
type TableRow struct {
	Dataset string
	Model   string
	Epsilon float64
	Metrics GraphMetrics
	Trials  int
}

// TableResult holds a full Table 2–5 reproduction for one dataset.
type TableResult struct {
	Dataset string
	// InputSummary records the achieved statistics of the generated input
	// graph (our stand-in for Table 6's row for this dataset).
	InputSummary graph.Summary
	Rows         []TableRow
}

// tableNumbers maps dataset names to the paper's table numbering.
var tableNumbers = map[string]int{
	"lastfm":   2,
	"petster":  3,
	"epinions": 4,
	"pokec":    5,
}

// RunTable reproduces Table 2, 3, 4 or 5 (selected by dataset name): it
// generates the calibrated input graph, synthesizes graphs with the
// non-private AGM-FCL and AGM-TriCL models and with AGMDP-FCL and
// AGMDP-TriCL at every ε in the grid, and reports the averaged error metrics.
func RunTable(datasetName string, opts Options) (*TableResult, error) {
	opts = opts.withDefaults()
	profile, err := opts.profileFor(datasetName)
	if err != nil {
		return nil, err
	}
	epsilons := opts.Epsilons
	if len(epsilons) == 0 {
		epsilons = profile.Epsilons
	}
	rng := dp.NewRand(opts.Seed)
	input := datasets.Generate(rng, profile)

	result := &TableResult{
		Dataset:      datasetName,
		InputSummary: input.Summarize(),
	}

	models := []struct {
		label string
		model structural.Model
	}{
		{"FCL", structural.FCL{}},
		{"TriCL", structural.TriCycLe{}},
	}

	// Non-private reference rows (AGM-FCL, AGM-TriCL).
	for _, m := range models {
		metrics, err := averageNonPrivate(rng, input, m.model, opts)
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, TableRow{
			Dataset: datasetName, Model: "AGM-" + m.label, Epsilon: 0,
			Metrics: metrics, Trials: opts.Trials,
		})
	}

	// Private rows for each ε, strongest privacy last (as in the paper).
	sorted := append([]float64(nil), epsilons...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for _, eps := range sorted {
		for _, m := range models {
			metrics, err := averagePrivate(rng, input, m.model, eps, opts)
			if err != nil {
				return nil, err
			}
			result.Rows = append(result.Rows, TableRow{
				Dataset: datasetName, Model: "AGMDP-" + m.label, Epsilon: eps,
				Metrics: metrics, Trials: opts.Trials,
			})
		}
	}
	return result, nil
}

// averageNonPrivate synthesizes opts.Trials graphs with the exact AGM
// parameters and averages the comparison metrics.
func averageNonPrivate(rng *rand.Rand, input *graph.Graph, model structural.Model, opts Options) (GraphMetrics, error) {
	var all []GraphMetrics
	for trial := 0; trial < opts.Trials; trial++ {
		synth, _, err := core.SynthesizeNonPrivate(rng, input, model, core.SampleOptions{Iterations: opts.SampleIterations})
		if err != nil {
			return GraphMetrics{}, err
		}
		all = append(all, CompareGraphs(input, synth))
	}
	return average(all), nil
}

// averagePrivate synthesizes opts.Trials graphs under ε-DP and averages the
// comparison metrics.
func averagePrivate(rng *rand.Rand, input *graph.Graph, model structural.Model, epsilon float64, opts Options) (GraphMetrics, error) {
	var all []GraphMetrics
	for trial := 0; trial < opts.Trials; trial++ {
		synth, _, err := core.Synthesize(rng, input, core.Config{Epsilon: epsilon, Model: model},
			core.SampleOptions{Iterations: opts.SampleIterations})
		if err != nil {
			return GraphMetrics{}, err
		}
		all = append(all, CompareGraphs(input, synth))
	}
	return average(all), nil
}

// Format renders the table in the layout of the paper's Tables 2–5.
func (r *TableResult) Format() string {
	var b strings.Builder
	num := tableNumbers[r.Dataset]
	fmt.Fprintf(&b, "Table %d — %s (n=%d, m=%d, n∆=%d, C̄=%.3f)\n",
		num, r.Dataset, r.InputSummary.Nodes, r.InputSummary.Edges,
		r.InputSummary.Triangles, r.InputSummary.AvgLocalClustering)
	fmt.Fprintf(&b, "%-12s %-14s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"epsilon", "model", "ThetaF", "H_ThetaF", "KS_S", "H_S", "n_tri", "C_avg", "C_glob", "m")
	for _, row := range r.Rows {
		eps := "non-private"
		if row.Epsilon > 0 {
			eps = fmt.Sprintf("%.4g", row.Epsilon)
		}
		m := row.Metrics
		fmt.Fprintf(&b, "%-12s %-14s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.4f\n",
			eps, row.Model, m.MREThetaF, m.HellingerThetaF, m.KSDegree, m.HellingerDegree,
			m.MRETriangles, m.MREAvgClustering, m.MREGlobalClustering, m.MREEdges)
	}
	return b.String()
}

// Table6Row is one row of Table 6: the headline statistics of a dataset.
type Table6Row struct {
	Dataset string
	Summary graph.Summary
	Target  datasets.Profile
}

// RunTable6 generates every dataset (at the run's scale) and reports the
// achieved dataset statistics next to the paper's targets.
func RunTable6(opts Options) ([]Table6Row, error) {
	opts = opts.withDefaults()
	var rows []Table6Row
	for _, p := range datasets.AllProfiles() {
		profile, err := opts.profileFor(p.Name)
		if err != nil {
			return nil, err
		}
		g := datasets.Generate(dp.NewRand(opts.Seed), profile)
		rows = append(rows, Table6Row{Dataset: p.Name, Summary: g.Summarize(), Target: profile})
	}
	return rows, nil
}

// FormatTable6 renders the dataset-property table.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 6 — dataset properties (generated stand-ins; targets in parentheses)")
	fmt.Fprintf(&b, "%-10s %14s %16s %12s %10s %14s %8s\n", "dataset", "n", "m", "dmax", "davg", "n_tri", "C_avg")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7d (%5d) %8d (%6d) %5d (%4d) %10.1f %14d %8.3f\n",
			r.Dataset, r.Summary.Nodes, r.Target.Nodes, r.Summary.Edges, r.Target.Edges,
			r.Summary.MaxDegree, r.Target.MaxDegree, r.Summary.AverageDegree,
			r.Summary.Triangles, r.Summary.AvgLocalClustering)
	}
	return b.String()
}
