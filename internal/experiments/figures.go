package experiments

import (
	"fmt"
	"strings"

	"agmdp/internal/attrs"
	"agmdp/internal/core"
	"agmdp/internal/datasets"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/stats"
	"agmdp/internal/structural"
)

// figureEpsilons is the ε grid used by Figures 1 and 5 of the paper.
var figureEpsilons = []float64{0.1, 0.2, 0.3, 0.5, 1.0}

// Figure1Point holds the MAE of the edge-truncation estimator for one
// (dataset, ε) cell, with the heuristic k = n^{1/3} and with the best k found
// by a sweep (the dashed vs solid lines of Figure 1).
type Figure1Point struct {
	Dataset    string
	Epsilon    float64
	HeuristicK int
	MAEHeurK   float64
	BestK      int
	MAEBestK   float64
}

// RunFigure1 reproduces Figure 1: for each dataset and each ε it measures the
// mean absolute error between the true ΘF and the edge-truncation estimate,
// using the data-independent heuristic k = n^{1/3} and the best k from a small
// sweep.
func RunFigure1(datasetNames []string, opts Options) ([]Figure1Point, error) {
	opts = opts.withDefaults()
	if len(datasetNames) == 0 {
		datasetNames = allDatasetNames()
	}
	var points []Figure1Point
	for _, name := range datasetNames {
		profile, err := opts.profileFor(name)
		if err != nil {
			return nil, err
		}
		input := datasets.Generate(dp.NewRand(opts.Seed), profile)
		truth := attrs.TrueThetaF(input)
		heurK := attrs.DefaultTruncationK(input.NumNodes())
		candidates := truncationCandidates(heurK, input.MaxDegree())
		for _, eps := range figureEpsilons {
			maeFor := func(k int) float64 {
				var total float64
				for trial := 0; trial < opts.Trials; trial++ {
					rng := dp.NewRand(opts.Seed + int64(trial)*7919 + int64(k))
					est := attrs.LearnCorrelationsDP(rng, input, eps, k)
					total += stats.MeanAbsoluteError(truth, est)
				}
				return total / float64(opts.Trials)
			}
			bestK, bestMAE := heurK, maeFor(heurK)
			heurMAE := bestMAE
			for _, k := range candidates {
				if k == heurK {
					continue
				}
				if mae := maeFor(k); mae < bestMAE {
					bestK, bestMAE = k, mae
				}
			}
			points = append(points, Figure1Point{
				Dataset: name, Epsilon: eps,
				HeuristicK: heurK, MAEHeurK: heurMAE,
				BestK: bestK, MAEBestK: bestMAE,
			})
		}
	}
	return points, nil
}

// truncationCandidates returns the k values swept when searching for the best
// truncation parameter.
func truncationCandidates(heuristic, dmax int) []int {
	set := map[int]bool{}
	for _, k := range []int{heuristic / 4, heuristic / 2, heuristic, heuristic * 2, heuristic * 4, dmax / 2, dmax} {
		if k >= 1 {
			set[k] = true
		}
	}
	var out []int
	for k := range set {
		out = append(out, k)
	}
	return out
}

// FormatFigure1 renders the Figure 1 series as a table of MAE values.
func FormatFigure1(points []Figure1Point) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 1 — MAE of edge-truncation ΘF: best k (swept) vs heuristic k = n^(1/3)")
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %8s %10s\n", "dataset", "epsilon", "MAE(best k)", "MAE(k=n^1/3)", "best k", "heur k")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %8.2f %12.4f %12.4f %8d %10d\n",
			p.Dataset, p.Epsilon, p.MAEBestK, p.MAEHeurK, p.BestK, p.HeuristicK)
	}
	return b.String()
}

// StructuralFit summarises how well one structural model reproduces the
// degree and clustering distributions of one dataset (the information carried
// by the CCDF curves of Figures 2 and 3).
type StructuralFit struct {
	Dataset string
	Model   string
	// DegreeKS / DegreeHellinger compare degree distributions (Figure 2).
	DegreeKS        float64
	DegreeHellinger float64
	// ClusteringKS compares the distributions of local clustering
	// coefficients (Figure 3).
	ClusteringKS float64
	// MRETriangles is the relative triangle-count error.
	MRETriangles float64
	// DegreeCCDF and ClusteringCCDF are the synthetic graph's CCDF curves,
	// usable for plotting alongside InputDegreeCCDF / InputClusteringCCDF.
	DegreeCCDF     []stats.CCDFPoint
	ClusteringCCDF []stats.CCDFPoint
}

// FigureStructuralResult holds the Figure 2 + Figure 3 reproduction for one
// dataset: the input CCDFs plus one StructuralFit per model.
type FigureStructuralResult struct {
	Dataset             string
	InputDegreeCCDF     []stats.CCDFPoint
	InputClusteringCCDF []stats.CCDFPoint
	Fits                []StructuralFit
}

// RunFigure23 reproduces Figures 2 and 3 for one dataset: it fits the
// non-private FCL, TCL and TriCycLe models to the input graph, generates one
// synthetic graph per model, and reports degree and local-clustering CCDFs
// together with summary distances.
func RunFigure23(datasetName string, opts Options) (*FigureStructuralResult, error) {
	opts = opts.withDefaults()
	profile, err := opts.profileFor(datasetName)
	if err != nil {
		return nil, err
	}
	input := datasets.Generate(dp.NewRand(opts.Seed), profile)
	result := &FigureStructuralResult{
		Dataset:             datasetName,
		InputDegreeCCDF:     degreeCCDF(input),
		InputClusteringCCDF: clusteringCCDF(input),
	}
	models := []structural.Model{structural.FCL{}, structural.TCL{}, structural.TriCycLe{}}
	for _, model := range models {
		fitted := core.Fit(input, model)
		synth, err := core.Sample(dp.NewRand(opts.Seed+101), fitted, core.SampleOptions{Iterations: opts.SampleIterations, Model: model})
		if err != nil {
			return nil, err
		}
		result.Fits = append(result.Fits, StructuralFit{
			Dataset:         datasetName,
			Model:           model.Name(),
			DegreeKS:        stats.DegreeKS(input.DegreeSequence(), synth.DegreeSequence()),
			DegreeHellinger: stats.DegreeHellinger(input.DegreeSequence(), synth.DegreeSequence()),
			ClusteringKS:    stats.KolmogorovSmirnov(input.LocalClusteringAll(), synth.LocalClusteringAll()),
			MRETriangles:    stats.RelativeError(float64(input.Triangles()), float64(synth.Triangles())),
			DegreeCCDF:      degreeCCDF(synth),
			ClusteringCCDF:  clusteringCCDF(synth),
		})
	}
	return result, nil
}

func degreeCCDF(g *graph.Graph) []stats.CCDFPoint {
	degs := g.Degrees()
	f := make([]float64, len(degs))
	for i, d := range degs {
		f[i] = float64(d)
	}
	return stats.CCDF(f)
}

func clusteringCCDF(g *graph.Graph) []stats.CCDFPoint {
	return stats.CCDF(g.LocalClusteringAll())
}

// Format renders the Figure 2/3 summary distances (the CCDF curves themselves
// are available programmatically for plotting).
func (r *FigureStructuralResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 2 & 3 — structural models on %s (non-private)\n", r.Dataset)
	fmt.Fprintf(&b, "%-10s %12s %12s %14s %12s\n", "model", "degree KS", "degree H", "clustering KS", "triangle MRE")
	for _, fit := range r.Fits {
		fmt.Fprintf(&b, "%-10s %12.3f %12.3f %14.3f %12.3f\n",
			fit.Model, fit.DegreeKS, fit.DegreeHellinger, fit.ClusteringKS, fit.MRETriangles)
	}
	return b.String()
}

// Figure5Point holds the MAE of each ΘF estimator for one (dataset, ε) cell.
type Figure5Point struct {
	Dataset        string
	Epsilon        float64
	EdgeTruncation float64
	Smooth         float64
	SampleAgg      float64
	NaiveLaplace   float64
}

// RunFigure5 reproduces Figure 5 (Appendix B.3): it compares the mean absolute
// error of the four ΘF estimators — edge truncation, smooth sensitivity
// (δ = 1e−6), sample-and-aggregate, and the naive Laplace baseline — across
// the ε grid.
func RunFigure5(datasetNames []string, opts Options) ([]Figure5Point, error) {
	opts = opts.withDefaults()
	if len(datasetNames) == 0 {
		datasetNames = allDatasetNames()
	}
	const delta = 1e-6
	var points []Figure5Point
	for _, name := range datasetNames {
		profile, err := opts.profileFor(name)
		if err != nil {
			return nil, err
		}
		input := datasets.Generate(dp.NewRand(opts.Seed), profile)
		truth := attrs.TrueThetaF(input)
		k := attrs.DefaultTruncationK(input.NumNodes())
		groupSize := sampleAggGroupSize(input.NumNodes())
		for _, eps := range figureEpsilons {
			var pt Figure5Point
			pt.Dataset, pt.Epsilon = name, eps
			for trial := 0; trial < opts.Trials; trial++ {
				seed := opts.Seed + int64(trial)*104729
				pt.EdgeTruncation += stats.MeanAbsoluteError(truth, attrs.LearnCorrelationsDP(dp.NewRand(seed), input, eps, k))
				pt.Smooth += stats.MeanAbsoluteError(truth, attrs.LearnCorrelationsSmooth(dp.NewRand(seed+1), input, eps, delta))
				pt.SampleAgg += stats.MeanAbsoluteError(truth, attrs.LearnCorrelationsSampleAggregate(dp.NewRand(seed+2), input, eps, groupSize))
				pt.NaiveLaplace += stats.MeanAbsoluteError(truth, attrs.LearnCorrelationsNaive(dp.NewRand(seed+3), input, eps))
			}
			trials := float64(opts.Trials)
			pt.EdgeTruncation /= trials
			pt.Smooth /= trials
			pt.SampleAgg /= trials
			pt.NaiveLaplace /= trials
			points = append(points, pt)
		}
	}
	return points, nil
}

// sampleAggGroupSize picks the sample-and-aggregate group size as a simple
// function of the dataset size (the paper tunes it empirically; √n is a
// reasonable default that balances estimation and perturbation error).
func sampleAggGroupSize(n int) int {
	g := 2
	for g*g < n {
		g++
	}
	if g < 2 {
		g = 2
	}
	return g
}

// FormatFigure5 renders the Figure 5 series.
func FormatFigure5(points []Figure5Point) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5 — MAE of ΘF estimators (EdgeTrunc vs Smooth vs S&A vs naive Laplace)")
	fmt.Fprintf(&b, "%-10s %8s %12s %10s %10s %12s\n", "dataset", "epsilon", "EdgeTrunc", "Smooth", "S&A", "Laplace")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %8.2f %12.4f %10.4f %10.4f %12.4f\n",
			p.Dataset, p.Epsilon, p.EdgeTruncation, p.Smooth, p.SampleAgg, p.NaiveLaplace)
	}
	return b.String()
}

// allDatasetNames lists the dataset names in paper order.
func allDatasetNames() []string {
	var names []string
	for _, p := range datasets.AllProfiles() {
		names = append(names, p.Name)
	}
	return names
}
