package experiments

import (
	"math"
	"strings"
	"testing"

	"agmdp/internal/datasets"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

// smallOpts keeps the experiment drivers fast enough for unit testing.
func smallOpts() Options {
	return Options{Scale: 0.12, Trials: 1, Seed: 3, SampleIterations: 1}
}

func TestCompareGraphsIdenticalGraphs(t *testing.T) {
	p, _ := datasets.ByName("lastfm")
	g := datasets.Generate(dp.NewRand(1), p.Scaled(0.2))
	m := CompareGraphs(g, g)
	if m.MREThetaF != 0 || m.HellingerThetaF != 0 || m.KSDegree != 0 || m.HellingerDegree != 0 ||
		m.MRETriangles != 0 || m.MREAvgClustering != 0 || m.MREGlobalClustering != 0 || m.MREEdges != 0 {
		t.Fatalf("identical graphs should have zero error, got %+v", m)
	}
}

func TestCompareGraphsDetectsStructureLoss(t *testing.T) {
	p, _ := datasets.ByName("lastfm")
	g := datasets.Generate(dp.NewRand(2), p.Scaled(0.2))
	// A star graph over the same nodes: no triangles, completely different
	// degree distribution.
	brokenB := graph.NewBuilder(g.NumNodes(), g.NumAttributes())
	for i := 1; i < brokenB.NumNodes(); i++ {
		brokenB.AddEdge(0, i)
	}
	broken := brokenB.Finalize()
	m := CompareGraphs(g, broken)
	if m.MRETriangles < 0.9 {
		t.Fatalf("triangle MRE = %v, want ≈ 1 for a triangle-free synthetic graph", m.MRETriangles)
	}
	if m.KSDegree < 0.3 {
		t.Fatalf("degree KS = %v, want large for a star graph", m.KSDegree)
	}
}

func TestAverageMetrics(t *testing.T) {
	avg := average([]GraphMetrics{
		{MREThetaF: 0.2, KSDegree: 0.4},
		{MREThetaF: 0.4, KSDegree: 0.0},
	})
	if math.Abs(avg.MREThetaF-0.3) > 1e-12 || math.Abs(avg.KSDegree-0.2) > 1e-12 {
		t.Fatalf("average = %+v", avg)
	}
	if zero := average(nil); zero.MREThetaF != 0 {
		t.Fatal("average of nothing should be zero value")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 3 || o.Seed != 1 || o.SampleIterations != 2 {
		t.Fatalf("defaults = %+v", o)
	}
	if _, err := (Options{}).profileFor("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	p, err := (Options{Scale: 0.1}).profileFor("pokec")
	if err != nil {
		t.Fatalf("profileFor: %v", err)
	}
	full, _ := datasets.ByName("pokec")
	if p.Nodes >= full.Nodes {
		t.Fatal("scale override not applied")
	}
}

func TestRunTableSmall(t *testing.T) {
	opts := smallOpts()
	opts.Epsilons = []float64{math.Log(3), 0.3}
	res, err := RunTable("lastfm", opts)
	if err != nil {
		t.Fatalf("RunTable: %v", err)
	}
	// 2 non-private rows + 2 models × 2 epsilons.
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	if res.Rows[0].Epsilon != 0 || res.Rows[1].Epsilon != 0 {
		t.Fatal("first two rows should be the non-private references")
	}
	// Larger epsilon rows come before smaller ones (privacy strengthens down
	// the table, as in the paper).
	if res.Rows[2].Epsilon < res.Rows[4].Epsilon {
		t.Fatal("epsilon rows not ordered from weakest to strongest privacy")
	}
	for _, row := range res.Rows {
		m := row.Metrics
		for _, v := range []float64{m.MREThetaF, m.HellingerThetaF, m.KSDegree, m.HellingerDegree, m.MREEdges} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %+v has invalid metric %v", row, v)
			}
		}
	}
	text := res.Format()
	if !strings.Contains(text, "Table 2") || !strings.Contains(text, "AGMDP-TriCL") {
		t.Fatalf("formatted table missing expected content:\n%s", text)
	}
}

func TestRunTableUnknownDataset(t *testing.T) {
	if _, err := RunTable("unknown", smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunTable6(t *testing.T) {
	rows, err := RunTable6(Options{Scale: 0.05, Trials: 1, Seed: 2})
	if err != nil {
		t.Fatalf("RunTable6: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Summary.Nodes == 0 || r.Summary.Edges == 0 {
			t.Fatalf("row %s has empty summary", r.Dataset)
		}
	}
	text := FormatTable6(rows)
	if !strings.Contains(text, "Table 6") || !strings.Contains(text, "pokec") {
		t.Fatalf("formatted Table 6 missing content:\n%s", text)
	}
}

func TestRunFigure1Small(t *testing.T) {
	points, err := RunFigure1([]string{"lastfm"}, smallOpts())
	if err != nil {
		t.Fatalf("RunFigure1: %v", err)
	}
	if len(points) != len(figureEpsilons) {
		t.Fatalf("got %d points, want %d", len(points), len(figureEpsilons))
	}
	for _, p := range points {
		if p.MAEBestK > p.MAEHeurK+1e-12 {
			t.Fatalf("best-k MAE %v exceeds heuristic-k MAE %v", p.MAEBestK, p.MAEHeurK)
		}
		if p.HeuristicK < 1 || p.BestK < 1 {
			t.Fatalf("invalid k values in %+v", p)
		}
	}
	if text := FormatFigure1(points); !strings.Contains(text, "Figure 1") {
		t.Fatal("FormatFigure1 missing header")
	}
}

func TestRunFigure23Small(t *testing.T) {
	res, err := RunFigure23("petster", smallOpts())
	if err != nil {
		t.Fatalf("RunFigure23: %v", err)
	}
	if len(res.Fits) != 3 {
		t.Fatalf("got %d model fits, want 3 (FCL, TCL, TriCycLe)", len(res.Fits))
	}
	if len(res.InputDegreeCCDF) == 0 || len(res.InputClusteringCCDF) == 0 {
		t.Fatal("input CCDFs missing")
	}
	byModel := map[string]StructuralFit{}
	for _, fit := range res.Fits {
		byModel[fit.Model] = fit
		if fit.DegreeKS < 0 || fit.DegreeKS > 1 {
			t.Fatalf("degree KS out of range: %+v", fit)
		}
		if len(fit.DegreeCCDF) == 0 {
			t.Fatalf("missing degree CCDF for %s", fit.Model)
		}
	}
	// The paper's headline qualitative finding (Figure 3): TriCycLe matches
	// the clustering structure better than FCL.
	if byModel["TriCycLe"].MRETriangles >= byModel["FCL"].MRETriangles {
		t.Fatalf("TriCycLe triangle error %v not below FCL %v",
			byModel["TriCycLe"].MRETriangles, byModel["FCL"].MRETriangles)
	}
	if text := res.Format(); !strings.Contains(text, "TriCycLe") {
		t.Fatal("Format missing TriCycLe row")
	}
}

func TestRunFigure5Small(t *testing.T) {
	points, err := RunFigure5([]string{"lastfm"}, smallOpts())
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	if len(points) != len(figureEpsilons) {
		t.Fatalf("got %d points, want %d", len(points), len(figureEpsilons))
	}
	// Edge truncation should beat the naive Laplace baseline at every ε —
	// this is the headline comparison of Figure 5.
	for _, p := range points {
		if p.EdgeTruncation >= p.NaiveLaplace {
			t.Fatalf("EdgeTrunc MAE %v not below naive Laplace %v at eps=%v", p.EdgeTruncation, p.NaiveLaplace, p.Epsilon)
		}
	}
	if text := FormatFigure5(points); !strings.Contains(text, "Figure 5") {
		t.Fatal("FormatFigure5 missing header")
	}
}

func TestSampleAggGroupSize(t *testing.T) {
	if g := sampleAggGroupSize(100); g != 10 {
		t.Fatalf("group size for n=100 is %d, want 10", g)
	}
	if g := sampleAggGroupSize(2); g < 2 {
		t.Fatalf("group size %d below minimum", g)
	}
}

func TestTruncationCandidates(t *testing.T) {
	cands := truncationCandidates(12, 119)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, k := range cands {
		if k < 1 {
			t.Fatalf("candidate %d below 1", k)
		}
	}
}

func TestRunAblationBudgetSplit(t *testing.T) {
	res, err := RunAblationBudgetSplit("lastfm", math.Log(3), smallOpts())
	if err != nil {
		t.Fatalf("RunAblationBudgetSplit: %v", err)
	}
	if len(res.Splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(res.Splits))
	}
	if _, ok := res.Splits["even (paper)"]; !ok {
		t.Fatal("missing the paper's even split")
	}
	if text := FormatBudgetSplit(res); !strings.Contains(text, "even (paper)") {
		t.Fatal("FormatBudgetSplit missing split label")
	}
}

func TestRunAblationConstrainedInference(t *testing.T) {
	res, err := RunAblationConstrainedInference("petster", 0.3, smallOpts())
	if err != nil {
		t.Fatalf("RunAblationConstrainedInference: %v", err)
	}
	if res.L1WithInference >= res.L1Naive {
		t.Fatalf("constrained inference error %v not below naive %v", res.L1WithInference, res.L1Naive)
	}
}

func TestRunAblationTriangleEstimators(t *testing.T) {
	res, err := RunAblationTriangleEstimators("lastfm", 0.5, smallOpts())
	if err != nil {
		t.Fatalf("RunAblationTriangleEstimators: %v", err)
	}
	if res.Truth <= 0 {
		t.Fatal("test graph has no triangles")
	}
	if res.LadderMRE >= res.NaiveMRE {
		t.Fatalf("Ladder MRE %v not below naive Laplace MRE %v", res.LadderMRE, res.NaiveMRE)
	}
}

func TestRunAblationPostProcess(t *testing.T) {
	res, err := RunAblationPostProcess("pokec", Options{Scale: 0.01, Trials: 1, Seed: 5})
	if err != nil {
		t.Fatalf("RunAblationPostProcess: %v", err)
	}
	if res.OrphansWith >= res.OrphansWithout {
		t.Fatalf("post-processing did not reduce orphans: with=%v without=%v", res.OrphansWith, res.OrphansWithout)
	}
}

func TestAblationsRejectUnknownDatasets(t *testing.T) {
	if _, err := RunAblationBudgetSplit("nope", 1, smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunAblationConstrainedInference("nope", 1, smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunAblationTriangleEstimators("nope", 1, smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunAblationPostProcess("nope", smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunFigure1([]string{"nope"}, smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunFigure5([]string{"nope"}, smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunFigure23("nope", smallOpts()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
