// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (Tables 2–6 and Figures 1, 2, 3, 5) on the
// calibrated synthetic datasets of package datasets. Each driver returns
// structured results as well as a plain-text rendering so it can be used both
// from the CLI (cmd/agmdp-experiments) and from the benchmark harness
// (bench_test.go).
package experiments

import (
	"agmdp/internal/attrs"
	"agmdp/internal/graph"
	"agmdp/internal/stats"
)

// GraphMetrics holds the eight error columns of Tables 2–5: errors of the
// synthetic graph relative to the input graph.
type GraphMetrics struct {
	// MREThetaF is the mean relative error of the attribute–edge correlation
	// probabilities (column ΘF).
	MREThetaF float64
	// HellingerThetaF is the Hellinger distance between correlation
	// distributions (column HΘF).
	HellingerThetaF float64
	// KSDegree is the Kolmogorov–Smirnov statistic between degree
	// distributions (column KS_S).
	KSDegree float64
	// HellingerDegree is the Hellinger distance between degree distributions
	// (column H_S).
	HellingerDegree float64
	// MRETriangles is the relative error of the triangle count (column n∆).
	MRETriangles float64
	// MREAvgClustering is the relative error of the average local clustering
	// coefficient (column C̄).
	MREAvgClustering float64
	// MREGlobalClustering is the relative error of the global clustering
	// coefficient / transitivity (column C).
	MREGlobalClustering float64
	// MREEdges is the relative error of the edge count (column m).
	MREEdges float64
}

// CompareGraphs computes the Table 2–5 error columns for a synthetic graph
// against its input graph.
func CompareGraphs(original, synthetic *graph.Graph) GraphMetrics {
	return CompareGraphsWith(original, synthetic, 0)
}

// CompareGraphsWith is CompareGraphs with an explicit worker count for the
// measurement passes on both graphs (≤ 0 selects the process default). The
// metrics are bit-identical for every worker count — the sharded analytics
// carry that contract — so the knob trades wall-clock only.
func CompareGraphsWith(original, synthetic *graph.Graph, workers int) GraphMetrics {
	origTheta := attrs.TrueThetaFWith(original, workers)
	synthTheta := attrs.TrueThetaFWith(synthetic, workers)
	origDegrees := original.DegreeSequenceWith(workers)
	synthDegrees := synthetic.DegreeSequenceWith(workers)
	return GraphMetrics{
		MREThetaF:           stats.MeanAbsoluteError(origTheta, synthTheta),
		HellingerThetaF:     stats.HellingerDistance(origTheta, synthTheta),
		KSDegree:            stats.DegreeKS(origDegrees, synthDegrees),
		HellingerDegree:     stats.DegreeHellinger(origDegrees, synthDegrees),
		MRETriangles:        stats.RelativeError(float64(original.TrianglesWith(workers)), float64(synthetic.TrianglesWith(workers))),
		MREAvgClustering:    stats.RelativeError(averageLocalClusteringWith(original, workers), averageLocalClusteringWith(synthetic, workers)),
		MREGlobalClustering: stats.RelativeError(globalClusteringWith(original, workers), globalClusteringWith(synthetic, workers)),
		MREEdges:            stats.RelativeError(float64(original.NumEdges()), float64(synthetic.NumEdges())),
	}
}

// averageLocalClusteringWith is Graph.AverageLocalClustering at an explicit
// worker count for the shared edge pass.
func averageLocalClusteringWith(g *graph.Graph, workers int) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	cc := g.LocalClusteringAllWith(workers)
	sum := 0.0
	for _, c := range cc {
		sum += c
	}
	return sum / float64(len(cc))
}

// globalClusteringWith is Graph.GlobalClustering at an explicit worker count
// for the triangle and wedge passes.
func globalClusteringWith(g *graph.Graph, workers int) float64 {
	w := g.WedgesWith(workers)
	if w == 0 {
		return 0
	}
	return 3 * float64(g.TrianglesWith(workers)) / float64(w)
}

// average returns the element-wise mean of a set of metric rows.
func average(ms []GraphMetrics) GraphMetrics {
	if len(ms) == 0 {
		return GraphMetrics{}
	}
	var sum GraphMetrics
	for _, m := range ms {
		sum.MREThetaF += m.MREThetaF
		sum.HellingerThetaF += m.HellingerThetaF
		sum.KSDegree += m.KSDegree
		sum.HellingerDegree += m.HellingerDegree
		sum.MRETriangles += m.MRETriangles
		sum.MREAvgClustering += m.MREAvgClustering
		sum.MREGlobalClustering += m.MREGlobalClustering
		sum.MREEdges += m.MREEdges
	}
	n := float64(len(ms))
	return GraphMetrics{
		MREThetaF:           sum.MREThetaF / n,
		HellingerThetaF:     sum.HellingerThetaF / n,
		KSDegree:            sum.KSDegree / n,
		HellingerDegree:     sum.HellingerDegree / n,
		MRETriangles:        sum.MRETriangles / n,
		MREAvgClustering:    sum.MREAvgClustering / n,
		MREGlobalClustering: sum.MREGlobalClustering / n,
		MREEdges:            sum.MREEdges / n,
	}
}
