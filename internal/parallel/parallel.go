// Package parallel is the shared execution layer of the library: one
// process-wide worker pool, node-range sharding helpers, and a deterministic
// fan-out primitive that every concurrent code path (graph analytics, the
// two-hop sensitivity scan, the structural generators and the sampling
// engine's intra-job streams) runs on.
//
// # Pool
//
// The pool holds runtime.GOMAXPROCS(0) resident workers, started lazily on
// first use, draining a single FIFO task queue. Centralising execution keeps
// the process's total compute concurrency bounded no matter how many layers
// fan out at once: when the sampling engine runs GOMAXPROCS jobs and each job
// shards its analytics, the shard tasks queue up behind the same workers
// instead of multiplying goroutines.
//
// Nested fan-out cannot deadlock: Group.Wait is a helping wait — while tasks
// of its own group are still queued it claims and runs them in the waiting
// goroutine, so a saturated pool degrades to inline execution rather than
// blocking. A waiter only ever helps with its own group's tasks, never with
// unrelated (possibly blocking) work.
//
// # Determinism
//
// Do(n, fn) calls fn(0) … fn(n−1) concurrently and returns when all are done.
// Callers that write shard i's result into slot i of a results slice and
// reduce the slots in index order get scheduling-independent output; every
// parallel analytic and generator in the repository follows that pattern, so
// their results depend only on their inputs (and, for the generators, on the
// worker count), never on thread timing.
//
// # The parallelism knob
//
// Resolve maps a caller-supplied worker count to an effective one: values
// above zero are taken as-is, values ≤ 0 mean "auto" — the process default
// set with SetParallelism, which itself defaults to runtime.GOMAXPROCS(0).
// The knob is process-wide and re-exported by the agmdp facade.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"agmdp/internal/obs"
)

// Pool metrics, registered on the process-wide default registry. The
// per-task cost is two clock reads and three atomic adds — tasks are
// shard-sized (a worker's slice of an analytics or generation pass), so the
// instrumentation is noise next to the work it measures, and it reads no
// entropy, so task results are untouched.
var (
	poolTasks = obs.Default().Counter("agmdp_pool_tasks_total",
		"Tasks executed by the shared worker pool (including helping-wait inline runs).")
	poolTaskDur = obs.Default().Histogram("agmdp_pool_task_duration_seconds",
		"Wall-clock duration of shared-pool tasks.")
	poolInFlight = obs.Default().Gauge("agmdp_pool_inflight_tasks",
		"Shared-pool tasks currently executing.")
)

func init() {
	obs.Default().GaugeFunc("agmdp_pool_queue_depth",
		"Tasks queued on the shared worker pool, not yet claimed.",
		func() float64 {
			shared.mu.Lock()
			defer shared.mu.Unlock()
			return float64(len(shared.queue))
		})
	obs.Default().GaugeFunc("agmdp_pool_workers",
		"Resident shared-pool workers (0 until first use).",
		func() float64 {
			shared.mu.Lock()
			defer shared.mu.Unlock()
			return float64(shared.workers)
		})
}

// defaultParallelism holds the process default worker count; 0 selects
// runtime.GOMAXPROCS(0) at resolution time.
var defaultParallelism atomic.Int64

// SetParallelism sets the process-wide default worker count used when a
// caller passes a parallelism ≤ 0 ("auto"). Values ≤ 0 restore the built-in
// default of runtime.GOMAXPROCS(0). Pass 1 to force every auto-resolved code
// path sequential (useful for debugging and for byte-for-byte reproducibility
// across machines with different core counts).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallelism.Store(int64(n))
}

// Parallelism returns the resolved process default worker count: the value
// set with SetParallelism, or runtime.GOMAXPROCS(0) when unset.
func Parallelism() int {
	if n := defaultParallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a caller-supplied worker count to an effective one: n > 0 is
// taken as-is, n ≤ 0 selects the process default (Parallelism).
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return Parallelism()
}

// task is one queued unit of work, tied to the Group that awaits it. A task
// is listed both in the pool queue and in its group's own list; whoever
// claims it first (a pool worker or the group's helping waiter) runs it, and
// the loser skips the tombstone.
type task struct {
	fn      func()
	group   *Group
	claimed atomic.Bool
}

// pool is the process-wide worker pool. All state is guarded by mu; cond is
// signalled when tasks arrive and broadcast when tasks finish (Group.Wait
// listens for both).
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*task
	started bool
	workers int
}

var shared = func() *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}()

// startLocked launches the resident workers on first use. Callers hold p.mu.
func (p *pool) startLocked() {
	if p.started {
		return
	}
	p.started = true
	p.workers = runtime.GOMAXPROCS(0)
	for i := 0; i < p.workers; i++ {
		go p.worker()
	}
}

// worker drains the task queue for the life of the process, skipping tasks a
// helping waiter already claimed.
func (p *pool) worker() {
	p.mu.Lock()
	for {
		for len(p.queue) == 0 {
			p.cond.Wait()
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		if !t.claimed.CompareAndSwap(false, true) {
			continue
		}
		p.mu.Unlock()
		t.run()
		p.mu.Lock()
	}
}

// Stats is a point-in-time snapshot of the shared pool, for /healthz.
type Stats struct {
	// Workers is the resident worker count (0 until the pool's first use).
	Workers int `json:"workers"`
	// QueueDepth is the number of queued, unclaimed tasks.
	QueueDepth int `json:"queue_depth"`
	// InFlight is the number of tasks currently executing.
	InFlight int64 `json:"in_flight"`
	// TasksCompleted is the lifetime number of executed tasks.
	TasksCompleted int64 `json:"tasks_completed"`
}

// PoolStats snapshots the shared pool's load.
func PoolStats() Stats {
	shared.mu.Lock()
	workers, depth := shared.workers, len(shared.queue)
	shared.mu.Unlock()
	return Stats{
		Workers:        workers,
		QueueDepth:     depth,
		InFlight:       poolInFlight.Value(),
		TasksCompleted: poolTasks.Value(),
	}
}

// run executes one task, capturing a panic for re-raising in Group.Wait, and
// marks it finished.
func (t *task) run() {
	start := time.Now()
	poolInFlight.Inc()
	defer func() {
		poolInFlight.Dec()
		poolTaskDur.ObserveDuration(time.Since(start))
		poolTasks.Inc()
	}()
	defer t.finish()
	defer func() {
		if r := recover(); r != nil {
			t.group.mu.Lock()
			if t.group.panicked == nil {
				t.group.panicked = r
			}
			t.group.mu.Unlock()
		}
	}()
	t.fn()
}

// finish decrements the group's outstanding count and wakes waiters.
func (t *task) finish() {
	p := t.group.pool
	p.mu.Lock()
	t.group.pending--
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Group awaits a set of tasks submitted to the shared pool. The zero value is
// ready to use. A Group must not be reused after Wait returns. pending and
// tasks are guarded by the pool mutex; mu guards only panicked.
type Group struct {
	pool     *pool
	pending  int
	tasks    []*task
	mu       sync.Mutex
	panicked any
}

// Go submits fn to the shared pool.
func (g *Group) Go(fn func()) {
	if g.pool == nil {
		g.pool = shared
	}
	p := g.pool
	t := &task{fn: fn, group: g}
	p.mu.Lock()
	p.startLocked()
	g.pending++
	g.tasks = append(g.tasks, t)
	p.queue = append(p.queue, t)
	p.mu.Unlock()
	p.cond.Signal()
}

// Wait blocks until every task submitted with Go has finished. It is a
// helping wait: while tasks of this group are still queued it claims and runs
// them in the calling goroutine, so nested fan-out on a saturated (or
// single-core) pool makes progress instead of deadlocking. If any task
// panicked, Wait re-panics with the first captured value in the caller.
func (g *Group) Wait() {
	if g.pool == nil {
		return // nothing was ever submitted
	}
	p := g.pool
	p.mu.Lock()
	for g.pending > 0 {
		var t *task
		for len(g.tasks) > 0 {
			cand := g.tasks[0]
			g.tasks = g.tasks[1:]
			if cand.claimed.CompareAndSwap(false, true) {
				t = cand
				break
			}
		}
		if t != nil {
			p.mu.Unlock()
			t.run()
			p.mu.Lock()
			continue
		}
		// All of this group's tasks are claimed and running elsewhere; sleep
		// until a finish broadcast, then re-check.
		p.cond.Wait()
	}
	p.mu.Unlock()
	if g.panicked != nil {
		panic(g.panicked)
	}
}

// Do runs fn(0) … fn(n−1) on the shared pool and returns when all calls have
// finished. fn(0) runs inline in the calling goroutine (the caller is a
// worker too), the rest are submitted to the pool. n ≤ 0 is a no-op. Panics
// in any call are re-raised in the caller after the remaining calls finish.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var g Group
	for i := 1; i < n; i++ {
		i := i
		g.Go(func() { fn(i) })
	}
	var inlinePanic any
	func() {
		defer func() { inlinePanic = recover() }()
		fn(0)
	}()
	g.Wait() // re-raises pool-side panics first
	if inlinePanic != nil {
		panic(inlinePanic)
	}
}
