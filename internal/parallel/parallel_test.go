package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolveAndSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetParallelism(2)
	if got := Resolve(0); got != 2 {
		t.Fatalf("after SetParallelism(2): Resolve(0) = %d", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("explicit count must win over the default: Resolve(7) = %d", got)
	}
	SetParallelism(-1) // restore auto
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetParallelism(-1) did not restore auto: Resolve(0) = %d", got)
	}
}

func TestDoRunsEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64} {
		counts := make([]atomic.Int64, n+1)
		Do(n, func(i int) { counts[i].Add(1) })
		for i := 0; i < n; i++ {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: fn(%d) ran %d times", n, i, got)
			}
		}
	}
}

func TestDoNestedDoesNotDeadlock(t *testing.T) {
	// Oversubscribe the pool with nested fan-out several levels deep; the
	// helping Wait must keep making progress on a single-core pool.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total atomic.Int64
		Do(8, func(i int) {
			Do(8, func(j int) {
				Do(4, func(k int) { total.Add(1) })
			})
		})
		if total.Load() != 8*8*4 {
			t.Errorf("nested Do ran %d leaf tasks, want %d", total.Load(), 8*8*4)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Do deadlocked")
	}
}

func TestGroupWaitHelpsWhilePoolSaturated(t *testing.T) {
	// Saturate the pool with slow tasks from one group, then fan out a second
	// group; its Wait should steal and finish its own work promptly.
	var slow Group
	release := make(chan struct{})
	for i := 0; i < runtime.GOMAXPROCS(0)+2; i++ {
		slow.Go(func() { <-release })
	}
	var ran atomic.Int64
	start := time.Now()
	Do(16, func(i int) { ran.Add(1) })
	if ran.Load() != 16 {
		t.Fatalf("ran %d of 16 tasks", ran.Load())
	}
	if time.Since(start) > 20*time.Second {
		t.Fatal("Do blocked behind the saturated pool")
	}
	close(release)
	slow.Wait()
}

func TestDoPropagatesPanicFromPoolTask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in a pool task was swallowed")
		}
	}()
	Do(4, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestDoPropagatesPanicFromInlineShard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in the inline shard was swallowed")
		}
	}()
	Do(4, func(i int) {
		if i == 0 {
			panic("boom")
		}
	})
}

func TestEmptyGroupWaitReturns(t *testing.T) {
	var g Group
	g.Wait() // must not block or panic
}
