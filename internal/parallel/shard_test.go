package parallel

import (
	"math/rand"
	"testing"
)

// checkCover asserts the ranges tile [0, n) in ascending order without gaps,
// overlaps or empties.
func checkCover(t *testing.T, ranges []Range, n int) {
	t.Helper()
	lo := 0
	for i, r := range ranges {
		if r.Lo != lo {
			t.Fatalf("range %d starts at %d, want %d", i, r.Lo, lo)
		}
		if r.Len() <= 0 {
			t.Fatalf("range %d is empty: %+v", i, r)
		}
		lo = r.Hi
	}
	if lo != n {
		t.Fatalf("ranges end at %d, want %d", lo, n)
	}
}

func TestSplitCoversEvenly(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{10, 3}, {10, 10}, {10, 25}, {1, 4}, {1000, 7},
	} {
		ranges := Split(tc.n, tc.shards)
		checkCover(t, ranges, tc.n)
		want := tc.shards
		if want > tc.n {
			want = tc.n
		}
		if len(ranges) != want {
			t.Fatalf("Split(%d,%d): %d ranges, want %d", tc.n, tc.shards, len(ranges), want)
		}
		for _, r := range ranges {
			if r.Len() > tc.n/want+1 {
				t.Fatalf("Split(%d,%d): uneven range %+v", tc.n, tc.shards, r)
			}
		}
	}
	if Split(0, 4) != nil || Split(-3, 4) != nil {
		t.Fatal("Split of an empty index space must be nil")
	}
}

// prefixSum builds the inclusive prefix-sum array SplitWeighted consumes.
func prefixSum(weights []int64) []int64 {
	cum := make([]int64, len(weights)+1)
	for i, w := range weights {
		cum[i+1] = cum[i] + w
	}
	return cum
}

func TestSplitWeightedBalancesSkewedWeights(t *testing.T) {
	// A hub-heavy weight profile: mostly light items with a few huge hubs, the
	// degree shape that defeats even node-count splitting.
	rng := rand.New(rand.NewSource(7))
	n := 10000
	weights := make([]int64, n)
	var total int64
	for i := range weights {
		weights[i] = 1 + int64(rng.Intn(5))
		if i%997 == 0 {
			weights[i] = 4000
		}
		total += weights[i]
	}
	cum := prefixSum(weights)
	var maxSingle int64
	for _, w := range weights {
		if w > maxSingle {
			maxSingle = w
		}
	}
	for _, shards := range []int{2, 4, 8, 16} {
		ranges := SplitWeighted(cum, shards)
		checkCover(t, ranges, n)
		ideal := total / int64(shards)
		for _, r := range ranges {
			w := cum[r.Hi] - cum[r.Lo]
			// A shard can overshoot the ideal by at most one item's weight.
			if w > ideal+maxSingle {
				t.Fatalf("shards=%d: range %+v carries weight %d, ideal %d (max item %d)",
					shards, r, w, ideal, maxSingle)
			}
		}
	}
}

func TestSplitWeightedUniformMatchesSplit(t *testing.T) {
	n := 64
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = 3
	}
	ranges := SplitWeighted(prefixSum(weights), 4)
	checkCover(t, ranges, n)
	for _, r := range ranges {
		if r.Len() != 16 {
			t.Fatalf("uniform weights split unevenly: %+v", ranges)
		}
	}
}

func TestSplitWeightedDegenerateCases(t *testing.T) {
	if SplitWeighted([]int64{0}, 4) != nil {
		t.Fatal("empty index space must give nil")
	}
	// All-zero weights: one range covering everything.
	ranges := SplitWeighted(prefixSum(make([]int64, 9)), 4)
	if len(ranges) != 1 || ranges[0] != (Range{Lo: 0, Hi: 9}) {
		t.Fatalf("zero-weight split = %+v", ranges)
	}
	// Single dominant item: every shard stays non-empty and covers [0, n).
	ranges = SplitWeighted(prefixSum([]int64{0, 0, 100, 0, 0}), 3)
	checkCover(t, ranges, 5)
	// More shards than items collapses to per-item ranges at most.
	ranges = SplitWeighted(prefixSum([]int64{5, 5}), 9)
	checkCover(t, ranges, 2)
	if len(ranges) > 2 {
		t.Fatalf("got %d ranges for 2 items", len(ranges))
	}
}
