package parallel

// MinShardEdges is the shared edge-count threshold below which the library's
// sharded code paths (graph analytics, the two-hop sensitivity scan, the
// structural generators' proposal and rewiring streams) fall back to their
// sequential implementations: under it, fan-out and merge overhead exceeds
// the work itself. One constant, one retuning point.
const MinShardEdges = 4096

// Range is a half-open shard [Lo, Hi) of a node (or item) index space.
type Range struct {
	Lo, Hi int
}

// Len returns the number of items in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into at most `shards` contiguous, non-empty ranges
// of near-equal length (the first n%shards ranges carry one extra item). It
// returns fewer ranges when n < shards and nil when n ≤ 0.
func Split(n, shards int) []Range {
	if n <= 0 {
		return nil
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	out := make([]Range, 0, shards)
	base, extra := n/shards, n%shards
	lo := 0
	for s := 0; s < shards; s++ {
		hi := lo + base
		if s < extra {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// SplitWeighted partitions [0, n) into at most `shards` contiguous, non-empty
// ranges of near-equal total weight, where cum is an inclusive prefix-sum
// array of per-item weights: cum[0] = 0 and cum[i] = weight(0) + … +
// weight(i−1), so n = len(cum)−1. A CSR offsets array is exactly such a
// prefix sum over node degrees, which is how the graph analytics split skewed
// graphs without a hub-heavy shard dominating the wall clock.
//
// Boundary k of shard s is the smallest index with cum[k] ≥ s/shards of the
// total weight, found by binary search, so no shard exceeds the ideal weight
// by more than the weight of its first item. Zero-weight tails attach to the
// final shard. It returns nil when n ≤ 0 and a single range when the total
// weight is zero.
func SplitWeighted(cum []int64, shards int) []Range {
	n := len(cum) - 1
	if n <= 0 {
		return nil
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	total := cum[n] - cum[0]
	if total <= 0 || shards == 1 {
		return []Range{{Lo: 0, Hi: n}}
	}
	out := make([]Range, 0, shards)
	lo := 0
	for s := 1; s <= shards && lo < n; s++ {
		hi := n
		if s < shards {
			// Smallest hi with cum[hi]−cum[0] ≥ s·total/shards, but always at
			// least lo+1 so every emitted shard is non-empty.
			target := cum[0] + (total*int64(s))/int64(shards)
			hi = searchCum(cum, target)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > n {
				hi = n
			}
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// searchCum returns the smallest index i with cum[i] ≥ target.
func searchCum(cum []int64, target int64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
