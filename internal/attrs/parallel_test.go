package attrs

import (
	"math/rand"
	"reflect"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/parallel"
)

// histFixture builds an attributed graph; big enough (n=2000, ~8k edges) to
// clear the sharding threshold when big is true, tiny otherwise (exercising
// the sequential fallback).
func histFixture(tb testing.TB, big bool) *graph.Graph {
	tb.Helper()
	n, perNode := 60, 2
	if big {
		n, perNode = 2000, 6
	}
	rng := rand.New(rand.NewSource(3))
	edges := make([]graph.Edge, 0, perNode*n)
	for i := 0; i < perNode*n; i++ {
		u := int(float64(n) * rng.Float64() * rng.Float64())
		edges = append(edges, graph.Edge{U: u, V: rng.Intn(n)})
	}
	g := graph.FromEdges(n, 0, edges)
	attrs := make([]graph.AttrVector, n)
	for i := range attrs {
		attrs[i] = graph.AttrVector(rng.Uint64() & 7)
	}
	g = g.WithAttributes(3, attrs)
	if big && g.NumEdges() < parallel.MinShardEdges {
		tb.Fatalf("fixture has %d edges, below the sharding threshold", g.NumEdges())
	}
	return g
}

func TestNodeConfigCountsWithMatchesSequential(t *testing.T) {
	for _, big := range []bool{false, true} {
		g := histFixture(t, big)
		want := NodeConfigCounts(g)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := NodeConfigCountsWith(g, workers)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("big=%t workers=%d: node-config counts differ from sequential", big, workers)
			}
		}
	}
}

func TestEdgeConfigCountsWithMatchesSequential(t *testing.T) {
	for _, big := range []bool{false, true} {
		g := histFixture(t, big)
		want := EdgeConfigCounts(g)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := EdgeConfigCountsWith(g, workers)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("big=%t workers=%d: edge-config counts differ from sequential", big, workers)
			}
		}
	}
}

// TestLearnDPWithMatchesSequential pins that the sharded counting pass does
// not perturb the privacy mechanisms: equal rng seeds give bit-identical
// released estimates at every worker count.
func TestLearnDPWithMatchesSequential(t *testing.T) {
	g := histFixture(t, true)
	wantX := LearnAttributesDP(rand.New(rand.NewSource(9)), g, 0.5)
	wantF := LearnCorrelationsDP(rand.New(rand.NewSource(9)), g, 0.5, 12)
	for _, workers := range []int{1, 2, 5, 16} {
		gotX := LearnAttributesDPWith(rand.New(rand.NewSource(9)), g, 0.5, workers)
		if !reflect.DeepEqual(wantX, gotX) {
			t.Errorf("workers=%d: LearnAttributesDPWith differs from sequential", workers)
		}
		gotF := LearnCorrelationsDPWith(rand.New(rand.NewSource(9)), g, 0.5, 12, workers)
		if !reflect.DeepEqual(wantF, gotF) {
			t.Errorf("workers=%d: LearnCorrelationsDPWith differs from sequential", workers)
		}
	}
}
