package attrs

import (
	"math"
	"testing"
	"testing/quick"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

func TestNumNodeConfigs(t *testing.T) {
	cases := []struct{ w, want int }{{0, 1}, {1, 2}, {2, 4}, {3, 8}, {10, 1024}}
	for _, c := range cases {
		if got := NumNodeConfigs(c.w); got != c.want {
			t.Fatalf("NumNodeConfigs(%d) = %d, want %d", c.w, got, c.want)
		}
	}
	mustPanic(t, func() { NumNodeConfigs(-1) }, "negative w")
	mustPanic(t, func() { NumNodeConfigs(31) }, "too large w")
}

func TestNumEdgeConfigs(t *testing.T) {
	// Paper: with w attributes there are C(2^w + 1, 2) configurations;
	// for w = 2 that is 10 (the "ten probabilities" of footnote 6).
	cases := []struct{ w, want int }{{0, 1}, {1, 3}, {2, 10}, {3, 36}}
	for _, c := range cases {
		if got := NumEdgeConfigs(c.w); got != c.want {
			t.Fatalf("NumEdgeConfigs(%d) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestNodeConfigMasksToWidth(t *testing.T) {
	if got := NodeConfig(graph.AttrVector(0b101), 2); got != 0b01 {
		t.Fatalf("NodeConfig masked = %d, want 1", got)
	}
	if got := NodeConfig(graph.AttrVector(3), 2); got != 3 {
		t.Fatalf("NodeConfig(3, 2) = %d, want 3", got)
	}
}

func TestEdgeConfigSymmetric(t *testing.T) {
	w := 2
	for a := 0; a < NumNodeConfigs(w); a++ {
		for b := 0; b < NumNodeConfigs(w); b++ {
			ab := EdgeConfig(graph.AttrVector(a), graph.AttrVector(b), w)
			ba := EdgeConfig(graph.AttrVector(b), graph.AttrVector(a), w)
			if ab != ba {
				t.Fatalf("EdgeConfig not symmetric for (%d,%d): %d vs %d", a, b, ab, ba)
			}
			if ab < 0 || ab >= NumEdgeConfigs(w) {
				t.Fatalf("EdgeConfig(%d,%d) = %d out of range", a, b, ab)
			}
		}
	}
}

func TestEdgeConfigBijectiveOnUnorderedPairs(t *testing.T) {
	w := 3
	seen := make(map[int][2]int)
	for a := 0; a < NumNodeConfigs(w); a++ {
		for b := a; b < NumNodeConfigs(w); b++ {
			idx := EdgeConfig(graph.AttrVector(a), graph.AttrVector(b), w)
			if prev, ok := seen[idx]; ok {
				t.Fatalf("index %d assigned to both %v and (%d,%d)", idx, prev, a, b)
			}
			seen[idx] = [2]int{a, b}
		}
	}
	if len(seen) != NumEdgeConfigs(w) {
		t.Fatalf("covered %d indices, want %d", len(seen), NumEdgeConfigs(w))
	}
}

func TestEdgeConfigPairRoundTrip(t *testing.T) {
	w := 2
	for a := 0; a < NumNodeConfigs(w); a++ {
		for b := a; b < NumNodeConfigs(w); b++ {
			idx := EdgeConfig(graph.AttrVector(a), graph.AttrVector(b), w)
			ga, gb := EdgeConfigPair(idx, w)
			if ga != a || gb != b {
				t.Fatalf("EdgeConfigPair(%d) = (%d,%d), want (%d,%d)", idx, ga, gb, a, b)
			}
		}
	}
	mustPanic(t, func() { EdgeConfigPair(-1, 2) }, "negative index")
	mustPanic(t, func() { EdgeConfigPair(NumEdgeConfigs(2), 2) }, "index too large")
}

func TestConfigToVectorRoundTrip(t *testing.T) {
	w := 4
	for idx := 0; idx < NumNodeConfigs(w); idx++ {
		if got := NodeConfig(ConfigToVector(idx, w), w); got != idx {
			t.Fatalf("round trip failed for %d: got %d", idx, got)
		}
	}
	mustPanic(t, func() { ConfigToVector(-1, 2) }, "negative index")
	mustPanic(t, func() { ConfigToVector(4, 2) }, "index too large")
}

func TestSampleIndexFollowsDistribution(t *testing.T) {
	rng := dp.NewRand(5)
	dist := []float64{0.1, 0.6, 0.3}
	counts := make([]float64, 3)
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[SampleIndex(rng, dist)]++
	}
	for i, p := range dist {
		frac := counts[i] / trials
		if math.Abs(frac-p) > 0.01 {
			t.Fatalf("index %d frequency %v, want ≈ %v", i, frac, p)
		}
	}
}

func TestSampleIndexUnnormalisedWeights(t *testing.T) {
	rng := dp.NewRand(6)
	dist := []float64{2, 6, 2} // same shape as {0.2, 0.6, 0.2}
	counts := make([]float64, 3)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[SampleIndex(rng, dist)]++
	}
	if math.Abs(counts[1]/trials-0.6) > 0.02 {
		t.Fatalf("middle index frequency %v, want ≈ 0.6", counts[1]/trials)
	}
}

func TestSampleIndexPanics(t *testing.T) {
	rng := dp.NewRand(1)
	mustPanic(t, func() { SampleIndex(rng, nil) }, "empty distribution")
	mustPanic(t, func() { SampleIndex(rng, []float64{0, 0}) }, "all-zero distribution")
	mustPanic(t, func() { SampleIndex(rng, []float64{0.5, -0.1}) }, "negative weight")
}

// Property: EdgeConfig indices are always in range and agree across endpoint
// orderings for arbitrary vectors and widths.
func TestEdgeConfigRangeProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8, wRaw uint8) bool {
		w := int(wRaw%4) + 1
		a := graph.AttrVector(aRaw)
		b := graph.AttrVector(bRaw)
		idx := EdgeConfig(a, b, w)
		return idx >= 0 && idx < NumEdgeConfigs(w) && idx == EdgeConfig(b, a, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, fn func(), label string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	fn()
}
