package attrs

import (
	"fmt"
	"math"
	"math/rand"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

// EdgeConfigCounts returns Q_F, the number of edges connecting each unordered
// pair of node attribute configurations, indexed by EdgeConfig.
func EdgeConfigCounts(g *graph.Graph) []float64 {
	w := g.NumAttributes()
	counts := make([]float64, NumEdgeConfigs(w))
	g.ForEachEdge(func(u, v int) bool {
		counts[EdgeConfig(g.Attr(u), g.Attr(v), w)]++
		return true
	})
	return counts
}

// TrueThetaF returns the exact attribute–edge correlation distribution ΘF of
// the input graph: ΘF(y) is the fraction of edges whose endpoint attribute
// pair encodes to y. A graph with no edges yields the uniform distribution.
func TrueThetaF(g *graph.Graph) []float64 {
	return dp.NormalizeToDistribution(EdgeConfigCounts(g))
}

// UniformThetaF returns the data-independent baseline used in Section 5.2 of
// the paper: every edge configuration is assigned equal probability.
func UniformThetaF(w int) []float64 {
	y := NumEdgeConfigs(w)
	out := make([]float64, y)
	for i := range out {
		out[i] = 1 / float64(y)
	}
	return out
}

// DefaultTruncationK returns the data-independent truncation heuristic
// k = n^{1/3} (rounded to the nearest integer) recommended by the paper
// (Section 3.1); it reproduces the per-dataset values quoted in Figure 1
// (k = 12 for Last.fm and Petster, 30 for Epinions, 84 for Pokec). Since n is
// public, deriving k from it does not consume privacy budget.
func DefaultTruncationK(n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Round(math.Cbrt(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// clampNonNegative zeroes out negative noisy counts in place. Clamping is
// pure post-processing, so it never affects a privacy guarantee. Note that
// Algorithm 4 of the paper clamps counts to the range (0, n); because edge
// counts routinely exceed the node count n on real social graphs (m ≈ 3–7·n in
// Table 6), an upper clamp at n would systematically truncate the largest
// connection counts, so this implementation only clamps below at zero.
func clampNonNegative(noisy []float64) {
	for i, v := range noisy {
		if v < 0 {
			noisy[i] = 0
		}
	}
}

// LearnCorrelationsDP (Algorithm 4) releases an ε-differentially private
// estimate of ΘF using edge truncation: the input graph is projected onto the
// set of k-bounded graphs with µ(G, k), the connection counts Q_F are computed
// on the truncated graph, independent Laplace noise with scale 2k/ε is added
// to each count (Proposition 1: the truncation-then-count pipeline has global
// sensitivity 2k), and the noisy counts are clamped to be non-negative and
// normalised into a distribution.
func LearnCorrelationsDP(rng *rand.Rand, g *graph.Graph, epsilon float64, k int) []float64 {
	return learnCorrelationsDP(rng, g, epsilon, k, (*graph.Graph).Truncate, EdgeConfigCounts)
}

// learnCorrelationsDP runs Algorithm 4 with pluggable truncation and counting
// passes; the noise draws are sequential on rng, so the output depends only
// on the counts and the rng state, not on how truncation or counting were
// executed (LearnCorrelationsDPWith shards both, bit-identically).
func learnCorrelationsDP(rng *rand.Rand, g *graph.Graph, epsilon float64, k int, truncate func(*graph.Graph, int) *graph.Graph, count func(*graph.Graph) []float64) []float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("attrs: non-positive epsilon %v", epsilon))
	}
	if k < 1 {
		panic(fmt.Sprintf("attrs: truncation parameter k=%d must be at least 1", k))
	}
	counts := count(truncate(g, k))
	sensitivity := 2 * float64(k)
	noisy := dp.LaplaceVector(rng, counts, sensitivity, epsilon)
	clampNonNegative(noisy)
	return dp.NormalizeToDistribution(noisy)
}

// LearnCorrelationsSmooth releases ΘF under (ε, δ)-differential privacy using
// the direct smooth-sensitivity approach of Appendix B.1: the connection
// counts are computed on the untouched graph and perturbed with Laplace noise
// of scale 2·S*/ε, where S* is the β-smooth upper bound of Proposition 4 on
// the local sensitivity 2·dmax, with β = ε / (2·ln(1/δ)).
func LearnCorrelationsSmooth(rng *rand.Rand, g *graph.Graph, epsilon, delta float64) []float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("attrs: non-positive epsilon %v", epsilon))
	}
	beta := dp.SmoothBeta(epsilon, delta)
	n := float64(g.NumNodes())
	dmax := float64(g.MaxDegree())
	capValue := 2*n - 2
	if capValue < 2 {
		capValue = 2
	}
	local := 2 * dmax
	if local < 1 {
		local = 1 // degenerate edgeless graphs still need positive noise scale
	}
	smooth := dp.SmoothBoundLinear(local, 2, capValue, beta)
	counts := EdgeConfigCounts(g)
	noisy := make([]float64, len(counts))
	for i, c := range counts {
		noisy[i] = dp.SmoothLaplaceMechanism(rng, c, smooth, epsilon)
	}
	clampNonNegative(noisy)
	return dp.NormalizeToDistribution(noisy)
}

// LearnCorrelationsSampleAggregate releases ΘF under ε-differential privacy
// using the sample-and-aggregate approach of Appendix B.2: the nodes are
// partitioned uniformly at random into t = ⌊n/groupSize⌋ disjoint groups, the
// connection probabilities are computed on each node-induced subgraph, the
// per-group probabilities are averaged, and Laplace noise with sensitivity 2/t
// is added to each averaged probability before clamping to [0, 1] and
// re-normalising.
func LearnCorrelationsSampleAggregate(rng *rand.Rand, g *graph.Graph, epsilon float64, groupSize int) []float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("attrs: non-positive epsilon %v", epsilon))
	}
	if groupSize < 2 {
		panic(fmt.Sprintf("attrs: group size %d must be at least 2", groupSize))
	}
	n := g.NumNodes()
	t := n / groupSize
	if t < 1 {
		t = 1
	}
	w := g.NumAttributes()
	y := NumEdgeConfigs(w)

	// Random partition of the nodes into t groups of (roughly) equal size.
	perm := rng.Perm(n)
	avg := make([]float64, y)
	for group := 0; group < t; group++ {
		lo := group * n / t
		hi := (group + 1) * n / t
		sub, _ := g.InducedSubgraph(perm[lo:hi])
		probs := TrueThetaF(sub)
		if sub.NumEdges() == 0 {
			// An empty subgraph carries no correlation signal; treat its
			// contribution as uniform (TrueThetaF already returns uniform).
			probs = UniformThetaF(w)
		}
		for i := range avg {
			avg[i] += probs[i] / float64(t)
		}
	}
	sensitivity := 2 / float64(t)
	noisy := dp.LaplaceVector(rng, avg, sensitivity, epsilon)
	for i := range noisy {
		noisy[i] = dp.Clamp(noisy[i], 0, 1)
	}
	return dp.NormalizeToDistribution(noisy)
}

// LearnCorrelationsNaive releases ΘF with the naive Laplace baseline the paper
// plots as a reference (dashed line in Figure 5): Laplace noise with the
// worst-case global sensitivity 2n−2 is added to every connection count.
func LearnCorrelationsNaive(rng *rand.Rand, g *graph.Graph, epsilon float64) []float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("attrs: non-positive epsilon %v", epsilon))
	}
	n := float64(g.NumNodes())
	sensitivity := 2*n - 2
	if sensitivity < 1 {
		sensitivity = 1
	}
	counts := EdgeConfigCounts(g)
	noisy := dp.LaplaceVector(rng, counts, sensitivity, epsilon)
	clampNonNegative(noisy)
	return dp.NormalizeToDistribution(noisy)
}
