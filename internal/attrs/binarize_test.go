package attrs

import (
	"testing"
	"testing/quick"
)

func TestNewBinarizerValidation(t *testing.T) {
	if _, err := NewBinarizer(); err == nil {
		t.Fatal("empty binarizer accepted")
	}
	if _, err := NewBinarizer(1); err == nil {
		t.Fatal("cardinality 1 accepted")
	}
	if _, err := NewBinarizer(40, 40); err == nil {
		t.Fatal("width above MaxAttributes accepted")
	}
	b, err := NewBinarizer(3, 2)
	if err != nil {
		t.Fatalf("NewBinarizer(3,2): %v", err)
	}
	if b.Width() != 5 {
		t.Fatalf("Width = %d, want 5", b.Width())
	}
}

func TestBinarizerEncode(t *testing.T) {
	b, _ := NewBinarizer(3, 2) // e.g. marital status (3 values) and sex (2 values)
	a, err := b.Encode(1, 0)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Attribute 0 block occupies bits 0..2, attribute 1 block bits 3..4.
	if a.Bit(1) != 1 || a.Bit(3) != 1 {
		t.Fatalf("Encode(1,0) = %b, want bits 1 and 3 set", a)
	}
	if a.Bit(0) != 0 || a.Bit(2) != 0 || a.Bit(4) != 0 {
		t.Fatalf("Encode(1,0) = %b has stray bits", a)
	}
}

func TestBinarizerEncodeErrors(t *testing.T) {
	b, _ := NewBinarizer(3, 2)
	if _, err := b.Encode(1); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := b.Encode(3, 0); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := b.Encode(0, -1); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestBinarizerRoundTripProperty(t *testing.T) {
	b, _ := NewBinarizer(4, 3, 2)
	f := func(raw0, raw1, raw2 uint8) bool {
		v := []int{int(raw0 % 4), int(raw1 % 3), int(raw2 % 2)}
		a, err := b.Encode(v...)
		if err != nil {
			return false
		}
		got := b.Decode(a)
		return got[0] == v[0] && got[1] == v[1] && got[2] == v[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarizerDecodeDegenerateVectors(t *testing.T) {
	b, _ := NewBinarizer(3, 2)
	// No bits set: every attribute decodes to 0.
	got := b.Decode(0)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("Decode(0) = %v, want [0 0]", got)
	}
	// Multiple bits set in a block: the lowest wins.
	a, _ := b.Encode(2, 1)
	a = a.WithBit(0, 1) // also set category 0 of the first attribute
	got = b.Decode(a)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("Decode with conflicting bits = %v, want [0 1]", got)
	}
}
