// Package attrs implements the attribute side of AGM-DP: the encodings f_w and
// F_w that map node attribute vectors and edges to configuration indices, and
// the differentially private estimators for the attribute distribution ΘX
// (Algorithm 5, LearnAttributesDP) and the attribute–edge correlations ΘF
// (Algorithm 4, LearnCorrelationsDP via edge truncation, plus the
// smooth-sensitivity, sample-and-aggregate and naive-Laplace alternatives of
// Appendix B).
package attrs

import (
	"fmt"
	"math/rand"

	"agmdp/internal/graph"
)

// MaxWidth is the largest attribute width the configuration encodings
// support: NumEdgeConfigs(w) must fit in an int, which bounds w well below
// graph.MaxAttributes.
const MaxWidth = 30

// NumNodeConfigs returns |Y_w| = 2^w, the number of distinct attribute
// configurations a node can take with w binary attributes.
func NumNodeConfigs(w int) int {
	if w < 0 || w > MaxWidth {
		panic(fmt.Sprintf("attrs: attribute width %d outside [0, %d]", w, MaxWidth))
	}
	return 1 << uint(w)
}

// NumEdgeConfigs returns |Y^F_w| = C(2^w + 1, 2) = 2^w·(2^w+1)/2, the number
// of distinct unordered pairs of node configurations an undirected edge can
// connect.
func NumEdgeConfigs(w int) int {
	k := NumNodeConfigs(w)
	return k * (k + 1) / 2
}

// NodeConfig implements f_w: it maps a node attribute vector to its
// configuration index in [0, 2^w).
func NodeConfig(a graph.AttrVector, w int) int {
	k := NumNodeConfigs(w)
	idx := int(a) & (k - 1)
	return idx
}

// EdgeConfig implements F_w: it maps the unordered pair of attribute vectors
// at the endpoints of an edge to an index in [0, NumEdgeConfigs(w)), ignoring
// edge direction. The triangular indexing scheme places pair {a, b} with
// a ≤ b at index b·(b+1)/2 + a.
func EdgeConfig(ai, aj graph.AttrVector, w int) int {
	a := NodeConfig(ai, w)
	b := NodeConfig(aj, w)
	if a > b {
		a, b = b, a
	}
	return b*(b+1)/2 + a
}

// EdgeConfigPair inverts EdgeConfig: it returns the (sorted) pair of node
// configuration indices encoded by an edge-configuration index.
func EdgeConfigPair(idx, w int) (int, int) {
	if idx < 0 || idx >= NumEdgeConfigs(w) {
		panic(fmt.Sprintf("attrs: edge configuration index %d out of range for w=%d", idx, w))
	}
	b := 0
	for (b+1)*(b+2)/2 <= idx {
		b++
	}
	a := idx - b*(b+1)/2
	return a, b
}

// ConfigToVector converts a node configuration index back into an attribute
// vector (the inverse of NodeConfig).
func ConfigToVector(idx, w int) graph.AttrVector {
	if idx < 0 || idx >= NumNodeConfigs(w) {
		panic(fmt.Sprintf("attrs: node configuration index %d out of range for w=%d", idx, w))
	}
	return graph.AttrVector(idx)
}

// SampleIndex draws an index from a discrete probability distribution. The
// distribution need not be perfectly normalised; sampling is proportional to
// the weights. It panics on an empty or all-zero distribution.
func SampleIndex(rng *rand.Rand, dist []float64) int {
	if len(dist) == 0 {
		panic("attrs: SampleIndex with empty distribution")
	}
	total := 0.0
	for _, p := range dist {
		if p < 0 {
			panic("attrs: SampleIndex with negative weight")
		}
		total += p
	}
	if total <= 0 {
		panic("attrs: SampleIndex with all-zero distribution")
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, p := range dist {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(dist) - 1
}
