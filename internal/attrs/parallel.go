package attrs

// Sharded accumulation of the fitting pipeline's two histograms: the
// node-configuration counts Q_X behind Θ̃X and the edge-configuration counts
// Q_F behind Θ̃F. Both are pure integer counts, so the parallel versions are
// bit-identical to the sequential loops for every worker count: each shard
// accumulates a private partial histogram and the partials are reduced in
// shard-index order (integer-valued float64 sums are exact well below 2^53,
// so even the reduction order is immaterial — it is fixed anyway). Noise
// injection stays sequential in the callers, which is what keeps a private
// fit reproducible per (seed, epsilon) regardless of the worker count.

import (
	"math/rand"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/parallel"
)

// NodeConfigCountsWith is NodeConfigCounts with an explicit worker count
// (≤ 0 selects the process default). Graphs below the sharding threshold are
// counted sequentially. The result is bit-identical to NodeConfigCounts for
// every worker count.
func NodeConfigCountsWith(g *graph.Graph, workers int) []float64 {
	n := g.NumNodes()
	workers = parallel.Resolve(workers)
	if workers == 1 || n < parallel.MinShardEdges {
		return NodeConfigCounts(g)
	}
	w := g.NumAttributes()
	shards := parallel.Split(n, workers)
	partial := make([][]float64, len(shards))
	parallel.Do(len(shards), func(s int) {
		counts := make([]float64, NumNodeConfigs(w))
		for i := shards[s].Lo; i < shards[s].Hi; i++ {
			counts[NodeConfig(g.Attr(i), w)]++
		}
		partial[s] = counts
	})
	counts := partial[0]
	for s := 1; s < len(partial); s++ {
		for i, v := range partial[s] {
			counts[i] += v
		}
	}
	return counts
}

// EdgeConfigCountsWith is EdgeConfigCounts with an explicit worker count
// (≤ 0 selects the process default). Node ranges are split by degree weight
// (the CSR offsets are the prefix sum SplitWeighted wants), so a hub-heavy
// shard cannot dominate the wall clock on skewed graphs. Graphs below the
// sharding threshold are counted sequentially. The result is bit-identical
// to EdgeConfigCounts for every worker count.
func EdgeConfigCountsWith(g *graph.Graph, workers int) []float64 {
	workers = parallel.Resolve(workers)
	if workers == 1 || g.NumEdges() < parallel.MinShardEdges {
		return EdgeConfigCounts(g)
	}
	w := g.NumAttributes()
	shards := parallel.SplitWeighted(g.RowOffsets(), workers)
	partial := make([][]float64, len(shards))
	parallel.Do(len(shards), func(s int) {
		counts := make([]float64, NumEdgeConfigs(w))
		for u := shards[s].Lo; u < shards[s].Hi; u++ {
			au := g.Attr(u)
			for _, v := range g.NeighborsView(u) {
				if int(v) > u {
					counts[EdgeConfig(au, g.Attr(int(v)), w)]++
				}
			}
		}
		partial[s] = counts
	})
	counts := partial[0]
	for s := 1; s < len(partial); s++ {
		for i, v := range partial[s] {
			counts[i] += v
		}
	}
	return counts
}

// TrueThetaXWith is TrueThetaX with an explicit worker count for the counting
// pass; identical results for every worker count.
func TrueThetaXWith(g *graph.Graph, workers int) []float64 {
	return dp.NormalizeToDistribution(NodeConfigCountsWith(g, workers))
}

// TrueThetaFWith is TrueThetaF with an explicit worker count for the counting
// pass; identical results for every worker count.
func TrueThetaFWith(g *graph.Graph, workers int) []float64 {
	return dp.NormalizeToDistribution(EdgeConfigCountsWith(g, workers))
}

// LearnAttributesDPWith is LearnAttributesDP with an explicit worker count
// for the counting pass. The Laplace draws stay sequential on rng in index
// order, so the released estimate depends only on (graph, epsilon, rng
// state), never on the worker count.
func LearnAttributesDPWith(rng *rand.Rand, g *graph.Graph, epsilon float64, workers int) []float64 {
	return learnAttributesDP(rng, g, epsilon, NodeConfigCountsWith(g, workers))
}

// LearnCorrelationsDPWith is LearnCorrelationsDP with an explicit worker
// count for both the truncation µ(G, k) — graph.TruncateWith replays the
// order-dependent deletions over just the heavy-incident edge subsequence,
// bit-identical to the sequential operator — and the counting pass over the
// truncated graph. The Laplace draws stay sequential on rng, so the released
// estimate is bit-identical to LearnCorrelationsDP for every worker count.
func LearnCorrelationsDPWith(rng *rand.Rand, g *graph.Graph, epsilon float64, k, workers int) []float64 {
	truncate := func(g *graph.Graph, k int) *graph.Graph {
		return g.TruncateWith(k, workers)
	}
	return learnCorrelationsDP(rng, g, epsilon, k, truncate, func(truncated *graph.Graph) []float64 {
		return EdgeConfigCountsWith(truncated, workers)
	})
}
