package attrs

import (
	"math"
	"testing"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

func attributedGraph(n, w int, configOf func(i int) int) *graph.Graph {
	b := graph.NewBuilder(n, w)
	for i := 0; i < n; i++ {
		b.SetAttr(i, graph.AttrVector(configOf(i)))
	}
	return b.Finalize()
}

func TestNodeConfigCounts(t *testing.T) {
	// 60% config 0, 30% config 1, 10% config 3.
	g := attributedGraph(100, 2, func(i int) int {
		switch {
		case i < 60:
			return 0
		case i < 90:
			return 1
		default:
			return 3
		}
	})
	counts := NodeConfigCounts(g)
	want := []float64{60, 30, 0, 10}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestTrueThetaX(t *testing.T) {
	g := attributedGraph(10, 1, func(i int) int {
		if i < 7 {
			return 1
		}
		return 0
	})
	theta := TrueThetaX(g)
	if math.Abs(theta[0]-0.3) > 1e-12 || math.Abs(theta[1]-0.7) > 1e-12 {
		t.Fatalf("TrueThetaX = %v, want [0.3 0.7]", theta)
	}
}

func TestLearnAttributesDPIsDistribution(t *testing.T) {
	g := attributedGraph(200, 2, func(i int) int { return i % 4 })
	theta := LearnAttributesDP(dp.NewRand(1), g, 1.0)
	if len(theta) != 4 {
		t.Fatalf("length = %d, want 4", len(theta))
	}
	if !isDistribution(theta) {
		t.Fatalf("not a distribution: %v", theta)
	}
}

func TestLearnAttributesDPAccuracy(t *testing.T) {
	g := attributedGraph(2000, 2, func(i int) int {
		switch {
		case i < 1000:
			return 0
		case i < 1600:
			return 1
		case i < 1900:
			return 2
		default:
			return 3
		}
	})
	truth := TrueThetaX(g)
	var mae float64
	const trials = 20
	for i := 0; i < trials; i++ {
		mae += meanAbsError(truth, LearnAttributesDP(dp.NewRand(int64(i)), g, 0.5))
	}
	mae /= trials
	// Sensitivity is only 2, so with 2000 nodes the distribution should be
	// recovered almost exactly even at eps = 0.5.
	if mae > 0.01 {
		t.Fatalf("MAE = %v, want < 0.01", mae)
	}
}

func TestLearnAttributesDPErrorShrinksWithEpsilon(t *testing.T) {
	g := attributedGraph(150, 2, func(i int) int { return i % 3 })
	truth := TrueThetaX(g)
	avg := func(eps float64) float64 {
		var mae float64
		const trials = 30
		for i := 0; i < trials; i++ {
			mae += meanAbsError(truth, LearnAttributesDP(dp.NewRand(int64(i)+7), g, eps))
		}
		return mae / trials
	}
	if tight, loose := avg(5.0), avg(0.05); tight >= loose {
		t.Fatalf("MAE at eps=5 (%v) not below MAE at eps=0.05 (%v)", tight, loose)
	}
}

func TestLearnAttributesDPPanicsOnBadEpsilon(t *testing.T) {
	g := attributedGraph(10, 1, func(i int) int { return 0 })
	mustPanic(t, func() { LearnAttributesDP(dp.NewRand(1), g, 0) }, "zero epsilon")
	mustPanic(t, func() { LearnAttributesDP(dp.NewRand(1), g, -1) }, "negative epsilon")
}

func TestSampleAttributesMatchesDistribution(t *testing.T) {
	rng := dp.NewRand(9)
	thetaX := []float64{0.5, 0.2, 0.2, 0.1}
	n := 50000
	sampled := SampleAttributes(rng, thetaX, n, 2)
	if len(sampled) != n {
		t.Fatalf("sampled %d vectors, want %d", len(sampled), n)
	}
	counts := make([]float64, 4)
	for _, a := range sampled {
		counts[NodeConfig(a, 2)]++
	}
	for i, p := range thetaX {
		frac := counts[i] / float64(n)
		if math.Abs(frac-p) > 0.01 {
			t.Fatalf("config %d frequency %v, want ≈ %v", i, frac, p)
		}
	}
}

func TestSampleAttributesPanicsOnWidthMismatch(t *testing.T) {
	mustPanic(t, func() { SampleAttributes(dp.NewRand(1), []float64{1}, 5, 2) }, "width mismatch")
}
