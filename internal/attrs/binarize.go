package attrs

import (
	"fmt"

	"agmdp/internal/graph"
)

// Binarizer converts categorical node attributes into the binary attribute
// vectors the AGM-DP pipeline operates on, following the paper's prescription
// for non-binary attributes (Section 7): each categorical attribute with c
// possible values becomes c one-hot binary attributes (for example, marital
// status splits into isMarried / isDivorced / isSingleOrWidowed).
//
// The total binary width is the sum of the cardinalities and must not exceed
// graph.MaxAttributes. Note that, exactly as the paper cautions, widening the
// attribute vector does not change the sensitivity of any mechanism but does
// increase the number of counts estimated for ΘX and ΘF, so accuracy degrades
// as the total width grows.
type Binarizer struct {
	cardinalities []int
	offsets       []int
	width         int
}

// NewBinarizer creates a Binarizer for a sequence of categorical attributes
// given their cardinalities (each must be at least 2).
func NewBinarizer(cardinalities ...int) (*Binarizer, error) {
	if len(cardinalities) == 0 {
		return nil, fmt.Errorf("attrs: binarizer needs at least one attribute")
	}
	b := &Binarizer{cardinalities: append([]int(nil), cardinalities...)}
	for i, c := range cardinalities {
		if c < 2 {
			return nil, fmt.Errorf("attrs: attribute %d has cardinality %d; want ≥ 2", i, c)
		}
		b.offsets = append(b.offsets, b.width)
		b.width += c
	}
	if b.width > graph.MaxAttributes {
		return nil, fmt.Errorf("attrs: binarized width %d exceeds the maximum of %d", b.width, graph.MaxAttributes)
	}
	return b, nil
}

// Width returns the total number of binary attributes produced.
func (b *Binarizer) Width() int { return b.width }

// Encode converts one node's categorical values (one per attribute, each in
// [0, cardinality)) into a one-hot binary attribute vector.
func (b *Binarizer) Encode(values ...int) (graph.AttrVector, error) {
	if len(values) != len(b.cardinalities) {
		return 0, fmt.Errorf("attrs: got %d values for %d categorical attributes", len(values), len(b.cardinalities))
	}
	var out graph.AttrVector
	for i, v := range values {
		if v < 0 || v >= b.cardinalities[i] {
			return 0, fmt.Errorf("attrs: value %d for attribute %d outside [0, %d)", v, i, b.cardinalities[i])
		}
		out = out.WithBit(b.offsets[i]+v, 1)
	}
	return out, nil
}

// Decode recovers the categorical values from a one-hot binary vector produced
// by Encode (or sampled by the synthesis step). If a block has no bit set the
// value 0 is reported for it; if several bits are set the lowest one wins —
// both can happen for vectors sampled from a noisy ΘX, and resolving them to a
// valid category keeps downstream analyses simple.
func (b *Binarizer) Decode(a graph.AttrVector) []int {
	out := make([]int, len(b.cardinalities))
	for i, c := range b.cardinalities {
		for v := 0; v < c; v++ {
			if a.Bit(b.offsets[i]+v) == 1 {
				out[i] = v
				break
			}
		}
	}
	return out
}
