package attrs

import (
	"fmt"
	"math/rand"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

// ThetaXSensitivity is the L1 global sensitivity of the node-configuration
// count vector Q_X: changing one node's attribute vector decreases one count
// by one and increases another by one, and edge changes have no effect.
const ThetaXSensitivity = 2.0

// NodeConfigCounts returns Q_X, the number of nodes with each attribute
// configuration, indexed by NodeConfig.
func NodeConfigCounts(g *graph.Graph) []float64 {
	w := g.NumAttributes()
	counts := make([]float64, NumNodeConfigs(w))
	for i := 0; i < g.NumNodes(); i++ {
		counts[NodeConfig(g.Attr(i), w)]++
	}
	return counts
}

// TrueThetaX returns the exact attribute distribution ΘX of the input graph:
// ΘX(y) is the fraction of nodes whose attribute vector encodes to y.
func TrueThetaX(g *graph.Graph) []float64 {
	return dp.NormalizeToDistribution(NodeConfigCounts(g))
}

// LearnAttributesDP (Algorithm 5) releases an ε-differentially private
// estimate of ΘX: it computes the node-configuration counts, perturbs each
// with Laplace noise of scale 2/ε, clamps the noisy counts to [0, n] and
// normalises them into a distribution.
func LearnAttributesDP(rng *rand.Rand, g *graph.Graph, epsilon float64) []float64 {
	return learnAttributesDP(rng, g, epsilon, NodeConfigCounts(g))
}

// learnAttributesDP perturbs pre-computed node-configuration counts; the
// noise draws are sequential on rng in index order, so the output depends
// only on the counts and the rng state, not on how the counts were
// accumulated (LearnAttributesDPWith shards the counting pass).
func learnAttributesDP(rng *rand.Rand, g *graph.Graph, epsilon float64, counts []float64) []float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("attrs: non-positive epsilon %v", epsilon))
	}
	noisy := dp.LaplaceVector(rng, counts, ThetaXSensitivity, epsilon)
	n := float64(g.NumNodes())
	for i := range noisy {
		noisy[i] = dp.Clamp(noisy[i], 0, n)
	}
	return dp.NormalizeToDistribution(noisy)
}

// SampleAttributes draws a fresh attribute vector for each of n nodes
// independently from the (possibly noisy) distribution thetaX, as the AGM-DP
// synthesis step does after learning Θ̃X. The result is indexed by node ID.
func SampleAttributes(rng *rand.Rand, thetaX []float64, n, w int) []graph.AttrVector {
	if len(thetaX) != NumNodeConfigs(w) {
		panic(fmt.Sprintf("attrs: thetaX has %d entries, want %d for w=%d", len(thetaX), NumNodeConfigs(w), w))
	}
	out := make([]graph.AttrVector, n)
	for i := 0; i < n; i++ {
		out[i] = ConfigToVector(SampleIndex(rng, thetaX), w)
	}
	return out
}
