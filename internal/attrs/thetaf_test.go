package attrs

import (
	"math"
	"math/rand"
	"testing"

	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

// homophilousGraph builds a random attributed graph in which nodes with equal
// attribute configurations are considerably more likely to connect, so that
// ΘF carries real signal for the estimators to recover.
func homophilousGraph(seed int64, n, w int, pSame, pDiff float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, w)
	for i := 0; i < n; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(NumNodeConfigs(w))))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pDiff
			if NodeConfig(b.Attr(i), w) == NodeConfig(b.Attr(j), w) {
				p = pSame
			}
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Finalize()
}

func meanAbsError(a, b []float64) float64 {
	total := 0.0
	for i := range a {
		total += math.Abs(a[i] - b[i])
	}
	return total / float64(len(a))
}

func isDistribution(p []float64) bool {
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1+1e-9 {
			return false
		}
		sum += v
	}
	return math.Abs(sum-1) < 1e-9
}

func TestEdgeConfigCountsSumToEdgeCount(t *testing.T) {
	g := homophilousGraph(1, 120, 2, 0.2, 0.02)
	counts := EdgeConfigCounts(g)
	sum := 0.0
	for _, c := range counts {
		sum += c
	}
	if int(sum) != g.NumEdges() {
		t.Fatalf("counts sum to %v, want %d edges", sum, g.NumEdges())
	}
	if len(counts) != NumEdgeConfigs(2) {
		t.Fatalf("counts length = %d, want %d", len(counts), NumEdgeConfigs(2))
	}
}

func TestTrueThetaFIsDistributionAndReflectsHomophily(t *testing.T) {
	g := homophilousGraph(2, 200, 1, 0.25, 0.02)
	theta := TrueThetaF(g)
	if !isDistribution(theta) {
		t.Fatalf("TrueThetaF is not a distribution: %v", theta)
	}
	// With strong homophily, same-configuration edges (indices for pairs
	// (0,0) and (1,1)) should dominate the mixed configuration (0,1).
	same := theta[EdgeConfig(0, 0, 1)] + theta[EdgeConfig(1, 1, 1)]
	mixed := theta[EdgeConfig(0, 1, 1)]
	if same <= mixed {
		t.Fatalf("homophily not visible in ΘF: same=%v mixed=%v", same, mixed)
	}
}

func TestTrueThetaFEmptyGraphIsUniform(t *testing.T) {
	g := graph.New(10, 2)
	theta := TrueThetaF(g)
	for _, v := range theta {
		if math.Abs(v-1.0/float64(NumEdgeConfigs(2))) > 1e-12 {
			t.Fatalf("edgeless ΘF should be uniform, got %v", theta)
		}
	}
}

func TestUniformThetaF(t *testing.T) {
	u := UniformThetaF(2)
	if len(u) != 10 {
		t.Fatalf("UniformThetaF(2) length = %d, want 10", len(u))
	}
	for _, v := range u {
		if math.Abs(v-0.1) > 1e-12 {
			t.Fatalf("UniformThetaF(2) = %v, want all 0.1 (footnote 6)", u)
		}
	}
}

func TestDefaultTruncationK(t *testing.T) {
	// The paper's Figure 1 quotes k = 12 (Last.fm, n=1843), k = 12 (Petster,
	// n=1788), k = 30 (Epinions, n=26427) and k = 84 (Pokec, n=592627).
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {8, 2}, {1000, 10},
		{1843, 12}, {1788, 12}, {26427, 30}, {592627, 84},
	}
	for _, c := range cases {
		if got := DefaultTruncationK(c.n); got != c.want {
			t.Fatalf("DefaultTruncationK(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLearnCorrelationsDPOutputsDistribution(t *testing.T) {
	g := homophilousGraph(3, 150, 2, 0.2, 0.02)
	theta := LearnCorrelationsDP(dp.NewRand(1), g, 1.0, DefaultTruncationK(g.NumNodes()))
	if len(theta) != NumEdgeConfigs(2) {
		t.Fatalf("length = %d, want %d", len(theta), NumEdgeConfigs(2))
	}
	if !isDistribution(theta) {
		t.Fatalf("not a distribution: %v", theta)
	}
}

func TestLearnCorrelationsDPAccuracyAtHighEpsilon(t *testing.T) {
	g := homophilousGraph(4, 400, 2, 0.1, 0.01)
	truth := TrueThetaF(g)
	var mae float64
	const trials = 10
	for i := 0; i < trials; i++ {
		est := LearnCorrelationsDP(dp.NewRand(int64(i)), g, 5.0, DefaultTruncationK(g.NumNodes()))
		mae += meanAbsError(truth, est)
	}
	mae /= trials
	// Truncation at k = n^(1/3) barely touches this graph, and eps=5 noise is
	// small relative to hundreds of edges per configuration.
	if mae > 0.03 {
		t.Fatalf("MAE = %v at eps=5, want < 0.03", mae)
	}
}

func TestLearnCorrelationsDPBeatsBaselineAndUniform(t *testing.T) {
	g := homophilousGraph(5, 300, 2, 0.12, 0.015)
	truth := TrueThetaF(g)
	k := DefaultTruncationK(g.NumNodes())
	var truncMAE, naiveMAE float64
	const trials = 15
	for i := 0; i < trials; i++ {
		truncMAE += meanAbsError(truth, LearnCorrelationsDP(dp.NewRand(int64(i)), g, 0.5, k))
		naiveMAE += meanAbsError(truth, LearnCorrelationsNaive(dp.NewRand(int64(i)+500), g, 0.5))
	}
	if truncMAE >= naiveMAE {
		t.Fatalf("edge truncation MAE %v not better than naive Laplace %v", truncMAE, naiveMAE)
	}
	uniformMAE := meanAbsError(truth, UniformThetaF(2)) * trials
	if truncMAE >= uniformMAE {
		t.Fatalf("edge truncation MAE %v not better than the uniform baseline %v", truncMAE, uniformMAE)
	}
}

func TestLearnCorrelationsDPErrorDecreasesWithEpsilon(t *testing.T) {
	g := homophilousGraph(6, 300, 2, 0.12, 0.015)
	truth := TrueThetaF(g)
	k := DefaultTruncationK(g.NumNodes())
	avg := func(eps float64) float64 {
		var mae float64
		const trials = 15
		for i := 0; i < trials; i++ {
			mae += meanAbsError(truth, LearnCorrelationsDP(dp.NewRand(int64(i)*3+1), g, eps, k))
		}
		return mae / trials
	}
	if tight, loose := avg(2.0), avg(0.05); tight >= loose {
		t.Fatalf("MAE at eps=2 (%v) not below MAE at eps=0.05 (%v)", tight, loose)
	}
}

func TestLearnCorrelationsDPPanics(t *testing.T) {
	g := homophilousGraph(7, 30, 1, 0.2, 0.05)
	mustPanic(t, func() { LearnCorrelationsDP(dp.NewRand(1), g, 0, 3) }, "zero epsilon")
	mustPanic(t, func() { LearnCorrelationsDP(dp.NewRand(1), g, 1, 0) }, "k = 0")
}

func TestLearnCorrelationsSmoothOutputsDistribution(t *testing.T) {
	g := homophilousGraph(8, 200, 2, 0.15, 0.02)
	theta := LearnCorrelationsSmooth(dp.NewRand(1), g, 1.0, 1e-6)
	if !isDistribution(theta) {
		t.Fatalf("not a distribution: %v", theta)
	}
	mustPanic(t, func() { LearnCorrelationsSmooth(dp.NewRand(1), g, 0, 1e-6) }, "zero epsilon")
	mustPanic(t, func() { LearnCorrelationsSmooth(dp.NewRand(1), g, 1, 0) }, "zero delta")
}

func TestLearnCorrelationsSmoothHandlesEdgelessGraph(t *testing.T) {
	g := graph.New(20, 1)
	theta := LearnCorrelationsSmooth(dp.NewRand(1), g, 1.0, 1e-6)
	if !isDistribution(theta) {
		t.Fatalf("not a distribution: %v", theta)
	}
}

func TestLearnCorrelationsSampleAggregateOutputsDistribution(t *testing.T) {
	g := homophilousGraph(9, 300, 2, 0.15, 0.02)
	theta := LearnCorrelationsSampleAggregate(dp.NewRand(1), g, 1.0, 30)
	if !isDistribution(theta) {
		t.Fatalf("not a distribution: %v", theta)
	}
	mustPanic(t, func() { LearnCorrelationsSampleAggregate(dp.NewRand(1), g, 0, 30) }, "zero epsilon")
	mustPanic(t, func() { LearnCorrelationsSampleAggregate(dp.NewRand(1), g, 1, 1) }, "group size 1")
}

func TestLearnCorrelationsSampleAggregateRecoversSignalAtHighEpsilon(t *testing.T) {
	g := homophilousGraph(10, 600, 1, 0.1, 0.01)
	truth := TrueThetaF(g)
	var mae float64
	const trials = 10
	for i := 0; i < trials; i++ {
		mae += meanAbsError(truth, LearnCorrelationsSampleAggregate(dp.NewRand(int64(i)), g, 5.0, 60))
	}
	mae /= trials
	uniformMAE := meanAbsError(truth, UniformThetaF(1))
	if mae >= uniformMAE {
		t.Fatalf("S&A MAE %v not better than uniform baseline %v", mae, uniformMAE)
	}
}

func TestLearnCorrelationsNaiveOutputsDistribution(t *testing.T) {
	g := homophilousGraph(11, 100, 2, 0.15, 0.02)
	theta := LearnCorrelationsNaive(dp.NewRand(1), g, 0.5)
	if !isDistribution(theta) {
		t.Fatalf("not a distribution: %v", theta)
	}
	mustPanic(t, func() { LearnCorrelationsNaive(dp.NewRand(1), g, 0) }, "zero epsilon")
}

func TestTruncationSensitivityScalesWithK(t *testing.T) {
	// For a fixed epsilon, a smaller k means less noise per count. On a graph
	// whose max degree is already small, k values above dmax should behave
	// identically in terms of what is counted (no edges removed).
	g := homophilousGraph(12, 200, 2, 0.05, 0.01)
	k := g.MaxDegree()
	truncated := g.Truncate(k)
	if truncated.NumEdges() != g.NumEdges() {
		t.Fatalf("truncation at dmax removed edges")
	}
	countsA := EdgeConfigCounts(g)
	countsB := EdgeConfigCounts(truncated)
	for i := range countsA {
		if countsA[i] != countsB[i] {
			t.Fatalf("counts differ at %d despite identical graphs", i)
		}
	}
}
