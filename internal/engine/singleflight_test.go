package engine

import (
	"sync"
	"testing"
	"time"

	"agmdp/internal/core"
)

// countingCache is an AcceptanceCache that counts stores, so tests can
// assert how many table fits actually ran.
type countingCache struct {
	mu     sync.Mutex
	tables map[string][]float64
	sets   int
}

func newCountingCache() *countingCache {
	return &countingCache{tables: make(map[string][]float64)}
}

func (c *countingCache) Acceptance(id string) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[id]
	return t, ok
}

func (c *countingCache) SetAcceptance(id string, table []float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[id] = table
	c.sets++
	return true
}

func (c *countingCache) stores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sets
}

// TestAcceptanceTableLeaderFitsOnce covers the leader path: a cold cache
// triggers exactly one fit and the table lands in the cache.
func TestAcceptanceTableLeaderFitsOnce(t *testing.T) {
	cache := newCountingCache()
	e := New(Config{Workers: 1, Acceptance: cache})
	defer e.Close()
	m := fixtureModel(t)
	req := Request{Model: m, CacheKey: "k"}
	table, err := e.acceptanceTable(req, core.SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || cache.stores() != 1 {
		t.Fatalf("leader path: table %v, %d stores (want 1)", table != nil, cache.stores())
	}
	// A warm cache is served without another fit.
	if _, err := e.acceptanceTable(req, core.SampleOptions{}); err != nil {
		t.Fatal(err)
	}
	if cache.stores() != 1 {
		t.Fatalf("warm hit refitted the table: %d stores", cache.stores())
	}
}

// TestAcceptanceTableFollowersWaitForLeader pins the single-flight contract:
// callers that find a fit in flight block until it completes and then read
// the cached table instead of fitting their own copy.
func TestAcceptanceTableFollowersWaitForLeader(t *testing.T) {
	cache := newCountingCache()
	e := New(Config{Workers: 1, Acceptance: cache})
	defer e.Close()
	m := fixtureModel(t)
	req := Request{Model: m, CacheKey: "k"}

	// Pose as the in-flight leader by planting the flight channel directly.
	ch := make(chan struct{})
	e.fitMu.Lock()
	e.fitting["k"] = ch
	e.fitMu.Unlock()

	const followers = 8
	results := make(chan []float64, followers)
	for i := 0; i < followers; i++ {
		go func() {
			table, err := e.acceptanceTable(req, core.SampleOptions{})
			if err != nil {
				t.Error(err)
			}
			results <- table
		}()
	}
	// No follower may return (or fit) while the flight is open.
	select {
	case <-results:
		t.Fatal("a follower returned while the leader was still fitting")
	case <-time.After(50 * time.Millisecond):
	}
	if cache.stores() != 0 {
		t.Fatalf("a follower fitted its own table: %d stores", cache.stores())
	}

	// The "leader" publishes the table and closes the flight; every
	// follower must drain with the published table and zero extra fits.
	want, err := core.FitAcceptanceTable(m, core.SampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cache.SetAcceptance("k", want)
	e.fitMu.Lock()
	delete(e.fitting, "k")
	e.fitMu.Unlock()
	close(ch)

	for i := 0; i < followers; i++ {
		select {
		case table := <-results:
			if len(table) != len(want) {
				t.Fatalf("follower table has %d entries, want %d", len(table), len(want))
			}
		case <-time.After(10 * time.Second):
			t.Fatal("follower did not drain after the flight closed")
		}
	}
	if cache.stores() != 1 {
		t.Fatalf("%d stores after drain, want only the leader's", cache.stores())
	}
}
