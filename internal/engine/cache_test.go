package engine

import (
	"context"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/registry"
)

// The registry is the production implementation of the acceptance cache.
var _ AcceptanceCache = (*registry.Registry)(nil)

// cacheFixture stores the fixture model in a fresh in-memory registry and
// returns the registry and the model's cache key.
func cacheFixture(t *testing.T) (*registry.Registry, string) {
	t.Helper()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := reg.Put(fixtureModel(t))
	if err != nil {
		t.Fatal(err)
	}
	return reg, id
}

func TestAcceptanceCacheWarmAndColdAgree(t *testing.T) {
	sample := func(reg *registry.Registry, id string) *graph.Graph {
		e := New(Config{Workers: 1, Seed: 1, Parallelism: 1, Acceptance: reg})
		defer e.Close()
		m, ok := reg.Model(id)
		if !ok {
			t.Fatal("model missing from registry")
		}
		g, err := e.Sample(context.Background(), Request{Model: m, Seed: 99, CacheKey: id})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	regA, idA := cacheFixture(t)
	cold := sample(regA, idA)
	if _, ok := regA.Acceptance(idA); !ok {
		t.Fatal("sampling did not populate the acceptance cache")
	}
	warm := sample(regA, idA) // second sample hits the cached table
	if !cold.Equal(warm) {
		t.Fatal("warm cache changed a seeded sample")
	}
	// A completely fresh registry (cold cache) must reproduce the same graph:
	// the table is a pure function of the model, not of cache history.
	regB, idB := cacheFixture(t)
	if !cold.Equal(sample(regB, idB)) {
		t.Fatal("cold cache in a fresh registry produced a different graph")
	}
	if cold.NumEdges() == 0 {
		t.Fatal("cached-path sample has no edges")
	}
}

func TestAcceptanceCacheBypassedForExplicitIterations(t *testing.T) {
	reg, id := cacheFixture(t)
	e := New(Config{Workers: 1, Seed: 1, Parallelism: 1, Acceptance: reg})
	defer e.Close()
	m, _ := reg.Model(id)
	if _, err := e.Sample(context.Background(), Request{Model: m, Seed: 7, Iterations: 2, CacheKey: id}); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Acceptance(id); ok {
		t.Fatal("explicit-iterations request must not populate the acceptance cache")
	}
}

func TestAcceptanceCacheIgnoredWithoutKey(t *testing.T) {
	reg, id := cacheFixture(t)
	e := New(Config{Workers: 1, Seed: 1, Parallelism: 1, Acceptance: reg})
	defer e.Close()
	m, _ := reg.Model(id)
	// No CacheKey: the classic refinement path, identical to a cache-less
	// engine with the same seed.
	g1, err := e.Sample(context.Background(), Request{Model: m, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plain := New(Config{Workers: 1, Seed: 1, Parallelism: 1})
	defer plain.Close()
	g2, err := plain.Sample(context.Background(), Request{Model: m, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatal("keyless request diverged from the cache-less engine")
	}
}

func TestRequestParallelismOverrideIsDeterministic(t *testing.T) {
	m := fixtureModel(t)
	e := New(Config{Workers: 1, Seed: 1, Parallelism: 1})
	defer e.Close()
	run := func(par int) *graph.Graph {
		g, err := e.Sample(context.Background(), Request{Model: m, Seed: 13, Iterations: 1, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if !run(4).Equal(run(4)) {
		t.Fatal("same seed + same per-request parallelism gave different graphs")
	}
}
