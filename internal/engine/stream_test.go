package engine

import (
	"bytes"
	"context"
	"testing"

	"agmdp/internal/graph"
	"agmdp/internal/registry"
)

// encodeSource serializes a row source through the streaming encoder.
func encodeSource(t *testing.T, src graph.RowSource) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinaryTo(&buf, src); err != nil {
		t.Fatalf("WriteBinaryTo: %v", err)
	}
	return buf.Bytes()
}

func TestSampleSourceSeededMatchesSampleSeeded(t *testing.T) {
	m := fixtureModel(t)
	e := New(Config{Workers: 2, Seed: 1})
	defer e.Close()

	g, seed1, err := e.SampleSeeded(context.Background(), Request{Model: m, Seed: 42, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	src, seed2, err := e.SampleSourceSeeded(context.Background(), Request{Model: m, Seed: 42, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seed1 != seed2 {
		t.Fatalf("resolved seeds differ: %d vs %d", seed1, seed2)
	}
	var mono bytes.Buffer
	if err := g.WriteBinary(&mono); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mono.Bytes(), encodeSource(t, src)) {
		t.Fatal("streamed sample encoding differs from the materialized sample")
	}
}

// TestSampleSourceSeededCachedPathMatches repeats the byte-identity check on
// the acceptance-cache fast path: a default-shaped request against a cached
// model must stream the same bytes the materialized entry point returns.
func TestSampleSourceSeededCachedPathMatches(t *testing.T) {
	m := fixtureModel(t)
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := reg.Put(m)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, Seed: 1, Acceptance: reg})
	defer e.Close()

	req := Request{Model: m, CacheKey: id, Seed: 17}
	g, _, err := e.SampleSeeded(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	src, _, err := e.SampleSourceSeeded(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var mono bytes.Buffer
	if err := g.WriteBinary(&mono); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mono.Bytes(), encodeSource(t, src)) {
		t.Fatal("cached-path streamed encoding differs from the materialized sample")
	}
}
