package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"agmdp/internal/core"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
)

// fixtureModel fits a small non-private model for sampling tests.
func fixtureModel(t testing.TB) *core.FittedModel {
	t.Helper()
	rng := dp.NewRand(42)
	b := graph.NewBuilder(60, 2)
	for i := 0; i < 200; i++ {
		b.AddEdge(rng.Intn(60), rng.Intn(60))
	}
	for i := 0; i < 60; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(4)))
	}
	return core.Fit(b.Finalize(), nil)
}

func TestSampleSeededDeterministicAcrossWorkerCounts(t *testing.T) {
	m := fixtureModel(t)
	sample := func(workers int) *graph.Graph {
		e := New(Config{Workers: workers, Seed: 1})
		defer e.Close()
		g, err := e.Sample(context.Background(), Request{Model: m, Seed: 99, Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// An explicitly seeded job is deterministic no matter how many pool
	// workers exist (intra-job Parallelism is what changes the draw).
	g1, g4 := sample(1), sample(4)
	if !g1.Equal(g4) {
		t.Fatal("seeded job varies with pool size")
	}
	if g1.NumEdges() == 0 {
		t.Fatal("sampled graph has no edges")
	}
}

func TestSampleSeededDeterministicWithParallelism(t *testing.T) {
	m := fixtureModel(t)
	sample := func() *graph.Graph {
		e := New(Config{Workers: 2, Parallelism: 4, Seed: 1})
		defer e.Close()
		g, err := e.Sample(context.Background(), Request{Model: m, Seed: 7, Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if !sample().Equal(sample()) {
		t.Fatal("same seed + same parallelism gave different graphs")
	}
}

func TestConcurrentJobsAllComplete(t *testing.T) {
	m := fixtureModel(t)
	e := New(Config{Workers: 4, QueueSize: 2, Seed: 1})
	defer e.Close()

	const jobs = 16
	results := make([]*graph.Graph, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := e.Sample(context.Background(), Request{Model: m, Seed: int64(i) + 1, Iterations: 1})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = g
		}(i)
	}
	wg.Wait()
	for i, g := range results {
		if g == nil || g.NumNodes() != m.N {
			t.Fatalf("job %d: bad result", i)
		}
	}
	if got := e.Stats().Completed; got != jobs {
		t.Fatalf("Completed = %d, want %d", got, jobs)
	}
}

func TestUnseededJobsDrawFromWorkerStreams(t *testing.T) {
	m := fixtureModel(t)
	e := New(Config{Workers: 1, Seed: 5})
	defer e.Close()
	g1, err := e.Sample(context.Background(), Request{Model: m, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Sample(context.Background(), Request{Model: m, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive unseeded jobs on one worker advance its stream: the two
	// graphs should differ (equality would mean the stream is stuck).
	if g1.Equal(g2) {
		t.Fatal("worker stream did not advance between jobs")
	}
	// A fresh engine with the same base seed replays the same stream.
	e2 := New(Config{Workers: 1, Seed: 5})
	defer e2.Close()
	h1, err := e2.Sample(context.Background(), Request{Model: m, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(h1) {
		t.Fatal("same base seed did not replay the worker stream")
	}
}

func TestModelKindOverride(t *testing.T) {
	m := fixtureModel(t) // fitted for TriCycLe
	e := New(Config{Workers: 1, Seed: 1})
	defer e.Close()
	if _, err := e.Sample(context.Background(), Request{Model: m, Seed: 3, ModelKind: "fcl"}); err != nil {
		t.Fatalf("fcl override: %v", err)
	}
	if _, err := e.Sample(context.Background(), Request{Model: m, Seed: 3, ModelKind: "nope"}); err == nil {
		t.Fatal("unknown model kind accepted")
	}
}

func TestSampleAfterCloseFails(t *testing.T) {
	e := New(Config{Workers: 1})
	e.Close()
	e.Close() // idempotent
	if _, err := e.Sample(context.Background(), Request{Model: fixtureModel(t), Seed: 1}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSampleNilModel(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	if _, err := e.Sample(context.Background(), Request{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestSampleRespectsContext(t *testing.T) {
	m := fixtureModel(t)
	e := New(Config{Workers: 1, QueueSize: 1, Seed: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := e.Sample(ctx, Request{Model: m, Seed: 1}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sample blocked")
	}
}

func TestStatsSnapshot(t *testing.T) {
	e := New(Config{Workers: 3, QueueSize: 7, Parallelism: 2})
	defer e.Close()
	s := e.Stats()
	if s.Workers != 3 || s.QueueCap != 7 || s.Parallelism != 2 {
		t.Fatalf("Stats = %+v", s)
	}
}
