// Package engine provides a concurrent synthesis engine for fitted AGM-DP
// models: a fixed pool of workers drains a bounded job queue, each worker owns
// a deterministic RNG stream (base seed + worker index), and individual
// sampling jobs additionally shard their structural generation — Chung–Lu
// edge proposals and TriCycLe rewiring batches — across intra-job streams
// that execute on the process-wide worker pool (internal/parallel), so job
// throughput and per-job latency scale without oversubscribing the machine.
// An optional acceptance-table cache (the registry) lets repeat samples of a
// model skip the per-sample refinement rounds.
//
// Sampling a fitted model consumes no privacy budget (post-processing), so
// the engine can serve an unbounded number of synthesis requests from one
// expensive fit. Determinism contract: a job that carries an explicit seed
// produces the same graph no matter which worker runs it or how loaded the
// engine is; jobs without a seed draw one from the executing worker's stream
// and are reproducible only under identical scheduling.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"agmdp/internal/core"
	"agmdp/internal/dp"
	"agmdp/internal/graph"
	"agmdp/internal/obs"
	"agmdp/internal/parallel"
	"agmdp/internal/structural"
)

// Engine metrics on the process-wide default registry. The counters and the
// histogram are shared by every engine in the process (production runs one);
// live queue/in-flight gauges for a specific engine are wired by the server
// through Stats-reading gauge funcs. Instrumentation reads clocks only —
// seeds and worker RNG streams are untouched.
var (
	engineSamples = obs.Default().CounterVec("agmdp_engine_samples_total",
		"Samples drawn by the synthesis engine, by result.", "result")
	engineSampleDur = obs.Default().Histogram("agmdp_engine_sample_duration_seconds",
		"Wall-clock duration of one engine sample (structural generation, refinement and attribute attachment).")
	engineTableFits = obs.Default().Counter("agmdp_engine_acceptance_table_fits_total",
		"Acceptance-table cold-cache fits performed by the engine.")
)

// ErrClosed is returned by Sample after Close has been called.
var ErrClosed = errors.New("engine: closed")

// Config configures an Engine.
type Config struct {
	// Workers is the number of concurrent sampling workers; values below 1
	// select runtime.GOMAXPROCS(0).
	Workers int
	// QueueSize bounds the job queue; Sample blocks (respecting its context)
	// while the queue is full, which gives natural backpressure under load.
	// Values below 1 select 4×Workers.
	QueueSize int
	// Seed is the base seed for the per-worker RNG streams: worker i draws
	// from a stream seeded with Seed+i. Jobs with explicit seeds ignore the
	// worker streams entirely.
	Seed int64
	// Parallelism is the number of intra-job proposal streams handed to the
	// structural samplers: ≤ 0 means "auto" (the process default,
	// runtime.GOMAXPROCS unless overridden with parallel.SetParallelism),
	// 1 samples each job sequentially. It is independent of Workers: Workers
	// scales throughput across jobs, Parallelism scales latency within one
	// job. Both fan out on the same shared worker pool, so raising both does
	// not oversubscribe the machine — shard tasks queue behind the pool's
	// GOMAXPROCS residents.
	Parallelism int
	// Acceptance, when non-nil, caches per-model acceptance tables so
	// sampling jobs skip the per-sample refinement rounds; see the
	// AcceptanceCache interface. The registry satisfies it.
	Acceptance AcceptanceCache
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize < 1 {
		c.QueueSize = 4 * c.Workers
	}
	// Parallelism is deliberately NOT resolved here: ≤ 0 stays "auto" so a
	// later parallel.SetParallelism call still affects this engine's jobs
	// (the generators resolve at use time).
	return c
}

// Request describes one sampling job.
type Request struct {
	// Model is the fitted model to sample from. Required.
	Model *core.FittedModel
	// Seed, when non-zero, makes the job fully deterministic: equal seeds (at
	// equal engine Parallelism) give byte-identical graphs. Zero draws a seed
	// from the executing worker's stream.
	Seed int64
	// Iterations is the number of acceptance-probability refinement rounds;
	// zero selects core.DefaultSampleIterations.
	Iterations int
	// ModelKind optionally overrides the structural model ("tricycle", "fcl",
	// "tcl"); empty uses the model the parameters were fitted for.
	ModelKind string
	// Parallelism overrides the engine's intra-job stream count for this job
	// only; 0 keeps the engine default, 1 forces sequential sampling. The
	// resolved value is part of the determinism contract: equal seeds give
	// equal graphs only at equal parallelism.
	Parallelism int
	// CacheKey, when non-empty, identifies the model (its registry ID) for
	// acceptance-table caching. It is consulted only when the engine has an
	// Acceptance cache and the request uses default Iterations; see
	// AcceptanceCache.
	CacheKey string
}

// Stats is a point-in-time snapshot of engine load, served by /healthz.
type Stats struct {
	Workers     int   `json:"workers"`
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	Parallelism int   `json:"parallelism"`
	InFlight    int64 `json:"in_flight"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
}

// job pairs a request with its reply channel.
type job struct {
	ctx    context.Context
	req    Request
	seed   int64 // resolved seed; 0 means "draw from worker stream"
	stream bool  // return the generator's row source instead of a packed graph
	result chan jobResult
}

type jobResult struct {
	src  graph.RowSource // *graph.Graph unless the job asked to stream
	seed int64           // the seed that actually drove the draw
	err  error
}

// Engine is a concurrent sampling worker pool. Construct with New; the zero
// value is not usable.
type Engine struct {
	cfg       Config
	jobs      chan *job
	wg        sync.WaitGroup
	mu        sync.RWMutex
	closed    bool
	completed atomic.Int64
	failed    atomic.Int64
	inFlight  atomic.Int64

	// fitMu/fitting single-flight the acceptance-table fits: when several
	// workers miss the cache for the same cold model at once, one fits and
	// the rest wait for its result instead of burning a structural
	// generation each on identical work (tables are pure functions of the
	// model, so every duplicate would have produced the same bytes).
	fitMu   sync.Mutex
	fitting map[string]chan struct{}
}

// New starts an engine with cfg.Workers sampling workers. Callers must Close
// the engine to release them.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		jobs:    make(chan *job, cfg.QueueSize),
		fitting: make(map[string]chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e
}

// worker drains the job queue. Each worker owns the deterministic stream
// seeded with cfg.Seed + its index, consumed only by jobs without explicit
// seeds.
func (e *Engine) worker(index int) {
	defer e.wg.Done()
	stream := dp.NewRand(e.cfg.Seed + int64(index))
	for j := range e.jobs {
		if err := j.ctx.Err(); err != nil {
			// The caller already gave up; don't burn a core on the sample.
			j.result <- jobResult{err: err}
			continue
		}
		seed := j.seed
		for seed == 0 {
			seed = stream.Int63()
		}
		e.inFlight.Add(1)
		start := time.Now()
		var src graph.RowSource
		var err error
		if j.stream {
			src, err = e.sampleSource(j.req, seed)
		} else {
			src, err = e.sampleOnce(j.req, seed)
		}
		engineSampleDur.ObserveDuration(time.Since(start))
		e.inFlight.Add(-1)
		if err != nil {
			e.failed.Add(1)
			engineSamples.With("error").Inc()
		} else {
			e.completed.Add(1)
			engineSamples.With("ok").Inc()
		}
		j.result <- jobResult{src: src, seed: seed, err: err}
	}
}

// AcceptanceCache stores fitted acceptance tables keyed by model ID. The
// registry implements it; any implementation must be safe for concurrent use
// and must drop a model's table when the model itself is evicted. Tables are
// pure functions of the model parameters (core.FitAcceptanceTable derives its
// rng from the model's content address), so a warm and a cold cache produce
// byte-identical samples for equal (model, seed) pairs.
type AcceptanceCache interface {
	// Acceptance returns the cached table for a model ID, if present. The
	// returned slice is shared and must be treated as read-only.
	Acceptance(id string) ([]float64, bool)
	// SetAcceptance stores a table for a model ID, reporting whether the
	// model is known to the cache.
	SetAcceptance(id string, table []float64) bool
}

// sampleOnce draws one synthetic graph with a concrete seed.
func (e *Engine) sampleOnce(req Request, seed int64) (*graph.Graph, error) {
	src, err := e.sampleSource(req, seed)
	if err != nil {
		return nil, err
	}
	return graph.Materialize(src), nil
}

// sampleSource draws one synthetic graph with a concrete seed, returning the
// sampler's streaming row-level view (the generator's builder with attributes
// overlaid; see core.SampleSource). The rng trace is identical to sampleOnce's
// — materialising the source reproduces sampleOnce byte for byte — so the
// materialised and streamed paths share one determinism contract per (seed,
// resolved parallelism), as well as the acceptance-table cache gating below.
func (e *Engine) sampleSource(req Request, seed int64) (graph.RowSource, error) {
	par := req.Parallelism
	if par <= 0 {
		par = e.cfg.Parallelism
	}
	model, err := e.structuralModel(req.ModelKind, req.Model.ModelName, par)
	if err != nil {
		return nil, err
	}
	opts := core.SampleOptions{Iterations: req.Iterations, Model: model}

	// Cached acceptance path: plain requests (default iterations, no model
	// override) sample with the model's pre-fitted acceptance table, turning
	// 1+Iterations structural generations into one. Tables are fitted
	// sequentially (parallelism 1) on a miss, so a table is a pure function
	// of the model parameters — the same on every host, regardless of core
	// count, engine flags, or which request happened to populate the cache.
	// Gate on the *resolved* iteration count: an explicit Iterations equal to
	// the default is the same request as omitting it, so both take the same
	// path (and return the same graph for the same seed).
	if e.cfg.Acceptance != nil && req.CacheKey != "" && req.ModelKind == "" &&
		(req.Iterations <= 0 || req.Iterations == core.DefaultSampleIterations) {
		table, err := e.acceptanceTable(req, opts)
		if err != nil {
			return nil, err
		}
		return core.SampleSourceWithTable(dp.NewRand(seed), req.Model, table, opts)
	}
	return core.SampleSource(dp.NewRand(seed), req.Model, opts)
}

// acceptanceTable returns the model's fitted acceptance table, fitting and
// caching it on a miss. Concurrent misses for the same key are
// single-flighted: the first caller fits (FitAcceptanceTable pins sequential
// generation internally, so the table cannot depend on this host's core
// count or flags), the rest block until the table lands in the cache and
// read it from there. If the leader fails, one waiter at a time retakes the
// flight, so a transient failure cannot wedge followers on a missing table.
func (e *Engine) acceptanceTable(req Request, opts core.SampleOptions) ([]float64, error) {
	for {
		if table, ok := e.cfg.Acceptance.Acceptance(req.CacheKey); ok {
			return table, nil
		}
		e.fitMu.Lock()
		if ch, ok := e.fitting[req.CacheKey]; ok {
			e.fitMu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		e.fitting[req.CacheKey] = ch
		e.fitMu.Unlock()

		engineTableFits.Inc()
		table, err := core.FitAcceptanceTable(req.Model, opts)
		if err == nil {
			e.cfg.Acceptance.SetAcceptance(req.CacheKey, table)
		}
		e.fitMu.Lock()
		delete(e.fitting, req.CacheKey)
		e.fitMu.Unlock()
		close(ch)
		return table, err
	}
}

// structuralModel resolves a model name to an implementation carrying the
// job's intra-job parallelism.
func (e *Engine) structuralModel(kind, fittedName string, parallelism int) (structural.Model, error) {
	if kind == "" {
		kind = fittedName
	}
	return structural.ByName(kind, parallelism)
}

// Sample enqueues one job and blocks until it completes, the context is
// cancelled, or the engine is closed. It is safe for concurrent use; when the
// bounded queue is full it blocks, which is the engine's backpressure
// mechanism.
func (e *Engine) Sample(ctx context.Context, req Request) (*graph.Graph, error) {
	g, _, err := e.SampleSeeded(ctx, req)
	return g, err
}

// SampleSeeded is Sample, but additionally returns the seed that actually
// drove the draw: the request's own seed, or — for unseeded jobs — the one
// drawn from the executing worker's stream. Returning it is what keeps
// auto-seeded samples reproducible after the fact.
func (e *Engine) SampleSeeded(ctx context.Context, req Request) (*graph.Graph, int64, error) {
	src, seed, err := e.run(ctx, req, false)
	if err != nil {
		return nil, 0, err
	}
	return src.(*graph.Graph), seed, nil
}

// SampleSourceSeeded is SampleSeeded returning the sampler's streaming
// row-level view instead of a packed CSR graph: for the shipped structural
// models the source is the generator's still-mutable builder with attributes
// overlaid, so an encoder can serve sorted row ranges without the final
// offsets/neighbors arrays ever being packed. The source is byte-identical
// under graph.Materialize to the graph SampleSeeded returns for the same
// (seed, resolved parallelism), and goes through the same queue, worker
// streams and acceptance-table cache. The returned source is owned by the
// caller; it is not shared with the engine after the call returns.
func (e *Engine) SampleSourceSeeded(ctx context.Context, req Request) (graph.RowSource, int64, error) {
	return e.run(ctx, req, true)
}

// run enqueues one job and blocks until it completes, the context is
// cancelled, or the engine is closed.
func (e *Engine) run(ctx context.Context, req Request, stream bool) (graph.RowSource, int64, error) {
	if req.Model == nil {
		return nil, 0, errors.New("engine: nil model in request")
	}
	j := &job{ctx: ctx, req: req, seed: req.Seed, stream: stream, result: make(chan jobResult, 1)}

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	select {
	case e.jobs <- j:
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		return nil, 0, ctx.Err()
	}

	select {
	case res := <-j.result:
		return res.src, res.seed, res.err
	case <-ctx.Done():
		// The job may still run to completion on a worker; its result is
		// discarded via the buffered channel.
		return nil, 0, ctx.Err()
	}
}

// Stats returns a snapshot of the engine's load counters. Parallelism is
// reported resolved (what an auto-parallelism job would use right now).
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:     e.cfg.Workers,
		QueueDepth:  len(e.jobs),
		QueueCap:    cap(e.jobs),
		Parallelism: parallel.Resolve(e.cfg.Parallelism),
		InFlight:    e.inFlight.Load(),
		Completed:   e.completed.Load(),
		Failed:      e.failed.Load(),
	}
}

// Close stops accepting new jobs, drains the queue, and waits for in-flight
// jobs to finish. It is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}
