package server

// Serve-level analytics tests: bundle byte-identity across cold, warm and
// restarted serves, corrupt-cache recovery, the evaluate endpoint in both
// modes, sample-request memoisation, and tenant scoping of both new routes.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"agmdp/internal/analytics"
	"agmdp/internal/engine"
	"agmdp/internal/graphstore"
	"agmdp/internal/jobs"
	"agmdp/internal/registry"
	"agmdp/internal/tenant"
)

// newAnalyticsServer builds the service around a persistent graph store and
// a dir-backed analytics cache sharing dir, mirroring cmd/agmdp-serve's
// -graph-store wiring. The returned cache lets tests inspect warnings.
func newAnalyticsServer(t *testing.T, dir string) (*httptest.Server, *analytics.Cache) {
	t.Helper()
	store, err := graphstore.Open(graphstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := analytics.NewCache(analytics.Options{Source: store, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1, Acceptance: reg})
	t.Cleanup(eng.Close)
	mgr, err := jobs.New(jobs.Options{Engine: eng, Store: store, Models: reg, SampleTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv, err := New(Config{
		Registry:      reg,
		Engine:        eng,
		Graphs:        store,
		Jobs:          mgr,
		Analytics:     cache,
		SampleTimeout: 30 * time.Second,
		MaxJobSamples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, cache
}

// getBody fetches a URL, asserting the status, and returns the raw body.
func getBody(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

// metricValue reads one counter from the Prometheus exposition on /metrics.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	body := getBody(t, ts.URL+"/metrics", http.StatusOK)
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	return 0
}

func TestGraphMetricsColdWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newAnalyticsServer(t, dir)
	id := uploadBinary(t, ts, testUploadGraph(11))
	url := ts.URL + "/v1/graphs/" + id + "/metrics"

	hits0 := metricValue(t, ts, "agmdp_analytics_cache_hits_total")
	computes0 := metricValue(t, ts, "agmdp_analytics_computes_total")
	cold := getBody(t, url, http.StatusOK)
	warm := getBody(t, url, http.StatusOK)
	if string(cold) != string(warm) {
		t.Fatalf("warm body differs from cold:\n%s\n%s", cold, warm)
	}
	if !strings.Contains(string(cold), `"graph_id":"`+id+`"`) ||
		!strings.Contains(string(cold), `"degree_histogram"`) {
		t.Fatalf("bundle missing expected fields: %s", cold)
	}
	if d := metricValue(t, ts, "agmdp_analytics_computes_total") - computes0; d != 1 {
		t.Fatalf("computes delta = %v, want 1 (warm serve must not recompute)", d)
	}
	if d := metricValue(t, ts, "agmdp_analytics_cache_hits_total") - hits0; d != 1 {
		t.Fatalf("hits delta = %v, want 1", d)
	}

	// A restarted server over the same directory serves the persisted bundle
	// byte-identically without recomputing.
	ts.Close()
	ts2, cache2 := newAnalyticsServer(t, dir)
	computes1 := metricValue(t, ts2, "agmdp_analytics_computes_total")
	reloaded := getBody(t, ts2.URL+"/v1/graphs/"+id+"/metrics", http.StatusOK)
	if string(reloaded) != string(cold) {
		t.Fatalf("post-restart body differs:\n%s\n%s", cold, reloaded)
	}
	if d := metricValue(t, ts2, "agmdp_analytics_computes_total") - computes1; d != 0 {
		t.Fatalf("restart recomputed %v bundles, want 0", d)
	}
	if w := cache2.Warnings(); len(w) != 0 {
		t.Fatalf("warnings = %v", w)
	}
}

func TestGraphMetricsCorruptCacheRecovers(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newAnalyticsServer(t, dir)
	id := uploadBinary(t, ts, testUploadGraph(12))
	want := getBody(t, ts.URL+"/v1/graphs/"+id+"/metrics", http.StatusOK)
	ts.Close()

	if err := os.WriteFile(filepath.Join(dir, id+".metrics"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts2, cache2 := newAnalyticsServer(t, dir)
	got := getBody(t, ts2.URL+"/v1/graphs/"+id+"/metrics", http.StatusOK)
	if string(got) != string(want) {
		t.Fatalf("recomputed bundle differs:\n%s\n%s", want, got)
	}
	if w := cache2.Warnings(); len(w) != 1 || !strings.Contains(w[0], id) {
		t.Fatalf("warnings = %v, want one entry naming the damaged file", w)
	}
}

func TestGraphMetricsUnknownGraph(t *testing.T) {
	ts, _ := newV1TestServer(t)
	getBody(t, ts.URL+"/v1/graphs/deadbeefdeadbeef/metrics", http.StatusNotFound)
}

func TestGraphDeleteEvictsMetrics(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newAnalyticsServer(t, dir)
	id := uploadBinary(t, ts, testUploadGraph(13))
	getBody(t, ts.URL+"/v1/graphs/"+id+"/metrics", http.StatusOK)
	if _, err := os.Stat(filepath.Join(dir, id+".metrics")); err != nil {
		t.Fatalf("bundle not persisted: %v", err)
	}
	resp := doDelete(t, ts.URL+"/v1/graphs/"+id)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".metrics")); !os.IsNotExist(err) {
		t.Fatalf("metrics file survived graph deletion: %v", err)
	}
	getBody(t, ts.URL+"/v1/graphs/"+id+"/metrics", http.StatusNotFound)
}

func TestEvaluatePairModeEndpoint(t *testing.T) {
	ts, _ := newV1TestServer(t)
	id := uploadBinary(t, ts, testUploadGraph(14))
	resp := postJSON(t, ts.URL+"/v1/evaluate", map[string]any{
		"source_graph_id": id, "synthetic_graph_id": id,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("evaluate = %d: %s", resp.StatusCode, b)
	}
	var jr jobResponse
	decode(t, resp, &jr)
	done := pollJob(t, ts, jr.ID)
	if done.Status != jobs.StatusDone || done.Kind != jobs.KindEvaluate {
		t.Fatalf("job = %+v", done)
	}
	ev := done.Eval
	if ev == nil || ev.SourceGraphID != id || ev.SyntheticGraphID != id || len(ev.Samples) != 1 {
		t.Fatalf("eval = %+v", ev)
	}
	// Self-evaluation: every error column is exactly zero.
	if m := ev.Samples[0].Metrics; m == nil || *m != (analytics.UtilityMetrics{}) {
		t.Fatalf("self-evaluation metrics = %+v", m)
	}
}

func TestEvaluateModelModeEndpoint(t *testing.T) {
	ts, _ := newV1TestServer(t)
	graphID := uploadBinary(t, ts, testUploadGraph(15))
	resp := postJSON(t, ts.URL+"/v1/fit", map[string]any{
		"graph_id": graphID, "epsilon": 1.0, "seed": 5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit = %d", resp.StatusCode)
	}
	var fr fitResponse
	decode(t, resp, &fr)

	resp = postJSON(t, ts.URL+"/v1/evaluate", map[string]any{
		"source_graph_id": graphID, "model_id": fr.ID,
		"count": 2, "seed": 40, "iterations": 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("evaluate = %d: %s", resp.StatusCode, b)
	}
	var jr jobResponse
	decode(t, resp, &jr)
	done := pollJob(t, ts, jr.ID)
	if done.Status != jobs.StatusDone || done.Completed != 2 {
		t.Fatalf("job = %+v", done)
	}
	if done.Eval == nil || done.Eval.ModelID != fr.ID || len(done.Eval.Samples) != 2 || done.Eval.Average == nil {
		t.Fatalf("eval = %+v", done.Eval)
	}
	for i, s := range done.Eval.Samples {
		if s.Seed != 40+int64(i) || s.Metrics == nil || s.Nodes == 0 {
			t.Fatalf("sample %d = %+v", i, s)
		}
	}
}

func TestEvaluateValidationEndpoint(t *testing.T) {
	ts, _ := newV1TestServer(t)
	id := uploadBinary(t, ts, testUploadGraph(16))
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"no source", map[string]any{"synthetic_graph_id": id}, http.StatusBadRequest},
		{"neither mode", map[string]any{"source_graph_id": id}, http.StatusBadRequest},
		{"both modes", map[string]any{"source_graph_id": id, "synthetic_graph_id": id, "model_id": "m"}, http.StatusBadRequest},
		{"pair mode with count", map[string]any{"source_graph_id": id, "synthetic_graph_id": id, "count": 3}, http.StatusBadRequest},
		{"unknown source", map[string]any{"source_graph_id": "deadbeefdeadbeef", "synthetic_graph_id": id}, http.StatusNotFound},
		{"unknown synthetic", map[string]any{"source_graph_id": id, "synthetic_graph_id": "deadbeefdeadbeef"}, http.StatusNotFound},
		{"unknown model", map[string]any{"source_graph_id": id, "model_id": "nope"}, http.StatusNotFound},
		{"count over cap", map[string]any{"source_graph_id": id, "model_id": "nope", "count": 999}, http.StatusBadRequest},
		{"negative parallelism", map[string]any{"source_graph_id": id, "synthetic_graph_id": id, "parallelism": -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/evaluate", tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestSampleMemoServesRepeatedRequests(t *testing.T) {
	ts, _ := newV1TestServer(t)
	id := fitDataset(t, ts, 1.0)
	body := map[string]any{"id": id, "seed": 77, "iterations": 1, "format": "summary"}

	hits0 := metricValue(t, ts, "agmdp_analytics_sample_memo_hits_total")
	var first, second sampleResponse
	decode(t, postJSON(t, ts.URL+"/v1/sample", body), &first)
	decode(t, postJSON(t, ts.URL+"/v1/sample", body), &second)
	if first != second {
		t.Fatalf("memoised response differs: %+v vs %+v", first, second)
	}
	if first.Seed != 77 || first.Nodes == 0 {
		t.Fatalf("sample = %+v", first)
	}
	if d := metricValue(t, ts, "agmdp_analytics_sample_memo_hits_total") - hits0; d != 1 {
		t.Fatalf("memo hits delta = %v, want 1 (second request must not resample)", d)
	}

	// Unseeded and graph-storing requests are never memoised.
	hits1 := metricValue(t, ts, "agmdp_analytics_sample_memo_hits_total")
	resp := postJSON(t, ts.URL+"/v1/sample", map[string]any{"id": id, "iterations": 1, "format": "summary"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := metricValue(t, ts, "agmdp_analytics_sample_memo_hits_total") - hits1; d != 0 {
		t.Fatalf("unseeded request hit the memo (delta %v)", d)
	}
}

func TestAnalyticsTenantScoping(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key"},
		{ID: "beta", Key: "beta-key"},
	}}, "")
	payload, _ := tenancyFixtureGraph()
	var gr graphResponse
	decode(t, doAuthed(t, "POST", ts.URL+"/v1/graphs", "alpha-key", payload), &gr)

	// The owner reads metrics; the other tenant sees 404 on both routes.
	resp := doAuthed(t, "GET", ts.URL+"/v1/graphs/"+gr.ID+"/metrics", "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha metrics = %d, want 200", resp.StatusCode)
	}
	resp = doAuthed(t, "GET", ts.URL+"/v1/graphs/"+gr.ID+"/metrics", "beta-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("beta metrics = %d, want 404", resp.StatusCode)
	}
	resp = doAuthed(t, "POST", ts.URL+"/v1/evaluate", "beta-key", map[string]any{
		"source_graph_id": gr.ID, "synthetic_graph_id": gr.ID,
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("beta evaluate of alpha's graph = %d, want 404", resp.StatusCode)
	}

	// The owner's evaluation runs, and the resulting job is invisible to beta.
	resp = doAuthed(t, "POST", ts.URL+"/v1/evaluate", "alpha-key", map[string]any{
		"source_graph_id": gr.ID, "synthetic_graph_id": gr.ID,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("alpha evaluate = %d: %s", resp.StatusCode, b)
	}
	var jr jobResponse
	decode(t, resp, &jr)
	resp = doAuthed(t, "GET", ts.URL+"/v1/jobs/"+jr.ID, "beta-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("beta reads alpha's evaluate job = %d, want 404", resp.StatusCode)
	}
	resp = doAuthed(t, "GET", ts.URL+"/v1/jobs/"+jr.ID, "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha reads own evaluate job = %d, want 200", resp.StatusCode)
	}
}
