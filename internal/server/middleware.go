package server

// Request instrumentation: every request through Handler() is wrapped in one
// middleware that assigns (or propagates) a request ID, records per-route
// count and latency metrics, and emits one structured log line. The
// instrumentation reads only the clock — request handling, and in particular
// the sampling and fitting RNG streams, is untouched, so instrumented and
// bare servers produce byte-identical graphs and models.

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"agmdp/internal/obs"
)

// requestIDHeader is the header the middleware reads an incoming request ID
// from and always sets on the response, so clients and proxies can correlate
// log lines across hops.
const requestIDHeader = "X-Request-Id"

// statusRecorder captures the status code and body bytes a handler wrote.
// Unwrap keeps http.ResponseController passthrough (flush, deadlines)
// working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// routePattern resolves the mux pattern a request will be served by (for
// example "POST /v1/sample"), without serving it. Using the pattern rather
// than the raw URL keeps the metric label space bounded: every /v1/jobs/{id}
// hit shares one label value no matter the ID.
func (s *Server) routePattern(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		return pattern
	}
	return "unmatched"
}

// instrument wraps the mux with the request-instrumentation middleware.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		route := s.routePattern(r)
		rec := &statusRecorder{ResponseWriter: w}

		// Metrics and the log line are recorded in a deferred recover so that
		// aborted handlers (panic(http.ErrAbortHandler) on mid-stream write
		// failures) still count; the panic is re-raised for net/http to
		// terminate the connection as usual.
		defer func() {
			p := recover()
			status := rec.status
			if status == 0 {
				if p != nil {
					status = http.StatusInternalServerError
				} else {
					status = http.StatusOK
				}
			}
			s.recordRequest(r, route, id, status, rec.bytes, time.Since(start), p != nil)
			if p != nil {
				panic(p)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// recordRequest updates the per-route metrics and writes the request's one
// structured log line.
func (s *Server) recordRequest(r *http.Request, route, id string, status int, bytes int64, d time.Duration, aborted bool) {
	s.httpRequests.With(route, r.Method, strconv.Itoa(status)).Inc()
	s.httpDur.With(route).ObserveDuration(d)

	level := slog.LevelInfo
	if aborted || status >= http.StatusInternalServerError {
		level = slog.LevelError
	}
	s.logger.LogAttrs(r.Context(), level, "request",
		slog.String("request_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", route),
		slog.Int("status", status),
		slog.Int64("bytes", bytes),
		slog.Duration("duration", d),
		slog.Bool("aborted", aborted),
	)
}
