package server

// The /v1-only resource handlers: the graph store collection (/v1/graphs)
// and the asynchronous sampling jobs (/v1/jobs). The shared actions and the
// model collection live in server.go, registered under both the /v1 and the
// legacy unversioned paths.

import (
	"fmt"
	"mime"
	"net/http"

	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/jobs"
	"agmdp/internal/structural"
	"agmdp/internal/tenant"
)

// graphResponse is the body of graph-creating endpoints.
type graphResponse struct {
	ID   string          `json:"id"`
	Info graphstore.Info `json:"info"`
}

// listGraphsResponse is the GET /v1/graphs body.
type listGraphsResponse struct {
	Graphs []graphstore.Info `json:"graphs"`
}

// handleCreateGraph uploads a graph into the store. The wire format is
// negotiated from the Content-Type: application/json carries the inline
// graphPayload, text/plain the agmdp text format, and
// application/octet-stream (or application/x-agmdp-csr) the binary CSR
// snapshot. All formats are validated and re-encoded canonically, so the
// returned ID depends only on the graph, not on how it was uploaded.
func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	mediaType := "application/json"
	if ct := r.Header.Get("Content-Type"); ct != "" {
		var err error
		mediaType, _, err = mime.ParseMediaType(ct)
		if err != nil {
			writeError(w, http.StatusUnsupportedMediaType, "unparseable Content-Type %q", ct)
			return
		}
	}

	var g *graph.Graph
	switch mediaType {
	case "application/json":
		var p graphPayload
		if err := s.decodeBody(w, r, &p); err != nil {
			writeError(w, http.StatusBadRequest, "decoding graph payload: %v", err)
			return
		}
		if p.N > s.cfg.MaxFitNodes {
			writeError(w, http.StatusBadRequest, "graph has %d nodes, limit is %d", p.N, s.cfg.MaxFitNodes)
			return
		}
		var err error
		g, err = p.toGraph()
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid graph: %v", err)
			return
		}
	case "text/plain":
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var err error
		g, err = graph.ReadGraph(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parsing graph text: %v", err)
			return
		}
	case "application/octet-stream", "application/x-agmdp-csr":
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var err error
		g, err = graph.ReadBinary(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parsing binary snapshot: %v", err)
			return
		}
	case contentTypeChunked:
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var err error
		g, err = graph.ReadBinaryChunked(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parsing chunked snapshot: %v", err)
			return
		}
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type %q (want application/json, text/plain, application/octet-stream or %s)",
			mediaType, contentTypeChunked)
		return
	}
	if err := s.checkGraphLimits(g); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	id, err := s.cfg.Graphs.Put(g)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "storing graph: %v", err)
		return
	}
	s.grantFor(r, tenant.ResourceGraph, id)
	info, _ := s.cfg.Graphs.Stat(id)
	writeJSON(w, http.StatusCreated, graphResponse{ID: id, Info: info})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	graphs := s.cfg.Graphs.List()
	if s.cfg.Tenants != nil {
		scoped := graphs[:0]
		for _, info := range graphs {
			if s.canAccess(r, tenant.ResourceGraph, info.ID) {
				scoped = append(scoped, info)
			}
		}
		graphs = scoped
	}
	writeJSON(w, http.StatusOK, listGraphsResponse{Graphs: graphs})
}

// handleGetGraph stats a stored graph, or downloads it when ?format= names a
// wire format: "json" inlines the graphPayload, "text" streams the agmdp
// text form, "binary" the canonical CSR snapshot, "chunked" the framed
// chunked wire format with one flush per row-range frame. The stat, binary
// and chunked paths never materialize the decoded graph — metadata comes
// from the store's header index and the snapshot streams straight from its
// bytes (memory map or positioned file reads) with zero CSR decode — so
// downloading an idle graph keeps its residency at O(header).
func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Stored graphs are the sensitive inputs the DP fit protects: another
	// tenant's graph must be indistinguishable from a missing one, in every
	// format.
	if !s.canAccess(r, tenant.ResourceGraph, id) {
		writeError(w, http.StatusNotFound, "no graph %q", id)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "text", "binary", "chunked":
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json, text, binary or chunked)", format)
		return
	}
	info, ok := s.cfg.Graphs.Stat(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", id)
		return
	}
	switch format {
	case "":
		writeJSON(w, http.StatusOK, info)
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(info.SizeBytes))
		err := s.cfg.Graphs.WriteSnapshot(id, w)
		if err == graphstore.ErrNotFound {
			// Evicted between Stat and the write, before any body byte.
			writeError(w, http.StatusNotFound, "no graph %q", id)
			return
		}
		abortOnStreamError("stored graph snapshot", err)
	case "chunked":
		w.Header().Set("Content-Type", contentTypeChunked)
		err := s.cfg.Graphs.WriteSnapshotChunked(id, newFlushWriter(w), s.cfg.StreamChunkRows)
		if err == graphstore.ErrNotFound {
			writeError(w, http.StatusNotFound, "no graph %q", id)
			return
		}
		abortOnStreamError("stored graph chunked stream", err)
	default:
		// json and text re-shape the graph, so these formats do decode (via
		// the store's byte-budget cache).
		g, ok := s.cfg.Graphs.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no graph %q", id)
			return
		}
		if format == "json" {
			writeJSON(w, http.StatusOK, payloadFromGraph(g))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		abortOnStreamError("stored graph text", g.WriteGraph(w))
	}
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.canAccess(r, tenant.ResourceGraph, id) {
		writeError(w, http.StatusNotFound, "no graph %q", id)
		return
	}
	// Content addressing shares equal graphs across tenants: dropping this
	// tenant's handle evicts the stored bytes only when it was the last.
	if s.releaseResource(r, tenant.ResourceGraph, id) {
		if s.cfg.Graphs.Evict(id) {
			// The graph is gone; drop its cached metric bundle (memory and
			// the persisted .metrics file) with it.
			s.analytics.Evict(id)
		} else if s.cfg.Tenants == nil {
			writeError(w, http.StatusNotFound, "no graph %q", id)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// jobRequest is the POST /v1/jobs body. Kind selects the job type:
//
//   - "sample" (or empty, the default): draw Count samples from the stored
//     model named by ModelID, optionally storing each sampled graph back
//     into the graph store. With a non-zero Seed, sample i runs with seed
//     Seed+i, so the batch is as reproducible as the equivalent synchronous
//     requests.
//   - "fit": run the fit described by the nested Fit request (the same body
//     POST /v1/fit takes, minus async) in the background and register the
//     resulting model; the sampling fields above are rejected.
type jobRequest struct {
	Kind        string      `json:"kind,omitempty"`
	ModelID     string      `json:"model_id,omitempty"`
	Count       int         `json:"count,omitempty"`
	Seed        int64       `json:"seed,omitempty"`
	Iterations  int         `json:"iterations,omitempty"`
	Model       string      `json:"model,omitempty"`
	Parallelism int         `json:"parallelism,omitempty"`
	Store       bool        `json:"store,omitempty"`
	Fit         *fitRequest `json:"fit,omitempty"`
}

// jobResponse is the body of the job endpoints: the job snapshot, plus the
// per-sample results on single-job GETs.
type jobResponse struct {
	jobs.Info
	Results []jobs.SampleResult `json:"results,omitempty"`
}

// listJobsResponse is the GET /v1/jobs body.
type listJobsResponse struct {
	Jobs []jobs.Info `json:"jobs"`
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	switch req.Kind {
	case "", string(jobs.KindSample):
		if req.Fit != nil {
			writeError(w, http.StatusBadRequest, "a fit body requires kind %q", jobs.KindFit)
			return
		}
	case string(jobs.KindFit):
		if req.ModelID != "" || req.Count != 0 || req.Seed != 0 || req.Iterations != 0 ||
			req.Model != "" || req.Parallelism != 0 || req.Store {
			writeError(w, http.StatusBadRequest, "kind %q takes its parameters in the fit body", jobs.KindFit)
			return
		}
		if req.Fit == nil {
			writeError(w, http.StatusBadRequest, "kind %q requires a fit body", jobs.KindFit)
			return
		}
		if req.Fit.Async {
			writeError(w, http.StatusBadRequest, "a job submission is already asynchronous; drop the async field")
			return
		}
		if !s.validateFitRequest(w, req.Fit) {
			return
		}
		g := s.resolveFitInput(w, r, req.Fit)
		if g == nil {
			return
		}
		s.submitFitJob(w, r, req.Fit, g)
		return
	default:
		writeError(w, http.StatusBadRequest, "unknown job kind %q (want %q or %q; evaluations submit via POST /v1/evaluate)", req.Kind, jobs.KindSample, jobs.KindFit)
		return
	}
	count := req.Count
	if count == 0 {
		count = 1
	}
	if count < 1 || count > s.cfg.MaxJobSamples {
		writeError(w, http.StatusBadRequest, "count %d outside [1, %d]", count, s.cfg.MaxJobSamples)
		return
	}
	if req.Parallelism < 0 {
		writeError(w, http.StatusBadRequest, "negative parallelism %d", req.Parallelism)
		return
	}
	if req.Seed < 0 && req.Seed+int64(count) > 0 {
		writeError(w, http.StatusBadRequest,
			"seed range [%d, %d] crosses 0 (sample i runs with seed seed+i; 0 means unseeded)",
			req.Seed, req.Seed+int64(count)-1)
		return
	}
	if req.Model != "" {
		if _, err := structural.ByName(req.Model, 0); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if !s.canAccess(r, tenant.ResourceModel, req.ModelID) {
		writeError(w, http.StatusNotFound, "no model %q", req.ModelID)
		return
	}
	m, ok := s.cfg.Registry.Model(req.ModelID)
	if !ok {
		writeError(w, http.StatusNotFound, "no model %q", req.ModelID)
		return
	}

	spec := jobs.Spec{
		Model:       m,
		ModelID:     req.ModelID,
		Count:       count,
		Seed:        req.Seed,
		Iterations:  req.Iterations,
		ModelKind:   req.Model,
		Parallelism: req.Parallelism,
		Store:       req.Store,
	}
	// Graphs the job stores back belong to the submitting tenant, like the
	// synchronous store path. The hook fires on job goroutines; the
	// ownership store is concurrency-safe.
	if t := tenantFrom(r.Context()); t != nil && req.Store {
		tenantID := t.ID
		spec.OnStored = func(graphID string) {
			s.grantResource(tenantID, tenant.ResourceGraph, graphID)
		}
	}
	id, err := s.cfg.Jobs.Submit(spec)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "submitting job: %v", err)
		return
	}
	s.grantFor(r, tenant.ResourceJob, id)
	info, _, _ := s.cfg.Jobs.Get(id)
	writeJSON(w, http.StatusAccepted, jobResponse{Info: info})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	list := s.cfg.Jobs.List()
	if s.cfg.Tenants != nil {
		scoped := list[:0]
		for _, info := range list {
			if s.canAccess(r, tenant.ResourceJob, info.ID) {
				scoped = append(scoped, info)
			}
		}
		list = scoped
	}
	writeJSON(w, http.StatusOK, listJobsResponse{Jobs: list})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.canAccess(r, tenant.ResourceJob, id) {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	info, results, ok := s.cfg.Jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	// Pending samples are zero-valued slots; only report finished ones.
	done := make([]jobs.SampleResult, 0, len(results))
	for _, res := range results {
		if res.Seed != 0 || res.Error != "" || res.Nodes != 0 {
			done = append(done, res)
		}
	}
	writeJSON(w, http.StatusOK, jobResponse{Info: info, Results: done})
}

func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Cross-tenant cancellation is 404 like every other scoped mutation.
	// Ownership is not revoked on cancel: a cancelled running job is
	// retained for result pickup, and job IDs are never reused.
	if !s.canAccess(r, tenant.ResourceJob, id) {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if !s.cfg.Jobs.Cancel(id) {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
