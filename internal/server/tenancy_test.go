package server

// Serve-level tenancy tests: API-key authentication, per-tenant rate limits,
// ε-budget admission of DP fits (atomic under concurrency, persistent across
// a server restart), the paper's free-sampling guarantee for budget-exhausted
// tenants, and refunds for fits cancelled before they produced a model.

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/jobs"
	"agmdp/internal/obs"
	"agmdp/internal/registry"
	"agmdp/internal/tenant"
)

// newTenantedServer builds a tenant-enabled service over the given tenants
// config, with the ε-ledger persisted under dir (empty = in-memory). The
// returned registry lets tests inspect spends directly.
func newTenantedServer(t *testing.T, file tenant.File, dir string) (*httptest.Server, *tenant.Registry) {
	t.Helper()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	tenants, err := tenant.New(file, tenant.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tenants.Close() })
	srv, err := New(Config{
		Registry:      reg,
		Engine:        eng,
		Tenants:       tenants,
		Metrics:       obs.NewRegistry(),
		SampleTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, tenants
}

// doAuthed issues one request with an API key (empty key = no credential).
func doAuthed(t *testing.T, method, url, key string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(data))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// tenancyFixtureGraph builds the inline fit payload and the identical local
// graph, so tests can compute the content address the ledger keys on.
func tenancyFixtureGraph() (payload map[string]any, g *graph.Graph) {
	edges := [][2]int{}
	b := graph.NewBuilder(30, 1)
	for i := 0; i < 29; i++ {
		edges = append(edges, [2]int{i, i + 1}, [2]int{i, (i + 2) % 30})
		b.AddEdge(i, i+1)
		b.AddEdge(i, (i+2)%30)
	}
	payload = map[string]any{"n": 30, "w": 1, "edges": edges, "attrs": make([]uint64, 30)}
	return payload, b.Finalize()
}

func TestTenancyAuthRequired(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key"},
	}}, "")

	// No key and unknown key are both 401 on API routes.
	for _, key := range []string{"", "wrong-key"} {
		resp := doAuthed(t, "GET", ts.URL+"/v1/models", key, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET /v1/models with key %q = %d, want 401", key, resp.StatusCode)
		}
	}
	// The right key opens the route; Authorization: Bearer is an alias.
	resp := doAuthed(t, "GET", ts.URL+"/v1/models", "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/models with valid key = %d, want 200", resp.StatusCode)
	}
	req, err := http.NewRequest("GET", ts.URL+"/v1/models", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer alpha-key")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Errorf("Bearer alias = %d, want 200", bresp.StatusCode)
	}
	// Health stays open without a key (aggregate counts only); the metrics
	// surfaces do not — they export per-tenant labels and fail closed when no
	// operator token is configured, even for a valid tenant key.
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp := doAuthed(t, "GET", ts.URL+path, "", nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exempt path %s without key = %d, want 200", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/metrics", "/v1/stats"} {
		for _, key := range []string{"", "alpha-key"} {
			resp := doAuthed(t, "GET", ts.URL+path, key, nil)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("operator path %s with key %q and no operator token = %d, want 401", path, key, resp.StatusCode)
			}
		}
	}
}

// TestTenancyOperatorToken pins the operator surfaces' credential rules on a
// tenant-enabled server: the configured operator token (and only it — not a
// tenant key, not nothing) opens /metrics and /v1/stats, because those
// surfaces export per-tenant ε spends keyed by tenant ID and graph content
// address.
func TestTenancyOperatorToken(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{
		OperatorToken: "ops-secret",
		Tenants: []tenant.Tenant{
			{ID: "alpha", Key: "alpha-key"},
		},
	}, "")

	for _, path := range []string{"/metrics", "/v1/stats"} {
		for key, want := range map[string]int{
			"":           http.StatusUnauthorized,
			"alpha-key":  http.StatusUnauthorized,
			"wrong-tok":  http.StatusUnauthorized,
			"ops-secret": http.StatusOK,
		} {
			resp := doAuthed(t, "GET", ts.URL+path, key, nil)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != want {
				t.Errorf("GET %s with key %q = %d, want %d", path, key, resp.StatusCode, want)
			}
		}
	}
	// The operator token is not a tenant identity: it does not open API
	// routes.
	resp := doAuthed(t, "GET", ts.URL+"/v1/models", "ops-secret", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("API route with operator token = %d, want 401", resp.StatusCode)
	}
}

func TestTenancyRateLimit(t *testing.T) {
	// A two-token bucket with a near-zero refill: the third request within
	// the test's lifetime must be throttled.
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", RatePerSec: 0.001, Burst: 2},
	}}, "")

	statuses := make([]int, 0, 3)
	var throttled *http.Response
	for i := 0; i < 3; i++ {
		resp := doAuthed(t, "GET", ts.URL+"/v1/models", "alpha-key", nil)
		statuses = append(statuses, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			throttled = resp
			defer resp.Body.Close()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if statuses[0] != http.StatusOK || statuses[1] != http.StatusOK || statuses[2] != http.StatusTooManyRequests {
		t.Fatalf("statuses = %v, want [200 200 429]", statuses)
	}
	if got := throttled.Header.Get("Retry-After"); got == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestTenancyBudgetExhaustionKeepsSamplingFree is the paper's point as a
// serve-level test: once a tenant's ε for a graph is exhausted, further DP
// fits are refused with the remaining budget in the body — but sampling the
// already-fitted model stays free, because post-processing released
// parameters costs no privacy.
func TestTenancyBudgetExhaustionKeepsSamplingFree(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 1.0},
	}}, "")
	payload, _ := tenancyFixtureGraph()

	// First fit (ε = 0.7) fits within the budget of 1.0.
	resp := doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("first fit = %d: %s", resp.StatusCode, b)
	}
	var fr fitResponse
	decode(t, resp, &fr)

	// Second fit (another ε = 0.7) would overdraw: 403 with the budget
	// arithmetic in the body.
	resp = doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 4,
	})
	if resp.StatusCode != http.StatusForbidden {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("over-budget fit = %d: %s", resp.StatusCode, b)
	}
	var be budgetErrorBody
	decode(t, resp, &be)
	if be.Tenant != "alpha" || be.Graph == "" {
		t.Errorf("refusal body identifies %+v", be)
	}
	if be.RequestedEpsilon != 0.7 || be.BudgetEpsilon != 1.0 {
		t.Errorf("refusal arithmetic = %+v", be)
	}
	if diff := be.RemainingEpsilon - 0.3; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("remaining ε = %v, want 0.3", be.RemainingEpsilon)
	}
	if !strings.Contains(be.Error, "budget") {
		t.Errorf("refusal error %q does not mention the budget", be.Error)
	}

	// A non-private fit spends nothing and stays admitted.
	resp = doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "model": "fcl",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("non-private fit after exhaustion = %d, want 200", resp.StatusCode)
	}

	// Sampling the fitted model is free: it must keep working for the
	// (effectively) exhausted tenant, any number of times.
	for seed := int64(1); seed <= 3; seed++ {
		resp = doAuthed(t, "POST", ts.URL+"/v1/sample", "alpha-key", map[string]any{
			"id": fr.ID, "seed": seed, "format": "summary",
		})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample %d after budget exhaustion = %d, want 200 (sampling is free)", seed, resp.StatusCode)
		}
	}
}

// TestTenancyConcurrentFitAdmissionAtomic fires more concurrent DP fits than
// the budget admits: exactly budget/ε of them may pass, never one more —
// the ledger's charge is atomic, not check-then-spend.
func TestTenancyConcurrentFitAdmissionAtomic(t *testing.T) {
	ts, tenants := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 3.0},
	}}, "")
	payload, g := tenancyFixtureGraph()
	graphID, err := graphstore.GraphID(g)
	if err != nil {
		t.Fatal(err)
	}

	const requests = 8
	var wg sync.WaitGroup
	statuses := make([]int, requests)
	for i := range requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
				"graph": payload, "epsilon": 1.0, "seed": int64(100 + i), "async": true,
			})
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	admitted, refused := 0, 0
	for _, st := range statuses {
		switch st {
		case http.StatusAccepted:
			admitted++
		case http.StatusForbidden:
			refused++
		default:
			t.Errorf("unexpected status %d", st)
		}
	}
	if admitted != 3 || refused != requests-3 {
		t.Fatalf("admitted %d / refused %d of %d ε=1 fits under budget 3, want exactly 3/%d",
			admitted, refused, requests, requests-3)
	}
	if spent := tenants.Spent("alpha", graphID); spent != 3.0 {
		t.Errorf("ledger spent = %v, want 3.0", spent)
	}
}

// TestTenancyLedgerSurvivesServerRestart rebuilds the whole serving stack
// over the same tenant directory: ε spent before the restart still counts
// after it.
func TestTenancyLedgerSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	file := tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 1.0},
	}}
	payload, _ := tenancyFixtureGraph()

	ts1, _ := newTenantedServer(t, file, dir)
	resp := doAuthed(t, "POST", ts1.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 3,
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart fit = %d", resp.StatusCode)
	}
	ts1.Close()

	// A fresh registry, server and ledger over the same directory: the 0.7
	// spend must have survived, so another 0.7 is refused.
	ts2, tenants := newTenantedServer(t, file, dir)
	resp = doAuthed(t, "POST", ts2.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 4,
	})
	if resp.StatusCode != http.StatusForbidden {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-restart over-budget fit = %d: %s", resp.StatusCode, b)
	}
	var be budgetErrorBody
	decode(t, resp, &be)
	if diff := be.RemainingEpsilon - 0.3; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("post-restart remaining ε = %v, want 0.3", be.RemainingEpsilon)
	}
	if len(tenants.Warnings()) != 0 {
		t.Errorf("clean ledger reloaded with warnings: %v", tenants.Warnings())
	}
}

// TestTenancyCancelledFitRefundsBudget cancels a running async fit through
// DELETE /v1/jobs/{id}: the request returns promptly, the job record lands
// in a cancelled state, and — when the fit never registered a model — the
// pre-charged ε comes back to the tenant's account.
func TestTenancyCancelledFitRefundsBudget(t *testing.T) {
	ts, tenants := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 1.0},
	}}, "")

	// A dense graph keeps the fit pipeline busy long enough to land the
	// cancel mid-flight (and if the fit wins the race anyway, the charge
	// must stand — asserted below).
	const n, edges = 1500, 60000
	rng := rand.New(rand.NewSource(13))
	b := graph.NewBuilder(n, 1)
	payloadEdges := make([][2]int, 0, edges)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(u, v)
		payloadEdges = append(payloadEdges, [2]int{u, v})
	}
	g := b.Finalize()
	graphID, err := graphstore.GraphID(g)
	if err != nil {
		t.Fatal(err)
	}
	payload := map[string]any{"n": n, "w": 1, "edges": payloadEdges, "attrs": make([]uint64, n)}

	resp := doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 1.0, "seed": 3, "parallelism": 1, "async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("async fit = %d: %s", resp.StatusCode, b)
	}
	var job struct {
		ID string `json:"id"`
	}
	decode(t, resp, &job)
	if job.ID == "" {
		t.Fatal("async fit returned no job ID")
	}
	if spent := tenants.Spent("alpha", graphID); spent != 1.0 {
		t.Fatalf("ledger spent after admission = %v, want 1.0", spent)
	}

	// Cancel; DELETE must come back promptly (it only signals the context).
	start := time.Now()
	dresp := doAuthed(t, "DELETE", ts.URL+"/v1/jobs/"+job.ID, "alpha-key", nil)
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE job = %d, want 204", dresp.StatusCode)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("DELETE took %v, want prompt return", d)
	}

	// The job record must land in a terminal state; cancelled unless the fit
	// won the race.
	var status, modelID string
	deadline := time.Now().Add(30 * time.Second)
	for {
		gresp := doAuthed(t, "GET", ts.URL+"/v1/jobs/"+job.ID, "alpha-key", nil)
		var jr struct {
			Status  string `json:"status"`
			ModelID string `json:"model_id"`
		}
		decode(t, gresp, &jr)
		status, modelID = jr.Status, jr.ModelID
		if status != "queued" && status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	switch status {
	case "cancelled":
		if modelID == "" {
			// Nothing was released; the ε must come back (the refund fires
			// just after the terminal record commits).
			for time.Now().Before(deadline) {
				if tenants.Spent("alpha", graphID) == 0 {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatalf("ε never refunded after cancelled fit; spent = %v", tenants.Spent("alpha", graphID))
		}
		// Cancelled after registration: the release is real, charge stands.
		if spent := tenants.Spent("alpha", graphID); spent != 1.0 {
			t.Errorf("cancelled-after-registration fit refunded: spent = %v, want 1.0", spent)
		}
	case "done":
		if spent := tenants.Spent("alpha", graphID); spent != 1.0 {
			t.Errorf("completed fit refunded: spent = %v, want 1.0", spent)
		}
	default:
		t.Fatalf("cancelled fit ended %q", status)
	}
}

// TestTenancyResourceScoping pins the tenant trust boundary across all three
// resource collections: a tenant sees, samples, downloads and deletes only
// the graphs, models and jobs it created; everything of another tenant's
// answers 404, indistinguishable from a missing resource — the uploaded
// graphs are exactly the sensitive data the DP fit protects.
func TestTenancyResourceScoping(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key"},
		{ID: "beta", Key: "beta-key"},
	}}, "")
	payload, _ := tenancyFixtureGraph()

	// alpha uploads a graph, fits a model from it, and starts a sample job.
	var gr graphResponse
	resp := doAuthed(t, "POST", ts.URL+"/v1/graphs", "alpha-key", payload)
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload = %d: %s", resp.StatusCode, b)
	}
	decode(t, resp, &gr)
	var fr fitResponse
	resp = doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph_id": gr.ID, "epsilon": 0.5, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("fit = %d: %s", resp.StatusCode, b)
	}
	decode(t, resp, &fr)
	var jr struct {
		ID string `json:"id"`
	}
	resp = doAuthed(t, "POST", ts.URL+"/v1/jobs", "alpha-key", map[string]any{
		"model_id": fr.ID, "count": 1, "seed": 7,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("job = %d: %s", resp.StatusCode, b)
	}
	decode(t, resp, &jr)

	// beta's listings are empty; alpha's show its resources.
	var glist listGraphsResponse
	decode(t, doAuthed(t, "GET", ts.URL+"/v1/graphs", "beta-key", nil), &glist)
	if len(glist.Graphs) != 0 {
		t.Errorf("beta lists %d graphs, want 0", len(glist.Graphs))
	}
	var mlist listModelsResponse
	decode(t, doAuthed(t, "GET", ts.URL+"/v1/models", "beta-key", nil), &mlist)
	if len(mlist.Models) != 0 {
		t.Errorf("beta lists %d models, want 0", len(mlist.Models))
	}
	var jlist listJobsResponse
	decode(t, doAuthed(t, "GET", ts.URL+"/v1/jobs", "beta-key", nil), &jlist)
	if len(jlist.Jobs) != 0 {
		t.Errorf("beta lists %d jobs, want 0", len(jlist.Jobs))
	}
	decode(t, doAuthed(t, "GET", ts.URL+"/v1/graphs", "alpha-key", nil), &glist)
	if len(glist.Graphs) != 1 {
		t.Errorf("alpha lists %d graphs, want 1", len(glist.Graphs))
	}

	// Every cross-tenant read and mutation is 404.
	for _, tc := range []struct{ method, path string }{
		{"GET", "/v1/graphs/" + gr.ID},
		{"GET", "/v1/graphs/" + gr.ID + "?format=binary"},
		{"DELETE", "/v1/graphs/" + gr.ID},
		{"GET", "/v1/models/" + fr.ID},
		{"DELETE", "/v1/models/" + fr.ID},
		{"GET", "/v1/jobs/" + jr.ID},
		{"DELETE", "/v1/jobs/" + jr.ID},
	} {
		resp := doAuthed(t, tc.method, ts.URL+tc.path, "beta-key", nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("beta %s %s = %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
	}
	// Fitting and sampling by reference are scoped the same way.
	resp = doAuthed(t, "POST", ts.URL+"/v1/fit", "beta-key", map[string]any{
		"graph_id": gr.ID, "epsilon": 0.5, "seed": 4,
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("beta fit of alpha's graph = %d, want 404", resp.StatusCode)
	}
	resp = doAuthed(t, "POST", ts.URL+"/v1/sample", "beta-key", map[string]any{
		"id": fr.ID, "seed": 1, "format": "summary",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("beta sample of alpha's model = %d, want 404", resp.StatusCode)
	}

	// alpha still reaches everything it created.
	resp = doAuthed(t, "GET", ts.URL+"/v1/graphs/"+gr.ID, "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("alpha GET own graph = %d, want 200", resp.StatusCode)
	}
	resp = doAuthed(t, "GET", ts.URL+"/v1/jobs/"+jr.ID, "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("alpha GET own job = %d, want 200", resp.StatusCode)
	}
}

// TestTenancySharedContentAddressedGraph pins the multi-owner semantics of
// the content-addressed store: two tenants uploading the same graph get the
// same ID with independent handles, and one tenant's DELETE must not evict
// the other's graph.
func TestTenancySharedContentAddressedGraph(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key"},
		{ID: "beta", Key: "beta-key"},
	}}, "")
	payload, _ := tenancyFixtureGraph()

	var ga, gb graphResponse
	decode(t, doAuthed(t, "POST", ts.URL+"/v1/graphs", "alpha-key", payload), &ga)
	decode(t, doAuthed(t, "POST", ts.URL+"/v1/graphs", "beta-key", payload), &gb)
	if ga.ID != gb.ID {
		t.Fatalf("equal graphs got distinct IDs %q and %q", ga.ID, gb.ID)
	}

	// alpha deletes its handle; beta's must survive.
	resp := doAuthed(t, "DELETE", ts.URL+"/v1/graphs/"+ga.ID, "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("alpha DELETE = %d, want 204", resp.StatusCode)
	}
	resp = doAuthed(t, "GET", ts.URL+"/v1/graphs/"+ga.ID, "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("alpha GET after own delete = %d, want 404", resp.StatusCode)
	}
	resp = doAuthed(t, "GET", ts.URL+"/v1/graphs/"+gb.ID, "beta-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("beta GET after alpha's delete = %d, want 200 (shared bytes must survive)", resp.StatusCode)
	}

	// beta's delete drops the last handle: now the stored graph is gone.
	resp = doAuthed(t, "DELETE", ts.URL+"/v1/graphs/"+gb.ID, "beta-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("beta DELETE = %d, want 204", resp.StatusCode)
	}
	resp = doAuthed(t, "GET", ts.URL+"/v1/graphs/"+gb.ID, "beta-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("beta GET after last delete = %d, want 404", resp.StatusCode)
	}
}

// TestTenancyOwnershipSurvivesRestart rebuilds the serving stack over the
// same tenant directory: resources created before the restart still belong
// to (and only to) their creating tenant after it.
func TestTenancyOwnershipSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	file := tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key"},
		{ID: "beta", Key: "beta-key"},
	}}
	payload, _ := tenancyFixtureGraph()

	ts1, _ := newTenantedServer(t, file, dir)
	var gr graphResponse
	decode(t, doAuthed(t, "POST", ts1.URL+"/v1/graphs", "alpha-key", payload), &gr)
	ts1.Close()

	// The graph store is in-memory in this test, so the graph itself is gone
	// after the restart — but the ownership record must have survived, which
	// we can observe through the tenant registry directly.
	_, tenants := newTenantedServer(t, file, dir)
	if !tenants.Owns(tenant.ResourceGraph, gr.ID, "alpha") {
		t.Error("alpha's graph ownership lost across restart")
	}
	if tenants.Owns(tenant.ResourceGraph, gr.ID, "beta") {
		t.Error("beta gained ownership across restart")
	}
}

// TestSyncFitBoundedByFitSlots pins that synchronous fits take the same
// bounded fit slots async fit jobs queue on: with every slot occupied and a
// short fit deadline, POST /fit (sync) answers 503 instead of running an
// unbounded pipeline.
func TestSyncFitBoundedByFitSlots(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	graphs, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jm, err := jobs.New(jobs.Options{Engine: eng, Store: graphs, Models: reg, MaxConcurrentFits: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(jm.Close)
	srv, err := New(Config{
		Registry:   reg,
		Engine:     eng,
		Graphs:     graphs,
		Jobs:       jm,
		Metrics:    obs.NewRegistry(),
		FitTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Occupy the only fit slot, as a long-running fit (sync or async) would.
	if err := jm.AcquireFitSlot(contextWithTimeout(t)); err != nil {
		t.Fatal(err)
	}

	payload, _ := tenancyFixtureGraph()
	resp := doAuthed(t, "POST", ts.URL+"/v1/fit", "", map[string]any{
		"graph": payload, "epsilon": 0.5, "seed": 3,
	})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sync fit with all slots busy = %d: %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	// Releasing the slot lets the next sync fit through.
	jm.ReleaseFitSlot()
	resp = doAuthed(t, "POST", ts.URL+"/v1/fit", "", map[string]any{
		"graph": payload, "epsilon": 0.5, "seed": 3,
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("sync fit with a free slot = %d, want 200", resp.StatusCode)
	}
}

// contextWithTimeout returns a context cancelled at test cleanup.
func contextWithTimeout(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}
