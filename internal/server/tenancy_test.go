package server

// Serve-level tenancy tests: API-key authentication, per-tenant rate limits,
// ε-budget admission of DP fits (atomic under concurrency, persistent across
// a server restart), the paper's free-sampling guarantee for budget-exhausted
// tenants, and refunds for fits cancelled before they produced a model.

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/obs"
	"agmdp/internal/registry"
	"agmdp/internal/tenant"
)

// newTenantedServer builds a tenant-enabled service over the given tenants
// config, with the ε-ledger persisted under dir (empty = in-memory). The
// returned registry lets tests inspect spends directly.
func newTenantedServer(t *testing.T, file tenant.File, dir string) (*httptest.Server, *tenant.Registry) {
	t.Helper()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1})
	t.Cleanup(eng.Close)
	tenants, err := tenant.New(file, tenant.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tenants.Close() })
	srv, err := New(Config{
		Registry:      reg,
		Engine:        eng,
		Tenants:       tenants,
		Metrics:       obs.NewRegistry(),
		SampleTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, tenants
}

// doAuthed issues one request with an API key (empty key = no credential).
func doAuthed(t *testing.T, method, url, key string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(data))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// tenancyFixtureGraph builds the inline fit payload and the identical local
// graph, so tests can compute the content address the ledger keys on.
func tenancyFixtureGraph() (payload map[string]any, g *graph.Graph) {
	edges := [][2]int{}
	b := graph.NewBuilder(30, 1)
	for i := 0; i < 29; i++ {
		edges = append(edges, [2]int{i, i + 1}, [2]int{i, (i + 2) % 30})
		b.AddEdge(i, i+1)
		b.AddEdge(i, (i+2)%30)
	}
	payload = map[string]any{"n": 30, "w": 1, "edges": edges, "attrs": make([]uint64, 30)}
	return payload, b.Finalize()
}

func TestTenancyAuthRequired(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key"},
	}}, "")

	// No key and unknown key are both 401 on API routes.
	for _, key := range []string{"", "wrong-key"} {
		resp := doAuthed(t, "GET", ts.URL+"/v1/models", key, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET /v1/models with key %q = %d, want 401", key, resp.StatusCode)
		}
	}
	// The right key opens the route; Authorization: Bearer is an alias.
	resp := doAuthed(t, "GET", ts.URL+"/v1/models", "alpha-key", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/models with valid key = %d, want 200", resp.StatusCode)
	}
	req, err := http.NewRequest("GET", ts.URL+"/v1/models", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer alpha-key")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Errorf("Bearer alias = %d, want 200", bresp.StatusCode)
	}
	// Operator surfaces stay open without a key.
	for _, path := range []string{"/healthz", "/v1/healthz", "/metrics", "/v1/stats"} {
		resp := doAuthed(t, "GET", ts.URL+path, "", nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exempt path %s without key = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestTenancyRateLimit(t *testing.T) {
	// A two-token bucket with a near-zero refill: the third request within
	// the test's lifetime must be throttled.
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", RatePerSec: 0.001, Burst: 2},
	}}, "")

	statuses := make([]int, 0, 3)
	var throttled *http.Response
	for i := 0; i < 3; i++ {
		resp := doAuthed(t, "GET", ts.URL+"/v1/models", "alpha-key", nil)
		statuses = append(statuses, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			throttled = resp
			defer resp.Body.Close()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if statuses[0] != http.StatusOK || statuses[1] != http.StatusOK || statuses[2] != http.StatusTooManyRequests {
		t.Fatalf("statuses = %v, want [200 200 429]", statuses)
	}
	if got := throttled.Header.Get("Retry-After"); got == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestTenancyBudgetExhaustionKeepsSamplingFree is the paper's point as a
// serve-level test: once a tenant's ε for a graph is exhausted, further DP
// fits are refused with the remaining budget in the body — but sampling the
// already-fitted model stays free, because post-processing released
// parameters costs no privacy.
func TestTenancyBudgetExhaustionKeepsSamplingFree(t *testing.T) {
	ts, _ := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 1.0},
	}}, "")
	payload, _ := tenancyFixtureGraph()

	// First fit (ε = 0.7) fits within the budget of 1.0.
	resp := doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("first fit = %d: %s", resp.StatusCode, b)
	}
	var fr fitResponse
	decode(t, resp, &fr)

	// Second fit (another ε = 0.7) would overdraw: 403 with the budget
	// arithmetic in the body.
	resp = doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 4,
	})
	if resp.StatusCode != http.StatusForbidden {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("over-budget fit = %d: %s", resp.StatusCode, b)
	}
	var be budgetErrorBody
	decode(t, resp, &be)
	if be.Tenant != "alpha" || be.Graph == "" {
		t.Errorf("refusal body identifies %+v", be)
	}
	if be.RequestedEpsilon != 0.7 || be.BudgetEpsilon != 1.0 {
		t.Errorf("refusal arithmetic = %+v", be)
	}
	if diff := be.RemainingEpsilon - 0.3; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("remaining ε = %v, want 0.3", be.RemainingEpsilon)
	}
	if !strings.Contains(be.Error, "budget") {
		t.Errorf("refusal error %q does not mention the budget", be.Error)
	}

	// A non-private fit spends nothing and stays admitted.
	resp = doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "model": "fcl",
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("non-private fit after exhaustion = %d, want 200", resp.StatusCode)
	}

	// Sampling the fitted model is free: it must keep working for the
	// (effectively) exhausted tenant, any number of times.
	for seed := int64(1); seed <= 3; seed++ {
		resp = doAuthed(t, "POST", ts.URL+"/v1/sample", "alpha-key", map[string]any{
			"id": fr.ID, "seed": seed, "format": "summary",
		})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample %d after budget exhaustion = %d, want 200 (sampling is free)", seed, resp.StatusCode)
		}
	}
}

// TestTenancyConcurrentFitAdmissionAtomic fires more concurrent DP fits than
// the budget admits: exactly budget/ε of them may pass, never one more —
// the ledger's charge is atomic, not check-then-spend.
func TestTenancyConcurrentFitAdmissionAtomic(t *testing.T) {
	ts, tenants := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 3.0},
	}}, "")
	payload, g := tenancyFixtureGraph()
	graphID, err := graphstore.GraphID(g)
	if err != nil {
		t.Fatal(err)
	}

	const requests = 8
	var wg sync.WaitGroup
	statuses := make([]int, requests)
	for i := range requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
				"graph": payload, "epsilon": 1.0, "seed": int64(100 + i), "async": true,
			})
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	admitted, refused := 0, 0
	for _, st := range statuses {
		switch st {
		case http.StatusAccepted:
			admitted++
		case http.StatusForbidden:
			refused++
		default:
			t.Errorf("unexpected status %d", st)
		}
	}
	if admitted != 3 || refused != requests-3 {
		t.Fatalf("admitted %d / refused %d of %d ε=1 fits under budget 3, want exactly 3/%d",
			admitted, refused, requests, requests-3)
	}
	if spent := tenants.Spent("alpha", graphID); spent != 3.0 {
		t.Errorf("ledger spent = %v, want 3.0", spent)
	}
}

// TestTenancyLedgerSurvivesServerRestart rebuilds the whole serving stack
// over the same tenant directory: ε spent before the restart still counts
// after it.
func TestTenancyLedgerSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	file := tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 1.0},
	}}
	payload, _ := tenancyFixtureGraph()

	ts1, _ := newTenantedServer(t, file, dir)
	resp := doAuthed(t, "POST", ts1.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 3,
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart fit = %d", resp.StatusCode)
	}
	ts1.Close()

	// A fresh registry, server and ledger over the same directory: the 0.7
	// spend must have survived, so another 0.7 is refused.
	ts2, tenants := newTenantedServer(t, file, dir)
	resp = doAuthed(t, "POST", ts2.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 0.7, "seed": 4,
	})
	if resp.StatusCode != http.StatusForbidden {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-restart over-budget fit = %d: %s", resp.StatusCode, b)
	}
	var be budgetErrorBody
	decode(t, resp, &be)
	if diff := be.RemainingEpsilon - 0.3; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("post-restart remaining ε = %v, want 0.3", be.RemainingEpsilon)
	}
	if len(tenants.Warnings()) != 0 {
		t.Errorf("clean ledger reloaded with warnings: %v", tenants.Warnings())
	}
}

// TestTenancyCancelledFitRefundsBudget cancels a running async fit through
// DELETE /v1/jobs/{id}: the request returns promptly, the job record lands
// in a cancelled state, and — when the fit never registered a model — the
// pre-charged ε comes back to the tenant's account.
func TestTenancyCancelledFitRefundsBudget(t *testing.T) {
	ts, tenants := newTenantedServer(t, tenant.File{Tenants: []tenant.Tenant{
		{ID: "alpha", Key: "alpha-key", Budget: 1.0},
	}}, "")

	// A dense graph keeps the fit pipeline busy long enough to land the
	// cancel mid-flight (and if the fit wins the race anyway, the charge
	// must stand — asserted below).
	const n, edges = 1500, 60000
	rng := rand.New(rand.NewSource(13))
	b := graph.NewBuilder(n, 1)
	payloadEdges := make([][2]int, 0, edges)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(u, v)
		payloadEdges = append(payloadEdges, [2]int{u, v})
	}
	g := b.Finalize()
	graphID, err := graphstore.GraphID(g)
	if err != nil {
		t.Fatal(err)
	}
	payload := map[string]any{"n": n, "w": 1, "edges": payloadEdges, "attrs": make([]uint64, n)}

	resp := doAuthed(t, "POST", ts.URL+"/v1/fit", "alpha-key", map[string]any{
		"graph": payload, "epsilon": 1.0, "seed": 3, "parallelism": 1, "async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("async fit = %d: %s", resp.StatusCode, b)
	}
	var job struct {
		ID string `json:"id"`
	}
	decode(t, resp, &job)
	if job.ID == "" {
		t.Fatal("async fit returned no job ID")
	}
	if spent := tenants.Spent("alpha", graphID); spent != 1.0 {
		t.Fatalf("ledger spent after admission = %v, want 1.0", spent)
	}

	// Cancel; DELETE must come back promptly (it only signals the context).
	start := time.Now()
	dresp := doAuthed(t, "DELETE", ts.URL+"/v1/jobs/"+job.ID, "alpha-key", nil)
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE job = %d, want 204", dresp.StatusCode)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("DELETE took %v, want prompt return", d)
	}

	// The job record must land in a terminal state; cancelled unless the fit
	// won the race.
	var status, modelID string
	deadline := time.Now().Add(30 * time.Second)
	for {
		gresp := doAuthed(t, "GET", ts.URL+"/v1/jobs/"+job.ID, "alpha-key", nil)
		var jr struct {
			Status  string `json:"status"`
			ModelID string `json:"model_id"`
		}
		decode(t, gresp, &jr)
		status, modelID = jr.Status, jr.ModelID
		if status != "queued" && status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	switch status {
	case "cancelled":
		if modelID == "" {
			// Nothing was released; the ε must come back (the refund fires
			// just after the terminal record commits).
			for time.Now().Before(deadline) {
				if tenants.Spent("alpha", graphID) == 0 {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatalf("ε never refunded after cancelled fit; spent = %v", tenants.Spent("alpha", graphID))
		}
		// Cancelled after registration: the release is real, charge stands.
		if spent := tenants.Spent("alpha", graphID); spent != 1.0 {
			t.Errorf("cancelled-after-registration fit refunded: spent = %v, want 1.0", spent)
		}
	case "done":
		if spent := tenants.Spent("alpha", graphID); spent != 1.0 {
			t.Errorf("completed fit refunded: spent = %v, want 1.0", spent)
		}
	default:
		t.Fatalf("cancelled fit ended %q", status)
	}
}
