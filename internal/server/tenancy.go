package server

// Multi-tenant admission: API-key authentication, per-tenant rate limiting,
// ε-budget admission for DP fits, and per-tenant resource scoping. All of it
// is opt-in — a server built without Config.Tenants behaves exactly as
// before (every pre-tenancy test and client keeps working), while a
// tenant-enabled server authenticates every API request, throttles per
// tenant, charges each admitted DP fit against the tenant's persistent
// ε-ledger for the fit's source graph, and confines every tenant to the
// graphs, models and jobs it created itself.
//
// The division of labour follows the paper: fitting releases noised
// measurements of the sensitive graph, so it is the one operation that costs
// privacy budget and is refused once a tenant's ε for that graph is
// exhausted. Sampling, downloads and listings post-process already-released
// information — they stay free of ledger charges (and a test pins that a
// budget-exhausted tenant can still sample its fitted models), bounded only
// by the tenant's request rate.
//
// Resource scoping is what makes the budgets mean anything: the uploaded
// graphs are exactly the sensitive data the DP fit protects, so a tenant
// that could download another tenant's raw graph (or delete its models and
// cancel its jobs) would void the whole privacy story. Every created
// resource records its creating tenant in the registry's persistent
// ownership log; listings are filtered to the caller's resources and
// cross-tenant reads, deletes and cancels answer 404 — indistinguishable
// from the resource not existing. The stores underneath are
// content-addressed and shared, so ownership is a per-resource set of
// tenants: two tenants uploading the same graph each hold an independent
// handle, and a DELETE evicts the shared bytes only when the last handle is
// gone. Resources created while tenancy was disabled have no owner and are
// invisible to every tenant once it is enabled.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/tenant"
)

// apiKeyHeader is the primary credential header; Authorization: Bearer is
// accepted as an alias for proxy ecosystems that only forward Authorization.
const apiKeyHeader = "X-API-Key"

// Admission-reject reasons (the metric label vocabulary).
const (
	rejectUnauthorized = "unauthorized"
	rejectRateLimit    = "rate_limit"
	rejectBudget       = "budget"
)

// tenantCtxKey carries the resolved *tenant.Tenant through the request
// context.
type tenantCtxKey struct{}

// tenantFrom returns the request's authenticated tenant, nil when tenancy is
// disabled.
func tenantFrom(ctx context.Context) *tenant.Tenant {
	t, _ := ctx.Value(tenantCtxKey{}).(*tenant.Tenant)
	return t
}

// requestKey extracts the API key from a request: X-API-Key wins, then
// Authorization: Bearer.
func requestKey(r *http.Request) string {
	if k := r.Header.Get(apiKeyHeader); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return key
		}
	}
	return ""
}

// authExempt reports whether a path stays open without any credential on a
// tenant-enabled server: only health, which carries aggregate counts and no
// tenant data, so load balancers and probes need no identity.
func authExempt(path string) bool {
	return path == "/healthz" || path == "/v1/healthz"
}

// operatorPath reports whether a path is an operator surface: metrics, the
// stats snapshot and profiling. On a tenant-enabled server these require the
// tenants file's operator_token — the metrics registry exports per-tenant
// labels (ε spends keyed by tenant and graph content address), so they must
// not be open to the world, and tenant keys must not open them either
// (tenant A would read tenant B's spends). Without a configured token they
// fail closed.
func operatorPath(path string) bool {
	switch path {
	case "/metrics", "/v1/stats":
		return true
	}
	return strings.HasPrefix(path, "/debug/pprof/")
}

// authenticate wraps the mux with tenant resolution and rate limiting. With
// tenancy disabled it returns next unchanged — zero overhead, identical
// behaviour to the pre-tenancy server.
func (s *Server) authenticate(next http.Handler) http.Handler {
	if s.cfg.Tenants == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if operatorPath(r.URL.Path) {
			if !s.cfg.Tenants.Operator(requestKey(r)) {
				s.admissionRejects.With(rejectUnauthorized).Inc()
				writeError(w, http.StatusUnauthorized,
					"operator endpoints require the operator token on a tenant-enabled server (set operator_token in the tenants file)")
				return
			}
			next.ServeHTTP(w, r)
			return
		}
		t, ok := s.cfg.Tenants.Resolve(requestKey(r))
		if !ok {
			s.admissionRejects.With(rejectUnauthorized).Inc()
			writeError(w, http.StatusUnauthorized, "missing or unknown API key (set %s)", apiKeyHeader)
			return
		}
		if !s.cfg.Tenants.Allow(t.ID) {
			s.admissionRejects.With(rejectRateLimit).Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "tenant %s over its request rate limit", t.ID)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
	})
}

// budgetErrorBody is the 403 response for a refused DP fit: the uniform
// error string plus machine-readable budget arithmetic, so a client can see
// exactly how much ε it has left for the graph without a second call.
type budgetErrorBody struct {
	Error            string  `json:"error"`
	Tenant           string  `json:"tenant"`
	Graph            string  `json:"graph"`
	RequestedEpsilon float64 `json:"requested_epsilon"`
	RemainingEpsilon float64 `json:"remaining_epsilon"`
	BudgetEpsilon    float64 `json:"budget_epsilon"`
}

// fitLedgerGraphID resolves the ledger key for a fit's source graph: the
// stored graph's ID when fitting by reference, otherwise the content address
// the resolved graph would be stored under. Content addressing means
// re-uploading the same sensitive graph (or inlining it) cannot mint a fresh
// budget account.
func fitLedgerGraphID(req *fitRequest, g *graph.Graph) (string, error) {
	if req.GraphID != "" {
		return req.GraphID, nil
	}
	return graphstore.GraphID(g)
}

// admitFit charges the authenticated tenant's ε-ledger for a DP fit before
// it runs. It reports whether the fit may proceed (writing the refusal
// response itself otherwise) and returns a refund callback to invoke if the
// admitted fit ends without ever producing a model — the one case
// differential privacy allows the charge back. Non-private fits (ε = 0) and
// tenancy-disabled servers admit freely with a no-op refund.
func (s *Server) admitFit(w http.ResponseWriter, r *http.Request, req *fitRequest, g *graph.Graph) (refund func(), ok bool) {
	noop := func() {}
	if s.cfg.Tenants == nil || req.Epsilon <= 0 {
		return noop, true
	}
	t := tenantFrom(r.Context())
	if t == nil {
		// Cannot happen behind the authenticate middleware; refuse closed if
		// a future route bypasses it.
		s.admissionRejects.With(rejectUnauthorized).Inc()
		writeError(w, http.StatusUnauthorized, "no authenticated tenant")
		return nil, false
	}
	graphID, err := fitLedgerGraphID(req, g)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "computing graph content address: %v", err)
		return nil, false
	}
	remaining, err := s.cfg.Tenants.Charge(t, graphID, req.Epsilon)
	if err != nil {
		var be *tenant.BudgetError
		if errors.As(err, &be) {
			s.admissionRejects.With(rejectBudget).Inc()
			writeJSON(w, http.StatusForbidden, budgetErrorBody{
				Error: fmt.Sprintf("privacy budget exceeded: requested ε=%v with ε=%v remaining for graph %s",
					req.Epsilon, be.Remaining, graphID),
				Tenant: t.ID, Graph: graphID,
				RequestedEpsilon: req.Epsilon,
				RemainingEpsilon: be.Remaining,
				BudgetEpsilon:    be.Budget,
			})
			return nil, false
		}
		// A charge that could not be durably recorded must not admit the fit.
		writeError(w, http.StatusInternalServerError, "recording privacy spend: %v", err)
		return nil, false
	}
	s.logger.Info("privacy budget charged",
		"tenant", t.ID, "graph", graphID, "epsilon", req.Epsilon, "remaining", remaining)
	tenantID := t.ID
	return func() {
		if err := s.cfg.Tenants.Refund(tenantID, graphID, req.Epsilon); err != nil {
			s.logger.Error("privacy budget refund failed",
				"tenant", tenantID, "graph", graphID, "epsilon", req.Epsilon, "error", err)
		}
	}, true
}

// onFitDone adapts a refund callback to the jobs layer's terminal hook: the
// charge stands when the fit registered a model (even a cancelled fit that
// got that far — its release is real) and comes back otherwise. A registered
// model is additionally recorded as owned by the submitting tenant, so the
// tenant that paid the ε can actually reach the model it bought.
func (s *Server) onFitDone(r *http.Request, refund func()) func(string) {
	tenantID := ""
	if t := tenantFrom(r.Context()); t != nil {
		tenantID = t.ID
	}
	return func(modelID string) {
		if modelID == "" {
			refund()
			return
		}
		s.grantResource(tenantID, tenant.ResourceModel, modelID)
	}
}

// grantResource records tenantID as an owner of resource (kind, id) when
// tenancy is enabled; a no-op otherwise. Grant failures (a full disk under
// the ownership log) are logged, not fatal: the resource exists either way,
// the tenant just cannot see it until an operator reconciles — failing
// closed, like every other scoping decision.
func (s *Server) grantResource(tenantID, kind, id string) {
	if s.cfg.Tenants == nil || tenantID == "" || id == "" {
		return
	}
	if err := s.cfg.Tenants.Grant(kind, id, tenantID); err != nil {
		s.logger.Error("recording resource ownership failed",
			"tenant", tenantID, "kind", kind, "id", id, "error", err)
	}
}

// grantFor is grantResource keyed off the request's authenticated tenant.
func (s *Server) grantFor(r *http.Request, kind, id string) {
	if t := tenantFrom(r.Context()); t != nil {
		s.grantResource(t.ID, kind, id)
	}
}

// canAccess reports whether the request may touch resource (kind, id): with
// tenancy disabled everything is reachable, with it only resources the
// authenticated tenant owns. Handlers answer 404 on false, so another
// tenant's resource is indistinguishable from a missing one.
func (s *Server) canAccess(r *http.Request, kind, id string) bool {
	if s.cfg.Tenants == nil {
		return true
	}
	t := tenantFrom(r.Context())
	return t != nil && s.cfg.Tenants.Owns(kind, id, t.ID)
}

// releaseResource drops the tenant's handle on resource (kind, id),
// reporting whether the underlying shared resource should be evicted: with
// tenancy disabled always (the caller is the only trust domain), with it
// only when the last owner's handle is gone — content addressing means
// another tenant may hold the same bytes.
func (s *Server) releaseResource(r *http.Request, kind, id string) (evict bool) {
	if s.cfg.Tenants == nil {
		return true
	}
	t := tenantFrom(r.Context())
	if t == nil {
		return false
	}
	last, err := s.cfg.Tenants.RevokeOwner(kind, id, t.ID)
	if err != nil {
		s.logger.Error("recording resource revoke failed",
			"tenant", t.ID, "kind", kind, "id", id, "error", err)
	}
	return last
}
