package server

// Multi-tenant admission: API-key authentication, per-tenant rate limiting,
// and ε-budget admission for DP fits. All of it is opt-in — a server built
// without Config.Tenants behaves exactly as before (every pre-tenancy test
// and client keeps working), while a tenant-enabled server authenticates
// every API request, throttles per tenant, and charges each admitted DP fit
// against the tenant's persistent ε-ledger for the fit's source graph.
//
// The division of labour follows the paper: fitting releases noised
// measurements of the sensitive graph, so it is the one operation that costs
// privacy budget and is refused once a tenant's ε for that graph is
// exhausted. Sampling, downloads and listings post-process already-released
// information — they stay free of ledger charges (and a test pins that a
// budget-exhausted tenant can still sample its fitted models), bounded only
// by the tenant's request rate.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/tenant"
)

// apiKeyHeader is the primary credential header; Authorization: Bearer is
// accepted as an alias for proxy ecosystems that only forward Authorization.
const apiKeyHeader = "X-API-Key"

// Admission-reject reasons (the metric label vocabulary).
const (
	rejectUnauthorized = "unauthorized"
	rejectRateLimit    = "rate_limit"
	rejectBudget       = "budget"
)

// tenantCtxKey carries the resolved *tenant.Tenant through the request
// context.
type tenantCtxKey struct{}

// tenantFrom returns the request's authenticated tenant, nil when tenancy is
// disabled.
func tenantFrom(ctx context.Context) *tenant.Tenant {
	t, _ := ctx.Value(tenantCtxKey{}).(*tenant.Tenant)
	return t
}

// requestKey extracts the API key from a request: X-API-Key wins, then
// Authorization: Bearer.
func requestKey(r *http.Request) string {
	if k := r.Header.Get(apiKeyHeader); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return key
		}
	}
	return ""
}

// authExempt reports whether a path stays open without a key on a
// tenant-enabled server: health, metrics and profiling are operator surfaces
// scraped by infrastructure that has no tenant identity.
func authExempt(path string) bool {
	switch path {
	case "/healthz", "/v1/healthz", "/metrics", "/v1/stats":
		return true
	}
	return strings.HasPrefix(path, "/debug/pprof/")
}

// authenticate wraps the mux with tenant resolution and rate limiting. With
// tenancy disabled it returns next unchanged — zero overhead, identical
// behaviour to the pre-tenancy server.
func (s *Server) authenticate(next http.Handler) http.Handler {
	if s.cfg.Tenants == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		t, ok := s.cfg.Tenants.Resolve(requestKey(r))
		if !ok {
			s.admissionRejects.With(rejectUnauthorized).Inc()
			writeError(w, http.StatusUnauthorized, "missing or unknown API key (set %s)", apiKeyHeader)
			return
		}
		if !s.cfg.Tenants.Allow(t.ID) {
			s.admissionRejects.With(rejectRateLimit).Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "tenant %s over its request rate limit", t.ID)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
	})
}

// budgetErrorBody is the 403 response for a refused DP fit: the uniform
// error string plus machine-readable budget arithmetic, so a client can see
// exactly how much ε it has left for the graph without a second call.
type budgetErrorBody struct {
	Error            string  `json:"error"`
	Tenant           string  `json:"tenant"`
	Graph            string  `json:"graph"`
	RequestedEpsilon float64 `json:"requested_epsilon"`
	RemainingEpsilon float64 `json:"remaining_epsilon"`
	BudgetEpsilon    float64 `json:"budget_epsilon"`
}

// fitLedgerGraphID resolves the ledger key for a fit's source graph: the
// stored graph's ID when fitting by reference, otherwise the content address
// the resolved graph would be stored under. Content addressing means
// re-uploading the same sensitive graph (or inlining it) cannot mint a fresh
// budget account.
func fitLedgerGraphID(req *fitRequest, g *graph.Graph) (string, error) {
	if req.GraphID != "" {
		return req.GraphID, nil
	}
	return graphstore.GraphID(g)
}

// admitFit charges the authenticated tenant's ε-ledger for a DP fit before
// it runs. It reports whether the fit may proceed (writing the refusal
// response itself otherwise) and returns a refund callback to invoke if the
// admitted fit ends without ever producing a model — the one case
// differential privacy allows the charge back. Non-private fits (ε = 0) and
// tenancy-disabled servers admit freely with a no-op refund.
func (s *Server) admitFit(w http.ResponseWriter, r *http.Request, req *fitRequest, g *graph.Graph) (refund func(), ok bool) {
	noop := func() {}
	if s.cfg.Tenants == nil || req.Epsilon <= 0 {
		return noop, true
	}
	t := tenantFrom(r.Context())
	if t == nil {
		// Cannot happen behind the authenticate middleware; refuse closed if
		// a future route bypasses it.
		s.admissionRejects.With(rejectUnauthorized).Inc()
		writeError(w, http.StatusUnauthorized, "no authenticated tenant")
		return nil, false
	}
	graphID, err := fitLedgerGraphID(req, g)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "computing graph content address: %v", err)
		return nil, false
	}
	remaining, err := s.cfg.Tenants.Charge(t, graphID, req.Epsilon)
	if err != nil {
		var be *tenant.BudgetError
		if errors.As(err, &be) {
			s.admissionRejects.With(rejectBudget).Inc()
			writeJSON(w, http.StatusForbidden, budgetErrorBody{
				Error: fmt.Sprintf("privacy budget exceeded: requested ε=%v with ε=%v remaining for graph %s",
					req.Epsilon, be.Remaining, graphID),
				Tenant: t.ID, Graph: graphID,
				RequestedEpsilon: req.Epsilon,
				RemainingEpsilon: be.Remaining,
				BudgetEpsilon:    be.Budget,
			})
			return nil, false
		}
		// A charge that could not be durably recorded must not admit the fit.
		writeError(w, http.StatusInternalServerError, "recording privacy spend: %v", err)
		return nil, false
	}
	s.logger.Info("privacy budget charged",
		"tenant", t.ID, "graph", graphID, "epsilon", req.Epsilon, "remaining", remaining)
	tenantID := t.ID
	return func() {
		if err := s.cfg.Tenants.Refund(tenantID, graphID, req.Epsilon); err != nil {
			s.logger.Error("privacy budget refund failed",
				"tenant", tenantID, "graph", graphID, "epsilon", req.Epsilon, "error", err)
		}
	}, true
}

// onFitDone adapts a refund callback to the jobs layer's terminal hook: the
// charge stands when the fit registered a model (even a cancelled fit that
// got that far — its release is real) and comes back otherwise.
func onFitDone(refund func()) func(bool) {
	return func(produced bool) {
		if !produced {
			refund()
		}
	}
}
