package server

// Observability endpoints: Prometheus text exposition on GET /metrics, a
// JSON snapshot (with precomputed latency quantiles) on GET /v1/stats, and
// optional net/http/pprof under /debug/pprof/ behind Config.Pprof.

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"

	"agmdp/internal/obs"
)

// registerObservability mounts the metrics endpoints and points the live-
// state gauges at this server's stores. GaugeFunc registration is last-wins,
// so a rebuilt server (tests construct many) re-points the gauges at its own
// stores instead of leaking readers of discarded ones.
func (s *Server) registerObservability() {
	cfg := s.cfg
	m := cfg.Metrics
	m.GaugeFunc("agmdp_models_resident",
		"Fitted models resident in the registry.",
		func() float64 { return float64(cfg.Registry.Len()) })
	m.GaugeFunc("agmdp_models_bytes",
		"Serialized bytes of the resident fitted models.",
		func() float64 { return float64(cfg.Registry.SizeBytes()) })
	m.GaugeFunc("agmdp_graphs_resident",
		"Graphs resident in the graph store.",
		func() float64 { return float64(cfg.Graphs.Len()) })
	m.GaugeFunc("agmdp_graphs_bytes",
		"Canonical snapshot bytes of the stored graphs (on disk for persistent stores).",
		func() float64 { return float64(cfg.Graphs.SizeBytes()) })
	m.GaugeFunc("agmdp_graphstore_decoded_graphs",
		"Decoded graphs resident in the graph store's byte-budget cache.",
		func() float64 { return float64(cfg.Graphs.DecodedLen()) })
	m.GaugeFunc("agmdp_graphstore_decoded_bytes",
		"Heap bytes of decoded CSR graphs resident in the byte-budget cache.",
		func() float64 { return float64(cfg.Graphs.DecodedBytes()) })
	m.GaugeFunc("agmdp_jobs_retained",
		"Jobs known to the manager (queued, running and retained finished).",
		func() float64 { return float64(len(cfg.Jobs.List())) })
	analyticsCache := s.analytics
	m.GaugeFunc("agmdp_analytics_cached_bundles",
		"Encoded metric bundles resident in the analytics cache's LRU.",
		func() float64 { return float64(analyticsCache.Len()) })
	memo := s.sampleMemo
	m.GaugeFunc("agmdp_analytics_sample_memo_entries",
		"Sample requests memoised by the content-addressed request memo.",
		func() float64 { return float64(memo.Len()) })

	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// handleMetrics serves the registry in the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	abortOnStreamError("metrics exposition", s.cfg.Metrics.WritePrometheus(w))
}

// statsResponse is the GET /v1/stats body: every registered metric family as
// JSON, with p50/p95/p99 precomputed for histograms so dashboards need no
// Prometheus between them and the service.
type statsResponse struct {
	UptimeSeconds float64              `json:"uptime_seconds"`
	Metrics       []obs.FamilySnapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Metrics:       s.cfg.Metrics.Snapshot(),
	})
}

// buildVersion reports the main module's version from the embedded build
// info, or "devel" when none is stamped (go test binaries, plain go build).
func buildVersion() string {
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" && info.Main.Version != "(devel)" {
		return info.Main.Version
	}
	return "devel"
}

// goVersion is runtime.Version, indirected for the healthz response.
func goVersion() string { return runtime.Version() }
