package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"agmdp/internal/engine"
	"agmdp/internal/graph"
	"agmdp/internal/graphstore"
	"agmdp/internal/jobs"
	"agmdp/internal/registry"
)

// newV1TestServer builds a service with an explicit graph store and jobs
// manager, mirroring the production wiring of cmd/agmdp-serve.
func newV1TestServer(t *testing.T) (*httptest.Server, *graphstore.Store) {
	t.Helper()
	store, err := graphstore.Open(graphstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return newV1TestServerWith(t, store), store
}

// newV1TestServerWith builds the service around a caller-supplied graph
// store (e.g. a persistent one reopened cold).
func newV1TestServerWith(t *testing.T, store *graphstore.Store) *httptest.Server {
	t.Helper()
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, Seed: 1, Acceptance: reg})
	t.Cleanup(eng.Close)
	mgr, err := jobs.New(jobs.Options{Engine: eng, Store: store, Models: reg, SampleTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv, err := New(Config{
		Registry:      reg,
		Engine:        eng,
		Graphs:        store,
		Jobs:          mgr,
		SampleTimeout: 30 * time.Second,
		MaxJobSamples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// testUploadGraph builds a deterministic attributed graph for upload tests.
func testUploadGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 40
	b := graph.NewBuilder(n, 2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(u, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.SetAttr(i, graph.AttrVector(rng.Intn(4)))
	}
	return b.Finalize()
}

// postBody posts raw bytes with a Content-Type and returns the response.
func postBody(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// doDelete issues a DELETE and returns the response.
func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// uploadBinary uploads g as a binary snapshot and returns its graph ID.
func uploadBinary(t *testing.T, ts *httptest.Server, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	resp := postBody(t, ts.URL+"/v1/graphs", "application/octet-stream", buf.Bytes())
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, b)
	}
	var gr graphResponse
	decode(t, resp, &gr)
	if gr.ID == "" {
		t.Fatal("upload returned empty ID")
	}
	return gr.ID
}

func TestV1AliasesMatchLegacyEndpoints(t *testing.T) {
	ts, _ := newV1TestServer(t)
	id := fitDataset(t, ts, 1.0)
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var hr healthzResponse
		decode(t, resp, &hr)
		if hr.Status != "ok" {
			t.Fatalf("%s: %+v", path, hr)
		}
	}
	// The same model is visible through both model collections.
	for _, path := range []string{"/models/" + id, "/v1/models/" + id} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var info registry.Info
		decode(t, resp, &info)
		if info.ID != id {
			t.Fatalf("%s: %+v", path, info)
		}
	}
	// Sampling through /v1 works like the legacy path.
	resp := postJSON(t, ts.URL+"/v1/sample", map[string]any{"id": id, "seed": 4, "iterations": 1, "format": "summary"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/sample: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestGraphUploadFormatsAgree uploads one graph in all three wire formats
// and checks content addressing collapses them to a single stored entry.
func TestGraphUploadFormatsAgree(t *testing.T) {
	ts, _ := newV1TestServer(t)
	g := testUploadGraph(1)

	binID := uploadBinary(t, ts, g)

	var text bytes.Buffer
	if err := g.WriteGraph(&text); err != nil {
		t.Fatal(err)
	}
	resp := postBody(t, ts.URL+"/v1/graphs", "text/plain", text.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("text upload: status %d", resp.StatusCode)
	}
	var fromText graphResponse
	decode(t, resp, &fromText)

	payload, err := json.Marshal(payloadFromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	resp = postBody(t, ts.URL+"/v1/graphs", "application/json", payload)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("json upload: status %d", resp.StatusCode)
	}
	var fromJSON graphResponse
	decode(t, resp, &fromJSON)

	if fromText.ID != binID || fromJSON.ID != binID {
		t.Fatalf("formats produced different IDs: binary %s, text %s, json %s", binID, fromText.ID, fromJSON.ID)
	}

	// One resident entry, visible in the listing.
	lresp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var list listGraphsResponse
	decode(t, lresp, &list)
	if len(list.Graphs) != 1 || list.Graphs[0].ID != binID {
		t.Fatalf("graphs = %+v", list.Graphs)
	}
}

func TestGraphDownloadRoundTrip(t *testing.T) {
	ts, _ := newV1TestServer(t)
	g := testUploadGraph(2)
	id := uploadBinary(t, ts, g)

	// Stat.
	resp, err := http.Get(ts.URL + "/v1/graphs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info graphstore.Info
	decode(t, resp, &info)
	if info.ID != id || info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("stat = %+v", info)
	}

	// Binary download decodes back to the same graph.
	resp, err = http.Get(ts.URL + "/v1/graphs/" + id + "?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary Content-Type = %s", ct)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	back, err := graph.ReadBinary(bytes.NewReader(data))
	if err != nil || !g.Equal(back) {
		t.Fatalf("binary download does not round-trip: %v", err)
	}

	// Text download parses back to the same graph.
	resp, err = http.Get(ts.URL + "/v1/graphs/" + id + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := graph.ReadGraph(resp.Body)
	resp.Body.Close()
	if err != nil || !g.Equal(fromText) {
		t.Fatalf("text download does not round-trip: %v", err)
	}

	// JSON download carries the inline payload.
	resp, err = http.Get(ts.URL + "/v1/graphs/" + id + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var p graphPayload
	decode(t, resp, &p)
	if p.N != g.NumNodes() || len(p.Edges) != g.NumEdges() {
		t.Fatalf("json download = n %d, %d edges", p.N, len(p.Edges))
	}

	// Delete, then every accessor 404s.
	dresp := doDelete(t, ts.URL+"/v1/graphs/"+id)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/graphs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}
}

// TestBinaryDownloadAndStatSkipDecode pins the O(header) serving invariant:
// against a cold (restarted) persistent store, stat and binary download leave
// the decoded-graph cache empty — the snapshot streams as-is — while the
// reshaping formats decode on demand.
func TestBinaryDownloadAndStatSkipDecode(t *testing.T) {
	dir := t.TempDir()
	seedStore, err := graphstore.Open(graphstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g := testUploadGraph(5)
	id, err := seedStore.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	seedStore.Close()
	store, err := graphstore.Open(graphstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := newV1TestServerWith(t, store)

	resp, err := http.Get(ts.URL + "/v1/graphs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info graphstore.Info
	decode(t, resp, &info)
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("cold stat = %+v", info)
	}

	resp, err = http.Get(ts.URL + "/v1/graphs/" + id + "?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(len(data)) {
		t.Fatalf("Content-Length %s for %d body bytes", got, len(data))
	}
	back, err := graph.ReadBinary(bytes.NewReader(data))
	if err != nil || !g.Equal(back) {
		t.Fatalf("cold binary download does not round-trip: %v", err)
	}
	if n := store.DecodedLen(); n != 0 {
		t.Fatalf("stat + binary download decoded %d graphs; want zero decode", n)
	}

	// A reshaping format decodes lazily, exactly once.
	resp, err = http.Get(ts.URL + "/v1/graphs/" + id + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n := store.DecodedLen(); n != 1 {
		t.Fatalf("json download left %d decoded graphs, want 1", n)
	}
}

func TestFitByGraphID(t *testing.T) {
	ts, _ := newV1TestServer(t)
	id := uploadBinary(t, ts, testUploadGraph(3))

	// Fit the stored graph twice by ID — the point of the graph store.
	var modelIDs []string
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/fit", map[string]any{
			"graph_id": id, "epsilon": 1.0, "seed": int64(i + 1),
		})
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("fit %d: status %d: %s", i, resp.StatusCode, b)
		}
		var fr fitResponse
		decode(t, resp, &fr)
		modelIDs = append(modelIDs, fr.ID)
	}
	if modelIDs[0] == modelIDs[1] {
		t.Fatal("private fits with different seeds produced the same model")
	}

	// Non-private fit by ID is deterministic: same graph, same model ID.
	fit := func() string {
		resp := postJSON(t, ts.URL+"/v1/fit", map[string]any{"graph_id": id})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("non-private fit: status %d", resp.StatusCode)
		}
		var fr fitResponse
		decode(t, resp, &fr)
		return fr.ID
	}
	if fit() != fit() {
		t.Fatal("non-private fit by graph ID is not deterministic")
	}
}

func TestFitParallelismField(t *testing.T) {
	ts, _ := newV1TestServer(t)
	// parallelism 1 pins the sequential path; the fit must succeed and be
	// reproducible (same content-addressed model ID for equal inputs).
	fit := func(par int) string {
		resp := postJSON(t, ts.URL+"/v1/fit", map[string]any{
			"dataset": map[string]any{"name": "lastfm", "scale": 0.1, "seed": 1},
			"epsilon": 1.0, "seed": 3, "parallelism": par,
		})
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("fit: status %d: %s", resp.StatusCode, b)
		}
		var fr fitResponse
		decode(t, resp, &fr)
		return fr.ID
	}
	if fit(1) != fit(1) {
		t.Fatal("sequential fits of the same input differ")
	}
	// Negative parallelism is rejected, on the legacy alias too.
	for _, path := range []string{"/v1/fit", "/fit"} {
		resp := postJSON(t, ts.URL+path, map[string]any{
			"dataset": map[string]any{"name": "lastfm", "scale": 0.1}, "parallelism": -1,
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s negative parallelism: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestSampleStoreAndBinaryFormat(t *testing.T) {
	ts, store := newV1TestServer(t)
	id := fitDataset(t, ts, 1.0)

	// store: true returns a graph ID instead of an inline graph.
	resp := postJSON(t, ts.URL+"/v1/sample", map[string]any{"id": id, "seed": 5, "iterations": 1, "store": true})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sample store: status %d: %s", resp.StatusCode, b)
	}
	var sr sampleResponse
	decode(t, resp, &sr)
	if sr.GraphID == "" || sr.Graph != nil {
		t.Fatalf("stored sample = %+v", sr)
	}
	stored, ok := store.Get(sr.GraphID)
	if !ok || stored.NumEdges() != sr.Edges {
		t.Fatalf("stored sample %s missing or inconsistent", sr.GraphID)
	}

	// format: binary streams a decodable snapshot of the same seed's graph.
	resp = postJSON(t, ts.URL+"/v1/sample", map[string]any{"id": id, "seed": 5, "iterations": 1, "format": "binary"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample binary: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary Content-Type = %s", ct)
	}
	g, err := graph.ReadBinary(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(stored) {
		t.Fatal("binary sample differs from the stored sample of the same seed")
	}
}

func TestJobLifecycle(t *testing.T) {
	ts, store := newV1TestServer(t)
	id := fitDataset(t, ts, 1.0)

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"model_id": id, "count": 3, "seed": 11, "iterations": 1, "store": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var jr jobResponse
	decode(t, resp, &jr)
	if jr.ID == "" || jr.Count != 3 {
		t.Fatalf("job = %+v", jr.Info)
	}

	// Poll until done.
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		decode(t, resp, &jr)
		if jr.Status.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %+v", jr.Info)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if jr.Status != jobs.StatusDone || jr.Completed != 3 || len(jr.Results) != 3 {
		t.Fatalf("finished job = %+v (%d results)", jr.Info, len(jr.Results))
	}
	for _, res := range jr.Results {
		if res.GraphID == "" {
			t.Fatalf("result %+v has no stored graph", res)
		}
		if _, ok := store.Get(res.GraphID); !ok {
			t.Fatalf("stored graph %s missing", res.GraphID)
		}
	}

	// The job shows up in listings; deleting removes it.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list listJobsResponse
	decode(t, lresp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != jr.ID {
		t.Fatalf("jobs = %+v", list.Jobs)
	}
	dresp := doDelete(t, ts.URL+"/v1/jobs/"+jr.ID)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete job: status %d", dresp.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("get deleted job: status %d", gresp.StatusCode)
	}
}

// TestV1HandlerErrors drives every v1-specific error status.
func TestV1HandlerErrors(t *testing.T) {
	ts, _ := newV1TestServer(t)
	modelID := fitDataset(t, ts, 1.0)
	graphID := uploadBinary(t, ts, testUploadGraph(4))

	bigPayload, err := json.Marshal(graphPayload{N: 3_000_000, Edges: [][2]int{}})
	if err != nil {
		t.Fatal(err)
	}
	widePayload, err := json.Marshal(graphPayload{N: 2, W: 20, Edges: [][2]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        []byte
		want        int
	}{
		{"upload malformed json", "POST", "/v1/graphs", "application/json", []byte("{not json"), http.StatusBadRequest},
		{"upload malformed text", "POST", "/v1/graphs", "text/plain", []byte("nonsense directive"), http.StatusBadRequest},
		{"upload malformed binary", "POST", "/v1/graphs", "application/octet-stream", []byte("XXXXXXXXgarbage"), http.StatusBadRequest},
		{"upload unsupported media type", "POST", "/v1/graphs", "application/xml", []byte("<g/>"), http.StatusUnsupportedMediaType},
		{"upload unparseable media type", "POST", "/v1/graphs", "zzz;;;", []byte("{}"), http.StatusUnsupportedMediaType},
		{"upload oversized graph", "POST", "/v1/graphs", "application/json", bigPayload, http.StatusBadRequest},
		{"upload overwide graph", "POST", "/v1/graphs", "application/json", widePayload, http.StatusBadRequest},
		{"get unknown graph", "GET", "/v1/graphs/deadbeef", "", nil, http.StatusNotFound},
		{"get graph bad format", "GET", "/v1/graphs/" + graphID + "?format=yaml", "", nil, http.StatusBadRequest},
		{"delete unknown graph", "DELETE", "/v1/graphs/deadbeef", "", nil, http.StatusNotFound},
		{"fit unknown graph id", "POST", "/v1/fit", "application/json",
			[]byte(`{"graph_id":"deadbeef"}`), http.StatusNotFound},
		{"fit two inputs", "POST", "/v1/fit", "application/json",
			[]byte(`{"graph_id":"` + graphID + `","dataset":{"name":"lastfm"}}`), http.StatusBadRequest},
		{"sample store with text format", "POST", "/v1/sample", "application/json",
			[]byte(`{"id":"` + modelID + `","store":true,"format":"text"}`), http.StatusBadRequest},
		{"sample store with binary format", "POST", "/v1/sample", "application/json",
			[]byte(`{"id":"` + modelID + `","store":true,"format":"binary"}`), http.StatusBadRequest},
		{"job malformed body", "POST", "/v1/jobs", "application/json", []byte("{not json"), http.StatusBadRequest},
		{"job unknown model", "POST", "/v1/jobs", "application/json",
			[]byte(`{"model_id":"deadbeef","count":1}`), http.StatusNotFound},
		{"job count over cap", "POST", "/v1/jobs", "application/json",
			[]byte(`{"model_id":"` + modelID + `","count":1000}`), http.StatusBadRequest},
		{"job negative count", "POST", "/v1/jobs", "application/json",
			[]byte(`{"model_id":"` + modelID + `","count":-1}`), http.StatusBadRequest},
		{"job negative parallelism", "POST", "/v1/jobs", "application/json",
			[]byte(`{"model_id":"` + modelID + `","count":1,"parallelism":-1}`), http.StatusBadRequest},
		{"job seed range crossing zero", "POST", "/v1/jobs", "application/json",
			[]byte(`{"model_id":"` + modelID + `","count":8,"seed":-3}`), http.StatusBadRequest},
		{"job bad model kind", "POST", "/v1/jobs", "application/json",
			[]byte(`{"model_id":"` + modelID + `","count":1,"model":"gnp"}`), http.StatusBadRequest},
		{"get unknown job", "GET", "/v1/jobs/job-999999", "", nil, http.StatusNotFound},
		{"delete unknown job", "DELETE", "/v1/jobs/job-999999", "", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			switch tc.method {
			case "POST":
				resp = postBody(t, ts.URL+tc.path, tc.contentType, tc.body)
			case "GET":
				resp, err = http.Get(ts.URL + tc.path)
			case "DELETE":
				resp = doDelete(t, ts.URL+tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, b)
			}
			// Error bodies are uniform JSON.
			if resp.StatusCode >= 400 {
				var e apiError
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
					t.Fatalf("error body is not apiError JSON: %v", err)
				}
			}
		})
	}
}

// TestDatasetScaleValidationAligned pins the server to the same (0, 1] scale
// range the facade enforces.
func TestDatasetScaleValidationAligned(t *testing.T) {
	ts, _ := newV1TestServer(t)
	for _, scale := range []float64{1.5, 100} {
		resp := postJSON(t, ts.URL+"/v1/fit", map[string]any{
			"dataset": map[string]any{"name": "lastfm", "scale": scale},
		})
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("scale %v: status %d, want 400", scale, resp.StatusCode)
		}
		if !strings.Contains(string(b), "(0, 1]") {
			t.Fatalf("scale %v error does not state the valid range: %s", scale, b)
		}
	}
}

// TestHealthzCountsResources checks the extended healthz body.
func TestHealthzCountsResources(t *testing.T) {
	ts, _ := newV1TestServer(t)
	uploadBinary(t, ts, testUploadGraph(5))
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthzResponse
	decode(t, resp, &hr)
	if hr.Graphs != 1 {
		t.Fatalf("healthz graphs = %d, want 1", hr.Graphs)
	}
}

// TestServerCreatesDefaultStores checks that a Config without Graphs/Jobs
// still serves the full v1 surface (the compatibility path the pre-v1
// constructor callers take).
func TestServerCreatesDefaultStores(t *testing.T) {
	reg, err := registry.Open(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 1, Seed: 1})
	t.Cleanup(eng.Close)
	srv, err := New(Config{Registry: reg, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	id := uploadBinary(t, ts, testUploadGraph(6))
	resp, err := http.Get(ts.URL + "/v1/graphs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default store get: status %d", resp.StatusCode)
	}
}
